#include "src/plan/skyline.h"

#include <algorithm>

namespace cloudcache {

std::vector<size_t> SkylineIndices(const std::vector<QueryPlan>& plans) {
  std::vector<size_t> order(plans.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Sort by (time asc, price asc, original index asc). A stable scan then
  // keeps a plan iff its price is strictly below every faster plan's.
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (plans[a].TimeSeconds() != plans[b].TimeSeconds()) {
      return plans[a].TimeSeconds() < plans[b].TimeSeconds();
    }
    if (plans[a].Price() != plans[b].Price()) {
      return plans[a].Price() < plans[b].Price();
    }
    return a < b;
  });
  std::vector<size_t> skyline;
  bool have_best = false;
  Money best_price;
  double last_time = 0;
  for (size_t idx : order) {
    const double time = plans[idx].TimeSeconds();
    const Money price = plans[idx].Price();
    if (!have_best) {
      skyline.push_back(idx);
      best_price = price;
      last_time = time;
      have_best = true;
      continue;
    }
    if (time == last_time) continue;  // Same time: cheaper one already kept.
    if (price < best_price) {
      skyline.push_back(idx);
      best_price = price;
      last_time = time;
    }
  }
  return skyline;
}

PlanSet SkylineFilter(PlanSet set) {
  std::vector<QueryPlan> existing, possible;
  for (QueryPlan& plan : set.plans) {
    (plan.IsExisting() ? existing : possible).push_back(std::move(plan));
  }
  PlanSet out;
  for (size_t idx : SkylineIndices(existing)) {
    out.plans.push_back(std::move(existing[idx]));
  }
  for (size_t idx : SkylineIndices(possible)) {
    out.plans.push_back(std::move(possible[idx]));
  }
  return out;
}

}  // namespace cloudcache
