#pragma once

#include <unordered_map>
#include <utility>
#include <vector>

#include "src/structure/structure.h"
#include "src/util/money.h"

namespace cloudcache {

/// The array `regretS` of Section IV-C: accumulated regret value per
/// physical structure.
///
/// "The regret for a non-chosen query plan PQ is added to the positions in
/// regretS that correspond to the S that are employed by PQ. The
/// accumulated regret value for each S shows the overall regret of the
/// cloud for not employing it in executed query plans."
///
/// Amounts are exact Money; a plan's regret is split over its structures
/// with EvenShare so no micro-dollar is lost or invented.
class RegretLedger {
 public:
  /// Adds regret to one structure. Negative additions are a bug.
  void Add(StructureId id, Money amount);

  /// Splits `total` evenly over `structures` (EvenShare distribution).
  void Distribute(const std::vector<StructureId>& structures, Money total);

  /// Accumulated regret of `id` (zero if never touched).
  Money Get(StructureId id) const;

  /// Forgets `id` (invested in, or garbage-collected from the candidate
  /// pool). Returns the forfeited amount.
  Money Clear(StructureId id);

  /// Removes exactly `amount` from `id`'s entry, which must hold at least
  /// that much (the tenant ledgers partition the global one, so a tenant
  /// share can always be subtracted from the global entry). Erases the
  /// entry when it reaches zero. Used when a throttled tenant's standing
  /// regret is forfeited out of the global ledger.
  void Subtract(StructureId id, Money amount);

  /// Read-only view of every entry (unordered). Callers that need a
  /// deterministic order must sort; forfeiture only subtracts per entry,
  /// which commutes, so iteration order never reaches the metrics.
  const std::unordered_map<StructureId, Money>& entries() const {
    return regret_;
  }

  /// Sum over all structures.
  Money Total() const;

  /// All entries with non-zero regret, descending by amount (ties by id).
  ///
  /// Maintained incrementally: the sorted view is rebuilt (into a reused
  /// scratch vector) only when a mutation dirtied it since the last call —
  /// MaybeInvest runs once per query, so quiet stretches pay nothing. The
  /// reference is a snapshot: mutating the ledger (Add/Clear) marks it
  /// stale for the *next* call but leaves the returned storage untouched,
  /// so the investment loop may Clear entries while iterating it.
  const std::vector<std::pair<StructureId, Money>>& NonZeroDescending() const;

  size_t size() const { return regret_.size(); }

 private:
  std::unordered_map<StructureId, Money> regret_;
  /// Cached NonZeroDescending view (lazily rebuilt; see above).
  mutable std::vector<std::pair<StructureId, Money>> sorted_;
  mutable bool sorted_stale_ = true;
};

}  // namespace cloudcache
