# Empty dependencies file for cloudcache_cost_tests.
# This may be replaced when dependencies are built.
