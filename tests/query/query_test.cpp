#include "src/query/query.h"

#include <gtest/gtest.h>

#include "tests/testing/fixtures.h"

namespace cloudcache {
namespace {

TEST(QueryTest, CombinedSelectivityIsProduct) {
  const Catalog catalog = testing::MakeTinyCatalog();
  const Query q = testing::MakeTinyQuery(catalog, 0.02);
  EXPECT_NEAR(q.CombinedSelectivity(), 0.02 * 0.5, 1e-12);
}

TEST(QueryTest, NoPredicatesMeansFullSelectivity) {
  Query q;
  EXPECT_EQ(q.CombinedSelectivity(), 1.0);
}

TEST(QueryTest, AccessedColumnsDeduplicated) {
  const Catalog catalog = testing::MakeTinyCatalog();
  const Query q = testing::MakeTinyQuery(catalog);
  // Outputs: f_key, f_value. Predicates: f_date, f_value. f_value appears
  // in both and must be deduped.
  const std::vector<ColumnId> accessed = q.AccessedColumns();
  EXPECT_EQ(accessed.size(), 3u);
  EXPECT_TRUE(std::is_sorted(accessed.begin(), accessed.end()));
}

TEST(QueryTest, ScanBytesSumsAccessedColumns) {
  const Catalog catalog = testing::MakeTinyCatalog();
  const Query q = testing::MakeTinyQuery(catalog);
  // Three accessed fact columns at 8 MB each.
  EXPECT_EQ(q.ScanBytes(catalog), 3u * 8'000'000);
}

TEST(QueryTest, AccessedColumnsMemoRevalidatesOnMutation) {
  const Catalog catalog = testing::MakeTinyCatalog();
  Query q = testing::MakeTinyQuery(catalog);
  const std::vector<ColumnId> before = q.AccessedColumns();  // Primes memo.

  // In-place swap that keeps every count identical: the memo must notice.
  const ColumnId flag = *catalog.FindColumn("fact.f_flag");
  ASSERT_NE(q.output_columns[0], flag);
  q.output_columns[0] = flag;
  const std::vector<ColumnId> after = q.AccessedColumns();
  EXPECT_NE(before, after);
  EXPECT_TRUE(std::find(after.begin(), after.end(), flag) != after.end());

  // Growing the predicate list revalidates too.
  Predicate extra;
  extra.column = *catalog.FindColumn("fact.f_key");
  q.predicates.push_back(extra);
  EXPECT_EQ(q.AccessedColumns().size(), 4u);
}

TEST(QueryTest, DeriveResultShape) {
  const Catalog catalog = testing::MakeTinyCatalog();
  Query q = testing::MakeTinyQuery(catalog, 0.01);
  // 1e6 rows * 0.01 * 0.5 = 5000 rows, 16 bytes per output row.
  EXPECT_EQ(q.result_rows, 5000u);
  EXPECT_EQ(q.result_bytes, 5000u * 16);
}

TEST(QueryTest, DeriveResultShapeWithLimit) {
  const Catalog catalog = testing::MakeTinyCatalog();
  Query q = testing::MakeTinyQuery(catalog, 0.01);
  DeriveResultShape(catalog, 0.1, &q);
  EXPECT_EQ(q.result_rows, 500u);
}

TEST(QueryTest, ResultRowsNeverZero) {
  const Catalog catalog = testing::MakeTinyCatalog();
  Query q = testing::MakeTinyQuery(catalog, 1e-9);
  DeriveResultShape(catalog, 1e-9, &q);
  EXPECT_GE(q.result_rows, 1u);
}

TEST(QueryTest, ResultRowsCappedAtTable) {
  const Catalog catalog = testing::MakeTinyCatalog();
  Query q = testing::MakeTinyQuery(catalog, 1.0);
  q.predicates.clear();
  DeriveResultShape(catalog, 1.0, &q);
  EXPECT_EQ(q.result_rows, 1'000'000u);
}

TEST(QueryTest, ValidateAcceptsWellFormed) {
  const Catalog catalog = testing::MakeTinyCatalog();
  EXPECT_TRUE(testing::MakeTinyQuery(catalog).Validate(catalog).ok());
}

TEST(QueryTest, ValidateRejectsBadTable) {
  const Catalog catalog = testing::MakeTinyCatalog();
  Query q = testing::MakeTinyQuery(catalog);
  q.table = 99;
  EXPECT_EQ(q.Validate(catalog).code(), StatusCode::kOutOfRange);
}

TEST(QueryTest, ValidateRejectsCrossTableColumn) {
  const Catalog catalog = testing::MakeTinyCatalog();
  Query q = testing::MakeTinyQuery(catalog);
  q.output_columns.push_back(*catalog.FindColumn("dim.d_attr"));
  EXPECT_EQ(q.Validate(catalog).code(), StatusCode::kInvalidArgument);
}

TEST(QueryTest, ValidateRejectsNoOutputs) {
  const Catalog catalog = testing::MakeTinyCatalog();
  Query q = testing::MakeTinyQuery(catalog);
  q.output_columns.clear();
  EXPECT_FALSE(q.Validate(catalog).ok());
}

TEST(QueryTest, ValidateRejectsBadSelectivity) {
  const Catalog catalog = testing::MakeTinyCatalog();
  Query q = testing::MakeTinyQuery(catalog);
  q.predicates[0].selectivity = 0.0;
  EXPECT_FALSE(q.Validate(catalog).ok());
  q.predicates[0].selectivity = 1.5;
  EXPECT_FALSE(q.Validate(catalog).ok());
}

TEST(QueryTest, ValidateRejectsBadMultipliers) {
  const Catalog catalog = testing::MakeTinyCatalog();
  Query q = testing::MakeTinyQuery(catalog);
  q.cpu_multiplier = 0.5;
  EXPECT_FALSE(q.Validate(catalog).ok());
  q.cpu_multiplier = 1.0;
  q.parallel_fraction = 1.5;
  EXPECT_FALSE(q.Validate(catalog).ok());
}

TEST(QueryTest, ValidateRejectsOversizedResult) {
  const Catalog catalog = testing::MakeTinyCatalog();
  Query q = testing::MakeTinyQuery(catalog);
  q.result_rows = 2'000'000;
  EXPECT_FALSE(q.Validate(catalog).ok());
}

}  // namespace
}  // namespace cloudcache
