// Multi-tenant contention and fairness grids.
//
// Grid 1 (contention): sweeps tenant count x traffic skew for the economy
// schemes (bypass rides along as the no-economy baseline): N independent
// query streams — each with its own template mix, arrival rate, and budget
// jitter stream — merge through the event-driven simulator into one shared
// cache, while the aggregate offered load stays pinned at the single-stream
// rate. What the grid shows is therefore pure cross-tenant contention: how
// much the shared economy's operating cost, response time, and per-tenant
// fairness move as one stream fragments into many competing ones.
//
// Fairness columns: Jain's index and max-min share over per-tenant mean
// response times, Jain's index over per-tenant billed dollars, and the
// largest regret the economy still holds for any one tenant at run end
// (unserved demand the shared cache never priced in).
//
// Grid 2 (fairness policies): holds the workload at the most skewed
// contention point (4 tenants, Zipf skew 1) and toggles the tenant-economics
// policies — tenant-weighted eviction, admission control, and both — so the
// cost of fairness is measured against the flags-off economy on the
// identical query stream. This grid runs the calibrated tenant-locality
// regime (high template-popularity skew, scarce working capital, the
// admission point of tests/sim/tenant_policy_test.cpp) because at the
// paper's own operating point the economy monetizes every tenant and the
// policies correctly never fire — an all-identical table.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/sim/sweep.h"
#include "src/util/logging.h"
#include "src/util/money.h"
#include "src/util/table_writer.h"

namespace {

using namespace cloudcache;
using cloudcache::bench::BenchOptions;
using cloudcache::bench::EmitTable;
using cloudcache::bench::MakePaperSetup;
using cloudcache::bench::PaperConfig;
using cloudcache::bench::ParseArgs;
using cloudcache::bench::RunVariantSweep;

struct TenancyPoint {
  uint32_t tenants;
  double skew;
};

struct PolicyPoint {
  const char* label;
  bool fair_eviction;
  bool admission;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions options = ParseArgs(argc, argv, /*default_queries=*/20'000);
  const auto setup = MakePaperSetup(options);
  const ExperimentConfig base = PaperConfig(options, /*interarrival=*/10.0);

  // --- Grid 1: contention (tenant count x skew, policies off).
  const std::vector<TenancyPoint> points = {
      {1, 0.0}, {2, 0.0}, {4, 0.0}, {4, 1.0}, {8, 0.0}, {8, 1.0}};
  const std::vector<SchemeKind> schemes = {
      SchemeKind::kBypassYield, SchemeKind::kEconCheap,
      SchemeKind::kEconFast};

  std::vector<SweepVariant> variants;
  variants.reserve(points.size());
  for (const TenancyPoint& point : points) {
    SweepVariant variant;
    char label[48];
    std::snprintf(label, sizeof(label), "tenants=%u skew=%g", point.tenants,
                  point.skew);
    variant.label = label;
    variant.customize = [point](ExperimentConfig& config) {
      config.tenancy.tenants = point.tenants;
      config.tenancy.traffic_skew = point.skew;
    };
    variants.push_back(std::move(variant));
  }

  const std::vector<SweepResult> results =
      RunVariantSweep(setup, options, base, schemes, variants);

  TableWriter table({"tenants", "skew", "scheme", "op_cost_$",
                     "mean_resp_s", "hit_rate", "jain_resp", "maxmin_resp",
                     "jain_billed", "max_tenant_regret_$"});
  for (const SweepResult& result : results) {
    const SimMetrics& m = result.metrics;
    const TenancyPoint& point = points[result.cell.variant_index];
    Money regret_max;
    for (const TenantMetrics& tenant : m.tenants) {
      regret_max = Money::Max(regret_max, tenant.final_regret);
    }
    CLOUDCACHE_CHECK(
        table
            .AddRow({std::to_string(point.tenants),
                     FormatDouble(point.skew, 1), m.scheme_name,
                     FormatDouble(m.operating_cost.Total(), 2),
                     FormatDouble(m.MeanResponse(), 3),
                     FormatDouble(m.CacheHitRate(), 3),
                     FormatDouble(m.fairness.response_jain, 3),
                     FormatDouble(m.fairness.response_max_min, 3),
                     FormatDouble(m.fairness.billed_jain, 3),
                     FormatDouble(regret_max.ToDollars(), 2)})
            .ok());
  }

  std::puts("Multi-tenant contention (shared cache, load held constant)");
  EmitTable(table, options);

  // --- Grid 2: fairness policies at the most skewed contention point.
  const std::vector<PolicyPoint> policies = {
      {"off", false, false},
      {"fair-evict", true, false},
      {"admission", false, true},
      {"both", true, true}};
  const std::vector<SchemeKind> policy_schemes = {SchemeKind::kEconCheap,
                                                  SchemeKind::kEconFast};

  std::vector<SweepVariant> policy_variants;
  policy_variants.reserve(policies.size());
  for (const PolicyPoint& policy : policies) {
    SweepVariant variant;
    variant.label = policy.label;
    variant.customize = [policy](ExperimentConfig& config) {
      config.tenancy.tenants = 4;
      config.tenancy.traffic_skew = 1.0;
      config.tenancy.fair_eviction = policy.fair_eviction;
      config.tenancy.admission = policy.admission;
      // The calibrated tenant-locality regime (see the header comment).
      // Deliberately frozen copies of the tenant_policy_test scenario
      // knobs; PaperConfig's base customize_econ (applied first below)
      // supplies the rest of that scenario (regret_fraction_a 0.02, no
      // build latency). The grid still differs from the pinned test in
      // --queries and --scale-tb: the test owns the guarantee, this
      // grid only demonstrates the regime and may drift from a
      // recalibrated test.
      config.workload.popularity_skew = 3.0;
      const auto base_customize = config.customize_econ;
      config.customize_econ = [base_customize](EconScheme::Config& econ) {
        if (base_customize) base_customize(econ);
        econ.economy.initial_credit = Money::FromDollars(30);
        econ.economy.admission.throttle_ratio = 0.75;
        econ.economy.admission.readmit_ratio = 0.375;
        econ.economy.admission.min_regret = Money::FromDollars(2);
      };
    };
    policy_variants.push_back(std::move(variant));
  }

  const std::vector<SweepResult> policy_results = RunVariantSweep(
      setup, options, base, policy_schemes, policy_variants);

  TableWriter policy_table({"policy", "scheme", "op_cost_$", "profit_$",
                            "mean_resp_s", "jain_resp", "jain_billed",
                            "throttled_q", "invest", "evict"});
  for (const SweepResult& result : policy_results) {
    const SimMetrics& m = result.metrics;
    const PolicyPoint& policy = policies[result.cell.variant_index];
    CLOUDCACHE_CHECK(
        policy_table
            .AddRow({policy.label, m.scheme_name,
                     FormatDouble(m.operating_cost.Total(), 2),
                     FormatDouble(m.profit.ToDollars(), 2),
                     FormatDouble(m.MeanResponse(), 3),
                     FormatDouble(m.fairness.response_jain, 3),
                     FormatDouble(m.fairness.billed_jain, 3),
                     std::to_string(m.throttled),
                     std::to_string(m.investments),
                     std::to_string(m.evictions)})
            .ok());
  }

  std::puts("");
  std::puts(
      "Fairness policies (4 tenants, skew 1.0; same stream, flags toggled)");
  // Grid 1 owns --csv; the policy grid writes a sibling file so the
  // contention table is not overwritten.
  BenchOptions policy_options = options;
  if (!policy_options.csv_path.empty()) {
    std::string path = policy_options.csv_path;
    const std::string suffix = ".csv";
    if (path.size() > suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      path.insert(path.size() - suffix.size(), ".policy");
    } else {
      path += ".policy";
    }
    policy_options.csv_path = path;
  }
  EmitTable(policy_table, policy_options);
  return 0;
}
