#include "src/catalog/schema.h"

#include "src/util/logging.h"

namespace cloudcache {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kInt32:
      return "int32";
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat64:
      return "float64";
    case DataType::kDecimal:
      return "decimal";
    case DataType::kDate:
      return "date";
    case DataType::kChar:
      return "char";
    case DataType::kVarchar:
      return "varchar";
  }
  return "?";
}

uint32_t DefaultWidth(DataType type) {
  switch (type) {
    case DataType::kInt32:
    case DataType::kDate:
      return 4;
    case DataType::kInt64:
    case DataType::kFloat64:
    case DataType::kDecimal:
      return 8;
    case DataType::kChar:
    case DataType::kVarchar:
      return 0;
  }
  return 0;
}

uint64_t Table::RowWidth() const {
  uint64_t width = 0;
  for (const Column& col : columns) width += col.width_bytes;
  return width;
}

uint64_t Table::TotalBytes() const { return row_count * RowWidth(); }

Status Catalog::AddTable(Table table) {
  if (table.columns.empty()) {
    return Status::InvalidArgument("table '" + table.name +
                                   "' has no columns");
  }
  for (const Table& existing : tables_) {
    if (existing.name == table.name) {
      return Status::AlreadyExists("table '" + table.name + "'");
    }
  }
  for (const Column& col : table.columns) {
    if (col.width_bytes == 0) {
      return Status::InvalidArgument("column '" + table.name + "." +
                                     col.name + "' has zero width");
    }
    if (col.distinct_fraction <= 0.0 || col.distinct_fraction > 1.0) {
      return Status::InvalidArgument("column '" + table.name + "." +
                                     col.name +
                                     "' distinct_fraction outside (0, 1]");
    }
  }
  table.table_id = static_cast<TableId>(tables_.size());
  tables_.push_back(std::move(table));
  Reindex();
  return Status::OK();
}

void Catalog::Reindex() {
  columns_.clear();
  ColumnId next = 0;
  for (Table& table : tables_) {
    for (Column& col : table.columns) {
      col.table_id = table.table_id;
      col.column_id = next++;
    }
  }
  columns_.reserve(next);
  for (const Table& table : tables_) {
    for (const Column& col : table.columns) columns_.push_back(&col);
  }
}

Result<TableId> Catalog::FindTable(const std::string& name) const {
  for (const Table& table : tables_) {
    if (table.name == name) return table.table_id;
  }
  return Status::NotFound("table '" + name + "'");
}

Result<ColumnId> Catalog::FindColumn(const std::string& qualified) const {
  const size_t dot = qualified.find('.');
  if (dot == std::string::npos) {
    return Status::InvalidArgument("expected 'table.column', got '" +
                                   qualified + "'");
  }
  const std::string table_name = qualified.substr(0, dot);
  const std::string column_name = qualified.substr(dot + 1);
  Result<TableId> table_id = FindTable(table_name);
  if (!table_id.ok()) return table_id.status();
  for (const Column& col : tables_[*table_id].columns) {
    if (col.name == column_name) return col.column_id;
  }
  return Status::NotFound("column '" + qualified + "'");
}

uint64_t Catalog::ColumnBytes(ColumnId id) const {
  CLOUDCACHE_CHECK_LT(id, columns_.size());
  const Column& col = *columns_[id];
  return tables_[col.table_id].row_count * col.width_bytes;
}

uint64_t Catalog::TotalBytes() const {
  uint64_t total = 0;
  for (const Table& table : tables_) total += table.TotalBytes();
  return total;
}

}  // namespace cloudcache
