
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cost/cost_model_test.cpp" "tests/CMakeFiles/cloudcache_cost_tests.dir/cost/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/cloudcache_cost_tests.dir/cost/cost_model_test.cpp.o.d"
  "/root/repo/tests/cost/price_list_test.cpp" "tests/CMakeFiles/cloudcache_cost_tests.dir/cost/price_list_test.cpp.o" "gcc" "tests/CMakeFiles/cloudcache_cost_tests.dir/cost/price_list_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/cloudcache.dir/DependInfo.cmake"
  "/root/repo/build-asan/_deps/googletest-build/googletest/CMakeFiles/gtest_main.dir/DependInfo.cmake"
  "/root/repo/build-asan/_deps/googletest-build/googletest/CMakeFiles/gtest.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
