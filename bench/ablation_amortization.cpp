// Ablation A2: the amortization horizon `n` of Eq. 7,
// f_S(n, Build_S(S)) = Build_S(S) / n.
//
// "Selecting n is a challenging problem in itself … We intend to study
// this problem in our future research" (Section IV-D) — this sweep is that
// study at simulation scale. Short horizons price hypothetical structures
// (and freshly built ones) far above the back-end quote, so regret never
// accrues and nothing is built; long horizons make cache plans cheap but
// recover the build spend slowly, leaving the account exposed when the
// workload drifts.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/sim/report.h"
#include "src/util/logging.h"

int main(int argc, char** argv) {
  using namespace cloudcache;
  using namespace cloudcache::bench;

  const BenchOptions options = ParseArgs(argc, argv, /*default=*/60'000);
  const PaperSetup setup = MakePaperSetup(options);

  const std::vector<int64_t> horizons = {100,     1'000,   10'000,
                                         50'000,  200'000, 1'000'000};
  TableWriter table({"n", "mean_resp_s", "op_cost_$", "investments",
                     "hit_rate", "revenue_$", "credit_$"});
  for (int64_t n : horizons) {
    ExperimentConfig config = PaperConfig(options, 10.0);
    config.scheme = SchemeKind::kEconCheap;
    config.customize_econ = [n](EconScheme::Config& econ) {
      econ.economy.initial_credit = Money::FromDollars(200);
      econ.economy.model_build_latency = false;
      econ.economy.regret_fraction_a = 0.02;
      econ.economy.amortization_horizon = n;
    };
    const SimMetrics m =
        RunExperiment(setup.catalog, setup.templates, config);
    CLOUDCACHE_CHECK(table
                         .AddRow({std::to_string(n),
                                  FormatDouble(m.MeanResponse(), 3),
                                  FormatDouble(m.operating_cost.Total(), 2),
                                  std::to_string(m.investments),
                                  FormatDouble(m.CacheHitRate(), 3),
                                  FormatDouble(m.revenue.ToDollars(), 2),
                                  FormatDouble(m.final_credit.ToDollars(),
                                               2)})
                         .ok());
    std::fprintf(stderr, "  n=%lld done\n", static_cast<long long>(n));
  }
  std::puts("Ablation A2 — amortization horizon n (Eq. 7), econ-cheap @ 10s");
  EmitTable(table, options);
  return 0;
}
