#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/baseline/scheme.h"
#include "src/cost/cost_model.h"
#include "src/cost/price_list.h"
#include "src/persist/snapshot.h"
#include "src/sim/event_queue.h"
#include "src/sim/metrics.h"
#include "src/workload/generator.h"

namespace cloudcache {

/// Checkpoint/restore controls (docs/persistence.md). All off by default,
/// leaving every existing run untouched.
struct CheckpointOptions {
  /// Write a snapshot after every N processed queries (0 disables). The
  /// classic drivers checkpoint exactly at multiples of N; the windowed
  /// parallel driver checkpoints at the first window close at or past
  /// each multiple (window closes are its only deterministic boundaries).
  /// The final boundary of a completed run is never checkpointed — a
  /// finished run's deliverable is its metrics, not a resume point.
  uint64_t every = 0;
  /// Snapshot file. Written atomically (temp file + rename); required
  /// whenever `every` > 0 or a restore is requested.
  std::string path;
  /// Crash injection: abort the run — no finalization, no snapshot write —
  /// at the first checkpoint boundary at or past this many processed
  /// queries (0 disables). The run returns a kResourceExhausted Status;
  /// recovery restores from the last snapshot `every` produced.
  uint64_t crash_after = 0;
  /// Hash of the deterministic experiment configuration, stamped into
  /// every snapshot header and verified on restore.
  uint64_t config_hash = 0;
  /// How to treat `path` at startup. kAuto degrades gracefully — a
  /// missing, corrupt, or mismatched snapshot falls back to a fresh run;
  /// kHard fails the run loudly instead.
  enum class Restore { kNone, kAuto, kHard };
  Restore restore = Restore::kNone;
};

/// Driver-mode tags stamped into a snapshot's "meta" section: restoring a
/// snapshot into a differently-shaped driver (e.g. a windowed-parallel
/// snapshot into the serial driver) is a configuration error, caught
/// before any state is overwritten.
inline constexpr uint8_t kDriverModeSingleStream = 0;
inline constexpr uint8_t kDriverModeMultiTenant = 1;
inline constexpr uint8_t kDriverModeWindowed = 2;

/// Simulation controls.
struct SimulatorOptions {
  /// Queries to drive through the scheme (the paper simulates ~1e6; the
  /// default keeps full four-scheme sweeps interactive).
  uint64_t num_queries = 50'000;
  /// Real infrastructure rates used for metering operating cost,
  /// regardless of what the scheme believes internally.
  PriceList metered_prices = PriceList::AmazonEc2_2009();
  /// Cumulative-cost / credit timelines keep one point per this many
  /// queries.
  uint64_t timeline_stride = 500;
  /// Rent of one rented cluster node (Scheme::RentedNodes) as a multiple
  /// of the node-reservation rate. Irrelevant — and never consulted — for
  /// single-node schemes, which rent no cluster nodes.
  double node_rent_multiplier = 1.0;
  /// Worker threads for the windowed parallel cluster driver
  /// (ParallelNodeSimulator in src/sim/node_parallel.h). 0 keeps the
  /// classic serial driver below; the experiment wiring routes clustered
  /// single-stream runs through the parallel driver when > 0.
  uint32_t parallel_threads = 0;
  /// Checkpoint/restore and crash injection (off by default).
  CheckpointOptions checkpoint;
};

/// Books one served-query outcome into a counter block. SimMetrics and
/// TenantMetrics intentionally share the names of every per-query
/// counter — response histogram included — so the run-wide aggregates and
/// a tenant slice stay in lockstep through this single accounting path.
/// Shared by the classic driver below and the windowed parallel driver
/// (src/sim/node_parallel.h), so both book outcomes identically.
template <typename Counters>
void AccountOutcome(const ServedQuery& served, Counters* c) {
  ++c->queries;
  if (served.served) {
    ++c->served;
    c->response_seconds.Add(served.execution.time_seconds);
    c->response_hist.Add(served.execution.time_seconds);
    if (served.spec.access == PlanSpec::Access::kBackend) {
      ++c->served_in_backend;
    } else {
      ++c->served_in_cache;
    }
    c->revenue += served.payment;
    c->profit += served.profit;
  }
  c->investments += served.investments;
  c->evictions += served.evictions;
  // Counts queries *served* while the tenant was throttled (the metric's
  // documented meaning); a declined query under a decline-configured
  // economy is already counted by the budget-case mix.
  if (served.served && served.throttled) ++c->throttled;
  if (served.has_budget_case) {
    switch (served.budget_case) {
      case BudgetCase::kCaseA:
        ++c->case_a;
        break;
      case BudgetCase::kCaseB:
        ++c->case_b;
        break;
      case BudgetCase::kCaseC:
        ++c->case_c;
        break;
    }
  }
}

/// Discrete-event driver: feeds a workload through a Scheme and meters
/// what the cloud actually pays (Fig. 4) and what users actually wait
/// (Fig. 5).
///
/// Metering is strictly at `metered_prices` on raw resource quantities —
/// CPU-seconds, WAN bytes, I/O ops from execution and builds, plus
/// byte-seconds of disk rent and reservation-seconds of extra CPU nodes
/// integrated between arrivals — so a scheme whose internal prices ignore
/// a resource (net-only) still pays for it here, exactly as in the paper's
/// evaluation.
class Simulator {
 public:
  /// Single-stream driver: the paper's evaluation loop. The generator IS
  /// the schedule, so queries are processed directly as they are drawn.
  Simulator(const Catalog* catalog, Scheme* scheme,
            WorkloadGenerator* workload, SimulatorOptions options);

  /// Multi-tenant driver: merges the independent query streams in
  /// timestamp order through an EventQueue (ties break by tenant id, then
  /// insertion order), so N tenants compete for the scheme's one cache
  /// under the shared economy. `workloads[t]` is tenant t's generator (it
  /// should carry WorkloadOptions::tenant_id = t); `options.num_queries`
  /// counts the merged total across tenants. Works for any N >= 1 — with
  /// one stream the merge degenerates to the single-stream schedule and
  /// the metrics are bit-identical to the single-stream constructor's
  /// (plus a one-entry `SimMetrics::tenants` slice).
  Simulator(const Catalog* catalog, Scheme* scheme,
            std::vector<WorkloadGenerator*> workloads,
            SimulatorOptions options);

  /// Runs the configured number of queries and returns the metrics.
  /// Asserts on checkpoint I/O failures and crash injection; the classic
  /// entry point for runs without checkpointing.
  SimMetrics Run();

  /// Checkpoint-aware run: writes snapshots at the configured cadence and
  /// honors crash injection (which surfaces as a kResourceExhausted
  /// Status — the run was intentionally abandoned before finalization).
  Result<SimMetrics> RunChecked();

  /// Restores mid-run state from a snapshot written by a prior
  /// checkpointed run. Must be called before RunChecked, on a freshly
  /// constructed simulator whose scheme and workload generators were
  /// built from the identical configuration. On error the simulator and
  /// scheme are unusable; discard both.
  Status RestoreFrom(const persist::SnapshotReader& reader);

  // --- External drive surface (src/server/). The caller owns the merge
  // loop — cloudcached feeds queries one at a time as they come off its
  // connections — while the per-query pipeline, the rent meter, and the
  // snapshot writer stay this class's. A server-driven sequence is
  // therefore bit-identical to Run() on the same merged stream, and its
  // checkpoints restore into either driver.

  /// Prepares an externally driven run: performs exactly the fresh-start
  /// initialization of the internal drivers (scheme name, tenant slices,
  /// rent-meter origin at the earliest peeked arrival) — or, after
  /// RestoreFrom, adopts the interrupted run's accumulators and resume
  /// index. Call once, before the first ExternalServe.
  void ExternalBegin();

  /// Serves one query through the shared per-query pipeline at the next
  /// merge index. The caller must present queries in the same merged
  /// order the internal drivers would produce (arrival time, ties by
  /// tenant id) and must have drawn them from this simulator's own
  /// generators; in multi-tenant mode `query.tenant_id` selects the
  /// metrics slice. Returns the served outcome for the caller's reply.
  ServedQuery ExternalServe(const Query& query);

  /// Writes a snapshot at the current external boundary, through the same
  /// writer the internal drivers use. Refuses (kFailedPrecondition) once
  /// the run is complete — a finished run has nothing to resume — and
  /// requires a configured checkpoint path.
  Status ExternalCheckpoint() const;

  /// Queries served so far on the external path (includes the restored
  /// prefix after RestoreFrom + ExternalBegin).
  uint64_t external_processed() const { return external_processed_; }

  /// Accumulated metrics of the externally driven run. Finalization
  /// (residual-rent flush, final credit/fairness stamps) never runs on
  /// this path: a server's economy remains live until the process exits.
  const SimMetrics& external_metrics() const { return external_metrics_; }

  const SimulatorOptions& options() const { return options_; }

 private:
  Status DriveSingleStream(SimMetrics* metrics);
  Status DriveMultiTenant(SimMetrics* metrics);
  /// Writes a snapshot at checkpoint boundaries and injects the
  /// configured crash. `processed` counts queries fully processed.
  Status MaybeCheckpointAndCrash(uint64_t processed,
                                 const SimMetrics& metrics);
  Status WriteSnapshot(uint64_t processed, const SimMetrics& metrics) const;
  /// The per-query pipeline every path shares, in this exact order so the
  /// paths stay bit-identical: meter rent up to `query.arrival_time`,
  /// serve the query, meter its execution + builds, account the outcome
  /// (into `tenant` too, when non-null), and sample the timelines at
  /// stride boundaries of the merged index `i`. Returns the outcome so
  /// the external drive can reply to its client.
  ServedQuery ProcessQuery(const Query& query, uint64_t i,
                           SimMetrics* metrics, TenantMetrics* tenant);
  /// Integrates disk + node-reservation rent (plus rented-cluster-node
  /// rent, when the scheme operates extra cache nodes) from
  /// last_meter_time_ to now. Rent is shared-infrastructure spending, so
  /// it lands only on the run-wide breakdown, never on a tenant slice.
  void MeterRent(SimTime now, SimMetrics* metrics);
  /// Prices one query's execution + builds into the breakdown (and into
  /// the serving tenant's slice, when `tenant` is non-null).
  void MeterQuery(const Query& query, const ServedQuery& served,
                  SimTime now, SimMetrics* metrics, TenantMetrics* tenant);
  /// Charges the sub-micro-dollar rent residue still sitting in
  /// pending_rent_dollars_ at end of run, rounded UP to a whole
  /// micro-dollar — the metered breakdown already counted the exact
  /// fraction, and without this flush final_credit would disagree with
  /// the operating-cost totals by the unbilled remainder.
  void FlushResidualRent();

  const Catalog* catalog_;
  Scheme* scheme_;
  WorkloadGenerator* workload_;  // Single-stream mode (null in multi).
  std::vector<WorkloadGenerator*> tenant_workloads_;  // Multi-tenant mode.
  SimulatorOptions options_;
  CostModel metered_model_;
  SimTime last_meter_time_ = 0;
  /// Rent not yet charged to the account because it rounds below a
  /// micro-dollar (see MeterRent).
  double pending_rent_dollars_ = 0;
  /// Restore bookkeeping: the query index to resume at and the metrics
  /// accumulated by the interrupted run (moved into the live metrics at
  /// the top of RunChecked).
  uint64_t start_index_ = 0;
  bool restored_ = false;
  SimMetrics restored_metrics_;
  /// External-drive accumulators (ExternalBegin/ExternalServe above);
  /// untouched by the internal drivers.
  uint64_t external_processed_ = 0;
  SimMetrics external_metrics_;
};

}  // namespace cloudcache
