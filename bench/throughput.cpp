// Hot-path throughput regression harness.
//
// Runs a Fig. 4-style grid (four schemes x four inter-arrival times) in a
// single thread, wall-clock-times each cell, and reports simulated
// queries/sec per scheme — the constant-factor speed of the full
// enumerate -> price -> skyline -> regret -> invest decision loop, which is
// what sweep wall-clock is made of. Unlike the micro_* benches this driver
// needs no Google Benchmark, so it builds everywhere and can run in CI.
//
// Results are also written as JSON (default BENCH_hotpath.json) so
// successive PRs accumulate a perf trajectory:
//
//   throughput --smoke --json=BENCH_hotpath.json
//
// Meaningful numbers require a Release build; the driver warns otherwise.
// --no-plan-cache measures the same grid with the enumerator's
// plan-skeleton cache disabled, to quantify what the cache buys.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/sim/experiment.h"

namespace {

using cloudcache::ExperimentConfig;
using cloudcache::PaperInterarrivals;
using cloudcache::PaperSchemes;
using cloudcache::RunExperiment;
using cloudcache::SchemeKind;
using cloudcache::SchemeKindToString;
using cloudcache::SimMetrics;
using cloudcache::bench::BenchOptions;
using cloudcache::bench::MakePaperSetup;
using cloudcache::bench::PaperConfig;

struct ThroughputOptions {
  BenchOptions bench;
  std::string json_path = "BENCH_hotpath.json";
  bool plan_cache = true;
  bool smoke = false;
};

bool ConsumeFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

ThroughputOptions ParseThroughputArgs(int argc, char** argv) {
  ThroughputOptions options;
  options.bench.queries = 20'000;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ConsumeFlag(argv[i], "--queries", &value)) {
      options.bench.queries = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ConsumeFlag(argv[i], "--scale-tb", &value)) {
      options.bench.scale_tb = std::strtod(value.c_str(), nullptr);
    } else if (ConsumeFlag(argv[i], "--seed", &value)) {
      options.bench.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ConsumeFlag(argv[i], "--json", &value)) {
      options.json_path = value;
    } else if (std::strcmp(argv[i], "--no-plan-cache") == 0) {
      options.plan_cache = false;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      options.smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--queries=N] [--scale-tb=X] [--seed=N] "
                   "[--json=PATH] [--no-plan-cache] [--smoke]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (options.smoke) {
    options.bench.queries = std::min<uint64_t>(options.bench.queries, 2'000);
  }
  return options;
}

struct CellResult {
  SchemeKind scheme;
  double interarrival_seconds = 0;
  uint64_t queries = 0;
  double wall_seconds = 0;
  double qps = 0;
  double operating_cost_dollars = 0;
  double cache_hit_rate = 0;
  double response_p50 = 0;
  double response_p95 = 0;
  double response_p99 = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const ThroughputOptions options = ParseThroughputArgs(argc, argv);
  const auto setup = MakePaperSetup(options.bench);

#ifndef NDEBUG
  std::fprintf(stderr,
               "throughput: WARNING — assertions enabled; use a Release "
               "build for regression-grade numbers\n");
#endif
  std::fprintf(stderr, "throughput: %llu queries/cell, %.1f TB, plan cache "
               "%s\n",
               static_cast<unsigned long long>(options.bench.queries),
               options.bench.scale_tb, options.plan_cache ? "on" : "off");

  const std::vector<double> intervals = PaperInterarrivals();
  const std::vector<SchemeKind> schemes = PaperSchemes();

  std::vector<CellResult> cells;
  for (double interval : intervals) {
    for (SchemeKind scheme : schemes) {
      ExperimentConfig config = PaperConfig(options.bench, interval);
      config.scheme = scheme;
      const auto base_customize = config.customize_econ;
      const bool plan_cache = options.plan_cache;
      config.customize_econ = [base_customize,
                               plan_cache](cloudcache::EconScheme::Config& c) {
        if (base_customize) base_customize(c);
        c.enumerator.enable_plan_cache = plan_cache;
      };

      const auto start = std::chrono::steady_clock::now();
      const SimMetrics metrics =
          RunExperiment(setup.catalog, setup.templates, config);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();

      CellResult cell;
      cell.scheme = scheme;
      cell.interarrival_seconds = interval;
      cell.queries = metrics.queries;
      cell.wall_seconds = seconds;
      cell.qps = seconds > 0
                     ? static_cast<double>(metrics.queries) / seconds
                     : 0;
      cell.operating_cost_dollars = metrics.operating_cost.Total();
      cell.cache_hit_rate = metrics.CacheHitRate();
      cell.response_p50 = metrics.response_hist.Quantile(0.5);
      cell.response_p95 = metrics.response_hist.Quantile(0.95);
      cell.response_p99 = metrics.response_hist.Quantile(0.99);
      cells.push_back(cell);
      std::fprintf(stderr, "  [done] %-10s @ %4.0fs  %9.0f q/s\n",
                   SchemeKindToString(scheme), interval, cell.qps);
    }
  }

  // Per-scheme aggregate: total simulated queries over total wall time
  // across the interval axis.
  std::map<std::string, std::pair<uint64_t, double>> totals;
  for (const CellResult& cell : cells) {
    auto& [queries, seconds] = totals[SchemeKindToString(cell.scheme)];
    queries += cell.queries;
    seconds += cell.wall_seconds;
  }

  std::puts("Hot-path throughput (simulated queries per wall-clock second)");
  std::printf("%-12s %14s %14s\n", "scheme", "queries", "qps");
  for (const auto& [name, total] : totals) {
    std::printf("%-12s %14llu %14.0f\n", name.c_str(),
                static_cast<unsigned long long>(total.first),
                total.second > 0
                    ? static_cast<double>(total.first) / total.second
                    : 0.0);
  }

  std::FILE* json = std::fopen(options.json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n",
                 options.json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"hotpath_throughput\",\n"
               "  \"queries_per_cell\": %llu,\n"
               "  \"scale_tb\": %.3f,\n"
               "  \"seed\": %llu,\n"
               "  \"plan_cache\": %s,\n"
               "  \"cells\": [\n",
               static_cast<unsigned long long>(options.bench.queries),
               options.bench.scale_tb,
               static_cast<unsigned long long>(options.bench.seed),
               options.plan_cache ? "true" : "false");
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    std::fprintf(json,
                 "    {\"scheme\": \"%s\", \"interarrival_s\": %.1f, "
                 "\"queries\": %llu, \"wall_seconds\": %.6f, "
                 "\"qps\": %.1f, \"operating_cost_dollars\": %.6f, "
                 "\"cache_hit_rate\": %.6f, "
                 "\"response_p50_seconds\": %.6f, "
                 "\"response_p95_seconds\": %.6f, "
                 "\"response_p99_seconds\": %.6f}%s\n",
                 SchemeKindToString(cell.scheme), cell.interarrival_seconds,
                 static_cast<unsigned long long>(cell.queries),
                 cell.wall_seconds, cell.qps, cell.operating_cost_dollars,
                 cell.cache_hit_rate, cell.response_p50, cell.response_p95,
                 cell.response_p99, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(json,
               "  ],\n"
               "  \"aggregate_qps\": {\n");
  size_t emitted = 0;
  for (const auto& [name, total] : totals) {
    std::fprintf(json, "    \"%s\": %.1f%s\n", name.c_str(),
                 total.second > 0
                     ? static_cast<double>(total.first) / total.second
                     : 0.0,
                 ++emitted < totals.size() ? "," : "");
  }
  std::fprintf(json,
               "  }\n"
               "}\n");
  std::fclose(json);
  std::fprintf(stderr, "throughput: wrote %s\n", options.json_path.c_str());
  return 0;
}
