#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace cloudcache {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable over millions of samples; used for per-query response
/// time and cost statistics in the simulator.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one (parallel sweeps).
  void Merge(const RunningStats& other);

  int64_t count() const { return count_; }
  /// Mean of the observations; 0 if empty.
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;
  /// sqrt(variance()).
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Raw accumulator fields for checkpointing: m2 is not derivable from
  /// variance() below two samples, and min/max sit at ±inf while empty, so
  /// an exact restore needs the internals rather than the public views.
  double raw_mean() const { return mean_; }
  double raw_m2() const { return m2_; }
  double raw_min() const { return min_; }
  double raw_max() const { return max_; }
  void RestoreRaw(int64_t count, double mean, double m2, double sum,
                  double min, double max) {
    count_ = count;
    mean_ = mean;
    m2_ = m2;
    sum_ = sum;
    min_ = min;
    max_ = max;
  }

 private:
  int64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-memory quantile sketch over non-negative values: log-spaced bins
/// covering [1e-9, 1e9) with ~2.3% relative error, plus exact min/max.
///
/// Chosen over exact storage because a million-query simulation would
/// otherwise hold a million doubles per metric, and over t-digest for
/// simplicity — the relative error is far below the run-to-run noise of the
/// simulated workloads.
class QuantileSketch {
 public:
  QuantileSketch();

  /// Adds one observation; negative values are clamped to zero.
  void Add(double x);

  /// Merges another sketch (must be default-layout, which all are).
  void Merge(const QuantileSketch& other);

  /// Value at quantile q in [0, 1]; 0 if empty. q=0 returns the exact min,
  /// q=1 the exact max.
  double Quantile(double q) const;

  int64_t count() const { return count_; }

  /// Raw bin state for checkpointing (see RunningStats::RestoreRaw).
  const std::vector<int64_t>& raw_bins() const { return bins_; }
  int64_t raw_underflow() const { return underflow_; }
  double raw_min() const { return min_; }
  double raw_max() const { return max_; }
  void RestoreRaw(std::vector<int64_t> bins, int64_t count, int64_t underflow,
                  double min, double max) {
    bins_ = std::move(bins);
    count_ = count;
    underflow_ = underflow;
    min_ = min;
    max_ = max;
  }

 private:
  size_t BinIndex(double x) const;
  double BinMid(size_t index) const;

  static constexpr size_t kBins = 1024;
  std::vector<int64_t> bins_;
  int64_t count_ = 0;
  int64_t underflow_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Append-only (time, value) series with down-sampling for reports.
class TimeSeries {
 public:
  /// Appends a point; times must be non-decreasing.
  void Add(double time, double value);

  size_t size() const { return times_.size(); }
  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }

  /// Last value, or 0 if empty.
  double Last() const { return values_.empty() ? 0.0 : values_.back(); }

  /// At most `max_points` evenly-spaced-by-index points, keeping first and
  /// last. Returns the whole series if it is already small enough.
  TimeSeries Downsample(size_t max_points) const;

  /// Replaces the whole series for checkpoint restore; the vectors must be
  /// equal length with non-decreasing times.
  void RestoreRaw(std::vector<double> times, std::vector<double> values) {
    times_ = std::move(times);
    values_ = std::move(values);
  }

 private:
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace cloudcache
