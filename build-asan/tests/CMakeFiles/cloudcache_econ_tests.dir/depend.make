# Empty dependencies file for cloudcache_econ_tests.
# This may be replaced when dependencies are built.
