#include "src/cluster/elasticity.h"

#include "src/util/logging.h"

namespace cloudcache {

ElasticAction ElasticityController::Step(const ElasticityWindow& window) {
  const size_t nodes = window.routed.size();
  CLOUDCACHE_CHECK_GE(nodes, 1u);
  cold_streaks_.resize(nodes, 0);  // A fresh node starts with no streak.

  // Update streaks every window — including during cooldown, so a signal
  // that persists straight through it acts the moment cooldown expires.
  const bool hot =
      window.standing_regret.ToDollars() > window.projected_rent_dollars;
  hot_streak_ = hot ? hot_streak_ + 1 : 0;

  for (size_t n = 0; n < nodes; ++n) {
    const bool cold =
        static_cast<double>(window.routed[n]) <
        options_.cold_share * static_cast<double>(window.window_queries);
    cold_streaks_[n] = cold ? cold_streaks_[n] + 1 : 0;
  }

  if (cooldown_ > 0) {
    --cooldown_;
    return ElasticAction{};
  }

  // Release before rent: when both signals fire the fleet is misbalanced,
  // and dropping a node that earns nothing is free while renting one
  // costs rent from the first second.
  if (nodes > options_.min_nodes) {
    size_t coldest = 0;  // 0 = none (the coordinator is never released).
    for (size_t n = 1; n < nodes; ++n) {
      if (cold_streaks_[n] < options_.sustain_windows) continue;
      // Ties to the higher index: later-rented nodes go first.
      if (coldest == 0 || window.routed[n] <= window.routed[coldest]) {
        coldest = n;
      }
    }
    if (coldest != 0) {
      hot_streak_ = 0;
      cold_streaks_.assign(nodes, 0);
      cooldown_ = options_.cooldown_windows;
      ElasticAction action;
      action.decision = ElasticDecision::kRelease;
      action.release_index = coldest;
      return action;
    }
  }

  if (hot_streak_ >= options_.sustain_windows &&
      nodes < options_.max_nodes) {
    hot_streak_ = 0;
    cold_streaks_.assign(nodes, 0);
    cooldown_ = options_.cooldown_windows;
    ElasticAction action;
    action.decision = ElasticDecision::kRent;
    return action;
  }
  return ElasticAction{};
}

void ElasticityController::SaveState(persist::Encoder* enc) const {
  enc->PutU32(hot_streak_);
  enc->PutU64(cold_streaks_.size());
  for (uint32_t streak : cold_streaks_) enc->PutU32(streak);
  enc->PutU32(cooldown_);
}

Status ElasticityController::RestoreState(persist::Decoder* dec) {
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&hot_streak_));
  uint64_t streak_count = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&streak_count));
  cold_streaks_.assign(streak_count, 0);
  for (uint32_t& streak : cold_streaks_) {
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&streak));
  }
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&cooldown_));
  return Status::OK();
}

}  // namespace cloudcache
