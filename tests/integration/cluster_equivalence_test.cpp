// The cluster is a routed generalization of the paper's one-node cloud,
// and four properties pin it down:
//
//  1. Collapse: a one-node cluster routes every query to its only node,
//     so the forced cluster path must reproduce the classic path's
//     SimMetrics bit for bit — every count, micro-dollar, double, and
//     timeline byte (the `--nodes=1 --elastic=off` equivalence of the
//     roadmap).
//  2. Determinism: an N-node run — fixed or elastic — is a pure function
//     of its configuration: repeated runs, and runs fanned over any sweep
//     thread count, replay identically, down to the per-node slices.
//  3. Shared invariants survive clustering: each node's plan-skeleton
//     cache must stay a pure memoization while elasticity rents,
//     releases, and migrates structures into its cache (every mutation
//     bumps that node's residency epoch), and the node slices must
//     partition the run-wide traffic.
//  4. The economics hold up: under sustained load the controller rents a
//     second node, and the elastic fleet's aggregate profit is no worse
//     than the fixed single node it grew from.

#include <gtest/gtest.h>

#include "src/catalog/tpch.h"
#include "src/sim/experiment.h"
#include "src/sim/sweep.h"
#include "tests/testing/metrics_equal.h"

namespace cloudcache {
namespace {

using cloudcache::testing::ExpectBitIdenticalCluster;
using cloudcache::testing::ExpectBitIdenticalMetrics;

class ClusterEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog(MakeTpchCatalog(100.0));
    templates_ = new std::vector<QueryTemplate>(MakeTpchTemplates());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
    delete templates_;
    templates_ = nullptr;
  }

  /// Active economy configuration (investments and failure evictions
  /// within the short run) so the nodes' caches actually churn and the
  /// router has residency differences to route on.
  static ExperimentConfig ActiveConfig(SchemeKind scheme, double interval) {
    ExperimentConfig config;
    config.scheme = scheme;
    config.workload.interarrival_seconds = interval;
    config.workload.seed = 31;
    config.seed = 32;
    config.sim.num_queries = 1'500;
    config.customize_econ = [](EconScheme::Config& econ) {
      econ.economy.regret_fraction_a = 0.001;
      econ.economy.conservative_provider = false;
      econ.economy.initial_credit = Money::FromDollars(20);
      econ.economy.model_build_latency = false;
    };
    return config;
  }

  /// An elastic configuration whose controller actually moves within the
  /// run: tight windows, short sustain, and a rent threshold the active
  /// economy's regret clears under load.
  static ExperimentConfig ElasticConfig(SchemeKind scheme) {
    ExperimentConfig config = ActiveConfig(scheme, 1.0);
    config.sim.num_queries = 6'000;
    config.cluster.nodes = 1;
    config.cluster.elastic = true;
    // Cut-rate spot nodes: the rent threshold sits below the standing
    // regret the active economy carries under 1 s arrivals, so the
    // controller provably moves within the short run.
    config.cluster.node_rent_multiplier = 0.25;
    config.cluster.elasticity.check_interval_queries = 200;
    config.cluster.elasticity.sustain_windows = 2;
    config.cluster.elasticity.cooldown_windows = 2;
    config.cluster.elasticity.max_nodes = 3;
    return config;
  }

  static Catalog* catalog_;
  static std::vector<QueryTemplate>* templates_;
};

Catalog* ClusterEquivalenceTest::catalog_ = nullptr;
std::vector<QueryTemplate>* ClusterEquivalenceTest::templates_ = nullptr;

TEST_F(ClusterEquivalenceTest, SingleNodeClusterPathBitIdentical) {
  // Every scheme, two arrival spacings: the forced cluster path with one
  // node must replay the classic single-node loop exactly.
  for (SchemeKind scheme : PaperSchemes()) {
    for (double interval : {1.0, 10.0}) {
      SCOPED_TRACE(std::string(SchemeKindToString(scheme)) + " @ " +
                   std::to_string(interval) + "s");
      ExperimentConfig config = ActiveConfig(scheme, interval);
      const SimMetrics classic = RunExperiment(*catalog_, *templates_, config);
      config.cluster.force_cluster_path = true;
      const SimMetrics routed = RunExperiment(*catalog_, *templates_, config);
      ExpectBitIdenticalMetrics(classic, routed);
      // The classic path carries no cluster footprint; the routed path
      // carries exactly one node, and it must restate the aggregates.
      EXPECT_FALSE(classic.cluster.active);
      ASSERT_TRUE(routed.cluster.active);
      ASSERT_EQ(routed.cluster.nodes.size(), 1u);
      EXPECT_EQ(routed.cluster.final_nodes, 1u);
      EXPECT_EQ(routed.cluster.scale_out_events, 0u);
      EXPECT_EQ(routed.cluster.node_rent_dollars, 0.0);
      EXPECT_EQ(routed.cluster.nodes[0].queries, routed.queries);
      EXPECT_EQ(routed.cluster.nodes[0].served, routed.served);
      EXPECT_EQ(routed.cluster.nodes[0].revenue.micros(),
                routed.revenue.micros());
    }
  }
}

TEST_F(ClusterEquivalenceTest, MultiNodeRepeatedRunsBitIdentical) {
  ExperimentConfig config = ActiveConfig(SchemeKind::kEconCheap, 2.0);
  config.cluster.nodes = 3;
  const SimMetrics first = RunExperiment(*catalog_, *templates_, config);
  const SimMetrics second = RunExperiment(*catalog_, *templates_, config);
  ExpectBitIdenticalMetrics(first, second);
  ExpectBitIdenticalCluster(first, second);
  // The router actually spread traffic: no node is silent, and the
  // slices partition the merged stream.
  ASSERT_EQ(first.cluster.nodes.size(), 3u);
  uint64_t routed = 0, served = 0;
  for (const NodeMetrics& node : first.cluster.nodes) {
    EXPECT_GT(node.queries, 0u);
    routed += node.queries;
    served += node.served;
  }
  EXPECT_EQ(routed, first.queries);
  EXPECT_EQ(served, first.served);
}

TEST_F(ClusterEquivalenceTest, ElasticRunsBitIdenticalAcrossRepeats) {
  ExperimentConfig config = ElasticConfig(SchemeKind::kEconCheap);
  const SimMetrics first = RunExperiment(*catalog_, *templates_, config);
  const SimMetrics second = RunExperiment(*catalog_, *templates_, config);
  ExpectBitIdenticalMetrics(first, second);
  ExpectBitIdenticalCluster(first, second);
}

TEST_F(ClusterEquivalenceTest, ClusterBitIdenticalAcrossSweepThreads) {
  // Cluster cells through the sweep engine: per-cell seeds plus routed
  // fleets must make the grid bit-identical for any worker count.
  SweepSpec spec;
  spec.schemes = {SchemeKind::kEconCheap, SchemeKind::kEconFast};
  spec.interarrivals = {2.0, 10.0};
  spec.base = ActiveConfig(SchemeKind::kEconCheap, 2.0);
  spec.base.cluster.nodes = 2;
  spec.seed_policy = SweepSpec::SeedPolicy::kPerCell;

  const std::vector<SweepResult> serial =
      RunSweep(*catalog_, *templates_, spec, /*n_threads=*/1);
  const std::vector<SweepResult> parallel =
      RunSweep(*catalog_, *templates_, spec, /*n_threads=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(serial[i].cell.label);
    EXPECT_EQ(serial[i].cell.seed, parallel[i].cell.seed);
    ExpectBitIdenticalMetrics(serial[i].metrics, parallel[i].metrics);
    ExpectBitIdenticalCluster(serial[i].metrics, parallel[i].metrics);
  }
}

TEST_F(ClusterEquivalenceTest, PlanCacheStaysPureUnderNodeChurn) {
  // Elasticity rents nodes mid-run and scale-in migrates structures into
  // survivors' caches; every such mutation must bump the owning node's
  // residency epoch or a stale skeleton would diverge the runs.
  for (SchemeKind scheme :
       {SchemeKind::kEconCheap, SchemeKind::kEconFast}) {
    SCOPED_TRACE(SchemeKindToString(scheme));
    ExperimentConfig config = ElasticConfig(scheme);
    const auto base_customize = config.customize_econ;
    auto with_cache = [base_customize](bool enable) {
      return [base_customize, enable](EconScheme::Config& econ) {
        base_customize(econ);
        econ.enumerator.enable_plan_cache = enable;
      };
    };
    config.customize_econ = with_cache(true);
    const SimMetrics on = RunExperiment(*catalog_, *templates_, config);
    config.customize_econ = with_cache(false);
    const SimMetrics off = RunExperiment(*catalog_, *templates_, config);
    ExpectBitIdenticalMetrics(on, off);
    ExpectBitIdenticalCluster(on, off);
  }
}

TEST_F(ClusterEquivalenceTest, ClusterComposesWithMultiTenancy) {
  // Routed nodes under the event-driven multi-tenant merge: per-node
  // economies share the tenant ledgers (TenantRegret sums attribution
  // over nodes), and both sets of slices stay deterministic.
  ExperimentConfig config = ActiveConfig(SchemeKind::kEconCheap, 2.0);
  config.tenancy.tenants = 3;
  config.tenancy.traffic_skew = 1.0;
  config.cluster.nodes = 2;
  const SimMetrics first = RunExperiment(*catalog_, *templates_, config);
  const SimMetrics second = RunExperiment(*catalog_, *templates_, config);
  ExpectBitIdenticalMetrics(first, second);
  ExpectBitIdenticalCluster(first, second);
  cloudcache::testing::ExpectBitIdenticalTenants(first, second);
  ASSERT_EQ(first.tenants.size(), 3u);
  ASSERT_EQ(first.cluster.nodes.size(), 2u);
  uint64_t node_queries = 0;
  for (const NodeMetrics& node : first.cluster.nodes) {
    node_queries += node.queries;
  }
  EXPECT_EQ(node_queries, first.queries);
}

TEST_F(ClusterEquivalenceTest, ElasticControllerRentsUnderSustainedLoad) {
  // The acceptance scenario: under sustained load the controller rents at
  // least a second node, and growing the fleet does not cost the cloud
  // its aggregate profit relative to staying single-node.
  ExperimentConfig fixed = ElasticConfig(SchemeKind::kEconCheap);
  fixed.cluster.elastic = false;
  ExperimentConfig elastic = ElasticConfig(SchemeKind::kEconCheap);

  const SimMetrics single = RunExperiment(*catalog_, *templates_, fixed);
  const SimMetrics grown = RunExperiment(*catalog_, *templates_, elastic);

  ASSERT_TRUE(grown.cluster.active);
  EXPECT_GE(grown.cluster.scale_out_events, 1u);
  EXPECT_GE(grown.cluster.peak_nodes, 2u);
  // Node rent was actually metered for the rented fleet.
  EXPECT_GT(grown.cluster.node_rent_dollars, 0.0);
  // Aggregate profit: no worse than the fixed single node.
  EXPECT_GE(grown.profit.micros(), single.profit.micros());
}

}  // namespace
}  // namespace cloudcache
