// Corruption robustness: a real checkpoint file is truncated at every byte
// boundary and bit-flipped at every section boundary, and the loader must
// return a descriptive Status every time — never crash, never read out of
// bounds (this group runs under ASan/UBSan in CI).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/catalog/tpch.h"
#include "src/persist/snapshot.h"
#include "src/sim/experiment.h"

namespace cloudcache {
namespace {

class CorruptionFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog(MakeTpchCatalog(20.0));
    templates_ = new std::vector<QueryTemplate>(MakeTpchTemplates());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    delete templates_;
  }

  /// A config whose checkpointed run writes one snapshot (at query 200).
  ExperimentConfig CheckpointedConfig(const std::string& path) const {
    ExperimentConfig config;
    config.scheme = SchemeKind::kEconCheap;
    config.sim.num_queries = 400;
    config.workload.seed = 5;
    config.sim.checkpoint.every = 200;
    config.sim.checkpoint.path = path;
    return config;
  }

  /// Writes `bytes` to `path` and attempts a full hard restore through the
  /// experiment layer; returns the status.
  Status HardRestore(const std::string& path,
                     const std::vector<uint8_t>& bytes) const {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    EXPECT_NE(f, nullptr);
    if (bytes.empty() || f == nullptr) {
      if (f != nullptr) std::fclose(f);
    } else {
      EXPECT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
      std::fclose(f);
    }
    ExperimentConfig config = CheckpointedConfig(path);
    config.sim.checkpoint.every = 0;
    config.sim.checkpoint.restore = CheckpointOptions::Restore::kHard;
    Result<SimMetrics> resumed =
        RunExperimentChecked(*catalog_, *templates_, config);
    return resumed.ok() ? Status::OK() : resumed.status();
  }

  static Catalog* catalog_;
  static std::vector<QueryTemplate>* templates_;
};

Catalog* CorruptionFuzzTest::catalog_ = nullptr;
std::vector<QueryTemplate>* CorruptionFuzzTest::templates_ = nullptr;

uint64_t ReadLe(const std::vector<uint8_t>& bytes, size_t offset,
                int width) {
  uint64_t v = 0;
  for (int i = 0; i < width; ++i) {
    v |= static_cast<uint64_t>(bytes[offset + static_cast<size_t>(i)])
         << (8 * i);
  }
  return v;
}

/// Walks the container layout and returns the offset of every structural
/// boundary: each header field, and each section's name length, name
/// start, payload length, CRC, payload start, and payload last byte.
std::vector<size_t> SectionBoundaries(const std::vector<uint8_t>& bytes) {
  std::vector<size_t> offsets = {0, 4, 8, 16};  // magic, version, hash, count.
  const uint32_t sections = static_cast<uint32_t>(ReadLe(bytes, 16, 4));
  size_t pos = 20;
  for (uint32_t s = 0; s < sections; ++s) {
    offsets.push_back(pos);  // Name length.
    const uint64_t name_len = ReadLe(bytes, pos, 8);
    pos += 8;
    offsets.push_back(pos);  // First name byte.
    pos += name_len;
    offsets.push_back(pos);  // Payload length.
    const uint64_t payload_len = ReadLe(bytes, pos, 8);
    pos += 8;
    offsets.push_back(pos);  // CRC.
    pos += 4;
    offsets.push_back(pos);                    // First payload byte.
    offsets.push_back(pos + payload_len - 1);  // Last payload byte.
    pos += payload_len;
  }
  EXPECT_EQ(pos, bytes.size());
  return offsets;
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::vector<uint8_t> bytes;
  if (f != nullptr) {
    std::fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }
  return bytes;
}

TEST_F(CorruptionFuzzTest, TruncationAndBitFlipsNeverCrashTheLoader) {
  const std::string path = ::testing::TempDir() + "fuzz_source.snap";
  const ExperimentConfig config = CheckpointedConfig(path);
  const SimMetrics metrics = RunExperiment(*catalog_, *templates_, config);
  EXPECT_EQ(metrics.queries, 400u);
  const std::vector<uint8_t> good = ReadFile(path);
  ASSERT_GT(good.size(), 100u);

  // The untouched snapshot restores: the fuzz below is meaningful.
  const std::string fuzz_path = ::testing::TempDir() + "fuzz_variant.snap";
  ASSERT_TRUE(HardRestore(fuzz_path, good).ok());

  // Truncation at every byte boundary: the container parse must fail with
  // a descriptive Status (truncation can never produce a valid snapshot —
  // the last section's payload runs past the end).
  for (size_t cut = 0; cut < good.size(); ++cut) {
    std::vector<uint8_t> bytes(good.begin(),
                               good.begin() + static_cast<long>(cut));
    Result<persist::SnapshotReader> reader =
        persist::SnapshotReader::FromBytes(std::move(bytes));
    ASSERT_FALSE(reader.ok()) << "prefix of " << cut << " bytes parsed";
    ASSERT_FALSE(reader.status().message().empty());
  }

  // Bit flips at every structural boundary. Payload flips must die on the
  // section CRC at parse time; header/name/length flips either fail the
  // parse or survive it and then must fail the full restore pipeline
  // (config-hash check, missing section, or section decode) — a corrupt
  // snapshot must never restore.
  for (size_t offset : SectionBoundaries(good)) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> bytes = good;
      bytes[offset] ^= static_cast<uint8_t>(1u << bit);
      Result<persist::SnapshotReader> reader =
          persist::SnapshotReader::FromBytes(bytes);
      if (!reader.ok()) {
        ASSERT_FALSE(reader.status().message().empty());
        continue;
      }
      const Status status = HardRestore(fuzz_path, bytes);
      ASSERT_FALSE(status.ok())
          << "flipped bit " << bit << " at offset " << offset
          << " restored successfully";
      ASSERT_FALSE(status.message().empty());
    }
  }

  std::remove(path.c_str());
  std::remove(fuzz_path.c_str());
}

TEST_F(CorruptionFuzzTest, EmptyAndGarbageFilesAreRejected) {
  const std::string path = ::testing::TempDir() + "fuzz_garbage.snap";
  EXPECT_FALSE(HardRestore(path, {}).ok());
  std::vector<uint8_t> garbage(1024);
  for (size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  EXPECT_FALSE(HardRestore(path, garbage).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cloudcache
