#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/baseline/bypass_yield.h"
#include "src/baseline/scheme.h"
#include "src/catalog/schema.h"
#include "src/cluster/cluster.h"
#include "src/query/templates.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/workload/generator.h"

namespace cloudcache {

/// Multi-tenant shape of an experiment: how many concurrent query streams
/// share the scheme's one cache, and how the streams differ.
struct TenancyOptions {
  /// Concurrent tenants. 1 = the paper's single stream, on exactly the
  /// pre-tenancy code path (unless force_event_path below).
  uint32_t tenants = 1;
  /// Zipf skew of per-tenant traffic shares (tenant 0 hottest; 0 = equal
  /// split). The aggregate offered load is held at the base interarrival
  /// rate and redistributed, so cross-tenant contention — not extra load —
  /// is what changes with skew.
  double traffic_skew = 0.0;
  /// Rotate each tenant's template-popularity ranking by its id, giving
  /// every tenant a distinct hot set from the same template pool.
  bool rotate_template_mix = true;
  /// Force the event-driven multi-tenant simulator even for tenants == 1.
  /// The merged schedule of one stream is the single stream, so metrics
  /// must be bit-identical either way — this knob exists so tests (and
  /// bisections) can pin that equivalence.
  bool force_event_path = false;

  // --- Tenant-fairness policies (both off by default = the PR 3
  // behavior, bit for bit). They apply only on the multi-tenant path;
  // tune their knobs (ratios, slack, windows) through
  // ExperimentConfig::customize_econ like every other economy knob.

  /// Weigh maintenance-failure eviction and candidate-pool aging by how
  /// broadly each structure's backing regret spreads over tenants
  /// (EconomyOptions::tenant_weighted_eviction).
  bool fair_eviction = false;
  /// Throttle tenants whose unmonetized regret outruns their revenue
  /// (EconomyOptions::admission.enabled; see AdmissionController).
  bool admission = false;

  /// Per-tenant budget-shape overrides (heterogeneous users): scales the
  /// budget synthesizer's price/tmax multipliers for the named tenants.
  /// Applies only on the multi-tenant path, like the policies above;
  /// empty keeps every tenant on the one shared shape, bit for bit.
  std::vector<TenantBudgetShape> tenant_budgets;
};

/// A full experiment: one scheme driven by one workload configuration.
struct ExperimentConfig {
  SchemeKind scheme = SchemeKind::kEconCheap;
  WorkloadOptions workload;
  TenancyOptions tenancy;
  /// Cluster shape: node count, elasticity, node rent. The defaults
  /// (one node, elastic off) run the pre-cluster single-node path,
  /// bit for bit.
  ClusterOptions cluster;
  SimulatorOptions sim;
  /// Decision prices for the economy schemes (bypass-yield always decides
  /// at network-only prices regardless).
  PriceList decision_prices = PriceList::AmazonEc2_2009();
  /// Advisor pool size ("65 potentially useful indexes", Section VII-A).
  size_t index_candidates = 65;
  /// Ablation hooks: mutate the scheme configuration before construction.
  /// Applied only when the experiment's scheme is of the matching kind.
  std::function<void(EconScheme::Config&)> customize_econ;
  std::function<void(BypassYieldScheme::Options&)> customize_bypass;
  /// Structured economic event trace (observability-only; null = off).
  /// Not owned; must outlive the run. Excluded from HashExperimentConfig —
  /// tracing never changes a result. Record order is deterministic only
  /// on serial drivers; callers should refuse to combine a tracer with
  /// worker threads (cloudcache_sim does).
  obs::EventTracer* tracer = nullptr;
  uint64_t seed = 7;
};

/// Derives tenant `t`'s workload options from the base stream and the
/// tenancy shape: tenant 0 keeps the base seed (the classic stream),
/// tenant t >= 1 draws seed MixSeed(base.seed, t); every tenant's
/// interarrival is the base divided by its Zipf traffic share (so the
/// shares sum to the base rate); the template mix rotates by tenant id
/// when rotate_template_mix is set. Pure function of its arguments —
/// per-tenant streams are bit-identical for any thread count or tenant
/// evaluation order.
WorkloadOptions TenantWorkloadOptions(const WorkloadOptions& base,
                                      const TenancyOptions& tenancy,
                                      uint32_t tenant);

/// Builds the exact scheme graph RunExperiment drives: the per-node
/// economies (ordinal 0 carries config.seed — the classic scheme — while
/// rented/extra nodes derive salted seeds from their ordinal), tenancy
/// provisioning on the event path (tenant identities, fairness policies,
/// per-tenant budget shapes), and the ClusterScheme wrapper whenever the
/// cluster options ask for one. Exposed so cloudcached hosts the
/// identical object graph the simulator's equivalence tests pin.
/// `catalog`, `indexes`, and `config` (its decision_prices in particular)
/// must outlive the returned scheme.
std::unique_ptr<Scheme> MakeExperimentScheme(
    const Catalog& catalog, const std::vector<StructureKey>& indexes,
    const ExperimentConfig& config);

/// Runs one experiment end to end: resolve templates, recommend indexes,
/// build the scheme, generate the workload (per tenant when
/// config.tenancy asks for more than one stream), simulate, return
/// metrics.
SimMetrics RunExperiment(const Catalog& catalog,
                         const std::vector<QueryTemplate>& templates,
                         const ExperimentConfig& config);

/// Deterministic 64-bit hash over every configuration field that shapes a
/// run's results, stamped into snapshot headers so a checkpoint can only
/// be restored into the identical experiment. Excludes
/// SimulatorOptions::parallel_threads (any worker count produces the same
/// bits, by the determinism invariant) and the checkpoint controls
/// themselves. The customize_econ/customize_bypass hooks cannot be
/// hashed; a run using them must supply the identical hooks on restore.
uint64_t HashExperimentConfig(const ExperimentConfig& config);

/// Checkpoint/restore-aware RunExperiment: honors
/// config.sim.checkpoint — periodic snapshots, crash injection (surfacing
/// as a kResourceExhausted Status), and restore-at-startup. With
/// Restore::kAuto a missing, corrupt, or mismatched snapshot degrades to
/// a fresh run (the object graph is rebuilt from scratch first, so a
/// partial restore never leaks into the fresh run); Restore::kHard fails
/// loudly instead. With checkpointing off this is RunExperiment, bit for
/// bit.
Result<SimMetrics> RunExperimentChecked(
    const Catalog& catalog, const std::vector<QueryTemplate>& templates,
    const ExperimentConfig& config);

/// Runs the same workload against all four schemes of Section VII-A.
std::vector<SimMetrics> RunAllSchemes(
    const Catalog& catalog, const std::vector<QueryTemplate>& templates,
    ExperimentConfig config);

/// The four inter-arrival intervals of Figs. 4 and 5.
std::vector<double> PaperInterarrivals();

/// The four schemes in the paper's legend order.
std::vector<SchemeKind> PaperSchemes();

}  // namespace cloudcache
