#pragma once

#include <string>
#include <vector>

#include "src/cost/cost_model.h"
#include "src/structure/structure.h"
#include "src/util/money.h"

namespace cloudcache {

/// A candidate query plan as the economy sees it: the physical shape, the
/// structures it employs, which of them do not exist yet, and its priced
/// execution estimate.
///
/// Plans with an empty `missing` set form PQexist (executable right now);
/// plans employing at least one unbuilt structure form PQpos, considered
/// only for regret accounting and investment (Section IV-B).
struct QueryPlan {
  PlanSpec spec;
  /// Every structure the plan employs — resident or hypothetical. The
  /// regret of a rejected plan is distributed uniformly over this set.
  std::vector<StructureId> structures;
  /// Subset of `structures` not currently resident; empty <=> PQexist.
  std::vector<StructureId> missing;
  /// Execution estimate at the deciding scheme's price list.
  ExecutionEstimate execution;
  /// Amortized-cost component Ca (Eq. 5-7) plus owed maintenance of the
  /// plan's structures (footnote 3); filled by the economy after
  /// enumeration, zero until then.
  Money carried_charges;

  /// True if every employed structure exists (the plan is executable).
  bool IsExisting() const { return missing.empty(); }

  /// C(PQ) = Ce(PQ) + Ca(PQ): the plan's advertised price (Eq. 4).
  Money Price() const { return execution.cost + carried_charges; }

  /// Response time the plan guarantees.
  double TimeSeconds() const { return execution.time_seconds; }

  /// Debug form, e.g. "cache-index[3n] t=1.20s price=$0.004 (+2 missing)".
  std::string ToString() const;
};

/// The plan set for one query, split per Section IV-B.
struct PlanSet {
  std::vector<QueryPlan> plans;

  /// Indices of existing (executable) plans.
  std::vector<size_t> ExistingIndices() const;
  /// Non-allocating form: clears and refills `out` (the per-query path
  /// passes a reused scratch vector).
  void ExistingIndicesInto(std::vector<size_t>* out) const;
  /// Indices of hypothetical plans (at least one missing structure).
  std::vector<size_t> PossibleIndices() const;
};

}  // namespace cloudcache
