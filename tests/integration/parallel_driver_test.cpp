// Pins for the windowed parallel node driver (src/sim/node_parallel.h).
//
// The driver's contract has two exact equivalences and one determinism
// guarantee, all asserted bit-for-bit here:
//
//  1. Collapse: a one-node cluster under the windowed driver replays the
//     classic serial Simulator exactly — routing is trivial, the single
//     node's rent books ARE the global books, and the merge replays the
//     classic per-query sequence in arrival order.
//  2. Thread-count invariance: the window partition is a pure function of
//     (stream, window-start residencies) and the merge is serial in
//     global arrival order, so ANY worker count produces the same bits.
//  3. Shared invariants survive the new schedule: plan-skeleton caches
//     stay pure memoizations, node slices partition the traffic, and the
//     elasticity controller still rents under sustained load.

#include <gtest/gtest.h>

#include "src/catalog/tpch.h"
#include "src/sim/experiment.h"
#include "tests/testing/metrics_equal.h"

namespace cloudcache {
namespace {

using cloudcache::testing::ExpectBitIdenticalCluster;
using cloudcache::testing::ExpectBitIdenticalMetrics;

class ParallelDriverTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog(MakeTpchCatalog(100.0));
    templates_ = new std::vector<QueryTemplate>(MakeTpchTemplates());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
    delete templates_;
    templates_ = nullptr;
  }

  /// Active economy on the forced cluster path (same shape as the
  /// cluster equivalence suite: investments and evictions within the
  /// short run, so caches churn and routing has residency to see).
  static ExperimentConfig ActiveConfig(SchemeKind scheme, double interval) {
    ExperimentConfig config;
    config.scheme = scheme;
    config.workload.interarrival_seconds = interval;
    config.workload.seed = 31;
    config.seed = 32;
    config.sim.num_queries = 1'500;
    config.cluster.force_cluster_path = true;
    config.customize_econ = [](EconScheme::Config& econ) {
      econ.economy.regret_fraction_a = 0.001;
      econ.economy.conservative_provider = false;
      econ.economy.initial_credit = Money::FromDollars(20);
      econ.economy.model_build_latency = false;
    };
    return config;
  }

  /// Elastic fleet whose controller provably moves within the run.
  static ExperimentConfig ElasticConfig(SchemeKind scheme) {
    ExperimentConfig config = ActiveConfig(scheme, 1.0);
    config.sim.num_queries = 6'000;
    config.cluster.nodes = 1;
    config.cluster.elastic = true;
    config.cluster.node_rent_multiplier = 0.25;
    config.cluster.elasticity.check_interval_queries = 200;
    config.cluster.elasticity.sustain_windows = 2;
    config.cluster.elasticity.cooldown_windows = 2;
    config.cluster.elasticity.max_nodes = 3;
    return config;
  }

  static Catalog* catalog_;
  static std::vector<QueryTemplate>* templates_;
};

Catalog* ParallelDriverTest::catalog_ = nullptr;
std::vector<QueryTemplate>* ParallelDriverTest::templates_ = nullptr;

TEST_F(ParallelDriverTest, SingleNodeWindowedMatchesClassicSerial) {
  // The collapse pin: on one node the windowed driver must reproduce the
  // classic serial driver bit for bit — every count, micro-dollar,
  // double, and timeline byte. (The classic forced-cluster path is
  // itself pinned to the plain scheme by the cluster equivalence suite,
  // so transitively the windowed one-node run equals the paper's
  // single-node loop.)
  for (SchemeKind scheme : PaperSchemes()) {
    for (double interval : {1.0, 10.0}) {
      SCOPED_TRACE(std::string(SchemeKindToString(scheme)) + " @ " +
                   std::to_string(interval) + "s");
      ExperimentConfig config = ActiveConfig(scheme, interval);
      const SimMetrics classic = RunExperiment(*catalog_, *templates_, config);
      config.sim.parallel_threads = 2;
      const SimMetrics windowed = RunExperiment(*catalog_, *templates_, config);
      ExpectBitIdenticalMetrics(classic, windowed);
      ExpectBitIdenticalCluster(classic, windowed);
    }
  }
}

TEST_F(ParallelDriverTest, FixedFleetBitIdenticalAcrossThreadCounts) {
  // Determinism pin, fixed fleet: the schedule is defined by the windowed
  // discipline, not by the worker count.
  ExperimentConfig config = ActiveConfig(SchemeKind::kEconCheap, 2.0);
  config.cluster.nodes = 3;
  config.sim.parallel_threads = 1;
  const SimMetrics one = RunExperiment(*catalog_, *templates_, config);
  config.sim.parallel_threads = 2;
  const SimMetrics two = RunExperiment(*catalog_, *templates_, config);
  config.sim.parallel_threads = 4;
  const SimMetrics four = RunExperiment(*catalog_, *templates_, config);
  ExpectBitIdenticalMetrics(one, two);
  ExpectBitIdenticalCluster(one, two);
  ExpectBitIdenticalMetrics(one, four);
  ExpectBitIdenticalCluster(one, four);

  // The router actually spread the windowed traffic: the per-node slices
  // partition the stream and no node sat silent.
  ASSERT_EQ(one.cluster.nodes.size(), 3u);
  uint64_t routed = 0, served = 0;
  for (const NodeMetrics& node : one.cluster.nodes) {
    EXPECT_GT(node.queries, 0u);
    routed += node.queries;
    served += node.served;
  }
  EXPECT_EQ(routed, one.queries);
  EXPECT_EQ(served, one.served);
}

TEST_F(ParallelDriverTest, ElasticFleetBitIdenticalAcrossThreadCounts) {
  // Determinism pin, elastic fleet: scale events land at window closes,
  // so renting and releasing nodes mid-run must not perturb the
  // thread-count invariance.
  ExperimentConfig config = ElasticConfig(SchemeKind::kEconCheap);
  config.sim.parallel_threads = 1;
  const SimMetrics one = RunExperiment(*catalog_, *templates_, config);
  config.sim.parallel_threads = 3;
  const SimMetrics three = RunExperiment(*catalog_, *templates_, config);
  ExpectBitIdenticalMetrics(one, three);
  ExpectBitIdenticalCluster(one, three);
}

TEST_F(ParallelDriverTest, PlanCacheStaysPureUnderWindowedDriver) {
  // The plan-skeleton cache must stay a pure memoization when slices run
  // on pool workers and elasticity churns the fleet between windows.
  for (SchemeKind scheme :
       {SchemeKind::kEconCheap, SchemeKind::kEconFast}) {
    SCOPED_TRACE(SchemeKindToString(scheme));
    ExperimentConfig config = ElasticConfig(scheme);
    config.sim.parallel_threads = 2;
    const auto base_customize = config.customize_econ;
    auto with_cache = [base_customize](bool enable) {
      return [base_customize, enable](EconScheme::Config& econ) {
        base_customize(econ);
        econ.enumerator.enable_plan_cache = enable;
      };
    };
    config.customize_econ = with_cache(true);
    const SimMetrics on = RunExperiment(*catalog_, *templates_, config);
    config.customize_econ = with_cache(false);
    const SimMetrics off = RunExperiment(*catalog_, *templates_, config);
    ExpectBitIdenticalMetrics(on, off);
    ExpectBitIdenticalCluster(on, off);
  }
}

TEST_F(ParallelDriverTest, ElasticControllerStillRentsUnderWindowedDriver) {
  // The economics survive the new schedule: under sustained load the
  // windowed driver's end-of-window controller still buys width, and the
  // rented fleet's surcharge is metered per node.
  ExperimentConfig config = ElasticConfig(SchemeKind::kEconCheap);
  config.sim.parallel_threads = 2;
  const SimMetrics grown = RunExperiment(*catalog_, *templates_, config);
  ASSERT_TRUE(grown.cluster.active);
  EXPECT_GE(grown.cluster.scale_out_events, 1u);
  EXPECT_GE(grown.cluster.peak_nodes, 2u);
  EXPECT_GT(grown.cluster.node_rent_dollars, 0.0);
}

}  // namespace
}  // namespace cloudcache
