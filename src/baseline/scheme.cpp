#include "src/baseline/scheme.h"

#include <algorithm>

#include "src/baseline/bypass_yield.h"
#include "src/persist/util_io.h"
#include "src/util/logging.h"

namespace cloudcache {

std::unique_ptr<BudgetFunction> BudgetModel::Make(Money reference_price,
                                                  double reference_seconds,
                                                  Rng& rng) const {
  const double jitter =
      rng.NextUniform(-options_.jitter, options_.jitter);
  const double multiplier =
      std::max(0.0, options_.price_multiplier + jitter);
  const Money amount = reference_price * multiplier;
  const double t_max =
      std::max(1e-6, reference_seconds * options_.tmax_multiplier);
  switch (options_.shape) {
    case BudgetModelOptions::Shape::kStep:
      return std::make_unique<StepBudget>(amount, t_max);
    case BudgetModelOptions::Shape::kLinear:
      return std::make_unique<LinearBudget>(amount, t_max);
    case BudgetModelOptions::Shape::kConvex:
      return std::make_unique<ConvexBudget>(amount, t_max);
    case BudgetModelOptions::Shape::kConcave:
      return std::make_unique<ConcaveBudget>(amount, t_max);
  }
  return std::make_unique<StepBudget>(amount, t_max);
}

const BudgetFunction& BudgetModel::MakeInto(Money reference_price,
                                            double reference_seconds,
                                            Rng& rng,
                                            BudgetScratch* scratch) const {
  const double jitter =
      rng.NextUniform(-options_.jitter, options_.jitter);
  const double multiplier =
      std::max(0.0, options_.price_multiplier + jitter);
  const Money amount = reference_price * multiplier;
  const double t_max =
      std::max(1e-6, reference_seconds * options_.tmax_multiplier);
  if (scratch->fn == nullptr || scratch->shape != options_.shape) {
    scratch->shape = options_.shape;
    switch (options_.shape) {
      case BudgetModelOptions::Shape::kStep:
        scratch->fn = std::make_unique<StepBudget>(amount, t_max);
        break;
      case BudgetModelOptions::Shape::kLinear:
        scratch->fn = std::make_unique<LinearBudget>(amount, t_max);
        break;
      case BudgetModelOptions::Shape::kConvex:
        scratch->fn = std::make_unique<ConvexBudget>(amount, t_max);
        break;
      case BudgetModelOptions::Shape::kConcave:
        scratch->fn = std::make_unique<ConcaveBudget>(amount, t_max);
        break;
    }
    return *scratch->fn;
  }
  switch (scratch->shape) {
    case BudgetModelOptions::Shape::kStep:
      static_cast<StepBudget*>(scratch->fn.get())->Reset(amount, t_max);
      break;
    case BudgetModelOptions::Shape::kLinear:
      static_cast<LinearBudget*>(scratch->fn.get())->Reset(amount, t_max);
      break;
    case BudgetModelOptions::Shape::kConvex:
      static_cast<ConvexBudget*>(scratch->fn.get())->Reset(amount, t_max);
      break;
    case BudgetModelOptions::Shape::kConcave:
      static_cast<ConcaveBudget*>(scratch->fn.get())->Reset(amount, t_max);
      break;
  }
  return *scratch->fn;
}

const char* SchemeKindToString(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kBypassYield:
      return "bypass";
    case SchemeKind::kEconCol:
      return "econ-col";
    case SchemeKind::kEconCheap:
      return "econ-cheap";
    case SchemeKind::kEconFast:
      return "econ-fast";
  }
  return "?";
}

EconScheme::Config EconScheme::EconColConfig() {
  Config config;
  config.name = "econ-col";
  config.enumerator.allow_indexes = false;
  config.enumerator.allow_parallel = false;
  config.enumerator.node_options = {1};
  config.economy.selection = PlanSelection::kCheapest;
  return config;
}

EconScheme::Config EconScheme::EconCheapConfig() {
  Config config;
  config.name = "econ-cheap";
  config.economy.selection = PlanSelection::kCheapest;
  return config;
}

EconScheme::Config EconScheme::EconFastConfig() {
  Config config;
  config.name = "econ-fast";
  config.economy.selection = PlanSelection::kFastest;
  return config;
}

EconScheme::EconScheme(const Catalog* catalog,
                       const PriceList* decision_prices,
                       const std::vector<StructureKey>& index_candidates,
                       Config config)
    : config_(std::move(config)),
      registry_(catalog),
      model_(catalog, decision_prices),
      budget_model_(config_.budget),
      rng_(config_.seed) {
  engine_ = std::make_unique<EconomyEngine>(
      catalog, &registry_, &model_, config_.enumerator, config_.economy);
  if (config_.enumerator.allow_indexes) {
    engine_->SetIndexCandidates(index_candidates);
  }
  if (config_.tenants >= 1) {
    tenant_rngs_.reserve(config_.tenants);
    for (uint32_t t = 0; t < config_.tenants; ++t) {
      tenant_rngs_.emplace_back(t == 0 ? config_.seed
                                       : MixSeed(config_.seed, t));
    }
    engine_->SetTenantCount(config_.tenants);
  }
  if (!config_.tenant_budgets.empty()) {
    // Budget-shape overrides need tenant identities to attach to.
    CLOUDCACHE_CHECK_GE(config_.tenants, 1u);
    std::vector<BudgetModelOptions> shapes(config_.tenants, config_.budget);
    for (const TenantBudgetShape& shape : config_.tenant_budgets) {
      CLOUDCACHE_CHECK_LT(shape.tenant, config_.tenants);
      shapes[shape.tenant].price_multiplier *= shape.price_scale;
      shapes[shape.tenant].tmax_multiplier *= shape.tmax_scale;
    }
    tenant_budget_models_.reserve(config_.tenants);
    for (uint32_t t = 0; t < config_.tenants; ++t) {
      tenant_budget_models_.emplace_back(shapes[t]);
    }
  }
}

ServedQuery EconScheme::OnQuery(const Query& query, SimTime now) {
  // Quote the back-end plan; the synthetic user anchors her budget to it.
  PlanSpec backend;
  backend.access = PlanSpec::Access::kBackend;
  const ExecutionEstimate backend_est =
      model_.EstimateExecution(query, backend);
  // Once tenants are provisioned, a query from an unprovisioned tenant is
  // a wiring bug; serving it from another tenant's jitter stream would
  // silently break the per-tenant purity the config documents.
  if (!tenant_rngs_.empty()) {
    CLOUDCACHE_CHECK_LT(query.tenant_id, tenant_rngs_.size());
  }
  Rng& budget_rng =
      tenant_rngs_.empty() ? rng_ : tenant_rngs_[query.tenant_id];
  const BudgetModel& budget_model =
      tenant_budget_models_.empty() ? budget_model_
                                    : tenant_budget_models_[query.tenant_id];
  const BudgetFunction& budget = budget_model.MakeInto(
      backend_est.cost, backend_est.time_seconds, budget_rng,
      &budget_scratch_);

  // Snapshot residency before the engine invests, so the reported build
  // usage reflects what actually had to be transferred. The snapshot
  // buffer is reused across queries (assignment recycles its storage).
  residency_scratch_ = engine_->cache().column_residency();

  const QueryOutcome outcome = engine_->OnQuery(query, budget, now);

  ServedQuery out;
  out.served = outcome.served;
  if (outcome.served) {
    out.spec = outcome.chosen.spec;
    out.execution = outcome.chosen.execution;
    out.payment = outcome.payment;
    out.profit = outcome.profit;
  }
  out.budget_case = outcome.budget_case;
  out.has_budget_case = true;
  out.throttled = outcome.throttled;
  out.investments = static_cast<uint32_t>(outcome.investments.size());
  out.evictions = static_cast<uint32_t>(outcome.evictions.size());
  std::vector<bool>& residency = residency_scratch_;
  for (StructureId id : outcome.investments) {
    const StructureKey& key = registry_.key(id);
    out.build_usage += model_.EstimateBuildUsage(key, residency);
    // Columns shipped by this build are present for subsequent builds.
    if (key.type == StructureType::kColumn) {
      residency[key.columns.front()] = true;
    } else if (key.type == StructureType::kIndex) {
      for (ColumnId col : key.columns) residency[col] = true;
    }
  }
  return out;
}

void EconScheme::ChargeExpenditure(Money amount, SimTime now) {
  engine_->OnTick(now);
  // The metered bill lands on the cloud account: the economy's revenue
  // must actually cover it for CR to grow.
  engine_->mutable_account().ChargeExpenditure(amount, now);
}

void EconScheme::SaveState(persist::Encoder* enc) const {
  registry_.SaveState(enc);
  engine_->SaveState(enc);
  persist::SaveRng(rng_, enc);
  enc->PutU64(tenant_rngs_.size());
  for (const Rng& rng : tenant_rngs_) persist::SaveRng(rng, enc);
}

Status EconScheme::RestoreState(persist::Decoder* dec) {
  // Registry first: the engine's ledgers validate structure ids against
  // it, and interning order is part of the run's state.
  CLOUDCACHE_RETURN_IF_ERROR(registry_.RestoreState(dec));
  CLOUDCACHE_RETURN_IF_ERROR(engine_->RestoreState(dec));
  CLOUDCACHE_RETURN_IF_ERROR(persist::RestoreRng(dec, &rng_));
  uint64_t rng_count = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&rng_count));
  if (rng_count != tenant_rngs_.size()) {
    return Status::FailedPrecondition(
        "snapshot has " + std::to_string(rng_count) +
        " tenant budget streams but this run provisioned " +
        std::to_string(tenant_rngs_.size()));
  }
  for (Rng& rng : tenant_rngs_) {
    CLOUDCACHE_RETURN_IF_ERROR(persist::RestoreRng(dec, &rng));
  }
  return Status::OK();
}

std::unique_ptr<Scheme> MakeScheme(SchemeKind kind, const Catalog* catalog,
                                   const PriceList* decision_prices,
                                   const std::vector<StructureKey>& indexes,
                                   uint64_t seed) {
  switch (kind) {
    case SchemeKind::kBypassYield: {
      BypassYieldScheme::Options options;
      return std::make_unique<BypassYieldScheme>(catalog, options);
    }
    case SchemeKind::kEconCol: {
      EconScheme::Config config = EconScheme::EconColConfig();
      config.seed = seed;
      return std::make_unique<EconScheme>(catalog, decision_prices, indexes,
                                          std::move(config));
    }
    case SchemeKind::kEconCheap: {
      EconScheme::Config config = EconScheme::EconCheapConfig();
      config.seed = seed;
      return std::make_unique<EconScheme>(catalog, decision_prices, indexes,
                                          std::move(config));
    }
    case SchemeKind::kEconFast: {
      EconScheme::Config config = EconScheme::EconFastConfig();
      config.seed = seed;
      return std::make_unique<EconScheme>(catalog, decision_prices, indexes,
                                          std::move(config));
    }
  }
  return nullptr;
}

}  // namespace cloudcache
