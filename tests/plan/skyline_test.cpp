#include "src/plan/skyline.h"

#include <gtest/gtest.h>

namespace cloudcache {
namespace {

QueryPlan MakePlan(double time_s, double cost_dollars, bool existing = true) {
  QueryPlan plan;
  plan.execution.time_seconds = time_s;
  plan.execution.cost = Money::FromDollars(cost_dollars);
  if (!existing) plan.missing.push_back(0);
  return plan;
}

TEST(SkylineTest, EmptyInput) {
  EXPECT_TRUE(SkylineIndices({}).empty());
}

TEST(SkylineTest, SinglePlanSurvives) {
  EXPECT_EQ(SkylineIndices({MakePlan(1, 1)}).size(), 1u);
}

TEST(SkylineTest, DominatedPlanRemoved) {
  // Plan 1 is slower AND pricier than plan 0.
  const auto kept = SkylineIndices({MakePlan(1, 1), MakePlan(2, 2)});
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], 0u);
}

TEST(SkylineTest, TradeoffFrontierKept) {
  // Faster-but-pricier and slower-but-cheaper both survive.
  const auto kept = SkylineIndices({MakePlan(1, 10), MakePlan(5, 2)});
  EXPECT_EQ(kept.size(), 2u);
}

TEST(SkylineTest, SameTimeKeepsCheapest) {
  // Footnote 2: equal execution time -> only the cheapest survives.
  const auto kept =
      SkylineIndices({MakePlan(3, 7), MakePlan(3, 2), MakePlan(3, 5)});
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], 1u);
}

TEST(SkylineTest, SamePriceKeepsFastest) {
  const auto kept = SkylineIndices({MakePlan(5, 2), MakePlan(3, 2)});
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], 1u);
}

TEST(SkylineTest, ResultSortedByTime) {
  const auto kept = SkylineIndices(
      {MakePlan(9, 1), MakePlan(1, 9), MakePlan(5, 5), MakePlan(3, 7)});
  EXPECT_EQ(kept.size(), 4u);
  // Indices in ascending-time order: plan1 (t=1), plan3, plan2, plan0.
  EXPECT_EQ(kept[0], 1u);
  EXPECT_EQ(kept[1], 3u);
  EXPECT_EQ(kept[2], 2u);
  EXPECT_EQ(kept[3], 0u);
}

TEST(SkylineTest, PriceIncludesCarriedCharges) {
  QueryPlan cheap_exec = MakePlan(2, 1);
  cheap_exec.carried_charges = Money::FromDollars(100);  // Actually pricey.
  QueryPlan expensive_exec = MakePlan(2, 5);
  const auto kept = SkylineIndices({cheap_exec, expensive_exec});
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], 1u);  // 5 < 1 + 100.
}

TEST(SkylineTest, StrictDominanceChain) {
  std::vector<QueryPlan> plans;
  for (int i = 0; i < 10; ++i) {
    plans.push_back(MakePlan(1 + i, 10 - i));  // All on the frontier.
  }
  EXPECT_EQ(SkylineIndices(plans).size(), 10u);
}

TEST(SkylineFilterTest, PartitionsExistingAndPossible) {
  PlanSet set;
  set.plans.push_back(MakePlan(5, 5, /*existing=*/true));
  // A hypothetical plan that dominates the existing one must NOT evict it:
  // the executable frontier is skylined separately.
  set.plans.push_back(MakePlan(1, 1, /*existing=*/false));
  const PlanSet out = SkylineFilter(std::move(set));
  ASSERT_EQ(out.plans.size(), 2u);
  EXPECT_EQ(out.ExistingIndices().size(), 1u);
  EXPECT_EQ(out.PossibleIndices().size(), 1u);
}

TEST(SkylineFilterTest, FiltersWithinEachPartition) {
  PlanSet set;
  set.plans.push_back(MakePlan(1, 1, true));
  set.plans.push_back(MakePlan(2, 2, true));   // Dominated.
  set.plans.push_back(MakePlan(1, 1, false));
  set.plans.push_back(MakePlan(3, 3, false));  // Dominated.
  const PlanSet out = SkylineFilter(std::move(set));
  EXPECT_EQ(out.plans.size(), 2u);
}

TEST(PlanSetTest, IndexPartition) {
  PlanSet set;
  set.plans.push_back(MakePlan(1, 1, true));
  set.plans.push_back(MakePlan(2, 2, false));
  set.plans.push_back(MakePlan(3, 3, true));
  EXPECT_EQ(set.ExistingIndices(), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(set.PossibleIndices(), (std::vector<size_t>{1}));
}

TEST(PlanTest, PriceIsExecutionPlusCarried) {
  QueryPlan plan = MakePlan(1, 2);
  plan.carried_charges = Money::FromDollars(3);
  EXPECT_EQ(plan.Price(), Money::FromDollars(5));
}

TEST(PlanTest, ToStringMentionsAccessAndMissing) {
  QueryPlan plan = MakePlan(1.5, 2, /*existing=*/false);
  plan.spec.access = PlanSpec::Access::kCacheIndex;
  plan.spec.cpu_nodes = 3;
  const std::string s = plan.ToString();
  EXPECT_NE(s.find("cache-index[3n]"), std::string::npos);
  EXPECT_NE(s.find("missing"), std::string::npos);
}

}  // namespace
}  // namespace cloudcache
