// Ablation A4: the bypass-yield cache budget.
//
// The paper adopts "the ideal cache size for net-only, which is 30% of
// the total database size [14]". This sweep validates that adoption in our
// reproduction: below the hot set the cache thrashes (loads that displace
// each other before paying off); above it, extra space only adds disk rent
// without further hits.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/sim/report.h"
#include "src/util/logging.h"

int main(int argc, char** argv) {
  using namespace cloudcache;
  using namespace cloudcache::bench;

  const BenchOptions options = ParseArgs(argc, argv, /*default=*/60'000);
  const PaperSetup setup = MakePaperSetup(options);

  const std::vector<double> fractions = {0.05, 0.10, 0.20, 0.30,
                                         0.40, 0.50};
  std::vector<SweepVariant> variants;
  for (double fraction : fractions) {
    variants.push_back(
        {"cache=" + FormatDouble(fraction, 2),
         [fraction](ExperimentConfig& config) {
           config.customize_bypass =
               [fraction](BypassYieldScheme::Options& bypass) {
                 bypass.cache_fraction = fraction;
                 // Eagerized loader (break-even at 1/4 accrual): the
                 // capacity effect the sweep studies binds within the run
                 // length instead of after the paper's million queries.
                 // The *relative* shape across fractions is what
                 // validates the 30% claim.
                 bypass.yield_threshold = 0.25;
               };
         }});
  }
  ExperimentConfig base = PaperConfig(options, 10.0);
  base.scheme = SchemeKind::kBypassYield;
  const std::vector<SweepResult> results =
      RunVariantSweep(setup, options, base, {SchemeKind::kBypassYield},
                      std::move(variants));

  TableWriter table({"cache_fraction", "mean_resp_s", "op_cost_$",
                     "net_$", "disk_$", "hit_rate", "loads", "evictions"});
  for (size_t v = 0; v < fractions.size(); ++v) {
    const SimMetrics& m = results[v].metrics;
    CLOUDCACHE_CHECK(
        table
            .AddRow({FormatDouble(fractions[v], 2),
                     FormatDouble(m.MeanResponse(), 3),
                     FormatDouble(m.operating_cost.Total(), 2),
                     FormatDouble(m.operating_cost.network_dollars, 2),
                     FormatDouble(m.operating_cost.disk_dollars, 2),
                     FormatDouble(m.CacheHitRate(), 3),
                     std::to_string(m.investments),
                     std::to_string(m.evictions)})
            .ok());
  }
  std::puts(
      "Ablation A4 — bypass-yield cache budget (fraction of database) "
      "@ 10s interval");
  EmitTable(table, options);
  return 0;
}
