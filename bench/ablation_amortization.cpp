// Ablation A2: the amortization horizon `n` of Eq. 7,
// f_S(n, Build_S(S)) = Build_S(S) / n.
//
// "Selecting n is a challenging problem in itself … We intend to study
// this problem in our future research" (Section IV-D) — this sweep is that
// study at simulation scale. Short horizons price hypothetical structures
// (and freshly built ones) far above the back-end quote, so regret never
// accrues and nothing is built; long horizons make cache plans cheap but
// recover the build spend slowly, leaving the account exposed when the
// workload drifts.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/sim/report.h"
#include "src/util/logging.h"

int main(int argc, char** argv) {
  using namespace cloudcache;
  using namespace cloudcache::bench;

  const BenchOptions options = ParseArgs(argc, argv, /*default=*/60'000);
  const PaperSetup setup = MakePaperSetup(options);

  const std::vector<int64_t> horizons = {100,     1'000,   10'000,
                                         50'000,  200'000, 1'000'000};
  std::vector<SweepVariant> variants;
  for (int64_t n : horizons) {
    variants.push_back(
        {"n=" + std::to_string(n), [n](ExperimentConfig& config) {
           config.customize_econ = [n](EconScheme::Config& econ) {
             econ.economy.initial_credit = Money::FromDollars(200);
             econ.economy.model_build_latency = false;
             econ.economy.regret_fraction_a = 0.02;
             econ.economy.amortization_horizon = n;
           };
         }});
  }
  ExperimentConfig base = PaperConfig(options, 10.0);
  base.scheme = SchemeKind::kEconCheap;
  const std::vector<SweepResult> results = RunVariantSweep(
      setup, options, base, {SchemeKind::kEconCheap}, std::move(variants));

  TableWriter table({"n", "mean_resp_s", "op_cost_$", "investments",
                     "hit_rate", "revenue_$", "credit_$"});
  for (size_t v = 0; v < horizons.size(); ++v) {
    const SimMetrics& m = results[v].metrics;
    CLOUDCACHE_CHECK(table
                         .AddRow({std::to_string(horizons[v]),
                                  FormatDouble(m.MeanResponse(), 3),
                                  FormatDouble(m.operating_cost.Total(), 2),
                                  std::to_string(m.investments),
                                  FormatDouble(m.CacheHitRate(), 3),
                                  FormatDouble(m.revenue.ToDollars(), 2),
                                  FormatDouble(m.final_credit.ToDollars(),
                                               2)})
                         .ok());
  }
  std::puts("Ablation A2 — amortization horizon n (Eq. 7), econ-cheap @ 10s");
  EmitTable(table, options);
  return 0;
}
