#include "src/cache/candidate_pool.h"

#include <gtest/gtest.h>

namespace cloudcache {
namespace {

TEST(CandidatePoolTest, TouchInsertsNewCandidate) {
  CandidatePool pool(4);
  EXPECT_TRUE(pool.Touch(7, 0.0).empty());
  EXPECT_TRUE(pool.Contains(7));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(CandidatePoolTest, EvictsLruWhenFull) {
  CandidatePool pool(2);
  pool.Touch(1, 0.0);
  pool.Touch(2, 1.0);
  const std::vector<StructureId> evicted = pool.Touch(3, 2.0);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);  // Oldest.
  EXPECT_FALSE(pool.Contains(1));
  EXPECT_TRUE(pool.Contains(2));
  EXPECT_TRUE(pool.Contains(3));
}

TEST(CandidatePoolTest, TouchRefreshesRecency) {
  CandidatePool pool(2);
  pool.Touch(1, 0.0);
  pool.Touch(2, 1.0);
  pool.Touch(1, 2.0);  // 1 is now the most recent.
  const std::vector<StructureId> evicted = pool.Touch(3, 3.0);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 2u);
}

TEST(CandidatePoolTest, EraseRemovesWithoutEviction) {
  CandidatePool pool(2);
  pool.Touch(1, 0.0);
  pool.Erase(1);
  EXPECT_FALSE(pool.Contains(1));
  EXPECT_EQ(pool.size(), 0u);
  pool.Erase(99);  // No-op.
}

TEST(CandidatePoolTest, MruOrder) {
  CandidatePool pool(3);
  pool.Touch(1, 0.0);
  pool.Touch(2, 1.0);
  pool.Touch(3, 2.0);
  pool.Touch(1, 3.0);
  EXPECT_EQ(pool.MruOrder(), (std::vector<StructureId>{1, 3, 2}));
}

TEST(CandidatePoolTest, CapacityOneKeepsOnlyNewest) {
  CandidatePool pool(1);
  pool.Touch(1, 0.0);
  const auto evicted = pool.Touch(2, 1.0);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(CandidatePoolTest, RepeatedTouchNeverEvicts) {
  CandidatePool pool(2);
  pool.Touch(5, 0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.Touch(5, i).empty());
  }
  EXPECT_EQ(pool.size(), 1u);
}

TEST(CandidatePoolTest, EvictionBufferIsClearedByNextTouch) {
  // Touch returns a reference to a reused internal buffer: an eviction
  // must not linger into the next call's result.
  CandidatePool pool(1);
  pool.Touch(1, 0.0);
  const std::vector<StructureId>& evicted = pool.Touch(2, 1.0);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);
  // Refreshing the resident candidate evicts nothing; the same buffer now
  // reads empty.
  EXPECT_TRUE(pool.Touch(2, 2.0).empty());
  EXPECT_TRUE(evicted.empty());  // Same storage, overwritten.
}

}  // namespace
}  // namespace cloudcache
