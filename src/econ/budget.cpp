#include "src/econ/budget.h"

#include <algorithm>

namespace cloudcache {

Money BudgetFunction::At(double t) const {
  if (t <= 0.0 || t > t_max_) return Money();
  return Evaluate(t);
}

Status BudgetFunction::ValidateMonotone(int samples) const {
  if (samples < 2) return Status::InvalidArgument("need >= 2 samples");
  Money previous;
  for (int i = 0; i < samples; ++i) {
    const double t =
        t_max_ * static_cast<double>(i + 1) / static_cast<double>(samples);
    const Money value = At(t);
    if (i > 0 && value > previous) {
      return Status::InvalidArgument(
          "budget function increases near t=" + std::to_string(t));
    }
    previous = value;
  }
  return Status::OK();
}

StepBudget::StepBudget(Money amount, double t_max)
    : BudgetFunction(t_max), amount_(amount) {}

Money StepBudget::Evaluate(double) const { return amount_; }

LinearBudget::LinearBudget(Money amount, double t_max)
    : BudgetFunction(t_max), amount_(amount) {}

Money LinearBudget::Evaluate(double t) const {
  return amount_ * (1.0 - t / t_max());
}

ConvexBudget::ConvexBudget(Money amount, double t_max)
    : BudgetFunction(t_max), amount_(amount) {}

Money ConvexBudget::Evaluate(double t) const {
  const double slack = 1.0 - t / t_max();
  return amount_ * (slack * slack);
}

ConcaveBudget::ConcaveBudget(Money amount, double t_max)
    : BudgetFunction(t_max), amount_(amount) {}

Money ConcaveBudget::Evaluate(double t) const {
  const double ratio = t / t_max();
  return amount_ * (1.0 - ratio * ratio);
}

PiecewiseBudget::PiecewiseBudget(
    std::vector<std::pair<double, Money>> knots)
    : BudgetFunction(knots.back().first), knots_(std::move(knots)) {}

Result<PiecewiseBudget> PiecewiseBudget::Make(
    std::vector<std::pair<double, Money>> knots) {
  if (knots.empty()) {
    return Status::InvalidArgument("piecewise budget needs >= 1 knot");
  }
  for (size_t i = 0; i < knots.size(); ++i) {
    if (knots[i].first <= 0.0) {
      return Status::InvalidArgument("knot times must be positive");
    }
    if (i > 0 && knots[i].first <= knots[i - 1].first) {
      return Status::InvalidArgument("knot times must strictly increase");
    }
  }
  return PiecewiseBudget(std::move(knots));
}

Money PiecewiseBudget::Evaluate(double t) const {
  for (const auto& [time, price] : knots_) {
    if (t <= time) return price;
  }
  return Money();
}

}  // namespace cloudcache
