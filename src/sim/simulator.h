#pragma once

#include <cstdint>

#include "src/baseline/scheme.h"
#include "src/cost/cost_model.h"
#include "src/cost/price_list.h"
#include "src/sim/metrics.h"
#include "src/workload/generator.h"

namespace cloudcache {

/// Simulation controls.
struct SimulatorOptions {
  /// Queries to drive through the scheme (the paper simulates ~1e6; the
  /// default keeps full four-scheme sweeps interactive).
  uint64_t num_queries = 50'000;
  /// Real infrastructure rates used for metering operating cost,
  /// regardless of what the scheme believes internally.
  PriceList metered_prices = PriceList::AmazonEc2_2009();
  /// Cumulative-cost / credit timelines keep one point per this many
  /// queries.
  uint64_t timeline_stride = 500;
};

/// Discrete-event driver: feeds a workload through a Scheme and meters
/// what the cloud actually pays (Fig. 4) and what users actually wait
/// (Fig. 5).
///
/// Metering is strictly at `metered_prices` on raw resource quantities —
/// CPU-seconds, WAN bytes, I/O ops from execution and builds, plus
/// byte-seconds of disk rent and reservation-seconds of extra CPU nodes
/// integrated between arrivals — so a scheme whose internal prices ignore
/// a resource (net-only) still pays for it here, exactly as in the paper's
/// evaluation.
class Simulator {
 public:
  Simulator(const Catalog* catalog, Scheme* scheme,
            WorkloadGenerator* workload, SimulatorOptions options);

  /// Runs the configured number of queries and returns the metrics.
  SimMetrics Run();

 private:
  /// Integrates disk + node-reservation rent from last_meter_time_ to now.
  void MeterRent(SimTime now, SimMetrics* metrics);
  /// Prices one query's execution + builds into the breakdown.
  void MeterQuery(const Query& query, const ServedQuery& served,
                  SimTime now, SimMetrics* metrics);

  const Catalog* catalog_;
  Scheme* scheme_;
  WorkloadGenerator* workload_;
  SimulatorOptions options_;
  CostModel metered_model_;
  SimTime last_meter_time_ = 0;
  /// Rent not yet charged to the account because it rounds below a
  /// micro-dollar (see MeterRent).
  double pending_rent_dollars_ = 0;
};

}  // namespace cloudcache
