#include "src/util/rng.h"

#include <cassert>
#include <cmath>

namespace cloudcache {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  // splitmix64 finalizer over the combined words; the golden-ratio stride
  // separates stream 0 from the raw base seed.
  uint64_t state = seed + stream * 0x9e3779b97f4a7c15ull;
  return SplitMix64(state);
}

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound >= 1);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextExponential(double mean) {
  assert(mean > 0);
  // 1 - NextDouble() is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - NextDouble());
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  double u, v, s;
  do {
    u = NextUniform(-1, 1);
    v = NextUniform(-1, 1);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return u * std::sqrt(-2.0 * std::log(s) / s);
}

void Rng::SaveState(uint64_t out[5]) const {
  for (int i = 0; i < 4; ++i) out[i] = state_[i];
  out[4] = seed_;
}

void Rng::RestoreState(const uint64_t in[5]) {
  for (int i = 0; i < 4; ++i) state_[i] = in[i];
  seed_ = in[4];
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Mix the parent seed with the stream id through splitmix so sibling
  // streams are uncorrelated.
  uint64_t sm = seed_ ^ (0x5851f42d4c957f2dull * (stream_id + 1));
  return Rng(SplitMix64(sm));
}

ZipfSampler::ZipfSampler(uint64_t n, double skew) : n_(n), skew_(skew) {
  assert(n >= 1);
  assert(skew >= 0);
  h_integral_x1_ = HIntegral(1.5) - 1.0;
  h_integral_n_ = HIntegral(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HIntegralInverse(HIntegral(2.5) - H(2.0));
  harmonic_ = 0.0;
  for (uint64_t k = 1; k <= n_; ++k) {
    harmonic_ += std::pow(static_cast<double>(k), -skew_);
  }
}

double ZipfSampler::H(double x) const { return std::pow(x, -skew_); }

double ZipfSampler::HIntegral(double x) const {
  const double log_x = std::log(x);
  // Integral of x^-s: handles s == 1 via the expm1 form, numerically stable
  // for s near 1.
  const double t = log_x * (1.0 - skew_);
  if (std::abs(t) < 1e-8) {
    return log_x * (1.0 + t / 2.0 + t * t / 6.0);
  }
  return std::expm1(t) / (1.0 - skew_);
}

double ZipfSampler::HIntegralInverse(double x) const {
  double t = x * (1.0 - skew_);
  if (t < -1.0) t = -1.0;
  if (std::abs(t) < 1e-8) {
    return std::exp(x * (1.0 - t / 2.0 + t * t / 3.0));
  }
  return std::exp(std::log1p(t) / (1.0 - skew_));
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (n_ == 1) return 0;
  if (skew_ == 0.0) return rng.NextBounded(n_);
  while (true) {
    const double u =
        h_integral_n_ + rng.NextDouble() * (h_integral_x1_ - h_integral_n_);
    const double x = HIntegralInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= HIntegral(kd + 0.5) - H(kd)) {
      return k - 1;  // External interface is 0-based.
    }
  }
}

double ZipfSampler::Pmf(uint64_t rank) const {
  assert(rank < n_);
  return std::pow(static_cast<double>(rank + 1), -skew_) / harmonic_;
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  const size_t n = weights.size();
  assert(n >= 1);
  double total = 0;
  for (double w : weights) {
    assert(w >= 0);
    total += w;
  }
  assert(total > 0);
  prob_.resize(n);
  alias_.resize(n);
  std::vector<double> scaled(n);
  std::vector<uint32_t> small, large;
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] / total * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;  // Numerical leftovers.
}

size_t DiscreteSampler::Sample(Rng& rng) const {
  const size_t n = prob_.size();
  const size_t column = rng.NextBounded(n);
  return rng.NextDouble() < prob_[column] ? column : alias_[column];
}

}  // namespace cloudcache
