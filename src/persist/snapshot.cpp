#include "src/persist/snapshot.h"

#include <cstdio>
#include <utility>

namespace cloudcache {
namespace persist {

Encoder* SnapshotWriter::AddSection(const std::string& name) {
  sections_.push_back(std::make_unique<Section>());
  sections_.back()->name = name;
  return &sections_.back()->encoder;
}

std::vector<uint8_t> SnapshotWriter::Serialize() const {
  Encoder out;
  out.PutU32(kSnapshotMagic);
  out.PutU32(kSnapshotFormatVersion);
  out.PutU64(config_hash_);
  out.PutU32(static_cast<uint32_t>(sections_.size()));
  for (const auto& section : sections_) {
    const std::vector<uint8_t>& payload = section->encoder.buffer();
    out.PutString(section->name);
    out.PutU64(payload.size());
    out.PutU32(Crc32(payload));
    out.PutBytes(payload.data(), payload.size());
  }
  return out.buffer();
}

Status SnapshotWriter::WriteToFile(const std::string& path) const {
  const std::vector<uint8_t> bytes = Serialize();
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open snapshot temp file: " + tmp);
  }
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
  ok = std::fflush(file) == 0 && ok;
  ok = std::fclose(file) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IoError("short write to snapshot temp file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename snapshot into place: " + path);
  }
  return Status::OK();
}

Result<SnapshotReader> SnapshotReader::FromBytes(std::vector<uint8_t> bytes) {
  SnapshotReader reader;
  reader.bytes_ = std::move(bytes);

  Decoder dec(reader.bytes_.data(), reader.bytes_.size());
  uint32_t magic = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec.ReadU32(&magic));
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("not a cloudcache snapshot (bad magic)");
  }
  uint32_t version = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec.ReadU32(&version));
  if (version != kSnapshotFormatVersion) {
    return Status::FailedPrecondition(
        "snapshot format version " + std::to_string(version) +
        " is not the supported version " +
        std::to_string(kSnapshotFormatVersion));
  }
  CLOUDCACHE_RETURN_IF_ERROR(dec.ReadU64(&reader.config_hash_));
  uint32_t count = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec.ReadU32(&count));

  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    CLOUDCACHE_RETURN_IF_ERROR(dec.ReadString(&name));
    uint64_t size = 0;
    CLOUDCACHE_RETURN_IF_ERROR(dec.ReadU64(&size));
    uint32_t crc = 0;
    CLOUDCACHE_RETURN_IF_ERROR(dec.ReadU32(&crc));
    if (size > dec.remaining()) {
      return Status::OutOfRange("snapshot truncated inside section '" + name +
                                "'");
    }
    Span span;
    span.offset = reader.bytes_.size() - dec.remaining();
    span.size = static_cast<size_t>(size);
    const uint32_t actual =
        Crc32(reader.bytes_.data() + span.offset, span.size);
    if (actual != crc) {
      return Status::InvalidArgument("snapshot section '" + name +
                                     "' failed its CRC32 check");
    }
    if (!reader.sections_.emplace(name, span).second) {
      return Status::InvalidArgument("snapshot has duplicate section '" +
                                     name + "'");
    }
    // Re-seat the decoder past the payload.
    dec = Decoder(reader.bytes_.data() + span.offset + span.size,
                  reader.bytes_.size() - span.offset - span.size);
  }
  CLOUDCACHE_RETURN_IF_ERROR(dec.ExpectEnd());
  return reader;
}

Result<SnapshotReader> SnapshotReader::FromFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("snapshot file not found: " + path);
  }
  std::vector<uint8_t> bytes;
  uint8_t chunk[1 << 16];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::IoError("cannot read snapshot file: " + path);
  }
  return FromBytes(std::move(bytes));
}

Status SnapshotReader::ExpectConfigHash(uint64_t expected) const {
  if (config_hash_ != expected) {
    return Status::FailedPrecondition(
        "snapshot was taken under a different configuration (config hash " +
        std::to_string(config_hash_) + ", this run is " +
        std::to_string(expected) +
        "); restore requires identical scheme/seed/workload/tenant/cluster "
        "settings");
  }
  return Status::OK();
}

std::vector<std::string> SnapshotReader::SectionNames() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const auto& [name, span] : sections_) names.push_back(name);
  return names;
}

Result<Decoder> SnapshotReader::Section(const std::string& name) const {
  auto it = sections_.find(name);
  if (it == sections_.end()) {
    return Status::NotFound("snapshot has no section '" + name + "'");
  }
  return Decoder(bytes_.data() + it->second.offset, it->second.size);
}

}  // namespace persist
}  // namespace cloudcache
