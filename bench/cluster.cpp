// Cluster scale grid + regression harness.
//
// Runs the paper's workload against growing cache fleets — schemes x
// {1, 2, 4 fixed nodes, elastic 1->4} — in a single thread, wall-clock
// timing each cell, and reports per-cell operating cost, mean response,
// and simulated queries/sec: the scale axis the single-node figures
// cannot show, and the constant-factor speed of the routed decision loop.
//
// Results are also written as JSON (default BENCH_cluster.json) so CI can
// guard the cluster path against throughput regressions exactly like the
// hot-path bench:
//
//   cluster --smoke --json=BENCH_cluster_smoke.json
//
// Meaningful numbers require a Release build; the driver warns otherwise.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/sim/experiment.h"

namespace {

using cloudcache::ClusterOptions;
using cloudcache::ExperimentConfig;
using cloudcache::RunExperiment;
using cloudcache::SchemeKind;
using cloudcache::SchemeKindToString;
using cloudcache::SimMetrics;
using cloudcache::bench::BenchOptions;
using cloudcache::bench::MakePaperSetup;
using cloudcache::bench::PaperConfig;

struct ClusterBenchOptions {
  BenchOptions bench;
  std::string json_path = "BENCH_cluster.json";
  bool smoke = false;
  /// Workers for the windowed parallel driver; 0 = classic serial driver
  /// (the committed baselines are serial so the guard compares like with
  /// like — the windowed discipline routes against window-start snapshots
  /// and so is a different, equally deterministic schedule).
  uint32_t threads = 0;
};

bool ConsumeFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

ClusterBenchOptions ParseClusterArgs(int argc, char** argv) {
  ClusterBenchOptions options;
  options.bench.queries = 20'000;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ConsumeFlag(argv[i], "--queries", &value)) {
      options.bench.queries = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ConsumeFlag(argv[i], "--scale-tb", &value)) {
      options.bench.scale_tb = std::strtod(value.c_str(), nullptr);
    } else if (ConsumeFlag(argv[i], "--seed", &value)) {
      options.bench.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ConsumeFlag(argv[i], "--json", &value)) {
      options.json_path = value;
    } else if (ConsumeFlag(argv[i], "--threads", &value)) {
      options.threads =
          static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      options.smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--queries=N] [--scale-tb=X] [--seed=N] "
                   "[--json=PATH] [--threads=N] [--smoke]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (options.smoke) {
    options.bench.queries = std::min<uint64_t>(options.bench.queries, 2'000);
  }
  return options;
}

/// One fleet shape on the grid's cluster axis.
struct FleetVariant {
  const char* label;
  uint32_t nodes;
  bool elastic;
};

struct CellResult {
  SchemeKind scheme;
  const char* fleet = nullptr;
  uint64_t queries = 0;
  double wall_seconds = 0;
  double qps = 0;
  double operating_cost_dollars = 0;
  double mean_response_seconds = 0;
  double response_p50 = 0;
  double response_p95 = 0;
  double response_p99 = 0;
  uint32_t final_nodes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const ClusterBenchOptions options = ParseClusterArgs(argc, argv);
  const auto setup = MakePaperSetup(options.bench);

#ifndef NDEBUG
  std::fprintf(stderr,
               "cluster: WARNING — assertions enabled; use a Release build "
               "for regression-grade numbers\n");
#endif
  std::fprintf(stderr, "cluster: %llu queries/cell, %.1f TB\n",
               static_cast<unsigned long long>(options.bench.queries),
               options.bench.scale_tb);

  // Fixed fleets show cost-aware placement at width; the elastic cell
  // shows the controller buying width only when regret pays for it. The
  // 1 s interarrival loads the economy enough that multi-node fleets
  // have structures worth routing to.
  const std::vector<FleetVariant> fleets = {
      {"n1", 1, false},
      {"n2", 2, false},
      {"n4", 4, false},
      {"n1-elastic", 1, true},
  };
  const std::vector<SchemeKind> schemes = {SchemeKind::kEconCheap,
                                           SchemeKind::kEconFast};

  std::vector<CellResult> cells;
  for (const FleetVariant& fleet : fleets) {
    for (SchemeKind scheme : schemes) {
      ExperimentConfig config = PaperConfig(options.bench, 1.0);
      config.scheme = scheme;
      config.cluster.nodes = fleet.nodes;
      config.cluster.elastic = fleet.elastic;
      config.cluster.elasticity.max_nodes = 4;
      config.sim.parallel_threads = options.threads;
      if (options.threads > 0) config.cluster.force_cluster_path = true;

      const auto start = std::chrono::steady_clock::now();
      const SimMetrics metrics =
          RunExperiment(setup.catalog, setup.templates, config);
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();

      CellResult cell;
      cell.scheme = scheme;
      cell.fleet = fleet.label;
      cell.queries = metrics.queries;
      cell.wall_seconds = seconds;
      cell.qps = seconds > 0
                     ? static_cast<double>(metrics.queries) / seconds
                     : 0;
      cell.operating_cost_dollars = metrics.operating_cost.Total();
      cell.mean_response_seconds = metrics.MeanResponse();
      cell.response_p50 = metrics.response_hist.Quantile(0.5);
      cell.response_p95 = metrics.response_hist.Quantile(0.95);
      cell.response_p99 = metrics.response_hist.Quantile(0.99);
      cell.final_nodes =
          metrics.cluster.active ? metrics.cluster.final_nodes : 1;
      cells.push_back(cell);
      std::fprintf(stderr,
                   "  [done] %-10s %-10s  %9.0f q/s  $%8.2f  %u nodes\n",
                   SchemeKindToString(scheme), fleet.label, cell.qps,
                   cell.operating_cost_dollars, cell.final_nodes);
    }
  }

  std::puts("Cluster scale grid (simulated queries per wall-clock second)");
  std::printf("%-12s %-12s %10s %12s %12s %8s\n", "scheme", "fleet", "qps",
              "op_cost_$", "mean_resp_s", "nodes");
  for (const CellResult& cell : cells) {
    std::printf("%-12s %-12s %10.0f %12.2f %12.3f %8u\n",
                SchemeKindToString(cell.scheme), cell.fleet, cell.qps,
                cell.operating_cost_dollars, cell.mean_response_seconds,
                cell.final_nodes);
  }

  std::FILE* json = std::fopen(options.json_path.c_str(), "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n",
                 options.json_path.c_str());
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"cluster_scale\",\n"
               "  \"queries_per_cell\": %llu,\n"
               "  \"scale_tb\": %.3f,\n"
               "  \"seed\": %llu,\n"
               "  \"plan_cache\": true,\n"
               "  \"cells\": [\n",
               static_cast<unsigned long long>(options.bench.queries),
               options.bench.scale_tb,
               static_cast<unsigned long long>(options.bench.seed));
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    std::fprintf(json,
                 "    {\"scheme\": \"%s\", \"fleet\": \"%s\", "
                 "\"queries\": %llu, \"wall_seconds\": %.6f, "
                 "\"qps\": %.1f, \"operating_cost_dollars\": %.6f, "
                 "\"mean_response_seconds\": %.6f, "
                 "\"response_p50_seconds\": %.6f, "
                 "\"response_p95_seconds\": %.6f, "
                 "\"response_p99_seconds\": %.6f, \"final_nodes\": %u}%s\n",
                 SchemeKindToString(cell.scheme), cell.fleet,
                 static_cast<unsigned long long>(cell.queries),
                 cell.wall_seconds, cell.qps, cell.operating_cost_dollars,
                 cell.mean_response_seconds, cell.response_p50,
                 cell.response_p95, cell.response_p99, cell.final_nodes,
                 i + 1 < cells.size() ? "," : "");
  }
  // aggregate_qps keys are scheme/fleet pairs, so the perf guard judges
  // each routed configuration separately (an n4 regression cannot hide
  // behind a fast n1 cell).
  std::fprintf(json,
               "  ],\n"
               "  \"aggregate_qps\": {\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    std::fprintf(json, "    \"%s/%s\": %.1f%s\n",
                 SchemeKindToString(cell.scheme), cell.fleet, cell.qps,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(json,
               "  }\n"
               "}\n");
  std::fclose(json);
  std::fprintf(stderr, "cluster: wrote %s\n", options.json_path.c_str());
  return 0;
}
