// The wire codec is the persistence codec's discipline applied to a
// socket: explicit layout, strict decode. Three properties pin it down:
//
//  1. Round-trip: every message type encodes and decodes to itself,
//     field for field, including the full Query payload.
//  2. Truncation refusal: a payload cut at ANY byte boundary is refused
//     with an error, never misread — the same exhaustive-prefix sweep
//     tests/persist/ runs over snapshots.
//  3. Corruption refusal: unknown type bytes, out-of-range enum values,
//     non-0/1 bools, invalid numeric domains, and trailing garbage are
//     all refused.

#include "src/server/protocol.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "src/persist/codec.h"

namespace cloudcache::server {
namespace {

/// A fully-populated query exercising every encoded field.
Query SampleQuery() {
  Query q;
  q.id = 41'217;
  q.template_id = 7;
  q.table = 3;
  q.output_columns = {11, 12, 19};
  Predicate date;
  date.column = 12;
  date.selectivity = 0.015625;
  date.equality = false;
  date.clustered = true;
  q.predicates.push_back(date);
  Predicate key;
  key.column = 19;
  key.selectivity = 1.0;
  key.equality = true;
  key.clustered = false;
  q.predicates.push_back(key);
  q.cpu_multiplier = 2.25;
  q.parallel_fraction = 0.875;
  q.result_rows = 123'456;
  q.result_bytes = 987'654'321;
  q.arrival_time = 1'234.5;
  q.tenant_id = 2;
  return q;
}

/// Decodes an encoded payload with the message-appropriate decoder,
/// returning the decode status (PeekType + body + ExpectEnd).
Status DecodeAs(MessageType want, const std::vector<uint8_t>& bytes) {
  persist::Decoder dec(bytes.data(), bytes.size());
  MessageType type = want;
  CLOUDCACHE_RETURN_IF_ERROR(PeekType(&dec, &type));
  if (type != want) return Status::InvalidArgument("wrong type");
  switch (want) {
    case MessageType::kHello: {
      HelloMsg msg;
      return DecodeHello(&dec, &msg);
    }
    case MessageType::kHelloAck: {
      HelloAckMsg msg;
      return DecodeHelloAck(&dec, &msg);
    }
    case MessageType::kQuery: {
      Query query;
      return DecodeQuery(&dec, &query);
    }
    case MessageType::kOutcome: {
      OutcomeMsg msg;
      return DecodeOutcome(&dec, &msg);
    }
    case MessageType::kError: {
      ErrorMsg msg;
      return DecodeError(&dec, &msg);
    }
    case MessageType::kStats:
      return DecodeStats(&dec);
    case MessageType::kStatsAck: {
      StatsAckMsg msg;
      return DecodeStatsAck(&dec, &msg);
    }
    case MessageType::kShutdown:
      return DecodeShutdown(&dec);
    case MessageType::kShutdownAck:
      return DecodeShutdownAck(&dec);
    case MessageType::kStatsSubscribe: {
      StatsSubscribeMsg msg;
      return DecodeStatsSubscribe(&dec, &msg);
    }
  }
  return Status::Internal("unreachable");
}

TEST(ProtocolTest, HelloRoundTrips) {
  HelloMsg msg;
  msg.protocol_version = kProtocolVersion;
  msg.stream_id = kControlStream;
  msg.config_hash = 0xF888359F07649B8Full;
  persist::Encoder enc;
  EncodeHello(msg, &enc);

  persist::Decoder dec(enc.buffer().data(), enc.size());
  MessageType type = MessageType::kError;
  ASSERT_TRUE(PeekType(&dec, &type).ok());
  EXPECT_EQ(type, MessageType::kHello);
  HelloMsg out;
  ASSERT_TRUE(DecodeHello(&dec, &out).ok());
  EXPECT_EQ(out.protocol_version, msg.protocol_version);
  EXPECT_EQ(out.stream_id, msg.stream_id);
  EXPECT_EQ(out.config_hash, msg.config_hash);
}

TEST(ProtocolTest, HelloAckRoundTrips) {
  HelloAckMsg msg;
  msg.protocol_version = 1;
  msg.stream_id = 3;
  msg.config_hash = 0xDEADBEEFCAFEF00Dull;
  msg.num_queries = 50'000;
  msg.next_query_id = 12'000;
  persist::Encoder enc;
  EncodeHelloAck(msg, &enc);

  persist::Decoder dec(enc.buffer().data(), enc.size());
  MessageType type = MessageType::kError;
  ASSERT_TRUE(PeekType(&dec, &type).ok());
  EXPECT_EQ(type, MessageType::kHelloAck);
  HelloAckMsg out;
  ASSERT_TRUE(DecodeHelloAck(&dec, &out).ok());
  EXPECT_EQ(out.protocol_version, msg.protocol_version);
  EXPECT_EQ(out.stream_id, msg.stream_id);
  EXPECT_EQ(out.config_hash, msg.config_hash);
  EXPECT_EQ(out.num_queries, msg.num_queries);
  EXPECT_EQ(out.next_query_id, msg.next_query_id);
}

TEST(ProtocolTest, QueryRoundTripsEveryField) {
  const Query q = SampleQuery();
  persist::Encoder enc;
  EncodeQuery(q, &enc);

  persist::Decoder dec(enc.buffer().data(), enc.size());
  MessageType type = MessageType::kError;
  ASSERT_TRUE(PeekType(&dec, &type).ok());
  EXPECT_EQ(type, MessageType::kQuery);
  Query out;
  ASSERT_TRUE(DecodeQuery(&dec, &out).ok());
  EXPECT_EQ(out.id, q.id);
  EXPECT_EQ(out.template_id, q.template_id);
  EXPECT_EQ(out.table, q.table);
  EXPECT_EQ(out.output_columns, q.output_columns);
  ASSERT_EQ(out.predicates.size(), q.predicates.size());
  for (size_t i = 0; i < q.predicates.size(); ++i) {
    EXPECT_EQ(out.predicates[i].column, q.predicates[i].column);
    EXPECT_EQ(out.predicates[i].selectivity, q.predicates[i].selectivity);
    EXPECT_EQ(out.predicates[i].equality, q.predicates[i].equality);
    EXPECT_EQ(out.predicates[i].clustered, q.predicates[i].clustered);
  }
  EXPECT_EQ(out.cpu_multiplier, q.cpu_multiplier);
  EXPECT_EQ(out.parallel_fraction, q.parallel_fraction);
  EXPECT_EQ(out.result_rows, q.result_rows);
  EXPECT_EQ(out.result_bytes, q.result_bytes);
  EXPECT_EQ(out.arrival_time, q.arrival_time);
  EXPECT_EQ(out.tenant_id, q.tenant_id);
}

TEST(ProtocolTest, OutcomeRoundTrips) {
  OutcomeMsg msg;
  msg.query_id = 99;
  msg.global_index = 1'234;
  msg.served = true;
  msg.access = 2;  // kCacheIndex.
  msg.throttled = true;
  msg.response_seconds = 0.125;
  msg.payment_micros = -7'000'001;
  msg.profit_micros = 3'141'592;
  msg.has_budget_case = true;
  msg.budget_case = 1;  // kCaseB.
  msg.investments = 3;
  msg.evictions = 2;
  persist::Encoder enc;
  EncodeOutcome(msg, &enc);

  persist::Decoder dec(enc.buffer().data(), enc.size());
  MessageType type = MessageType::kError;
  ASSERT_TRUE(PeekType(&dec, &type).ok());
  EXPECT_EQ(type, MessageType::kOutcome);
  OutcomeMsg out;
  ASSERT_TRUE(DecodeOutcome(&dec, &out).ok());
  EXPECT_EQ(out.query_id, msg.query_id);
  EXPECT_EQ(out.global_index, msg.global_index);
  EXPECT_EQ(out.served, msg.served);
  EXPECT_EQ(out.access, msg.access);
  EXPECT_EQ(out.throttled, msg.throttled);
  EXPECT_EQ(out.response_seconds, msg.response_seconds);
  EXPECT_EQ(out.payment_micros, msg.payment_micros);
  EXPECT_EQ(out.profit_micros, msg.profit_micros);
  EXPECT_EQ(out.has_budget_case, msg.has_budget_case);
  EXPECT_EQ(out.budget_case, msg.budget_case);
  EXPECT_EQ(out.investments, msg.investments);
  EXPECT_EQ(out.evictions, msg.evictions);
}

TEST(ProtocolTest, ErrorStatsAndShutdownRoundTrip) {
  ErrorMsg error;
  error.code = ErrorCode::kStreamDiverged;
  error.message = "stream 2 diverged from its twin generator";
  persist::Encoder enc;
  EncodeError(error, &enc);
  {
    persist::Decoder dec(enc.buffer().data(), enc.size());
    MessageType type = MessageType::kHello;
    ASSERT_TRUE(PeekType(&dec, &type).ok());
    EXPECT_EQ(type, MessageType::kError);
    ErrorMsg out;
    ASSERT_TRUE(DecodeError(&dec, &out).ok());
    EXPECT_EQ(out.code, error.code);
    EXPECT_EQ(out.message, error.message);
  }

  StatsAckMsg stats;
  stats.processed = 1'500;
  stats.num_queries = 3'000;
  stats.served = 1'499;
  stats.active_streams = 4;
  stats.credit_micros = -12'345;
  stats.served_in_cache = 321;
  stats.throttled = 17;
  stats.investments = 9;
  stats.evictions = 2;
  StreamStatsMsg slice;
  slice.stream = 0;
  slice.queries = 800;
  slice.served = 799;
  slice.throttled = 17;
  stats.streams.push_back(slice);
  slice.stream = 3;
  slice.queries = 700;
  slice.served = 700;
  slice.throttled = 0;
  stats.streams.push_back(slice);
  enc.Clear();
  EncodeStatsAck(stats, &enc);
  {
    persist::Decoder dec(enc.buffer().data(), enc.size());
    MessageType type = MessageType::kHello;
    ASSERT_TRUE(PeekType(&dec, &type).ok());
    EXPECT_EQ(type, MessageType::kStatsAck);
    StatsAckMsg out;
    ASSERT_TRUE(DecodeStatsAck(&dec, &out).ok());
    EXPECT_EQ(out.processed, stats.processed);
    EXPECT_EQ(out.num_queries, stats.num_queries);
    EXPECT_EQ(out.served, stats.served);
    EXPECT_EQ(out.active_streams, stats.active_streams);
    EXPECT_EQ(out.credit_micros, stats.credit_micros);
    EXPECT_EQ(out.served_in_cache, stats.served_in_cache);
    EXPECT_EQ(out.throttled, stats.throttled);
    EXPECT_EQ(out.investments, stats.investments);
    EXPECT_EQ(out.evictions, stats.evictions);
    ASSERT_EQ(out.streams.size(), stats.streams.size());
    for (size_t i = 0; i < out.streams.size(); ++i) {
      EXPECT_EQ(out.streams[i].stream, stats.streams[i].stream);
      EXPECT_EQ(out.streams[i].queries, stats.streams[i].queries);
      EXPECT_EQ(out.streams[i].served, stats.streams[i].served);
      EXPECT_EQ(out.streams[i].throttled, stats.streams[i].throttled);
    }
  }

  StatsSubscribeMsg subscribe;
  subscribe.every = 250;
  enc.Clear();
  EncodeStatsSubscribe(subscribe, &enc);
  {
    persist::Decoder dec(enc.buffer().data(), enc.size());
    MessageType type = MessageType::kHello;
    ASSERT_TRUE(PeekType(&dec, &type).ok());
    EXPECT_EQ(type, MessageType::kStatsSubscribe);
    StatsSubscribeMsg out;
    ASSERT_TRUE(DecodeStatsSubscribe(&dec, &out).ok());
    EXPECT_EQ(out.every, subscribe.every);
  }
  // A zero cadence would push a frame per served query forever; the
  // decoder refuses it so the server never has to.
  subscribe.every = 0;
  enc.Clear();
  EncodeStatsSubscribe(subscribe, &enc);
  {
    persist::Decoder dec(enc.buffer().data(), enc.size());
    MessageType type = MessageType::kHello;
    ASSERT_TRUE(PeekType(&dec, &type).ok());
    StatsSubscribeMsg out;
    EXPECT_FALSE(DecodeStatsSubscribe(&dec, &out).ok());
  }

  // The bodyless messages.
  for (MessageType type :
       {MessageType::kStats, MessageType::kShutdown,
        MessageType::kShutdownAck}) {
    enc.Clear();
    if (type == MessageType::kStats) EncodeStats(&enc);
    if (type == MessageType::kShutdown) EncodeShutdown(&enc);
    if (type == MessageType::kShutdownAck) EncodeShutdownAck(&enc);
    EXPECT_TRUE(DecodeAs(type, enc.buffer()).ok())
        << MessageTypeName(type);
  }
}

TEST(ProtocolTest, EveryTruncationOfEveryMessageIsRefused) {
  // Encode one of each message, then replay every strict prefix of each
  // payload through its decoder: all must fail, none may crash or
  // succeed on partial data. (Prefix length 0 is the transport's case —
  // ReadFrame refuses empty frames before any decoder runs.)
  std::vector<std::pair<MessageType, std::vector<uint8_t>>> messages;
  persist::Encoder enc;

  HelloMsg hello;
  hello.config_hash = 0x1234;
  EncodeHello(hello, &enc);
  messages.emplace_back(MessageType::kHello, enc.buffer());
  enc.Clear();

  HelloAckMsg ack;
  ack.num_queries = 10;
  EncodeHelloAck(ack, &enc);
  messages.emplace_back(MessageType::kHelloAck, enc.buffer());
  enc.Clear();

  EncodeQuery(SampleQuery(), &enc);
  messages.emplace_back(MessageType::kQuery, enc.buffer());
  enc.Clear();

  OutcomeMsg outcome;
  outcome.served = true;
  EncodeOutcome(outcome, &enc);
  messages.emplace_back(MessageType::kOutcome, enc.buffer());
  enc.Clear();

  ErrorMsg error;
  error.code = ErrorCode::kBadFrame;
  error.message = "x";
  EncodeError(error, &enc);
  messages.emplace_back(MessageType::kError, enc.buffer());
  enc.Clear();

  StatsAckMsg stats;
  stats.streams.push_back(StreamStatsMsg());  // Truncate into the slice.
  EncodeStatsAck(stats, &enc);
  messages.emplace_back(MessageType::kStatsAck, enc.buffer());
  enc.Clear();

  StatsSubscribeMsg subscribe;
  subscribe.every = 100;
  EncodeStatsSubscribe(subscribe, &enc);
  messages.emplace_back(MessageType::kStatsSubscribe, enc.buffer());
  enc.Clear();

  for (const auto& [type, bytes] : messages) {
    ASSERT_TRUE(DecodeAs(type, bytes).ok()) << MessageTypeName(type);
    for (size_t cut = 1; cut < bytes.size(); ++cut) {
      const std::vector<uint8_t> prefix(bytes.begin(),
                                        bytes.begin() + cut);
      EXPECT_FALSE(DecodeAs(type, prefix).ok())
          << MessageTypeName(type) << " truncated to " << cut << " of "
          << bytes.size() << " bytes decoded successfully";
    }
  }
}

TEST(ProtocolTest, TrailingBytesAreRefused) {
  persist::Encoder enc;
  EncodeHello(HelloMsg{}, &enc);
  std::vector<uint8_t> bytes = enc.buffer();
  bytes.push_back(0x00);
  EXPECT_FALSE(DecodeAs(MessageType::kHello, bytes).ok());

  enc.Clear();
  EncodeShutdown(&enc);
  bytes = enc.buffer();
  bytes.push_back(0xFF);
  EXPECT_FALSE(DecodeAs(MessageType::kShutdown, bytes).ok());
}

TEST(ProtocolTest, UnknownTypeBytesAreRefused) {
  for (const uint8_t raw : {uint8_t{0}, uint8_t{11}, uint8_t{0xFF}}) {
    const std::vector<uint8_t> bytes = {raw};
    persist::Decoder dec(bytes.data(), bytes.size());
    MessageType type = MessageType::kHello;
    EXPECT_FALSE(PeekType(&dec, &type).ok()) << static_cast<int>(raw);
  }
}

TEST(ProtocolTest, CorruptEnumAndBoolValuesAreRefused) {
  // Outcome.access is the byte right after query_id + global_index
  // (type byte + 2x u64); force it out of range.
  OutcomeMsg outcome;
  persist::Encoder enc;
  EncodeOutcome(outcome, &enc);
  std::vector<uint8_t> bytes = enc.buffer();
  const size_t access_offset = 1 + 8 + 8 + 1;  // type, id, index, served.
  bytes[access_offset] = 3;
  EXPECT_FALSE(DecodeAs(MessageType::kOutcome, bytes).ok());

  // The served bool (one byte earlier) must reject non-0/1.
  bytes = enc.buffer();
  bytes[access_offset - 1] = 2;
  EXPECT_FALSE(DecodeAs(MessageType::kOutcome, bytes).ok());

  // Error.code rejects out-of-range codes.
  ErrorMsg error;
  error.code = ErrorCode::kInternal;
  enc.Clear();
  EncodeError(error, &enc);
  bytes = enc.buffer();
  bytes[1] = 200;  // The code byte follows the type byte.
  EXPECT_FALSE(DecodeAs(MessageType::kError, bytes).ok());
}

TEST(ProtocolTest, InvalidQueryDomainsAreRefused) {
  // The decoder enforces the same numeric domains Query::Validate does:
  // selectivity in (0, 1], finite positive cpu_multiplier, parallel
  // fraction in [0, 1], finite non-negative arrival.
  Query q = SampleQuery();
  q.predicates[0].selectivity = 0.0;
  persist::Encoder enc;
  EncodeQuery(q, &enc);
  EXPECT_FALSE(DecodeAs(MessageType::kQuery, enc.buffer()).ok());

  q = SampleQuery();
  q.cpu_multiplier = std::numeric_limits<double>::infinity();
  enc.Clear();
  EncodeQuery(q, &enc);
  EXPECT_FALSE(DecodeAs(MessageType::kQuery, enc.buffer()).ok());

  q = SampleQuery();
  q.parallel_fraction = 1.5;
  enc.Clear();
  EncodeQuery(q, &enc);
  EXPECT_FALSE(DecodeAs(MessageType::kQuery, enc.buffer()).ok());

  q = SampleQuery();
  q.arrival_time = -1.0;
  enc.Clear();
  EncodeQuery(q, &enc);
  EXPECT_FALSE(DecodeAs(MessageType::kQuery, enc.buffer()).ok());
}

TEST(ProtocolTest, NamesCoverEveryValue) {
  for (uint8_t raw = 1; raw <= 10; ++raw) {
    EXPECT_STRNE(MessageTypeName(static_cast<MessageType>(raw)), "");
  }
  for (uint8_t raw = 1; raw <= 10; ++raw) {
    EXPECT_STRNE(ErrorCodeName(static_cast<ErrorCode>(raw)), "");
  }
}

}  // namespace
}  // namespace cloudcache::server
