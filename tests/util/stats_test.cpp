#include "src/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/rng.h"

namespace cloudcache {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.sum(), 5.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // Unbiased.
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(3);
  RunningStats whole, left, right;
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.NextGaussian() * 3 + 1;
    whole.Add(x);
    (i % 2 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(2.0);
  const double mean = a.mean();
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.mean(), mean);
  b.Merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_EQ(b.mean(), mean);
}

TEST(RunningStatsTest, StableOverManySamples) {
  RunningStats s;
  for (int i = 0; i < 1'000'000; ++i) s.Add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(TimeSeriesTest, AppendsAndReads) {
  TimeSeries ts;
  ts.Add(0.0, 1.0);
  ts.Add(1.0, 2.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.Last(), 2.0);
  EXPECT_EQ(ts.times()[0], 0.0);
  EXPECT_EQ(ts.values()[1], 2.0);
}

TEST(TimeSeriesTest, EmptyLastIsZero) {
  TimeSeries ts;
  EXPECT_EQ(ts.Last(), 0.0);
}

TEST(TimeSeriesTest, DownsampleKeepsEndpoints) {
  TimeSeries ts;
  for (int i = 0; i < 1000; ++i) ts.Add(i, i * 2.0);
  TimeSeries down = ts.Downsample(10);
  EXPECT_EQ(down.size(), 10u);
  EXPECT_EQ(down.times().front(), 0.0);
  EXPECT_EQ(down.times().back(), 999.0);
  EXPECT_EQ(down.values().back(), 1998.0);
}

TEST(TimeSeriesTest, DownsampleNoOpWhenSmall) {
  TimeSeries ts;
  ts.Add(0, 1);
  ts.Add(1, 2);
  EXPECT_EQ(ts.Downsample(10).size(), 2u);
}

}  // namespace
}  // namespace cloudcache
