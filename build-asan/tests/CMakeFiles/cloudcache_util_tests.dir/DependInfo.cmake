
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/logging_test.cpp" "tests/CMakeFiles/cloudcache_util_tests.dir/util/logging_test.cpp.o" "gcc" "tests/CMakeFiles/cloudcache_util_tests.dir/util/logging_test.cpp.o.d"
  "/root/repo/tests/util/money_test.cpp" "tests/CMakeFiles/cloudcache_util_tests.dir/util/money_test.cpp.o" "gcc" "tests/CMakeFiles/cloudcache_util_tests.dir/util/money_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/cloudcache_util_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/cloudcache_util_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/cloudcache_util_tests.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/cloudcache_util_tests.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/status_test.cpp" "tests/CMakeFiles/cloudcache_util_tests.dir/util/status_test.cpp.o" "gcc" "tests/CMakeFiles/cloudcache_util_tests.dir/util/status_test.cpp.o.d"
  "/root/repo/tests/util/table_writer_test.cpp" "tests/CMakeFiles/cloudcache_util_tests.dir/util/table_writer_test.cpp.o" "gcc" "tests/CMakeFiles/cloudcache_util_tests.dir/util/table_writer_test.cpp.o.d"
  "/root/repo/tests/util/thread_pool_test.cpp" "tests/CMakeFiles/cloudcache_util_tests.dir/util/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/cloudcache_util_tests.dir/util/thread_pool_test.cpp.o.d"
  "/root/repo/tests/util/units_test.cpp" "tests/CMakeFiles/cloudcache_util_tests.dir/util/units_test.cpp.o" "gcc" "tests/CMakeFiles/cloudcache_util_tests.dir/util/units_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/cloudcache.dir/DependInfo.cmake"
  "/root/repo/build-asan/_deps/googletest-build/googletest/CMakeFiles/gtest_main.dir/DependInfo.cmake"
  "/root/repo/build-asan/_deps/googletest-build/googletest/CMakeFiles/gtest.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
