// The plan-skeleton cache is a pure memoization: with
// EnumeratorOptions::enable_plan_cache off, every simulation must replay
// to the last micro-dollar and the last timeline byte. This is the
// end-to-end gate for the per-query hot-path overhaul — any invalidation
// bug (stale missing-sets, skipped re-pricing, wrong candidate
// generation) shows up here as a diverging metric.

#include <gtest/gtest.h>

#include <cstring>

#include "src/catalog/tpch.h"
#include "src/sim/experiment.h"

namespace cloudcache {
namespace {

bool ByteIdentical(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Asserts every metric a run produces — counts, exact Money amounts,
/// double-precision cost breakdowns, response-time statistics, and the
/// full cost/credit timelines — is identical between two runs.
void ExpectBitIdenticalMetrics(const SimMetrics& on, const SimMetrics& off) {
  EXPECT_EQ(on.scheme_name, off.scheme_name);

  EXPECT_EQ(on.queries, off.queries);
  EXPECT_EQ(on.served, off.served);
  EXPECT_EQ(on.served_in_cache, off.served_in_cache);
  EXPECT_EQ(on.served_in_backend, off.served_in_backend);
  EXPECT_EQ(on.wan_bytes, off.wan_bytes);

  EXPECT_EQ(on.investments, off.investments);
  EXPECT_EQ(on.evictions, off.evictions);
  EXPECT_EQ(on.case_a, off.case_a);
  EXPECT_EQ(on.case_b, off.case_b);
  EXPECT_EQ(on.case_c, off.case_c);

  EXPECT_EQ(on.revenue.micros(), off.revenue.micros());
  EXPECT_EQ(on.profit.micros(), off.profit.micros());
  EXPECT_EQ(on.final_credit.micros(), off.final_credit.micros());

  EXPECT_EQ(on.operating_cost.cpu_dollars, off.operating_cost.cpu_dollars);
  EXPECT_EQ(on.operating_cost.network_dollars,
            off.operating_cost.network_dollars);
  EXPECT_EQ(on.operating_cost.disk_dollars,
            off.operating_cost.disk_dollars);
  EXPECT_EQ(on.operating_cost.io_dollars, off.operating_cost.io_dollars);

  EXPECT_EQ(on.response_seconds.count(), off.response_seconds.count());
  EXPECT_EQ(on.response_seconds.sum(), off.response_seconds.sum());
  EXPECT_EQ(on.response_seconds.mean(), off.response_seconds.mean());
  EXPECT_EQ(on.response_seconds.min(), off.response_seconds.min());
  EXPECT_EQ(on.response_seconds.max(), off.response_seconds.max());

  EXPECT_EQ(on.final_resident_bytes, off.final_resident_bytes);
  EXPECT_EQ(on.final_extra_nodes, off.final_extra_nodes);

  EXPECT_TRUE(ByteIdentical(on.cost_over_time.times(),
                            off.cost_over_time.times()));
  EXPECT_TRUE(ByteIdentical(on.cost_over_time.values(),
                            off.cost_over_time.values()));
  EXPECT_TRUE(ByteIdentical(on.credit_over_time.times(),
                            off.credit_over_time.times()));
  EXPECT_TRUE(ByteIdentical(on.credit_over_time.values(),
                            off.credit_over_time.values()));
}

/// Runs `config` twice — plan cache on, then off — and compares.
void RunPair(const Catalog& catalog,
             const std::vector<QueryTemplate>& templates,
             ExperimentConfig config) {
  const auto base_customize = config.customize_econ;
  auto with_cache = [base_customize](bool enable) {
    return [base_customize, enable](EconScheme::Config& econ) {
      if (base_customize) base_customize(econ);
      econ.enumerator.enable_plan_cache = enable;
    };
  };

  config.customize_econ = with_cache(true);
  const SimMetrics on = RunExperiment(catalog, templates, config);
  config.customize_econ = with_cache(false);
  const SimMetrics off = RunExperiment(catalog, templates, config);
  ExpectBitIdenticalMetrics(on, off);
}

class PlanCacheEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog(MakeTpchCatalog(100.0));
    templates_ = new std::vector<QueryTemplate>(MakeTpchTemplates());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
    delete templates_;
    templates_ = nullptr;
  }

  /// Active economy configuration (investments within the short run, as in
  /// paper_properties_test) so the cache actually goes through epoch
  /// invalidations, build latencies aside.
  static ExperimentConfig ActiveConfig(SchemeKind scheme, double interval) {
    ExperimentConfig config;
    config.scheme = scheme;
    config.workload.interarrival_seconds = interval;
    config.workload.seed = 29;
    config.seed = 30;
    config.sim.num_queries = 1'500;
    config.customize_econ = [](EconScheme::Config& econ) {
      econ.economy.regret_fraction_a = 0.001;
      econ.economy.conservative_provider = false;
      econ.economy.initial_credit = Money::FromDollars(20);
      econ.economy.model_build_latency = false;
    };
    return config;
  }

  static Catalog* catalog_;
  static std::vector<QueryTemplate>* templates_;
};

Catalog* PlanCacheEquivalenceTest::catalog_ = nullptr;
std::vector<QueryTemplate>* PlanCacheEquivalenceTest::templates_ = nullptr;

TEST_F(PlanCacheEquivalenceTest, Fig4GridBitIdentical) {
  for (double interval : PaperInterarrivals()) {
    for (SchemeKind scheme : PaperSchemes()) {
      if (scheme == SchemeKind::kBypassYield) continue;  // No enumerator.
      SCOPED_TRACE(std::string(SchemeKindToString(scheme)) + " @ " +
                   std::to_string(interval) + "s");
      RunPair(*catalog_, *templates_, ActiveConfig(scheme, interval));
    }
  }
}

TEST_F(PlanCacheEquivalenceTest, AblationVariantBitIdentical) {
  // One A2-style ablation point: short amortization horizon and a linear
  // budget shape stress different plan-pricing paths than the defaults.
  ExperimentConfig config = ActiveConfig(SchemeKind::kEconCheap, 10.0);
  const auto base_customize = config.customize_econ;
  config.customize_econ = [base_customize](EconScheme::Config& econ) {
    base_customize(econ);
    econ.economy.amortization_horizon = 2'000;
    econ.budget.shape = BudgetModelOptions::Shape::kLinear;
  };
  RunPair(*catalog_, *templates_, config);
}

TEST_F(PlanCacheEquivalenceTest, BuildLatencyVariantBitIdentical) {
  // With build latency modeled, structures activate between queries
  // (epoch moves inside ActivatePending rather than at investment time) —
  // a distinct invalidation schedule worth pinning.
  ExperimentConfig config = ActiveConfig(SchemeKind::kEconFast, 1.0);
  const auto base_customize = config.customize_econ;
  config.customize_econ = [base_customize](EconScheme::Config& econ) {
    base_customize(econ);
    econ.economy.model_build_latency = true;
  };
  RunPair(*catalog_, *templates_, config);
}

}  // namespace
}  // namespace cloudcache
