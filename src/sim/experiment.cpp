#include "src/sim/experiment.h"

#include <cmath>
#include <utility>

#include "src/sim/node_parallel.h"
#include "src/sim/sweep.h"
#include "src/structure/index_advisor.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace cloudcache {

WorkloadOptions TenantWorkloadOptions(const WorkloadOptions& base,
                                      const TenancyOptions& tenancy,
                                      uint32_t tenant) {
  CLOUDCACHE_CHECK_GE(tenancy.tenants, 1u);
  CLOUDCACHE_CHECK_LT(tenant, tenancy.tenants);
  WorkloadOptions options = base;
  options.tenant_id = tenant;
  if (tenant > 0) options.seed = MixSeed(base.seed, tenant);
  if (tenancy.rotate_template_mix) options.popularity_offset = tenant;

  // Zipf traffic shares: w_t = (1/(t+1)^s) / sum. The shares split the
  // base arrival rate, so the merged stream offers the same load as the
  // single stream it replaces.
  double normalizer = 0;
  for (uint32_t u = 0; u < tenancy.tenants; ++u) {
    normalizer += std::pow(static_cast<double>(u + 1),
                           -tenancy.traffic_skew);
  }
  const double share = std::pow(static_cast<double>(tenant + 1),
                                -tenancy.traffic_skew) /
                       normalizer;
  options.interarrival_seconds = base.interarrival_seconds / share;
  return options;
}

SimMetrics RunExperiment(const Catalog& catalog,
                         const std::vector<QueryTemplate>& templates,
                         const ExperimentConfig& config) {
  Result<std::vector<ResolvedTemplate>> resolved =
      ResolveTemplates(catalog, templates);
  CLOUDCACHE_CHECK(resolved.ok());

  const std::vector<StructureKey> indexes =
      RecommendIndexes(catalog, *resolved, config.index_candidates);

  const bool multi_tenant =
      config.tenancy.tenants > 1 || config.tenancy.force_event_path;
  const bool clustered = config.cluster.nodes > 1 ||
                         config.cluster.elastic ||
                         config.cluster.force_cluster_path;

  // Builds the scheme for one cache node. Ordinal 0 carries the
  // experiment's own seed — on the single-node path it IS the classic
  // scheme, which is what keeps `--nodes=1` bit-identical to the
  // pre-cluster baseline — while rented/extra nodes derive their seeds
  // from their never-reused ordinal (salted away from the tenant-stream
  // MixSeed discipline), so every node's budget-jitter streams are a pure
  // function of the configuration.
  const auto node_factory = [&catalog, &indexes, &config,
                             multi_tenant](uint32_t ordinal) {
    std::unique_ptr<Scheme> scheme;
    if (config.scheme == SchemeKind::kBypassYield) {
      BypassYieldScheme::Options options;
      if (config.customize_bypass) config.customize_bypass(options);
      scheme = std::make_unique<BypassYieldScheme>(&catalog, options);
    } else {
      EconScheme::Config econ_config;
      switch (config.scheme) {
        case SchemeKind::kEconCol:
          econ_config = EconScheme::EconColConfig();
          break;
        case SchemeKind::kEconFast:
          econ_config = EconScheme::EconFastConfig();
          break;
        default:
          econ_config = EconScheme::EconCheapConfig();
          break;
      }
      constexpr uint64_t kNodeSeedSalt = 0x636c757374657231ull;  // cluster
      econ_config.seed = ordinal == 0
                             ? config.seed
                             : MixSeed(config.seed, kNodeSeedSalt + ordinal);
      if (config.customize_econ) config.customize_econ(econ_config);
      // Tenancy is the experiment's to decide, not the ablation hook's:
      // the event-driven path provisions identities even for one tenant
      // (so its metrics slice carries regret attribution); the classic
      // path stays on the zero-overhead pre-tenancy configuration. The
      // fairness policies ride the same switch — they read tenant
      // attribution, so they only engage on the multi-tenant path (the
      // hook may still tune their ratios/slack/windows). So do the
      // per-tenant budget shapes, which need tenant identities.
      if (multi_tenant) {
        econ_config.tenants = config.tenancy.tenants;
        if (config.tenancy.fair_eviction) {
          econ_config.economy.tenant_weighted_eviction = true;
        }
        if (config.tenancy.admission) {
          econ_config.economy.admission.enabled = true;
        }
        econ_config.tenant_budgets = config.tenancy.tenant_budgets;
      }
      scheme = std::make_unique<EconScheme>(&catalog, &config.decision_prices,
                                            indexes, std::move(econ_config));
    }
    return scheme;
  };

  std::unique_ptr<Scheme> scheme;
  if (clustered) {
    scheme = std::make_unique<ClusterScheme>(
        &catalog, &config.decision_prices, config.cluster, node_factory);
  } else {
    scheme = node_factory(0);
  }
  SimulatorOptions sim_options = config.sim;
  sim_options.node_rent_multiplier = config.cluster.node_rent_multiplier;

  if (!multi_tenant) {
    WorkloadGenerator workload(&catalog, *resolved, config.workload);
    // The windowed parallel driver applies to clustered single-stream
    // runs when threads are requested; everything else stays on the
    // classic serial driver (the multi-tenant merge is a serial
    // discipline by construction).
    if (clustered && sim_options.parallel_threads > 0) {
      auto* cluster = static_cast<ClusterScheme*>(scheme.get());
      ParallelNodeSimulator simulator(&catalog, cluster, &workload,
                                      sim_options);
      return simulator.Run();
    }
    Simulator simulator(&catalog, scheme.get(), &workload, sim_options);
    return simulator.Run();
  }

  // Multi-tenant: one generator per stream, merged by the event-driven
  // simulator through the shared scheme.
  std::vector<std::unique_ptr<WorkloadGenerator>> generators;
  std::vector<WorkloadGenerator*> generator_ptrs;
  generators.reserve(config.tenancy.tenants);
  generator_ptrs.reserve(config.tenancy.tenants);
  for (uint32_t t = 0; t < config.tenancy.tenants; ++t) {
    generators.push_back(std::make_unique<WorkloadGenerator>(
        &catalog, *resolved,
        TenantWorkloadOptions(config.workload, config.tenancy, t)));
    generator_ptrs.push_back(generators.back().get());
  }
  Simulator simulator(&catalog, scheme.get(), std::move(generator_ptrs),
                      sim_options);
  return simulator.Run();
}

std::vector<SimMetrics> RunAllSchemes(
    const Catalog& catalog, const std::vector<QueryTemplate>& templates,
    ExperimentConfig config) {
  SweepSpec spec;
  spec.schemes = PaperSchemes();
  spec.interarrivals = {config.workload.interarrival_seconds};
  // The caller's seeds apply verbatim to every scheme: all four contenders
  // face the identical query stream, as in the paper's paired comparison.
  spec.seed_policy = SweepSpec::SeedPolicy::kFixed;
  spec.base = std::move(config);

  std::vector<SweepResult> sweep =
      RunSweep(catalog, templates, spec, /*n_threads=*/0);  // All cores.

  std::vector<SimMetrics> results;
  results.reserve(sweep.size());
  for (SweepResult& result : sweep) {
    results.push_back(std::move(result.metrics));
  }
  return results;
}

std::vector<double> PaperInterarrivals() { return {1.0, 10.0, 30.0, 60.0}; }

std::vector<SchemeKind> PaperSchemes() {
  return {SchemeKind::kBypassYield, SchemeKind::kEconCol,
          SchemeKind::kEconCheap, SchemeKind::kEconFast};
}

}  // namespace cloudcache
