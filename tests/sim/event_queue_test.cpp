#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

namespace cloudcache {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue queue;
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.Size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  queue.Push({3.0, SimEvent::Kind::kArrival, 3});
  queue.Push({1.0, SimEvent::Kind::kArrival, 1});
  queue.Push({2.0, SimEvent::Kind::kArrival, 2});
  EXPECT_EQ(queue.Pop().payload, 1u);
  EXPECT_EQ(queue.Pop().payload, 2u);
  EXPECT_EQ(queue.Pop().payload, 3u);
  EXPECT_TRUE(queue.Empty());
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue queue;
  for (uint64_t i = 0; i < 10; ++i) {
    queue.Push({5.0, SimEvent::Kind::kCustom, i});
  }
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(queue.Pop().payload, i);
  }
}

TEST(EventQueueTest, TopDoesNotRemove) {
  EventQueue queue;
  queue.Push({1.0, SimEvent::Kind::kMeterTick, 42});
  EXPECT_EQ(queue.Top().payload, 42u);
  EXPECT_EQ(queue.Size(), 1u);
  EXPECT_EQ(queue.Pop().payload, 42u);
}

TEST(EventQueueTest, InterleavedPushPop) {
  EventQueue queue;
  queue.Push({5.0, SimEvent::Kind::kArrival, 5});
  queue.Push({1.0, SimEvent::Kind::kArrival, 1});
  EXPECT_EQ(queue.Pop().payload, 1u);
  queue.Push({2.0, SimEvent::Kind::kArrival, 2});
  EXPECT_EQ(queue.Pop().payload, 2u);
  EXPECT_EQ(queue.Pop().payload, 5u);
}

TEST(EventQueueTest, KindsPreserved) {
  EventQueue queue;
  queue.Push({1.0, SimEvent::Kind::kMeterTick, 0});
  EXPECT_EQ(queue.Pop().kind, SimEvent::Kind::kMeterTick);
}

TEST(EventQueueTest, TiesBreakByTieBeforeInsertionOrder) {
  // Tenants 2, 1, 0 push arrivals for the same instant in reverse tenant
  // order; pops must come back in tenant order, not push order.
  EventQueue queue;
  for (uint32_t tenant : {2u, 1u, 0u}) {
    queue.Push({7.0, SimEvent::Kind::kArrival, tenant, tenant});
  }
  EXPECT_EQ(queue.Pop().tie, 0u);
  EXPECT_EQ(queue.Pop().tie, 1u);
  EXPECT_EQ(queue.Pop().tie, 2u);
}

TEST(EventQueueTest, EqualTiesStillBreakByInsertionOrder) {
  EventQueue queue;
  for (uint64_t i = 0; i < 8; ++i) {
    queue.Push({3.0, SimEvent::Kind::kCustom, i, /*tie=*/5});
  }
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(queue.Pop().payload, i);
  }
}

TEST(EventQueueTest, TimeStillDominatesTie) {
  EventQueue queue;
  queue.Push({2.0, SimEvent::Kind::kArrival, 0, /*tie=*/0});
  queue.Push({1.0, SimEvent::Kind::kArrival, 1, /*tie=*/9});
  EXPECT_EQ(queue.Pop().payload, 1u);  // Earlier time wins despite tie 9.
  EXPECT_EQ(queue.Pop().payload, 0u);
}

TEST(EventQueueTest, MergedTwoTenantStreamMatchesHandInterleavedReference) {
  // Replay the multi-tenant simulator's discipline — the queue holds one
  // event per tenant (its next arrival); each pop is followed by pushing
  // that tenant's subsequent arrival — over two fixed schedules chosen to
  // collide: tenant 0 arrives every 3s, tenant 1 every 2s, so they tie at
  // t=6, t=12, ... The popped order must equal a hand-built stable merge
  // of the union sorted by (time, tenant), no matter that the queue saw
  // the events in data-dependent push order.
  const double kStep[2] = {3.0, 2.0};
  const size_t kPerTenant = 40;

  std::vector<std::pair<double, uint32_t>> reference;
  for (uint32_t tenant = 0; tenant < 2; ++tenant) {
    for (size_t i = 0; i < kPerTenant; ++i) {
      reference.push_back(
          {static_cast<double>(i) * kStep[tenant], tenant});
    }
  }
  std::sort(reference.begin(), reference.end());

  EventQueue queue;
  size_t produced[2] = {0, 0};
  for (uint32_t tenant = 0; tenant < 2; ++tenant) {
    queue.Push({0.0, SimEvent::Kind::kArrival, tenant, tenant});
    produced[tenant] = 1;
  }
  std::vector<std::pair<double, uint32_t>> merged;
  while (merged.size() < reference.size()) {
    const SimEvent event = queue.Pop();
    const auto tenant = static_cast<uint32_t>(event.payload);
    merged.push_back({event.time, tenant});
    if (produced[tenant] < kPerTenant) {
      queue.Push({static_cast<double>(produced[tenant]) * kStep[tenant],
                  SimEvent::Kind::kArrival, tenant, tenant});
      ++produced[tenant];
    }
  }
  EXPECT_EQ(merged, reference);
  EXPECT_TRUE(queue.Empty());
}

}  // namespace
}  // namespace cloudcache
