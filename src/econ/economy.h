#pragma once

#include <cstdint>
#include <vector>

#include "src/cache/cache_state.h"
#include "src/cache/candidate_pool.h"
#include "src/cache/maintenance.h"
#include "src/cost/cost_model.h"
#include "src/econ/account.h"
#include "src/econ/admission.h"
#include "src/econ/amortizer.h"
#include "src/econ/budget.h"
#include "src/econ/regret.h"
#include "src/plan/enumerator.h"
#include "src/plan/plan.h"
#include "src/plan/skyline.h"
#include "src/query/query.h"
#include "src/util/money.h"

namespace cloudcache {

namespace obs {
class EventTracer;
}  // namespace obs

/// How the cloud picks among the affordable executable plans.
enum class PlanSelection {
  /// Section IV-C, cases B/C: minimize the cloud's gain
  /// B_Q(t_i) - B_PQ(t_i) — the altruistic default.
  kMinProfit,
  /// Section VII-A econ-cheap: "the plan with the least cost is chosen".
  kCheapest,
  /// Section VII-A econ-fast: "selects the query plan with the fastest
  /// response time".
  kFastest,
};

/// Which of the paper's three budget relationships a query fell into
/// (Fig. 2).
enum class BudgetCase { kCaseA, kCaseB, kCaseC };

const char* BudgetCaseToString(BudgetCase c);
const char* PlanSelectionToString(PlanSelection s);

/// Policy knobs of the economy.
struct EconomyOptions {
  /// a of Eq. 3: regret must reach this fraction of CR (after rounding)
  /// before the cloud invests; 0 < a < 1.
  double regret_fraction_a = 0.10;
  /// n of Eq. 7: queries a build cost is amortized over. Calibrated to the
  /// paper's million-SDSS-query workload: a column transfer is worth
  /// roughly 5,000-20,000 result shipments, so the amortized share only
  /// undercuts the back-end price at horizons of this order (the paper
  /// defers choosing n to future work; ablation A2 sweeps it).
  int64_t amortization_horizon = 50'000;
  /// "The cache provider is conservative and builds structures only when
  /// her profit exceeds the cost of building them" (Section VII-A): an
  /// investment requires the accumulated credit CR to fully cover the
  /// build cost (the account refuses overdrafts regardless; this guard
  /// refuses to spend credit the cloud does not have *now*).
  bool conservative_provider = true;
  /// A structure fails (is evicted) when its unpaid maintenance exceeds
  /// this fraction of its build cost (footnote 3's "structure failure").
  double maintenance_failure_fraction = 0.25;
  /// At most this many seconds of rent backlog is surcharged onto (and
  /// collected from) a single selected plan; see
  /// MaintenanceLedger::OwedCapped for why unbounded recovery would
  /// poison idle structures forever. Calibrated near the workload's
  /// inter-use gaps: large enough to recover steady-state rent, small
  /// enough that one surcharge never exceeds a query's cache savings.
  double maintenance_recovery_cap_seconds = 60.0;
  /// Capacity of the LRU candidate pool (Section IV-B).
  size_t candidate_pool_capacity = 512;
  /// Selection criterion among affordable executable plans.
  PlanSelection selection = PlanSelection::kCheapest;
  /// Seed credit so the very first investments are possible.
  Money initial_credit = Money::FromDollars(10.0);
  /// If true, a structure becomes usable only after its build latency
  /// (WAN transfer / sort / boot) has elapsed; if false, builds are
  /// instantaneous (the paper's economy does not model build latency).
  bool model_build_latency = true;
  /// Upper bound on extra CPU nodes the cloud will ever keep.
  uint32_t max_extra_nodes = 8;
  /// A structure that fails maintenance just proved it cannot repay its
  /// rent under the current workload; forfeiting its accumulated regret
  /// prevents an immediate, equally doomed rebuild. Disable to study the
  /// churn the paper's letter would produce.
  bool clear_regret_on_failure = true;
  /// If false, a query whose budget covers no plan (case A, user declines)
  /// is rejected instead of falling back to the cheapest executable plan.
  /// The paper's experiments have the user "accept query execution in the
  /// back-end", i.e. true.
  bool user_accepts_above_budget = true;

  // --- Tenant-economics policies (all inert by default, and inert
  // whenever tenant attribution is off, so the paper's single-stream
  // behavior is untouched).

  /// Weighs eviction by per-tenant regret attribution: structures whose
  /// backing regret spread broadly over tenants get failure-threshold
  /// slack (they outlive idle spells a single noisy tenant's structure
  /// would not), and candidate-pool aging prefers to forfeit the
  /// candidate whose regret is most concentrated in one tenant.
  bool tenant_weighted_eviction = false;
  /// Maximum widening of the maintenance-failure threshold: the
  /// threshold is scaled by 1 + slack * breadth, where breadth in [0, 1]
  /// is how evenly the regret that triggered the build spread over
  /// tenants (NormalizedBreadth). 0 disables the widening while keeping
  /// the pool-aging half of the policy.
  double eviction_breadth_slack = 1.0;
  /// How many of the candidate pool's coldest entries the tenant-aware
  /// aging policy considers when choosing a forfeiture victim.
  size_t eviction_aging_window = 8;
  /// Per-tenant admission control (throttles tenants whose accrued
  /// regret the economy cannot monetize); see AdmissionController.
  AdmissionOptions admission;
};

/// Everything that happened while serving (or declining) one query.
struct QueryOutcome {
  bool served = false;
  BudgetCase budget_case = BudgetCase::kCaseB;
  /// The executed plan (meaningful only if served).
  QueryPlan chosen;
  /// What the user paid: B_Q(t_i) in cases B/C, the plan price in case A.
  Money payment;
  /// payment - price of the chosen plan (non-negative).
  Money profit;
  /// Portions of the payment that repaid maintenance and amortized build
  /// cost of the structures the chosen plan employed.
  Money maintenance_collected;
  Money amortization_collected;
  /// Structures built, and structures evicted for maintenance failure,
  /// while handling this query.
  std::vector<StructureId> investments;
  std::vector<StructureId> evictions;
  /// Plan-space statistics (after skyline filtering).
  uint32_t num_plans = 0;
  uint32_t num_existing = 0;
  /// True when the serving tenant was under admission throttling while
  /// this query ran (the query was still served and billed normally; only
  /// its regret went unbooked).
  bool throttled = false;
};

/// The self-tuned economy of Section IV: prices plans, resolves the
/// budget-vs-cost cases, accumulates regret, and invests the cloud's
/// credit into new cache structures.
///
/// One engine instance owns the cache state, the accounts, and the ledgers
/// of a single cloud; drive it by calling OnQuery for every arriving query
/// in non-decreasing time order.
///
/// Invariant notes. (1) Epoch discipline: every residency mutation the
/// engine performs (investment activation, failure eviction, ForceBuild)
/// goes through CacheState::Add/Remove and therefore bumps the residency
/// epoch the plan-skeleton cache keys on — any new mutation path must do
/// the same. (2) Tenant-stream purity: with attribution on, every Eq. 1/2
/// contribution is booked to exactly one tenant ledger (the serving
/// tenant's), every global forget is mirrored into all tenant ledgers, and
/// admission forfeits subtract a tenant's exact entries from the global
/// ledger — so the tenant ledgers partition the global one at all times.
/// (3) Policy gating: tenant-weighted eviction and admission read tenant
/// attribution; with the options off (the defaults) or attribution off,
/// every decision is bit-identical to the pre-tenancy engine.
class EconomyEngine {
 public:
  EconomyEngine(const Catalog* catalog, StructureRegistry* registry,
                const CostModel* decision_model,
                EnumeratorOptions enumerator_options,
                EconomyOptions options);

  /// Registers the index advisor's candidate pool.
  void SetIndexCandidates(const std::vector<StructureKey>& candidates);

  /// Enables per-tenant regret attribution for `n` tenants (0 disables).
  ///
  /// The global ledger keeps driving every pricing and investment decision
  /// exactly as before — tenants share one cache, so Eq. 3 arbitrates
  /// their combined regret — but each Eq. 1/2 contribution is additionally
  /// booked to the ledger of the tenant whose query produced it, and every
  /// structure whose global regret is forgotten (invested in, failed, or
  /// aged out of the candidate pool) is forgotten in all tenant ledgers
  /// too. By construction the tenant ledgers partition the global one.
  void SetTenantCount(size_t n);
  size_t tenant_count() const { return tenant_regret_.size(); }
  /// Tenant `t`'s regret ledger; requires t < tenant_count().
  const RegretLedger& tenant_regret(size_t t) const;
  /// Sum of tenant `t`'s ledger (zero when attribution is off or `t` is
  /// out of range — callers can ask unconditionally).
  Money TenantRegretTotal(size_t t) const;

  /// The admission controller (inert unless options.admission.enabled and
  /// tenants are provisioned).
  const AdmissionController& admission() const { return admission_; }

  /// Attaches a structured economic event tracer (nullptr detaches).
  /// `node` stamps every record this engine emits — the node ordinal in a
  /// cluster, 0 otherwise. Tracing is observability-only: it reads
  /// decisions after they are made and never feeds back, so traced runs
  /// stay bit-identical to untraced ones.
  void SetEventTracer(obs::EventTracer* tracer, uint32_t node) {
    tracer_ = tracer;
    trace_node_ = node;
  }

  /// Serves one query with the user's budget function attached.
  QueryOutcome OnQuery(const Query& query, const BudgetFunction& budget,
                       SimTime now);

  /// Advances time-dependent state (build completions, maintenance
  /// failures) without serving a query.
  void OnTick(SimTime now);

  const CacheState& cache() const { return cache_; }
  CacheState& cache() { return cache_; }
  const CloudAccount& account() const { return account_; }
  CloudAccount& mutable_account() { return account_; }
  const RegretLedger& regret() const { return regret_; }
  const Amortizer& amortizer() const { return amortizer_; }
  const EconomyOptions& options() const { return options_; }
  const PlanEnumerator& enumerator() const { return enumerator_; }
  const CostModel& decision_model() const { return *model_; }

  /// Structures currently under construction (build latency modeling).
  size_t pending_builds() const { return pending_.size(); }

  /// Directly builds a structure, bypassing the investment policy (used
  /// by tests and by warm-start experiment setups). Charges the account.
  Status ForceBuild(const StructureKey& key, SimTime now);

  /// Checkpoint support. Serializes every piece of run state the engine
  /// owns: cache residency, candidate pool, maintenance clocks, account,
  /// the global and per-tenant regret ledgers, admission state, the
  /// amortizer, in-flight pending builds (in exact vector order — the
  /// activation loop's swap-remove makes order part of the state), and the
  /// tick-eviction backlog. Pricing memos and the plan-skeleton cache are
  /// pure functions of this state and rebuild lazily. RestoreState must
  /// run on an engine freshly constructed from the identical configuration
  /// (same catalog, candidates, tenant count, and policy options).
  void SaveState(persist::Encoder* enc) const;
  Status RestoreState(persist::Decoder* dec);

 private:
  struct PendingBuild {
    SimTime ready_at;
    StructureId id;
  };

  /// Moves finished pending builds into the cache.
  void ActivatePending(SimTime now);
  /// Computes carried charges (Ca + owed maintenance) for each plan.
  void PriceCarriedCharges(PlanSet* set, SimTime now) const;
  /// True if the plan is affordable under `budget`.
  bool Affordable(const QueryPlan& plan, const BudgetFunction& budget) const;
  /// Selects among `candidates` (indices into plans) per the policy.
  size_t SelectPlan(const std::vector<QueryPlan>& plans,
                    const std::vector<size_t>& candidates,
                    const BudgetFunction& budget) const;
  /// Regret accounting for the rejected hypothetical plans (Eq. 1/2),
  /// over the skyline survivors (`skyline` holds indices into `plans`).
  void AccumulateRegret(const std::vector<QueryPlan>& plans,
                        const std::vector<size_t>& skyline,
                        size_t chosen_index, BudgetCase budget_case,
                        const BudgetFunction& budget, SimTime now);
  /// Checks Eq. 3 over all candidates and builds what qualifies.
  void MaybeInvest(SimTime now, QueryOutcome* outcome);
  /// Evicts structures whose unpaid maintenance exceeds the failure
  /// threshold.
  void EvictFailedStructures(SimTime now, QueryOutcome* outcome);
  /// Build-cost of `id` given current column residency.
  Money BuildCostNow(StructureId id) const;
  /// BuildCostNow memoized under the residency epoch: column residency —
  /// the only input that varies — moves exactly with CacheState::epoch, so
  /// within an epoch the memo returns the same bits as a fresh
  /// computation. The invest fast path and the failure scan hit this every
  /// query; index build costs (Eq. 14's synthetic sort query) are the
  /// expensive case it elides.
  Money MemoBuildCostNow(StructureId id) const;
  /// Clears `id` from the global ledger and every tenant ledger.
  void ClearRegretEverywhere(StructureId id);
  /// How evenly `id`'s accrued regret spreads over the tenant ledgers,
  /// in [0, 1] (NormalizedBreadth over the per-tenant shares). 0 when
  /// attribution is off.
  double BackingBreadth(StructureId id) const;
  /// Removes tenant `t`'s standing regret from the global ledger and
  /// clears the tenant's ledger (admission throttling: the economy stops
  /// investing on the tenant's behalf).
  void ForfeitTenantRegret(uint32_t tenant);
  /// Executes `plan` bookkeeping: payments, touches, maintenance shares.
  void SettleExecution(const Query& query, const QueryPlan& plan,
                       Money payment, SimTime now, QueryOutcome* outcome);

  const Catalog* catalog_;
  StructureRegistry* registry_;
  const CostModel* model_;
  EconomyOptions options_;
  PlanEnumerator enumerator_;
  CacheState cache_;
  CandidatePool pool_;
  MaintenanceLedger maintenance_;
  CloudAccount account_;
  RegretLedger regret_;
  /// Per-tenant attribution ledgers (empty unless SetTenantCount enabled
  /// them); decisions read only the global ledger above.
  std::vector<RegretLedger> tenant_regret_;
  /// Ledger of the tenant whose query is currently being served (null
  /// when attribution is off) — set at the top of OnQuery so
  /// AccumulateRegret books contributions without re-deriving the tenant.
  RegretLedger* active_tenant_regret_ = nullptr;
  /// Admission control (decisions); the engine enforces them.
  AdmissionController admission_;
  /// Structured event trace (null when off) plus the node ordinal and the
  /// per-query context stamped onto every record. OnQuery refreshes the
  /// context at entry; OnTick-path events reuse the last query's id (the
  /// trace schema documents tick events as "between queries").
  obs::EventTracer* tracer_ = nullptr;
  uint32_t trace_node_ = 0;
  uint64_t trace_query_ = 0;
  uint32_t trace_tenant_ = 0;
  /// Tenant id of the query currently being served (meaningful only when
  /// attribution is on) and whether its regret is being suppressed.
  uint32_t active_tenant_ = 0;
  bool suppress_regret_ = false;
  /// Reused per-tenant share buffer for BackingBreadth.
  mutable std::vector<double> breadth_scratch_;
  Amortizer amortizer_;
  std::vector<PendingBuild> pending_;
  std::vector<bool> pending_flag_;  // Indexed by StructureId.
  /// Failure evictions that happened in OnTick (no outcome to report
  /// through); drained into the next OnQuery's outcome so metrics see
  /// every eviction.
  std::vector<StructureId> tick_evictions_;
  /// Per-query scratch, reused across OnQuery calls so the steady-state
  /// decision loop allocates nothing: the skyline survivor indices, the
  /// skyline's key buffers, and the executable / affordable-executable
  /// index lists. All of them index into the enumerator's shared
  /// per-template plan set — no plan is ever copied on the decision path
  /// (only the chosen plan is copied once, into the outcome).
  std::vector<size_t> skyline_indices_;
  SkylineScratch skyline_scratch_;
  std::vector<size_t> existing_scratch_;
  std::vector<size_t> affordable_existing_scratch_;
  /// PriceCarriedCharges memos, indexed by StructureId (see the .cpp).
  /// charge_* carries the per-call resident/hypothetical charge under a
  /// per-call tick; hypo_* persists a hypothetical structure's advertised
  /// build share across queries under the residency epoch.
  mutable uint64_t charge_tick_ = 0;
  mutable std::vector<uint64_t> charge_stamp_;
  mutable std::vector<Money> charge_value_;
  mutable std::vector<uint64_t> hypo_epoch_stamp_;
  mutable std::vector<Money> hypo_share_;
  /// MemoBuildCostNow's epoch-stamped cache, indexed by StructureId.
  mutable std::vector<uint64_t> build_cost_stamp_;
  mutable std::vector<Money> build_cost_value_;
};

}  // namespace cloudcache
