#pragma once

#include <cstddef>
#include <vector>

#include "src/plan/plan.h"

namespace cloudcache {

/// Pareto skyline over (execution time, price), per footnote 2 of the
/// paper: "PQ holds only the skyline query plans (w.r.t. execution time and
/// overall cost); i.e. if there are two plans with the same execution time,
/// only the cheapest one is encompassed."
///
/// A plan is dominated if another plan is no slower AND no more expensive
/// (and strictly better on at least one axis). Ties on both axes keep the
/// first plan (stable). Returns the surviving indices in ascending-time
/// order.
std::vector<size_t> SkylineIndices(const std::vector<QueryPlan>& plans);

/// Reusable buffers for SkylineFilterInto; hold one per engine so the
/// per-query filter allocates nothing in steady state. `spare_slots`
/// parks surplus output plans when the survivor count shrinks, preserving
/// their inner-vector capacity for the next query.
struct SkylineScratch {
  std::vector<size_t> partition;
  std::vector<QueryPlan> spare_slots;
};

/// Applies the skyline to each partition of `in` separately — existing and
/// possible plans are skylined independently, because PQexist must retain
/// an executable frontier even when hypothetical plans dominate it — and
/// writes the survivors into `out` (existing first, each partition in
/// ascending-time order). `out`'s plan slots and inner vectors are
/// recycled; `in` and `out` must be distinct objects.
void SkylineFilterInto(const PlanSet& in, PlanSet* out,
                       SkylineScratch* scratch);

/// Convenience value-returning form of SkylineFilterInto.
PlanSet SkylineFilter(PlanSet set);

}  // namespace cloudcache
