#include "src/plan/enumerator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/testing/fixtures.h"

namespace cloudcache {
namespace {

class EnumeratorTest : public ::testing::Test {
 protected:
  EnumeratorTest()
      : catalog_(testing::MakeTinyCatalog()),
        prices_(testing::MakeRoundPrices()),
        model_(&catalog_, &prices_),
        registry_(&catalog_),
        cache_(&registry_) {}

  PlanEnumerator MakeEnumerator(EnumeratorOptions options = {}) {
    PlanEnumerator enumerator(&model_, &registry_, options);
    const ColumnId date = *catalog_.FindColumn("fact.f_date");
    const ColumnId value = *catalog_.FindColumn("fact.f_value");
    const ColumnId key = *catalog_.FindColumn("fact.f_key");
    enumerator.SetIndexCandidates({
        IndexKey(catalog_, {date}),
        IndexKey(catalog_, {date, value}),
        IndexKey(catalog_, {date, value, key}),  // Covering for the query.
        IndexKey(catalog_, {key}),               // Leading col not a pred.
    });
    return enumerator;
  }

  /// Makes all accessed columns of the tiny query resident.
  void CacheQueryColumns(const Query& q) {
    for (ColumnId col : q.AccessedColumns()) {
      CLOUDCACHE_CHECK(
          cache_.Add(registry_.Intern(ColumnKey(catalog_, col)), 0).ok());
    }
  }

  Catalog catalog_;
  PriceList prices_;
  CostModel model_;
  StructureRegistry registry_;
  CacheState cache_;
};

TEST_F(EnumeratorTest, BackendPlanAlwaysPresent) {
  PlanEnumerator enumerator = MakeEnumerator();
  const Query q = testing::MakeTinyQuery(catalog_);
  const PlanSet set = enumerator.Enumerate(q, cache_);
  size_t backend_plans = 0;
  for (const QueryPlan& plan : set.plans) {
    if (plan.spec.access == PlanSpec::Access::kBackend) {
      ++backend_plans;
      EXPECT_TRUE(plan.IsExisting());
      EXPECT_TRUE(plan.structures.empty());
    }
  }
  EXPECT_EQ(backend_plans, 1u);
}

TEST_F(EnumeratorTest, ColdCacheMakesCachePlansHypothetical) {
  PlanEnumerator enumerator = MakeEnumerator();
  const Query q = testing::MakeTinyQuery(catalog_);
  const PlanSet set = enumerator.Enumerate(q, cache_);
  for (const QueryPlan& plan : set.plans) {
    if (plan.spec.access != PlanSpec::Access::kBackend) {
      EXPECT_FALSE(plan.IsExisting());
    }
  }
  EXPECT_EQ(set.ExistingIndices().size(), 1u);
}

TEST_F(EnumeratorTest, WarmCacheMakesScanExecutable) {
  PlanEnumerator enumerator = MakeEnumerator();
  const Query q = testing::MakeTinyQuery(catalog_);
  CacheQueryColumns(q);
  const PlanSet set = enumerator.Enumerate(q, cache_);
  bool found = false;
  for (const QueryPlan& plan : set.plans) {
    if (plan.spec.access == PlanSpec::Access::kCacheScan &&
        plan.spec.cpu_nodes == 1) {
      EXPECT_TRUE(plan.IsExisting());
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(EnumeratorTest, ScanUsesOneStructurePerAccessedColumn) {
  PlanEnumerator enumerator = MakeEnumerator();
  const Query q = testing::MakeTinyQuery(catalog_);
  const PlanSet set = enumerator.Enumerate(q, cache_);
  for (const QueryPlan& plan : set.plans) {
    if (plan.spec.access == PlanSpec::Access::kCacheScan &&
        plan.spec.cpu_nodes == 1) {
      EXPECT_EQ(plan.structures.size(), q.AccessedColumns().size());
    }
  }
}

TEST_F(EnumeratorTest, IndexAppliesOnlyWithLeadingPredicate) {
  PlanEnumerator enumerator = MakeEnumerator();
  const Query q = testing::MakeTinyQuery(catalog_);
  const PlanSet set = enumerator.Enumerate(q, cache_);
  for (const QueryPlan& plan : set.plans) {
    if (plan.spec.access == PlanSpec::Access::kCacheIndex) {
      EXPECT_FALSE(plan.spec.covered_predicates.empty());
      // The f_key-leading index must never appear: f_key carries no
      // predicate.
      for (StructureId id : plan.structures) {
        const StructureKey& key = registry_.key(id);
        if (key.type == StructureType::kIndex) {
          EXPECT_NE(key.columns.front(),
                    *catalog_.FindColumn("fact.f_key"));
        }
      }
    }
  }
}

TEST_F(EnumeratorTest, CoveringIndexDetected) {
  PlanEnumerator enumerator = MakeEnumerator();
  const Query q = testing::MakeTinyQuery(catalog_);
  const PlanSet set = enumerator.Enumerate(q, cache_);
  bool saw_covering = false;
  for (const QueryPlan& plan : set.plans) {
    if (plan.spec.access == PlanSpec::Access::kCacheIndex &&
        plan.spec.covering) {
      saw_covering = true;
      // A covering plan needs only the index (plus any cpu nodes).
      for (StructureId id : plan.structures) {
        EXPECT_NE(registry_.key(id).type, StructureType::kColumn);
      }
    }
  }
  EXPECT_TRUE(saw_covering);
}

TEST_F(EnumeratorTest, NonCoveringIndexPullsBaseColumns) {
  PlanEnumerator enumerator = MakeEnumerator();
  const Query q = testing::MakeTinyQuery(catalog_);
  const PlanSet set = enumerator.Enumerate(q, cache_);
  for (const QueryPlan& plan : set.plans) {
    if (plan.spec.access == PlanSpec::Access::kCacheIndex &&
        !plan.spec.covering && plan.spec.cpu_nodes == 1) {
      size_t columns = 0;
      for (StructureId id : plan.structures) {
        columns += registry_.key(id).type == StructureType::kColumn;
      }
      EXPECT_GT(columns, 0u);
    }
  }
}

TEST_F(EnumeratorTest, NodeVariantsEmitted) {
  EnumeratorOptions options;
  options.node_options = {1, 2, 4};
  PlanEnumerator enumerator = MakeEnumerator(options);
  const Query q = testing::MakeTinyQuery(catalog_);
  const PlanSet set = enumerator.Enumerate(q, cache_);
  std::vector<uint32_t> scan_nodes;
  for (const QueryPlan& plan : set.plans) {
    if (plan.spec.access == PlanSpec::Access::kCacheScan) {
      scan_nodes.push_back(plan.spec.cpu_nodes);
    }
  }
  std::sort(scan_nodes.begin(), scan_nodes.end());
  EXPECT_EQ(scan_nodes, (std::vector<uint32_t>{1, 2, 4}));
}

TEST_F(EnumeratorTest, MultiNodePlansRequireCpuStructures) {
  PlanEnumerator enumerator = MakeEnumerator();
  const Query q = testing::MakeTinyQuery(catalog_);
  const PlanSet set = enumerator.Enumerate(q, cache_);
  for (const QueryPlan& plan : set.plans) {
    if (plan.spec.cpu_nodes > 1) {
      size_t cpu_structures = 0;
      for (StructureId id : plan.structures) {
        cpu_structures += registry_.key(id).type == StructureType::kCpuNode;
      }
      EXPECT_EQ(cpu_structures, plan.spec.cpu_nodes - 1u);
    }
  }
}

TEST_F(EnumeratorTest, NoIndexesWhenDisabled) {
  EnumeratorOptions options;
  options.allow_indexes = false;
  PlanEnumerator enumerator = MakeEnumerator(options);
  const Query q = testing::MakeTinyQuery(catalog_);
  for (const QueryPlan& plan : enumerator.Enumerate(q, cache_).plans) {
    EXPECT_NE(plan.spec.access, PlanSpec::Access::kCacheIndex);
  }
}

TEST_F(EnumeratorTest, NoParallelWhenDisabled) {
  EnumeratorOptions options;
  options.allow_parallel = false;
  PlanEnumerator enumerator = MakeEnumerator(options);
  const Query q = testing::MakeTinyQuery(catalog_);
  for (const QueryPlan& plan : enumerator.Enumerate(q, cache_).plans) {
    EXPECT_EQ(plan.spec.cpu_nodes, 1u);
  }
}

TEST_F(EnumeratorTest, NoHypotheticalsWhenDisabled) {
  EnumeratorOptions options;
  options.include_hypothetical = false;
  PlanEnumerator enumerator = MakeEnumerator(options);
  const Query q = testing::MakeTinyQuery(catalog_);
  const PlanSet set = enumerator.Enumerate(q, cache_);
  for (const QueryPlan& plan : set.plans) {
    EXPECT_TRUE(plan.IsExisting());
  }
  EXPECT_EQ(set.plans.size(), 1u);  // Only the backend plan on cold cache.
}

TEST_F(EnumeratorTest, MissingListsExactlyNonResidentStructures) {
  PlanEnumerator enumerator = MakeEnumerator();
  const Query q = testing::MakeTinyQuery(catalog_);
  // Cache only one of the accessed columns.
  const ColumnId date = *catalog_.FindColumn("fact.f_date");
  CLOUDCACHE_CHECK(
      cache_.Add(registry_.Intern(ColumnKey(catalog_, date)), 0).ok());
  const PlanSet set = enumerator.Enumerate(q, cache_);
  for (const QueryPlan& plan : set.plans) {
    for (StructureId id : plan.missing) {
      EXPECT_FALSE(cache_.IsResident(id));
    }
    for (StructureId id : plan.structures) {
      const bool in_missing =
          std::find(plan.missing.begin(), plan.missing.end(), id) !=
          plan.missing.end();
      EXPECT_EQ(in_missing, !cache_.IsResident(id));
    }
  }
}

TEST_F(EnumeratorTest, IndexesOnOtherTablesIgnored) {
  PlanEnumerator enumerator(&model_, &registry_, {});
  const ColumnId d_attr = *catalog_.FindColumn("dim.d_attr");
  enumerator.SetIndexCandidates({IndexKey(catalog_, {d_attr})});
  const Query q = testing::MakeTinyQuery(catalog_);  // On fact.
  for (const QueryPlan& plan : enumerator.Enumerate(q, cache_).plans) {
    EXPECT_NE(plan.spec.access, PlanSpec::Access::kCacheIndex);
  }
}

// --- Plan-skeleton cache -------------------------------------------------

/// Full structural + priced equality of two plan sets, element by element.
void ExpectSamePlanSet(const PlanSet& a, const PlanSet& b) {
  ASSERT_EQ(a.plans.size(), b.plans.size());
  for (size_t i = 0; i < a.plans.size(); ++i) {
    const QueryPlan& pa = a.plans[i];
    const QueryPlan& pb = b.plans[i];
    EXPECT_EQ(pa.spec.access, pb.spec.access) << "plan " << i;
    EXPECT_EQ(pa.spec.covered_predicates, pb.spec.covered_predicates);
    EXPECT_EQ(pa.spec.covering, pb.spec.covering);
    EXPECT_EQ(pa.spec.cpu_nodes, pb.spec.cpu_nodes);
    EXPECT_EQ(pa.structures, pb.structures) << "plan " << i;
    EXPECT_EQ(pa.missing, pb.missing) << "plan " << i;
    EXPECT_EQ(pa.execution.cost.micros(), pb.execution.cost.micros());
    EXPECT_EQ(pa.execution.time_seconds, pb.execution.time_seconds);
    EXPECT_EQ(pa.carried_charges.micros(), pb.carried_charges.micros());
  }
}

TEST_F(EnumeratorTest, PlanCacheHitServesIdenticalPlans) {
  PlanEnumerator cached = MakeEnumerator();
  EnumeratorOptions off;
  off.enable_plan_cache = false;
  PlanEnumerator reference = MakeEnumerator(off);

  // Two instances of the same template with different selectivities.
  const Query q1 = testing::MakeTinyQuery(catalog_, 0.01, 1);
  const Query q2 = testing::MakeTinyQuery(catalog_, 0.2, 2);
  const PlanSet first = cached.Enumerate(q1, cache_);
  EXPECT_EQ(cached.plan_cache_misses(), 1u);
  const PlanSet second = cached.Enumerate(q2, cache_);
  EXPECT_EQ(cached.plan_cache_hits(), 1u);
  EXPECT_EQ(cached.plan_cache_size(), 1u);

  ExpectSamePlanSet(first, reference.Enumerate(q1, cache_));
  ExpectSamePlanSet(second, reference.Enumerate(q2, cache_));
  EXPECT_EQ(reference.plan_cache_hits(), 0u);
  EXPECT_EQ(reference.plan_cache_size(), 0u);
}

TEST_F(EnumeratorTest, PlanCacheInvalidatedByResidencyEpoch) {
  PlanEnumerator cached = MakeEnumerator();
  EnumeratorOptions off;
  off.enable_plan_cache = false;
  PlanEnumerator reference = MakeEnumerator(off);

  const Query q = testing::MakeTinyQuery(catalog_);
  (void)cached.Enumerate(q, cache_);
  // Residency moves: cached skeletons must be re-derived, and the fresh
  // missing-sets must reflect the new epoch.
  const ColumnId date = *catalog_.FindColumn("fact.f_date");
  CLOUDCACHE_CHECK(
      cache_.Add(registry_.Intern(ColumnKey(catalog_, date)), 0).ok());
  const PlanSet after = cached.Enumerate(q, cache_);
  EXPECT_EQ(cached.plan_cache_misses(), 2u);
  EXPECT_EQ(cached.plan_cache_hits(), 0u);
  ExpectSamePlanSet(after, reference.Enumerate(q, cache_));

  // And removal invalidates again.
  CLOUDCACHE_CHECK(
      cache_.Remove(registry_.Intern(ColumnKey(catalog_, date))).ok());
  ExpectSamePlanSet(cached.Enumerate(q, cache_),
                    reference.Enumerate(q, cache_));
  EXPECT_EQ(cached.plan_cache_misses(), 3u);
}

TEST_F(EnumeratorTest, PlanCacheInvalidatedByCandidateGeneration) {
  PlanEnumerator cached = MakeEnumerator();
  const Query q = testing::MakeTinyQuery(catalog_);
  (void)cached.Enumerate(q, cache_);
  const uint64_t generation = cached.candidate_generation();

  // Re-registering candidates bumps the generation and re-derives.
  const ColumnId date = *catalog_.FindColumn("fact.f_date");
  cached.SetIndexCandidates({IndexKey(catalog_, {date})});
  EXPECT_EQ(cached.candidate_generation(), generation + 1);
  const PlanSet after = cached.Enumerate(q, cache_);
  EXPECT_EQ(cached.plan_cache_misses(), 2u);

  size_t index_plans = 0;
  for (const QueryPlan& plan : after.plans) {
    index_plans += plan.spec.access == PlanSpec::Access::kCacheIndex;
  }
  // Only the one remaining applicable candidate, at each node count.
  EXPECT_EQ(index_plans, cached.options().node_options.size());
}

TEST_F(EnumeratorTest, DistinctCacheStatesWithEqualEpochsDoNotCollide) {
  PlanEnumerator cached = MakeEnumerator();
  EnumeratorOptions off;
  off.enable_plan_cache = false;
  PlanEnumerator reference = MakeEnumerator(off);
  const Query q = testing::MakeTinyQuery(catalog_);

  // Two caches at the same epoch with different residents: alternating
  // them must miss (entries are keyed on cache identity), never serve the
  // other cache's missing-sets.
  CacheState other(&registry_);
  const ColumnId date = *catalog_.FindColumn("fact.f_date");
  const ColumnId value = *catalog_.FindColumn("fact.f_value");
  CLOUDCACHE_CHECK(
      cache_.Add(registry_.Intern(ColumnKey(catalog_, date)), 0).ok());
  CLOUDCACHE_CHECK(
      other.Add(registry_.Intern(ColumnKey(catalog_, value)), 0).ok());
  ASSERT_EQ(cache_.epoch(), other.epoch());

  (void)cached.Enumerate(q, cache_);
  const PlanSet from_other = cached.Enumerate(q, other);
  EXPECT_EQ(cached.plan_cache_misses(), 2u);
  EXPECT_EQ(cached.plan_cache_hits(), 0u);
  ExpectSamePlanSet(from_other, reference.Enumerate(q, other));
}

TEST_F(EnumeratorTest, AdHocQueriesBypassPlanCache) {
  PlanEnumerator cached = MakeEnumerator();
  Query q = testing::MakeTinyQuery(catalog_);
  q.template_id = -1;
  (void)cached.Enumerate(q, cache_);
  (void)cached.Enumerate(q, cache_);
  EXPECT_EQ(cached.plan_cache_size(), 0u);
  EXPECT_EQ(cached.plan_cache_hits(), 0u);
  EXPECT_EQ(cached.plan_cache_misses(), 0u);
}

TEST_F(EnumeratorTest, PlanCacheKillSwitchDisablesCaching) {
  EnumeratorOptions options;
  options.enable_plan_cache = false;
  PlanEnumerator enumerator = MakeEnumerator(options);
  const Query q = testing::MakeTinyQuery(catalog_);
  (void)enumerator.Enumerate(q, cache_);
  (void)enumerator.Enumerate(q, cache_);
  EXPECT_EQ(enumerator.plan_cache_size(), 0u);
  EXPECT_EQ(enumerator.plan_cache_hits(), 0u);
}

TEST_F(EnumeratorTest, SignatureMismatchFallsBackToRederivation) {
  PlanEnumerator cached = MakeEnumerator();
  EnumeratorOptions off;
  off.enable_plan_cache = false;
  PlanEnumerator reference = MakeEnumerator(off);

  const Query q1 = testing::MakeTinyQuery(catalog_);
  (void)cached.Enumerate(q1, cache_);

  // Same template id, different shape (trace replay could do this): the
  // signature check must reject the cached skeletons.
  Query q2 = testing::MakeTinyQuery(catalog_);
  q2.output_columns = {*catalog_.FindColumn("fact.f_key")};
  DeriveResultShape(catalog_, 1.0, &q2);
  const PlanSet got = cached.Enumerate(q2, cache_);
  EXPECT_EQ(cached.plan_cache_misses(), 2u);
  ExpectSamePlanSet(got, reference.Enumerate(q2, cache_));
}

TEST_F(EnumeratorTest, ReusedOutputBufferShrinksAndGrows) {
  PlanEnumerator cached = MakeEnumerator();
  EnumeratorOptions off;
  off.enable_plan_cache = false;
  PlanEnumerator reference = MakeEnumerator(off);

  PlanSet reused;
  const Query big = testing::MakeTinyQuery(catalog_);
  Query small = testing::MakeTinyQuery(catalog_);
  small.template_id = 1;
  small.predicates.clear();  // No predicates: no index plans apply.
  DeriveResultShape(catalog_, 1.0, &small);

  cached.Enumerate(big, cache_, &reused);
  ExpectSamePlanSet(reused, reference.Enumerate(big, cache_));
  cached.Enumerate(small, cache_, &reused);  // Must shrink.
  ExpectSamePlanSet(reused, reference.Enumerate(small, cache_));
  cached.Enumerate(big, cache_, &reused);  // Must grow back, from cache.
  ExpectSamePlanSet(reused, reference.Enumerate(big, cache_));
  EXPECT_EQ(cached.plan_cache_hits(), 1u);
}

}  // namespace
}  // namespace cloudcache
