#pragma once

#include <vector>

namespace cloudcache {

struct TenantMetrics;

/// Fairness statistics over per-tenant allocations.
///
/// The multi-tenant economy shares one cache, one credit account, and one
/// Eq. 3 investment budget among N query streams; these metrics quantify
/// how evenly the outcomes (response times, billed dollars) spread over
/// the streams. They are descriptive — pure functions of the per-tenant
/// values with no internal state — so every caller (metrics, benches, the
/// tenant-aware eviction policy) computes them from the same formulas.

/// Jain's fairness index: (sum x)^2 / (n * sum x^2), in [1/n, 1].
/// 1.0 when every tenant gets the same value, 1/n when a single tenant
/// monopolizes everything. Degenerate inputs (empty, or all values zero)
/// are defined as 1.0: nothing was allocated, so nothing was unfair —
/// and a single-population report stays bit-identical to the default
/// FairnessReport below.
double JainsIndex(const std::vector<double>& values);

/// Max-min share for higher-is-better allocations (dollars, throughput):
/// min(x) / mean(x), in [0, 1]. 1.0 when the worst-off tenant receives
/// exactly the fair (equal) share, 0.0 when some tenant is starved
/// entirely. Same degenerate convention as JainsIndex: empty or all-zero
/// inputs are 1.0.
double MaxMinShare(const std::vector<double>& values);

/// Max-min share for lower-is-better quantities (response times):
/// mean(x) / max(x), in [1/n, 1]. The worst-off tenant of a latency
/// vector is the *max*, so this falls toward 1/n as one tenant's latency
/// dwarfs the rest and reaches 1.0 when everyone waits equally long —
/// moving in the same direction as Jain's index, which the plain
/// min/mean form would not. Degenerate inputs are 1.0.
double MaxMinShareLowerBetter(const std::vector<double>& values);

/// Jain's index rescaled to [0, 1] regardless of population size:
/// (n * J - 1) / (n - 1). 0.0 when one tenant holds everything, 1.0 when
/// the spread is perfectly even. A population of fewer than two values is
/// defined as 0.0 (a single backer IS full concentration) — this is the
/// breadth score the tenant-aware eviction policy uses to decide how
/// broadly a structure's backing regret is shared.
double NormalizedBreadth(const std::vector<double>& values);

/// Per-run fairness summary over the tenant slices of one simulation.
///
/// Defaults are the single-population fixed point (everything 1.0), so a
/// classic single-stream run — which never computes fairness — carries
/// exactly the values a one-tenant merged run computes, keeping the
/// `--tenants=1` bit-for-bit equivalence intact.
struct FairnessReport {
  /// Jain's index / lower-is-better max-min share (mean/max) over
  /// per-tenant mean response seconds.
  double response_jain = 1.0;
  double response_max_min = 1.0;
  /// Jain's index / max-min share (min/mean) over per-tenant billed
  /// dollars (execution + build spending attributed to the tenant's
  /// queries).
  double billed_jain = 1.0;
  double billed_max_min = 1.0;
};

/// Computes the report from per-tenant slices: response values are each
/// tenant's mean response seconds, billed values each tenant's
/// operating-cost total. Deterministic: iterates the slices in order and
/// uses no state beyond them.
FairnessReport ComputeFairness(const std::vector<TenantMetrics>& tenants);

}  // namespace cloudcache
