// Ablation A5: workload locality — the viability conditions of Section VI.
//
// "The workload running on the databases should be amenable to caching:
// First, queries have data access locality … second, queries have
// temporal locality." We sweep both axes: the popularity skew of the
// template mixture (data locality: how concentrated interest is) and the
// repeat probability (temporal locality: burstiness). A flat, memoryless
// workload should strip the economy of its advantage.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/sim/report.h"
#include "src/util/logging.h"

int main(int argc, char** argv) {
  using namespace cloudcache;
  using namespace cloudcache::bench;

  const BenchOptions options = ParseArgs(argc, argv, /*default=*/40'000);
  const PaperSetup setup = MakePaperSetup(options);

  struct Point {
    double skew;
    double repeat;
  };
  const std::vector<Point> points = {
      {0.0, 0.0}, {0.5, 0.1}, {1.0, 0.3}, {1.5, 0.5}, {2.0, 0.7}};
  const std::vector<SchemeKind> schemes = {SchemeKind::kBypassYield,
                                           SchemeKind::kEconCheap};
  std::vector<SweepVariant> variants;
  for (const Point& point : points) {
    variants.push_back({"skew=" + FormatDouble(point.skew, 1) +
                            " repeat=" + FormatDouble(point.repeat, 1),
                        [point](ExperimentConfig& config) {
                          config.workload.popularity_skew = point.skew;
                          config.workload.repeat_probability = point.repeat;
                        }});
  }
  const std::vector<SweepResult> results = RunVariantSweep(
      setup, options, PaperConfig(options, 10.0), schemes,
      std::move(variants));

  TableWriter table({"popularity_skew", "repeat_prob", "scheme",
                     "mean_resp_s", "op_cost_$", "hit_rate",
                     "investments"});
  for (size_t v = 0; v < points.size(); ++v) {
    for (size_t s = 0; s < schemes.size(); ++s) {
      const SimMetrics& m = results[v * schemes.size() + s].metrics;
      CLOUDCACHE_CHECK(table
                           .AddRow({FormatDouble(points[v].skew, 1),
                                    FormatDouble(points[v].repeat, 1),
                                    m.scheme_name,
                                    FormatDouble(m.MeanResponse(), 3),
                                    FormatDouble(m.operating_cost.Total(),
                                                 2),
                                    FormatDouble(m.CacheHitRate(), 3),
                                    std::to_string(m.investments)})
                           .ok());
    }
  }
  std::puts("Ablation A5 — workload locality sweep @ 10s interval");
  EmitTable(table, options);
  return 0;
}
