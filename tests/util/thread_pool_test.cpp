#include "src/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cloudcache {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasksWithoutLoss) {
  constexpr int kTasks = 1000;
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  std::vector<std::future<int>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([&executed, i] {
      executed.fetch_add(1, std::memory_order_relaxed);
      return i * i;
    }));
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
  EXPECT_EQ(executed.load(), kTasks);
}

TEST(ThreadPoolTest, SpawnsRequestedWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
}

TEST(ThreadPoolTest, ClampsZeroThreadsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([] { return 41 + 1; }).get(), 42);
}

TEST(ThreadPoolTest, RunsTasksConcurrentlyAcrossWorkers) {
  // Two tasks that each wait for the other to start can only both finish
  // if two workers run them at the same time.
  ThreadPool pool(2);
  std::atomic<int> started{0};
  auto rendezvous = [&started] {
    started.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (started.load() < 2) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::yield();
    }
    return true;
  };
  std::future<bool> a = pool.Submit(rendezvous);
  std::future<bool> b = pool.Submit(rendezvous);
  EXPECT_TRUE(a.get());
  EXPECT_TRUE(b.get());
}

TEST(ThreadPoolTest, PropagatesTaskExceptionsThroughFutures) {
  ThreadPool pool(2);
  std::future<void> failing =
      pool.Submit([]() -> void { throw std::runtime_error("boom"); });
  EXPECT_THROW(failing.get(), std::runtime_error);
  // The worker that ran the throwing task must survive for later tasks.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  constexpr int kTasks = 200;
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&executed] {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // ~ThreadPool runs everything still queued before joining.
  EXPECT_EQ(executed.load(), kTasks);
}

TEST(ThreadPoolTest, CarriesMoveOnlyResults) {
  ThreadPool pool(1);
  std::future<std::unique_ptr<int>> result =
      pool.Submit([] { return std::make_unique<int>(99); });
  std::unique_ptr<int> value = result.get();
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, 99);
}

TEST(ThreadPoolTest, ForwardsArgumentsToTask) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.Submit([](int a, int b) { return a + b; }, 40, 2).get(),
            42);
}

}  // namespace
}  // namespace cloudcache
