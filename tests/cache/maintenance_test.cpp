#include "src/cache/maintenance.h"

#include <gtest/gtest.h>

#include "tests/testing/fixtures.h"

namespace cloudcache {
namespace {

class MaintenanceTest : public ::testing::Test {
 protected:
  MaintenanceTest()
      : catalog_(testing::MakeTinyCatalog()),
        prices_(testing::MakeRoundPrices()),
        model_(&catalog_, &prices_),
        ledger_(&model_) {}

  StructureKey FactColumn() {
    return ColumnKey(catalog_, *catalog_.FindColumn("fact.f_key"));
  }

  Catalog catalog_;
  PriceList prices_;
  CostModel model_;
  MaintenanceLedger ledger_;
};

TEST_F(MaintenanceTest, FreshStructureOwesNothing) {
  ledger_.Register(0, FactColumn(), 100.0, Money::FromDollars(1));
  EXPECT_TRUE(ledger_.Owed(0, 100.0).IsZero());
  EXPECT_TRUE(ledger_.IsTracked(0));
}

TEST_F(MaintenanceTest, OwedGrowsLinearly) {
  ledger_.Register(0, FactColumn(), 0.0, Money());
  const Money one_month = ledger_.Owed(0, kMonth);
  // 8 MB at $0.10/GB-month.
  EXPECT_EQ(one_month, Money::FromDollars(8e6 * 0.10 / 1e9));
  EXPECT_EQ(ledger_.Owed(0, 2 * kMonth), one_month * 2);
}

TEST_F(MaintenanceTest, PayCollectsAndResets) {
  ledger_.Register(0, FactColumn(), 0.0, Money());
  const Money paid = ledger_.Pay(0, kMonth);
  EXPECT_EQ(paid, Money::FromDollars(8e6 * 0.10 / 1e9));
  EXPECT_TRUE(ledger_.Owed(0, kMonth).IsZero());
  // Rent keeps accruing from the payment point (another full month).
  EXPECT_FALSE(ledger_.Owed(0, 2 * kMonth).IsZero());
}

TEST_F(MaintenanceTest, FootnoteThreePaymentCoversSinceLastPayer) {
  // Two payments at different times collect exactly the whole rent.
  ledger_.Register(0, FactColumn(), 0.0, Money());
  const Money p1 = ledger_.Pay(0, kMonth / 2);
  const Money p2 = ledger_.Pay(0, kMonth);
  EXPECT_EQ(p1 + p2, Money::FromDollars(8e6 * 0.10 / 1e9));
}

TEST_F(MaintenanceTest, UnregisterReturnsWriteOff) {
  ledger_.Register(0, FactColumn(), 0.0, Money());
  const Money writeoff = ledger_.Unregister(0, kMonth);
  EXPECT_EQ(writeoff, Money::FromDollars(8e6 * 0.10 / 1e9));
  EXPECT_FALSE(ledger_.IsTracked(0));
}

TEST_F(MaintenanceTest, BuildCostRetained) {
  ledger_.Register(3, FactColumn(), 0.0, Money::FromDollars(42));
  EXPECT_EQ(ledger_.BuildCostOf(3), Money::FromDollars(42));
}

TEST_F(MaintenanceTest, TimeNeverRunsBackwards) {
  ledger_.Register(0, FactColumn(), 10.0, Money());
  // Asking about a time before registration owes nothing.
  EXPECT_TRUE(ledger_.Owed(0, 5.0).IsZero());
  EXPECT_TRUE(ledger_.Pay(0, 5.0).IsZero());
}

TEST_F(MaintenanceTest, CpuNodeChargesReservationRate) {
  ledger_.Register(1, CpuNodeKey(0), 0.0, Money());
  const Money owed = ledger_.Owed(1, 1000.0);
  EXPECT_EQ(owed, Money::FromDollars(1000.0 * 0.001 *
                                     prices_.cpu_reserve_fraction));
}

TEST_F(MaintenanceTest, IndependentClocks) {
  ledger_.Register(0, FactColumn(), 0.0, Money());
  ledger_.Register(1, CpuNodeKey(0), 0.0, Money());
  ledger_.Pay(0, 100.0);
  EXPECT_TRUE(ledger_.Owed(0, 100.0).IsZero());
  EXPECT_FALSE(ledger_.Owed(1, 100.0).IsZero());
}

TEST_F(MaintenanceTest, FailureScaleDefaultsToOne) {
  ledger_.Register(0, FactColumn(), 0.0, Money::FromDollars(1));
  EXPECT_DOUBLE_EQ(ledger_.FailureScale(0), 1.0);
  // Untracked structures also read 1.0 so callers can ask blindly.
  EXPECT_DOUBLE_EQ(ledger_.FailureScale(42), 1.0);
}

TEST_F(MaintenanceTest, FailureScaleRetainedUntilUnregister) {
  ledger_.Register(0, FactColumn(), 0.0, Money::FromDollars(1), 1.75);
  EXPECT_DOUBLE_EQ(ledger_.FailureScale(0), 1.75);
  ledger_.Unregister(0, 10.0);
  EXPECT_DOUBLE_EQ(ledger_.FailureScale(0), 1.0);
}

}  // namespace
}  // namespace cloudcache
