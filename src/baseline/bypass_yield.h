#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "src/baseline/scheme.h"
#include "src/cache/cache_state.h"
#include "src/cost/cost_model.h"
#include "src/structure/structure.h"

namespace cloudcache {

/// The paper's comparison baseline: bypass-yield caching [14], "emulated
/// by associating cost only with network bandwidth … This cache, denoted
/// as net-only, tries to reduce the network bandwidth and caches only
/// table columns" with "the ideal cache size for net-only, which is 30% of
/// the total database size", and "avoids using indexes to speed up
/// queries" (Section VII-A).
///
/// Mechanism (after Malik et al., ICDE'05): every query served over the
/// network accrues, on each column it accessed, the WAN bytes that a cache
/// hit would have saved. A column's *yield* is accrued-savable-bytes per
/// byte of cache space. A column is loaded once its accrued savings reach
/// yield_threshold x its size; when the 30% budget is full, a candidate
/// displaces resident columns only if its yield beats theirs. Accruals age
/// (halve) periodically so the cache tracks workload drift.
class BypassYieldScheme : public Scheme {
 public:
  struct Options {
    /// Cache budget as a fraction of the database size (0.30 = ideal [14]).
    double cache_fraction = 0.30;
    /// A column becomes loadable when accrued savable bytes reach this
    /// multiple of its size (1.0 = network break-even).
    double yield_threshold = 1.0;
    /// Every this many queries, all accruals halve.
    uint64_t aging_interval = 5000;
    std::string name = "bypass";
  };

  BypassYieldScheme(const Catalog* catalog, Options options);

  const std::string& name() const override { return options_.name; }
  ServedQuery OnQuery(const Query& query, SimTime now) override;
  const CacheState& cache() const override { return cache_; }

  /// Accrued savable bytes of a column (for tests).
  uint64_t AccruedBytes(ColumnId column) const;
  uint64_t cache_budget_bytes() const { return budget_bytes_; }

  bool SupportsCheckpoint() const override { return true; }
  void SaveState(persist::Encoder* enc) const override;
  Status RestoreState(persist::Decoder* dec) override;

 private:
  /// Yield of a column = accrued / size.
  double YieldOf(ColumnId column) const;
  /// Tries to load `column`, displacing lower-yield residents if needed.
  /// Returns true (and fills usage) if loaded.
  bool TryLoad(ColumnId column, SimTime now, BuildUsage* usage,
               uint32_t* evictions);

  const Catalog* catalog_;
  Options options_;
  /// Bypass-yield prices everything at network-only rates internally; the
  /// execution-time estimates it reports are price-independent.
  PriceList decision_prices_;
  StructureRegistry registry_;
  CostModel model_;
  CacheState cache_;
  uint64_t budget_bytes_;
  std::vector<uint64_t> accrued_;  // Per ColumnId, savable bytes.
  uint64_t queries_seen_ = 0;
};

}  // namespace cloudcache
