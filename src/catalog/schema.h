#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace cloudcache {

/// Logical type of a column. The cost model only needs byte widths, but the
/// type tag keeps the catalog self-describing and lets the index advisor
/// distinguish sortable key columns from payload.
enum class DataType {
  kInt32,
  kInt64,
  kFloat64,
  kDecimal,   // Fixed-point, stored as 8 bytes.
  kDate,      // Days since epoch, 4 bytes.
  kChar,      // Fixed width, given per column.
  kVarchar,   // Average width, given per column.
};

/// Human-readable type name ("int64", "varchar", ...).
const char* DataTypeToString(DataType type);

/// Default storage width in bytes for fixed-width types; 0 for kChar and
/// kVarchar, whose width is per-column.
uint32_t DefaultWidth(DataType type);

/// Catalog-wide dense column identifier; assigned by Catalog::AddTable in
/// registration order. Used as the key of every per-column array in the
/// cache and the regret ledger.
using ColumnId = uint32_t;

/// Catalog-wide dense table identifier.
using TableId = uint32_t;

/// A column of a backend table.
struct Column {
  std::string name;
  DataType type = DataType::kInt64;
  /// Storage width of one value in bytes (average width for kVarchar).
  uint32_t width_bytes = 8;
  /// Fraction of rows carrying a distinct value, in (0, 1]; drives
  /// selectivity estimates for equality predicates and index benefit.
  double distinct_fraction = 1.0;

  TableId table_id = 0;   // Filled by Catalog::AddTable.
  ColumnId column_id = 0; // Filled by Catalog::AddTable.
};

/// A backend table: a name, a row count, and its columns.
struct Table {
  std::string name;
  uint64_t row_count = 0;
  std::vector<Column> columns;
  TableId table_id = 0;  // Filled by Catalog::AddTable.

  /// Sum of column widths: bytes of one row.
  uint64_t RowWidth() const;
  /// row_count * RowWidth().
  uint64_t TotalBytes() const;
};

/// The schema of the back-end database the cloud cache sits in front of.
///
/// Immutable once built (the paper assumes static cloud databases,
/// Section V-C), so all lookups are by dense id or by name with no
/// synchronization.
class Catalog {
 public:
  Catalog() = default;

  /// Registers a table; assigns dense ids to it and its columns.
  /// Fails if a table of the same name exists or the table has no columns.
  Status AddTable(Table table);

  size_t num_tables() const { return tables_.size(); }
  size_t num_columns() const { return columns_.size(); }

  const Table& table(TableId id) const { return tables_[id]; }
  const Column& column(ColumnId id) const { return *columns_[id]; }

  /// Table by name, or NotFound.
  Result<TableId> FindTable(const std::string& name) const;
  /// Column by "table.column" qualified name, or NotFound.
  Result<ColumnId> FindColumn(const std::string& qualified_name) const;

  /// Bytes occupied by one column across all its rows.
  uint64_t ColumnBytes(ColumnId id) const;

  /// Total bytes of the whole database (the paper's "2.5 TB backend").
  uint64_t TotalBytes() const;

  const std::vector<Table>& tables() const { return tables_; }

 private:
  std::vector<Table> tables_;
  /// Dense ColumnId -> pointer into tables_[...].columns. Stable because
  /// tables_ is only appended to and never reallocated after Freeze; we
  /// re-index on every AddTable instead of holding raw pointers eagerly.
  std::vector<const Column*> columns_;

  void Reindex();
};

}  // namespace cloudcache
