#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace cloudcache {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable over millions of samples; used for per-query response
/// time and cost statistics in the simulator.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one (parallel sweeps).
  void Merge(const RunningStats& other);

  int64_t count() const { return count_; }
  /// Mean of the observations; 0 if empty.
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;
  /// sqrt(variance()).
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Raw accumulator fields for checkpointing: m2 is not derivable from
  /// variance() below two samples, and min/max sit at ±inf while empty, so
  /// an exact restore needs the internals rather than the public views.
  double raw_mean() const { return mean_; }
  double raw_m2() const { return m2_; }
  double raw_min() const { return min_; }
  double raw_max() const { return max_; }
  void RestoreRaw(int64_t count, double mean, double m2, double sum,
                  double min, double max) {
    count_ = count;
    mean_ = mean;
    m2_ = m2;
    sum_ = sum;
    min_ = min;
    max_ = max;
  }

 private:
  int64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Append-only (time, value) series with down-sampling for reports.
class TimeSeries {
 public:
  /// Appends a point; times must be non-decreasing.
  void Add(double time, double value);

  size_t size() const { return times_.size(); }
  const std::vector<double>& times() const { return times_; }
  const std::vector<double>& values() const { return values_; }

  /// Last value, or 0 if empty.
  double Last() const { return values_.empty() ? 0.0 : values_.back(); }

  /// At most `max_points` evenly-spaced-by-index points, keeping first and
  /// last. Returns the whole series if it is already small enough.
  TimeSeries Downsample(size_t max_points) const;

  /// Replaces the whole series for checkpoint restore; the vectors must be
  /// equal length with non-decreasing times.
  void RestoreRaw(std::vector<double> times, std::vector<double> values) {
    times_ = std::move(times);
    values_ = std::move(values);
  }

 private:
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace cloudcache
