#include "src/obs/registry.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/sim/metrics.h"

namespace cloudcache::obs {
namespace {

TEST(FormatMetricValueTest, ShortestRoundTrip) {
  EXPECT_EQ(FormatMetricValue(0.0), "0");
  EXPECT_EQ(FormatMetricValue(42.0), "42");
  EXPECT_EQ(FormatMetricValue(0.5), "0.5");
  EXPECT_EQ(FormatMetricValue(-3.25), "-3.25");
  // Any double must parse back to the identical bits.
  for (double value : {1.0 / 3.0, 1e-9, 123456.789, 2.5e17}) {
    EXPECT_EQ(std::strtod(FormatMetricValue(value).c_str(), nullptr),
              value);
  }
}

TEST(RegistryTest, PrometheusRenderIsExactAndOrdered) {
  Registry registry;
  registry.Counter("app_requests_total", "Requests handled", 7);
  registry.Gauge("app_depth", "Queue depth", 2.5);
  registry.Counter("app_requests_total", "ignored on second add", 3,
                   {{"code", "500"}});
  EXPECT_EQ(registry.RenderPrometheus(),
            "# HELP app_requests_total Requests handled\n"
            "# TYPE app_requests_total counter\n"
            "app_requests_total 7\n"
            "app_requests_total{code=\"500\"} 3\n"
            "# HELP app_depth Queue depth\n"
            "# TYPE app_depth gauge\n"
            "app_depth 2.5\n");
}

TEST(RegistryTest, LabelValuesAreEscaped) {
  Registry registry;
  registry.Gauge("g", "h", 1, {{"key", "a\\b\"c\nd"}});
  EXPECT_EQ(registry.RenderPrometheus(),
            "# HELP g h\n"
            "# TYPE g gauge\n"
            "g{key=\"a\\\\b\\\"c\\nd\"} 1\n");
}

TEST(RegistryTest, SummaryEmitsQuantilesSumAndCount) {
  Histogram hist;
  for (int i = 0; i < 100; ++i) hist.Add(2.0);
  Registry registry;
  registry.Summary("lat_seconds", "Latency", hist, {0.5, 0.99});
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE lat_seconds summary\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds{quantile=\"0.5\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds{quantile=\"0.99\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum 200\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 100\n"), std::string::npos);
}

TEST(RegistryTest, JsonRenderSharesNamesWithPrometheus) {
  Registry registry;
  registry.Counter("app_requests_total", "Requests handled", 7,
                   {{"code", "200"}});
  EXPECT_EQ(registry.RenderJson(),
            "{\"metrics\":[{\"name\":\"app_requests_total\","
            "\"type\":\"counter\",\"labels\":{\"code\":\"200\"},"
            "\"value\":7}]}\n");
}

TEST(RegistryTest, RenderIsDeterministic) {
  const auto build = [] {
    Registry registry;
    SimMetrics metrics;
    metrics.queries = 1'000;
    metrics.served = 990;
    metrics.served_in_cache = 400;
    metrics.response_hist.Add(0.25);
    metrics.response_hist.Add(8.0);
    FillFromSimMetrics(metrics, &registry);
    return registry;
  };
  EXPECT_EQ(build().RenderPrometheus(), build().RenderPrometheus());
  EXPECT_EQ(build().RenderJson(), build().RenderJson());
}

TEST(RegistryTest, FillFromSimMetricsCoversTheSchema) {
  SimMetrics metrics;
  metrics.queries = 10;
  metrics.served = 9;
  metrics.investments = 2;
  for (int i = 0; i < 9; ++i) metrics.response_hist.Add(1.0 + i);
  TenantMetrics tenant;
  tenant.tenant_id = 3;
  tenant.queries = 10;
  tenant.served = 9;
  metrics.tenants.push_back(tenant);
  metrics.cluster.active = true;
  metrics.cluster.final_nodes = 2;

  Registry registry;
  FillFromSimMetrics(metrics, &registry);
  const std::string text = registry.RenderPrometheus();
  // The stable names every consumer (exposition, JSON export, docs)
  // shares. A rename must be deliberate — it breaks scrapers.
  for (const char* name :
       {"cloudcache_queries_total 10", "cloudcache_served_total 9",
        "cloudcache_investments_total 2",
        "cloudcache_response_seconds{quantile=\"0.5\"}",
        "cloudcache_response_seconds{quantile=\"0.95\"}",
        "cloudcache_response_seconds{quantile=\"0.99\"}",
        "cloudcache_response_seconds_count 9",
        "cloudcache_budget_case_total{case=\"a\"}",
        "cloudcache_operating_cost_dollars{resource=\"cpu\"}",
        "cloudcache_tenant_queries_total{tenant=\"3\"} 10",
        "cloudcache_tenant_response_seconds{tenant=\"3\",quantile=\"0.5\"}",
        "cloudcache_cluster_nodes 2"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  // Single-node, single-tenant runs skip the cluster block entirely.
  SimMetrics plain;
  Registry small;
  FillFromSimMetrics(plain, &small);
  EXPECT_EQ(small.RenderPrometheus().find("cloudcache_cluster"),
            std::string::npos);
}

}  // namespace
}  // namespace cloudcache::obs
