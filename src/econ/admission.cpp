#include "src/econ/admission.h"

#include <algorithm>

#include "src/util/logging.h"

namespace cloudcache {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  // Knobs behind the disabled switch must stay inert (the flags-off
  // bit-identity guarantee), so misconfiguration is only fatal when the
  // policy is actually on.
  if (options_.enabled) {
    CLOUDCACHE_CHECK_GT(options_.throttle_ratio, 0.0);
    CLOUDCACHE_CHECK_LE(options_.readmit_ratio, options_.throttle_ratio);
    CLOUDCACHE_CHECK_GE(options_.throttled_regret_scale, 0.0);
    CLOUDCACHE_CHECK_LE(options_.throttled_regret_scale, 1.0);
  }
}

void AdmissionController::SetTenantCount(size_t n) {
  tenants_.assign(n, TenantState());
  backing_.clear();
}

void AdmissionController::RecordRevenue(uint32_t tenant, Money amount) {
  if (!options_.enabled || tenant >= tenants_.size()) return;
  tenants_[tenant].revenue += amount;
}

void AdmissionController::RecordRegret(uint32_t tenant, Money amount) {
  if (!options_.enabled || tenant >= tenants_.size()) return;
  tenants_[tenant].accrued += amount;
}

void AdmissionController::RecordMonetized(uint32_t tenant,
                                          StructureId structure,
                                          Money amount) {
  if (!options_.enabled || tenant >= tenants_.size() || amount.IsZero()) {
    return;
  }
  tenants_[tenant].monetized += amount;
  CLOUDCACHE_CHECK_LE(tenants_[tenant].monetized.micros(),
                      tenants_[tenant].accrued.micros());
  std::vector<Money>& shares = backing_[structure];
  shares.resize(tenants_.size());
  shares[tenant] += amount;
}

void AdmissionController::OnStructureFailed(StructureId structure) {
  if (!options_.enabled) return;
  auto it = backing_.find(structure);
  if (it == backing_.end()) return;
  for (size_t t = 0; t < it->second.size(); ++t) {
    tenants_[t].monetized -= it->second[t];
    CLOUDCACHE_CHECK_GE(tenants_[t].monetized.micros(), 0);
  }
  backing_.erase(it);
}

Money AdmissionController::Unmonetized(uint32_t tenant) const {
  if (tenant >= tenants_.size()) return Money();
  const TenantState& state = tenants_[tenant];
  return state.accrued - state.monetized;
}

bool AdmissionController::Throttled(uint32_t tenant, bool* newly_throttled) {
  if (newly_throttled != nullptr) *newly_throttled = false;
  if (!options_.enabled || tenant >= tenants_.size()) return false;
  TenantState& state = tenants_[tenant];

  const Money unmonetized = state.accrued - state.monetized;
  // The ratio compares micro-dollar counts directly; a tenant with zero
  // revenue and above-floor unmonetized regret is unconditionally over
  // any finite ratio.
  const double revenue =
      static_cast<double>(state.revenue.micros());
  const double signal = static_cast<double>(unmonetized.micros());
  if (!state.throttled) {
    if (unmonetized >= options_.min_regret &&
        signal > options_.throttle_ratio * revenue) {
      state.throttled = true;
      if (newly_throttled != nullptr) *newly_throttled = true;
    }
  } else {
    if (signal <= options_.readmit_ratio * revenue) {
      state.throttled = false;
    }
  }
  return state.throttled;
}

void AdmissionController::SaveState(persist::Encoder* enc) const {
  enc->PutU64(tenants_.size());
  for (const TenantState& state : tenants_) {
    enc->PutMoney(state.revenue);
    enc->PutMoney(state.accrued);
    enc->PutMoney(state.monetized);
    enc->PutBool(state.throttled);
  }
  std::vector<StructureId> ids;
  ids.reserve(backing_.size());
  for (const auto& [id, shares] : backing_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  enc->PutU64(ids.size());
  for (StructureId id : ids) {
    const std::vector<Money>& shares = backing_.at(id);
    enc->PutU32(id);
    enc->PutU64(shares.size());
    for (Money share : shares) enc->PutMoney(share);
  }
}

Status AdmissionController::RestoreState(persist::Decoder* dec) {
  uint64_t tenant_count = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&tenant_count));
  if (tenant_count != tenants_.size()) {
    return Status::FailedPrecondition(
        "snapshot admission state has " + std::to_string(tenant_count) +
        " tenants but this run provisioned " +
        std::to_string(tenants_.size()));
  }
  for (TenantState& state : tenants_) {
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&state.revenue));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&state.accrued));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&state.monetized));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadBool(&state.throttled));
    if (state.monetized.micros() < 0 ||
        state.monetized.micros() > state.accrued.micros()) {
      return Status::InvalidArgument(
          "snapshot admission state monetized regret exceeds accrued");
    }
  }
  backing_.clear();
  uint64_t backing_count = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&backing_count));
  for (uint64_t i = 0; i < backing_count; ++i) {
    StructureId id = 0;
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&id));
    uint64_t share_count = 0;
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&share_count));
    if (share_count > tenants_.size()) {
      return Status::InvalidArgument(
          "snapshot admission backing has more shares than tenants");
    }
    std::vector<Money> shares(share_count);
    for (Money& share : shares) {
      CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&share));
    }
    if (!backing_.emplace(id, std::move(shares)).second) {
      return Status::InvalidArgument(
          "snapshot admission backing repeats structure id " +
          std::to_string(id));
    }
  }
  return Status::OK();
}

}  // namespace cloudcache
