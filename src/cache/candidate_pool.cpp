#include "src/cache/candidate_pool.h"

#include "src/util/logging.h"

namespace cloudcache {

CandidatePool::CandidatePool(size_t capacity) : capacity_(capacity) {
  CLOUDCACHE_CHECK_GE(capacity, 1u);
}

const std::vector<StructureId>& CandidatePool::Touch(StructureId id,
                                                    SimTime now) {
  evicted_.clear();
  auto it = index_.find(id);
  if (it != index_.end()) {
    it->second->last_touch = now;
    entries_.splice(entries_.begin(), entries_, it->second);
    return evicted_;
  }
  entries_.push_front(Entry{id, now});
  index_[id] = entries_.begin();
  while (entries_.size() > capacity_) {
    evicted_.push_back(entries_.back().id);
    index_.erase(entries_.back().id);
    entries_.pop_back();
  }
  return evicted_;
}

void CandidatePool::Erase(StructureId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  entries_.erase(it->second);
  index_.erase(it);
}

bool CandidatePool::Contains(StructureId id) const {
  return index_.count(id) > 0;
}

std::vector<StructureId> CandidatePool::MruOrder() const {
  std::vector<StructureId> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.id);
  return out;
}

}  // namespace cloudcache
