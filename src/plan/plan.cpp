#include "src/plan/plan.h"

#include <cstdio>

namespace cloudcache {

namespace {
const char* AccessName(PlanSpec::Access access) {
  switch (access) {
    case PlanSpec::Access::kBackend:
      return "backend";
    case PlanSpec::Access::kCacheScan:
      return "cache-scan";
    case PlanSpec::Access::kCacheIndex:
      return "cache-index";
  }
  return "?";
}
}  // namespace

std::string QueryPlan::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s[%un] t=%.3fs price=%s%s",
                AccessName(spec.access), spec.cpu_nodes,
                execution.time_seconds, Price().ToString().c_str(),
                missing.empty()
                    ? ""
                    : (" (+" + std::to_string(missing.size()) + " missing)")
                          .c_str());
  return buf;
}

std::vector<size_t> PlanSet::ExistingIndices() const {
  std::vector<size_t> out;
  ExistingIndicesInto(&out);
  return out;
}

void PlanSet::ExistingIndicesInto(std::vector<size_t>* out) const {
  out->clear();
  for (size_t i = 0; i < plans.size(); ++i) {
    if (plans[i].IsExisting()) out->push_back(i);
  }
}

std::vector<size_t> PlanSet::PossibleIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < plans.size(); ++i) {
    if (!plans[i].IsExisting()) out.push_back(i);
  }
  return out;
}

}  // namespace cloudcache
