// Multi-tenant contention grid.
//
// Sweeps tenant count x traffic skew for the economy schemes (bypass rides
// along as the no-economy baseline): N independent query streams — each
// with its own template mix, arrival rate, and budget jitter stream —
// merge through the event-driven simulator into one shared cache, while
// the aggregate offered load stays pinned at the single-stream rate. What
// the grid shows is therefore pure cross-tenant contention: how much the
// shared economy's operating cost, response time, and per-tenant fairness
// move as one stream fragments into many competing ones.
//
// Fairness columns: the spread of per-tenant mean response times and the
// largest regret the economy still holds for any one tenant at run end
// (unserved demand the shared cache never priced in).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/sim/sweep.h"
#include "src/util/logging.h"
#include "src/util/money.h"
#include "src/util/table_writer.h"

namespace {

using namespace cloudcache;
using cloudcache::bench::BenchOptions;
using cloudcache::bench::EmitTable;
using cloudcache::bench::MakePaperSetup;
using cloudcache::bench::PaperConfig;
using cloudcache::bench::ParseArgs;
using cloudcache::bench::RunVariantSweep;

struct TenancyPoint {
  uint32_t tenants;
  double skew;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions options = ParseArgs(argc, argv, /*default_queries=*/20'000);
  const auto setup = MakePaperSetup(options);

  const std::vector<TenancyPoint> points = {
      {1, 0.0}, {2, 0.0}, {4, 0.0}, {4, 1.0}, {8, 0.0}, {8, 1.0}};
  const std::vector<SchemeKind> schemes = {
      SchemeKind::kBypassYield, SchemeKind::kEconCheap,
      SchemeKind::kEconFast};

  std::vector<SweepVariant> variants;
  variants.reserve(points.size());
  for (const TenancyPoint& point : points) {
    SweepVariant variant;
    char label[48];
    std::snprintf(label, sizeof(label), "tenants=%u skew=%g", point.tenants,
                  point.skew);
    variant.label = label;
    variant.customize = [point](ExperimentConfig& config) {
      config.tenancy.tenants = point.tenants;
      config.tenancy.traffic_skew = point.skew;
    };
    variants.push_back(std::move(variant));
  }

  const ExperimentConfig base = PaperConfig(options, /*interarrival=*/10.0);
  const std::vector<SweepResult> results =
      RunVariantSweep(setup, options, base, schemes, variants);

  TableWriter table({"tenants", "skew", "scheme", "op_cost_$",
                     "mean_resp_s", "hit_rate", "tenant_resp_min_s",
                     "tenant_resp_max_s", "max_tenant_regret_$"});
  for (const SweepResult& result : results) {
    const SimMetrics& m = result.metrics;
    const TenancyPoint& point = points[result.cell.variant_index];
    double resp_min = m.MeanResponse();
    double resp_max = m.MeanResponse();
    Money regret_max;
    for (const TenantMetrics& tenant : m.tenants) {
      resp_min = std::min(resp_min, tenant.MeanResponse());
      resp_max = std::max(resp_max, tenant.MeanResponse());
      regret_max = Money::Max(regret_max, tenant.final_regret);
    }
    CLOUDCACHE_CHECK(
        table
            .AddRow({std::to_string(point.tenants),
                     FormatDouble(point.skew, 1), m.scheme_name,
                     FormatDouble(m.operating_cost.Total(), 2),
                     FormatDouble(m.MeanResponse(), 3),
                     FormatDouble(m.CacheHitRate(), 3),
                     FormatDouble(resp_min, 3), FormatDouble(resp_max, 3),
                     FormatDouble(regret_max.ToDollars(), 2)})
            .ok());
  }

  std::puts("Multi-tenant contention (shared cache, load held constant)");
  EmitTable(table, options);
  return 0;
}
