#include "src/sim/sweep.h"

#include <algorithm>
#include <cstdio>
#include <future>
#include <thread>
#include <utility>

#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace cloudcache {

namespace {

std::string CellLabel(const SweepSpec& spec, const SweepCell& cell) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), " @ %gs", cell.interarrival_seconds);
  std::string label = std::string(SchemeKindToString(cell.scheme)) + buffer;
  const std::string& variant = spec.variants[cell.variant_index].label;
  if (!variant.empty()) label += " [" + variant + "]";
  return label;
}

}  // namespace

uint64_t SweepCellSeed(uint64_t base_seed, uint64_t cell_index) {
  return MixSeed(base_seed, cell_index);
}

std::vector<SweepCell> EnumerateSweepCells(const SweepSpec& spec) {
  CLOUDCACHE_CHECK(!spec.schemes.empty());
  CLOUDCACHE_CHECK(!spec.interarrivals.empty());
  CLOUDCACHE_CHECK(!spec.variants.empty());
  std::vector<SweepCell> cells;
  cells.reserve(spec.CellCount());
  for (size_t v = 0; v < spec.variants.size(); ++v) {
    for (size_t i = 0; i < spec.interarrivals.size(); ++i) {
      for (size_t s = 0; s < spec.schemes.size(); ++s) {
        SweepCell cell;
        cell.index = cells.size();
        cell.scheme_index = s;
        cell.interarrival_index = i;
        cell.variant_index = v;
        cell.scheme = spec.schemes[s];
        cell.interarrival_seconds = spec.interarrivals[i];
        switch (spec.seed_policy) {
          case SweepSpec::SeedPolicy::kPerCell:
            cell.seed = SweepCellSeed(spec.base_seed, cell.index);
            break;
          case SweepSpec::SeedPolicy::kPerRow:
            cell.seed = SweepCellSeed(spec.base_seed,
                                      v * spec.interarrivals.size() + i);
            break;
          case SweepSpec::SeedPolicy::kFixed:
            cell.seed = spec.base.workload.seed;
            break;
        }
        cell.label = CellLabel(spec, cell);
        cells.push_back(std::move(cell));
      }
    }
  }
  return cells;
}

ExperimentConfig MakeCellConfig(const SweepSpec& spec,
                                const SweepCell& cell) {
  ExperimentConfig config = spec.base;
  config.scheme = cell.scheme;
  config.workload.interarrival_seconds = cell.interarrival_seconds;
  if (spec.seed_policy != SweepSpec::SeedPolicy::kFixed) {
    config.workload.seed = cell.seed;
    config.seed = cell.seed + 1;  // Scheme stream, as in bench PaperConfig.
  }
  const SweepVariant& variant = spec.variants[cell.variant_index];
  if (variant.customize) variant.customize(config);
  return config;
}

std::vector<SweepResult> RunSweep(
    const Catalog& catalog, const std::vector<QueryTemplate>& templates,
    const SweepSpec& spec, unsigned n_threads,
    const std::function<void(const SweepCell&, const SimMetrics&)>&
        progress) {
  const std::vector<SweepCell> cells = EnumerateSweepCells(spec);

  auto run_cell = [&](const SweepCell& cell) {
    SimMetrics metrics =
        RunExperiment(catalog, templates, MakeCellConfig(spec, cell));
    if (progress) progress(cell, metrics);
    return metrics;
  };

  std::vector<SweepResult> results;
  results.reserve(cells.size());

  if (n_threads == 0) {
    const unsigned hardware = std::thread::hardware_concurrency();
    n_threads = hardware > 0 ? hardware : 1;
  }
  const size_t workers = std::min<size_t>(n_threads, cells.size());
  if (workers <= 1) {
    for (const SweepCell& cell : cells) {
      results.push_back({cell, run_cell(cell)});
    }
    return results;
  }

  // Every cell's config derives only from the spec, never from another
  // cell's outcome, so scheduling order cannot leak into results: the grid
  // is embarrassingly parallel and bit-identical for any worker count.
  ThreadPool pool(workers);
  std::vector<std::future<SimMetrics>> futures;
  futures.reserve(cells.size());
  for (const SweepCell& cell : cells) {
    futures.push_back(pool.Submit(run_cell, cell));
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    results.push_back({cells[i], futures[i].get()});
  }
  return results;
}

void LogCellDone(const SweepCell& cell, const SimMetrics&) {
  std::fprintf(stderr, "  [done] %s\n", cell.label.c_str());
}

std::vector<std::vector<SimMetrics>> GroupRowsByInterarrival(
    std::vector<SweepResult> results, size_t num_interarrivals) {
  std::vector<std::vector<SimMetrics>> rows(num_interarrivals);
  for (SweepResult& result : results) {
    CLOUDCACHE_CHECK(result.cell.interarrival_index < num_interarrivals);
    rows[result.cell.interarrival_index].push_back(
        std::move(result.metrics));
  }
  return rows;
}

}  // namespace cloudcache
