#pragma once

#include <memory>
#include <vector>

#include "src/util/money.h"
#include "src/util/status.h"

namespace cloudcache {

/// A user's budget function B_Q(t): the price she is willing to pay as a
/// function of the query's execution time (Section IV-C, Fig. 1).
///
/// The function is expected to be non-increasing over its support
/// (0, t_max]; outside the support it is zero (the user will not accept
/// service slower than t_max at any price). ValidateMonotone() checks the
/// expectation by sampling, since arbitrary user-supplied shapes are
/// allowed ("There are no limitations for the structure of BQ").
class BudgetFunction {
 public:
  virtual ~BudgetFunction() = default;

  /// Willingness to pay for completion in `t` seconds; zero for t <= 0 or
  /// t > t_max().
  Money At(double t) const;

  /// Latest acceptable completion time.
  double t_max() const { return t_max_; }

  /// Samples the function and fails with InvalidArgument on any increase.
  Status ValidateMonotone(int samples = 64) const;

 protected:
  explicit BudgetFunction(double t_max) : t_max_(t_max) {}

  /// For subclasses whose parameters can be re-bound in place (the budget
  /// synthesizer recycles one function object per query instead of
  /// allocating).
  void set_t_max(double t_max) { t_max_ = t_max; }

  /// Shape on (0, t_max]; implemented by subclasses.
  virtual Money Evaluate(double t) const = 0;

 private:
  double t_max_;
};

/// Fig. 1(a): constant |a| over the whole support.
class StepBudget : public BudgetFunction {
 public:
  StepBudget(Money amount, double t_max);

  /// Re-binds the parameters in place (object recycling).
  void Reset(Money amount, double t_max) {
    amount_ = amount;
    set_t_max(t_max);
  }

 protected:
  Money Evaluate(double t) const override;

 private:
  Money amount_;
};

/// Linear descent from `amount` at t=0 to zero at t_max.
class LinearBudget : public BudgetFunction {
 public:
  LinearBudget(Money amount, double t_max);

  void Reset(Money amount, double t_max) {
    amount_ = amount;
    set_t_max(t_max);
  }

 protected:
  Money Evaluate(double t) const override;

 private:
  Money amount_;
};

/// Fig. 1(b): convex descent — amount * (1 - t/t_max)^2; drops steeply for
/// small t, flattens near t_max (impatient user: speed is everything).
class ConvexBudget : public BudgetFunction {
 public:
  ConvexBudget(Money amount, double t_max);

  void Reset(Money amount, double t_max) {
    amount_ = amount;
    set_t_max(t_max);
  }

 protected:
  Money Evaluate(double t) const override;

 private:
  Money amount_;
};

/// Fig. 1(c): concave descent — amount * (1 - (t/t_max)^2); stays near the
/// full amount for small t, plunges near t_max (deadline user).
class ConcaveBudget : public BudgetFunction {
 public:
  ConcaveBudget(Money amount, double t_max);

  void Reset(Money amount, double t_max) {
    amount_ = amount;
    set_t_max(t_max);
  }

 protected:
  Money Evaluate(double t) const override;

 private:
  Money amount_;
};

/// Right-continuous step interpolation through user-supplied (time, price)
/// knots; the general form any combination of Fig. 1 shapes reduces to.
class PiecewiseBudget : public BudgetFunction {
 public:
  /// `knots` must be non-empty with strictly increasing times; the last
  /// knot's time is t_max. B(t) = price of the first knot with time >= t.
  static Result<PiecewiseBudget> Make(
      std::vector<std::pair<double, Money>> knots);

 protected:
  Money Evaluate(double t) const override;

 private:
  explicit PiecewiseBudget(std::vector<std::pair<double, Money>> knots);

  std::vector<std::pair<double, Money>> knots_;
};

}  // namespace cloudcache
