#include "src/catalog/tpch.h"

#include <gtest/gtest.h>

#include "src/catalog/sdss.h"
#include "src/util/units.h"

namespace cloudcache {
namespace {

TEST(TpchTest, HasEightTables) {
  const Catalog catalog = MakeTpchCatalog(1.0);
  EXPECT_EQ(catalog.num_tables(), 8u);
  for (const char* name : {"region", "nation", "supplier", "customer",
                           "part", "partsupp", "orders", "lineitem"}) {
    EXPECT_TRUE(catalog.FindTable(name).ok()) << name;
  }
}

TEST(TpchTest, SpecRowCountsAtSf1) {
  const Catalog catalog = MakeTpchCatalog(1.0);
  EXPECT_EQ(catalog.table(*catalog.FindTable("region")).row_count, 5u);
  EXPECT_EQ(catalog.table(*catalog.FindTable("nation")).row_count, 25u);
  EXPECT_EQ(catalog.table(*catalog.FindTable("supplier")).row_count,
            10'000u);
  EXPECT_EQ(catalog.table(*catalog.FindTable("customer")).row_count,
            150'000u);
  EXPECT_EQ(catalog.table(*catalog.FindTable("lineitem")).row_count,
            6'000'000u);
}

TEST(TpchTest, RowCountsScaleLinearly) {
  const Catalog sf1 = MakeTpchCatalog(1.0);
  const Catalog sf10 = MakeTpchCatalog(10.0);
  EXPECT_EQ(sf10.table(*sf10.FindTable("orders")).row_count,
            10 * sf1.table(*sf1.FindTable("orders")).row_count);
  // Dimension tables do not scale.
  EXPECT_EQ(sf10.table(*sf10.FindTable("nation")).row_count, 25u);
}

TEST(TpchTest, Sf1IsAboutOneGigabyte) {
  const Catalog catalog = MakeTpchCatalog(1.0);
  EXPECT_GT(catalog.TotalBytes(), 600ull * kMB);
  EXPECT_LT(catalog.TotalBytes(), 1600ull * kMB);
}

TEST(TpchTest, ScaleForBytesHitsTarget) {
  const uint64_t target = 50ull * kGB;
  const double sf = TpchScaleForBytes(target);
  const Catalog catalog = MakeTpchCatalog(sf);
  const double ratio =
      static_cast<double>(catalog.TotalBytes()) / static_cast<double>(target);
  EXPECT_NEAR(ratio, 1.0, 0.01);
}

TEST(TpchTest, PaperCatalogIsTwoPointFiveTerabytes) {
  const Catalog catalog = MakePaperTpchCatalog();
  const double tb = static_cast<double>(catalog.TotalBytes()) /
                    static_cast<double>(kTB);
  EXPECT_NEAR(tb, 2.5, 0.03);
}

TEST(TpchTest, KeyColumnsExist) {
  const Catalog catalog = MakeTpchCatalog(1.0);
  for (const char* column :
       {"lineitem.l_shipdate", "lineitem.l_extendedprice",
        "orders.o_orderdate", "customer.c_mktsegment", "part.p_partkey"}) {
    EXPECT_TRUE(catalog.FindColumn(column).ok()) << column;
  }
}

TEST(TpchTest, LineitemIsLargestTable) {
  const Catalog catalog = MakeTpchCatalog(2.0);
  const uint64_t lineitem_bytes =
      catalog.table(*catalog.FindTable("lineitem")).TotalBytes();
  for (const Table& table : catalog.tables()) {
    EXPECT_LE(table.TotalBytes(), lineitem_bytes) << table.name;
  }
}

TEST(TpchTest, DistinctFractionsValid) {
  const Catalog catalog = MakeTpchCatalog(1.0);
  for (ColumnId id = 0; id < catalog.num_columns(); ++id) {
    const Column& col = catalog.column(id);
    EXPECT_GT(col.distinct_fraction, 0.0) << col.name;
    EXPECT_LE(col.distinct_fraction, 1.0) << col.name;
  }
}

TEST(TpchTest, FractionalScaleFactorWorks) {
  const Catalog catalog = MakeTpchCatalog(0.01);
  EXPECT_EQ(catalog.table(*catalog.FindTable("lineitem")).row_count,
            60'000u);
}

TEST(SdssTest, HasFourTables) {
  const Catalog catalog = MakeSdssCatalog(1'000'000);
  EXPECT_EQ(catalog.num_tables(), 4u);
  for (const char* name : {"photoobj", "specobj", "field", "run"}) {
    EXPECT_TRUE(catalog.FindTable(name).ok()) << name;
  }
}

TEST(SdssTest, PhotoObjDominates) {
  const Catalog catalog = MakeSdssCatalog(10'000'000);
  const uint64_t photo =
      catalog.table(*catalog.FindTable("photoobj")).TotalBytes();
  EXPECT_GT(photo, catalog.TotalBytes() / 2);
}

TEST(SdssTest, DefaultIsTensOfGigabytes) {
  const Catalog catalog = MakeSdssCatalog();
  EXPECT_GT(catalog.TotalBytes(), 30ull * kGB);
  EXPECT_LT(catalog.TotalBytes(), 200ull * kGB);
}

TEST(SdssTest, SpectraScaleWithObjects) {
  const Catalog a = MakeSdssCatalog(2'000'000);
  const Catalog b = MakeSdssCatalog(4'000'000);
  EXPECT_GT(b.table(*b.FindTable("specobj")).row_count,
            a.table(*a.FindTable("specobj")).row_count);
}

}  // namespace
}  // namespace cloudcache
