#include "src/cluster/placement.h"

#include <gtest/gtest.h>

#include "src/structure/structure.h"
#include "tests/testing/fixtures.h"

namespace cloudcache {
namespace {

using cloudcache::testing::MakeTinyCatalog;
using cloudcache::testing::MakeTinyQuery;

class PlacementTest : public ::testing::Test {
 protected:
  PlacementTest()
      : catalog_(MakeTinyCatalog()),
        registry_(&catalog_),
        router_(&catalog_) {}

  /// Marks `qualified` ("table.column") resident in `cache`.
  void AddColumn(CacheState& cache, const std::string& qualified) {
    const ColumnId column = *catalog_.FindColumn(qualified);
    const StructureId id = registry_.Intern(ColumnKey(catalog_, column));
    ASSERT_TRUE(cache.Add(id, /*now=*/1.0).ok());
  }

  Catalog catalog_;
  StructureRegistry registry_;
  PlacementRouter router_;
};

TEST_F(PlacementTest, SingleNodeNeedsNoScoring) {
  CacheState only(&registry_);
  const Query query = MakeTinyQuery(catalog_);
  EXPECT_EQ(router_.Route(query, {&only}), 0u);
}

TEST_F(PlacementTest, MissingBytesCountsNonResidentAccessedColumns) {
  CacheState cache(&registry_);
  const Query query = MakeTinyQuery(catalog_);
  // Accessed columns: f_key, f_value (output) + f_date (predicate) —
  // three fact columns at 8 MB each.
  EXPECT_EQ(router_.MissingBytes(query, cache), 3u * 8'000'000u);
  AddColumn(cache, "fact.f_date");
  EXPECT_EQ(router_.MissingBytes(query, cache), 2u * 8'000'000u);
  AddColumn(cache, "fact.f_key");
  AddColumn(cache, "fact.f_value");
  EXPECT_EQ(router_.MissingBytes(query, cache), 0u);
}

TEST_F(PlacementTest, RoutesToTheNodeWithTheResidency) {
  CacheState cold(&registry_);
  CacheState warm(&registry_);
  AddColumn(warm, "fact.f_key");
  AddColumn(warm, "fact.f_value");
  AddColumn(warm, "fact.f_date");
  const Query query = MakeTinyQuery(catalog_);
  // Whatever position the warm node occupies wins.
  EXPECT_EQ(router_.Route(query, {&cold, &warm}), 1u);
  EXPECT_EQ(router_.Route(query, {&warm, &cold}), 0u);
  EXPECT_EQ(router_.Route(query, {&cold, &cold, &warm}), 2u);
}

TEST_F(PlacementTest, TieBreakIsAPureFunctionOfTheQuery) {
  CacheState a(&registry_);
  CacheState b(&registry_);
  CacheState c(&registry_);
  const std::vector<const CacheState*> nodes = {&a, &b, &c};
  const Query query = MakeTinyQuery(catalog_);
  const size_t first = router_.Route(query, nodes);
  // Same query, same (cold) residencies: the route never wavers, and a
  // freshly built router agrees — no hidden mutable state.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(router_.Route(query, nodes), first);
  }
  PlacementRouter other(&catalog_);
  EXPECT_EQ(other.Route(query, nodes), first);
}

TEST_F(PlacementTest, TemplatesSpreadOverTiedNodes) {
  CacheState a(&registry_);
  CacheState b(&registry_);
  CacheState c(&registry_);
  CacheState d(&registry_);
  const std::vector<const CacheState*> nodes = {&a, &b, &c, &d};
  // Distinct templates hash apart: over a handful of template ids at
  // least two different nodes are chosen (the cold-start traffic spread).
  std::vector<bool> hit(nodes.size(), false);
  for (int t = 0; t < 8; ++t) {
    Query query = MakeTinyQuery(catalog_);
    query.template_id = t;
    hit[router_.Route(query, nodes)] = true;
  }
  int distinct = 0;
  for (bool h : hit) distinct += h ? 1 : 0;
  EXPECT_GE(distinct, 2);
}

TEST_F(PlacementTest, AdHocQueriesRouteDeterministically) {
  CacheState a(&registry_);
  CacheState b(&registry_);
  Query query = MakeTinyQuery(catalog_);
  query.template_id = -1;  // Ad hoc: hashes on table + first column.
  const size_t first = router_.Route(query, {&a, &b});
  EXPECT_EQ(router_.Route(query, {&a, &b}), first);
}

TEST_F(PlacementTest, TieBreakIgnoresNodeScanOrder) {
  // Three nodes tied at the best score plus one worse-scoring spectator:
  // the tie-break must elect the same member of the tied set no matter
  // where the spectator sits in the scan (the hash walks tied nodes
  // only, so the pick is a function of the query and the tied set).
  CacheState w1(&registry_), w2(&registry_), w3(&registry_);
  CacheState cold(&registry_);
  AddColumn(w1, "fact.f_key");
  AddColumn(w2, "fact.f_key");
  AddColumn(w3, "fact.f_key");
  for (int t = 0; t < 8; ++t) {
    Query query = MakeTinyQuery(catalog_);
    query.template_id = t;
    // Which of the three tied warm nodes wins with no spectator at all.
    const size_t base = router_.Route(query, {&w1, &w2, &w3});
    ASSERT_LT(base, 3u);
    // The cold spectator shifts positions, never the elected node.
    EXPECT_EQ(router_.Route(query, {&cold, &w1, &w2, &w3}), base + 1);
    EXPECT_EQ(router_.Route(query, {&w1, &cold, &w2, &w3}),
              base == 0 ? 0u : base + 1);
    EXPECT_EQ(router_.Route(query, {&w1, &w2, &w3, &cold}), base);
  }
}

TEST_F(PlacementTest, ResidencyBeatsAffinity) {
  // A template's affinity hash may point at node 0, but once node 1 holds
  // the columns, cost wins: the route follows the residency.
  CacheState cold(&registry_);
  CacheState warm(&registry_);
  AddColumn(warm, "fact.f_key");
  for (int t = 0; t < 4; ++t) {
    Query query = MakeTinyQuery(catalog_);
    query.template_id = t;
    EXPECT_EQ(router_.Route(query, {&cold, &warm}), 1u);
  }
}

}  // namespace
}  // namespace cloudcache
