#include "src/persist/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace cloudcache::persist {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

SnapshotWriter MakeTwoSectionWriter(uint64_t config_hash = 0x1234) {
  SnapshotWriter writer(config_hash);
  Encoder* alpha = writer.AddSection("alpha");
  alpha->PutU64(42);
  alpha->PutString("economy");
  Encoder* beta = writer.AddSection("beta");
  beta->PutDouble(2.5);
  return writer;
}

TEST(SnapshotTest, InMemoryRoundTrip) {
  const SnapshotWriter writer = MakeTwoSectionWriter();
  Result<SnapshotReader> reader = SnapshotReader::FromBytes(writer.Serialize());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->config_hash(), 0x1234u);
  EXPECT_TRUE(reader->ExpectConfigHash(0x1234).ok());
  EXPECT_TRUE(reader->HasSection("alpha"));
  EXPECT_TRUE(reader->HasSection("beta"));
  EXPECT_FALSE(reader->HasSection("gamma"));

  Result<Decoder> alpha = reader->Section("alpha");
  ASSERT_TRUE(alpha.ok());
  uint64_t v = 0;
  std::string s;
  ASSERT_TRUE(alpha->ReadU64(&v).ok());
  ASSERT_TRUE(alpha->ReadString(&s).ok());
  EXPECT_EQ(v, 42u);
  EXPECT_EQ(s, "economy");
  EXPECT_TRUE(alpha->ExpectEnd().ok());

  Result<Decoder> beta = reader->Section("beta");
  ASSERT_TRUE(beta.ok());
  double d = 0;
  ASSERT_TRUE(beta->ReadDouble(&d).ok());
  EXPECT_EQ(d, 2.5);
}

TEST(SnapshotTest, MissingSectionIsNotFound) {
  Result<SnapshotReader> reader =
      SnapshotReader::FromBytes(MakeTwoSectionWriter().Serialize());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->Section("gamma").status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, FileRoundTripAndAtomicOverwrite) {
  const std::string path = TempPath("snapshot_test.snap");
  ASSERT_TRUE(MakeTwoSectionWriter(7).WriteToFile(path).ok());
  // Overwrite with different contents: the rename must replace wholesale.
  SnapshotWriter second(9);
  second.AddSection("only")->PutU64(1);
  ASSERT_TRUE(second.WriteToFile(path).ok());
  Result<SnapshotReader> reader = SnapshotReader::FromFile(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->config_hash(), 9u);
  EXPECT_FALSE(reader->HasSection("alpha"));
  EXPECT_TRUE(reader->HasSection("only"));
  // No temp file left behind.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  Result<SnapshotReader> reader =
      SnapshotReader::FromFile(TempPath("no_such_snapshot.snap"));
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, ForeignConfigHashIsRejected) {
  Result<SnapshotReader> reader =
      SnapshotReader::FromBytes(MakeTwoSectionWriter(0x1234).Serialize());
  ASSERT_TRUE(reader.ok());
  const Status status = reader->ExpectConfigHash(0x9999);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  // The message names both hashes so the operator can see which side is
  // stale.
  EXPECT_NE(status.message().find("different configuration"),
            std::string::npos)
      << status.ToString();
}

TEST(SnapshotTest, BadMagicIsRejected) {
  std::vector<uint8_t> bytes = MakeTwoSectionWriter().Serialize();
  bytes[0] ^= 0xFF;
  Result<SnapshotReader> reader = SnapshotReader::FromBytes(std::move(bytes));
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, VersionSkewIsRejectedCleanly) {
  // A snapshot stamped with a newer format version must be refused with a
  // descriptive Status — not misparsed by a reader that only speaks the
  // current layout. The version field is the u32 after the magic.
  for (uint32_t skew : {kSnapshotFormatVersion + 1, 0u, 0xFFu}) {
    std::vector<uint8_t> bytes = MakeTwoSectionWriter().Serialize();
    for (int i = 0; i < 4; ++i) {
      bytes[4 + static_cast<size_t>(i)] =
          static_cast<uint8_t>(skew >> (8 * i));
    }
    Result<SnapshotReader> reader =
        SnapshotReader::FromBytes(std::move(bytes));
    ASSERT_FALSE(reader.ok()) << "version " << skew;
    EXPECT_EQ(reader.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(reader.status().message().find("version"), std::string::npos)
        << reader.status().ToString();
  }
}

TEST(SnapshotTest, PayloadCorruptionFailsTheSectionCrc) {
  const std::vector<uint8_t> good = MakeTwoSectionWriter().Serialize();
  // Flip one bit in the last byte (inside the final section's payload):
  // the per-section CRC must catch it at load time.
  std::vector<uint8_t> bytes = good;
  bytes.back() ^= 0x01;
  Result<SnapshotReader> reader = SnapshotReader::FromBytes(std::move(bytes));
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, TruncationAtEveryByteIsAnError) {
  const std::vector<uint8_t> good = MakeTwoSectionWriter().Serialize();
  for (size_t cut = 0; cut < good.size(); ++cut) {
    std::vector<uint8_t> bytes(good.begin(),
                               good.begin() + static_cast<long>(cut));
    Result<SnapshotReader> reader =
        SnapshotReader::FromBytes(std::move(bytes));
    EXPECT_FALSE(reader.ok()) << "prefix of " << cut << " bytes parsed";
  }
}

}  // namespace
}  // namespace cloudcache::persist
