#include "src/cluster/cluster.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/structure/structure.h"
#include "tests/testing/fixtures.h"

namespace cloudcache {
namespace {

using cloudcache::testing::MakeRoundPrices;
using cloudcache::testing::MakeTinyCatalog;
using cloudcache::testing::MakeTinyQuery;

/// Drives a ClusterScheme directly (no simulator) so the scale-in and
/// migration mechanics can be pinned with hand-placed residency: the
/// integration suite covers routed fleets under the paper workload, where
/// a cold node is organically empty and migration has nothing to move.
class ClusterSchemeTest : public ::testing::Test {
 protected:
  ClusterSchemeTest()
      : catalog_(MakeTinyCatalog()), prices_(MakeRoundPrices()) {}

  ClusterScheme::NodeFactory EconFactory() {
    return [this](uint32_t ordinal) -> std::unique_ptr<Scheme> {
      EconScheme::Config config = EconScheme::EconCheapConfig();
      config.seed = 7 + ordinal;
      config.economy.initial_credit = Money::FromDollars(50);
      config.economy.conservative_provider = false;
      config.economy.model_build_latency = false;
      return std::make_unique<EconScheme>(&catalog_, &prices_,
                                          std::vector<StructureKey>{},
                                          std::move(config));
    };
  }

  /// Elastic options tight enough to act within a few hundred queries.
  ClusterOptions TwoNodeElastic() {
    ClusterOptions options;
    options.nodes = 2;
    options.elastic = true;
    options.migration_recency_seconds = 1e9;  // Everything survives.
    options.elasticity.check_interval_queries = 50;
    options.elasticity.sustain_windows = 2;
    options.elasticity.cooldown_windows = 1;
    options.elasticity.cold_share = 0.5;
    options.elasticity.max_nodes = 2;
    return options;
  }

  /// Pins every accessed column of the tiny query onto `node`, so the
  /// router's cost estimate sends all tiny-query traffic there.
  void WarmNodeForTinyQuery(Scheme& node) {
    for (const char* name : {"fact.f_key", "fact.f_value", "fact.f_date"}) {
      ASSERT_TRUE(
          node.AdoptStructure(ColumnKey(catalog_, *catalog_.FindColumn(name)),
                              /*now=*/0.0)
              .ok());
    }
  }

  Catalog catalog_;
  PriceList prices_;
};

TEST_F(ClusterSchemeTest, ReleasesTheColdNodeAndMigratesSurvivors) {
  ClusterScheme cluster(&catalog_, &prices_, TwoNodeElastic(),
                        EconFactory());
  ASSERT_EQ(cluster.num_nodes(), 2u);
  EXPECT_EQ(cluster.RentedNodes(), 1u);

  // Node 0 holds everything the query needs; node 1 holds an unrelated
  // dimension column it recently used. All traffic then routes to node 0,
  // node 1 goes sustained-cold, and its column must survive the release
  // by moving to node 0.
  WarmNodeForTinyQuery(cluster.mutable_node(0));
  const ColumnId dim_column = *catalog_.FindColumn("dim.d_key");
  ASSERT_TRUE(cluster.mutable_node(1)
                  .AdoptStructure(ColumnKey(catalog_, dim_column), 0.0)
                  .ok());
  EXPECT_FALSE(cluster.node(0).cache().ColumnResident(dim_column));

  for (int i = 0; i < 200; ++i) {
    const Query query = MakeTinyQuery(catalog_, 0.01, i);
    Query timed = query;
    timed.arrival_time = static_cast<double>(i);
    cluster.OnQuery(timed, timed.arrival_time);
    if (cluster.num_nodes() == 1) break;
  }

  ASSERT_EQ(cluster.num_nodes(), 1u);
  EXPECT_EQ(cluster.RentedNodes(), 0u);
  // The survivor column lives on in node 0's cache.
  EXPECT_TRUE(cluster.node(0).cache().ColumnResident(dim_column));

  ClusterMetrics shape;
  cluster.DescribeCluster(&shape);
  EXPECT_TRUE(shape.active);
  EXPECT_EQ(shape.final_nodes, 1u);
  EXPECT_EQ(shape.peak_nodes, 2u);
  EXPECT_EQ(shape.scale_in_events, 1u);
  EXPECT_EQ(shape.scale_out_events, 0u);
  EXPECT_EQ(shape.migrations, 1u);
  ASSERT_EQ(shape.nodes.size(), 1u);
  EXPECT_EQ(shape.nodes[0].ordinal, 0u);
}

TEST_F(ClusterSchemeTest, ColdStructuresDieWithTheirNode) {
  ClusterOptions options = TwoNodeElastic();
  options.migration_recency_seconds = 10.0;  // Tight survivor window.
  ClusterScheme cluster(&catalog_, &prices_, options, EconFactory());

  WarmNodeForTinyQuery(cluster.mutable_node(0));
  const ColumnId dim_column = *catalog_.FindColumn("dim.d_key");
  // Last used at t=0; by the time the release fires (t > 100) the column
  // is far outside the 10 s recency window.
  ASSERT_TRUE(cluster.mutable_node(1)
                  .AdoptStructure(ColumnKey(catalog_, dim_column), 0.0)
                  .ok());

  for (int i = 0; i < 200 && cluster.num_nodes() > 1; ++i) {
    Query query = MakeTinyQuery(catalog_, 0.01, i);
    query.arrival_time = static_cast<double>(i);
    cluster.OnQuery(query, query.arrival_time);
  }

  ASSERT_EQ(cluster.num_nodes(), 1u);
  EXPECT_FALSE(cluster.node(0).cache().ColumnResident(dim_column));
  ClusterMetrics shape;
  cluster.DescribeCluster(&shape);
  EXPECT_EQ(shape.migrations, 0u);
}

TEST_F(ClusterSchemeTest, ReleaseAbsorbsTheVictimsCredit) {
  ClusterScheme cluster(&catalog_, &prices_, TwoNodeElastic(),
                        EconFactory());
  WarmNodeForTinyQuery(cluster.mutable_node(0));

  const Money before = cluster.credit();
  Money victim_credit;
  for (int i = 0; i < 200 && cluster.num_nodes() > 1; ++i) {
    victim_credit = cluster.node(1).credit();
    Query query = MakeTinyQuery(catalog_, 0.01, i);
    query.arrival_time = static_cast<double>(i);
    cluster.OnQuery(query, query.arrival_time);
  }
  ASSERT_EQ(cluster.num_nodes(), 1u);
  EXPECT_FALSE(victim_credit.IsZero());
  // The fleet's total credit never drops at the release boundary: the
  // victim's till moved into the survivor (revenue earned during the
  // loop only adds on top).
  EXPECT_GE(cluster.credit().micros(), before.micros());
}

TEST_F(ClusterSchemeTest, FixedFleetNeverScales) {
  ClusterOptions options = TwoNodeElastic();
  options.elastic = false;  // Same knobs, controller disengaged.
  ClusterScheme cluster(&catalog_, &prices_, options, EconFactory());
  WarmNodeForTinyQuery(cluster.mutable_node(0));

  for (int i = 0; i < 200; ++i) {
    Query query = MakeTinyQuery(catalog_, 0.01, i);
    query.arrival_time = static_cast<double>(i);
    cluster.OnQuery(query, query.arrival_time);
  }
  EXPECT_EQ(cluster.num_nodes(), 2u);
  ClusterMetrics shape;
  cluster.DescribeCluster(&shape);
  EXPECT_EQ(shape.scale_in_events, 0u);
  EXPECT_EQ(shape.scale_out_events, 0u);
}

}  // namespace
}  // namespace cloudcache
