#include "src/cache/candidate_pool.h"

#include <iterator>

#include "src/util/logging.h"

namespace cloudcache {

CandidatePool::CandidatePool(size_t capacity) : capacity_(capacity) {
  CLOUDCACHE_CHECK_GE(capacity, 1u);
}

void CandidatePool::SetVictimScorer(
    std::function<double(StructureId)> scorer, size_t window) {
  victim_scorer_ = std::move(scorer);
  victim_window_ = window == 0 ? 1 : window;
}

StructureId CandidatePool::PopVictim() {
  // Classic LRU: the coldest entry. With a scorer, search the cold tail
  // for the lowest score; a tie keeps the colder entry so that equal
  // scores reproduce LRU exactly. The front entry — the candidate whose
  // Touch caused this overflow — is never a victim.
  auto victim = std::prev(entries_.end());
  if (victim_scorer_ && victim != entries_.begin()) {
    double best = victim_scorer_(victim->id);
    auto it = victim;
    for (size_t seen = 1; seen < victim_window_; ++seen) {
      --it;
      if (it == entries_.begin()) break;
      const double score = victim_scorer_(it->id);
      if (score < best) {
        best = score;
        victim = it;
      }
    }
  }
  const StructureId id = victim->id;
  index_.erase(id);
  entries_.erase(victim);
  return id;
}

const std::vector<StructureId>& CandidatePool::Touch(StructureId id,
                                                    SimTime now) {
  evicted_.clear();
  auto it = index_.find(id);
  if (it != index_.end()) {
    it->second->last_touch = now;
    entries_.splice(entries_.begin(), entries_, it->second);
    return evicted_;
  }
  entries_.push_front(Entry{id, now});
  index_[id] = entries_.begin();
  while (entries_.size() > capacity_) {
    if (!victim_scorer_) {
      // Classic strict LRU stays on the original tight path.
      evicted_.push_back(entries_.back().id);
      index_.erase(entries_.back().id);
      entries_.pop_back();
    } else {
      evicted_.push_back(PopVictim());
    }
  }
  return evicted_;
}

void CandidatePool::Erase(StructureId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  entries_.erase(it->second);
  index_.erase(it);
}

bool CandidatePool::Contains(StructureId id) const {
  return index_.count(id) > 0;
}

std::vector<StructureId> CandidatePool::MruOrder() const {
  std::vector<StructureId> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.id);
  return out;
}

}  // namespace cloudcache
