#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/cache/cache_state.h"
#include "src/cost/cost_model.h"
#include "src/econ/budget.h"
#include "src/econ/economy.h"
#include "src/query/query.h"
#include "src/query/templates.h"
#include "src/structure/structure.h"
#include "src/util/money.h"
#include "src/util/rng.h"

namespace cloudcache {

/// How a user's budget function is synthesized per query in simulation.
///
/// The paper's experiments have "the user define a step preference
/// function B_Q and accept query execution in the back-end": we anchor the
/// budget to the quoted back-end plan (the service every user can always
/// buy) and scale it.
struct BudgetModelOptions {
  enum class Shape { kStep, kLinear, kConvex, kConcave };
  Shape shape = Shape::kStep;
  /// Budget amount = multiplier x the back-end plan's price. Centered at
  /// 1.05 so the jitter makes budgets straddle the quoted back-end price:
  /// queries above it land in cases B/C (profit, Eq. 2 regret toward
  /// faster service), queries below land in case A (Eq. 1 regret toward
  /// cheaper service) — the user still "accepts query execution in the
  /// back-end" as in Section VII-A.
  double price_multiplier = 1.05;
  /// t_max = multiplier x the back-end plan's response time.
  double tmax_multiplier = 2.5;
  /// Uniform +/- jitter applied to price_multiplier per query (users are
  /// not identical).
  double jitter = 0.25;
};

/// Per-tenant override of the budget synthesizer's shape: scales the
/// price/tmax multipliers for one tenant, so a multi-tenant run can model
/// heterogeneous users directly — a tenant with price_scale well below 1
/// is genuinely unmonetizable (its budgets rarely cover even the back-end
/// quote), the population the admission controller exists to recognize.
struct TenantBudgetShape {
  uint32_t tenant = 0;
  /// Multiplies BudgetModelOptions::price_multiplier for this tenant.
  double price_scale = 1.0;
  /// Multiplies BudgetModelOptions::tmax_multiplier for this tenant.
  double tmax_scale = 1.0;
};

/// Reusable storage for BudgetModel::MakeInto: the synthesized function
/// object is recycled across queries whenever the requested shape matches
/// the one already held, so steady-state budget synthesis allocates
/// nothing.
struct BudgetScratch {
  BudgetModelOptions::Shape shape = BudgetModelOptions::Shape::kStep;
  std::unique_ptr<BudgetFunction> fn;
};

/// Synthesizes per-query budget functions from a reference quote.
class BudgetModel {
 public:
  explicit BudgetModel(BudgetModelOptions options) : options_(options) {}

  /// Builds the budget for a query whose back-end quote is
  /// (reference_price, reference_seconds).
  std::unique_ptr<BudgetFunction> Make(Money reference_price,
                                       double reference_seconds,
                                       Rng& rng) const;

  /// Allocation-free form: parameters land in `scratch`'s recycled
  /// function object (same rng draws, same values as Make). The returned
  /// reference is valid until the next MakeInto on the same scratch.
  const BudgetFunction& MakeInto(Money reference_price,
                                 double reference_seconds, Rng& rng,
                                 BudgetScratch* scratch) const;

  const BudgetModelOptions& options() const { return options_; }

 private:
  BudgetModelOptions options_;
};

/// What a scheme reports back to the simulator for one query. All resource
/// quantities are *raw* (seconds, bytes, ops); the simulator prices them
/// at the metered rates, so a scheme cannot hide spending by pricing it at
/// zero internally.
struct ServedQuery {
  bool served = false;
  /// Physical shape of the executed plan.
  PlanSpec spec;
  /// Execution estimate of the executed plan (times are price-independent).
  ExecutionEstimate execution;
  /// Raw resources consumed by structures built while handling this query.
  BuildUsage build_usage;
  /// Number of structures built / evicted.
  uint32_t investments = 0;
  uint32_t evictions = 0;
  /// Economy-only: what the user paid and the cloud's margin.
  Money payment;
  Money profit;
  /// Economy-only: which budget case the query fell into.
  BudgetCase budget_case = BudgetCase::kCaseB;
  bool has_budget_case = false;
  /// Economy-only: the serving tenant was under admission throttling
  /// (served and billed normally, regret unbooked).
  bool throttled = false;
};

/// Cluster shape report (src/cluster/metrics.h); forward-declared so the
/// scheme layer does not depend on the cluster layer's headers.
struct ClusterMetrics;

/// A caching scheme the simulator can drive: the four contenders of
/// Section VII-A all implement this.
class Scheme {
 public:
  virtual ~Scheme() = default;

  virtual const std::string& name() const = 0;

  /// Serves one query arriving at `now` (non-decreasing across calls).
  virtual ServedQuery OnQuery(const Query& query, SimTime now) = 0;

  /// Cache contents (for single-node reporting; the anchor node of a
  /// cluster). Rent metering goes through the Total* views below so a
  /// multi-node scheme is billed for every node it operates.
  virtual const CacheState& cache() const = 0;

  /// Cloud credit CR, if the scheme runs an economy (summed over nodes
  /// for a cluster).
  virtual Money credit() const { return Money(); }

  /// Regret the economy currently holds on behalf of `tenant` (zero for
  /// schemes without an economy or without tenant attribution).
  virtual Money TenantRegret(uint32_t tenant) const {
    (void)tenant;
    return Money();
  }

  /// Books a metered infrastructure bill against the scheme's account (a
  /// no-op for schemes without an account; a cluster bills the node that
  /// served the most recent query).
  virtual void ChargeExpenditure(Money amount, SimTime now) {
    (void)amount;
    (void)now;
  }

  // --- Cluster-aware metering surface. Single-node schemes inherit the
  // defaults, which read the one cache — the simulator always meters
  // through these, so the arithmetic (and the bits) of single-node runs
  // is exactly the pre-cluster metering.

  /// Disk bytes resident across every node the scheme operates.
  virtual uint64_t TotalResidentBytes() const {
    return cache().resident_bytes();
  }
  /// Extra CPU nodes booted across every node the scheme operates.
  virtual uint32_t TotalExtraCpuNodes() const {
    return cache().extra_cpu_nodes();
  }
  /// Cluster cache nodes rented beyond the always-on coordinator; each is
  /// billed at the node-reservation rate times the cluster's rent
  /// multiplier. 0 for single-node schemes, so their rent metering is
  /// untouched.
  virtual uint32_t RentedNodes() const { return 0; }

  /// Standing (unmonetized) regret the scheme's economy holds — the
  /// elasticity controller's scale-out signal. Zero without an economy.
  virtual Money StandingRegret() const { return Money(); }

  /// Builds `key` in this scheme's cache, paying from its own account
  /// (cluster scale-in migrates surviving structures through this).
  /// Unimplemented for schemes without an economy.
  virtual Status AdoptStructure(const StructureKey& key, SimTime now) {
    (void)key;
    (void)now;
    return Status::FailedPrecondition("scheme cannot adopt structures");
  }

  /// Deposits a released node's remaining credit into this scheme's
  /// account (no-op without an account), conserving the cluster's books
  /// across scale-in.
  virtual void AbsorbCredit(Money amount, SimTime now) {
    (void)amount;
    (void)now;
  }

  /// Fills the cluster shape of SimMetrics at run end. The default leaves
  /// `out` untouched (ClusterMetrics::active stays false), so single-node
  /// runs never acquire a cluster footprint. Implementations must not
  /// touch `out->node_rent_dollars` — the simulator owns that field.
  virtual void DescribeCluster(ClusterMetrics* out) const { (void)out; }

  // --- Checkpoint surface. Every scheme MakeScheme can construct
  // overrides all three with a bit-exact save -> restore -> continue round
  // trip; the defaults opt out (test doubles carry no restorable state),
  // and the simulator refuses to checkpoint a scheme that does not
  // support it rather than writing an empty section.

  /// Attaches a structured economic event tracer (nullptr detaches);
  /// `node_ordinal` stamps the records. Observability-only — attaching a
  /// tracer must never change a decision. The default ignores it (schemes
  /// without an economy emit no economic events); a cluster forwards to
  /// every node it operates, present and future.
  virtual void SetEventTracer(obs::EventTracer* tracer,
                              uint32_t node_ordinal) {
    (void)tracer;
    (void)node_ordinal;
  }

  /// Whether SaveState/RestoreState round-trip this scheme's full state.
  virtual bool SupportsCheckpoint() const { return false; }
  /// Serializes the scheme's complete run state (registry interning
  /// included — interning order is query-history-dependent).
  virtual void SaveState(persist::Encoder* enc) const { (void)enc; }
  /// Restores into a scheme freshly constructed from the identical
  /// configuration. On error the scheme is unusable; discard it.
  virtual Status RestoreState(persist::Decoder* dec) {
    (void)dec;
    return Status::FailedPrecondition(
        "scheme does not support checkpoint/restore");
  }
};

/// The four schemes of the paper's evaluation (Section VII-A).
enum class SchemeKind {
  kBypassYield,  // "net-only": bypass-yield caching [14].
  kEconCol,      // Economy, columns only (no indexes, no parallelism).
  kEconCheap,    // Economy, full structure set, cheapest-plan selection.
  kEconFast,     // Economy, full structure set, fastest-plan selection.
};

const char* SchemeKindToString(SchemeKind kind);

/// Wraps an EconomyEngine as a Scheme: synthesizes the user budget per
/// query from the back-end quote, forwards to the engine, and reports raw
/// resource usage of investments.
class EconScheme : public Scheme {
 public:
  struct Config {
    std::string name = "econ-cheap";
    EnumeratorOptions enumerator;
    EconomyOptions economy;
    BudgetModelOptions budget;
    uint64_t seed = 7;
    /// Tenant identities to provision. 0 (the default) is the paper's
    /// single user on exactly the pre-tenancy code path. Any n >= 1
    /// provisions n identities: per-tenant budget synthesizers (same
    /// shape knobs, independent jitter streams seeded
    /// MixSeed(seed, tenant); tenant 0 keeps `seed` itself, so its
    /// stream IS the classic user's) and per-tenant regret attribution
    /// in the engine. The multi-tenant simulation path provisions even a
    /// single tenant, so its metrics slice carries real attribution;
    /// once provisioned, every query's tenant_id must be in range.
    uint32_t tenants = 0;
    /// Per-tenant budget-shape overrides (requires tenants >= 1; each
    /// entry's tenant must be in range). Tenants without an entry keep
    /// the base `budget` shape. Empty (the default) keeps the one shared
    /// synthesizer — the pre-override code path, bit for bit.
    std::vector<TenantBudgetShape> tenant_budgets;
  };

  /// Presets matching the paper's variants.
  static Config EconColConfig();
  static Config EconCheapConfig();
  static Config EconFastConfig();

  EconScheme(const Catalog* catalog, const PriceList* decision_prices,
             const std::vector<StructureKey>& index_candidates,
             Config config);

  const std::string& name() const override { return config_.name; }
  ServedQuery OnQuery(const Query& query, SimTime now) override;
  const CacheState& cache() const override { return engine_->cache(); }
  Money credit() const override { return engine_->account().credit(); }
  Money TenantRegret(uint32_t tenant) const override {
    return engine_->TenantRegretTotal(tenant);
  }
  void ChargeExpenditure(Money amount, SimTime now) override;
  Money StandingRegret() const override { return engine_->regret().Total(); }
  Status AdoptStructure(const StructureKey& key, SimTime now) override {
    return engine_->ForceBuild(key, now);
  }
  void AbsorbCredit(Money amount, SimTime now) override {
    engine_->mutable_account().DepositRevenue(amount, now);
  }
  void SetEventTracer(obs::EventTracer* tracer,
                      uint32_t node_ordinal) override {
    engine_->SetEventTracer(tracer, node_ordinal);
  }
  bool SupportsCheckpoint() const override { return true; }
  void SaveState(persist::Encoder* enc) const override;
  Status RestoreState(persist::Decoder* dec) override;

  EconomyEngine& engine() { return *engine_; }
  const EconomyEngine& engine() const { return *engine_; }

 private:
  Config config_;
  StructureRegistry registry_;
  CostModel model_;
  std::unique_ptr<EconomyEngine> engine_;
  BudgetModel budget_model_;
  /// Per-tenant budget synthesizers, populated only when
  /// config_.tenant_budgets carries overrides; otherwise every tenant
  /// shares budget_model_ exactly as before the overrides existed.
  std::vector<BudgetModel> tenant_budget_models_;
  Rng rng_;
  /// Per-tenant budget jitter streams (config_.tenants > 1 only): tenant
  /// t's budgets are a pure function of MixSeed(config seed, t), so a
  /// tenant's willingness to pay does not depend on how the other streams
  /// interleave. Tenant 0 reuses `rng_`'s seed — the classic user.
  std::vector<Rng> tenant_rngs_;
  /// Reused pre-query column-residency snapshot (build-usage metering).
  std::vector<bool> residency_scratch_;
  /// Recycled per-query budget function (all tenant models share the
  /// config's shape, so one scratch serves every stream).
  BudgetScratch budget_scratch_;
};

/// Builds the scheme `kind` with the paper's configuration: the economy
/// variants decide at full EC2 prices; bypass-yield decides at
/// network-only prices with a cache capped at 30% of the database.
std::unique_ptr<Scheme> MakeScheme(SchemeKind kind, const Catalog* catalog,
                                   const PriceList* decision_prices,
                                   const std::vector<StructureKey>& indexes,
                                   uint64_t seed);

}  // namespace cloudcache
