// The multi-tenant simulator is an event-driven generalization of the
// paper's single-stream loop, and three properties pin it down:
//
//  1. Collapse: with one tenant, the merged schedule IS the single
//     stream, so the event-driven path must reproduce the classic path's
//     SimMetrics bit for bit — every count, micro-dollar, double, and
//     timeline byte (the `--tenants=1` equivalence of the roadmap).
//  2. Determinism: an N-tenant run is a pure function of its
//     configuration — repeated runs, and runs fanned over any sweep
//     thread count, replay identically.
//  3. Shared-cache invariants survive tenancy: the plan-skeleton cache
//     must stay a pure memoization when residency mutations come from
//     many tenants' queries (epoch bumps from any tenant invalidate all),
//     and the per-tenant slices must partition the run-wide aggregates.

#include <gtest/gtest.h>

#include "src/catalog/tpch.h"
#include "src/sim/experiment.h"
#include "src/sim/sweep.h"
#include "tests/testing/metrics_equal.h"

namespace cloudcache {
namespace {

using cloudcache::testing::ExpectBitIdenticalMetrics;
using cloudcache::testing::ExpectBitIdenticalTenants;

class MultiTenantEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog(MakeTpchCatalog(100.0));
    templates_ = new std::vector<QueryTemplate>(MakeTpchTemplates());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
    delete templates_;
    templates_ = nullptr;
  }

  /// Active economy configuration (investments and failure evictions
  /// within the short run) so the shared cache actually churns under the
  /// merged stream.
  static ExperimentConfig ActiveConfig(SchemeKind scheme, double interval) {
    ExperimentConfig config;
    config.scheme = scheme;
    config.workload.interarrival_seconds = interval;
    config.workload.seed = 29;
    config.seed = 30;
    config.sim.num_queries = 1'500;
    config.customize_econ = [](EconScheme::Config& econ) {
      econ.economy.regret_fraction_a = 0.001;
      econ.economy.conservative_provider = false;
      econ.economy.initial_credit = Money::FromDollars(20);
      econ.economy.model_build_latency = false;
    };
    return config;
  }

  static Catalog* catalog_;
  static std::vector<QueryTemplate>* templates_;
};

Catalog* MultiTenantEquivalenceTest::catalog_ = nullptr;
std::vector<QueryTemplate>* MultiTenantEquivalenceTest::templates_ = nullptr;

TEST_F(MultiTenantEquivalenceTest, SingleTenantEventPathBitIdentical) {
  // Every scheme, two arrival spacings: the forced event-driven path with
  // one tenant must replay the classic single-stream loop exactly.
  for (SchemeKind scheme : PaperSchemes()) {
    for (double interval : {1.0, 10.0}) {
      SCOPED_TRACE(std::string(SchemeKindToString(scheme)) + " @ " +
                   std::to_string(interval) + "s");
      ExperimentConfig config = ActiveConfig(scheme, interval);
      const SimMetrics classic = RunExperiment(*catalog_, *templates_, config);
      config.tenancy.force_event_path = true;
      const SimMetrics merged = RunExperiment(*catalog_, *templates_, config);
      ExpectBitIdenticalMetrics(classic, merged);
      // The classic path carries no tenant slice; the merged path carries
      // exactly one, and it must restate the aggregates.
      EXPECT_TRUE(classic.tenants.empty());
      ASSERT_EQ(merged.tenants.size(), 1u);
      EXPECT_EQ(merged.tenants[0].queries, merged.queries);
      EXPECT_EQ(merged.tenants[0].served, merged.served);
      EXPECT_EQ(merged.tenants[0].revenue.micros(), merged.revenue.micros());
    }
  }
}

TEST_F(MultiTenantEquivalenceTest, MultiTenantRepeatedRunsBitIdentical) {
  ExperimentConfig config = ActiveConfig(SchemeKind::kEconCheap, 5.0);
  config.tenancy.tenants = 4;
  config.tenancy.traffic_skew = 1.0;
  const SimMetrics first = RunExperiment(*catalog_, *templates_, config);
  const SimMetrics second = RunExperiment(*catalog_, *templates_, config);
  ExpectBitIdenticalMetrics(first, second);
  ExpectBitIdenticalTenants(first, second);
  // All four streams actually ran.
  for (const TenantMetrics& tenant : first.tenants) {
    EXPECT_GT(tenant.queries, 0u);
  }
}

TEST_F(MultiTenantEquivalenceTest, MultiTenantBitIdenticalAcrossSweepThreads) {
  // Multi-tenant cells through the sweep engine: the per-cell seed
  // discipline plus the per-tenant seed discipline must make the grid
  // bit-identical for any worker count.
  SweepSpec spec;
  spec.schemes = {SchemeKind::kEconCheap, SchemeKind::kEconFast};
  spec.interarrivals = {5.0, 30.0};
  spec.base = ActiveConfig(SchemeKind::kEconCheap, 5.0);
  spec.base.tenancy.tenants = 3;
  spec.base.tenancy.traffic_skew = 0.5;
  spec.seed_policy = SweepSpec::SeedPolicy::kPerCell;

  const std::vector<SweepResult> serial =
      RunSweep(*catalog_, *templates_, spec, /*n_threads=*/1);
  const std::vector<SweepResult> parallel =
      RunSweep(*catalog_, *templates_, spec, /*n_threads=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(serial[i].cell.label);
    EXPECT_EQ(serial[i].cell.seed, parallel[i].cell.seed);
    ExpectBitIdenticalMetrics(serial[i].metrics, parallel[i].metrics);
    ExpectBitIdenticalTenants(serial[i].metrics, parallel[i].metrics);
  }
}

TEST_F(MultiTenantEquivalenceTest, PlanCacheStaysPureUnderMultiTenancy) {
  // Residency mutations now come from four tenants' investments and
  // failure evictions interleaved through one cache; any of them must
  // bump the epoch the plan-skeleton cache keys on, or a stale skeleton
  // would diverge the runs.
  for (SchemeKind scheme :
       {SchemeKind::kEconCheap, SchemeKind::kEconFast}) {
    SCOPED_TRACE(SchemeKindToString(scheme));
    ExperimentConfig config = ActiveConfig(scheme, 5.0);
    config.tenancy.tenants = 4;
    config.tenancy.traffic_skew = 1.0;
    const auto base_customize = config.customize_econ;
    auto with_cache = [base_customize](bool enable) {
      return [base_customize, enable](EconScheme::Config& econ) {
        base_customize(econ);
        econ.enumerator.enable_plan_cache = enable;
      };
    };
    config.customize_econ = with_cache(true);
    const SimMetrics on = RunExperiment(*catalog_, *templates_, config);
    config.customize_econ = with_cache(false);
    const SimMetrics off = RunExperiment(*catalog_, *templates_, config);
    ExpectBitIdenticalMetrics(on, off);
    ExpectBitIdenticalTenants(on, off);
  }
}

TEST_F(MultiTenantEquivalenceTest, SingleTenantStaysClassicEvenWithPoliciesOn) {
  // The tenant-economics policies need a population to arbitrate
  // between: with one tenant they must be fully inert — a lone tenant
  // must never throttle itself, and breadth-weighted eviction has no
  // breadth to weigh — so the forced event path stays bit-identical to
  // the classic path even with both flags (and aggressive knobs) on.
  ExperimentConfig config = ActiveConfig(SchemeKind::kEconCheap, 5.0);
  const SimMetrics classic = RunExperiment(*catalog_, *templates_, config);

  ExperimentConfig forced = config;
  forced.tenancy.force_event_path = true;
  forced.tenancy.fair_eviction = true;
  forced.tenancy.admission = true;
  const auto base_customize = forced.customize_econ;
  forced.customize_econ = [base_customize](EconScheme::Config& econ) {
    base_customize(econ);
    econ.economy.admission.throttle_ratio = 0.001;
    econ.economy.admission.readmit_ratio = 0.0005;
    econ.economy.admission.min_regret = Money::FromMicros(1);
    econ.economy.eviction_breadth_slack = 25.0;
  };
  const SimMetrics merged = RunExperiment(*catalog_, *templates_, forced);
  ExpectBitIdenticalMetrics(classic, merged);
  EXPECT_EQ(merged.throttled, 0u);
}

TEST_F(MultiTenantEquivalenceTest, PolicyFlagsOffAreBitIdenticalToBaseline) {
  // The tenant-economics policies (fairness-weighted eviction, admission
  // control) ship off by default; with the flags off, a run must be bit
  // for bit the PR 3 baseline even when every policy *knob* is tuned —
  // this is the guard against a policy leaking into the flags-off path.
  ExperimentConfig config = ActiveConfig(SchemeKind::kEconCheap, 5.0);
  config.tenancy.tenants = 4;
  config.tenancy.traffic_skew = 1.0;
  const SimMetrics baseline = RunExperiment(*catalog_, *templates_, config);
  EXPECT_EQ(baseline.throttled, 0u);

  ExperimentConfig tuned = config;
  const auto base_customize = tuned.customize_econ;
  tuned.customize_econ = [base_customize](EconScheme::Config& econ) {
    base_customize(econ);
    // Aggressive knobs behind disabled switches: none of this may leak.
    econ.economy.eviction_breadth_slack = 25.0;
    econ.economy.eviction_aging_window = 64;
    econ.economy.admission.throttle_ratio = 0.001;
    econ.economy.admission.readmit_ratio = 0.0005;
    econ.economy.admission.min_regret = Money::FromMicros(1);
    econ.economy.admission.throttled_regret_scale = 0.9;
    econ.economy.admission.forfeit_standing_regret = false;
  };
  const SimMetrics tuned_run = RunExperiment(*catalog_, *templates_, tuned);
  ExpectBitIdenticalMetrics(baseline, tuned_run);
  ExpectBitIdenticalTenants(baseline, tuned_run);
}

TEST_F(MultiTenantEquivalenceTest, TenantSlicesPartitionAggregates) {
  ExperimentConfig config = ActiveConfig(SchemeKind::kEconCheap, 5.0);
  config.tenancy.tenants = 4;
  config.tenancy.traffic_skew = 1.0;
  const SimMetrics metrics = RunExperiment(*catalog_, *templates_, config);
  ASSERT_EQ(metrics.tenants.size(), 4u);

  uint64_t queries = 0, served = 0, in_cache = 0, in_backend = 0;
  uint64_t wan = 0, investments = 0, evictions = 0;
  uint64_t case_a = 0, case_b = 0, case_c = 0;
  int64_t response_count = 0;
  Money revenue, profit;
  double cpu = 0, network = 0, io = 0;
  for (const TenantMetrics& tenant : metrics.tenants) {
    queries += tenant.queries;
    served += tenant.served;
    in_cache += tenant.served_in_cache;
    in_backend += tenant.served_in_backend;
    wan += tenant.wan_bytes;
    investments += tenant.investments;
    evictions += tenant.evictions;
    case_a += tenant.case_a;
    case_b += tenant.case_b;
    case_c += tenant.case_c;
    response_count += tenant.response_seconds.count();
    revenue += tenant.revenue;
    profit += tenant.profit;
    cpu += tenant.operating_cost.cpu_dollars;
    network += tenant.operating_cost.network_dollars;
    io += tenant.operating_cost.io_dollars;
    // Disk rent is shared-infrastructure spending; no tenant is billed it.
    EXPECT_EQ(tenant.operating_cost.disk_dollars, 0.0);
  }
  // Counts and Money partition exactly.
  EXPECT_EQ(queries, metrics.queries);
  EXPECT_EQ(served, metrics.served);
  EXPECT_EQ(in_cache, metrics.served_in_cache);
  EXPECT_EQ(in_backend, metrics.served_in_backend);
  EXPECT_EQ(wan, metrics.wan_bytes);
  EXPECT_EQ(investments, metrics.investments);
  EXPECT_EQ(evictions, metrics.evictions);
  EXPECT_EQ(case_a, metrics.case_a);
  EXPECT_EQ(case_b, metrics.case_b);
  EXPECT_EQ(case_c, metrics.case_c);
  EXPECT_EQ(response_count, metrics.response_seconds.count());
  EXPECT_EQ(revenue.micros(), metrics.revenue.micros());
  EXPECT_EQ(profit.micros(), metrics.profit.micros());
  // Billed dollars partition the run-wide breakdown up to shared rent:
  // network and I/O are entirely per-query, CPU additionally carries the
  // run's node-reservation rent, disk is rent alone.
  EXPECT_NEAR(network, metrics.operating_cost.network_dollars,
              1e-9 * (1.0 + metrics.operating_cost.network_dollars));
  EXPECT_NEAR(io, metrics.operating_cost.io_dollars,
              1e-9 * (1.0 + metrics.operating_cost.io_dollars));
  EXPECT_LE(cpu, metrics.operating_cost.cpu_dollars +
                     1e-9 * (1.0 + metrics.operating_cost.cpu_dollars));
  EXPECT_GT(metrics.operating_cost.disk_dollars, 0.0);
}

}  // namespace
}  // namespace cloudcache
