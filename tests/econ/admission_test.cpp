#include "src/econ/admission.h"

#include <gtest/gtest.h>

namespace cloudcache {
namespace {

AdmissionOptions EnabledOptions() {
  AdmissionOptions options;
  options.enabled = true;
  options.throttle_ratio = 2.0;
  options.readmit_ratio = 1.0;
  options.min_regret = Money::FromDollars(1.0);
  return options;
}

TEST(AdmissionControllerTest, DisabledNeverThrottles) {
  AdmissionController controller{AdmissionOptions{}};
  controller.SetTenantCount(2);
  controller.RecordRegret(0, Money::FromDollars(1'000));
  EXPECT_FALSE(controller.Throttled(0));
  // Disabled controllers do not even accumulate.
  EXPECT_TRUE(controller.accrued(0).IsZero());
}

TEST(AdmissionControllerTest, ThrottlesWhenUnmonetizedRegretOutrunsRevenue) {
  AdmissionController controller{EnabledOptions()};
  controller.SetTenantCount(2);
  controller.RecordRevenue(0, Money::FromDollars(2.0));
  controller.RecordRegret(0, Money::FromDollars(3.0));
  // 3 < 2 * 2: under the ratio.
  EXPECT_FALSE(controller.Throttled(0));
  controller.RecordRegret(0, Money::FromDollars(2.0));
  // 5 > 2 * 2: throttled, and the transition is reported exactly once.
  bool newly = false;
  EXPECT_TRUE(controller.Throttled(0, &newly));
  EXPECT_TRUE(newly);
  EXPECT_TRUE(controller.Throttled(0, &newly));
  EXPECT_FALSE(newly);
  // The other tenant is unaffected.
  EXPECT_FALSE(controller.Throttled(1));
}

TEST(AdmissionControllerTest, FloorShieldsColdStartTenants) {
  AdmissionOptions options = EnabledOptions();
  options.min_regret = Money::FromDollars(10.0);
  AdmissionController controller{options};
  controller.SetTenantCount(1);
  // Infinite ratio (no revenue at all), but below the floor.
  controller.RecordRegret(0, Money::FromDollars(9.0));
  EXPECT_FALSE(controller.Throttled(0));
  controller.RecordRegret(0, Money::FromDollars(1.0));
  EXPECT_TRUE(controller.Throttled(0));
}

TEST(AdmissionControllerTest, RevenueGrowthReadmitsWithHysteresis) {
  AdmissionController controller{EnabledOptions()};
  controller.SetTenantCount(1);
  controller.RecordRevenue(0, Money::FromDollars(1.0));
  controller.RecordRegret(0, Money::FromDollars(3.0));
  EXPECT_TRUE(controller.Throttled(0));
  // Ratio falls to 3/2 — inside the hysteresis band, still throttled.
  controller.RecordRevenue(0, Money::FromDollars(1.0));
  EXPECT_TRUE(controller.Throttled(0));
  // Ratio reaches 3/3 = readmit_ratio: readmitted.
  controller.RecordRevenue(0, Money::FromDollars(1.0));
  EXPECT_FALSE(controller.Throttled(0));
}

TEST(AdmissionControllerTest, MonetizedRegretDoesNotCountAgainstTenant) {
  AdmissionController controller{EnabledOptions()};
  controller.SetTenantCount(1);
  controller.RecordRevenue(0, Money::FromDollars(2.0));
  controller.RecordRegret(0, Money::FromDollars(5.0));
  controller.RecordMonetized(0, /*structure=*/7, Money::FromDollars(4.0));
  EXPECT_EQ(controller.Unmonetized(0), Money::FromDollars(1.0));
  // 1 < 2 * 2 and the 5-dollar accrual is mostly monetized: admitted.
  EXPECT_FALSE(controller.Throttled(0));
}

TEST(AdmissionControllerTest, StructureFailureReclaimsMonetizedShares) {
  AdmissionController controller{EnabledOptions()};
  controller.SetTenantCount(2);
  controller.RecordRevenue(0, Money::FromDollars(2.0));
  controller.RecordRegret(0, Money::FromDollars(5.0));
  controller.RecordRegret(1, Money::FromDollars(1.0));
  controller.RecordMonetized(0, /*structure=*/7, Money::FromDollars(4.0));
  controller.RecordMonetized(1, /*structure=*/7, Money::FromDollars(1.0));
  EXPECT_FALSE(controller.Throttled(0));
  // The structure fails: both backers' shares return to unmonetized, and
  // tenant 0's 5 > 2 * 2 now trips the throttle.
  controller.OnStructureFailed(7);
  EXPECT_EQ(controller.Unmonetized(0), Money::FromDollars(5.0));
  EXPECT_EQ(controller.Unmonetized(1), Money::FromDollars(1.0));
  EXPECT_TRUE(controller.Throttled(0));
  // A second failure of the same id is a no-op (backing already
  // reclaimed), as is failure of a structure admission never saw.
  controller.OnStructureFailed(7);
  controller.OnStructureFailed(99);
  EXPECT_EQ(controller.Unmonetized(0), Money::FromDollars(5.0));
}

TEST(AdmissionControllerTest, SetTenantCountResetsState) {
  AdmissionController controller{EnabledOptions()};
  controller.SetTenantCount(1);
  controller.RecordRegret(0, Money::FromDollars(50.0));
  EXPECT_TRUE(controller.Throttled(0));
  controller.SetTenantCount(1);
  EXPECT_FALSE(controller.Throttled(0));
  EXPECT_TRUE(controller.accrued(0).IsZero());
}

TEST(AdmissionControllerTest, OutOfRangeTenantIsNeverThrottled) {
  AdmissionController controller{EnabledOptions()};
  controller.SetTenantCount(0);
  controller.RecordRegret(3, Money::FromDollars(50.0));
  EXPECT_FALSE(controller.Throttled(3));
}

}  // namespace
}  // namespace cloudcache
