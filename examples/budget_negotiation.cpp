// Budget negotiation: the three cases of Section IV-C, step by step.
//
// Drives a single EconomyEngine by hand with three hand-crafted users —
// a generous one whose budget covers every offered plan (case B), a
// deadline user whose concave budget collapses before the back-end can
// finish (case A via the time axis), and a pauper below every executable
// offer (case A via the price axis) — and prints the decision, the
// payment, and the regret the cloud recorded. This is the worked example
// of Fig. 2, ending with the investment the accumulated regret triggers.

#include <cstdio>
#include <memory>

#include "src/util/logging.h"
#include "src/catalog/tpch.h"
#include "src/econ/economy.h"
#include "src/query/templates.h"
#include "src/structure/index_advisor.h"
#include "src/util/rng.h"

using namespace cloudcache;

namespace {

void ShowOutcome(const Catalog& catalog, const EconomyEngine& engine,
                 const QueryOutcome& outcome) {
  std::printf("  -> case %s, %s\n",
              BudgetCaseToString(outcome.budget_case),
              outcome.served ? "served" : "declined by user");
  if (outcome.served) {
    std::printf("     executed %s\n", outcome.chosen.ToString().c_str());
    std::printf("     payment %s, cloud profit %s\n",
                outcome.payment.ToString().c_str(),
                outcome.profit.ToString().c_str());
  }
  const auto regrets = engine.regret().NonZeroDescending();
  std::printf("     regret ledger now holds %zu entries (total %s)\n",
              regrets.size(), engine.regret().Total().ToString().c_str());
  for (size_t i = 0; i < regrets.size() && i < 3; ++i) {
    std::printf("       %s -> %s\n",
                engine.cache()
                    .registry()
                    .key(regrets[i].first)
                    .ToString(catalog)
                    .c_str(),
                regrets[i].second.ToString().c_str());
  }
}

}  // namespace

int main() {
  const Catalog catalog = MakePaperTpchCatalog();
  Result<std::vector<ResolvedTemplate>> resolved =
      ResolveTemplates(catalog, MakeTpchTemplates());
  CLOUDCACHE_CHECK(resolved.ok());

  const PriceList prices = PriceList::AmazonEc2_2009();
  const CostModel model(&catalog, &prices);
  StructureRegistry registry(&catalog);
  EconomyOptions options;
  options.initial_credit = Money::FromDollars(100);
  options.model_build_latency = false;
  options.regret_fraction_a = 0.02;  // Invest within this short demo.
  EconomyEngine engine(&catalog, &registry, &model, EnumeratorOptions{},
                       options);
  engine.SetIndexCandidates(RecommendIndexes(catalog, *resolved, 65));

  // One result-heavy scan query (shipping_scan template).
  Rng rng(99);
  const Query query = InstantiateQuery((*resolved)[1], catalog, rng,
                                       /*template_id=*/1, /*query_id=*/1);
  PlanSpec backend_spec;
  backend_spec.access = PlanSpec::Access::kBackend;
  const ExecutionEstimate quote = model.EstimateExecution(query, backend_spec);
  std::printf(
      "query: shipping_scan, result %.1f MB; back-end quote %s at %.2fs\n\n",
      static_cast<double>(query.result_bytes) / 1e6,
      quote.cost.ToString().c_str(), quote.time_seconds);

  std::puts("[1] generous user: step budget at 3x the back-end quote");
  {
    StepBudget budget(quote.cost * 3.0, quote.time_seconds * 4);
    ShowOutcome(catalog, engine, engine.OnQuery(query, budget, 0.0));
  }

  std::puts(
      "\n[2] deadline user: concave budget that collapses before the "
      "back-end finishes");
  {
    ConcaveBudget budget(quote.cost * 1.2, quote.time_seconds * 1.05);
    ShowOutcome(catalog, engine, engine.OnQuery(query, budget, 10.0));
  }

  std::puts("\n[3] pauper: budget below every executable plan");
  {
    StepBudget budget(quote.cost * 0.1, quote.time_seconds * 4);
    ShowOutcome(catalog, engine, engine.OnQuery(query, budget, 20.0));
  }

  std::puts(
      "\n[4] the same pauper, 400 more times: regret accumulates toward"
      " the cheaper hypothetical structures until Eq. 3 trips");
  uint32_t investments = 0;
  for (int i = 0; i < 400; ++i) {
    const Query q = InstantiateQuery((*resolved)[1], catalog, rng, 1,
                                     static_cast<uint64_t>(100 + i));
    PlanSpec spec;
    spec.access = PlanSpec::Access::kBackend;
    const Money quote_i = model.EstimateExecution(q, spec).cost;
    StepBudget budget(quote_i * 0.1, 1e6);
    const QueryOutcome outcome =
        engine.OnQuery(q, budget, 30.0 + static_cast<double>(i) * 10.0);
    for (StructureId id : outcome.investments) {
      ++investments;
      std::printf("  query %3d: INVESTED in %s\n", i,
                  engine.cache().registry().key(id).ToString(catalog).c_str());
    }
  }
  std::printf(
      "\n%u investments made; cloud credit %s; the pauper's queries now "
      "run in the cache.\n",
      investments, engine.account().credit().ToString().c_str());
  return 0;
}
