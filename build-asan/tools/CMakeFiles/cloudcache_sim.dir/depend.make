# Empty dependencies file for cloudcache_sim.
# This may be replaced when dependencies are built.
