file(REMOVE_RECURSE
  "CMakeFiles/cloudcache_query_tests.dir/query/query_test.cpp.o"
  "CMakeFiles/cloudcache_query_tests.dir/query/query_test.cpp.o.d"
  "CMakeFiles/cloudcache_query_tests.dir/query/templates_test.cpp.o"
  "CMakeFiles/cloudcache_query_tests.dir/query/templates_test.cpp.o.d"
  "cloudcache_query_tests"
  "cloudcache_query_tests.pdb"
  "cloudcache_query_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudcache_query_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
