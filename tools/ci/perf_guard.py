#!/usr/bin/env python3
"""Perf-regression guard over the hot-path throughput snapshot.

Compares freshly produced BENCH_hotpath.json snapshots against the
committed baseline and fails (exit 1) when any scheme's aggregate_qps
dropped by more than --max-drop at equal settings. Settings (queries per
cell, scale, seed, plan-cache flag) must match between the files —
comparing runs of different shapes would be noise, so a mismatch is its
own error (exit 2) telling the committer to regenerate the baseline. A
scheme present in the fresh run(s) but absent from the baseline is the
same class of error: the baseline is stale and that scheme is riding CI
unguarded, so it too exits 2.

--fresh accepts several snapshots; each scheme is judged on its best
(maximum) qps across them. Smoke cells run in milliseconds, so a single
scheduler hiccup on a shared CI runner can dwarf the threshold — a real
regression slows every repetition, noise rarely does.

Usage:
  perf_guard.py --baseline BENCH_hotpath_smoke.json \
                --fresh BENCH_fresh_*.json [--max-drop 0.15]
  perf_guard.py --self-test
"""

import argparse
import json
import sys
import tempfile

SETTINGS_KEYS = ("bench", "queries_per_cell", "scale_tb", "seed",
                 "plan_cache")


def load(path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as error:
        sys.exit(f"perf_guard: cannot read {path}: {error}")


def guard(baseline_path, fresh_paths, max_drop):
    baseline = load(baseline_path)
    freshes = [(path, load(path)) for path in fresh_paths]

    for path, fresh in freshes:
        mismatched = [key for key in SETTINGS_KEYS
                      if baseline.get(key) != fresh.get(key)]
        if mismatched:
            for key in mismatched:
                print(f"perf_guard: setting '{key}' differs: baseline="
                      f"{baseline.get(key)!r} {path}={fresh.get(key)!r}")
            print("perf_guard: settings mismatch — regenerate the "
                  "committed baseline with the same bench flags before "
                  "comparing")
            return 2

    base_qps = baseline.get("aggregate_qps", {})
    fresh_qps = {}
    for _, fresh in freshes:
        for scheme, qps in fresh.get("aggregate_qps", {}).items():
            fresh_qps[scheme] = max(qps, fresh_qps.get(scheme, 0.0))
    if not base_qps:
        sys.exit(f"perf_guard: {baseline_path} has no aggregate_qps")

    extra = sorted(set(fresh_qps) - set(base_qps))
    if extra:
        for scheme in extra:
            print(f"perf_guard: scheme '{scheme}' is in the fresh run(s) "
                  f"but not in {baseline_path} — it would ride CI "
                  f"unguarded")
        print("perf_guard: baseline is missing schemes — regenerate the "
              "committed baseline so every fresh scheme is guarded")
        return 2

    failures = []
    for scheme, base in sorted(base_qps.items()):
        current = fresh_qps.get(scheme)
        if current is None:
            failures.append(f"{scheme}: missing from fresh run(s)")
            continue
        if base <= 0:
            continue
        drop = (base - current) / base
        status = "FAIL" if drop > max_drop else "ok"
        print(f"perf_guard: {scheme:12s} baseline {base:12.1f} q/s  "
              f"fresh {current:12.1f} q/s  drop {drop:+7.1%}  [{status}]")
        if drop > max_drop:
            failures.append(
                f"{scheme}: {base:.1f} -> {current:.1f} q/s "
                f"({drop:+.1%} exceeds -{max_drop:.0%})")

    if failures:
        print("perf_guard: throughput regression detected:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"perf_guard: all {len(base_qps)} schemes within "
          f"{max_drop:.0%} of baseline")
    return 0


def self_test():
    """Planted-case checks of the guard's verdicts."""
    settings = {key: 1 for key in SETTINGS_KEYS}

    def snapshot(tmp, name, qps, **extra_fields):
        path = f"{tmp}/{name}"
        with open(path, "w") as fh:
            json.dump({**settings, "aggregate_qps": qps, **extra_fields},
                      fh)
        return path

    with tempfile.TemporaryDirectory() as tmp:
        baseline = snapshot(tmp, "base.json", {"econ-cheap": 100.0})
        match = snapshot(tmp, "match.json", {"econ-cheap": 98.0})
        slow = snapshot(tmp, "slow.json", {"econ-cheap": 50.0})
        extra = snapshot(tmp, "extra.json",
                         {"econ-cheap": 98.0, "econ-fast": 120.0})
        # Snapshot schemas grow (response quantiles arrived after the
        # first baselines were committed); fields the guard does not know
        # must never trip it.
        unknown = snapshot(tmp, "unknown.json", {"econ-cheap": 98.0},
                           cells=[{"scheme": "econ-cheap",
                                   "response_p99_seconds": 1.25,
                                   "not_a_guard_field": True}],
                           future_top_level_field="ignored")
        cases = [
            ("matching fresh run passes", [match], 0),
            ("regression fails", [slow], 1),
            ("fresh-only scheme demands a baseline regen", [extra], 2),
            ("unknown fields are ignored", [unknown], 0),
        ]
        for label, fresh, want in cases:
            got = guard(baseline, fresh, max_drop=0.15)
            if got != want:
                print(f"perf_guard self-test FAILED: {label}: "
                      f"exit {got}, want {want}")
                return 1
    print("perf_guard self-test passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline",
                        help="committed snapshot to compare against")
    parser.add_argument("--fresh", nargs="+",
                        help="snapshot(s) produced by this run; schemes "
                             "are judged on their best qps across them")
    parser.add_argument("--max-drop", type=float, default=0.15,
                        help="maximum tolerated fractional qps drop "
                             "per scheme (default 0.15)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the planted-case self-test and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.fresh:
        parser.error("--baseline and --fresh are required "
                     "(or use --self-test)")
    return guard(args.baseline, args.fresh, args.max_drop)


if __name__ == "__main__":
    sys.exit(main())
