#include "src/plan/skyline.h"

#include <algorithm>

#include "src/util/slot_pool.h"

namespace cloudcache {

namespace {

/// The one definition of skyline dominance: sorts `candidates` (indices
/// into `plans`) by (time asc, price asc, index asc) in place, then
/// invokes `keep(idx)` for exactly the plans on the Pareto frontier, in
/// ascending-time order. A candidate survives iff its price is strictly
/// below every faster candidate's (ties on time keep the cheaper — and on
/// both axes the earlier — candidate).
template <typename KeepFn>
void ScanSkyline(const std::vector<QueryPlan>& plans,
                 std::vector<size_t>* candidates, KeepFn&& keep) {
  std::sort(candidates->begin(), candidates->end(),
            [&](size_t a, size_t b) {
              if (plans[a].TimeSeconds() != plans[b].TimeSeconds()) {
                return plans[a].TimeSeconds() < plans[b].TimeSeconds();
              }
              if (plans[a].Price() != plans[b].Price()) {
                return plans[a].Price() < plans[b].Price();
              }
              return a < b;
            });
  bool have_best = false;
  Money best_price;
  double last_time = 0;
  for (size_t idx : *candidates) {
    const double time = plans[idx].TimeSeconds();
    const Money price = plans[idx].Price();
    if (have_best) {
      if (time == last_time) continue;  // Cheaper one already kept.
      if (!(price < best_price)) continue;  // Dominated.
    }
    have_best = true;
    best_price = price;
    last_time = time;
    keep(idx);
  }
}

}  // namespace

std::vector<size_t> SkylineIndices(const std::vector<QueryPlan>& plans) {
  std::vector<size_t> order(plans.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<size_t> skyline;
  ScanSkyline(plans, &order, [&](size_t idx) { skyline.push_back(idx); });
  return skyline;
}

void SkylineFilterInto(const PlanSet& in, PlanSet* out,
                       SkylineScratch* scratch) {
  size_t used = 0;
  const auto keep = [&](size_t idx) {
    AcquireSlot(&out->plans, &used, &scratch->spare_slots) = in.plans[idx];
  };
  // Existing plans first, then possible — each partition keeps its
  // original relative order going into the sort, so ties resolve exactly
  // as a partition-then-SkylineIndices pipeline would.
  scratch->partition.clear();
  for (size_t i = 0; i < in.plans.size(); ++i) {
    if (in.plans[i].IsExisting()) scratch->partition.push_back(i);
  }
  ScanSkyline(in.plans, &scratch->partition, keep);
  scratch->partition.clear();
  for (size_t i = 0; i < in.plans.size(); ++i) {
    if (!in.plans[i].IsExisting()) scratch->partition.push_back(i);
  }
  ScanSkyline(in.plans, &scratch->partition, keep);
  ReleaseSurplus(&out->plans, used, &scratch->spare_slots);
}

PlanSet SkylineFilter(PlanSet set) {
  PlanSet out;
  SkylineScratch scratch;
  SkylineFilterInto(set, &out, &scratch);
  return out;
}

}  // namespace cloudcache
