file(REMOVE_RECURSE
  "CMakeFiles/cloudcache_cost_tests.dir/cost/cost_model_test.cpp.o"
  "CMakeFiles/cloudcache_cost_tests.dir/cost/cost_model_test.cpp.o.d"
  "CMakeFiles/cloudcache_cost_tests.dir/cost/price_list_test.cpp.o"
  "CMakeFiles/cloudcache_cost_tests.dir/cost/price_list_test.cpp.o.d"
  "cloudcache_cost_tests"
  "cloudcache_cost_tests.pdb"
  "cloudcache_cost_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudcache_cost_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
