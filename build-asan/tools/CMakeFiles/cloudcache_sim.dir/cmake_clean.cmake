file(REMOVE_RECURSE
  "CMakeFiles/cloudcache_sim.dir/cloudcache_sim.cpp.o"
  "CMakeFiles/cloudcache_sim.dir/cloudcache_sim.cpp.o.d"
  "cloudcache_sim"
  "cloudcache_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudcache_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
