#include "src/obs/trace.h"

#include <fstream>
#include <utility>

#include "src/obs/registry.h"

namespace cloudcache {
namespace obs {

namespace {
std::string EscapeJson(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}
}  // namespace

EventTracer::Record::~Record() {
  if (tracer_ == nullptr) return;
  line_ += "}";
  tracer_->WriteLine(line_);
}

EventTracer::Record& EventTracer::Record::U64(const char* key,
                                              uint64_t value) {
  line_ += ",\"";
  line_ += key;
  line_ += "\":" + std::to_string(value);
  return *this;
}

EventTracer::Record& EventTracer::Record::F64(const char* key,
                                              double value) {
  line_ += ",\"";
  line_ += key;
  line_ += "\":" + FormatMetricValue(value);
  return *this;
}

EventTracer::Record& EventTracer::Record::Str(const char* key,
                                              const std::string& value) {
  line_ += ",\"";
  line_ += key;
  line_ += "\":\"" + EscapeJson(value) + "\"";
  return *this;
}

Result<std::unique_ptr<EventTracer>> EventTracer::Open(
    const std::string& path) {
  auto file = std::make_unique<std::ofstream>(
      path, std::ios::out | std::ios::trunc);
  if (!file->is_open()) {
    return Status::InvalidArgument("cannot open trace file: " + path);
  }
  std::unique_ptr<EventTracer> tracer(new EventTracer());
  tracer->out_ = file.get();
  tracer->owned_ = std::move(file);
  return tracer;
}

EventTracer::~EventTracer() { Flush(); }

EventTracer::Record EventTracer::Event(const char* type, uint64_t query_id,
                                       double sim_time, uint32_t tenant,
                                       uint32_t node) {
  std::string line = "{\"type\":\"";
  line += type;
  line += "\",\"query\":" + std::to_string(query_id);
  line += ",\"t\":" + FormatMetricValue(sim_time);
  line += ",\"tenant\":" + std::to_string(tenant);
  line += ",\"node\":" + std::to_string(node);
  return Record(this, std::move(line));
}

void EventTracer::WriteLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  *out_ << line << '\n';
}

void EventTracer::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  out_->flush();
}

}  // namespace obs
}  // namespace cloudcache
