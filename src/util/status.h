#pragma once

#include <string>
#include <utility>
#include <variant>

namespace cloudcache {

/// Machine-readable failure category, modeled after Arrow/Abseil status
/// codes but restricted to what this library actually produces.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // Caller violated a documented precondition.
  kNotFound,          // Named entity (table, column, structure) is unknown.
  kAlreadyExists,     // Duplicate registration.
  kOutOfRange,        // Index/time/budget outside its legal interval.
  kFailedPrecondition,// Object is in the wrong state for the call.
  kResourceExhausted, // Account/capacity cannot cover the request.
  kIoError,           // Trace file read/write failed.
  kInternal,          // Invariant violation: a bug in this library.
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation that returns no value.
///
/// The library does not throw across public API boundaries; every operation
/// that can fail for a reason the caller may want to handle returns Status
/// or Result<T>. Statuses are cheap to copy in the OK case (empty message).
class [[nodiscard]] Status {
 public:
  /// Default-constructed status is OK.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a programming error (asserted in debug builds).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (OK result).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status.
  Result(Status status) : payload_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// The value if OK, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define CLOUDCACHE_RETURN_IF_ERROR(expr)             \
  do {                                               \
    ::cloudcache::Status _st = (expr);               \
    if (!_st.ok()) return _st;                       \
  } while (0)

}  // namespace cloudcache
