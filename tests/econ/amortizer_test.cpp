#include "src/econ/amortizer.h"

#include <gtest/gtest.h>

namespace cloudcache {
namespace {

TEST(AmortizerTest, UnknownStructureChargesNothing) {
  Amortizer amortizer(10);
  EXPECT_TRUE(amortizer.PendingShare(5).IsZero());
  EXPECT_TRUE(amortizer.ChargeShare(5).IsZero());
  EXPECT_TRUE(amortizer.Unamortized(5).IsZero());
}

TEST(AmortizerTest, SharesAreEqualSplit) {
  Amortizer amortizer(4);
  amortizer.RegisterBuild(1, Money::FromDollars(8));
  EXPECT_EQ(amortizer.PendingShare(1), Money::FromDollars(2));
  EXPECT_EQ(amortizer.ChargeShare(1), Money::FromDollars(2));
}

TEST(AmortizerTest, AllSharesSumToBuildCostExactly) {
  Amortizer amortizer(7);
  const Money build = Money::FromMicros(1'000'003);  // Not divisible by 7.
  amortizer.RegisterBuild(1, build);
  Money collected;
  for (int i = 0; i < 7; ++i) collected += amortizer.ChargeShare(1);
  EXPECT_EQ(collected, build);
}

TEST(AmortizerTest, FreeAfterHorizon) {
  Amortizer amortizer(3);
  amortizer.RegisterBuild(1, Money::FromDollars(3));
  for (int i = 0; i < 3; ++i) amortizer.ChargeShare(1);
  // Eq. 7 amortizes to exactly n queries; later users ride free.
  EXPECT_TRUE(amortizer.PendingShare(1).IsZero());
  EXPECT_TRUE(amortizer.ChargeShare(1).IsZero());
}

TEST(AmortizerTest, UnamortizedTracksRemainder) {
  Amortizer amortizer(4);
  amortizer.RegisterBuild(1, Money::FromDollars(8));
  amortizer.ChargeShare(1);
  EXPECT_EQ(amortizer.Unamortized(1), Money::FromDollars(6));
}

TEST(AmortizerTest, CancelReturnsSunkRemainder) {
  Amortizer amortizer(4);
  amortizer.RegisterBuild(1, Money::FromDollars(8));
  amortizer.ChargeShare(1);
  EXPECT_EQ(amortizer.Cancel(1), Money::FromDollars(6));
  EXPECT_TRUE(amortizer.PendingShare(1).IsZero());
}

TEST(AmortizerTest, ReRegisterRestartsSchedule) {
  Amortizer amortizer(2);
  amortizer.RegisterBuild(1, Money::FromDollars(2));
  amortizer.ChargeShare(1);
  amortizer.RegisterBuild(1, Money::FromDollars(10));  // Rebuild.
  EXPECT_EQ(amortizer.PendingShare(1), Money::FromDollars(5));
}

TEST(AmortizerTest, HorizonOneChargesAllAtOnce) {
  Amortizer amortizer(1);
  amortizer.RegisterBuild(1, Money::FromDollars(9));
  EXPECT_EQ(amortizer.ChargeShare(1), Money::FromDollars(9));
  EXPECT_TRUE(amortizer.ChargeShare(1).IsZero());
}

TEST(AmortizerTest, IndependentSchedules) {
  Amortizer amortizer(2);
  amortizer.RegisterBuild(1, Money::FromDollars(2));
  amortizer.RegisterBuild(2, Money::FromDollars(4));
  EXPECT_EQ(amortizer.ChargeShare(1), Money::FromDollars(1));
  EXPECT_EQ(amortizer.ChargeShare(2), Money::FromDollars(2));
}

class AmortizerHorizonSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(AmortizerHorizonSweep, ConservationAtAnyHorizon) {
  const int64_t n = GetParam();
  Amortizer amortizer(n);
  const Money build = Money::FromMicros(987'654'321);
  amortizer.RegisterBuild(0, build);
  Money collected;
  for (int64_t i = 0; i < n; ++i) collected += amortizer.ChargeShare(0);
  EXPECT_EQ(collected, build);
  EXPECT_TRUE(amortizer.ChargeShare(0).IsZero());
}

INSTANTIATE_TEST_SUITE_P(Horizons, AmortizerHorizonSweep,
                         ::testing::Values(1, 2, 3, 10, 97, 1000));

}  // namespace
}  // namespace cloudcache
