
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/econ/account_test.cpp" "tests/CMakeFiles/cloudcache_econ_tests.dir/econ/account_test.cpp.o" "gcc" "tests/CMakeFiles/cloudcache_econ_tests.dir/econ/account_test.cpp.o.d"
  "/root/repo/tests/econ/amortizer_test.cpp" "tests/CMakeFiles/cloudcache_econ_tests.dir/econ/amortizer_test.cpp.o" "gcc" "tests/CMakeFiles/cloudcache_econ_tests.dir/econ/amortizer_test.cpp.o.d"
  "/root/repo/tests/econ/budget_test.cpp" "tests/CMakeFiles/cloudcache_econ_tests.dir/econ/budget_test.cpp.o" "gcc" "tests/CMakeFiles/cloudcache_econ_tests.dir/econ/budget_test.cpp.o.d"
  "/root/repo/tests/econ/economy_test.cpp" "tests/CMakeFiles/cloudcache_econ_tests.dir/econ/economy_test.cpp.o" "gcc" "tests/CMakeFiles/cloudcache_econ_tests.dir/econ/economy_test.cpp.o.d"
  "/root/repo/tests/econ/regret_test.cpp" "tests/CMakeFiles/cloudcache_econ_tests.dir/econ/regret_test.cpp.o" "gcc" "tests/CMakeFiles/cloudcache_econ_tests.dir/econ/regret_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/cloudcache.dir/DependInfo.cmake"
  "/root/repo/build-asan/_deps/googletest-build/googletest/CMakeFiles/gtest_main.dir/DependInfo.cmake"
  "/root/repo/build-asan/_deps/googletest-build/googletest/CMakeFiles/gtest.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
