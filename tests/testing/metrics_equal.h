#pragma once

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/sim/metrics.h"

namespace cloudcache::testing {

inline bool ByteIdenticalSeries(const std::vector<double>& a,
                                const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Asserts every aggregate metric a run produces — counts, exact Money
/// amounts, double-precision cost breakdowns, response-time statistics,
/// and the full cost/credit timelines — is identical between two runs.
/// The per-tenant slices are compared separately (see
/// ExpectBitIdenticalTenants) because only the multi-tenant simulation
/// path fills them: a single-stream run and its forced-event twin must
/// agree on every aggregate even though one of them carries a slice.
inline void ExpectBitIdenticalMetrics(const SimMetrics& a,
                                      const SimMetrics& b) {
  EXPECT_EQ(a.scheme_name, b.scheme_name);

  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.served_in_cache, b.served_in_cache);
  EXPECT_EQ(a.served_in_backend, b.served_in_backend);
  EXPECT_EQ(a.wan_bytes, b.wan_bytes);

  EXPECT_EQ(a.investments, b.investments);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.throttled, b.throttled);
  EXPECT_EQ(a.case_a, b.case_a);
  EXPECT_EQ(a.case_b, b.case_b);
  EXPECT_EQ(a.case_c, b.case_c);

  EXPECT_EQ(a.revenue.micros(), b.revenue.micros());
  EXPECT_EQ(a.profit.micros(), b.profit.micros());
  EXPECT_EQ(a.final_credit.micros(), b.final_credit.micros());

  EXPECT_EQ(a.operating_cost.cpu_dollars, b.operating_cost.cpu_dollars);
  EXPECT_EQ(a.operating_cost.network_dollars,
            b.operating_cost.network_dollars);
  EXPECT_EQ(a.operating_cost.disk_dollars, b.operating_cost.disk_dollars);
  EXPECT_EQ(a.operating_cost.io_dollars, b.operating_cost.io_dollars);

  EXPECT_EQ(a.response_seconds.count(), b.response_seconds.count());
  EXPECT_EQ(a.response_seconds.sum(), b.response_seconds.sum());
  EXPECT_EQ(a.response_seconds.mean(), b.response_seconds.mean());
  EXPECT_EQ(a.response_seconds.min(), b.response_seconds.min());
  EXPECT_EQ(a.response_seconds.max(), b.response_seconds.max());
  EXPECT_TRUE(obs::BitIdentical(a.response_hist, b.response_hist));

  EXPECT_EQ(a.final_resident_bytes, b.final_resident_bytes);
  EXPECT_EQ(a.final_extra_nodes, b.final_extra_nodes);

  // The fairness report is a pure function of the tenant slices, and its
  // defaults are the single-population fixed point — so a classic run
  // (never computed) and a one-tenant merged run (computed) agree too.
  EXPECT_EQ(a.fairness.response_jain, b.fairness.response_jain);
  EXPECT_EQ(a.fairness.response_max_min, b.fairness.response_max_min);
  EXPECT_EQ(a.fairness.billed_jain, b.fairness.billed_jain);
  EXPECT_EQ(a.fairness.billed_max_min, b.fairness.billed_max_min);

  EXPECT_TRUE(
      ByteIdenticalSeries(a.cost_over_time.times(), b.cost_over_time.times()));
  EXPECT_TRUE(ByteIdenticalSeries(a.cost_over_time.values(),
                                  b.cost_over_time.values()));
  EXPECT_TRUE(ByteIdenticalSeries(a.credit_over_time.times(),
                                  b.credit_over_time.times()));
  EXPECT_TRUE(ByteIdenticalSeries(a.credit_over_time.values(),
                                  b.credit_over_time.values()));
}

/// Asserts the cluster shapes of two cluster runs are identical — event
/// counters, metered node rent to the double bit, and every per-node
/// slice.
inline void ExpectBitIdenticalCluster(const SimMetrics& a,
                                      const SimMetrics& b) {
  EXPECT_EQ(a.cluster.active, b.cluster.active);
  EXPECT_EQ(a.cluster.final_nodes, b.cluster.final_nodes);
  EXPECT_EQ(a.cluster.peak_nodes, b.cluster.peak_nodes);
  EXPECT_EQ(a.cluster.scale_out_events, b.cluster.scale_out_events);
  EXPECT_EQ(a.cluster.scale_in_events, b.cluster.scale_in_events);
  EXPECT_EQ(a.cluster.migrations, b.cluster.migrations);
  EXPECT_EQ(a.cluster.migration_failures, b.cluster.migration_failures);
  EXPECT_EQ(a.cluster.node_rent_dollars, b.cluster.node_rent_dollars);
  ASSERT_EQ(a.cluster.nodes.size(), b.cluster.nodes.size());
  for (size_t n = 0; n < a.cluster.nodes.size(); ++n) {
    const NodeMetrics& na = a.cluster.nodes[n];
    const NodeMetrics& nb = b.cluster.nodes[n];
    EXPECT_EQ(na.ordinal, nb.ordinal);
    EXPECT_EQ(na.queries, nb.queries);
    EXPECT_EQ(na.served, nb.served);
    EXPECT_EQ(na.served_in_cache, nb.served_in_cache);
    EXPECT_EQ(na.revenue.micros(), nb.revenue.micros());
    EXPECT_EQ(na.profit.micros(), nb.profit.micros());
    EXPECT_EQ(na.final_credit.micros(), nb.final_credit.micros());
    EXPECT_EQ(na.final_resident_bytes, nb.final_resident_bytes);
    EXPECT_EQ(na.rented_at_seconds, nb.rented_at_seconds);
  }
}

/// Asserts the per-tenant slices of two multi-tenant runs are identical,
/// field by field, to the last micro-dollar and double bit.
inline void ExpectBitIdenticalTenants(const SimMetrics& a,
                                      const SimMetrics& b) {
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (size_t t = 0; t < a.tenants.size(); ++t) {
    const TenantMetrics& ta = a.tenants[t];
    const TenantMetrics& tb = b.tenants[t];
    EXPECT_EQ(ta.tenant_id, tb.tenant_id);
    EXPECT_EQ(ta.queries, tb.queries);
    EXPECT_EQ(ta.served, tb.served);
    EXPECT_EQ(ta.served_in_cache, tb.served_in_cache);
    EXPECT_EQ(ta.served_in_backend, tb.served_in_backend);
    EXPECT_EQ(ta.wan_bytes, tb.wan_bytes);
    EXPECT_EQ(ta.response_seconds.count(), tb.response_seconds.count());
    EXPECT_EQ(ta.response_seconds.sum(), tb.response_seconds.sum());
    EXPECT_TRUE(obs::BitIdentical(ta.response_hist, tb.response_hist));
    EXPECT_EQ(ta.operating_cost.cpu_dollars, tb.operating_cost.cpu_dollars);
    EXPECT_EQ(ta.operating_cost.network_dollars,
              tb.operating_cost.network_dollars);
    EXPECT_EQ(ta.operating_cost.disk_dollars,
              tb.operating_cost.disk_dollars);
    EXPECT_EQ(ta.operating_cost.io_dollars, tb.operating_cost.io_dollars);
    EXPECT_EQ(ta.revenue.micros(), tb.revenue.micros());
    EXPECT_EQ(ta.profit.micros(), tb.profit.micros());
    EXPECT_EQ(ta.final_regret.micros(), tb.final_regret.micros());
    EXPECT_EQ(ta.case_a, tb.case_a);
    EXPECT_EQ(ta.case_b, tb.case_b);
    EXPECT_EQ(ta.case_c, tb.case_c);
    EXPECT_EQ(ta.investments, tb.investments);
    EXPECT_EQ(ta.evictions, tb.evictions);
    EXPECT_EQ(ta.throttled, tb.throttled);
  }
}

}  // namespace cloudcache::testing
