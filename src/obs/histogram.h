#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/persist/codec.h"
#include "src/util/status.h"

namespace cloudcache {
namespace obs {

/// Constant-memory, mergeable latency histogram over positive values.
///
/// Buckets are log2-spaced: every octave [2^e, 2^(e+1)) for
/// e in [kMinExponent, kMaxExponent) is split into kSubBuckets
/// equal-width linear sub-buckets, giving a worst-case relative error of
/// 1/kSubBuckets (~3%) per recorded value — far below the run-to-run
/// noise of the simulated workloads — at a fixed 15 KiB of counters.
///
/// Everything about the histogram is deterministic and platform-stable:
/// bucket indices come from the value's IEEE-754 exponent and mantissa
/// (frexp), never from std::log, so the same double always lands in the
/// same bucket; counts are integers, so Merge is associative and
/// commutative and the merged histogram of any partition of a sample
/// stream equals the serial histogram bucket for bucket. That property
/// is what lets p50/p95/p99 be pinned bit-identical across `--threads`
/// counts.
///
/// Values below 2^kMinExponent (≈ 1 ns) or non-positive land in the
/// underflow counter; values at or above 2^kMaxExponent (≈ 34 yr) in the
/// overflow counter. Exact min/max/sum/count ride alongside the buckets,
/// so Quantile(0)/Quantile(1) are exact and interpolated quantiles can be
/// clamped into the observed range.
class Histogram {
 public:
  static constexpr int kMinExponent = -30;
  static constexpr int kMaxExponent = 30;
  static constexpr int kSubBuckets = 32;
  static constexpr size_t kNumBuckets =
      static_cast<size_t>(kMaxExponent - kMinExponent) * kSubBuckets;

  Histogram() : buckets_(kNumBuckets, 0) {}

  /// Records one observation.
  void Add(double x);

  /// Adds another histogram's counts into this one. Order-independent:
  /// merging in any order yields identical bucket counts, count, sum
  /// extremes aside from double-addition order in sum() (quantiles never
  /// read sum()).
  void Merge(const Histogram& other);

  /// Value at quantile q in [0, 1]; 0 if empty. q=0 returns the exact
  /// min, q=1 the exact max; interior quantiles interpolate linearly
  /// within the covering bucket and are clamped into [min, max].
  /// Underflowed samples contribute at min, overflowed at max.
  double Quantile(double q) const;

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  const std::vector<uint64_t>& buckets() const { return buckets_; }

  /// Bucket geometry, exposed for tests and exposition: the bucket a
  /// value lands in and a bucket's half-open [lower, upper) range. Index
  /// must be < kNumBuckets; BucketIndex requires a value inside the
  /// covered range (callers route under/overflow first, as Add does).
  static size_t BucketIndex(double x);
  static double BucketLower(size_t index);
  static double BucketUpper(size_t index);

  /// Serializes the complete state (sparse: only non-zero buckets) /
  /// restores it bit for bit, including the ±inf min/max of an empty
  /// histogram.
  void SaveState(persist::Encoder* enc) const;
  Status RestoreState(persist::Decoder* dec);

  /// Exact state equality, double bits included — the test harness's
  /// definition of "the same histogram".
  friend bool BitIdentical(const Histogram& a, const Histogram& b);

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

bool BitIdentical(const Histogram& a, const Histogram& b);

}  // namespace obs
}  // namespace cloudcache
