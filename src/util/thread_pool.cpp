#include "src/util/thread_pool.h"

#include <algorithm>

namespace cloudcache {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_workers_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_workers_.wait(lock,
                         [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and fully drained.
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task captures any exception into the future.
  }
}

}  // namespace cloudcache
