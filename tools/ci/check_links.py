#!/usr/bin/env python3
"""Checks that intra-repo markdown links resolve to real files.

Scans the *.md files at the repository root and everything under
docs/ (whatever is on disk — the documentation surfaces this repo
publishes), extracts [text](target) links, and verifies each relative
target exists. External links (http/https/mailto) and pure in-page
anchors (#section) are skipped; a relative target's own #anchor suffix
is stripped before the existence check. Markdown elsewhere in the tree
(e.g. tooling skill files) is intentionally out of scope; widen the
globs in main() if docs grow beyond these two surfaces.

Exit status: 0 when every link resolves, 1 otherwise (broken links are
listed one per line as file: target).
"""
import pathlib
import re
import sys

# [text](target) — target captured up to the closing paren; images and
# reference-style definitions are out of scope for this repo's docs.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def check_file(path: pathlib.Path, root: pathlib.Path) -> list:
    broken = []
    for target in LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(SKIP_PREFIXES):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(f"{path.relative_to(root)}: {target}")
    return broken


def main() -> int:
    root = pathlib.Path(__file__).resolve().parents[2]
    candidates = sorted(root.glob("*.md")) + sorted(root.glob("docs/**/*.md"))
    broken = []
    for path in candidates:
        broken.extend(check_file(path, root))
    for entry in broken:
        print(f"broken link - {entry}")
    if not broken:
        print(f"{len(candidates)} markdown files checked, all links resolve")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
