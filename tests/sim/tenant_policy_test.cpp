// Behavioral tests for the tenant-economics policies (tenant-weighted
// eviction, admission control) at the experiment level.
//
// The headline test pins the policy's economic promise on a fixed,
// fully deterministic 4-tenant skewed scenario: throttling the tenant
// whose regret the economy cannot monetize must lower that tenant's
// billed dollars without lowering aggregate profit, while Jain's index
// over per-tenant response times improves. The scenario was calibrated
// once (high per-tenant template locality, scarce credit, heavy
// build-fail churn) and replays bit-identically, so the assertions hold
// with exact comparisons — any behavior change that breaks them is a
// real policy regression, not noise.

#include <gtest/gtest.h>

#include "src/catalog/tpch.h"
#include "src/sim/experiment.h"
#include "src/util/units.h"
#include "tests/testing/metrics_equal.h"

namespace cloudcache {
namespace {

using cloudcache::testing::ExpectBitIdenticalMetrics;
using cloudcache::testing::ExpectBitIdenticalTenants;

class TenantPolicyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog(
        MakeTpchCatalog(TpchScaleForBytes(static_cast<uint64_t>(kTB))));
    templates_ = new std::vector<QueryTemplate>(MakeTpchTemplates());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
    delete templates_;
    templates_ = nullptr;
  }

  /// The calibrated admission scenario: 4 tenants, Zipf-skewed traffic,
  /// high template-popularity skew (so each tenant's demand is local to
  /// its own hot templates), scarce working capital, and an admission
  /// point that trips on the tenant whose builds keep failing.
  static ExperimentConfig AdmissionScenario() {
    ExperimentConfig config;
    config.scheme = SchemeKind::kEconCheap;
    config.workload.interarrival_seconds = 10.0;
    config.workload.popularity_skew = 3.0;
    config.workload.seed = 17;
    config.seed = 18;
    config.sim.num_queries = 40'000;
    config.tenancy.tenants = 4;
    config.tenancy.traffic_skew = 1.0;
    config.customize_econ = [](EconScheme::Config& econ) {
      econ.economy.regret_fraction_a = 0.02;
      econ.economy.initial_credit = Money::FromDollars(30);
      econ.economy.model_build_latency = false;
      econ.economy.admission.throttle_ratio = 0.75;
      econ.economy.admission.readmit_ratio = 0.375;
      econ.economy.admission.min_regret = Money::FromDollars(2);
    };
    return config;
  }

  /// Cheap, churn-heavy configuration for the invariant tests.
  static ExperimentConfig ActiveConfig() {
    ExperimentConfig config;
    config.scheme = SchemeKind::kEconCheap;
    config.workload.interarrival_seconds = 5.0;
    config.workload.seed = 29;
    config.seed = 30;
    config.sim.num_queries = 1'500;
    config.tenancy.tenants = 4;
    config.tenancy.traffic_skew = 1.0;
    config.customize_econ = [](EconScheme::Config& econ) {
      econ.economy.regret_fraction_a = 0.001;
      econ.economy.conservative_provider = false;
      econ.economy.initial_credit = Money::FromDollars(20);
      econ.economy.model_build_latency = false;
      econ.economy.admission.throttle_ratio = 0.5;
      econ.economy.admission.readmit_ratio = 0.25;
      econ.economy.admission.min_regret = Money::FromDollars(0.05);
    };
    return config;
  }

  static Catalog* catalog_;
  static std::vector<QueryTemplate>* templates_;
};

Catalog* TenantPolicyTest::catalog_ = nullptr;
std::vector<QueryTemplate>* TenantPolicyTest::templates_ = nullptr;

TEST_F(TenantPolicyTest, AdmissionImprovesFairnessWithoutCostingProfit) {
  ExperimentConfig config = AdmissionScenario();
  const SimMetrics off = RunExperiment(*catalog_, *templates_, config);
  config.tenancy.admission = true;
  const SimMetrics on = RunExperiment(*catalog_, *templates_, config);

  ASSERT_EQ(off.tenants.size(), 4u);
  ASSERT_EQ(on.tenants.size(), 4u);
  EXPECT_EQ(off.throttled, 0u);
  EXPECT_GT(on.throttled, 0u);

  // The throttled tenant: the one admission actually held back.
  size_t victim = 0;
  for (size_t t = 1; t < on.tenants.size(); ++t) {
    if (on.tenants[t].throttled > on.tenants[victim].throttled) victim = t;
  }
  EXPECT_GT(on.tenants[victim].throttled, 0u);

  // (1) The throttled tenant's billed dollars drop: the build-fail churn
  // its unmonetizable regret kept triggering stops being billed to it.
  EXPECT_LT(on.tenants[victim].operating_cost.Total(),
            off.tenants[victim].operating_cost.Total());

  // (2) Aggregate profit does not decrease: what the victim loses in
  // doomed investments, the economy recoups in credit that monetizes.
  EXPECT_GE(on.profit.micros(), off.profit.micros());

  // (3) Response-time fairness improves across the tenant population.
  EXPECT_GT(on.fairness.response_jain, off.fairness.response_jain);

  // Sanity on the mechanism: the throttle suppressed churn, not service
  // (every query is still served), and investments went down.
  EXPECT_EQ(on.served, on.queries);
  EXPECT_LT(on.investments, off.investments);
}

TEST_F(TenantPolicyTest, PoliciesAreDeterministicAcrossRepeats) {
  ExperimentConfig config = ActiveConfig();
  config.tenancy.fair_eviction = true;
  config.tenancy.admission = true;
  const SimMetrics first = RunExperiment(*catalog_, *templates_, config);
  const SimMetrics second = RunExperiment(*catalog_, *templates_, config);
  ExpectBitIdenticalMetrics(first, second);
  ExpectBitIdenticalTenants(first, second);
}

TEST_F(TenantPolicyTest, PoliciesPreservePlanCachePurity) {
  // Both policies mutate residency only through CacheState::Add/Remove,
  // so the plan-skeleton cache must stay a pure memoization with them
  // on: cache-on and cache-off runs replay bit-identically.
  ExperimentConfig config = ActiveConfig();
  config.tenancy.fair_eviction = true;
  config.tenancy.admission = true;
  const auto base_customize = config.customize_econ;
  auto with_cache = [base_customize](bool enable) {
    return [base_customize, enable](EconScheme::Config& econ) {
      base_customize(econ);
      econ.enumerator.enable_plan_cache = enable;
    };
  };
  config.customize_econ = with_cache(true);
  const SimMetrics on = RunExperiment(*catalog_, *templates_, config);
  config.customize_econ = with_cache(false);
  const SimMetrics off = RunExperiment(*catalog_, *templates_, config);
  ExpectBitIdenticalMetrics(on, off);
  ExpectBitIdenticalTenants(on, off);
}

TEST_F(TenantPolicyTest, ThrottledCountsPartitionAcrossTenants) {
  ExperimentConfig config = ActiveConfig();
  config.tenancy.admission = true;
  const SimMetrics metrics = RunExperiment(*catalog_, *templates_, config);
  uint64_t throttled = 0;
  for (const TenantMetrics& tenant : metrics.tenants) {
    throttled += tenant.throttled;
  }
  EXPECT_EQ(throttled, metrics.throttled);
}

TEST_F(TenantPolicyTest, FairEvictionOnlyChangesEvictionChoices) {
  // Tenant-weighted eviction reorders which structures fail and which
  // candidates age out; it must never change how a query is served
  // given the same cache contents. Weak but cheap cross-check: every
  // query still gets served, and the run stays internally consistent
  // (slices partition the aggregate).
  ExperimentConfig config = ActiveConfig();
  config.tenancy.fair_eviction = true;
  const SimMetrics metrics = RunExperiment(*catalog_, *templates_, config);
  EXPECT_EQ(metrics.served, metrics.queries);
  uint64_t queries = 0;
  for (const TenantMetrics& tenant : metrics.tenants) {
    queries += tenant.queries;
  }
  EXPECT_EQ(queries, metrics.queries);
}

}  // namespace
}  // namespace cloudcache
