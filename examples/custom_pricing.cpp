// Custom pricing: how the provider's rate card reshapes the economy.
//
// Section I observes that "cloud businesses usually prorate cost to more
// types of resources. For instance, GoGrid gives network bandwidth for
// free." This example runs the same workload under three decision-price
// sheets — 2009 EC2, a GoGrid-like card with free bandwidth, and a
// hypothetical premium-disk provider — and shows how the self-tuned cache
// changes what it builds.

#include <cstdio>

#include "src/util/logging.h"
#include "src/catalog/tpch.h"
#include "src/sim/experiment.h"
#include "src/sim/report.h"

int main() {
  using namespace cloudcache;
  const Catalog catalog = MakePaperTpchCatalog();
  const std::vector<QueryTemplate> templates = MakeTpchTemplates();

  struct Provider {
    const char* name;
    PriceList prices;
  };
  PriceList premium_disk = PriceList::AmazonEc2_2009();
  premium_disk.disk_byte_second_dollars *= 20.0;  // SSD-era hot storage.
  const Provider providers[] = {
      {"amazon-ec2-2009", PriceList::AmazonEc2_2009()},
      {"gogrid-free-net", PriceList::GoGrid2009()},
      {"premium-disk", premium_disk},
  };

  TableWriter table({"provider", "mean_resp_s", "op_cost_$", "hit_rate",
                     "investments", "evictions", "cache_GB"});
  for (const Provider& provider : providers) {
    ExperimentConfig config;
    config.scheme = SchemeKind::kEconCheap;
    config.workload.interarrival_seconds = 10.0;
    config.sim.num_queries = 30'000;
    config.decision_prices = provider.prices;
    config.customize_econ = [](EconScheme::Config& econ) {
      econ.economy.initial_credit = Money::FromDollars(200);
      econ.economy.regret_fraction_a = 0.02;
      econ.economy.model_build_latency = false;
    };
    const SimMetrics m = RunExperiment(catalog, templates, config);
    CLOUDCACHE_CHECK(
        table
            .AddRow({provider.name, FormatDouble(m.MeanResponse(), 3),
                     FormatDouble(m.operating_cost.Total(), 2),
                     FormatDouble(m.CacheHitRate(), 3),
                     std::to_string(m.investments),
                     std::to_string(m.evictions),
                     FormatDouble(static_cast<double>(
                                      m.final_resident_bytes) /
                                      1e9,
                                  1)})
            .ok());
    std::printf("%s done\n", provider.name);
  }
  std::puts("\ndecision prices vs what the economy builds:");
  std::fputs(table.ToAscii().c_str(), stdout);
  std::puts(
      "\nnote: operating cost is always metered at real EC2 rates; a "
      "provider whose *decision* prices ignore a resource still pays for "
      "it, exactly like the paper's net-only emulation.");
  return 0;
}
