# Empty dependencies file for cloudcache_query_tests.
# This may be replaced when dependencies are built.
