#include "src/obs/stage_profile.h"

#include <gtest/gtest.h>

#include <string>

namespace cloudcache::obs {
namespace {

/// The profiler is process-global; every test restores the disabled,
/// zeroed state so no other suite observes leftover counters.
class StageProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StageProfiler::Instance().Enable(false);
    StageProfiler::Instance().Reset();
  }
  void TearDown() override {
    StageProfiler::Instance().Enable(false);
    StageProfiler::Instance().Reset();
  }
};

TEST_F(StageProfilerTest, DisabledTimersRecordNothing) {
  { ScopedStageTimer timer(Stage::kEnumerate); }
  { ScopedStageTimer timer(Stage::kSettle); }
  for (int i = 0; i < kNumStages; ++i) {
    EXPECT_EQ(StageProfiler::Instance().count(static_cast<Stage>(i)), 0u);
    EXPECT_EQ(StageProfiler::Instance().nanos(static_cast<Stage>(i)), 0u);
  }
}

TEST_F(StageProfilerTest, EnabledTimersAccumulatePerStage) {
  StageProfiler::Instance().Enable(true);
  { ScopedStageTimer timer(Stage::kEnumerate); }
  { ScopedStageTimer timer(Stage::kEnumerate); }
  { ScopedStageTimer timer(Stage::kPrice); }
  EXPECT_EQ(StageProfiler::Instance().count(Stage::kEnumerate), 2u);
  EXPECT_EQ(StageProfiler::Instance().count(Stage::kPrice), 1u);
  EXPECT_EQ(StageProfiler::Instance().count(Stage::kSkyline), 0u);
  EXPECT_EQ(StageProfiler::Instance().count(Stage::kSettle), 0u);
}

TEST_F(StageProfilerTest, TimerReadsEnabledAtConstruction) {
  // A timer built while profiling is off must stay silent even if
  // profiling turns on before it destructs — no torn half-measurements.
  StageProfiler::Instance().Enable(false);
  {
    ScopedStageTimer timer(Stage::kSkyline);
    StageProfiler::Instance().Enable(true);
  }
  EXPECT_EQ(StageProfiler::Instance().count(Stage::kSkyline), 0u);
}

TEST_F(StageProfilerTest, ResetZeroesEverything) {
  StageProfiler::Instance().Enable(true);
  StageProfiler::Instance().Record(Stage::kSettle, 1'000);
  StageProfiler::Instance().Reset();
  EXPECT_EQ(StageProfiler::Instance().count(Stage::kSettle), 0u);
  EXPECT_EQ(StageProfiler::Instance().nanos(Stage::kSettle), 0u);
}

TEST_F(StageProfilerTest, FormatTableNamesEveryStage) {
  StageProfiler::Instance().Enable(true);
  StageProfiler::Instance().Record(Stage::kEnumerate, 2'000);
  StageProfiler::Instance().Record(Stage::kSkyline, 1'000);
  StageProfiler::Instance().Record(Stage::kPrice, 500);
  StageProfiler::Instance().Record(Stage::kSettle, 500);
  const std::string table = StageProfiler::Instance().FormatTable();
  for (const char* name : {"enumerate", "skyline", "price", "settle"}) {
    EXPECT_NE(table.find(name), std::string::npos) << name;
  }
  EXPECT_NE(table.find("50.0%"), std::string::npos);  // Enumerate share.
}

}  // namespace
}  // namespace cloudcache::obs
