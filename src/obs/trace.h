#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "src/util/status.h"

namespace cloudcache {
namespace obs {

/// Structured economic event trace: one JSON object per line (JSONL).
///
/// Every record starts with the same four context fields — `query` (the
/// id of the query whose handling caused the event), `t` (simulation
/// seconds), `tenant`, and `node` — followed by event-specific fields.
/// Event types and their fields are documented in docs/observability.md;
/// the trace-golden test pins that records are byte-stable run to run.
///
/// Writing is mutex-serialized so a tracer object is safe to share, but
/// record ORDER is only deterministic on single-threaded drivers — the
/// CLI refuses `--trace` with `--threads` > 0 for exactly that reason.
/// Tracing is observability-only: it reads simulation state, never feeds
/// back into it, so traced runs stay bit-identical to untraced ones.
class EventTracer {
 public:
  /// A record under construction. Fields append in call order; the
  /// destructor terminates the object and writes the line.
  class Record {
   public:
    Record(Record&& other) noexcept
        : tracer_(other.tracer_), line_(std::move(other.line_)) {
      other.tracer_ = nullptr;
    }
    Record& operator=(Record&&) = delete;
    Record(const Record&) = delete;
    Record& operator=(const Record&) = delete;
    ~Record();

    Record& U64(const char* key, uint64_t value);
    Record& F64(const char* key, double value);
    Record& Str(const char* key, const std::string& value);

   private:
    friend class EventTracer;
    Record(EventTracer* tracer, std::string line)
        : tracer_(tracer), line_(std::move(line)) {}

    EventTracer* tracer_;
    std::string line_;
  };

  /// Opens `path` for writing (truncating an existing file).
  static Result<std::unique_ptr<EventTracer>> Open(const std::string& path);

  /// Writes to a caller-owned stream (tests trace into a string).
  explicit EventTracer(std::ostream* out) : out_(out) {}
  ~EventTracer();

  /// Starts a record of `type` carrying the four mandatory context
  /// fields. The returned Record must be finished (destroyed) before the
  /// next event from the same thread.
  Record Event(const char* type, uint64_t query_id, double sim_time,
               uint32_t tenant, uint32_t node);

  /// Flushes buffered lines to the underlying stream.
  void Flush();

 private:
  EventTracer() = default;
  void WriteLine(const std::string& line);

  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_ = nullptr;
  std::mutex mu_;
};

}  // namespace obs
}  // namespace cloudcache
