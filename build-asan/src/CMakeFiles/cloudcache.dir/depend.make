# Empty dependencies file for cloudcache.
# This may be replaced when dependencies are built.
