#pragma once

#include <cstddef>
#include <vector>

#include "src/plan/plan.h"

namespace cloudcache {

/// Pareto skyline over (execution time, price), per footnote 2 of the
/// paper: "PQ holds only the skyline query plans (w.r.t. execution time and
/// overall cost); i.e. if there are two plans with the same execution time,
/// only the cheapest one is encompassed."
///
/// A plan is dominated if another plan is no slower AND no more expensive
/// (and strictly better on at least one axis). Ties on both axes keep the
/// first plan (stable). Returns the surviving indices in ascending-time
/// order.
std::vector<size_t> SkylineIndices(const std::vector<QueryPlan>& plans);

/// Applies SkylineIndices to each partition of the plan set separately:
/// existing and possible plans are skylined independently, because PQexist
/// must retain an executable frontier even when hypothetical plans
/// dominate it. Returns the filtered set (relative order by time).
PlanSet SkylineFilter(PlanSet set);

}  // namespace cloudcache
