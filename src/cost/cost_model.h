#pragma once

#include <cstdint>
#include <vector>

#include "src/catalog/schema.h"
#include "src/cost/price_list.h"
#include "src/query/query.h"
#include "src/structure/structure.h"
#include "src/util/money.h"

namespace cloudcache {

/// Physical shape of a query plan, independent of the economy: where it
/// runs, how it accesses data, and how many CPU nodes it spreads over.
struct PlanSpec {
  enum class Access {
    /// Run completely in the back-end database; ship S(Q) over the WAN
    /// (Eq. 9). The back-end is assumed fully indexed — "the best possible
    /// scenario for the back-end database" (Section VII-A).
    kBackend,
    /// Column scan over cached columns (Eq. 8), skipping to the region
    /// selected by clustered predicates.
    kCacheScan,
    /// Probe a cache-resident index, then fetch qualifying rows from
    /// cached columns (or from the index itself if it covers the query).
    kCacheIndex,
  };

  Access access = Access::kBackend;
  /// For kCacheIndex: positions into Query::predicates that the index key
  /// covers (their selectivities multiply into the probe selectivity).
  std::vector<size_t> covered_predicates;
  /// For kCacheIndex: true if the index key contains every accessed
  /// column, so no row fetch into base columns is needed.
  bool covering = false;
  /// CPU nodes employed (>= 1); only cache plans parallelize.
  uint32_t cpu_nodes = 1;
};

/// Everything the economy needs to know about executing one plan: the
/// response time the user sees and the resources (and money, Eq. 8/9) the
/// execution consumes.
struct ExecutionEstimate {
  /// Response time in seconds (for backend plans this includes the WAN
  /// transfer of the result to the cache).
  double time_seconds = 0;
  /// Billable CPU-seconds across all nodes, including the parallel
  /// coordination overhead and (for backend plans) fn * transfer time.
  double cpu_seconds = 0;
  /// Logical I/O operations (after the fio conversion).
  uint64_t io_ops = 0;
  /// Bytes moved across the WAN (S(Q) for backend plans, 0 in cache).
  uint64_t wan_bytes = 0;
  /// Execution cost Ce of the plan (Eq. 8 for cache, Eq. 9 for backend) at
  /// the model's price list.
  Money cost;
};

/// Raw physical resources consumed by building a structure, independent of
/// any price list; the simulator meters these at the real (EC2) rates even
/// when the deciding scheme priced them differently.
struct BuildUsage {
  double cpu_seconds = 0;
  uint64_t wan_bytes = 0;
  uint64_t io_ops = 0;

  BuildUsage& operator+=(const BuildUsage& other) {
    cpu_seconds += other.cpu_seconds;
    wan_bytes += other.wan_bytes;
    io_ops += other.io_ops;
    return *this;
  }
};

/// The paper's cost model (Section V): prices query plans (Eq. 8, 9) and
/// structures (Eq. 10-15) against a PriceList.
///
/// A CostModel is a pure function of (catalog, prices); the same query and
/// spec always produce the same estimate, which the tests rely on. Schemes
/// with different beliefs (e.g. the network-only baseline) simply hold a
/// CostModel over a different PriceList.
class CostModel {
 public:
  CostModel(const Catalog* catalog, const PriceList* prices)
      : catalog_(catalog), prices_(prices) {}

  /// Estimates execution of `query` under `spec` (Eq. 8 / Eq. 9).
  ExecutionEstimate EstimateExecution(const Query& query,
                                      const PlanSpec& spec) const;

  /// The spec-independent intermediates of EstimateExecution for one plan
  /// family — a (access, covered_predicates, covering) shape. Every
  /// cpu_nodes variant of the family shares these exactly; only the
  /// parallel time/cpu factors and the WAN terms differ per variant.
  struct ExecutionBase {
    double cpu_serial = 0;
    uint64_t io_ops = 0;
    double io_seconds = 0;
  };

  /// Batched estimation over one query instance.
  ///
  /// The enumerator prices every skeleton of a query with the same
  /// instance selectivities, and skeletons arrive grouped by plan family
  /// (EmitNodeVariants emits the node-count variants consecutively). The
  /// estimator computes the per-query invariants (accessed width, the
  /// clustered-scan fraction) once, re-derives the ExecutionBase only
  /// when the family changes, and finalizes each variant from the shared
  /// base — producing bit-identical results to calling EstimateExecution
  /// per spec, because the identical floating-point expressions run on
  /// identical inputs, just fewer times.
  class BatchEstimator {
   public:
    explicit BatchEstimator(const CostModel* model) : model_(model) {}

    /// Starts a new query instance: recomputes the per-query invariants
    /// and forgets the cached family. The query must outlive the batch.
    void Reset(const Query& query);

    /// Same bits as model->EstimateExecution(query, spec) for the query
    /// of the last Reset().
    ExecutionEstimate Estimate(const PlanSpec& spec);

   private:
    const CostModel* model_;
    const Query* query_ = nullptr;
    /// Sum of the accessed columns' storage widths (bytes).
    uint64_t accessed_width_ = 0;
    /// Product of the clustered predicates' selectivities.
    double clustered_fraction_ = 1.0;
    /// Family memo (valid while the spec shape matches).
    bool has_family_ = false;
    PlanSpec::Access family_access_ = PlanSpec::Access::kBackend;
    std::vector<size_t> family_covered_;
    bool family_covering_ = false;
    ExecutionBase base_;
    /// Per-query parallel-factor memo, indexed by effective node count:
    /// ParallelTimeFactor/ParallelCpuFactor depend only on the query's
    /// parallel fraction and the node count, and every plan family
    /// re-finalizes the same handful of node counts. Sentinel < 0 means
    /// "not computed for this query yet" (real factors are positive).
    mutable std::vector<double> time_factors_;
    mutable std::vector<double> cpu_factors_;
  };

  /// Speedup-normalized elapsed-time factor of running on `nodes` CPU
  /// nodes a job with the given parallel fraction: the SDSS scaling law of
  /// [17] generalized as time(k)/time(1) = (1-f) + f*(1+a(k-1))/k.
  double ParallelTimeFactor(double parallel_fraction, uint32_t nodes) const;
  /// Total-CPU inflation factor: cpu(k)/cpu(1) = (1-f) + f*(1+a(k-1)).
  double ParallelCpuFactor(double parallel_fraction, uint32_t nodes) const;

  /// BuildN (Eq. 10): boot time x usage rate; constant.
  Money CpuNodeBuildCost() const;
  /// BuildT (Eq. 12): WAN transfer of the column plus the CPU tied up
  /// managing the transfer.
  Money ColumnBuildCost(ColumnId column) const;
  /// Seconds the WAN transfer of a column takes (build latency).
  double ColumnBuildSeconds(ColumnId column) const;
  /// BuildI (Eq. 14): the sort-query plan cost plus BuildT of every key
  /// column not already cached. `column_cached(c)` reports residency.
  Money IndexBuildCost(const StructureKey& index,
                       const std::vector<bool>& column_cached) const;
  /// Seconds to build an index: transfer of missing columns plus the sort
  /// query's execution time.
  double IndexBuildSeconds(const StructureKey& index,
                           const std::vector<bool>& column_cached) const;

  /// Build cost of any structure (dispatches on key.type).
  Money BuildCost(const StructureKey& key,
                  const std::vector<bool>& column_cached) const;
  /// Build latency of any structure (boot_seconds for CPU nodes).
  double BuildSeconds(const StructureKey& key,
                      const std::vector<bool>& column_cached) const;

  /// Raw physical resources a build consumes (for metering at rates other
  /// than this model's own price list).
  BuildUsage EstimateBuildUsage(const StructureKey& key,
                                const std::vector<bool>& column_cached) const;

  /// Maintenance accrued by a structure over `seconds` (Eq. 11, 13, 15):
  /// disk rent for columns/indexes, reservation rent for CPU nodes.
  Money MaintenanceCost(const StructureKey& key, double seconds) const;

  /// MaintenanceCost with the structure's disk footprint already in hand.
  /// `bytes` must equal StructureBytes(catalog, key); callers on the
  /// per-query rent path (the maintenance ledger) cache it once at
  /// registration instead of re-walking the catalog per pricing call.
  Money MaintenanceCostSized(const StructureKey& key, uint64_t bytes,
                             double seconds) const;

  /// The synthetic sort query whose execution cost approximates index
  /// construction ("select <keys> from T order by <keys>", Section V-C).
  Query MakeIndexBuildQuery(const StructureKey& index) const;

  const Catalog& catalog() const { return *catalog_; }
  const PriceList& prices() const { return *prices_; }

 private:
  /// Access-path + CPU phase of EstimateExecution: everything that does
  /// not depend on spec.cpu_nodes. `accessed_width` is the byte sum of
  /// the query's accessed columns and `clustered_fraction` the product of
  /// its clustered predicates' selectivities — hoisted so the batch path
  /// computes each once per query; the expressions below them replicate
  /// the single-shot path exactly (bit-identical by construction).
  ExecutionBase EstimateExecutionBase(const Query& query,
                                      const PlanSpec& spec,
                                      uint64_t accessed_width,
                                      double clustered_fraction) const;
  /// Variant phase: parallel factors, pricing, and WAN terms.
  ExecutionEstimate FinalizeExecution(const Query& query,
                                      const PlanSpec& spec,
                                      const ExecutionBase& base) const;
  /// FinalizeExecution with the parallel factors supplied by the caller
  /// (the batch path memoizes them per (query, node count)); the factors
  /// must be exactly Parallel{Time,Cpu}Factor(query.parallel_fraction, n)
  /// for the spec's effective node count, so the arithmetic below is
  /// bit-identical to the self-computing overload.
  ExecutionEstimate FinalizeExecutionWithFactors(const Query& query,
                                                 const PlanSpec& spec,
                                                 const ExecutionBase& base,
                                                 double time_factor,
                                                 double cpu_factor) const;

  const Catalog* catalog_;
  const PriceList* prices_;
};

}  // namespace cloudcache
