#include "src/econ/admission.h"

#include "src/util/logging.h"

namespace cloudcache {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  // Knobs behind the disabled switch must stay inert (the flags-off
  // bit-identity guarantee), so misconfiguration is only fatal when the
  // policy is actually on.
  if (options_.enabled) {
    CLOUDCACHE_CHECK_GT(options_.throttle_ratio, 0.0);
    CLOUDCACHE_CHECK_LE(options_.readmit_ratio, options_.throttle_ratio);
    CLOUDCACHE_CHECK_GE(options_.throttled_regret_scale, 0.0);
    CLOUDCACHE_CHECK_LE(options_.throttled_regret_scale, 1.0);
  }
}

void AdmissionController::SetTenantCount(size_t n) {
  tenants_.assign(n, TenantState());
  backing_.clear();
}

void AdmissionController::RecordRevenue(uint32_t tenant, Money amount) {
  if (!options_.enabled || tenant >= tenants_.size()) return;
  tenants_[tenant].revenue += amount;
}

void AdmissionController::RecordRegret(uint32_t tenant, Money amount) {
  if (!options_.enabled || tenant >= tenants_.size()) return;
  tenants_[tenant].accrued += amount;
}

void AdmissionController::RecordMonetized(uint32_t tenant,
                                          StructureId structure,
                                          Money amount) {
  if (!options_.enabled || tenant >= tenants_.size() || amount.IsZero()) {
    return;
  }
  tenants_[tenant].monetized += amount;
  CLOUDCACHE_CHECK_LE(tenants_[tenant].monetized.micros(),
                      tenants_[tenant].accrued.micros());
  std::vector<Money>& shares = backing_[structure];
  shares.resize(tenants_.size());
  shares[tenant] += amount;
}

void AdmissionController::OnStructureFailed(StructureId structure) {
  if (!options_.enabled) return;
  auto it = backing_.find(structure);
  if (it == backing_.end()) return;
  for (size_t t = 0; t < it->second.size(); ++t) {
    tenants_[t].monetized -= it->second[t];
    CLOUDCACHE_CHECK_GE(tenants_[t].monetized.micros(), 0);
  }
  backing_.erase(it);
}

Money AdmissionController::Unmonetized(uint32_t tenant) const {
  if (tenant >= tenants_.size()) return Money();
  const TenantState& state = tenants_[tenant];
  return state.accrued - state.monetized;
}

bool AdmissionController::Throttled(uint32_t tenant, bool* newly_throttled) {
  if (newly_throttled != nullptr) *newly_throttled = false;
  if (!options_.enabled || tenant >= tenants_.size()) return false;
  TenantState& state = tenants_[tenant];

  const Money unmonetized = state.accrued - state.monetized;
  // The ratio compares micro-dollar counts directly; a tenant with zero
  // revenue and above-floor unmonetized regret is unconditionally over
  // any finite ratio.
  const double revenue =
      static_cast<double>(state.revenue.micros());
  const double signal = static_cast<double>(unmonetized.micros());
  if (!state.throttled) {
    if (unmonetized >= options_.min_regret &&
        signal > options_.throttle_ratio * revenue) {
      state.throttled = true;
      if (newly_throttled != nullptr) *newly_throttled = true;
    }
  } else {
    if (signal <= options_.readmit_ratio * revenue) {
      state.throttled = false;
    }
  }
  return state.throttled;
}

}  // namespace cloudcache
