#include "src/catalog/sdss.h"

#include "src/util/logging.h"

namespace cloudcache {

namespace {
Column Col(const char* name, DataType type, double distinct_fraction = 1.0,
           uint32_t width = 0) {
  Column col;
  col.name = name;
  col.type = type;
  col.width_bytes = width ? width : DefaultWidth(type);
  col.distinct_fraction = distinct_fraction;
  return col;
}
}  // namespace

Catalog MakeSdssCatalog(uint64_t object_count) {
  CLOUDCACHE_CHECK_GE(object_count, 1u);
  Catalog catalog;
  const auto objects = static_cast<double>(object_count);

  {
    // Wide photometric fact table: five-band magnitudes/errors plus
    // astrometry. Column-at-a-time access over a few of ~30 columns is the
    // canonical SDSS pattern, which is why column caching pays off.
    Table photoobj;
    photoobj.name = "photoobj";
    photoobj.row_count = object_count;
    photoobj.columns = {
        Col("objid", DataType::kInt64, 1.0),
        Col("ra", DataType::kFloat64, 1.0),
        Col("dec", DataType::kFloat64, 1.0),
        Col("run", DataType::kInt32, 1e5 / objects),
        Col("rerun", DataType::kInt32, 1e2 / objects),
        Col("camcol", DataType::kInt32, 6.0 / objects),
        Col("field", DataType::kInt32, 1e6 / objects),
        Col("obj_type", DataType::kInt32, 10.0 / objects),
        Col("mode", DataType::kInt32, 4.0 / objects),
        Col("flags", DataType::kInt64, 0.01),
        Col("psfmag_u", DataType::kFloat64, 0.8),
        Col("psfmag_g", DataType::kFloat64, 0.8),
        Col("psfmag_r", DataType::kFloat64, 0.8),
        Col("psfmag_i", DataType::kFloat64, 0.8),
        Col("psfmag_z", DataType::kFloat64, 0.8),
        Col("psfmagerr_u", DataType::kFloat64, 0.8),
        Col("psfmagerr_g", DataType::kFloat64, 0.8),
        Col("psfmagerr_r", DataType::kFloat64, 0.8),
        Col("psfmagerr_i", DataType::kFloat64, 0.8),
        Col("psfmagerr_z", DataType::kFloat64, 0.8),
        Col("petrorad_r", DataType::kFloat64, 0.7),
        Col("petror50_r", DataType::kFloat64, 0.7),
        Col("petror90_r", DataType::kFloat64, 0.7),
        Col("extinction_r", DataType::kFloat64, 0.5),
        Col("rowc", DataType::kFloat64, 0.9),
        Col("colc", DataType::kFloat64, 0.9),
        Col("htmid", DataType::kInt64, 0.99),
        Col("zoospec_class", DataType::kInt32, 3.0 / objects),
        Col("clean", DataType::kInt32, 2.0 / objects),
        Col("score", DataType::kFloat64, 0.6),
    };
    CLOUDCACHE_CHECK(catalog.AddTable(std::move(photoobj)).ok());
  }
  {
    // Spectroscopic table: roughly 1 spectrum per 200 photometric objects.
    Table specobj;
    specobj.name = "specobj";
    specobj.row_count = object_count / 200 + 1;
    const auto spectra = static_cast<double>(specobj.row_count);
    specobj.columns = {
        Col("specobjid", DataType::kInt64, 1.0),
        Col("bestobjid", DataType::kInt64, 1.0),
        Col("plate", DataType::kInt32, 3e3 / spectra),
        Col("mjd", DataType::kInt32, 2e3 / spectra),
        Col("fiberid", DataType::kInt32, 640.0 / spectra),
        Col("z", DataType::kFloat64, 0.9),
        Col("zerr", DataType::kFloat64, 0.9),
        Col("zwarning", DataType::kInt32, 32.0 / spectra),
        Col("spec_class", DataType::kInt32, 6.0 / spectra),
        Col("velocity_disp", DataType::kFloat64, 0.8),
        Col("sn_median", DataType::kFloat64, 0.8),
    };
    CLOUDCACHE_CHECK(catalog.AddTable(std::move(specobj)).ok());
  }
  {
    Table field;
    field.name = "field";
    field.row_count = object_count / 350 + 1;
    field.columns = {
        Col("fieldid", DataType::kInt64, 1.0),
        Col("run", DataType::kInt32, 0.1),
        Col("camcol", DataType::kInt32, 6.0 / static_cast<double>(
                                                  object_count / 350 + 1)),
        Col("field_num", DataType::kInt32, 0.5),
        Col("quality", DataType::kInt32, 0.01),
        Col("mjd_r", DataType::kFloat64, 0.9),
        Col("seeing_r", DataType::kFloat64, 0.9),
        Col("sky_r", DataType::kFloat64, 0.9),
    };
    CLOUDCACHE_CHECK(catalog.AddTable(std::move(field)).ok());
  }
  {
    Table run;
    run.name = "run";
    run.row_count = 100'000;
    run.columns = {
        Col("runid", DataType::kInt32, 1.0),
        Col("mjd_start", DataType::kFloat64, 0.99),
        Col("stripe", DataType::kInt32, 0.001),
        Col("strip", DataType::kChar, 2.0 / 100'000, 1),
        Col("comments", DataType::kVarchar, 1.0, 40),
    };
    CLOUDCACHE_CHECK(catalog.AddTable(std::move(run)).ok());
  }
  return catalog;
}

}  // namespace cloudcache
