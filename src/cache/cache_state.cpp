#include "src/cache/cache_state.h"

#include "src/util/logging.h"

namespace cloudcache {

CacheState::CacheState(StructureRegistry* registry) : registry_(registry) {
  column_resident_.assign(registry->catalog().num_columns(), false);
}

void CacheState::EnsureSize(StructureId id) {
  if (id >= resident_.size()) {
    resident_.resize(id + 1, false);
    last_used_.resize(id + 1, 0);
  }
}

bool CacheState::IsResident(StructureId id) const {
  return id < resident_.size() && resident_[id];
}

Status CacheState::Add(StructureId id, SimTime now) {
  CLOUDCACHE_CHECK_LT(id, registry_->size());
  EnsureSize(id);
  if (resident_[id]) {
    return Status::AlreadyExists(
        registry_->key(id).ToString(registry_->catalog()));
  }
  resident_[id] = true;
  last_used_[id] = now;
  ++epoch_;
  const StructureKey& key = registry_->key(id);
  resident_bytes_ += registry_->bytes(id);
  if (key.type == StructureType::kColumn) {
    column_resident_[key.columns.front()] = true;
  } else if (key.type == StructureType::kCpuNode) {
    ++extra_cpu_nodes_;
  }
  return Status::OK();
}

Status CacheState::Remove(StructureId id) {
  if (!IsResident(id)) {
    return Status::NotFound("structure id " + std::to_string(id) +
                            " is not resident");
  }
  resident_[id] = false;
  ++epoch_;
  const StructureKey& key = registry_->key(id);
  resident_bytes_ -= registry_->bytes(id);
  if (key.type == StructureType::kColumn) {
    column_resident_[key.columns.front()] = false;
  } else if (key.type == StructureType::kCpuNode) {
    CLOUDCACHE_CHECK_GT(extra_cpu_nodes_, 0u);
    --extra_cpu_nodes_;
  }
  return Status::OK();
}

void CacheState::Touch(StructureId id, SimTime now) {
  CLOUDCACHE_CHECK(IsResident(id));
  last_used_[id] = now;
}

SimTime CacheState::LastUsed(StructureId id) const {
  return id < last_used_.size() ? last_used_[id] : 0;
}

bool CacheState::ColumnResident(ColumnId column) const {
  CLOUDCACHE_CHECK_LT(column, column_resident_.size());
  return column_resident_[column];
}

std::vector<StructureId> CacheState::Residents() const {
  std::vector<StructureId> out;
  for (StructureId id = 0; id < resident_.size(); ++id) {
    if (resident_[id]) out.push_back(id);
  }
  return out;
}

void CacheState::SaveState(persist::Encoder* enc) const {
  enc->PutU64(resident_.size());
  for (size_t id = 0; id < resident_.size(); ++id) {
    enc->PutBool(resident_[id]);
    enc->PutDouble(last_used_[id]);
  }
  enc->PutU64(column_resident_.size());
  for (bool resident : column_resident_) enc->PutBool(resident);
  enc->PutU64(resident_bytes_);
  enc->PutU32(extra_cpu_nodes_);
  enc->PutU64(epoch_);
}

Status CacheState::RestoreState(persist::Decoder* dec) {
  uint64_t size = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&size));
  if (size > registry_->size()) {
    return Status::InvalidArgument(
        "snapshot cache state is larger than the structure registry");
  }
  resident_.assign(size, false);
  last_used_.assign(size, 0);
  for (size_t id = 0; id < size; ++id) {
    bool resident = false;
    double last_used = 0;
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadBool(&resident));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&last_used));
    resident_[id] = resident;
    last_used_[id] = last_used;
  }
  uint64_t columns = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&columns));
  if (columns != column_resident_.size()) {
    return Status::InvalidArgument(
        "snapshot column residency does not match the catalog width");
  }
  for (size_t col = 0; col < columns; ++col) {
    bool resident = false;
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadBool(&resident));
    column_resident_[col] = resident;
  }
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&resident_bytes_));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&extra_cpu_nodes_));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&epoch_));
  return Status::OK();
}

std::vector<StructureId> CacheState::ResidentsOfType(
    StructureType type) const {
  std::vector<StructureId> out;
  for (StructureId id = 0; id < resident_.size(); ++id) {
    if (resident_[id] && registry_->key(id).type == type) out.push_back(id);
  }
  return out;
}

}  // namespace cloudcache
