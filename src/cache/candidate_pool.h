#pragma once

#include <cstddef>
#include <functional>
#include <list>
#include <vector>

#include "src/persist/codec.h"
#include "src/structure/structure.h"
#include "src/util/units.h"

namespace cloudcache {

/// LRU pool of *candidate* structures.
///
/// "The cloud maintains a pool of structures relevant to the queries in the
/// recent past. … These structures are garbage collected using LRU policy,
/// so that the structure cache can be searched and processed efficiently
/// for each incoming query plan." (Section IV-B)
///
/// The pool bounds how many hypothetical structures the economy tracks
/// regret for; when a candidate falls off the cold end, its accumulated
/// regret is forfeited (the eviction callback in the economy clears the
/// ledger entry). Resident structures are tracked by CacheState, not here.
///
/// Invariant notes: aging is strict LRU unless a victim scorer is
/// installed (SetVictimScorer) — with one, an overflowing pool evicts the
/// lowest-scoring candidate among the `window` coldest, so eviction stays
/// a deterministic function of pool contents and the scorer (ties fall
/// back to coldest-first, i.e. classic LRU). Touch's returned reference is
/// a reused buffer, overwritten by the next Touch.
class CandidatePool {
 public:
  /// `capacity` = maximum number of candidates tracked; must be >= 1.
  explicit CandidatePool(size_t capacity);

  /// Installs a tenant-aware aging policy: when the pool overflows, the
  /// victim is the candidate with the *lowest* scorer value among the
  /// `window` least-recently-used entries (ties prefer the colder entry,
  /// so a constant scorer degenerates to classic LRU). The economy scores
  /// candidates by how broadly their accrued regret spreads over tenants,
  /// making a structure propped up by a single noisy tenant age out before
  /// one backed by many. Passing a null scorer restores strict LRU.
  void SetVictimScorer(std::function<double(StructureId)> scorer,
                       size_t window);

  /// Marks `id` as recently relevant, inserting it if new. Returns the
  /// candidates evicted to make room (possibly empty). The returned
  /// reference points at an internal buffer that the next Touch overwrites
  /// — consume it before touching again. Touching an id already in the
  /// pool (the per-query common case) allocates nothing.
  const std::vector<StructureId>& Touch(StructureId id, SimTime now);

  /// Removes `id` from the pool (e.g. because it was just built).
  void Erase(StructureId id);

  bool Contains(StructureId id) const {
    return id < present_.size() && present_[id];
  }
  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }

  /// Pool contents, most recently used first.
  std::vector<StructureId> MruOrder() const;

  /// Checkpoint support: saves the (id, last_touch) entries in exact MRU
  /// order; restore rebuilds the handle map. Capacity and the victim
  /// scorer are configuration, re-established by reconstruction.
  void SaveState(persist::Encoder* enc) const;
  Status RestoreState(persist::Decoder* dec);

 private:
  struct Entry {
    StructureId id;
    SimTime last_touch;
  };

  /// Removes and returns the overflow victim per the active policy.
  StructureId PopVictim();

  size_t capacity_;
  std::list<Entry> entries_;  // Front = most recently used.
  /// Flat id-indexed handle map (StructureIds are small dense integers):
  /// index_[id] is valid iff present_[id]. The per-query Touch of an
  /// already-tracked candidate — the hot path — is then one array load
  /// plus a splice, with no hashing.
  std::vector<std::list<Entry>::iterator> index_;
  std::vector<char> present_;
  std::vector<StructureId> evicted_;  // Touch's reused out-buffer.
  /// Tenant-aware aging (null = classic strict LRU).
  std::function<double(StructureId)> victim_scorer_;
  size_t victim_window_ = 1;
};

}  // namespace cloudcache
