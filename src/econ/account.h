#pragma once

#include "src/persist/codec.h"
#include "src/util/money.h"
#include "src/util/stats.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace cloudcache {

/// The cloud's bank account (Section IV-A).
///
/// "The cloud has an account where the user payments for the query
/// services they receive are deposited. Also, money from this account are
/// used in order to invest on new inventory. The overall credit amount in
/// this account is denoted as CR."
///
/// Three flows are distinguished so the books can be audited:
///  * revenue      — user payments (execution price + amortized shares +
///                   maintenance repayments + profit margin), deposited;
///  * expenditure  — metered infrastructure bills, charged (may push CR
///                   negative: a scheme whose decision prices ignore a
///                   resource, like the network-only baseline, under-
///                   collects and runs a deficit);
///  * investment   — build cost of new structures, withdrawn; refuses to
///                   overdraw because an altruistic cloud never gambles
///                   credit it does not have (policy iii).
///
/// Invariant: credit() == initial + revenue - expenditure - investment.
class CloudAccount {
 public:
  explicit CloudAccount(Money initial_credit)
      : initial_(initial_credit), credit_(initial_credit) {}

  /// Current credit CR.
  Money credit() const { return credit_; }

  /// Deposits a user payment.
  void DepositRevenue(Money amount, SimTime now);

  /// Charges a metered infrastructure bill.
  void ChargeExpenditure(Money amount, SimTime now);

  /// Withdraws the build cost of an investment; fails with
  /// ResourceExhausted if it would overdraw the account.
  Status WithdrawInvestment(Money amount, SimTime now);

  Money initial_credit() const { return initial_; }
  Money total_revenue() const { return revenue_; }
  Money total_expenditure() const { return expenditure_; }
  Money total_investment() const { return investment_; }

  /// Credit sampled after every mutation: (time, dollars).
  const TimeSeries& history() const { return history_; }

  /// Checkpoint support: every flow counter plus the full credit history
  /// (the history feeds run reports, so a resumed run must carry it).
  void SaveState(persist::Encoder* enc) const;
  Status RestoreState(persist::Decoder* dec);

 private:
  void Record(SimTime now) { history_.Add(now, credit_.ToDollars()); }

  Money initial_;
  Money credit_;
  Money revenue_;
  Money expenditure_;
  Money investment_;
  TimeSeries history_;
};

}  // namespace cloudcache
