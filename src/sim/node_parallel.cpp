#include "src/sim/node_parallel.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <string>
#include <utility>

#include "src/persist/metrics_io.h"
#include "src/util/logging.h"

namespace cloudcache {

ParallelNodeSimulator::ParallelNodeSimulator(const Catalog* catalog,
                                             ClusterScheme* cluster,
                                             WorkloadGenerator* workload,
                                             SimulatorOptions options)
    : catalog_(catalog),
      cluster_(cluster),
      workload_(workload),
      options_(options),
      pool_(std::max<uint32_t>(1, options.parallel_threads)) {
  CLOUDCACHE_CHECK(cluster_ != nullptr);
  CLOUDCACHE_CHECK(workload_ != nullptr);
}

ParallelNodeSimulator::RentSlice ParallelNodeSimulator::AccrueNodeRent(
    size_t index, SimTime now) {
  RentSlice slice;
  NodeBooks& books = books_[index];
  const double dt = now - books.metered_until;
  if (dt <= 0) return slice;
  books.metered_until = now;

  const PriceList& p = options_.metered_prices;
  Scheme& node = cluster_->mutable_node(index);
  slice.disk_dollars = static_cast<double>(node.TotalResidentBytes()) * dt *
                       p.disk_byte_second_dollars;
  slice.reservation_dollars =
      static_cast<double>(node.TotalExtraCpuNodes()) * dt *
      p.cpu_second_dollars * p.cpu_reserve_fraction;
  // Every node beyond the coordinator is a rented cluster node; it pays
  // its own surcharge over its own metered gaps (the classic driver bills
  // the fleet-wide surcharge to whichever node served last).
  if (index > 0) {
    slice.surcharge_dollars = dt * p.cpu_second_dollars *
                              p.cpu_reserve_fraction *
                              options_.node_rent_multiplier;
    slice.reservation_dollars += slice.surcharge_dollars;
  }

  books.pending_rent_dollars +=
      slice.disk_dollars + slice.reservation_dollars;
  const Money charge = Money::FromDollars(books.pending_rent_dollars);
  if (!charge.IsZero()) {
    books.pending_rent_dollars -= charge.ToDollars();
    node.ChargeExpenditure(charge, now);
  }
  return slice;
}

void ParallelNodeSimulator::ServeSlice(size_t index,
                                       QueryRecord* const* records,
                                       size_t count) {
  Scheme& node = cluster_->mutable_node(index);
  CostModel& metered = *metered_models_[index];
  const PriceList& p = options_.metered_prices;

  for (size_t k = 0; k < count; ++k) {
    QueryRecord& rec = *records[k];
    const SimTime now = rec.query.arrival_time;

    const RentSlice rent = AccrueNodeRent(index, now);
    rec.rent_disk_dollars = rent.disk_dollars;
    rec.rent_reservation_dollars = rent.reservation_dollars;
    rec.rent_node_dollars = rent.surcharge_dollars;

    rec.served = cluster_->ServeOnNode(index, rec.query, now);

    // Metered execution + build bill: the Simulator::MeterQuery
    // arithmetic, with the charge going straight to the serving node
    // (bypassing the cluster's serial last-served billing hook).
    Money charged;
    if (rec.served.served) {
      const ExecutionEstimate m =
          metered.EstimateExecution(rec.query, rec.served.spec);
      rec.bill.cpu_dollars += p.CpuCost(m.cpu_seconds).ToDollars();
      rec.bill.io_dollars += p.IoCost(m.io_ops).ToDollars();
      rec.bill.network_dollars += p.NetworkCost(m.wan_bytes).ToDollars();
      charged += p.CpuCost(m.cpu_seconds) + p.IoCost(m.io_ops) +
                 p.NetworkCost(m.wan_bytes);
      rec.wan_bytes += m.wan_bytes;
    }
    const BuildUsage& usage = rec.served.build_usage;
    if (usage.cpu_seconds > 0 || usage.wan_bytes > 0 || usage.io_ops > 0) {
      rec.bill.cpu_dollars += p.CpuCost(usage.cpu_seconds).ToDollars();
      rec.bill.network_dollars += p.NetworkCost(usage.wan_bytes).ToDollars();
      rec.bill.io_dollars += p.IoCost(usage.io_ops).ToDollars();
      rec.wan_bytes += usage.wan_bytes;
    }
    if (!charged.IsZero()) node.ChargeExpenditure(charged, now);
    rec.credit_after = node.credit();
  }
}

void ParallelNodeSimulator::MergeRecord(const QueryRecord& rec,
                                        SimMetrics* metrics) {
  const SimTime now = rec.query.arrival_time;

  // Same per-query sequence as Simulator::ProcessQuery: rent components
  // first, then the execution/build bill, then the outcome counters.
  if (rec.rent_node_dollars > 0) {
    metrics->cluster.node_rent_dollars += rec.rent_node_dollars;
  }
  metrics->operating_cost.disk_dollars += rec.rent_disk_dollars;
  metrics->operating_cost.cpu_dollars += rec.rent_reservation_dollars;
  metrics->operating_cost += rec.bill;
  metrics->wan_bytes += rec.wan_bytes;

  AccountOutcome(rec.served, metrics);
  books_[rec.node].credit = rec.credit_after;

  if (options_.timeline_stride != 0 &&
      (rec.index % options_.timeline_stride == 0 ||
       rec.index + 1 == options_.num_queries)) {
    metrics->cost_over_time.Add(now, metrics->operating_cost.Total());
    Money credit;
    for (const NodeBooks& books : books_) credit += books.credit;
    metrics->credit_over_time.Add(now, credit.ToDollars());
  }
}

void ParallelNodeSimulator::SyncRentTo(SimTime close, SimMetrics* metrics) {
  for (size_t n = 0; n < books_.size(); ++n) {
    const RentSlice rent = AccrueNodeRent(n, close);
    if (rent.surcharge_dollars > 0) {
      metrics->cluster.node_rent_dollars += rent.surcharge_dollars;
    }
    metrics->operating_cost.disk_dollars += rent.disk_dollars;
    metrics->operating_cost.cpu_dollars += rent.reservation_dollars;
    books_[n].credit = cluster_->node(n).credit();
  }
}

void ParallelNodeSimulator::ApplyFleetChange(
    const ClusterScheme::WindowEnd& end, SimTime close) {
  switch (end.decision) {
    case ElasticDecision::kHold:
      break;
    case ElasticDecision::kRent: {
      // A fresh node accrues rent from the rental instant and estimates
      // with its own metered model.
      NodeBooks books;
      books.metered_until = close;
      books.credit = cluster_->node(cluster_->num_nodes() - 1).credit();
      books_.push_back(books);
      metered_models_.push_back(
          std::make_unique<CostModel>(catalog_, &options_.metered_prices));
      break;
    }
    case ElasticDecision::kRelease: {
      // The heir absorbed the victim's remaining credit inside the
      // cluster; its sub-micro-dollar rent residue follows the same
      // books so scale-in never forgives metered rent.
      const double residue =
          books_[end.released_index].pending_rent_dollars;
      books_.erase(books_.begin() +
                   static_cast<std::ptrdiff_t>(end.released_index));
      metered_models_.erase(metered_models_.begin() +
                            static_cast<std::ptrdiff_t>(end.released_index));
      books_[end.heir_index].pending_rent_dollars += residue;
      books_[end.heir_index].credit =
          cluster_->node(end.heir_index).credit();
      break;
    }
  }
}

void ParallelNodeSimulator::FlushResidualRent() {
  // Same rounded-up close of the books as Simulator::FlushResidualRent,
  // node by node.
  for (size_t n = 0; n < books_.size(); ++n) {
    NodeBooks& books = books_[n];
    if (books.pending_rent_dollars <= 0) continue;
    const Money charge = Money::FromMicros(static_cast<int64_t>(
        std::ceil(books.pending_rent_dollars * 1e6)));
    books.pending_rent_dollars = 0;
    if (!charge.IsZero()) {
      cluster_->mutable_node(n).ChargeExpenditure(charge, last_close_);
    }
  }
}

SimMetrics ParallelNodeSimulator::Run() {
  Result<SimMetrics> result = RunChecked();
  CLOUDCACHE_CHECK(result.ok());
  return std::move(result).value();
}

Status ParallelNodeSimulator::MaybeCheckpointAndCrash(
    uint64_t processed, uint64_t previous, const SimMetrics& metrics) {
  const CheckpointOptions& cp = options_.checkpoint;
  if (processed >= options_.num_queries) return Status::OK();
  // Window closes are the only deterministic boundaries here, so a
  // snapshot lands at the first close at or past each multiple of
  // `every` — i.e. when this window crossed one.
  if (cp.every > 0 && processed / cp.every > previous / cp.every) {
    CLOUDCACHE_RETURN_IF_ERROR(WriteSnapshot(processed, metrics));
  }
  if (cp.crash_after > 0 && processed >= cp.crash_after) {
    return Status::ResourceExhausted(
        "crash injection stopped the run after " +
        std::to_string(processed) + " queries, before finalization");
  }
  return Status::OK();
}

Status ParallelNodeSimulator::WriteSnapshot(uint64_t processed,
                                            const SimMetrics& metrics) const {
  const CheckpointOptions& cp = options_.checkpoint;
  persist::SnapshotWriter writer(cp.config_hash);
  persist::Encoder* meta = writer.AddSection("meta");
  meta->PutU8(kDriverModeWindowed);
  meta->PutU64(processed);
  meta->PutU64(options_.num_queries);
  meta->PutString(cluster_->name());
  persist::Encoder* driver = writer.AddSection("driver");
  driver->PutDouble(last_close_);
  driver->PutU64(books_.size());
  for (const NodeBooks& books : books_) {
    driver->PutDouble(books.pending_rent_dollars);
    driver->PutDouble(books.metered_until);
    driver->PutMoney(books.credit);
  }
  persist::Encoder* workload = writer.AddSection("workload");
  workload->PutU64(1);
  workload_->SaveState(workload);
  cluster_->SaveState(writer.AddSection("scheme"));
  persist::SaveSimMetrics(metrics, writer.AddSection("metrics"));
  return writer.WriteToFile(cp.path);
}

Status ParallelNodeSimulator::RestoreFrom(
    const persist::SnapshotReader& reader) {
  CLOUDCACHE_RETURN_IF_ERROR(
      reader.ExpectConfigHash(options_.checkpoint.config_hash));

  Result<persist::Decoder> meta = reader.Section("meta");
  CLOUDCACHE_RETURN_IF_ERROR(meta.status());
  uint8_t mode = 0;
  uint64_t processed = 0;
  uint64_t total = 0;
  std::string scheme_name;
  CLOUDCACHE_RETURN_IF_ERROR(meta->ReadU8(&mode));
  CLOUDCACHE_RETURN_IF_ERROR(meta->ReadU64(&processed));
  CLOUDCACHE_RETURN_IF_ERROR(meta->ReadU64(&total));
  CLOUDCACHE_RETURN_IF_ERROR(meta->ReadString(&scheme_name));
  CLOUDCACHE_RETURN_IF_ERROR(meta->ExpectEnd());
  if (mode != kDriverModeWindowed) {
    return Status::FailedPrecondition(
        "snapshot was written by driver mode " + std::to_string(mode) +
        " but this run uses the windowed parallel driver (check --threads "
        "against the checkpointed run)");
  }
  if (total != options_.num_queries) {
    return Status::FailedPrecondition(
        "snapshot run length " + std::to_string(total) +
        " does not match this run's " +
        std::to_string(options_.num_queries));
  }
  if (processed >= options_.num_queries) {
    return Status::FailedPrecondition(
        "snapshot claims more processed queries than the run length");
  }
  if (scheme_name != cluster_->name()) {
    return Status::FailedPrecondition(
        "snapshot was taken under scheme '" + scheme_name +
        "' but this run drives '" + cluster_->name() + "'");
  }

  // The fleet first: the rent books are index-aligned with it.
  Result<persist::Decoder> scheme = reader.Section("scheme");
  CLOUDCACHE_RETURN_IF_ERROR(scheme.status());
  CLOUDCACHE_RETURN_IF_ERROR(cluster_->RestoreState(&scheme.value()));
  CLOUDCACHE_RETURN_IF_ERROR(scheme->ExpectEnd());

  Result<persist::Decoder> driver = reader.Section("driver");
  CLOUDCACHE_RETURN_IF_ERROR(driver.status());
  CLOUDCACHE_RETURN_IF_ERROR(driver->ReadDouble(&last_close_));
  uint64_t book_count = 0;
  CLOUDCACHE_RETURN_IF_ERROR(driver->ReadLength(&book_count));
  if (book_count != cluster_->num_nodes()) {
    return Status::InvalidArgument(
        "snapshot rent books cover " + std::to_string(book_count) +
        " nodes but the restored fleet has " +
        std::to_string(cluster_->num_nodes()));
  }
  books_.assign(book_count, NodeBooks{});
  for (NodeBooks& books : books_) {
    CLOUDCACHE_RETURN_IF_ERROR(
        driver->ReadDouble(&books.pending_rent_dollars));
    CLOUDCACHE_RETURN_IF_ERROR(driver->ReadDouble(&books.metered_until));
    CLOUDCACHE_RETURN_IF_ERROR(driver->ReadMoney(&books.credit));
  }
  CLOUDCACHE_RETURN_IF_ERROR(driver->ExpectEnd());

  Result<persist::Decoder> workload = reader.Section("workload");
  CLOUDCACHE_RETURN_IF_ERROR(workload.status());
  uint64_t generator_count = 0;
  CLOUDCACHE_RETURN_IF_ERROR(workload->ReadLength(&generator_count));
  if (generator_count != 1) {
    return Status::FailedPrecondition(
        "snapshot has " + std::to_string(generator_count) +
        " workload streams but the windowed driver runs one");
  }
  CLOUDCACHE_RETURN_IF_ERROR(workload_->RestoreState(&workload.value()));
  CLOUDCACHE_RETURN_IF_ERROR(workload->ExpectEnd());

  Result<persist::Decoder> metrics = reader.Section("metrics");
  CLOUDCACHE_RETURN_IF_ERROR(metrics.status());
  restored_metrics_ = SimMetrics();
  CLOUDCACHE_RETURN_IF_ERROR(
      persist::RestoreSimMetrics(&metrics.value(), &restored_metrics_));
  CLOUDCACHE_RETURN_IF_ERROR(metrics->ExpectEnd());

  metered_models_.clear();
  for (size_t n = 0; n < cluster_->num_nodes(); ++n) {
    metered_models_.push_back(
        std::make_unique<CostModel>(catalog_, &options_.metered_prices));
  }
  start_processed_ = processed;
  restored_ = true;
  return Status::OK();
}

Result<SimMetrics> ParallelNodeSimulator::RunChecked() {
  SimMetrics metrics;
  if (restored_) {
    metrics = std::move(restored_metrics_);
  } else {
    metrics.scheme_name = cluster_->name();
  }

  // The window IS the elasticity check interval, so full windows land the
  // controller exactly where the serial path's modulo check fires.
  const uint64_t window_size =
      cluster_->options().elasticity.check_interval_queries;

  if (!restored_) {
    const SimTime start = workload_->PeekNextArrival();
    last_close_ = start;
    books_.assign(cluster_->num_nodes(), NodeBooks{});
    metered_models_.clear();
    for (size_t n = 0; n < cluster_->num_nodes(); ++n) {
      books_[n].metered_until = start;
      books_[n].credit = cluster_->node(n).credit();
      metered_models_.push_back(
          std::make_unique<CostModel>(catalog_, &options_.metered_prices));
    }
  }

  std::vector<QueryRecord> window;
  std::vector<std::vector<QueryRecord*>> slices;
  std::vector<std::future<void>> futures;
  uint64_t processed = start_processed_;
  while (processed < options_.num_queries) {
    const uint64_t count =
        std::min<uint64_t>(window_size, options_.num_queries - processed);
    window.clear();
    window.reserve(count);
    for (uint64_t k = 0; k < count; ++k) {
      QueryRecord rec;
      rec.query = workload_->Next();
      rec.index = processed + k;
      window.push_back(std::move(rec));
    }

    // Route the whole window against the window-start residencies (no
    // node has served yet, so every route sees the same frozen fleet).
    slices.assign(cluster_->num_nodes(), {});
    for (QueryRecord& rec : window) {
      rec.node = cluster_->RouteQuery(rec.query);
      slices[rec.node].push_back(&rec);
    }

    // One task per non-empty slice; tasks share no mutable state.
    futures.clear();
    for (size_t n = 0; n < slices.size(); ++n) {
      if (slices[n].empty()) continue;
      futures.push_back(pool_.Submit([this, n, &slices] {
        ServeSlice(n, slices[n].data(), slices[n].size());
      }));
    }
    for (std::future<void>& future : futures) future.get();

    // Merge in global arrival order, then close the window serially.
    for (const QueryRecord& rec : window) MergeRecord(rec, &metrics);
    const SimTime close = window.back().query.arrival_time;
    last_close_ = close;
    SyncRentTo(close, &metrics);
    const ClusterScheme::WindowEnd end = cluster_->EndWindow(
        close, window.front().query.arrival_time, close, count);
    ApplyFleetChange(end, close);
    const uint64_t previous = processed;
    processed += count;
    CLOUDCACHE_RETURN_IF_ERROR(
        MaybeCheckpointAndCrash(processed, previous, metrics));
  }

  FlushResidualRent();
  metrics.final_credit = cluster_->credit();
  metrics.final_resident_bytes = cluster_->TotalResidentBytes();
  metrics.final_extra_nodes = cluster_->TotalExtraCpuNodes();
  cluster_->DescribeCluster(&metrics.cluster);
  return metrics;
}

}  // namespace cloudcache
