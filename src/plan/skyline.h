#pragma once

#include <cstddef>
#include <vector>

#include "src/plan/plan.h"

namespace cloudcache {

/// Pareto skyline over (execution time, price), per footnote 2 of the
/// paper: "PQ holds only the skyline query plans (w.r.t. execution time and
/// overall cost); i.e. if there are two plans with the same execution time,
/// only the cheapest one is encompassed."
///
/// A plan is dominated if another plan is no slower AND no more expensive
/// (and strictly better on at least one axis). Ties on both axes keep the
/// first plan (stable). Returns the surviving indices in ascending-time
/// order.
std::vector<size_t> SkylineIndices(const std::vector<QueryPlan>& plans);

/// Reusable buffers for SkylineFilterInto; hold one per engine so the
/// per-query filter allocates nothing in steady state. `spare_slots`
/// parks surplus output plans when the survivor count shrinks, preserving
/// their inner-vector capacity for the next query.
struct SkylineScratch {
  /// Packed sort key of one plan: the dominance sort runs over one dense
  /// array of these instead of chasing QueryPlan objects per compare.
  struct Key {
    double time;
    int64_t price;
    size_t index;
  };

  std::vector<Key> existing_keys;
  std::vector<Key> possible_keys;
  std::vector<Key> frontier;
  std::vector<QueryPlan> spare_slots;
};

/// Applies the skyline to each partition of `in` separately — existing and
/// possible plans are skylined independently, because PQexist must retain
/// an executable frontier even when hypothetical plans dominate it — and
/// copies the survivors into `out` (existing first, each partition in
/// ascending-time order). `in` is left untouched, so callers may pass the
/// enumerator's shared per-template plan set; `out`'s plan slots and inner
/// vectors are recycled across calls (only the survivors pay a copy).
/// `in` and `out` must be distinct objects.
void SkylineFilterInto(const PlanSet& in, PlanSet* out,
                       SkylineScratch* scratch);

/// Zero-copy form for the per-query decision loop: fills `out` with the
/// survivors' indices into `in.plans` (existing partition first, each in
/// ascending-time order — the same survivors, in the same order, as
/// SkylineFilterInto) without touching any plan. The caller keeps reading
/// plans through `in`, so no plan vectors are copied at all.
void SkylineIndicesInto(const PlanSet& in, std::vector<size_t>* out,
                        SkylineScratch* scratch);

/// Convenience value-returning form of SkylineFilterInto.
PlanSet SkylineFilter(PlanSet set);

}  // namespace cloudcache
