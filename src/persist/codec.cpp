#include "src/persist/codec.h"

#include <array>

namespace cloudcache {
namespace persist {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t n = 0; n < 256; ++n) {
    uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace persist
}  // namespace cloudcache
