#include "src/query/templates.h"

#include <algorithm>

namespace cloudcache {

std::vector<QueryTemplate> MakeTpchTemplates() {
  std::vector<QueryTemplate> templates;

  // T0 "pricing_summary" (after TPC-H Q1): aggregation over a recent
  // shipping window; CPU-bound, tiny (grouped) result.
  templates.push_back({
      .name = "pricing_summary",
      .table = "lineitem",
      .output_columns = {"l_quantity", "l_extendedprice", "l_discount",
                         "l_tax", "l_returnflag", "l_linestatus"},
      .predicates = {{"l_shipdate", 0.004, 0.012, false, true}},
      .row_limit_fraction = 1e-7,
      .cpu_multiplier = 2.2,
      .parallel_fraction = 0.97,
  });

  // T1 "shipping_scan" (after Q6): range selection on lineitem returning a
  // TOP-N sample of matching rows; the canonical result-heavy scan.
  templates.push_back({
      .name = "shipping_scan",
      .table = "lineitem",
      .output_columns = {"l_extendedprice", "l_discount", "l_quantity"},
      .predicates = {{"l_shipdate", 0.002, 0.020, false, true},
                     {"l_discount", 0.15, 0.45, false, false},
                     {"l_quantity", 0.30, 0.60, false, false}},
      .row_limit_fraction = 0.05,
      .cpu_multiplier = 1.0,
      .parallel_fraction = 0.95,
  });

  // T2 "order_browse" (after Q3): orders driving table, date window plus
  // customer-region locality.
  templates.push_back({
      .name = "order_browse",
      .table = "orders",
      .output_columns = {"o_orderkey", "o_totalprice", "o_orderdate",
                         "o_shippriority"},
      .predicates = {{"o_orderdate", 0.002, 0.020, false, true},
                     {"o_custkey", 0.002, 0.020, false, false}},
      .row_limit_fraction = 1.0,
      .cpu_multiplier = 1.6,
      .parallel_fraction = 0.9,
  });

  // T3 "returned_items" (after Q10): receipt window (clustered) plus
  // returned-flag equality.
  templates.push_back({
      .name = "returned_items",
      .table = "lineitem",
      .output_columns = {"l_orderkey", "l_extendedprice", "l_discount"},
      .predicates = {{"l_receiptdate", 0.002, 0.020, false, true},
                     {"l_returnflag", 0.24, 0.26, true, false}},
      .row_limit_fraction = 0.02,
      .cpu_multiplier = 1.8,
      .parallel_fraction = 0.9,
  });

  // T4 "part_promo" (after Q14): promotion-window scan keyed by part
  // locality.
  templates.push_back({
      .name = "part_promo",
      .table = "lineitem",
      .output_columns = {"l_extendedprice", "l_discount", "l_partkey"},
      .predicates = {{"l_shipdate", 0.005, 0.020, false, true},
                     {"l_partkey", 0.05, 0.20, false, false}},
      .row_limit_fraction = 0.05,
      .cpu_multiplier = 1.3,
      .parallel_fraction = 0.93,
  });

  // T5 "customer_segment": market-segment slice of customers within a
  // balance band (balance band is the locality dimension here).
  templates.push_back({
      .name = "customer_segment",
      .table = "customer",
      .output_columns = {"c_custkey", "c_name", "c_acctbal", "c_nationkey"},
      .predicates = {{"c_acctbal", 0.05, 0.30, false, true},
                     {"c_mktsegment", 0.18, 0.22, true, false}},
      .row_limit_fraction = 0.02,
      .cpu_multiplier = 1.0,
      .parallel_fraction = 0.85,
  });

  // T6 "discounted_parts" (after Q19): part-key region with size/container
  // predicate stack; small result.
  templates.push_back({
      .name = "discounted_parts",
      .table = "part",
      .output_columns = {"p_partkey", "p_retailprice", "p_brand"},
      .predicates = {{"p_partkey", 0.01, 0.05, false, true},
                     {"p_size", 0.08, 0.20, false, false},
                     {"p_container", 0.02, 0.03, true, false}},
      .row_limit_fraction = 1.0,
      .cpu_multiplier = 1.1,
      .parallel_fraction = 0.85,
  });

  return templates;
}

std::vector<QueryTemplate> MakeSdssTemplates() {
  std::vector<QueryTemplate> templates;

  // Cone search: sky-region window on (ra, dec), returning photometry.
  templates.push_back({
      .name = "cone_search",
      .table = "photoobj",
      .output_columns = {"objid", "ra", "dec", "psfmag_r", "psfmag_g"},
      .predicates = {{"ra", 0.001, 0.010, false, true},
                     {"dec", 0.01, 0.10, false, false}},
      .row_limit_fraction = 1.0,
      .cpu_multiplier = 1.0,
      .parallel_fraction = 0.95,
  });

  // Color cut: magnitude-difference selection across bands.
  templates.push_back({
      .name = "color_cut",
      .table = "photoobj",
      .output_columns = {"objid", "psfmag_u", "psfmag_g", "psfmag_r",
                         "psfmag_i", "psfmag_z"},
      .predicates = {{"htmid", 0.002, 0.020, false, true},
                     {"psfmag_r", 0.05, 0.25, false, false},
                     {"obj_type", 0.08, 0.12, true, false}},
      .row_limit_fraction = 0.05,
      .cpu_multiplier = 1.4,
      .parallel_fraction = 0.96,
  });

  // Spectro match: spectroscopic redshift slice.
  templates.push_back({
      .name = "spectro_match",
      .table = "specobj",
      .output_columns = {"specobjid", "bestobjid", "z", "spec_class"},
      .predicates = {{"z", 0.01, 0.15, false, true},
                     {"zwarning", 0.80, 0.95, true, false}},
      .row_limit_fraction = 0.5,
      .cpu_multiplier = 1.2,
      .parallel_fraction = 0.9,
  });

  // Quality scan: survey-quality aggregation over fields; tiny result.
  templates.push_back({
      .name = "quality_scan",
      .table = "field",
      .output_columns = {"fieldid", "seeing_r", "sky_r", "quality"},
      .predicates = {{"mjd_r", 0.05, 0.50, false, true}},
      .row_limit_fraction = 1e-4,
      .cpu_multiplier = 1.8,
      .parallel_fraction = 0.9,
  });

  // Flux histogram: wide scan binning petrosian radii; CPU heavy.
  templates.push_back({
      .name = "flux_histogram",
      .table = "photoobj",
      .output_columns = {"petrorad_r", "petror50_r", "petror90_r",
                         "extinction_r"},
      .predicates = {{"htmid", 0.010, 0.050, false, true},
                     {"score", 0.30, 0.70, false, false},
                     {"mode", 0.60, 0.70, true, false}},
      .row_limit_fraction = 1e-5,
      .cpu_multiplier = 2.5,
      .parallel_fraction = 0.98,
  });

  return templates;
}

Result<std::vector<ResolvedTemplate>> ResolveTemplates(
    const Catalog& catalog, const std::vector<QueryTemplate>& templates) {
  std::vector<ResolvedTemplate> resolved;
  resolved.reserve(templates.size());
  for (const QueryTemplate& tmpl : templates) {
    Result<TableId> table = catalog.FindTable(tmpl.table);
    if (!table.ok()) return table.status();
    ResolvedTemplate out;
    out.name = tmpl.name;
    out.table = *table;
    out.row_limit_fraction = tmpl.row_limit_fraction;
    out.cpu_multiplier = tmpl.cpu_multiplier;
    out.parallel_fraction = tmpl.parallel_fraction;
    for (const std::string& column : tmpl.output_columns) {
      Result<ColumnId> id = catalog.FindColumn(tmpl.table + "." + column);
      if (!id.ok()) return id.status();
      out.output_columns.push_back(*id);
    }
    for (const PredicateSpec& spec : tmpl.predicates) {
      if (spec.min_selectivity <= 0.0 || spec.max_selectivity > 1.0 ||
          spec.min_selectivity > spec.max_selectivity) {
        return Status::InvalidArgument(
            "template '" + tmpl.name + "' predicate on '" + spec.column +
            "' has malformed selectivity range");
      }
      Result<ColumnId> id =
          catalog.FindColumn(tmpl.table + "." + spec.column);
      if (!id.ok()) return id.status();
      out.predicates.push_back({*id, spec.min_selectivity,
                                spec.max_selectivity, spec.equality,
                                spec.clustered});
    }
    resolved.push_back(std::move(out));
  }
  return resolved;
}

Query InstantiateQuery(const ResolvedTemplate& tmpl, const Catalog& catalog,
                       Rng& rng, int template_id, uint64_t query_id,
                       double selectivity_scale) {
  Query query;
  query.id = query_id;
  query.template_id = template_id;
  query.table = tmpl.table;
  query.output_columns = tmpl.output_columns;
  query.cpu_multiplier = tmpl.cpu_multiplier;
  query.parallel_fraction = tmpl.parallel_fraction;
  for (const auto& spec : tmpl.predicates) {
    Predicate pred;
    pred.column = spec.column;
    const double raw =
        rng.NextUniform(spec.min_selectivity, spec.max_selectivity);
    pred.selectivity = std::clamp(raw * selectivity_scale, 1e-9, 1.0);
    pred.equality = spec.equality;
    pred.clustered = spec.clustered;
    query.predicates.push_back(pred);
  }
  DeriveResultShape(catalog, tmpl.row_limit_fraction, &query);
  // Prime the accessed-columns memo here, once per query, so every
  // downstream consumer (enumerator, cost model, metered re-pricing) reads
  // the same precomputed vector.
  query.AccessedColumns();
  return query;
}

}  // namespace cloudcache
