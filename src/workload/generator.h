#pragma once

#include <cstdint>
#include <vector>

#include "src/catalog/schema.h"
#include "src/persist/codec.h"
#include "src/query/query.h"
#include "src/query/templates.h"
#include "src/util/rng.h"
#include "src/util/units.h"

namespace cloudcache {

/// Workload shape knobs. Defaults reproduce the evaluation workload of
/// Section VII-A: 7 TPC-H templates whose popularity is skewed and drifts
/// over time ("simulates the query evolution of a million SDSS-like
/// queries"), with the two properties Section VI demands — data access
/// locality (hot templates dominate) and temporal locality (bursts of the
/// same template).
struct WorkloadOptions {
  /// Zipf skew of template popularity (0 = uniform).
  double popularity_skew = 1.0;
  /// After this many queries, the popularity ranking rotates by one
  /// position — the workload's slow evolution. 0 disables drift.
  uint64_t drift_period = 20'000;
  /// Probability the next query repeats the previous template (burstiness
  /// / temporal locality).
  double repeat_probability = 0.3;
  /// Mean seconds between arrivals (the x-axis of Figs. 4 and 5).
  double interarrival_seconds = 10.0;
  /// Fixed (paper-style "inter-query time interval") or Poisson arrivals.
  enum class Arrival { kFixed, kPoisson } arrival = Arrival::kFixed;
  /// Global multiplier on drawn predicate selectivities (hot-region
  /// width; the A5 ablation sweeps it).
  double selectivity_scale = 1.0;
  /// PRNG seed; a run is a pure function of (options, templates, catalog).
  uint64_t seed = 42;
  /// Stamped onto every generated query's `tenant_id` (multi-tenant
  /// simulation; 0 = the classic single stream).
  uint32_t tenant_id = 0;
  /// Rotates the template-popularity ranking by this many positions, on
  /// top of the drift rotation — gives each tenant of a multi-tenant run a
  /// distinct template mix from the same template set. 0 = the base mix.
  size_t popularity_offset = 0;
};

/// Deterministic query stream generator.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const Catalog* catalog,
                    std::vector<ResolvedTemplate> templates,
                    WorkloadOptions options);

  /// Produces the next query; arrival_time advances per the arrival
  /// process and id increments from 0.
  Query Next();

  /// Arrival time the next query will carry.
  SimTime PeekNextArrival() const { return next_arrival_; }

  uint64_t queries_generated() const { return next_id_; }
  const std::vector<ResolvedTemplate>& templates() const {
    return templates_;
  }
  const WorkloadOptions& options() const { return options_; }

  /// Checkpoint support: the RNG position plus the stream cursor (next id,
  /// next arrival, burst memory). The samplers are pure functions of the
  /// configuration and are not saved.
  void SaveState(persist::Encoder* enc) const;
  Status RestoreState(persist::Decoder* dec);

 private:
  /// Popularity rank of template `index` in the current drift phase.
  size_t RankOf(size_t index, uint64_t phase) const;
  /// Draws the template for the next query.
  size_t DrawTemplate();

  const Catalog* catalog_;
  std::vector<ResolvedTemplate> templates_;
  WorkloadOptions options_;
  Rng rng_;
  ZipfSampler popularity_;
  uint64_t next_id_ = 0;
  SimTime next_arrival_ = 0;
  size_t previous_template_ = 0;
  bool have_previous_ = false;
};

}  // namespace cloudcache
