// loadgen — replay WorkloadGenerator streams against cloudcached over N
// concurrent connections and report aggregate throughput (docs/server.md).
//
// The client reconstructs the server's workload from the same shared
// flags (the server checks the config hash at Hello time), claims one
// connection per stream, and sends each stream's queries closed-loop.
// The merged send order across connections is the server's concern — its
// merge gate serializes service into simulator order regardless of how
// the connections race.
//
// Exit codes: 0 = success; 1 = connection/protocol/server error;
// 2 = flag errors.
//
// Examples:
//   loadgen --port=4909 --count=10000
//   loadgen --port-file=port.txt --tenants=4 --count=2000 --shutdown
//   loadgen --port=4909 --stats   (probe a running server and exit)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/server/protocol.h"
#include "src/server/socket_io.h"
#include "src/sim/experiment.h"
#include "src/util/status.h"
#include "tools/experiment_flags.h"

namespace {

using namespace cloudcache;
using tools::ExperimentFlags;
using tools::FlagParse;
using tools::FlagValue;

struct Args {
  ExperimentFlags exp;  // Shared experiment surface (config-hash parity).
  std::string host = "127.0.0.1";
  uint16_t port = server::kDefaultPort;
  std::string port_file;  // Read the port from this file instead.
  uint64_t count = 0;     // Merged queries to send; 0 = run to completion.
  bool shutdown = false;  // Send Shutdown once the streams finish.
  bool stats = false;     // Probe Stats and exit (no workload).
  uint64_t watch = 0;     // Subscribe and print acks every N (0 = off).
  bool config_check = true;  // Send our config hash in Hello.
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [flags]\n"
      "%s"
      "  --host=ADDR           server address (127.0.0.1)\n"
      "  --port=N              server port (4909)\n"
      "  --port-file=PATH      read the port from this file (cloudcached\n"
      "                        --port-file writes it)\n"
      "  --count=K             merged queries to send across all streams\n"
      "                        (0 = drive the configured run to completion)\n"
      "  --shutdown            request graceful server shutdown at the end\n"
      "  --stats               print server stats and exit\n"
      "  --watch[=N]           subscribe to server stats and print a\n"
      "                        snapshot every N served queries (1000)\n"
      "                        until the run completes or the server\n"
      "                        drains\n"
      "  --no-config-check     skip the Hello config-hash cross-check\n",
      argv0, tools::ExperimentFlagsUsage());
}

std::optional<Args> Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const FlagParse shared = tools::ParseExperimentFlag(argv[i], &args.exp);
    if (shared == FlagParse::kConsumed) continue;
    if (shared == FlagParse::kError) return std::nullopt;
    std::string v;
    if (FlagValue(argv[i], "--host", &v)) args.host = v;
    else if (FlagValue(argv[i], "--port", &v))
      args.port = static_cast<uint16_t>(std::strtoul(v.c_str(), nullptr, 10));
    else if (FlagValue(argv[i], "--port-file", &v)) args.port_file = v;
    else if (FlagValue(argv[i], "--count", &v)) args.count = std::stoull(v);
    else if (std::strcmp(argv[i], "--shutdown") == 0) args.shutdown = true;
    else if (std::strcmp(argv[i], "--stats") == 0) args.stats = true;
    else if (std::strcmp(argv[i], "--watch") == 0) args.watch = 1000;
    else if (FlagValue(argv[i], "--watch", &v)) {
      args.watch = std::stoull(v);
      if (args.watch == 0) {
        std::fprintf(stderr, "--watch wants a cadence >= 1\n");
        return std::nullopt;
      }
    }
    else if (std::strcmp(argv[i], "--no-config-check") == 0)
      args.config_check = false;
    else {
      Usage(argv[0]);
      return std::nullopt;
    }
  }
  return args;
}

/// One Hello/HelloAck exchange; `*conn` is connected on success.
Status Handshake(const Args& args, uint32_t stream_id, uint64_t config_hash,
                 server::Socket* conn, server::HelloAckMsg* ack) {
  Result<server::Socket> connected =
      server::ConnectTcp(args.host, args.port);
  CLOUDCACHE_RETURN_IF_ERROR(connected.status());
  *conn = std::move(connected).value();

  server::HelloMsg hello;
  hello.stream_id = stream_id;
  hello.config_hash = args.config_check ? config_hash : 0;
  persist::Encoder enc;
  server::EncodeHello(hello, &enc);
  CLOUDCACHE_RETURN_IF_ERROR(server::WriteFrame(*conn, enc));

  std::vector<uint8_t> payload;
  bool clean_eof = false;
  CLOUDCACHE_RETURN_IF_ERROR(
      server::ReadFrame(*conn, &payload, &clean_eof));
  if (clean_eof) {
    return Status::IoError("server closed during the Hello handshake");
  }
  persist::Decoder dec(payload.data(), payload.size());
  server::MessageType type = server::MessageType::kHelloAck;
  CLOUDCACHE_RETURN_IF_ERROR(server::PeekType(&dec, &type));
  if (type == server::MessageType::kError) {
    server::ErrorMsg error;
    CLOUDCACHE_RETURN_IF_ERROR(server::DecodeError(&dec, &error));
    return Status::FailedPrecondition(
        std::string("server refused the connection: ") +
        server::ErrorCodeName(error.code) + ": " + error.message);
  }
  if (type != server::MessageType::kHelloAck) {
    return Status::Internal("unexpected reply to Hello");
  }
  return server::DecodeHelloAck(&dec, ack);
}

/// Outcome of one stream's replay thread.
struct StreamResult {
  uint64_t outcomes = 0;
  Status status = Status::OK();
  bool run_complete = false;  // Stopped on the server's kRunComplete.
};

/// Sends `queries` closed-loop on an already-claimed stream connection.
void ReplayStream(const server::Socket& conn,
                  const std::vector<Query>& queries, StreamResult* out) {
  std::vector<uint8_t> payload;
  for (const Query& query : queries) {
    persist::Encoder enc;
    server::EncodeQuery(query, &enc);
    Status status = server::WriteFrame(conn, enc);
    if (!status.ok()) {
      out->status = status;
      return;
    }
    bool clean_eof = false;
    status = server::ReadFrame(conn, &payload, &clean_eof);
    if (!status.ok() || clean_eof) {
      out->status = clean_eof
                        ? Status::IoError("server closed mid-stream")
                        : status;
      return;
    }
    persist::Decoder dec(payload.data(), payload.size());
    server::MessageType type = server::MessageType::kOutcome;
    status = server::PeekType(&dec, &type);
    if (status.ok() && type == server::MessageType::kError) {
      server::ErrorMsg error;
      status = server::DecodeError(&dec, &error);
      if (status.ok()) {
        if (error.code == server::ErrorCode::kRunComplete) {
          out->run_complete = true;
          return;
        }
        if (error.code == server::ErrorCode::kShuttingDown) return;
        status = Status::FailedPrecondition(
            std::string("server error: ") +
            server::ErrorCodeName(error.code) + ": " + error.message);
      }
    } else if (status.ok() && type != server::MessageType::kOutcome) {
      status = Status::Internal("unexpected reply to Query");
    } else if (status.ok()) {
      server::OutcomeMsg outcome;
      status = server::DecodeOutcome(&dec, &outcome);
      if (status.ok() && outcome.query_id != query.id) {
        status = Status::Internal("outcome answers a different query");
      }
    }
    if (!status.ok()) {
      out->status = status;
      return;
    }
    ++out->outcomes;
  }
}

/// Renders one StatsAck snapshot: aggregate line, economy counters, and
/// one line per stream.
void PrintStats(const server::StatsAckMsg& stats) {
  std::printf(
      "processed %llu/%llu (served %llu, in-cache %llu), %u active "
      "stream(s), credit $%.2f\n",
      static_cast<unsigned long long>(stats.processed),
      static_cast<unsigned long long>(stats.num_queries),
      static_cast<unsigned long long>(stats.served),
      static_cast<unsigned long long>(stats.served_in_cache),
      stats.active_streams,
      static_cast<double>(stats.credit_micros) / 1e6);
  std::printf(
      "  economy: %llu investment(s), %llu eviction(s), %llu throttled\n",
      static_cast<unsigned long long>(stats.investments),
      static_cast<unsigned long long>(stats.evictions),
      static_cast<unsigned long long>(stats.throttled));
  for (const server::StreamStatsMsg& stream : stats.streams) {
    std::printf("  stream %u: %llu queries, %llu served, %llu throttled\n",
                stream.stream,
                static_cast<unsigned long long>(stream.queries),
                static_cast<unsigned long long>(stream.served),
                static_cast<unsigned long long>(stream.throttled));
  }
}

int RunStats(const Args& args, uint64_t config_hash) {
  server::Socket conn;
  server::HelloAckMsg ack;
  Status status =
      Handshake(args, server::kControlStream, config_hash, &conn, &ack);
  if (status.ok()) {
    persist::Encoder enc;
    server::EncodeStats(&enc);
    status = server::WriteFrame(conn, enc);
  }
  std::vector<uint8_t> payload;
  bool clean_eof = false;
  if (status.ok()) status = server::ReadFrame(conn, &payload, &clean_eof);
  if (status.ok() && clean_eof) {
    status = Status::IoError("server closed before answering Stats");
  }
  server::StatsAckMsg stats;
  if (status.ok()) {
    persist::Decoder dec(payload.data(), payload.size());
    server::MessageType type = server::MessageType::kStatsAck;
    status = server::PeekType(&dec, &type);
    if (status.ok() && type != server::MessageType::kStatsAck) {
      status = Status::Internal("unexpected reply to Stats");
    }
    if (status.ok()) status = server::DecodeStatsAck(&dec, &stats);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "loadgen: %s\n", status.ToString().c_str());
    return 1;
  }
  PrintStats(stats);
  return 0;
}

/// Subscribes on a control connection and prints every pushed StatsAck
/// until the server sends the final one (run complete or drain) and
/// closes.
int RunWatch(const Args& args, uint64_t config_hash) {
  server::Socket conn;
  server::HelloAckMsg ack;
  Status status =
      Handshake(args, server::kControlStream, config_hash, &conn, &ack);
  if (status.ok()) {
    server::StatsSubscribeMsg sub;
    sub.every = args.watch;
    persist::Encoder enc;
    server::EncodeStatsSubscribe(sub, &enc);
    status = server::WriteFrame(conn, enc);
  }
  std::vector<uint8_t> payload;
  while (status.ok()) {
    bool clean_eof = false;
    status = server::ReadFrame(conn, &payload, &clean_eof);
    if (!status.ok() || clean_eof) break;
    persist::Decoder dec(payload.data(), payload.size());
    server::MessageType type = server::MessageType::kStatsAck;
    status = server::PeekType(&dec, &type);
    if (status.ok() && type == server::MessageType::kError) {
      server::ErrorMsg error;
      status = server::DecodeError(&dec, &error);
      if (status.ok()) {
        status = Status::FailedPrecondition(
            std::string("server error: ") +
            server::ErrorCodeName(error.code) + ": " + error.message);
      }
      break;
    }
    if (status.ok() && type != server::MessageType::kStatsAck) {
      status = Status::Internal("unexpected frame on the subscription");
      break;
    }
    server::StatsAckMsg stats;
    if (status.ok()) status = server::DecodeStatsAck(&dec, &stats);
    if (status.ok()) PrintStats(stats);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "loadgen: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

int RequestServerShutdown(const Args& args, uint64_t config_hash) {
  server::Socket conn;
  server::HelloAckMsg ack;
  Status status =
      Handshake(args, server::kControlStream, config_hash, &conn, &ack);
  if (status.ok()) {
    persist::Encoder enc;
    server::EncodeShutdown(&enc);
    status = server::WriteFrame(conn, enc);
  }
  std::vector<uint8_t> payload;
  bool clean_eof = false;
  if (status.ok()) status = server::ReadFrame(conn, &payload, &clean_eof);
  if (!status.ok()) {
    std::fprintf(stderr, "loadgen: shutdown request failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "loadgen: server shutdown requested\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<Args> parsed = Parse(argc, argv);
  if (!parsed) return 2;
  Args& args = *parsed;
  const Status valid = tools::ValidateExperimentFlags(args.exp);
  if (!valid.ok()) {
    std::fprintf(stderr, "%s\n", valid.ToString().c_str());
    return 2;
  }
  if (!args.port_file.empty()) {
    std::ifstream in(args.port_file);
    unsigned port = 0;
    if (!(in >> port) || port == 0 || port > 65535) {
      std::fprintf(stderr, "loadgen: no usable port in %s\n",
                   args.port_file.c_str());
      return 2;
    }
    args.port = static_cast<uint16_t>(port);
  }

  Catalog catalog;
  std::vector<QueryTemplate> templates;
  const Status made =
      tools::MakeExperimentCatalog(args.exp, &catalog, &templates);
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.ToString().c_str());
    return 2;
  }
  Result<ExperimentConfig> built =
      tools::MakeExperimentFlagsConfig(args.exp);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 2;
  }
  const ExperimentConfig config = std::move(built).value();
  const uint64_t config_hash = HashExperimentConfig(config);

  if (args.stats) return RunStats(args, config_hash);
  if (args.watch > 0) return RunWatch(args, config_hash);

  Result<std::vector<ResolvedTemplate>> resolved =
      ResolveTemplates(catalog, templates);
  if (!resolved.ok()) {
    std::fprintf(stderr, "%s\n", resolved.status().ToString().c_str());
    return 1;
  }

  // Claim every stream up front: the server's merge gate only opens once
  // all configured streams have connected, and the HelloAck tells us how
  // far each server-side generator already advanced (after a restore).
  const uint32_t streams = config.tenancy.tenants;
  std::vector<server::Socket> conns(streams);
  std::vector<server::HelloAckMsg> acks(streams);
  for (uint32_t t = 0; t < streams; ++t) {
    const Status status =
        Handshake(args, t, config_hash, &conns[t], &acks[t]);
    if (!status.ok()) {
      std::fprintf(stderr, "loadgen: stream %u: %s\n", t,
                   status.ToString().c_str());
      return 1;
    }
  }

  // Rebuild the per-stream generators, fast-forward them to the server's
  // positions, and pre-draw each stream's share of the next K merged
  // queries (earliest arrival first, ties to the lowest stream — the
  // simulator's merge rule, so K counts queries in served order).
  std::vector<std::unique_ptr<WorkloadGenerator>> generators;
  generators.reserve(streams);
  uint64_t already = 0;
  for (uint32_t t = 0; t < streams; ++t) {
    generators.push_back(std::make_unique<WorkloadGenerator>(
        &catalog, *resolved,
        TenantWorkloadOptions(config.workload, config.tenancy, t)));
    for (uint64_t i = 0; i < acks[t].next_query_id; ++i) {
      generators[t]->Next();
    }
    already += acks[t].next_query_id;
  }
  const uint64_t remaining =
      acks[0].num_queries > already ? acks[0].num_queries - already : 0;
  const uint64_t to_send =
      args.count == 0 ? remaining : std::min(args.count, remaining);
  std::vector<std::vector<Query>> plans(streams);
  for (uint64_t i = 0; i < to_send; ++i) {
    uint32_t head = 0;
    for (uint32_t u = 1; u < streams; ++u) {
      if (generators[u]->PeekNextArrival() <
          generators[head]->PeekNextArrival()) {
        head = u;
      }
    }
    plans[head].push_back(generators[head]->Next());
  }

  std::vector<StreamResult> results(streams);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(streams);
  for (uint32_t t = 0; t < streams; ++t) {
    threads.emplace_back([&conns, &plans, &results, t] {
      ReplayStream(conns[t], plans[t], &results[t]);
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();

  uint64_t outcomes = 0;
  bool failed = false;
  for (uint32_t t = 0; t < streams; ++t) {
    outcomes += results[t].outcomes;
    if (!results[t].status.ok()) {
      std::fprintf(stderr, "loadgen: stream %u: %s\n", t,
                   results[t].status.ToString().c_str());
      failed = true;
    }
  }
  std::printf(
      "sent %llu queries over %u connection(s) in %.3f s — %.0f qps\n",
      static_cast<unsigned long long>(outcomes), streams, seconds,
      seconds > 0 ? static_cast<double>(outcomes) / seconds : 0.0);
  for (server::Socket& conn : conns) conn.Close();

  int exit_code = failed ? 1 : 0;
  if (args.shutdown) {
    const int shutdown_code = RequestServerShutdown(args, config_hash);
    if (exit_code == 0) exit_code = shutdown_code;
  }
  return exit_code;
}
