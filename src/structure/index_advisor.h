#pragma once

#include <cstddef>
#include <vector>

#include "src/catalog/schema.h"
#include "src/query/templates.h"
#include "src/structure/structure.h"

namespace cloudcache {

/// Deterministic index-candidate generator.
///
/// The paper uses "65 potentially useful indexes from DB2's 'recommend
/// indexes' mode" (Section VII-A). We reproduce the candidate pool the way
/// such advisors construct it — from the workload's templates:
///
///   1. a single-column index on every distinct predicate column,
///   2. a composite index over each template's predicate columns (most
///      selective first, i.e. template order, which lists the clustered
///      locality predicate first),
///   3. a covering index per template (predicates followed by outputs,
///      truncated to `max_index_width` columns),
///   4. two-column (predicate, output) pairings per template until the
///      requested pool size is reached.
///
/// Candidates are deduplicated preserving first-seen order, so the pool is
/// a deterministic function of the templates. If the templates cannot yield
/// `target_count` distinct candidates the pool is simply smaller; no
/// padding is invented.
std::vector<StructureKey> RecommendIndexes(
    const Catalog& catalog, const std::vector<ResolvedTemplate>& templates,
    size_t target_count = 65, size_t max_index_width = 4);

}  // namespace cloudcache
