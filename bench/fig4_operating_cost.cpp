// Reproduces Figure 4: "Comparison of operating costs for caching schemes"
// — total metered infrastructure dollars of bypass / econ-col / econ-cheap
// / econ-fast at inter-query intervals of 1, 10, 30 and 60 seconds, on a
// 2.5 TB TPC-H back-end over a 25 Mbps WAN at 2009 EC2 prices.
//
// Absolute dollars depend on the (configurable) run length; the paper's
// claims are about the shape: all schemes stay viable, costs rise with the
// interval as disk rent accumulates, econ-col undercuts bypass, econ-cheap
// undercuts both at short intervals, and econ-fast pays extra for nodes.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/sim/report.h"

int main(int argc, char** argv) {
  using namespace cloudcache;
  using namespace cloudcache::bench;

  const BenchOptions options = ParseArgs(argc, argv, /*default=*/150'000);
  const PaperSetup setup = MakePaperSetup(options);
  std::fprintf(stderr, "fig4: %llu queries/cell, %.1f TB backend\n",
               static_cast<unsigned long long>(options.queries),
               options.scale_tb);

  const std::vector<double> intervals = PaperInterarrivals();
  const auto rows = RunInterarrivalSweep(setup, options, intervals);

  std::puts("Figure 4 — operating cost (dollars) by inter-arrival time");
  EmitTable(MakeOperatingCostTable(intervals, rows), options);

  std::puts("");
  std::puts("Resource breakdown at each interval:");
  for (size_t i = 0; i < intervals.size(); ++i) {
    std::printf("-- interarrival %.0fs --\n", intervals[i]);
    for (const SimMetrics& m : rows[i]) {
      std::printf(
          "  %-10s total $%9.2f  (cpu $%8.2f net $%8.2f disk $%8.2f io "
          "$%8.2f)  hit-rate %.2f\n",
          m.scheme_name.c_str(), m.operating_cost.Total(),
          m.operating_cost.cpu_dollars, m.operating_cost.network_dollars,
          m.operating_cost.disk_dollars, m.operating_cost.io_dollars,
          m.CacheHitRate());
    }
  }
  return 0;
}
