#include "src/econ/economy.h"

#include <gtest/gtest.h>

#include "tests/testing/fixtures.h"

namespace cloudcache {
namespace {

class EconomyTest : public ::testing::Test {
 protected:
  EconomyTest()
      : catalog_(testing::MakeTinyCatalog()),
        prices_(testing::MakeRoundPrices()),
        model_(&catalog_, &prices_),
        registry_(&catalog_) {}

  EconomyOptions DefaultOptions() {
    EconomyOptions options;
    options.model_build_latency = false;   // Deterministic residency.
    options.conservative_provider = false; // Allow spending seed capital.
    options.initial_credit = Money::FromDollars(100);
    options.amortization_horizon = 10;
    options.regret_fraction_a = 0.1;
    return options;
  }

  std::unique_ptr<EconomyEngine> MakeEngine(
      EconomyOptions options, EnumeratorOptions enumerator = {}) {
    auto engine = std::make_unique<EconomyEngine>(
        &catalog_, &registry_, &model_, enumerator, options);
    const ColumnId date = *catalog_.FindColumn("fact.f_date");
    const ColumnId value = *catalog_.FindColumn("fact.f_value");
    const ColumnId key = *catalog_.FindColumn("fact.f_key");
    engine->SetIndexCandidates({
        IndexKey(catalog_, {date}),
        IndexKey(catalog_, {date, value, key}),
    });
    return engine;
  }

  /// Price of the backend plan for a query (no carried charges possible).
  Money BackendPrice(const Query& q) {
    PlanSpec spec;
    spec.access = PlanSpec::Access::kBackend;
    return model_.EstimateExecution(q, spec).cost;
  }

  double BackendTime(const Query& q) {
    PlanSpec spec;
    spec.access = PlanSpec::Access::kBackend;
    return model_.EstimateExecution(q, spec).time_seconds;
  }

  /// A "snug" budget: barely above the back-end quote, with a loose
  /// deadline. Keeps regret (and thus investment activity) negligible so
  /// tests can observe one mechanism at a time.
  StepBudget SnugBudget(const Query& q, double margin = 1.05) {
    return StepBudget(BackendPrice(q) * margin, BackendTime(q) * 10);
  }

  /// Options under which investments actually fire on the tiny catalog:
  /// result-heavy queries, small seed credit (so Eq. 3's a*CR threshold is
  /// reachable), long amortization (so hypothetical cache plans undercut
  /// the back-end and earn Eq. 1 regret).
  EconomyOptions InvestingOptions() {
    EconomyOptions options = DefaultOptions();
    options.initial_credit = Money::FromDollars(2);
    options.amortization_horizon = 100;
    options.regret_fraction_a = 0.001;
    return options;
  }

  /// A result-heavy query (20% clustered selectivity): shipping its result
  /// over the WAN costs more than scanning cached columns, so cache plans
  /// are the cheaper hypotheticals.
  Query HeavyQuery(uint64_t id = 0) {
    return testing::MakeTinyQuery(catalog_, 0.2, id);
  }

  Catalog catalog_;
  PriceList prices_;
  CostModel model_;
  StructureRegistry registry_;
};

TEST_F(EconomyTest, GenerousBudgetIsCaseB) {
  auto engine = MakeEngine(DefaultOptions());
  const Query q = testing::MakeTinyQuery(catalog_);
  StepBudget budget(Money::FromDollars(1000), 1e6);
  const QueryOutcome outcome = engine->OnQuery(q, budget, 0.0);
  EXPECT_EQ(outcome.budget_case, BudgetCase::kCaseB);
  EXPECT_TRUE(outcome.served);
}

TEST_F(EconomyTest, ColdCacheServesFromBackend) {
  auto engine = MakeEngine(DefaultOptions());
  const Query q = testing::MakeTinyQuery(catalog_);
  StepBudget budget(Money::FromDollars(1000), 1e6);
  const QueryOutcome outcome = engine->OnQuery(q, budget, 0.0);
  ASSERT_TRUE(outcome.served);
  EXPECT_EQ(outcome.chosen.spec.access, PlanSpec::Access::kBackend);
}

TEST_F(EconomyTest, CaseBPaymentIsUserBudgetAtChosenTime) {
  auto engine = MakeEngine(DefaultOptions());
  const Query q = testing::MakeTinyQuery(catalog_);
  StepBudget budget(Money::FromDollars(1000), 1e6);
  const QueryOutcome outcome = engine->OnQuery(q, budget, 0.0);
  ASSERT_TRUE(outcome.served);
  EXPECT_EQ(outcome.payment, Money::FromDollars(1000));
  EXPECT_EQ(outcome.profit, outcome.payment - outcome.chosen.Price());
  EXPECT_GT(outcome.profit.micros(), 0);
}

TEST_F(EconomyTest, ProfitIsCreditedToAccount) {
  auto engine = MakeEngine(DefaultOptions());
  const Query q = testing::MakeTinyQuery(catalog_);
  const Money before = engine->account().credit();
  const StepBudget budget = SnugBudget(q);
  const QueryOutcome outcome = engine->OnQuery(q, budget, 0.0);
  ASSERT_TRUE(outcome.served);
  EXPECT_TRUE(outcome.investments.empty());
  EXPECT_EQ(engine->account().credit(), before + outcome.payment);
  EXPECT_GT(outcome.profit.micros(), 0);
}

TEST_F(EconomyTest, UnaffordableBudgetIsCaseA) {
  auto engine = MakeEngine(DefaultOptions());
  const Query q = testing::MakeTinyQuery(catalog_);
  StepBudget budget(Money::FromMicros(1), 1e6);  // Far below any price.
  const QueryOutcome outcome = engine->OnQuery(q, budget, 0.0);
  EXPECT_EQ(outcome.budget_case, BudgetCase::kCaseA);
  // The paper's user accepts the (backend) offer at its quoted price.
  ASSERT_TRUE(outcome.served);
  EXPECT_EQ(outcome.payment, outcome.chosen.Price());
  EXPECT_TRUE(outcome.profit.IsZero());
}

TEST_F(EconomyTest, CaseARejectedWhenUserDeclines) {
  EconomyOptions options = DefaultOptions();
  options.user_accepts_above_budget = false;
  auto engine = MakeEngine(options);
  const Query q = testing::MakeTinyQuery(catalog_);
  StepBudget budget(Money::FromMicros(1), 1e6);
  const QueryOutcome outcome = engine->OnQuery(q, budget, 0.0);
  EXPECT_FALSE(outcome.served);
  EXPECT_TRUE(outcome.payment.IsZero());
}

TEST_F(EconomyTest, TightDeadlineExcludesSlowPlans) {
  auto engine = MakeEngine(DefaultOptions());
  const Query q = testing::MakeTinyQuery(catalog_);
  // Generous money but a deadline far below the backend response time
  // leaves no executable plan affordable: case A.
  StepBudget budget(Money::FromDollars(1000), BackendTime(q) * 1e-6);
  const QueryOutcome outcome = engine->OnQuery(q, budget, 0.0);
  EXPECT_EQ(outcome.budget_case, BudgetCase::kCaseA);
}

TEST_F(EconomyTest, CaseARegretAccumulatesOnCheaperHypotheticals) {
  auto engine = MakeEngine(InvestingOptions());
  const Query q = HeavyQuery();
  StepBudget budget(Money::FromMicros(1), 1e6);
  const QueryOutcome outcome = engine->OnQuery(q, budget, 0.0);
  EXPECT_EQ(outcome.budget_case, BudgetCase::kCaseA);
  // Result-heavy query: serving from cached columns would be cheaper than
  // shipping S(Q) over the WAN, so those hypotheticals earn Eq. 1 regret.
  EXPECT_GT(engine->regret().Total().micros(), 0);
}

TEST_F(EconomyTest, RegretConservation) {
  // Distributing regret never loses or invents micro-dollars: total regret
  // equals the sum of per-plan regrets, which we bound by checking the
  // ledger grows monotonically across queries.
  auto engine = MakeEngine(DefaultOptions());
  Money last_total;
  for (int i = 0; i < 10; ++i) {
    const Query q = testing::MakeTinyQuery(catalog_, 0.01, i);
    StepBudget budget(Money::FromMicros(1), 1e6);
    engine->OnQuery(q, budget, static_cast<double>(i));
    const Money total = engine->regret().Total();
    EXPECT_GE(total, last_total);
    last_total = total;
  }
}

TEST_F(EconomyTest, RegretTriggersInvestment) {
  auto engine = MakeEngine(InvestingOptions());
  StepBudget budget(Money::FromMicros(1), 1e6);
  bool invested = false;
  for (int i = 0; i < 50 && !invested; ++i) {
    invested = !engine->OnQuery(HeavyQuery(i), budget, i).investments.empty();
  }
  EXPECT_TRUE(invested);
}

TEST_F(EconomyTest, InvestmentsDebitTheAccount) {
  auto engine = MakeEngine(InvestingOptions());
  StepBudget budget(Money::FromMicros(1), 1e6);
  for (int i = 0; i < 50; ++i) {
    engine->OnQuery(HeavyQuery(i), budget, i);
  }
  // Every micro-dollar balances:
  // credit = initial + revenue - expenditure - investment.
  const CloudAccount& account = engine->account();
  EXPECT_EQ(account.credit(),
            account.initial_credit() + account.total_revenue() -
                account.total_expenditure() - account.total_investment());
  EXPECT_GT(account.total_investment().micros(), 0);
}

TEST_F(EconomyTest, InvestedStructureBecomesResident) {
  auto engine = MakeEngine(InvestingOptions());
  StepBudget budget(Money::FromMicros(1), 1e6);
  std::vector<StructureId> investments;
  for (int i = 0; i < 50 && investments.empty(); ++i) {
    investments = engine->OnQuery(HeavyQuery(i), budget, i).investments;
  }
  ASSERT_FALSE(investments.empty());
  EXPECT_TRUE(engine->cache().IsResident(investments.front()));
  // Regret of the built structure is cleared.
  EXPECT_TRUE(engine->regret().Get(investments.front()).IsZero());
}

TEST_F(EconomyTest, CacheHitAfterInvestment) {
  auto engine = MakeEngine(InvestingOptions());
  StepBudget poor(Money::FromMicros(1), 1e6);
  for (int i = 0; i < 80; ++i) {
    engine->OnQuery(HeavyQuery(i), poor, i);
  }
  // Once enough structures exist, a generous query executes in the cache.
  StepBudget rich(Money::FromDollars(1000), 1e6);
  const QueryOutcome outcome =
      engine->OnQuery(HeavyQuery(999), rich, 100.0);
  ASSERT_TRUE(outcome.served);
  EXPECT_NE(outcome.chosen.spec.access, PlanSpec::Access::kBackend);
}

TEST_F(EconomyTest, ConservativeProviderWaitsForProfit) {
  EconomyOptions options = InvestingOptions();
  options.conservative_provider = true;
  options.initial_credit = Money();  // No seed capital at all.
  // Users decline offers above budget, so there is no pass-through
  // revenue either: the account must stay at zero.
  options.user_accepts_above_budget = false;
  auto engine = MakeEngine(options);
  // Case-A queries generate regret but zero profit; with an empty account
  // the conservative provider can never cover a build.
  StepBudget poor(Money::FromMicros(1), 1e6);
  for (int i = 0; i < 50; ++i) {
    const QueryOutcome outcome = engine->OnQuery(HeavyQuery(i), poor, i);
    EXPECT_TRUE(outcome.investments.empty());
  }
  EXPECT_EQ(engine->account().total_investment(), Money());
}

TEST_F(EconomyTest, BuildLatencyDelaysResidency) {
  EconomyOptions options = InvestingOptions();
  options.model_build_latency = true;
  auto engine = MakeEngine(options);
  StepBudget budget(Money::FromMicros(1), 1e6);
  std::vector<StructureId> investments;
  double t = 0;
  for (int i = 0; i < 50 && investments.empty(); ++i, t += 1.0) {
    investments =
        engine->OnQuery(HeavyQuery(i), budget, t).investments;
  }
  ASSERT_FALSE(investments.empty());
  // Immediately after the decision the structure is still in flight.
  EXPECT_FALSE(engine->cache().IsResident(investments.front()));
  EXPECT_GT(engine->pending_builds(), 0u);
  // After the WAN transfer time it lands (a few seconds on the tiny
  // catalog; 1000 s is ample but short enough that no rent-failure
  // eviction kicks in).
  engine->OnTick(t + 1000.0);
  EXPECT_TRUE(engine->cache().IsResident(investments.front()));
  EXPECT_EQ(engine->pending_builds(), 0u);
}

TEST_F(EconomyTest, ForceBuildInstallsStructure) {
  auto engine = MakeEngine(DefaultOptions());
  const ColumnId date = *catalog_.FindColumn("fact.f_date");
  ASSERT_TRUE(engine->ForceBuild(ColumnKey(catalog_, date), 0.0).ok());
  EXPECT_TRUE(engine->cache().ColumnResident(date));
  // Double build fails.
  EXPECT_EQ(engine->ForceBuild(ColumnKey(catalog_, date), 0.0).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(EconomyTest, ForceBuildIndexShipsItsColumns) {
  auto engine = MakeEngine(DefaultOptions());
  const ColumnId date = *catalog_.FindColumn("fact.f_date");
  ASSERT_TRUE(engine->ForceBuild(IndexKey(catalog_, {date}), 0.0).ok());
  // Eq. 14's build includes the column transfer, so the base column is
  // now cached too.
  EXPECT_TRUE(engine->cache().ColumnResident(date));
}

TEST_F(EconomyTest, MaintenanceFailureEvictsIdleStructure) {
  EconomyOptions options = DefaultOptions();
  options.maintenance_failure_fraction = 0.01;
  auto engine = MakeEngine(options);
  const ColumnId date = *catalog_.FindColumn("fact.f_date");
  ASSERT_TRUE(engine->ForceBuild(ColumnKey(catalog_, date), 0.0).ok());
  // A month of unpaid rent on an unused column exceeds 1% of its build
  // cost by a wide margin.
  engine->OnTick(6 * kMonth);
  EXPECT_FALSE(engine->cache().ColumnResident(date));
}

TEST_F(EconomyTest, UsedStructuresSurviveMaintenance) {
  EconomyOptions options = DefaultOptions();
  options.maintenance_failure_fraction = 0.01;
  // Footnote-3 exact semantics: each selected plan settles the whole
  // backlog since the previous payer (no per-use recovery cap), so a
  // regularly used structure can never drift toward failure.
  options.maintenance_recovery_cap_seconds =
      MaintenanceLedger::kNoCapSeconds;
  // Fastest selection routes queries through the cached columns, so every
  // query is a rent payer for them (footnote 3). A long amortization
  // horizon keeps the per-use share small enough that the cache plan
  // stays affordable under the snug budget.
  options.selection = PlanSelection::kFastest;
  options.amortization_horizon = 1000;
  auto engine = MakeEngine(options);
  const Query q = HeavyQuery();
  for (ColumnId col : q.AccessedColumns()) {
    ASSERT_TRUE(engine->ForceBuild(ColumnKey(catalog_, col), 0.0).ok());
  }
  // Result-heavy queries keep choosing (and paying for) the cache plan,
  // so the columns never fail maintenance. (Unrelated structures the
  // engine invests in along the way may legitimately fail — only the
  // *used* columns must survive.)
  for (int i = 1; i <= 20; ++i) {
    const Query heavy = HeavyQuery(i);
    const StepBudget budget = SnugBudget(heavy, 1.1);
    const QueryOutcome outcome =
        engine->OnQuery(heavy, budget, i * (kMonth / 100));
    for (StructureId evicted : outcome.evictions) {
      EXPECT_NE(engine->cache().registry().key(evicted).type,
                StructureType::kColumn)
          << "query " << i;
    }
  }
  for (ColumnId col : q.AccessedColumns()) {
    EXPECT_TRUE(engine->cache().ColumnResident(col));
  }
}

TEST_F(EconomyTest, SelectedPlanPaysMaintenance) {
  auto engine = MakeEngine(DefaultOptions());
  const Query q = testing::MakeTinyQuery(catalog_);
  for (ColumnId col : q.AccessedColumns()) {
    ASSERT_TRUE(engine->ForceBuild(ColumnKey(catalog_, col), 0.0).ok());
  }
  StepBudget budget(Money::FromDollars(1000), 1e6);
  const QueryOutcome outcome =
      engine->OnQuery(testing::MakeTinyQuery(catalog_, 0.01, 1), budget,
                      kMonth / 10);
  ASSERT_TRUE(outcome.served);
  if (outcome.chosen.spec.access != PlanSpec::Access::kBackend) {
    EXPECT_GT(outcome.maintenance_collected.micros(), 0);
  }
}

TEST_F(EconomyTest, AmortizationCollectedOverHorizon) {
  EconomyOptions options = DefaultOptions();
  options.amortization_horizon = 5;
  // Fastest selection picks the cache plan (no WAN transfer), which is
  // the one that carries amortized shares.
  options.selection = PlanSelection::kFastest;
  auto engine = MakeEngine(options);
  const Query q = HeavyQuery();
  for (ColumnId col : q.AccessedColumns()) {
    ASSERT_TRUE(engine->ForceBuild(ColumnKey(catalog_, col), 0.0).ok());
  }
  Money collected;
  for (int i = 1; i <= 10; ++i) {
    const Query heavy = HeavyQuery(i);
    const StepBudget budget = SnugBudget(heavy, 3.0);
    const QueryOutcome outcome = engine->OnQuery(heavy, budget, i);
    collected += outcome.amortization_collected;
  }
  EXPECT_GT(collected.micros(), 0);
}

TEST_F(EconomyTest, FastestSelectionPrefersSpeed) {
  EconomyOptions cheap_options = DefaultOptions();
  cheap_options.selection = PlanSelection::kCheapest;
  EconomyOptions fast_options = DefaultOptions();
  fast_options.selection = PlanSelection::kFastest;

  // Pre-build everything so real choices exist, in two identical engines.
  auto build_all = [&](EconomyEngine& engine) {
    const Query q = testing::MakeTinyQuery(catalog_);
    for (ColumnId col : q.AccessedColumns()) {
      CLOUDCACHE_CHECK(
          engine.ForceBuild(ColumnKey(catalog_, col), 0.0).ok());
    }
    const ColumnId date = *catalog_.FindColumn("fact.f_date");
    CLOUDCACHE_CHECK(engine.ForceBuild(IndexKey(catalog_, {date}), 0.0).ok());
    CLOUDCACHE_CHECK(engine.ForceBuild(CpuNodeKey(0), 0.0).ok());
    CLOUDCACHE_CHECK(engine.ForceBuild(CpuNodeKey(1), 0.0).ok());
  };
  auto cheap_engine = MakeEngine(cheap_options);
  auto fast_engine = MakeEngine(fast_options);
  build_all(*cheap_engine);
  build_all(*fast_engine);

  const Query q = testing::MakeTinyQuery(catalog_, 0.01, 42);
  StepBudget budget(Money::FromDollars(1000), 1e6);
  const QueryOutcome cheap = cheap_engine->OnQuery(q, budget, 1.0);
  const QueryOutcome fast = fast_engine->OnQuery(q, budget, 1.0);
  ASSERT_TRUE(cheap.served);
  ASSERT_TRUE(fast.served);
  EXPECT_LE(fast.chosen.TimeSeconds(), cheap.chosen.TimeSeconds());
  EXPECT_LE(cheap.chosen.Price(), fast.chosen.Price());
}

TEST_F(EconomyTest, MinProfitSelectionMinimizesGain) {
  EconomyOptions options = DefaultOptions();
  options.selection = PlanSelection::kMinProfit;
  auto engine = MakeEngine(options);
  const Query q = testing::MakeTinyQuery(catalog_);
  for (ColumnId col : q.AccessedColumns()) {
    ASSERT_TRUE(engine->ForceBuild(ColumnKey(catalog_, col), 0.0).ok());
  }
  StepBudget budget(Money::FromDollars(1000), 1e6);
  const QueryOutcome outcome =
      engine->OnQuery(testing::MakeTinyQuery(catalog_, 0.01, 1), budget, 1);
  ASSERT_TRUE(outcome.served);
  // With a step budget, minimal gain = maximal price: the user gets the
  // most service for her money (the altruistic criterion).
  EXPECT_GT(outcome.chosen.Price(),
            Money());  // Sanity.
  EXPECT_EQ(outcome.profit, outcome.payment - outcome.chosen.Price());
}

TEST_F(EconomyTest, MixedAffordabilityIsCaseC) {
  // Warm the columns so an executable cache plan exists, then budget just
  // above it: the cache plan is affordable (so not case A) while pricier
  // hypotheticals (index builds amortized over a short horizon, parallel
  // node variants) are not (so not case B) — the mixed relationship of
  // Fig. 2, case C.
  EconomyOptions options = DefaultOptions();
  options.amortization_horizon = 10;  // Hypotheticals stay expensive.
  options.selection = PlanSelection::kFastest;
  auto engine = MakeEngine(options);
  const Query q = HeavyQuery();
  for (ColumnId col : q.AccessedColumns()) {
    ASSERT_TRUE(engine->ForceBuild(ColumnKey(catalog_, col), 0.0).ok());
  }
  // Find the cheapest executable plan's price by asking with a huge
  // budget first (deterministic engine state is restored by re-running on
  // a fresh engine).
  auto probe_engine = MakeEngine(options);
  for (ColumnId col : q.AccessedColumns()) {
    ASSERT_TRUE(
        probe_engine->ForceBuild(ColumnKey(catalog_, col), 0.0).ok());
  }
  StepBudget huge(Money::FromDollars(1e6), 1e6);
  const QueryOutcome probe = probe_engine->OnQuery(q, huge, 1.0);
  ASSERT_TRUE(probe.served);

  StepBudget snug(probe.chosen.Price() * 1.3, 1e6);
  const QueryOutcome outcome = engine->OnQuery(q, snug, 1.0);
  EXPECT_EQ(outcome.budget_case, BudgetCase::kCaseC);
  ASSERT_TRUE(outcome.served);
  // Served within budget: payment equals the budget level, not the price.
  EXPECT_EQ(outcome.payment, probe.chosen.Price() * 1.3);
}

TEST_F(EconomyTest, OutcomeCountsPlans) {
  auto engine = MakeEngine(DefaultOptions());
  const Query q = testing::MakeTinyQuery(catalog_);
  StepBudget budget(Money::FromDollars(1000), 1e6);
  const QueryOutcome outcome = engine->OnQuery(q, budget, 0.0);
  EXPECT_GE(outcome.num_plans, outcome.num_existing);
  EXPECT_GE(outcome.num_existing, 1u);
  EXPECT_GT(outcome.num_plans, 1u);  // Hypotheticals on a cold cache.
}

TEST_F(EconomyTest, CandidatePoolEvictionForfeitsRegret) {
  EconomyOptions options = DefaultOptions();
  options.candidate_pool_capacity = 1;  // Pathologically small.
  auto engine = MakeEngine(options);
  StepBudget budget(Money::FromMicros(1), 1e6);
  for (int i = 0; i < 5; ++i) {
    engine->OnQuery(testing::MakeTinyQuery(catalog_, 0.01, i), budget, i);
  }
  // With a pool of one, total regret stays bounded by what a single
  // candidate can accumulate: most regret is forfeited.
  EXPECT_LE(engine->regret().NonZeroDescending().size(), 2u);
}

TEST_F(EconomyTest, DeterministicAcrossRuns) {
  auto run = [&]() {
    StructureRegistry registry(&catalog_);
    EconomyOptions options = DefaultOptions();
    options.regret_fraction_a = 0.001;
    EnumeratorOptions enumerator;
    EconomyEngine engine(&catalog_, &registry, &model_, enumerator,
                         options);
    const ColumnId date = *catalog_.FindColumn("fact.f_date");
    engine.SetIndexCandidates({IndexKey(catalog_, {date})});
    StepBudget budget(Money::FromDollars(0.002), 1e6);
    Money credit;
    for (int i = 0; i < 60; ++i) {
      engine.OnQuery(testing::MakeTinyQuery(catalog_, 0.01, i), budget, i);
    }
    return engine.account().credit();
  };
  EXPECT_EQ(run(), run());
}

TEST_F(EconomyTest, TenantRegretPartitionsGlobalLedger) {
  auto engine = MakeEngine(InvestingOptions());
  engine->SetTenantCount(3);
  EXPECT_EQ(engine->tenant_count(), 3u);

  // Drive case-A queries (budget below every plan) from alternating
  // tenants; every Eq. 1 contribution must land in both the global ledger
  // and the serving tenant's, so at any instant — including right after
  // an investment clears entries from both — the tenant ledgers sum to
  // the global one.
  const StepBudget budget(Money::FromMicros(1), 1e6);
  bool saw_regret = false;
  for (uint64_t i = 0; i < 30; ++i) {
    Query q = HeavyQuery(i);
    q.tenant_id = static_cast<uint32_t>(i % 3);
    engine->OnQuery(q, budget, static_cast<double>(i) * 10.0);

    Money tenant_sum;
    for (size_t t = 0; t < 3; ++t) {
      tenant_sum += engine->TenantRegretTotal(t);
    }
    EXPECT_EQ(tenant_sum.micros(), engine->regret().Total().micros());
    saw_regret = saw_regret || engine->regret().Total().IsPositive();
  }
  // Regret actually flowed at some point, or the partition was vacuous.
  EXPECT_TRUE(saw_regret);
}

TEST_F(EconomyTest, TenantRegretClearedWhenStructureIsBuilt) {
  auto engine = MakeEngine(InvestingOptions());
  engine->SetTenantCount(2);

  // Run tenant 1's queries until an investment fires; the built
  // structures' regret must vanish from the tenant ledgers along with the
  // global entries (partition preserved through MaybeInvest's clears).
  const StepBudget budget(Money::FromMicros(1), 1e6);
  bool invested = false;
  for (uint64_t i = 0; i < 200 && !invested; ++i) {
    Query q = HeavyQuery(i);
    q.tenant_id = 1;
    const QueryOutcome outcome =
        engine->OnQuery(q, budget, static_cast<double>(i) * 10.0);
    invested = !outcome.investments.empty();
    if (invested) {
      for (StructureId id : outcome.investments) {
        EXPECT_EQ(engine->regret().Get(id).micros(), 0);
        EXPECT_EQ(engine->tenant_regret(0).Get(id).micros(), 0);
        EXPECT_EQ(engine->tenant_regret(1).Get(id).micros(), 0);
      }
    }
  }
  ASSERT_TRUE(invested);
  // Untouched tenant 0 never accumulated anything.
  EXPECT_EQ(engine->TenantRegretTotal(0).micros(), 0);

  Money tenant_sum =
      engine->TenantRegretTotal(0) + engine->TenantRegretTotal(1);
  EXPECT_EQ(tenant_sum.micros(), engine->regret().Total().micros());
}

TEST_F(EconomyTest, TenantRegretDisabledByDefault) {
  auto engine = MakeEngine(InvestingOptions());
  EXPECT_EQ(engine->tenant_count(), 0u);
  Query q = HeavyQuery(0);
  q.tenant_id = 7;  // Out-of-range tenant on a non-attributing engine.
  const StepBudget budget(Money::FromMicros(1), 1e6);
  engine->OnQuery(q, budget, 0.0);
  // No attribution, and asking is safe.
  EXPECT_EQ(engine->TenantRegretTotal(7).micros(), 0);
}

}  // namespace
}  // namespace cloudcache
