// M3: full economy decision throughput (OnQuery end to end) — bounds how
// many simulated queries per second the harness sustains.

#include <benchmark/benchmark.h>

#include "src/baseline/scheme.h"
#include "src/catalog/tpch.h"
#include "src/econ/economy.h"
#include "src/query/templates.h"
#include "src/structure/index_advisor.h"
#include "src/util/rng.h"

namespace cloudcache {
namespace {

struct Env {
  Env() : catalog(MakeTpchCatalog(2500.0)) {
    auto resolved = ResolveTemplates(catalog, MakeTpchTemplates());
    templates = *resolved;
    indexes = RecommendIndexes(catalog, templates, 65);
    Rng rng(3);
    for (int i = 0; i < 256; ++i) {
      queries.push_back(InstantiateQuery(
          templates[i % templates.size()], catalog, rng,
          static_cast<int>(i % templates.size()), i));
    }
  }
  Catalog catalog;
  std::vector<ResolvedTemplate> templates;
  std::vector<StructureKey> indexes;
  std::vector<Query> queries;
};

Env& GetEnv() {
  static Env env;
  return env;
}

void BM_EconomyOnQuery(benchmark::State& state) {
  Env& env = GetEnv();
  PriceList prices = PriceList::AmazonEc2_2009();
  EconScheme::Config config = EconScheme::EconCheapConfig();
  config.economy.initial_credit = Money::FromDollars(200);
  config.economy.model_build_latency = false;
  EconScheme scheme(&env.catalog, &prices, env.indexes,
                    std::move(config));
  size_t i = 0;
  double now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scheme.OnQuery(env.queries[i++ % env.queries.size()], now));
    now += 10.0;
  }
}
BENCHMARK(BM_EconomyOnQuery);

void BM_EconColOnQuery(benchmark::State& state) {
  Env& env = GetEnv();
  PriceList prices = PriceList::AmazonEc2_2009();
  EconScheme scheme(&env.catalog, &prices, env.indexes,
                    EconScheme::EconColConfig());
  size_t i = 0;
  double now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scheme.OnQuery(env.queries[i++ % env.queries.size()], now));
    now += 10.0;
  }
}
BENCHMARK(BM_EconColOnQuery);

void BM_BudgetEvaluation(benchmark::State& state) {
  StepBudget step(Money::FromDollars(1), 100.0);
  ConcaveBudget concave(Money::FromDollars(1), 100.0);
  double t = 0.0;
  for (auto _ : state) {
    t += 0.1;
    if (t > 100.0) t = 0.1;
    benchmark::DoNotOptimize(step.At(t));
    benchmark::DoNotOptimize(concave.At(t));
  }
}
BENCHMARK(BM_BudgetEvaluation);

}  // namespace
}  // namespace cloudcache
