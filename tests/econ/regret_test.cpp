#include "src/econ/regret.h"

#include <gtest/gtest.h>

namespace cloudcache {
namespace {

TEST(RegretLedgerTest, StartsEmpty) {
  RegretLedger ledger;
  EXPECT_TRUE(ledger.Get(0).IsZero());
  EXPECT_TRUE(ledger.Total().IsZero());
  EXPECT_TRUE(ledger.NonZeroDescending().empty());
}

TEST(RegretLedgerTest, AddAccumulates) {
  RegretLedger ledger;
  ledger.Add(3, Money::FromDollars(1));
  ledger.Add(3, Money::FromDollars(2));
  EXPECT_EQ(ledger.Get(3), Money::FromDollars(3));
  EXPECT_EQ(ledger.Total(), Money::FromDollars(3));
}

TEST(RegretLedgerTest, ZeroAddIsNoOp) {
  RegretLedger ledger;
  ledger.Add(1, Money());
  EXPECT_EQ(ledger.size(), 0u);
}

TEST(RegretLedgerTest, DistributeSplitsExactly) {
  RegretLedger ledger;
  // 10 micro-dollars over 3 structures: shares 4, 3, 3.
  ledger.Distribute({1, 2, 3}, Money::FromMicros(10));
  EXPECT_EQ(ledger.Get(1), Money::FromMicros(4));
  EXPECT_EQ(ledger.Get(2), Money::FromMicros(3));
  EXPECT_EQ(ledger.Get(3), Money::FromMicros(3));
  EXPECT_EQ(ledger.Total(), Money::FromMicros(10));
}

TEST(RegretLedgerTest, DistributeToEmptyIsNoOp) {
  RegretLedger ledger;
  ledger.Distribute({}, Money::FromDollars(5));
  EXPECT_TRUE(ledger.Total().IsZero());
}

TEST(RegretLedgerTest, ClearReturnsForfeited) {
  RegretLedger ledger;
  ledger.Add(7, Money::FromDollars(4));
  EXPECT_EQ(ledger.Clear(7), Money::FromDollars(4));
  EXPECT_TRUE(ledger.Get(7).IsZero());
  EXPECT_TRUE(ledger.Clear(7).IsZero());  // Idempotent.
}

TEST(RegretLedgerTest, NonZeroDescendingOrder) {
  RegretLedger ledger;
  ledger.Add(1, Money::FromDollars(2));
  ledger.Add(2, Money::FromDollars(9));
  ledger.Add(3, Money::FromDollars(5));
  const auto sorted = ledger.NonZeroDescending();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].first, 2u);
  EXPECT_EQ(sorted[1].first, 3u);
  EXPECT_EQ(sorted[2].first, 1u);
}

TEST(RegretLedgerTest, TiesBreakById) {
  RegretLedger ledger;
  ledger.Add(9, Money::FromDollars(1));
  ledger.Add(4, Money::FromDollars(1));
  const auto sorted = ledger.NonZeroDescending();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].first, 4u);
  EXPECT_EQ(sorted[1].first, 9u);
}

TEST(RegretLedgerTest, ConservationUnderManyDistributes) {
  RegretLedger ledger;
  Money total;
  for (int i = 0; i < 1000; ++i) {
    const Money amount = Money::FromMicros(1'000'003 + i);
    ledger.Distribute({0, 1, 2, 3, 4, 5, 6}, amount);
    total += amount;
  }
  EXPECT_EQ(ledger.Total(), total);
}

TEST(RegretLedgerTest, CachedSortedViewTracksMutations) {
  RegretLedger ledger;
  ledger.Add(3, Money::FromDollars(1.0));
  ASSERT_EQ(ledger.NonZeroDescending().size(), 1u);
  // A second call with no intervening mutation serves the cached view.
  EXPECT_EQ(&ledger.NonZeroDescending(), &ledger.NonZeroDescending());

  // Add dirties the view.
  ledger.Add(7, Money::FromDollars(2.0));
  {
    const auto& sorted = ledger.NonZeroDescending();
    ASSERT_EQ(sorted.size(), 2u);
    EXPECT_EQ(sorted[0].first, 7u);
    EXPECT_EQ(sorted[1].first, 3u);
  }

  // Clear dirties it too.
  ledger.Clear(7);
  {
    const auto& sorted = ledger.NonZeroDescending();
    ASSERT_EQ(sorted.size(), 1u);
    EXPECT_EQ(sorted[0].first, 3u);
  }
}

TEST(RegretLedgerTest, SortedViewSnapshotSurvivesClearDuringIteration) {
  // The investment loop clears entries while walking the view; the
  // returned storage must stay intact for the remainder of the walk.
  RegretLedger ledger;
  for (StructureId id = 0; id < 8; ++id) {
    ledger.Add(id, Money::FromMicros(1000 + id));
  }
  const auto& sorted = ledger.NonZeroDescending();
  ASSERT_EQ(sorted.size(), 8u);
  size_t visited = 0;
  for (const auto& [id, amount] : sorted) {
    (void)amount;
    ledger.Clear(id);
    ++visited;
  }
  EXPECT_EQ(visited, 8u);
  EXPECT_TRUE(ledger.NonZeroDescending().empty());
}

TEST(RegretLedgerTest, SubtractRemovesExactShare) {
  RegretLedger ledger;
  ledger.Add(3, Money::FromMicros(1000));
  ledger.Subtract(3, Money::FromMicros(400));
  EXPECT_EQ(ledger.Get(3), Money::FromMicros(600));
  // Subtracting down to zero erases the entry entirely.
  ledger.Subtract(3, Money::FromMicros(600));
  EXPECT_TRUE(ledger.Get(3).IsZero());
  EXPECT_EQ(ledger.size(), 0u);
}

TEST(RegretLedgerTest, SubtractInvalidatesSortedView) {
  RegretLedger ledger;
  ledger.Add(1, Money::FromMicros(100));
  ledger.Add(2, Money::FromMicros(200));
  ASSERT_EQ(ledger.NonZeroDescending().front().first, 2u);
  ledger.Subtract(2, Money::FromMicros(150));
  ASSERT_EQ(ledger.NonZeroDescending().size(), 2u);
  EXPECT_EQ(ledger.NonZeroDescending().front().first, 1u);
}

TEST(RegretLedgerTest, ForEachNonZeroMatchesTotal) {
  RegretLedger ledger;
  ledger.Add(1, Money::FromMicros(100));
  ledger.Add(2, Money::FromMicros(200));
  ledger.Add(5, Money::FromMicros(50));
  ledger.Clear(5);  // Cleared entries must not be visited.
  Money sum;
  std::vector<StructureId> visited;
  ledger.ForEachNonZero([&](StructureId id, Money amount) {
    visited.push_back(id);
    sum += amount;
  });
  EXPECT_EQ(sum, ledger.Total());
  ASSERT_EQ(visited.size(), 2u);  // Ascending id order.
  EXPECT_EQ(visited[0], 1u);
  EXPECT_EQ(visited[1], 2u);
}

}  // namespace
}  // namespace cloudcache
