#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

namespace cloudcache {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue queue;
  EXPECT_TRUE(queue.Empty());
  EXPECT_EQ(queue.Size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  queue.Push({3.0, SimEvent::Kind::kArrival, 3});
  queue.Push({1.0, SimEvent::Kind::kArrival, 1});
  queue.Push({2.0, SimEvent::Kind::kArrival, 2});
  EXPECT_EQ(queue.Pop().payload, 1u);
  EXPECT_EQ(queue.Pop().payload, 2u);
  EXPECT_EQ(queue.Pop().payload, 3u);
  EXPECT_TRUE(queue.Empty());
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue queue;
  for (uint64_t i = 0; i < 10; ++i) {
    queue.Push({5.0, SimEvent::Kind::kCustom, i});
  }
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(queue.Pop().payload, i);
  }
}

TEST(EventQueueTest, TopDoesNotRemove) {
  EventQueue queue;
  queue.Push({1.0, SimEvent::Kind::kMeterTick, 42});
  EXPECT_EQ(queue.Top().payload, 42u);
  EXPECT_EQ(queue.Size(), 1u);
  EXPECT_EQ(queue.Pop().payload, 42u);
}

TEST(EventQueueTest, InterleavedPushPop) {
  EventQueue queue;
  queue.Push({5.0, SimEvent::Kind::kArrival, 5});
  queue.Push({1.0, SimEvent::Kind::kArrival, 1});
  EXPECT_EQ(queue.Pop().payload, 1u);
  queue.Push({2.0, SimEvent::Kind::kArrival, 2});
  EXPECT_EQ(queue.Pop().payload, 2u);
  EXPECT_EQ(queue.Pop().payload, 5u);
}

TEST(EventQueueTest, KindsPreserved) {
  EventQueue queue;
  queue.Push({1.0, SimEvent::Kind::kMeterTick, 0});
  EXPECT_EQ(queue.Pop().kind, SimEvent::Kind::kMeterTick);
}

}  // namespace
}  // namespace cloudcache
