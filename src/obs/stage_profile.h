#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace cloudcache {
namespace obs {

/// Decision-loop stages of EconomyEngine::OnQuery, in pipeline order.
enum class Stage : int {
  kEnumerate = 0,  // Plan enumeration over the structure pool.
  kSkyline,        // Cost/price skyline filtering of candidate plans.
  kPrice,          // Carried-charge pricing of the candidate set.
  kSettle,         // Plan selection, settlement, regret, investment.
};
inline constexpr int kNumStages = 4;

const char* StageName(Stage stage);

/// Process-wide wall-clock accumulator for the decision-loop stages.
///
/// Off by default and nearly free when off: the scoped timer reads one
/// relaxed atomic bool and touches no clock. When enabled
/// (`--profile-stages`) it accumulates per-stage call counts and
/// nanoseconds into relaxed atomics, safe under the parallel node driver.
///
/// Wall-clock time is observability-only by design: it never enters
/// SimMetrics, snapshots, or anything else the bit-identity pins compare
/// (see docs/observability.md).
class StageProfiler {
 public:
  static StageProfiler& Instance();

  void Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Record(Stage stage, uint64_t nanos) {
    const auto i = static_cast<size_t>(stage);
    counts_[i].fetch_add(1, std::memory_order_relaxed);
    nanos_[i].fetch_add(nanos, std::memory_order_relaxed);
  }

  uint64_t count(Stage stage) const {
    return counts_[static_cast<size_t>(stage)].load(
        std::memory_order_relaxed);
  }
  uint64_t nanos(Stage stage) const {
    return nanos_[static_cast<size_t>(stage)].load(
        std::memory_order_relaxed);
  }

  void Reset();

  /// Human-readable per-stage table (calls, total ms, ns/call, share of
  /// profiled time); printed by cloudcache_sim under --profile-stages.
  std::string FormatTable() const;

 private:
  StageProfiler() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> counts_[kNumStages] = {};
  std::atomic<uint64_t> nanos_[kNumStages] = {};
};

/// RAII stage timer: times the enclosing scope into the global profiler
/// when profiling is enabled, costs one relaxed load when it is not.
class ScopedStageTimer {
 public:
  explicit ScopedStageTimer(Stage stage)
      : stage_(stage), active_(StageProfiler::Instance().enabled()) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedStageTimer() {
    if (!active_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    StageProfiler::Instance().Record(
        stage_,
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  Stage stage_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace cloudcache
