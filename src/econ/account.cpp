#include "src/econ/account.h"

#include "src/persist/util_io.h"
#include "src/util/logging.h"

namespace cloudcache {

void CloudAccount::DepositRevenue(Money amount, SimTime now) {
  CLOUDCACHE_CHECK_GE(amount.micros(), 0);
  credit_ += amount;
  revenue_ += amount;
  Record(now);
}

void CloudAccount::ChargeExpenditure(Money amount, SimTime now) {
  CLOUDCACHE_CHECK_GE(amount.micros(), 0);
  credit_ -= amount;
  expenditure_ += amount;
  Record(now);
}

Status CloudAccount::WithdrawInvestment(Money amount, SimTime now) {
  CLOUDCACHE_CHECK_GE(amount.micros(), 0);
  if (amount > credit_) {
    return Status::ResourceExhausted(
        "investment " + amount.ToString() + " exceeds credit " +
        credit_.ToString());
  }
  credit_ -= amount;
  investment_ += amount;
  Record(now);
  return Status::OK();
}

void CloudAccount::SaveState(persist::Encoder* enc) const {
  enc->PutMoney(initial_);
  enc->PutMoney(credit_);
  enc->PutMoney(revenue_);
  enc->PutMoney(expenditure_);
  enc->PutMoney(investment_);
  persist::SaveTimeSeries(history_, enc);
}

Status CloudAccount::RestoreState(persist::Decoder* dec) {
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&initial_));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&credit_));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&revenue_));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&expenditure_));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&investment_));
  CLOUDCACHE_RETURN_IF_ERROR(persist::RestoreTimeSeries(dec, &history_));
  if (credit_ != initial_ + revenue_ - expenditure_ - investment_) {
    return Status::InvalidArgument(
        "snapshot account books do not balance (credit != initial + revenue "
        "- expenditure - investment)");
  }
  return Status::OK();
}

}  // namespace cloudcache
