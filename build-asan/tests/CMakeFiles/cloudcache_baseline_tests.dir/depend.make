# Empty dependencies file for cloudcache_baseline_tests.
# This may be replaced when dependencies are built.
