// Trace-golden pins for the economic event trace (src/obs/trace.h).
//
// Three properties carry the tracing contract:
//  1. Byte stability: the same configuration traces the same bytes, run
//     after run (what lets a committed golden trace diff cleanly).
//  2. Consistency: event counts in the trace equal the SimMetrics
//     counters of the run that produced them.
//  3. Isolation: tracing (and stage profiling) never feeds back into the
//     simulation — a fully instrumented run is bit-identical to a bare
//     one.

#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/catalog/tpch.h"
#include "src/obs/stage_profile.h"
#include "src/sim/experiment.h"
#include "tests/testing/metrics_equal.h"

namespace cloudcache {
namespace {

using cloudcache::testing::ExpectBitIdenticalMetrics;

TEST(EventTracerTest, RecordsAreWellFormedJsonLines) {
  std::ostringstream out;
  {
    obs::EventTracer tracer(&out);
    tracer.Event("invest", 42, 1.5, 3, 1)
        .U64("structure", 7)
        .F64("cost", 0.25)
        .Str("key", "index(a\"b)");
  }
  EXPECT_EQ(out.str(),
            "{\"type\":\"invest\",\"query\":42,\"t\":1.5,\"tenant\":3,"
            "\"node\":1,\"structure\":7,\"cost\":0.25,"
            "\"key\":\"index(a\\\"b)\"}\n");
}

/// Counts JSONL records of the given type.
size_t CountEvents(const std::string& trace, const std::string& type) {
  const std::string needle = "{\"type\":\"" + type + "\"";
  size_t count = 0;
  for (size_t pos = trace.find(needle); pos != std::string::npos;
       pos = trace.find(needle, pos + 1)) {
    ++count;
  }
  return count;
}

class TraceGoldenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog(MakeTpchCatalog(100.0));
    templates_ = new std::vector<QueryTemplate>(MakeTpchTemplates());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
    delete templates_;
    templates_ = nullptr;
  }

  /// Economy active enough that the short run invests and evicts.
  static ExperimentConfig ActiveConfig() {
    ExperimentConfig config;
    config.scheme = SchemeKind::kEconCheap;
    config.workload.interarrival_seconds = 1.0;
    config.workload.seed = 31;
    config.seed = 32;
    config.sim.num_queries = 1'500;
    config.customize_econ = [](EconScheme::Config& econ) {
      econ.economy.regret_fraction_a = 0.001;
      econ.economy.conservative_provider = false;
      econ.economy.initial_credit = Money::FromDollars(20);
      econ.economy.model_build_latency = false;
    };
    return config;
  }

  static Catalog* catalog_;
  static std::vector<QueryTemplate>* templates_;
};

Catalog* TraceGoldenTest::catalog_ = nullptr;
std::vector<QueryTemplate>* TraceGoldenTest::templates_ = nullptr;

TEST_F(TraceGoldenTest, TraceIsByteStableAndMatchesMetrics) {
  ExperimentConfig config = ActiveConfig();

  std::ostringstream first_out;
  obs::EventTracer first_tracer(&first_out);
  config.tracer = &first_tracer;
  const SimMetrics first = RunExperiment(*catalog_, *templates_, config);
  first_tracer.Flush();

  std::ostringstream second_out;
  obs::EventTracer second_tracer(&second_out);
  config.tracer = &second_tracer;
  const SimMetrics second = RunExperiment(*catalog_, *templates_, config);
  second_tracer.Flush();

  // Golden: byte-identical bytes, run to run.
  EXPECT_EQ(first_out.str(), second_out.str());
  ExpectBitIdenticalMetrics(first, second);

  // The run must actually exercise the events this pin is about.
  const std::string trace = first_out.str();
  ASSERT_GT(first.investments, 0u);
  ASSERT_GT(first.evictions, 0u);

  // Consistency: one trace record per counted event.
  EXPECT_EQ(CountEvents(trace, "invest"), first.investments);
  EXPECT_EQ(CountEvents(trace, "evict"), first.evictions);

  // Every record carries the four mandatory context fields.
  std::istringstream lines(trace);
  std::string line;
  size_t records = 0;
  while (std::getline(lines, line)) {
    ++records;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    for (const char* field :
         {"\"type\":", "\"query\":", "\"t\":", "\"tenant\":", "\"node\":"}) {
      EXPECT_NE(line.find(field), std::string::npos)
          << field << " missing from: " << line;
    }
  }
  EXPECT_EQ(records, CountEvents(trace, "invest") +
                         CountEvents(trace, "evict") +
                         CountEvents(trace, "throttle") +
                         CountEvents(trace, "readmit") +
                         CountEvents(trace, "node_rent") +
                         CountEvents(trace, "node_release") +
                         CountEvents(trace, "migrate"));
}

TEST_F(TraceGoldenTest, ThrottleEventsMatchAdmissionMetrics) {
  ExperimentConfig config = ActiveConfig();
  config.workload.interarrival_seconds = 5.0;
  config.workload.seed = 29;
  config.seed = 30;
  config.tenancy.tenants = 4;
  config.tenancy.traffic_skew = 1.0;
  config.tenancy.admission = true;
  config.sim.num_queries = 3'000;
  config.customize_econ = [](EconScheme::Config& econ) {
    econ.economy.regret_fraction_a = 0.001;
    econ.economy.conservative_provider = false;
    econ.economy.initial_credit = Money::FromDollars(20);
    econ.economy.model_build_latency = false;
    econ.economy.admission.throttle_ratio = 0.5;
    econ.economy.admission.readmit_ratio = 0.25;
    econ.economy.admission.min_regret = Money::FromDollars(0.05);
  };

  std::ostringstream out;
  obs::EventTracer tracer(&out);
  config.tracer = &tracer;
  const SimMetrics metrics = RunExperiment(*catalog_, *templates_, config);
  tracer.Flush();

  ASSERT_GT(metrics.throttled, 0u) << "config never throttled; the pin "
                                      "needs a run with admission action";
  // One throttle record per throttling onset — at most one per throttled
  // query, and at least one since throttling happened.
  const size_t throttles = CountEvents(out.str(), "throttle");
  EXPECT_GE(throttles, 1u);
  EXPECT_LE(throttles, metrics.throttled);
  // Readmissions only ever follow throttles.
  EXPECT_LE(CountEvents(out.str(), "readmit"), throttles);
}

TEST_F(TraceGoldenTest, ObservabilityOffIsBitIdenticalToInstrumented) {
  // THE observability invariant: tracing + stage profiling change not a
  // single bit of the simulation result.
  ExperimentConfig config = ActiveConfig();
  const SimMetrics bare = RunExperiment(*catalog_, *templates_, config);

  std::ostringstream out;
  obs::EventTracer tracer(&out);
  config.tracer = &tracer;
  obs::StageProfiler::Instance().Enable(true);
  const SimMetrics instrumented =
      RunExperiment(*catalog_, *templates_, config);
  obs::StageProfiler::Instance().Enable(false);
  obs::StageProfiler::Instance().Reset();

  EXPECT_GT(out.str().size(), 0u);
  ExpectBitIdenticalMetrics(bare, instrumented);
}

}  // namespace
}  // namespace cloudcache
