#pragma once

#include <cstdint>
#include <vector>

#include "src/cache/cache_state.h"
#include "src/catalog/schema.h"
#include "src/query/query.h"

namespace cloudcache {

/// Deterministic cost-aware query routing across cluster nodes.
///
/// The dominant cost difference between executing a query on one node or
/// another is the backend traffic its residency gap forces: accessed
/// columns the node has cached are served from its local disk, columns it
/// lacks push work to the backend and ship results over the WAN. The
/// router therefore scores each node by the bytes of the query's accessed
/// columns that are NOT resident there — an estimate of the marginal
/// transfer that node would have to buy to serve the query in cache — and
/// routes to the minimum (the node whose resident structures minimize
/// estimated execution cost).
///
/// Ties — most importantly the everything-cold start, where every node
/// scores the full footprint — break by a hash of the query's template,
/// so each template develops an affinity node: its queries keep landing
/// on one node, that node's economy accumulates the template's regret,
/// and the structures it then builds win future routes on merit rather
/// than by hash. The hash never consults an RNG and the router holds no
/// mutable state, so a route is a pure function of (query, node
/// residencies): bit-identical across repeats and sweep thread counts.
class PlacementRouter {
 public:
  explicit PlacementRouter(const Catalog* catalog) : catalog_(catalog) {}

  /// Bytes of `query`'s accessed columns not resident on `node` — the
  /// router's estimated marginal cost of serving the query there.
  uint64_t MissingBytes(const Query& query, const CacheState& node) const;

  /// Index into `nodes` of the serving node: minimum MissingBytes, ties
  /// broken by AffinityHash modulo the tied count. `nodes` must be
  /// non-empty; with one node this is 0 without any scoring. Non-const
  /// only for the reused score buffer — the route itself is a pure
  /// function of (query, node residencies).
  size_t Route(const Query& query,
               const std::vector<const CacheState*>& nodes);

  /// Template-affinity tie-break hash: a pure function of the query's
  /// template id (or, for ad-hoc queries, its driving table and first
  /// accessed column).
  static uint64_t AffinityHash(const Query& query);

 private:
  const Catalog* catalog_;
  /// Per-route node scores, reused across calls so the routed hot path
  /// allocates nothing and never scans a node's residency twice.
  std::vector<uint64_t> scores_;
};

}  // namespace cloudcache
