#include "src/econ/economy.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/econ/fairness.h"
#include "src/obs/stage_profile.h"
#include "src/obs/trace.h"
#include "src/plan/skyline.h"
#include "src/util/logging.h"

namespace cloudcache {

const char* BudgetCaseToString(BudgetCase c) {
  switch (c) {
    case BudgetCase::kCaseA:
      return "A";
    case BudgetCase::kCaseB:
      return "B";
    case BudgetCase::kCaseC:
      return "C";
  }
  return "?";
}

const char* PlanSelectionToString(PlanSelection s) {
  switch (s) {
    case PlanSelection::kMinProfit:
      return "min-profit";
    case PlanSelection::kCheapest:
      return "cheapest";
    case PlanSelection::kFastest:
      return "fastest";
  }
  return "?";
}

EconomyEngine::EconomyEngine(const Catalog* catalog,
                             StructureRegistry* registry,
                             const CostModel* decision_model,
                             EnumeratorOptions enumerator_options,
                             EconomyOptions options)
    : catalog_(catalog),
      registry_(registry),
      model_(decision_model),
      options_(options),
      enumerator_(decision_model, registry, std::move(enumerator_options)),
      cache_(registry),
      pool_(options.candidate_pool_capacity),
      maintenance_(decision_model),
      account_(options.initial_credit),
      admission_(options.admission),
      amortizer_(options.amortization_horizon) {
  CLOUDCACHE_CHECK_GT(options_.regret_fraction_a, 0.0);
  CLOUDCACHE_CHECK_LT(options_.regret_fraction_a, 1.0);
  CLOUDCACHE_CHECK_GE(options_.eviction_breadth_slack, 0.0);
}

void EconomyEngine::SetIndexCandidates(
    const std::vector<StructureKey>& candidates) {
  enumerator_.SetIndexCandidates(candidates);
}

void EconomyEngine::SetTenantCount(size_t n) {
  tenant_regret_.assign(n, RegretLedger());
  active_tenant_regret_ = nullptr;
  suppress_regret_ = false;
  // Both policies need a population to arbitrate between: with fewer
  // than two tenants they stay fully inert, so a forced-event-path
  // single-tenant run (admission flag or not) remains bit-identical to
  // the classic path — a lone tenant must never throttle itself.
  admission_.SetTenantCount(n > 1 ? n : 0);
  // Tenant-aware pool aging only means something once at least two
  // ledgers exist; otherwise (or with the policy off) the pool stays
  // strict LRU — the pre-tenancy letter of Section IV-B.
  if (options_.tenant_weighted_eviction && n > 1) {
    pool_.SetVictimScorer(
        [this](StructureId id) { return BackingBreadth(id); },
        options_.eviction_aging_window);
  } else {
    pool_.SetVictimScorer(nullptr, 1);
  }
}

const RegretLedger& EconomyEngine::tenant_regret(size_t t) const {
  CLOUDCACHE_CHECK_LT(t, tenant_regret_.size());
  return tenant_regret_[t];
}

Money EconomyEngine::TenantRegretTotal(size_t t) const {
  if (t >= tenant_regret_.size()) return Money();
  return tenant_regret_[t].Total();
}

void EconomyEngine::ClearRegretEverywhere(StructureId id) {
  regret_.Clear(id);
  for (RegretLedger& ledger : tenant_regret_) ledger.Clear(id);
}

double EconomyEngine::BackingBreadth(StructureId id) const {
  if (tenant_regret_.size() < 2) return 0.0;
  breadth_scratch_.clear();
  for (const RegretLedger& ledger : tenant_regret_) {
    breadth_scratch_.push_back(ledger.Get(id).ToDollars());
  }
  return NormalizedBreadth(breadth_scratch_);
}

void EconomyEngine::ForfeitTenantRegret(uint32_t tenant) {
  // Subtracting the tenant's exact entries keeps the remaining tenant
  // ledgers a partition of the global one; per-entry subtraction
  // commutes, so the map's iteration order never reaches the metrics.
  RegretLedger& ledger = tenant_regret_[tenant];
  ledger.ForEachNonZero([this](StructureId id, Money amount) {
    regret_.Subtract(id, amount);
  });
  ledger = RegretLedger();
}

void EconomyEngine::ActivatePending(SimTime now) {
  for (size_t i = 0; i < pending_.size();) {
    if (pending_[i].ready_at <= now) {
      const StructureId id = pending_[i].id;
      CLOUDCACHE_CHECK(cache_.Add(id, now).ok());
      pending_flag_[id] = false;
      pending_[i] = pending_.back();
      pending_.pop_back();
    } else {
      ++i;
    }
  }
}

Money EconomyEngine::BuildCostNow(StructureId id) const {
  return model_->BuildCost(registry_->key(id), cache_.column_residency());
}

Money EconomyEngine::MemoBuildCostNow(StructureId id) const {
  // Stamp = epoch + 1 so 0 means "never computed"; any residency mutation
  // bumps the epoch and invalidates every entry at once.
  const uint64_t stamp = cache_.epoch() + 1;
  if (id >= build_cost_stamp_.size()) {
    build_cost_stamp_.resize(registry_->size(), 0);
    build_cost_value_.resize(registry_->size(), Money());
  }
  if (build_cost_stamp_[id] != stamp) {
    build_cost_stamp_[id] = stamp;
    build_cost_value_[id] = BuildCostNow(id);
  }
  return build_cost_value_[id];
}

void EconomyEngine::PriceCarriedCharges(PlanSet* set, SimTime now) const {
  // Per-structure charges repeat heavily across the plan set: a column
  // appears in the scan plan, every non-covering index plan, and all of
  // their node variants. Each is computed at most once per call:
  //  * a resident structure's charge reads the amortizer and maintenance
  //    ledgers, which move between queries — memoized under a per-call
  //    tick;
  //  * a hypothetical structure's advertised build share depends only on
  //    column residency, which moves exactly with CacheState::epoch —
  //    memoized under the epoch (+1 so 0 means "never computed") and
  //    reused across queries, skipping the whole Eq. 10-14 build-cost
  //    walk (including the synthetic sort query of Eq. 14).
  // Money is exact int64, so summing memoized per-structure values in
  // plan order is bit-identical to the original per-plan recomputation.
  const uint64_t tick = ++charge_tick_;
  const uint64_t epoch_stamp = cache_.epoch() + 1;
  const size_t universe = registry_->size();
  if (charge_stamp_.size() < universe) {
    charge_stamp_.resize(universe, 0);
    charge_value_.resize(universe, Money());
    hypo_epoch_stamp_.resize(universe, 0);
    hypo_share_.resize(universe, Money());
  }
  // Node variants of one plan family carry the same structure list and
  // arrive consecutively; their carried sum is identical (each structure's
  // memoized value is stable within this call), so it is computed once per
  // family and copied forward.
  const std::vector<StructureId>* prev_structures = nullptr;
  Money prev_carried;
  for (QueryPlan& plan : set->plans) {
    if (prev_structures != nullptr &&
        plan.structures == *prev_structures) {
      plan.carried_charges = prev_carried;
      continue;
    }
    Money carried;
    for (StructureId id : plan.structures) {
      if (charge_stamp_[id] != tick) {
        charge_stamp_[id] = tick;
        if (cache_.IsResident(id)) {
          // Eq. 5-7 share plus the rent owed since the last payer
          // (footnote 3), capped per use.
          charge_value_[id] =
              amortizer_.PendingShare(id) +
              maintenance_.OwedCapped(
                  id, now, options_.maintenance_recovery_cap_seconds);
        } else {
          // Hypothetical structure: advertise the share its build cost
          // would contribute to this plan's price if it existed.
          if (hypo_epoch_stamp_[id] != epoch_stamp) {
            hypo_epoch_stamp_[id] = epoch_stamp;
            hypo_share_[id] = EvenShare(MemoBuildCostNow(id),
                                        options_.amortization_horizon, 0);
          }
          charge_value_[id] = hypo_share_[id];
        }
      }
      carried += charge_value_[id];
    }
    plan.carried_charges = carried;
    prev_structures = &plan.structures;
    prev_carried = carried;
  }
}

bool EconomyEngine::Affordable(const QueryPlan& plan,
                               const BudgetFunction& budget) const {
  const double t = plan.TimeSeconds();
  if (t > budget.t_max()) return false;
  return budget.At(t) >= plan.Price();
}

size_t EconomyEngine::SelectPlan(const std::vector<QueryPlan>& plans,
                                 const std::vector<size_t>& candidates,
                                 const BudgetFunction& budget) const {
  CLOUDCACHE_CHECK(!candidates.empty());
  auto better = [&](size_t a, size_t b) {
    const QueryPlan& pa = plans[a];
    const QueryPlan& pb = plans[b];
    switch (options_.selection) {
      case PlanSelection::kMinProfit: {
        const Money gain_a = budget.At(pa.TimeSeconds()) - pa.Price();
        const Money gain_b = budget.At(pb.TimeSeconds()) - pb.Price();
        if (gain_a != gain_b) return gain_a < gain_b;
        break;
      }
      case PlanSelection::kCheapest:
        if (pa.Price() != pb.Price()) return pa.Price() < pb.Price();
        break;
      case PlanSelection::kFastest:
        if (pa.TimeSeconds() != pb.TimeSeconds()) {
          return pa.TimeSeconds() < pb.TimeSeconds();
        }
        break;
    }
    if (pa.TimeSeconds() != pb.TimeSeconds()) {
      return pa.TimeSeconds() < pb.TimeSeconds();
    }
    if (pa.Price() != pb.Price()) return pa.Price() < pb.Price();
    return a < b;
  };
  size_t best = candidates.front();
  for (size_t i = 1; i < candidates.size(); ++i) {
    if (better(candidates[i], best)) best = candidates[i];
  }
  return best;
}

void EconomyEngine::AccumulateRegret(const std::vector<QueryPlan>& plans,
                                     const std::vector<size_t>& skyline,
                                     size_t chosen_index,
                                     BudgetCase budget_case,
                                     const BudgetFunction& budget,
                                     SimTime /*now*/) {
  // Reference price: the executed plan's, or — when nothing was served —
  // the cheapest executable plan the user was quoted.
  Money reference;
  bool have_reference = false;
  if (chosen_index != std::numeric_limits<size_t>::max()) {
    reference = plans[chosen_index].Price();
    have_reference = true;
  } else {
    for (size_t j : skyline) {
      const QueryPlan& plan = plans[j];
      if (!plan.IsExisting()) continue;
      if (!have_reference || plan.Price() < reference) {
        reference = plan.Price();
        have_reference = true;
      }
    }
  }
  if (!have_reference) return;

  for (size_t j : skyline) {
    if (j == chosen_index) continue;
    const QueryPlan& plan = plans[j];
    if (plan.IsExisting()) continue;  // Regret targets PQpos only.
    Money amount;
    switch (budget_case) {
      case BudgetCase::kCaseA:
        // Eq. 1: missed chance to serve more cheaply.
        if (plan.Price() <= reference) amount = reference - plan.Price();
        break;
      case BudgetCase::kCaseB:
      case BudgetCase::kCaseC:
        // Eq. 2: missed profit, for the plans at least as expensive as the
        // chosen one (case C restricts to the affordable subset).
        if (budget_case == BudgetCase::kCaseC &&
            !Affordable(plan, budget)) {
          break;
        }
        if (plan.Price() >= reference) {
          amount = Money::Max(Money(),
                              budget.At(plan.TimeSeconds()) - plan.Price());
        }
        break;
    }
    // A throttled tenant's contribution is scaled down (to zero by
    // default) before any booking, so both ledgers and the admission
    // counters see the same reduced amount.
    if (suppress_regret_) {
      amount = amount * options_.admission.throttled_regret_scale;
    }
    if (!amount.IsZero()) {
      regret_.Distribute(plan.structures, amount);
      // The same EvenShare split lands in the serving tenant's ledger, so
      // tenant ledgers always partition the global one exactly.
      if (active_tenant_regret_ != nullptr) {
        active_tenant_regret_->Distribute(plan.structures, amount);
        admission_.RecordRegret(active_tenant_, amount);
      }
    }
  }
}

void EconomyEngine::SettleExecution(const Query&, const QueryPlan& plan,
                                    Money payment, SimTime now,
                                    QueryOutcome* outcome) {
  for (StructureId id : plan.structures) {
    CLOUDCACHE_CHECK(cache_.IsResident(id));
    cache_.Touch(id, now);
    outcome->maintenance_collected += maintenance_.Pay(
        id, now, options_.maintenance_recovery_cap_seconds);
    outcome->amortization_collected += amortizer_.ChargeShare(id);
  }
  account_.DepositRevenue(payment, now);
  outcome->payment = payment;
  outcome->profit = payment - plan.Price();
  CLOUDCACHE_CHECK_GE(outcome->profit.micros(), 0);
  outcome->served = true;
  outcome->chosen = plan;
}

void EconomyEngine::MaybeInvest(SimTime now, QueryOutcome* outcome) {
  const Money credit = account_.credit();
  if (!credit.IsPositive()) return;

  // Fast path: Eq. 3 fires only when some eligible structure's standing
  // regret clears round(regret / (a * CR)) >= 1 — and, for a conservative
  // provider, only when the credit also covers that structure's build
  // cost. One flat ledger scan decides that before paying for the sorted
  // descending view below. Skipping the full pass when nothing qualifies
  // is bit-identical: with no investment the credit — and with it every
  // per-entry check — never changes across the loop, so every iteration
  // would just `continue` with no side effects. The affordability check
  // mirrors the loop's conservative guard exactly (same epoch, so the
  // memoized build cost is the same bits); without it, one standing
  // high-regret-but-unaffordable candidate would force the full sorted
  // pass on every query.
  const Money scaled_credit = credit * options_.regret_fraction_a;
  const bool any_candidate =
      regret_.AnyNonZero([&](StructureId id, Money regret_value) {
        if (cache_.IsResident(id)) return false;
        if (id < pending_flag_.size() && pending_flag_[id]) return false;
        const StructureKey& key = registry_->key(id);
        if (key.type == StructureType::kCpuNode) {
          if (key.ordinal >= options_.max_extra_nodes) return false;
          if (key.ordinal > cache_.extra_cpu_nodes()) return false;
        }
        if (std::llround(regret_value.Ratio(scaled_credit)) < 1) {
          return false;
        }
        if (options_.conservative_provider &&
            credit < MemoBuildCostNow(id)) {
          return false;
        }
        return true;
      });
  if (!any_candidate) return;

  for (const auto& [id, regret_value] : regret_.NonZeroDescending()) {
    if (cache_.IsResident(id)) continue;
    if (id < pending_flag_.size() && pending_flag_[id]) continue;

    const StructureKey& key = registry_->key(id);
    if (key.type == StructureType::kCpuNode) {
      if (key.ordinal >= options_.max_extra_nodes) continue;
      // Boot nodes in ordinal order so multi-node plans become executable.
      if (key.ordinal > cache_.extra_cpu_nodes()) continue;
    }

    // Eq. 3: InvestIn(S) = round(regret_S / (a * CR)) >= 1.
    const Money current_credit = account_.credit();
    if (!current_credit.IsPositive()) break;
    const double invest_in =
        regret_value.Ratio(current_credit * options_.regret_fraction_a);
    if (std::llround(invest_in) < 1) continue;

    const Money build_cost = MemoBuildCostNow(id);
    if (options_.conservative_provider && current_credit < build_cost) {
      continue;  // Never gamble credit the cloud does not have.
    }
    if (!account_.WithdrawInvestment(build_cost, now).ok()) continue;

    // Building an index also ships its absent key columns into the cache
    // (their BuildT is inside Eq. 14), so they materialize alongside it.
    std::vector<StructureId> built = {id};
    if (key.type == StructureType::kIndex) {
      for (ColumnId col : key.columns) {
        if (!cache_.ColumnResident(col)) {
          const StructureId col_id =
              registry_->Intern(ColumnKey(*catalog_, col));
          if (!cache_.IsResident(col_id) &&
              !(col_id < pending_flag_.size() && pending_flag_[col_id])) {
            built.push_back(col_id);
          }
        }
      }
    }

    const double ready_at =
        options_.model_build_latency
            ? now + model_->BuildSeconds(key, cache_.column_residency())
            : now;
    // Tenant-aware eviction: a structure whose triggering regret spread
    // broadly over tenants earns failure-threshold slack; companion
    // columns ride the index's backing. Computed before the ledgers
    // forget the regret below.
    const double failure_scale =
        options_.tenant_weighted_eviction
            ? 1.0 + options_.eviction_breadth_slack * BackingBreadth(id)
            : 1.0;
    for (StructureId built_id : built) {
      const Money recorded_cost =
          built_id == id ? build_cost : Money();  // Columns ride the index.
      if (options_.model_build_latency) {
        if (built_id >= pending_flag_.size()) {
          pending_flag_.resize(built_id + 1, false);
        }
        pending_flag_[built_id] = true;
        pending_.push_back(PendingBuild{ready_at, built_id});
      } else {
        CLOUDCACHE_CHECK(cache_.Add(built_id, now).ok());
      }
      maintenance_.Register(built_id, registry_->key(built_id),
                            ready_at, recorded_cost, failure_scale);
      // This regret is the kind admission can monetize: it turned into a
      // structure. Book each tenant's share before it is forgotten (a
      // later maintenance failure hands the shares back).
      if (admission_.enabled()) {
        for (size_t t = 0; t < tenant_regret_.size(); ++t) {
          admission_.RecordMonetized(static_cast<uint32_t>(t), built_id,
                                     tenant_regret_[t].Get(built_id));
        }
      }
      ClearRegretEverywhere(built_id);
      pool_.Erase(built_id);
    }
    amortizer_.RegisterBuild(id, build_cost);
    outcome->investments.push_back(id);
    if (tracer_ != nullptr) {
      tracer_->Event("invest", trace_query_, now, trace_tenant_, trace_node_)
          .U64("structure", id)
          .Str("key", registry_->key(id).ToString(*catalog_))
          .F64("build_cost_dollars", build_cost.ToDollars())
          .F64("ready_at", ready_at)
          .U64("companions", built.size() - 1);
    }
  }
}

void EconomyEngine::EvictFailedStructures(SimTime now,
                                          QueryOutcome* outcome) {
  // This runs before every query; skip it outright when no tracked clock
  // has fallen behind, and visit residents in place (ascending id, as
  // Residents() returned them) instead of copying the list. Removing the
  // visited id inside the loop is safe: Remove only flips its bit.
  if (maintenance_.NothingOwedBy(now)) return;
  cache_.ForEachResident([&](StructureId id) {
    if (maintenance_.PaidThrough(id, now)) return;
    const Money owed = maintenance_.Owed(id, now);
    if (owed.IsZero()) return;
    Money build_cost = maintenance_.BuildCostOf(id);
    if (build_cost.IsZero()) {
      // Column shipped as part of an index build: judge it by what it
      // would cost to rebuild on its own.
      build_cost = MemoBuildCostNow(id);
    }
    Money threshold = build_cost * options_.maintenance_failure_fraction;
    // Tenant-aware slack stamped at build time; scales other than 1.0
    // exist only when the policy is on, so the classic path skips the
    // lookup and keeps the pre-policy threshold bit-identical.
    if (options_.tenant_weighted_eviction) {
      const double scale = maintenance_.FailureScale(id);
      if (scale != 1.0) threshold = threshold * scale;
    }
    if (owed > threshold) {
      CLOUDCACHE_CHECK(cache_.Remove(id).ok());
      maintenance_.Unregister(id, now);
      amortizer_.Cancel(id);
      // A failed build wasted the regret that backed it: admission hands
      // the backers' monetized shares back to unmonetized.
      admission_.OnStructureFailed(id);
      if (options_.clear_regret_on_failure) ClearRegretEverywhere(id);
      if (outcome != nullptr) {
        outcome->evictions.push_back(id);
      } else {
        tick_evictions_.push_back(id);
      }
      if (tracer_ != nullptr) {
        tracer_
            ->Event("evict", trace_query_, now, trace_tenant_, trace_node_)
            .U64("structure", id)
            .Str("key", registry_->key(id).ToString(*catalog_))
            .Str("reason", "maintenance")
            .F64("owed_dollars", owed.ToDollars())
            .F64("threshold_dollars", threshold.ToDollars());
      }
    }
  });
}

void EconomyEngine::OnTick(SimTime now) {
  ActivatePending(now);
  EvictFailedStructures(now, nullptr);
}

Status EconomyEngine::ForceBuild(const StructureKey& key, SimTime now) {
  const StructureId id = registry_->Intern(key);
  if (cache_.IsResident(id)) {
    return Status::AlreadyExists(key.ToString(*catalog_));
  }
  const Money build_cost = BuildCostNow(id);
  CLOUDCACHE_RETURN_IF_ERROR(account_.WithdrawInvestment(build_cost, now));
  std::vector<StructureId> built = {id};
  if (key.type == StructureType::kIndex) {
    for (ColumnId col : key.columns) {
      if (!cache_.ColumnResident(col)) {
        built.push_back(registry_->Intern(ColumnKey(*catalog_, col)));
      }
    }
  }
  for (StructureId built_id : built) {
    if (cache_.IsResident(built_id)) continue;
    CLOUDCACHE_RETURN_IF_ERROR(cache_.Add(built_id, now));
    maintenance_.Register(built_id, registry_->key(built_id), now,
                          built_id == id ? build_cost : Money());
  }
  amortizer_.RegisterBuild(id, build_cost);
  ClearRegretEverywhere(id);
  pool_.Erase(id);
  return Status::OK();
}

QueryOutcome EconomyEngine::OnQuery(const Query& query,
                                    const BudgetFunction& budget,
                                    SimTime now) {
  QueryOutcome outcome;
  trace_query_ = query.id;
  trace_tenant_ = query.tenant_id;
  if (tenant_regret_.empty()) {
    active_tenant_regret_ = nullptr;
    suppress_regret_ = false;
  } else {
    // With attribution on, silently dropping an out-of-range tenant's
    // regret would break the ledgers-partition-the-global invariant.
    CLOUDCACHE_CHECK_LT(query.tenant_id, tenant_regret_.size());
    active_tenant_ = query.tenant_id;
    active_tenant_regret_ = &tenant_regret_[query.tenant_id];
    // Admission: re-evaluate the serving tenant's throttle state. The
    // moment a tenant trips the throttle its standing regret is forfeited
    // from the shared ledger, so Eq. 3 stops investing on its behalf;
    // while throttled, this query's regret goes unbooked (the query
    // itself is served and billed exactly as before).
    bool newly_throttled = false;
    const bool was_throttled = query.tenant_id < admission_.tenant_count() &&
                               admission_.throttled(query.tenant_id);
    suppress_regret_ =
        admission_.Throttled(query.tenant_id, &newly_throttled);
    if (newly_throttled && options_.admission.forfeit_standing_regret) {
      ForfeitTenantRegret(query.tenant_id);
    }
    outcome.throttled = suppress_regret_;
    if (tracer_ != nullptr) {
      if (newly_throttled) {
        tracer_->Event("throttle", trace_query_, now, trace_tenant_,
                       trace_node_);
      } else if (was_throttled && !suppress_regret_) {
        tracer_->Event("readmit", trace_query_, now, trace_tenant_,
                       trace_node_);
      }
    }
  }
  outcome.evictions = std::move(tick_evictions_);
  tick_evictions_.clear();
  ActivatePending(now);
  EvictFailedStructures(now, &outcome);

  // The whole decision pipeline below runs on reused buffers (the
  // enumerator's shared per-template plan set plus the economy's index
  // scratches) so the steady state allocates nothing per query. On a
  // plan-cache hit EnumerateShared re-prices the cached plans in place,
  // the skyline yields survivor INDICES into that shared set, and every
  // downstream step reads plans through those indices — no plan is
  // copied on the decision path (only the chosen one, into the outcome).
  PlanSet* enumerated;
  {
    obs::ScopedStageTimer timer(obs::Stage::kEnumerate);
    enumerated = enumerator_.EnumerateShared(query, cache_);
  }
  {
    obs::ScopedStageTimer timer(obs::Stage::kPrice);
    PriceCarriedCharges(enumerated, now);
  }
  {
    obs::ScopedStageTimer timer(obs::Stage::kSkyline);
    SkylineIndicesInto(*enumerated, &skyline_indices_, &skyline_scratch_);
  }
  // Everything below — affordability, selection, settlement, regret, and
  // investment — is the settle stage; the timer runs to return.
  obs::ScopedStageTimer settle_timer(obs::Stage::kSettle);
  const std::vector<QueryPlan>& plans = enumerated->plans;
  const std::vector<size_t>& skyline = skyline_indices_;
  outcome.num_plans = static_cast<uint32_t>(skyline.size());

  // One pass over the survivors does three jobs (each preserving skyline
  // order, so every downstream tie-break is unchanged):
  //  * keep the candidate pool's LRU clock fresh for every hypothetical
  //    structure that appeared in a plan — candidates that fall off the
  //    cold end forfeit their regret (Section IV-B);
  //  * partition into executable (PQexist) indices;
  //  * classify affordability once per plan (budget.At is a virtual call
  //    — evaluating it a second time for the executable subset would be
  //    pure waste).
  existing_scratch_.clear();
  affordable_existing_scratch_.clear();
  size_t affordable_count = 0;
  for (size_t idx : skyline) {
    const QueryPlan& plan = plans[idx];
    for (StructureId id : plan.missing) {
      for (StructureId evicted : pool_.Touch(id, now)) {
        ClearRegretEverywhere(evicted);
      }
    }
    const bool affordable = Affordable(plan, budget);
    affordable_count += affordable;
    if (plan.IsExisting()) {
      existing_scratch_.push_back(idx);
      if (affordable) affordable_existing_scratch_.push_back(idx);
    }
  }
  const std::vector<size_t>& existing = existing_scratch_;
  outcome.num_existing = static_cast<uint32_t>(existing.size());
  CLOUDCACHE_CHECK(!existing.empty());  // The backend plan always exists.

  // Classify the relationship between B_Q and B_PQ (Fig. 2). Case A is
  // the paper's "Q cannot be served according to the user's defined
  // budget": no *executable* plan is affordable (a hypothetical plan that
  // would be affordable if built cannot serve the query today, and its
  // missed cheapness is exactly what Eq. 1's regret records).
  const std::vector<size_t>& affordable_existing =
      affordable_existing_scratch_;
  if (affordable_existing.empty()) {
    outcome.budget_case = BudgetCase::kCaseA;
  } else if (affordable_count == skyline.size()) {
    outcome.budget_case = BudgetCase::kCaseB;
  } else {
    outcome.budget_case = BudgetCase::kCaseC;
  }

  size_t chosen = std::numeric_limits<size_t>::max();
  if (!affordable_existing.empty()) {
    // Cases B and C: pick per the policy and collect B_Q(t_i).
    chosen = SelectPlan(plans, affordable_existing, budget);
    const Money payment = budget.At(plans[chosen].TimeSeconds());
    SettleExecution(query, plans[chosen], payment, now, &outcome);
  } else if (options_.user_accepts_above_budget) {
    // Case A (or C with no affordable executable plan): the user is shown
    // the menu and — per the paper's experimental setup — accepts the
    // cheapest executable offer at its quoted price. No profit.
    size_t cheapest = existing.front();
    for (size_t idx : existing) {
      if (plans[idx].Price() < plans[cheapest].Price()) {
        cheapest = idx;
      }
    }
    chosen = cheapest;
    SettleExecution(query, plans[chosen], plans[chosen].Price(),
                    now, &outcome);
  }

  if (outcome.served && active_tenant_regret_ != nullptr) {
    admission_.RecordRevenue(active_tenant_, outcome.payment);
  }
  AccumulateRegret(plans, skyline, chosen, outcome.budget_case, budget, now);
  MaybeInvest(now, &outcome);
  return outcome;
}

void EconomyEngine::SaveState(persist::Encoder* enc) const {
  cache_.SaveState(enc);
  pool_.SaveState(enc);
  maintenance_.SaveState(enc);
  account_.SaveState(enc);
  regret_.SaveState(enc);
  enc->PutU64(tenant_regret_.size());
  for (const RegretLedger& ledger : tenant_regret_) ledger.SaveState(enc);
  admission_.SaveState(enc);
  amortizer_.SaveState(enc);
  enc->PutU64(pending_.size());
  for (const PendingBuild& build : pending_) {
    enc->PutDouble(build.ready_at);
    enc->PutU32(build.id);
  }
  enc->PutU64(tick_evictions_.size());
  for (StructureId id : tick_evictions_) enc->PutU32(id);
}

Status EconomyEngine::RestoreState(persist::Decoder* dec) {
  CLOUDCACHE_RETURN_IF_ERROR(cache_.RestoreState(dec));
  CLOUDCACHE_RETURN_IF_ERROR(pool_.RestoreState(dec));
  CLOUDCACHE_RETURN_IF_ERROR(maintenance_.RestoreState(dec, *registry_));
  CLOUDCACHE_RETURN_IF_ERROR(account_.RestoreState(dec));
  CLOUDCACHE_RETURN_IF_ERROR(regret_.RestoreState(dec));
  uint64_t tenant_count = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&tenant_count));
  if (tenant_count != tenant_regret_.size()) {
    return Status::FailedPrecondition(
        "snapshot has " + std::to_string(tenant_count) +
        " tenant regret ledgers but this run provisioned " +
        std::to_string(tenant_regret_.size()));
  }
  Money tenant_total;
  for (RegretLedger& ledger : tenant_regret_) {
    CLOUDCACHE_RETURN_IF_ERROR(ledger.RestoreState(dec));
    tenant_total += ledger.Total();
  }
  // The tenant ledgers partition the global ledger whenever attribution is
  // on (engine invariant 2); a snapshot that violates it was not written
  // by this engine.
  if (!tenant_regret_.empty() && tenant_total != regret_.Total()) {
    return Status::InvalidArgument(
        "snapshot tenant regret ledgers do not partition the global ledger");
  }
  CLOUDCACHE_RETURN_IF_ERROR(admission_.RestoreState(dec));
  CLOUDCACHE_RETURN_IF_ERROR(amortizer_.RestoreState(dec));

  pending_.clear();
  pending_flag_.assign(registry_->size(), false);
  uint64_t pending_count = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&pending_count));
  for (uint64_t i = 0; i < pending_count; ++i) {
    PendingBuild build;
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&build.ready_at));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&build.id));
    if (build.id >= registry_->size()) {
      return Status::InvalidArgument(
          "snapshot pending build names unknown structure id " +
          std::to_string(build.id));
    }
    if (pending_flag_[build.id]) {
      return Status::InvalidArgument(
          "snapshot pending build repeats structure id " +
          std::to_string(build.id));
    }
    pending_flag_[build.id] = true;
    pending_.push_back(build);
  }
  tick_evictions_.clear();
  uint64_t eviction_count = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&eviction_count));
  for (uint64_t i = 0; i < eviction_count; ++i) {
    StructureId id = 0;
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&id));
    if (id >= registry_->size()) {
      return Status::InvalidArgument(
          "snapshot tick eviction names unknown structure id " +
          std::to_string(id));
    }
    tick_evictions_.push_back(id);
  }

  // Drop every pricing memo. Their stamp discipline (epoch + 1 / a per-call
  // tick, 0 meaning "never computed") makes an empty memo bit-identical to
  // a warm one — the next lookup recomputes from the restored state.
  charge_tick_ = 0;
  charge_stamp_.clear();
  charge_value_.clear();
  hypo_epoch_stamp_.clear();
  hypo_share_.clear();
  build_cost_stamp_.clear();
  build_cost_value_.clear();
  active_tenant_regret_ = nullptr;
  active_tenant_ = 0;
  suppress_regret_ = false;
  return Status::OK();
}

}  // namespace cloudcache
