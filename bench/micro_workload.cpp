// M4: workload generation and trace serialization throughput.

#include <benchmark/benchmark.h>

#include <sstream>

#include "src/catalog/tpch.h"
#include "src/query/templates.h"
#include "src/workload/generator.h"
#include "src/workload/trace.h"

namespace cloudcache {
namespace {

struct Env {
  Env() : catalog(MakeTpchCatalog(2500.0)) {
    auto resolved = ResolveTemplates(catalog, MakeTpchTemplates());
    templates = *resolved;
  }
  Catalog catalog;
  std::vector<ResolvedTemplate> templates;
};

Env& GetEnv() {
  static Env env;
  return env;
}

void BM_GenerateQuery(benchmark::State& state) {
  Env& env = GetEnv();
  WorkloadGenerator gen(&env.catalog, env.templates, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
}
BENCHMARK(BM_GenerateQuery);

void BM_GenerateQueryPoisson(benchmark::State& state) {
  Env& env = GetEnv();
  WorkloadOptions options;
  options.arrival = WorkloadOptions::Arrival::kPoisson;
  WorkloadGenerator gen(&env.catalog, env.templates, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
}
BENCHMARK(BM_GenerateQueryPoisson);

void BM_TraceSerialize(benchmark::State& state) {
  Env& env = GetEnv();
  WorkloadGenerator gen(&env.catalog, env.templates, {});
  std::vector<Query> queries;
  for (int i = 0; i < 1000; ++i) queries.push_back(gen.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(TraceWriter::ToCsv(queries));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TraceSerialize);

void BM_TraceParse(benchmark::State& state) {
  Env& env = GetEnv();
  WorkloadGenerator gen(&env.catalog, env.templates, {});
  std::vector<Query> queries;
  for (int i = 0; i < 1000; ++i) queries.push_back(gen.Next());
  const std::string csv = TraceWriter::ToCsv(queries);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TraceReader::FromCsv(csv, env.catalog));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TraceParse);

}  // namespace
}  // namespace cloudcache
