#include "src/plan/enumerator.h"

#include <algorithm>

#include "src/util/logging.h"
#include "src/util/slot_pool.h"

namespace cloudcache {

namespace {

/// EmitNodeVariants requires its structure list sorted and deduplicated;
/// every plan family routes through this one normalization.
void NormalizeStructures(std::vector<StructureId>* structures) {
  std::sort(structures->begin(), structures->end());
  structures->erase(std::unique(structures->begin(), structures->end()),
                    structures->end());
}

}  // namespace

PlanEnumerator::PlanEnumerator(const CostModel* model,
                               StructureRegistry* registry,
                               EnumeratorOptions options)
    : model_(model),
      registry_(registry),
      options_(std::move(options)),
      batch_(model) {
  CLOUDCACHE_CHECK(std::find(options_.node_options.begin(),
                             options_.node_options.end(),
                             1u) != options_.node_options.end());
  std::sort(options_.node_options.begin(), options_.node_options.end());
  options_.node_options.erase(std::unique(options_.node_options.begin(),
                                          options_.node_options.end()),
                              options_.node_options.end());
}

void PlanEnumerator::SetIndexCandidates(
    const std::vector<StructureKey>& candidates) {
  index_candidates_.clear();
  index_candidates_.reserve(candidates.size());
  for (const StructureKey& key : candidates) {
    CLOUDCACHE_CHECK(key.type == StructureType::kIndex);
    index_candidates_.push_back(registry_->Intern(key));
  }
  ++generation_;  // Every cached plan list is now stale.
}

bool PlanEnumerator::SignatureMatches(const TemplateCacheEntry& entry,
                                      const Query& query) const {
  if (entry.table != query.table) return false;
  if (entry.output_columns != query.output_columns) return false;
  if (entry.predicate_columns.size() != query.predicates.size()) {
    return false;
  }
  for (size_t i = 0; i < query.predicates.size(); ++i) {
    if (entry.predicate_columns[i] != query.predicates[i].column) {
      return false;
    }
  }
  return true;
}

void PlanEnumerator::EmitNodeVariants(const CacheState& cache,
                                      const PlanSpec& spec,
                                      const std::vector<StructureId>& structures,
                                      std::vector<QueryPlan>* out,
                                      size_t* used) const {
  // `structures` must arrive sorted and deduplicated (the callers own the
  // scratch buffer and normalize it once per plan family).
  for (uint32_t nodes : options_.node_options) {
    if (nodes > 1 && !options_.allow_parallel) break;
    QueryPlan& plan = AcquireSlot(out, used, &build_spares_);
    plan.spec = spec;
    plan.spec.cpu_nodes = nodes;
    plan.structures.assign(structures.begin(), structures.end());
    // Extra nodes beyond the always-on one are structures in their own
    // right (BuildN/MaintN apply to them).
    for (uint32_t extra = 0; extra + 1 < nodes; ++extra) {
      plan.structures.push_back(registry_->Intern(CpuNodeKey(extra)));
    }
    plan.missing.clear();
    for (StructureId id : plan.structures) {
      if (!cache.IsResident(id)) plan.missing.push_back(id);
    }
    if (!plan.missing.empty() && !options_.include_hypothetical) {
      --*used;  // Drop the variant; the slot is recycled by the next one.
    }
  }
}

void PlanEnumerator::BuildPlans(const Query& query, const CacheState& cache,
                                std::vector<QueryPlan>* out) const {
  size_t used = 0;

  // 1. The back-end plan: always available, employs no cache structures.
  {
    QueryPlan& plan = AcquireSlot(out, &used, &build_spares_);
    plan.spec.access = PlanSpec::Access::kBackend;
    plan.spec.covered_predicates.clear();
    plan.spec.covering = false;
    plan.spec.cpu_nodes = 1;
    plan.structures.clear();
    plan.missing.clear();
  }

  const std::vector<ColumnId>& accessed = query.AccessedColumns();
  const Catalog& catalog = registry_->catalog();

  // 2. Column-scan plan over the accessed columns.
  {
    PlanSpec spec;
    spec.access = PlanSpec::Access::kCacheScan;
    structures_scratch_.clear();
    for (ColumnId col : accessed) {
      structures_scratch_.push_back(registry_->Intern(ColumnKey(catalog, col)));
    }
    NormalizeStructures(&structures_scratch_);
    EmitNodeVariants(cache, spec, structures_scratch_, out, &used);
  }

  // 3. Index plans from the candidate pool.
  if (options_.allow_indexes) {
    for (StructureId index_id : index_candidates_) {
      const StructureKey& key = registry_->key(index_id);
      if (key.table != query.table) continue;

      // The probe covers the maximal prefix of key columns that carry
      // predicates of this query; an index whose leading column has no
      // predicate cannot be probed.
      PlanSpec spec;
      spec.access = PlanSpec::Access::kCacheIndex;
      for (ColumnId key_col : key.columns) {
        bool found = false;
        for (size_t pos = 0; pos < query.predicates.size(); ++pos) {
          if (query.predicates[pos].column == key_col) {
            spec.covered_predicates.push_back(pos);
            found = true;
            break;
          }
        }
        if (!found) break;
      }
      if (spec.covered_predicates.empty()) continue;

      spec.covering = std::all_of(
          accessed.begin(), accessed.end(), [&](ColumnId col) {
            return std::find(key.columns.begin(), key.columns.end(), col) !=
                   key.columns.end();
          });

      structures_scratch_.clear();
      structures_scratch_.push_back(index_id);
      if (!spec.covering) {
        // Row fetches read every accessed column absent from the index
        // key from the cached base columns.
        for (ColumnId col : accessed) {
          if (std::find(key.columns.begin(), key.columns.end(), col) ==
              key.columns.end()) {
            structures_scratch_.push_back(
                registry_->Intern(ColumnKey(catalog, col)));
          }
        }
      }
      NormalizeStructures(&structures_scratch_);
      EmitNodeVariants(cache, spec, structures_scratch_, out, &used);
    }
  }
  ReleaseSurplus(out, used, &build_spares_);
}

PlanSet* PlanEnumerator::EnumerateShared(const Query& query,
                                         const CacheState& cache) const {
  PlanSet* set;
  if (!options_.enable_plan_cache || query.template_id < 0) {
    BuildPlans(query, cache, &adhoc_plans_.plans);
    set = &adhoc_plans_;
  } else {
    TemplateCacheEntry& entry = template_cache_[query.template_id];
    if (entry.valid && entry.cache == &cache &&
        entry.epoch == cache.epoch() && entry.generation == generation_ &&
        SignatureMatches(entry, query)) {
      ++cache_hits_;
    } else {
      ++cache_misses_;
      BuildPlans(query, cache, &entry.plans.plans);
      entry.cache = &cache;
      entry.epoch = cache.epoch();
      entry.generation = generation_;
      entry.valid = true;
      entry.table = query.table;
      entry.output_columns = query.output_columns;
      entry.predicate_columns.clear();
      for (const Predicate& p : query.predicates) {
        entry.predicate_columns.push_back(p.column);
      }
    }
    set = &entry.plans;
  }

  // Price the cached plans for this query instance, in place. Estimates
  // depend on the instance's selectivities and result shape, so they are
  // never cached — but plans arrive grouped by family, so the batch
  // estimator shares the access-path computation across each family's
  // node variants. The structure-dependent fields are untouched: on a
  // cache hit this loop is the ONLY per-query work.
  batch_.Reset(query);
  for (QueryPlan& plan : set->plans) {
    plan.carried_charges = Money();
    plan.execution = batch_.Estimate(plan.spec);
  }
  return set;
}

void PlanEnumerator::Enumerate(const Query& query, const CacheState& cache,
                               PlanSet* out) const {
  const PlanSet* shared = EnumerateShared(query, cache);
  size_t used = 0;
  for (const QueryPlan& plan : shared->plans) {
    AcquireSlot(&out->plans, &used, &plan_spares_) = plan;
  }
  ReleaseSurplus(&out->plans, used, &plan_spares_);
}

PlanSet PlanEnumerator::Enumerate(const Query& query,
                                  const CacheState& cache) const {
  PlanSet set;
  Enumerate(query, cache, &set);
  return set;
}

}  // namespace cloudcache
