#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/catalog/schema.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace cloudcache {

/// A selection predicate of a query, reduced to what the cost model and
/// index advisor need: which column it constrains, how selective it is, and
/// whether it is an equality (point) predicate — equality and narrow range
/// predicates are what indexes accelerate.
struct Predicate {
  ColumnId column = 0;
  /// Fraction of the table's rows that satisfy the predicate, in (0, 1].
  double selectivity = 1.0;
  /// True for point/equality predicates; false for range predicates.
  bool equality = false;
  /// True if backend data is physically clustered on this column, letting a
  /// scan skip to the matching region (see PredicateSpec::clustered).
  bool clustered = false;
};

/// A user query, reduced to its resource profile.
///
/// The paper's cost model (Section V-B) needs only the optimizer-reported
/// totals of a plan — CPU work `qtot`, I/O volume `iotot`, and result size
/// `S(Q)` — not SQL. A Query therefore carries the logical facts those
/// totals are derived from: the driving table, the columns it touches, its
/// predicates, and its result shape. Join templates are folded onto the
/// driving (largest) table with their cost reflected in `cpu_multiplier`.
struct Query {
  /// Monotonically increasing id assigned by the workload generator.
  uint64_t id = 0;
  /// Which of the workload's templates produced this query (-1 for ad hoc).
  int template_id = -1;
  /// The driving table.
  TableId table = 0;
  /// Columns the query must read that are returned to the user.
  std::vector<ColumnId> output_columns;
  /// Selection predicates (their columns must also be readable).
  std::vector<Predicate> predicates;
  /// Relative CPU cost per scanned row vs a plain scan; >= 1. Encodes
  /// folded join/aggregation work of the template.
  double cpu_multiplier = 1.0;
  /// Fraction of the execution that parallelizes across CPU nodes
  /// (Amdahl); scientific scan/aggregate queries are close to 1.
  double parallel_fraction = 0.9;
  /// Rows surviving all predicates.
  uint64_t result_rows = 0;
  /// Result size S(Q) in bytes, shipped to the user (and, for back-end
  /// execution, across the wide-area network to the cache).
  uint64_t result_bytes = 0;
  /// Arrival time in simulation seconds.
  SimTime arrival_time = 0;
  /// Which query stream issued this query (multi-tenant simulation).
  /// Single-stream runs leave the default: tenant 0 is the classic single
  /// user of the paper's evaluation.
  uint32_t tenant_id = 0;

  /// Product of predicate selectivities (independence assumption), the
  /// fraction of the table scanned output must consider.
  double CombinedSelectivity() const;

  /// Output and predicate columns, deduplicated, in ascending ColumnId
  /// order. These are the columns a cache-resident plan needs.
  ///
  /// Memoized: the set is derived once (the workload generator does it at
  /// instantiation) and the same vector is handed to the enumerator, the
  /// cost model, and the simulator's metered re-pricing — the hot path
  /// calls this several times per plan per query. The memo revalidates
  /// against a fingerprint of the output and predicate column ids, so any
  /// later mutation of those fields (incremental construction in tests,
  /// in-place column swaps) recomputes instead of serving a stale set.
  const std::vector<ColumnId>& AccessedColumns() const;

  /// Bytes of the accessed columns that a full column scan reads.
  uint64_t ScanBytes(const Catalog& catalog) const;

  /// Validates internal consistency against `catalog`: columns belong to
  /// `table`, selectivities in (0,1], result within table bounds.
  Status Validate(const Catalog& catalog) const;

 private:
  /// FNV-1a fingerprint of (output_columns, predicates' columns) — the
  /// exact inputs AccessedColumns derives from.
  uint64_t ColumnFingerprint() const;

  /// AccessedColumns memo plus the fingerprint it was computed at (its
  /// staleness check). Mutable so the lazily-filled memo keeps the
  /// accessor const; queries are confined to one simulation thread, so no
  /// synchronization is needed.
  mutable std::vector<ColumnId> accessed_memo_;
  mutable uint64_t memo_fingerprint_ = 0;
};

/// Recomputes result_rows/result_bytes from the predicates and output
/// columns. `row_limit_fraction` further scales the result (for templates
/// with aggregation that collapses rows).
void DeriveResultShape(const Catalog& catalog, double row_limit_fraction,
                       Query* query);

}  // namespace cloudcache
