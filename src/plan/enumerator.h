#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/cache/cache_state.h"
#include "src/cost/cost_model.h"
#include "src/plan/plan.h"
#include "src/query/query.h"
#include "src/structure/structure.h"

namespace cloudcache {

/// Knobs restricting the plan space; the scheme variants of Section VII-A
/// are expressed through these (econ-col disables indexes and parallelism).
struct EnumeratorOptions {
  bool allow_indexes = true;
  bool allow_parallel = true;
  /// Node counts tried for cache plans; must contain 1.
  std::vector<uint32_t> node_options = {1, 2, 3, 4};
  /// Whether to emit hypothetical (PQpos) plans at all; the bypass-yield
  /// baseline has no regret machinery and turns this off.
  bool include_hypothetical = true;
  /// Kill switch for the per-template plan-skeleton cache. The cache is
  /// semantically invisible (skeletons are invalidated on every residency
  /// epoch or candidate-generation change, and execution estimates are
  /// always recomputed per query); disabling it exists for A/B perf
  /// measurement and for the bit-identical-metrics regression test.
  bool enable_plan_cache = true;
};

/// The structure-dependent part of a candidate plan: everything Enumerate
/// derives that does NOT depend on the query instance's selectivities —
/// the spec shape, the employed structures, and which of them are absent.
/// Skeletons of one template are identical across its query instances, so
/// they are cached per template and only re-derived when cache residency
/// (CacheState::epoch) or the candidate pool (candidate_generation) moves.
struct PlanSkeleton {
  PlanSpec spec;
  std::vector<StructureId> structures;
  std::vector<StructureId> missing;
};

/// Enumerates the candidate plan set PQ for a query (Section IV-B):
///
///  * the back-end plan (always exists, uses no cache structures),
///  * a cache column-scan plan over the accessed columns,
///  * one cache index plan per applicable candidate index (an index
///    applies when its leading key column carries one of the query's
///    predicates; the probe covers the maximal key prefix of predicate
///    columns, and the plan is covering if the key contains every accessed
///    column),
///  * each of the above at every allowed CPU-node count.
///
/// Structures already resident make a plan executable (PQexist); plans
/// referencing unbuilt structures are emitted as hypothetical (PQpos) when
/// include_hypothetical is set. The returned set is NOT skyline-filtered:
/// the economy first adds carried charges (Ca, owed maintenance), then
/// applies SkylineFilter.
///
/// Hot path: queries of the same template share their plan skeletons, so
/// Enumerate is usually a cache hit that only re-runs
/// CostModel::EstimateExecution (per-instance selectivities) on the cached
/// skeletons. An entry is keyed by Query::template_id and revalidated
/// against (CacheState::epoch, candidate generation, the query's column
/// signature); ad hoc queries (template_id < 0) always take the
/// derive-from-scratch path.
class PlanEnumerator {
 public:
  PlanEnumerator(const CostModel* model, StructureRegistry* registry,
                 EnumeratorOptions options);

  /// Registers the advisor's index candidate pool (interning the keys).
  /// Bumps the candidate generation, invalidating all cached skeletons.
  void SetIndexCandidates(const std::vector<StructureKey>& candidates);

  /// The interned candidate index ids.
  const std::vector<StructureId>& index_candidates() const {
    return index_candidates_;
  }

  /// Enumerates plans for `query` against the current cache contents.
  PlanSet Enumerate(const Query& query, const CacheState& cache) const;

  /// Buffer-reusing variant: fills `out` (clearing previous contents but
  /// recycling its plan slots and their inner vectors), so steady-state
  /// enumeration allocates nothing. `out` must not alias internal state.
  void Enumerate(const Query& query, const CacheState& cache,
                 PlanSet* out) const;

  const EnumeratorOptions& options() const { return options_; }

  /// Monotonic counter bumped by SetIndexCandidates; part of the skeleton
  /// cache key.
  uint64_t candidate_generation() const { return generation_; }

  /// Skeleton-cache observability (for tests and benchmarks).
  uint64_t plan_cache_hits() const { return cache_hits_; }
  uint64_t plan_cache_misses() const { return cache_misses_; }
  size_t plan_cache_size() const { return template_cache_.size(); }

 private:
  struct TemplateCacheEntry {
    /// Identity of the CacheState the skeletons were derived against —
    /// epochs of two different caches are not comparable, so a caller
    /// alternating caches (A/B harnesses) must miss, not collide.
    const CacheState* cache = nullptr;
    uint64_t epoch = 0;
    uint64_t generation = 0;
    bool valid = false;
    /// Structural signature of the query the skeletons were derived from;
    /// a template id must always map to one structure, but trace replay
    /// can in principle reuse ids across shapes, so a mismatch falls back
    /// to re-derivation instead of serving wrong plans.
    TableId table = 0;
    std::vector<ColumnId> output_columns;
    std::vector<ColumnId> predicate_columns;
    std::vector<PlanSkeleton> skeletons;
  };

  /// Derives the full skeleton list for `query` into `out` (slot-reusing).
  void BuildSkeletons(const Query& query, const CacheState& cache,
                      std::vector<PlanSkeleton>* out) const;

  /// Adds per-node-count skeleton variants of a cache plan to `out`.
  void EmitNodeVariants(const CacheState& cache, const PlanSpec& spec,
                        const std::vector<StructureId>& structures,
                        std::vector<PlanSkeleton>* out, size_t* used) const;

  bool SignatureMatches(const TemplateCacheEntry& entry,
                        const Query& query) const;

  const CostModel* model_;
  StructureRegistry* registry_;
  EnumeratorOptions options_;
  std::vector<StructureId> index_candidates_;
  uint64_t generation_ = 0;

  /// Skeleton cache + scratch. Mutable: Enumerate is logically const (the
  /// plan set it returns is a pure function of (query, cache, candidates))
  /// and an enumerator is owned by one single-threaded engine. The spare
  /// pools park surplus output elements when a smaller template follows a
  /// larger one, so mixed-template steady state stays allocation-free.
  mutable std::unordered_map<int, TemplateCacheEntry> template_cache_;
  mutable std::vector<PlanSkeleton> adhoc_skeletons_;
  mutable std::vector<StructureId> structures_scratch_;
  mutable std::vector<PlanSkeleton> skeleton_spares_;
  mutable std::vector<QueryPlan> plan_spares_;
  mutable uint64_t cache_hits_ = 0;
  mutable uint64_t cache_misses_ = 0;
};

}  // namespace cloudcache
