// Quickstart: the economic model in twenty lines of API.
//
// Builds the paper's environment (2.5 TB TPC-H backend, 7 query templates,
// EC2 prices), drives one self-tuned economy for a few thousand queries,
// and prints what the cloud did: how it priced plans, what it invested in,
// and how its credit evolved.
//
//   ./quickstart [queries]

#include <cstdio>
#include <cstdlib>

#include "src/baseline/scheme.h"
#include "src/catalog/tpch.h"
#include "src/query/templates.h"
#include "src/sim/report.h"
#include "src/sim/simulator.h"
#include "src/structure/index_advisor.h"
#include "src/workload/generator.h"

int main(int argc, char** argv) {
  using namespace cloudcache;
  const uint64_t num_queries =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;

  // 1. The back-end database the cloud cache fronts: TPC-H at 2.5 TB.
  const Catalog catalog = MakePaperTpchCatalog();
  std::printf("backend: %zu tables, %.2f TB\n", catalog.num_tables(),
              static_cast<double>(catalog.TotalBytes()) / 1e12);

  // 2. The workload: seven TPC-H-derived templates with drifting, bursty
  //    popularity — a synthetic stand-in for SDSS query logs.
  const std::vector<QueryTemplate> templates = MakeTpchTemplates();
  Result<std::vector<ResolvedTemplate>> resolved =
      ResolveTemplates(catalog, templates);
  if (!resolved.ok()) {
    std::fprintf(stderr, "template resolution failed: %s\n",
                 resolved.status().ToString().c_str());
    return 1;
  }
  WorkloadOptions workload_options;
  workload_options.interarrival_seconds = 10.0;
  WorkloadGenerator workload(&catalog, *resolved, workload_options);

  // 3. The self-tuned economy (econ-cheap variant): prices every candidate
  //    plan at EC2 rates, invests accumulated regret into columns, indexes
  //    and CPU nodes.
  const PriceList prices = PriceList::AmazonEc2_2009();
  const std::vector<StructureKey> indexes =
      RecommendIndexes(catalog, *resolved, 65);
  EconScheme::Config config = EconScheme::EconCheapConfig();
  config.economy.initial_credit = Money::FromDollars(200);
  config.economy.regret_fraction_a = 0.02;
  config.economy.model_build_latency = false;
  EconScheme scheme(&catalog, &prices, indexes, std::move(config));

  // 4. Simulate and meter.
  SimulatorOptions sim_options;
  sim_options.num_queries = num_queries;
  Simulator simulator(&catalog, &scheme, &workload, sim_options);
  const SimMetrics metrics = simulator.Run();

  // 5. Report.
  std::fputs(FormatRunDetail(metrics).c_str(), stdout);

  std::puts("\ncache contents at end of run:");
  const auto& registry = scheme.engine().cache().registry();
  for (StructureId id : scheme.engine().cache().Residents()) {
    std::printf("  %s (%.1f GB)\n",
                registry.key(id).ToString(catalog).c_str(),
                static_cast<double>(registry.bytes(id)) / 1e9);
  }
  return 0;
}
