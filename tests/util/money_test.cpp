#include "src/util/money.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace cloudcache {
namespace {

TEST(MoneyTest, DefaultIsZero) {
  Money m;
  EXPECT_TRUE(m.IsZero());
  EXPECT_EQ(m.micros(), 0);
  EXPECT_FALSE(m.IsPositive());
  EXPECT_FALSE(m.IsNegative());
}

TEST(MoneyTest, FromMicrosRoundTrips) {
  EXPECT_EQ(Money::FromMicros(123456789).micros(), 123456789);
  EXPECT_EQ(Money::FromMicros(-5).micros(), -5);
}

TEST(MoneyTest, FromDollarsRoundsHalfAwayFromZero) {
  EXPECT_EQ(Money::FromDollars(1.0).micros(), 1'000'000);
  EXPECT_EQ(Money::FromDollars(0.0000005).micros(), 1);
  EXPECT_EQ(Money::FromDollars(-0.0000005).micros(), -1);
  EXPECT_EQ(Money::FromDollars(0.00000049).micros(), 0);
}

TEST(MoneyTest, FromCentsExact) {
  EXPECT_EQ(Money::FromCents(12345).micros(), 123'450'000);
}

TEST(MoneyTest, ToDollarsInvertsFromDollars) {
  EXPECT_DOUBLE_EQ(Money::FromDollars(17.25).ToDollars(), 17.25);
}

TEST(MoneyTest, ArithmeticIsExact) {
  const Money a = Money::FromMicros(1);
  Money sum;
  for (int i = 0; i < 1'000'000; ++i) sum += a;
  EXPECT_EQ(sum, Money::FromDollars(1.0));
  sum -= Money::FromDollars(0.5);
  EXPECT_EQ(sum.micros(), 500'000);
}

TEST(MoneyTest, Negation) {
  EXPECT_EQ((-Money::FromDollars(2)).micros(), -2'000'000);
}

TEST(MoneyTest, IntegerScaling) {
  EXPECT_EQ((Money::FromCents(7) * 3).micros(), 210'000);
}

TEST(MoneyTest, DoubleScalingRounds) {
  EXPECT_EQ((Money::FromMicros(10) * 0.15).micros(), 2);  // 1.5 -> 2.
  EXPECT_EQ((Money::FromMicros(10) * 0.14).micros(), 1);
}

TEST(MoneyTest, DivisionTruncatesTowardZero) {
  EXPECT_EQ((Money::FromMicros(7) / 2).micros(), 3);
  EXPECT_EQ((Money::FromMicros(-7) / 2).micros(), -3);
}

TEST(MoneyTest, RatioOfAmounts) {
  EXPECT_DOUBLE_EQ(Money::FromDollars(1).Ratio(Money::FromDollars(4)), 0.25);
}

TEST(MoneyTest, Comparisons) {
  EXPECT_LT(Money::FromDollars(1), Money::FromDollars(2));
  EXPECT_GE(Money::FromDollars(2), Money::FromDollars(2));
  EXPECT_EQ(Money::Max(Money::FromDollars(1), Money::FromDollars(2)),
            Money::FromDollars(2));
  EXPECT_EQ(Money::Min(Money::FromDollars(1), Money::FromDollars(2)),
            Money::FromDollars(1));
}

TEST(MoneyTest, ToStringCents) {
  EXPECT_EQ(Money::FromDollars(12.34).ToString(), "$12.34");
  EXPECT_EQ(Money::FromDollars(-0.5).ToString(), "-$0.50");
}

TEST(MoneyTest, ToStringMicros) {
  EXPECT_EQ(Money::FromMicros(1).ToString(), "$0.000001");
  EXPECT_EQ(Money::FromMicros(-1234567).ToString(), "-$1.234567");
}

TEST(MoneyTest, StreamOperator) {
  std::ostringstream os;
  os << Money::FromCents(150);
  EXPECT_EQ(os.str(), "$1.50");
}

TEST(EvenShareTest, SharesSumToTotalPositive) {
  const Money total = Money::FromMicros(1003);
  Money sum;
  for (int64_t i = 0; i < 10; ++i) sum += EvenShare(total, 10, i);
  EXPECT_EQ(sum, total);
}

TEST(EvenShareTest, SharesSumToTotalNegative) {
  const Money total = Money::FromMicros(-1003);
  Money sum;
  for (int64_t i = 0; i < 10; ++i) sum += EvenShare(total, 10, i);
  EXPECT_EQ(sum, total);
}

TEST(EvenShareTest, LeadingSharesCarryRemainder) {
  const Money total = Money::FromMicros(7);
  EXPECT_EQ(EvenShare(total, 3, 0).micros(), 3);
  EXPECT_EQ(EvenShare(total, 3, 1).micros(), 2);
  EXPECT_EQ(EvenShare(total, 3, 2).micros(), 2);
}

TEST(EvenShareTest, SingleShareIsTotal) {
  EXPECT_EQ(EvenShare(Money::FromDollars(5), 1, 0), Money::FromDollars(5));
}

TEST(EvenShareTest, SharesNeverDifferByMoreThanOneMicro) {
  const Money total = Money::FromMicros(999'999'937);
  int64_t lo = EvenShare(total, 7, 6).micros();
  int64_t hi = EvenShare(total, 7, 0).micros();
  EXPECT_LE(hi - lo, 1);
}

class EvenShareSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(EvenShareSweep, ConservationHoldsForAnyCount) {
  const int64_t count = GetParam();
  const Money total = Money::FromMicros(123'456'789);
  Money sum;
  for (int64_t i = 0; i < count; ++i) sum += EvenShare(total, count, i);
  EXPECT_EQ(sum, total) << "count=" << count;
}

INSTANTIATE_TEST_SUITE_P(Counts, EvenShareSweep,
                         ::testing::Values(1, 2, 3, 7, 10, 97, 1000, 4096));

}  // namespace
}  // namespace cloudcache
