# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/cloudcache_util_tests[1]_include.cmake")
include("/root/repo/build-asan/tests/cloudcache_econ_tests[1]_include.cmake")
include("/root/repo/build-asan/tests/cloudcache_cache_tests[1]_include.cmake")
include("/root/repo/build-asan/tests/cloudcache_cost_tests[1]_include.cmake")
include("/root/repo/build-asan/tests/cloudcache_plan_tests[1]_include.cmake")
include("/root/repo/build-asan/tests/cloudcache_query_tests[1]_include.cmake")
include("/root/repo/build-asan/tests/cloudcache_catalog_tests[1]_include.cmake")
include("/root/repo/build-asan/tests/cloudcache_workload_tests[1]_include.cmake")
include("/root/repo/build-asan/tests/cloudcache_sim_tests[1]_include.cmake")
include("/root/repo/build-asan/tests/cloudcache_baseline_tests[1]_include.cmake")
include("/root/repo/build-asan/tests/cloudcache_structure_tests[1]_include.cmake")
include("/root/repo/build-asan/tests/cloudcache_integration_tests[1]_include.cmake")
