#pragma once

#include <unordered_map>

#include "src/persist/codec.h"
#include "src/structure/structure.h"
#include "src/util/money.h"

namespace cloudcache {

/// Amortization of structure build cost over prospective queries
/// (Eq. 5-7): "the initial building cost of S is amortized equally to the
/// n queries that use S, thus f_S(n, Build_S(S)) = Build_S(S)/n."
///
/// When a structure is built, its cost is split into `horizon` equal
/// shares (exactly, via EvenShare). Every selected plan that employs the
/// structure is charged the next outstanding share — PendingShare() is
/// what plan pricing adds as Ca(S), ChargeShare() consumes it — until all
/// shares are repaid, after which the structure rides free. The horizon n
/// is a policy knob: "Selecting n is a challenging problem in itself …
/// we intend to study this problem in future research" (the A2 ablation
/// sweeps it).
class Amortizer {
 public:
  /// `horizon` = n of Eq. 7; must be >= 1.
  explicit Amortizer(int64_t horizon);

  /// Starts amortizing a freshly built structure. Re-registering an id
  /// restarts its schedule (rebuild after eviction).
  void RegisterBuild(StructureId id, Money build_cost);

  /// The share the next plan employing `id` will be charged; zero once
  /// fully amortized or for unknown structures.
  Money PendingShare(StructureId id) const;

  /// Charges and consumes the next share. Returns the charged amount.
  Money ChargeShare(StructureId id);

  /// Stops amortizing (structure evicted). Returns the unrecovered
  /// remainder — the sunk cost the cloud failed to repay itself.
  Money Cancel(StructureId id);

  /// Outstanding unamortized remainder of `id`.
  Money Unamortized(StructureId id) const;

  int64_t horizon() const { return horizon_; }

  /// Checkpoint support: schedules saved sorted by id (the map itself has
  /// no deterministic order). The horizon is configuration.
  void SaveState(persist::Encoder* enc) const;
  Status RestoreState(persist::Decoder* dec);

 private:
  struct Schedule {
    Money build_cost;
    int64_t shares_charged = 0;
  };

  int64_t horizon_;
  std::unordered_map<StructureId, Schedule> schedules_;
};

}  // namespace cloudcache
