// Crash-injection harness: kill a run mid-flight (no finalization, no
// snapshot at the crash point), restore from the last periodic checkpoint,
// continue — and pin that save → load → continue is bit-identical to the
// uninterrupted run, across every scheme, the multi-tenant merge, and the
// elastic cluster under both the serial and the windowed parallel driver.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/catalog/tpch.h"
#include "src/sim/experiment.h"
#include "tests/testing/metrics_equal.h"

namespace cloudcache {
namespace {

using testing::ExpectBitIdenticalCluster;
using testing::ExpectBitIdenticalMetrics;
using testing::ExpectBitIdenticalTenants;

class CrashRecoveryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog(MakeTpchCatalog(20.0));
    templates_ = new std::vector<QueryTemplate>(MakeTpchTemplates());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    delete templates_;
  }

  ExperimentConfig BaseConfig(SchemeKind scheme, uint64_t queries) const {
    ExperimentConfig config;
    config.scheme = scheme;
    config.sim.num_queries = queries;
    config.workload.seed = 13;
    return config;
  }

  std::string SnapPath(const std::string& name) const {
    return ::testing::TempDir() + name + ".snap";
  }

  /// The harness proper: run uninterrupted; run again with periodic
  /// checkpoints and a crash at `crash_after` (must stop with
  /// kResourceExhausted); restore hard from the surviving snapshot and
  /// finish; return the resumed metrics after asserting the crash fired.
  SimMetrics CrashAndRecover(ExperimentConfig config, uint64_t every,
                             uint64_t crash_after,
                             const std::string& path) const {
    config.sim.checkpoint.every = every;
    config.sim.checkpoint.path = path;
    config.sim.checkpoint.crash_after = crash_after;
    Result<SimMetrics> crashed =
        RunExperimentChecked(*catalog_, *templates_, config);
    EXPECT_FALSE(crashed.ok());
    EXPECT_EQ(crashed.status().code(), StatusCode::kResourceExhausted)
        << crashed.status().ToString();

    config.sim.checkpoint.crash_after = 0;
    config.sim.checkpoint.restore = CheckpointOptions::Restore::kHard;
    Result<SimMetrics> resumed =
        RunExperimentChecked(*catalog_, *templates_, config);
    EXPECT_TRUE(resumed.ok()) << resumed.status().ToString();
    return resumed.ok() ? std::move(resumed).value() : SimMetrics{};
  }

  static Catalog* catalog_;
  static std::vector<QueryTemplate>* templates_;
};

Catalog* CrashRecoveryTest::catalog_ = nullptr;
std::vector<QueryTemplate>* CrashRecoveryTest::templates_ = nullptr;

TEST_F(CrashRecoveryTest, EverySchemeResumesBitIdentically) {
  for (SchemeKind scheme : PaperSchemes()) {
    const ExperimentConfig config = BaseConfig(scheme, 800);
    const SimMetrics plain =
        RunExperiment(*catalog_, *templates_, config);
    // Crash off a checkpoint boundary: queries 251..430 replay on resume.
    const SimMetrics resumed = CrashAndRecover(
        config, /*every=*/250, /*crash_after=*/430,
        SnapPath(std::string("scheme_") + SchemeKindToString(scheme)));
    ExpectBitIdenticalMetrics(plain, resumed);
    ExpectBitIdenticalTenants(plain, resumed);
    ExpectBitIdenticalCluster(plain, resumed);
  }
}

TEST_F(CrashRecoveryTest, MultiTenantEconomyResumesBitIdentically) {
  for (SchemeKind scheme :
       {SchemeKind::kEconCheap, SchemeKind::kBypassYield}) {
    ExperimentConfig config = BaseConfig(scheme, 700);
    config.tenancy.tenants = 3;
    config.tenancy.traffic_skew = 1.0;
    config.tenancy.fair_eviction = true;
    config.tenancy.admission = true;
    TenantBudgetShape cheap;
    cheap.tenant = 1;
    cheap.price_scale = 0.5;
    TenantBudgetShape rich;
    rich.tenant = 2;
    rich.price_scale = 2.0;
    rich.tmax_scale = 1.5;
    config.tenancy.tenant_budgets = {cheap, rich};
    const SimMetrics plain =
        RunExperiment(*catalog_, *templates_, config);
    // Crash exactly on a checkpoint boundary: the snapshot at 400 is
    // written first, then the crash fires — resume replays 401..700.
    const SimMetrics resumed = CrashAndRecover(
        config, /*every=*/200, /*crash_after=*/400,
        SnapPath(std::string("tenants_") + SchemeKindToString(scheme)));
    ExpectBitIdenticalMetrics(plain, resumed);
    ASSERT_EQ(resumed.tenants.size(), 3u);
    ExpectBitIdenticalTenants(plain, resumed);
  }
}

TEST_F(CrashRecoveryTest, ElasticClusterResumesBitIdentically) {
  // Serial classic driver over a clustered scheme (threads = 0).
  ExperimentConfig config = BaseConfig(SchemeKind::kEconCheap, 900);
  config.cluster.nodes = 2;
  config.cluster.elastic = true;
  config.cluster.elasticity.check_interval_queries = 300;
  const SimMetrics plain = RunExperiment(*catalog_, *templates_, config);
  const SimMetrics resumed = CrashAndRecover(
      config, /*every=*/250, /*crash_after=*/600, SnapPath("cluster_serial"));
  ExpectBitIdenticalMetrics(plain, resumed);
  ASSERT_TRUE(resumed.cluster.active);
  ExpectBitIdenticalCluster(plain, resumed);
}

TEST_F(CrashRecoveryTest, WindowedParallelDriverResumesAcrossThreadCounts) {
  // Windowed driver: snapshots land at window closes; a checkpoint taken
  // under one worker count must restore under another (worker count never
  // reaches the bits — the driver's core determinism pin).
  ExperimentConfig config = BaseConfig(SchemeKind::kEconCheap, 1500);
  config.cluster.nodes = 2;
  config.cluster.elastic = true;
  config.cluster.elasticity.check_interval_queries = 300;
  config.sim.parallel_threads = 2;
  const SimMetrics plain = RunExperiment(*catalog_, *templates_, config);

  const std::string path = SnapPath("cluster_windowed");
  ExperimentConfig crash = config;
  crash.sim.checkpoint.every = 400;
  crash.sim.checkpoint.path = path;
  crash.sim.checkpoint.crash_after = 700;
  Result<SimMetrics> crashed =
      RunExperimentChecked(*catalog_, *templates_, crash);
  ASSERT_FALSE(crashed.ok());
  ASSERT_EQ(crashed.status().code(), StatusCode::kResourceExhausted);

  ExperimentConfig resume = config;
  resume.sim.checkpoint.path = path;
  resume.sim.checkpoint.restore = CheckpointOptions::Restore::kHard;
  resume.sim.parallel_threads = 3;  // Different worker count than the save.
  Result<SimMetrics> resumed =
      RunExperimentChecked(*catalog_, *templates_, resume);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectBitIdenticalMetrics(plain, *resumed);
  ASSERT_TRUE(resumed->cluster.active);
  ExpectBitIdenticalCluster(plain, *resumed);
}

TEST_F(CrashRecoveryTest, PeriodicCheckpointsDoNotPerturbTheRun) {
  // Writing snapshots must be invisible to the economy: a checkpointed
  // run that never crashes equals the plain run bit for bit.
  const ExperimentConfig config = BaseConfig(SchemeKind::kEconFast, 600);
  const SimMetrics plain = RunExperiment(*catalog_, *templates_, config);
  ExperimentConfig checkpointed = config;
  checkpointed.sim.checkpoint.every = 100;
  checkpointed.sim.checkpoint.path = SnapPath("no_perturb");
  Result<SimMetrics> result =
      RunExperimentChecked(*catalog_, *templates_, checkpointed);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectBitIdenticalMetrics(plain, *result);
}

TEST_F(CrashRecoveryTest, CheckedRunnerWithoutCheckpointingIsRunExperiment) {
  const ExperimentConfig config = BaseConfig(SchemeKind::kEconCol, 500);
  Result<SimMetrics> checked =
      RunExperimentChecked(*catalog_, *templates_, config);
  ASSERT_TRUE(checked.ok());
  const SimMetrics plain = RunExperiment(*catalog_, *templates_, config);
  ExpectBitIdenticalMetrics(plain, *checked);
}

TEST_F(CrashRecoveryTest, AutoRestoreFallsBackToFreshOnMissingSnapshot) {
  const ExperimentConfig config = BaseConfig(SchemeKind::kEconCheap, 500);
  const SimMetrics plain = RunExperiment(*catalog_, *templates_, config);
  ExperimentConfig auto_config = config;
  auto_config.sim.checkpoint.path = SnapPath("never_written");
  auto_config.sim.checkpoint.restore = CheckpointOptions::Restore::kAuto;
  Result<SimMetrics> fresh =
      RunExperimentChecked(*catalog_, *templates_, auto_config);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  ExpectBitIdenticalMetrics(plain, *fresh);
}

TEST_F(CrashRecoveryTest, HardRestoreRejectsMismatchedConfiguration) {
  // Snapshot a single-tenant run, then ask a 3-tenant run to restore it:
  // the config hash must refuse before any state is touched.
  ExperimentConfig config = BaseConfig(SchemeKind::kEconCheap, 600);
  config.sim.checkpoint.every = 200;
  config.sim.checkpoint.path = SnapPath("mismatch");
  Result<SimMetrics> saved =
      RunExperimentChecked(*catalog_, *templates_, config);
  ASSERT_TRUE(saved.ok());

  ExperimentConfig other = config;
  other.tenancy.tenants = 3;
  other.sim.checkpoint.every = 0;
  other.sim.checkpoint.restore = CheckpointOptions::Restore::kHard;
  Result<SimMetrics> resumed =
      RunExperimentChecked(*catalog_, *templates_, other);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kFailedPrecondition);

  // The same mismatch under kAuto falls back to a fresh (3-tenant) run.
  other.sim.checkpoint.restore = CheckpointOptions::Restore::kAuto;
  Result<SimMetrics> fresh =
      RunExperimentChecked(*catalog_, *templates_, other);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  ExperimentConfig plain_config = other;
  plain_config.sim.checkpoint = CheckpointOptions{};
  const SimMetrics plain =
      RunExperiment(*catalog_, *templates_, plain_config);
  ExpectBitIdenticalMetrics(plain, *fresh);
  ExpectBitIdenticalTenants(plain, *fresh);
}

}  // namespace
}  // namespace cloudcache
