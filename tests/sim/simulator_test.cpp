#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "src/baseline/bypass_yield.h"
#include "tests/testing/fixtures.h"

namespace cloudcache {
namespace {

/// One template over the tiny catalog's fact table: result-heavy clustered
/// scan, so caching pays off quickly.
std::vector<QueryTemplate> TinyTemplates() {
  return {{
      .name = "fact_scan",
      .table = "fact",
      .output_columns = {"f_key", "f_value"},
      .predicates = {{"f_date", 0.1, 0.3, false, true},
                     {"f_value", 0.4, 0.6, false, false}},
      .row_limit_fraction = 1.0,
      .cpu_multiplier = 1.0,
      .parallel_fraction = 0.9,
  }};
}

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest()
      : catalog_(testing::MakeTinyCatalog()),
        prices_(testing::MakeRoundPrices()) {
    Result<std::vector<ResolvedTemplate>> resolved =
        ResolveTemplates(catalog_, TinyTemplates());
    CLOUDCACHE_CHECK(resolved.ok());
    templates_ = *resolved;
  }

  WorkloadOptions DefaultWorkload() {
    WorkloadOptions options;
    options.interarrival_seconds = 10.0;
    return options;
  }

  SimulatorOptions DefaultSim(uint64_t queries = 500) {
    SimulatorOptions options;
    options.num_queries = queries;
    options.metered_prices = prices_;
    return options;
  }

  Catalog catalog_;
  PriceList prices_;
  std::vector<ResolvedTemplate> templates_;
};

TEST_F(SimulatorTest, RunsRequestedQueryCount) {
  BypassYieldScheme::Options bypass_options;
    bypass_options.cache_fraction = 0.9;  // Fit all three hot columns.
    BypassYieldScheme scheme(&catalog_, bypass_options);
  WorkloadGenerator workload(&catalog_, templates_, DefaultWorkload());
  Simulator sim(&catalog_, &scheme, &workload, DefaultSim(123));
  const SimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.queries, 123u);
  EXPECT_EQ(metrics.served, 123u);  // Bypass serves everything.
  EXPECT_EQ(metrics.scheme_name, "bypass");
}

TEST_F(SimulatorTest, BackendPlusCacheEqualsServed) {
  BypassYieldScheme::Options bypass_options;
    bypass_options.cache_fraction = 0.9;  // Fit all three hot columns.
    BypassYieldScheme scheme(&catalog_, bypass_options);
  WorkloadGenerator workload(&catalog_, templates_, DefaultWorkload());
  Simulator sim(&catalog_, &scheme, &workload, DefaultSim());
  const SimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.served_in_backend + metrics.served_in_cache,
            metrics.served);
  EXPECT_GT(metrics.served_in_cache, 0u);  // The column loads eventually.
}

TEST_F(SimulatorTest, OperatingCostAccumulates) {
  BypassYieldScheme::Options bypass_options;
    bypass_options.cache_fraction = 0.9;  // Fit all three hot columns.
    BypassYieldScheme scheme(&catalog_, bypass_options);
  WorkloadGenerator workload(&catalog_, templates_, DefaultWorkload());
  Simulator sim(&catalog_, &scheme, &workload, DefaultSim());
  const SimMetrics metrics = sim.Run();
  EXPECT_GT(metrics.operating_cost.Total(), 0.0);
  EXPECT_GT(metrics.operating_cost.network_dollars, 0.0);
  // Bypass caches columns -> disk rent is metered even though the scheme's
  // own cost model prices disk at zero.
  EXPECT_GT(metrics.operating_cost.disk_dollars, 0.0);
}

TEST_F(SimulatorTest, ResponseTimeStatsPopulated) {
  BypassYieldScheme::Options bypass_options;
    bypass_options.cache_fraction = 0.9;  // Fit all three hot columns.
    BypassYieldScheme scheme(&catalog_, bypass_options);
  WorkloadGenerator workload(&catalog_, templates_, DefaultWorkload());
  Simulator sim(&catalog_, &scheme, &workload, DefaultSim());
  const SimMetrics metrics = sim.Run();
  EXPECT_GT(metrics.MeanResponse(), 0.0);
  EXPECT_GE(metrics.response_hist.Quantile(0.95),
            metrics.response_hist.Quantile(0.5));
  EXPECT_EQ(metrics.response_seconds.count(),
            static_cast<int64_t>(metrics.served));
}

TEST_F(SimulatorTest, TimelinesRecorded) {
  BypassYieldScheme::Options bypass_options;
    bypass_options.cache_fraction = 0.9;  // Fit all three hot columns.
    BypassYieldScheme scheme(&catalog_, bypass_options);
  WorkloadGenerator workload(&catalog_, templates_, DefaultWorkload());
  SimulatorOptions options = DefaultSim();
  options.timeline_stride = 100;
  Simulator sim(&catalog_, &scheme, &workload, options);
  const SimMetrics metrics = sim.Run();
  EXPECT_GE(metrics.cost_over_time.size(), 5u);
  // Cumulative cost is non-decreasing.
  double last = -1;
  for (double v : metrics.cost_over_time.values()) {
    EXPECT_GE(v, last);
    last = v;
  }
}

TEST_F(SimulatorTest, EconSchemeMetricsComplete) {
  EconScheme::Config config = EconScheme::EconCheapConfig();
  config.economy.initial_credit = Money::FromDollars(5);
  config.economy.conservative_provider = false;
  config.economy.model_build_latency = false;
  config.economy.amortization_horizon = 100;
  config.economy.regret_fraction_a = 0.01;
  EconScheme scheme(&catalog_, &prices_, {}, std::move(config));
  WorkloadGenerator workload(&catalog_, templates_, DefaultWorkload());
  Simulator sim(&catalog_, &scheme, &workload, DefaultSim(1000));
  const SimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.queries, 1000u);
  EXPECT_GT(metrics.revenue.micros(), 0);
  EXPECT_EQ(metrics.case_a + metrics.case_b + metrics.case_c, 1000u);
  EXPECT_EQ(metrics.final_credit, scheme.credit());
}

TEST_F(SimulatorTest, DeterministicEndToEnd) {
  auto run = [&]() {
    BypassYieldScheme::Options bypass_options;
    bypass_options.cache_fraction = 0.9;  // Fit all three hot columns.
    BypassYieldScheme scheme(&catalog_, bypass_options);
    WorkloadGenerator workload(&catalog_, templates_, DefaultWorkload());
    Simulator sim(&catalog_, &scheme, &workload, DefaultSim());
    const SimMetrics metrics = sim.Run();
    return std::make_pair(metrics.operating_cost.Total(),
                          metrics.MeanResponse());
  };
  EXPECT_EQ(run(), run());
}

/// Wraps a scheme and records (tenant_id, arrival_time) of every query it
/// is asked to serve — the observable merge order of the multi-tenant
/// event loop.
class RecordingScheme : public Scheme {
 public:
  explicit RecordingScheme(Scheme* inner) : inner_(inner) {}

  const std::string& name() const override { return inner_->name(); }
  ServedQuery OnQuery(const Query& query, SimTime now) override {
    order_.push_back({query.tenant_id, query.arrival_time});
    return inner_->OnQuery(query, now);
  }
  const CacheState& cache() const override { return inner_->cache(); }
  Money credit() const override { return inner_->credit(); }
  void ChargeExpenditure(Money amount, SimTime now) override {
    inner_->ChargeExpenditure(amount, now);
  }

  const std::vector<std::pair<uint32_t, SimTime>>& order() const {
    return order_;
  }

 private:
  Scheme* inner_;
  std::vector<std::pair<uint32_t, SimTime>> order_;
};

TEST_F(SimulatorTest, MultiTenantProcessesRequestedTotal) {
  BypassYieldScheme::Options bypass_options;
  bypass_options.cache_fraction = 0.9;
  BypassYieldScheme scheme(&catalog_, bypass_options);

  WorkloadOptions fast = DefaultWorkload();
  fast.tenant_id = 0;
  fast.interarrival_seconds = 5.0;
  WorkloadOptions slow = DefaultWorkload();
  slow.tenant_id = 1;
  slow.seed = 43;
  slow.interarrival_seconds = 20.0;
  WorkloadGenerator tenant0(&catalog_, templates_, fast);
  WorkloadGenerator tenant1(&catalog_, templates_, slow);

  Simulator sim(&catalog_, &scheme, {&tenant0, &tenant1}, DefaultSim(500));
  const SimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.queries, 500u);
  ASSERT_EQ(metrics.tenants.size(), 2u);
  EXPECT_EQ(metrics.tenants[0].queries + metrics.tenants[1].queries, 500u);
  // 4x the arrival rate -> roughly 4x the merged share.
  EXPECT_GT(metrics.tenants[0].queries, 3 * metrics.tenants[1].queries);
  EXPECT_GT(metrics.tenants[1].queries, 0u);
}

TEST_F(SimulatorTest, MultiTenantMergeIsTimestampOrderWithTenantTieBreak) {
  BypassYieldScheme::Options bypass_options;
  bypass_options.cache_fraction = 0.9;
  BypassYieldScheme inner(&catalog_, bypass_options);
  RecordingScheme scheme(&inner);

  // Fixed arrivals every 6s and 4s from t=0: ties at t=0, 12, 24, ...
  WorkloadOptions a = DefaultWorkload();
  a.tenant_id = 0;
  a.interarrival_seconds = 6.0;
  WorkloadOptions b = DefaultWorkload();
  b.tenant_id = 1;
  b.seed = 43;
  b.interarrival_seconds = 4.0;
  WorkloadGenerator tenant0(&catalog_, templates_, a);
  WorkloadGenerator tenant1(&catalog_, templates_, b);

  Simulator sim(&catalog_, &scheme, {&tenant0, &tenant1}, DefaultSim(200));
  sim.Run();

  // Reference: the same two fixed schedules, stably merged by
  // (time, tenant).
  std::vector<std::pair<uint32_t, SimTime>> reference;
  const auto& order = scheme.order();
  {
    std::vector<std::pair<SimTime, uint32_t>> events;
    size_t count0 = 0, count1 = 0;
    for (const auto& entry : order) {
      (entry.first == 0 ? count0 : count1)++;
    }
    for (size_t i = 0; i < count0; ++i) {
      events.push_back({static_cast<SimTime>(i) * 6.0, 0});
    }
    for (size_t i = 0; i < count1; ++i) {
      events.push_back({static_cast<SimTime>(i) * 4.0, 1});
    }
    std::sort(events.begin(), events.end());
    for (const auto& [time, tenant] : events) {
      reference.push_back({tenant, time});
    }
  }
  EXPECT_EQ(order, reference);
}

TEST_F(SimulatorTest, MultiTenantSliceMatchesDedicatedRuns) {
  // Tenant slices carry real per-stream accounting: each slice's served
  // count equals its queries for bypass (everything is served), and the
  // response stats come from that tenant's queries only.
  BypassYieldScheme::Options bypass_options;
  bypass_options.cache_fraction = 0.9;
  BypassYieldScheme scheme(&catalog_, bypass_options);

  WorkloadOptions a = DefaultWorkload();
  a.tenant_id = 0;
  WorkloadOptions b = DefaultWorkload();
  b.tenant_id = 1;
  b.seed = 99;
  WorkloadGenerator tenant0(&catalog_, templates_, a);
  WorkloadGenerator tenant1(&catalog_, templates_, b);

  Simulator sim(&catalog_, &scheme, {&tenant0, &tenant1}, DefaultSim(400));
  const SimMetrics metrics = sim.Run();
  ASSERT_EQ(metrics.tenants.size(), 2u);
  for (const TenantMetrics& tenant : metrics.tenants) {
    EXPECT_EQ(tenant.served, tenant.queries);
    EXPECT_EQ(tenant.response_seconds.count(),
              static_cast<int64_t>(tenant.served));
    EXPECT_GT(tenant.operating_cost.Total(), 0.0);
    EXPECT_EQ(tenant.operating_cost.disk_dollars, 0.0);  // Rent is shared.
  }
  EXPECT_EQ(metrics.tenants[0].queries + metrics.tenants[1].queries,
            metrics.queries);
}

TEST_F(SimulatorTest, LongerIntervalsCostMoreDiskRent) {
  auto disk_cost = [&](double interval) {
    BypassYieldScheme::Options bypass_options;
    bypass_options.cache_fraction = 0.9;  // Fit all three hot columns.
    BypassYieldScheme scheme(&catalog_, bypass_options);
    WorkloadOptions wl = DefaultWorkload();
    wl.interarrival_seconds = interval;
    WorkloadGenerator workload(&catalog_, templates_, wl);
    Simulator sim(&catalog_, &scheme, &workload, DefaultSim());
    return sim.Run().operating_cost.disk_dollars;
  };
  // Same query stream stretched over more wall-clock: strictly more rent.
  EXPECT_GT(disk_cost(60.0), disk_cost(1.0));
}

/// Wraps a scheme and sums every metered charge booked against it.
class ChargeSumScheme : public Scheme {
 public:
  explicit ChargeSumScheme(Scheme* inner) : inner_(inner) {}

  const std::string& name() const override { return inner_->name(); }
  ServedQuery OnQuery(const Query& query, SimTime now) override {
    return inner_->OnQuery(query, now);
  }
  const CacheState& cache() const override { return inner_->cache(); }
  Money credit() const override { return inner_->credit(); }
  void ChargeExpenditure(Money amount, SimTime now) override {
    charged_ += amount;
    inner_->ChargeExpenditure(amount, now);
  }

  Money charged() const { return charged_; }

 private:
  Scheme* inner_;
  Money charged_;
};

TEST_F(SimulatorTest, ResidualRentIsFlushedAtRunEnd) {
  // Regression: rent accrues in a double accumulator and is only charged
  // once it rounds to a whole micro-dollar; a run whose total rent never
  // reaches one micro used to end with the accumulator unflushed — the
  // cloud metered disk time it never billed. The flush must charge the
  // rounded-UP residue at end of run.
  PriceList rent_only;
  rent_only.cpu_second_dollars = 0;
  rent_only.network_byte_dollars = 0;
  rent_only.io_op_dollars = 0;
  // 24 MB of cached columns over a few hundred seconds stays far below
  // one micro-dollar of rent, so every accrual lands in the pending
  // fraction and nothing is billed mid-run.
  rent_only.disk_byte_second_dollars = 1e-18;

  BypassYieldScheme::Options bypass_options;
  bypass_options.cache_fraction = 0.9;  // Fit all three hot columns.
  BypassYieldScheme inner(&catalog_, bypass_options);
  ChargeSumScheme scheme(&inner);
  WorkloadGenerator workload(&catalog_, templates_, DefaultWorkload());
  SimulatorOptions options = DefaultSim(50);
  options.metered_prices = rent_only;
  Simulator sim(&catalog_, &scheme, &workload, options);
  const SimMetrics metrics = sim.Run();

  // Rent was metered (the columns loaded) but stayed sub-micro...
  ASSERT_GT(metrics.operating_cost.disk_dollars, 0.0);
  ASSERT_LT(metrics.operating_cost.disk_dollars, 1e-6);
  // ...so the only possible bill is the end-of-run flush: one micro, the
  // metered total rounded up.
  EXPECT_EQ(scheme.charged().micros(), 1);
}

}  // namespace
}  // namespace cloudcache
