#include "src/cluster/cluster.h"

#include <utility>

#include "src/obs/trace.h"
#include "src/util/logging.h"

namespace cloudcache {

ClusterScheme::ClusterScheme(const Catalog* catalog,
                             const PriceList* decision_prices,
                             ClusterOptions options, NodeFactory factory)
    : catalog_(catalog),
      decision_prices_(decision_prices),
      options_(options),
      factory_(std::move(factory)),
      router_(catalog),
      controller_(options_.elasticity) {
  CLOUDCACHE_CHECK_GE(options_.nodes, 1u);
  CLOUDCACHE_CHECK_GE(options_.elasticity.min_nodes, 1u);
  CLOUDCACHE_CHECK_LE(options_.elasticity.min_nodes,
                      options_.elasticity.max_nodes);
  // The window cadence divides the query counter; zero would be a SIGFPE
  // in OnQuery instead of a diagnosable failure here.
  CLOUDCACHE_CHECK_GT(options_.elasticity.check_interval_queries, 0u);
  nodes_.reserve(options_.nodes);
  for (uint32_t n = 0; n < options_.nodes; ++n) {
    Node node;
    node.ordinal = next_ordinal_++;
    node.scheme = factory_(node.ordinal);
    CLOUDCACHE_CHECK(node.scheme != nullptr);
    nodes_.push_back(std::move(node));
  }
  peak_nodes_ = options_.nodes;
  name_ = nodes_.front().scheme->name();
}

size_t ClusterScheme::RouteQuery(const Query& query) {
  cache_view_.clear();
  for (const Node& node : nodes_) {
    cache_view_.push_back(&node.scheme->cache());
  }
  return router_.Route(query, cache_view_);
}

ServedQuery ClusterScheme::ServeOnNode(size_t index, const Query& query,
                                       SimTime now) {
  Node& node = nodes_[index];
  const ServedQuery served = node.scheme->OnQuery(query, now);
  ++node.queries;
  ++node.window_queries;
  if (served.served) {
    ++node.served;
    if (served.spec.access != PlanSpec::Access::kBackend) {
      ++node.served_in_cache;
    }
    node.revenue += served.payment;
    node.profit += served.profit;
  }
  return served;
}

ServedQuery ClusterScheme::OnQuery(const Query& query, SimTime now) {
  if (!saw_query_) {
    first_arrival_ = query.arrival_time;
    saw_query_ = true;
  }
  last_arrival_ = query.arrival_time;
  trace_query_ = query.id;
  trace_tenant_ = query.tenant_id;

  const size_t n = RouteQuery(query);
  last_served_ = n;
  const ServedQuery served = ServeOnNode(n, query, now);

  ++queries_;
  if (options_.elastic &&
      queries_ % options_.elasticity.check_interval_queries == 0) {
    MaybeScale(now);
  }
  return served;
}

ClusterScheme::WindowEnd ClusterScheme::EndWindow(SimTime window_close,
                                                  SimTime first_arrival,
                                                  SimTime last_arrival,
                                                  uint64_t window_queries) {
  if (window_queries > 0) {
    if (!saw_query_) {
      first_arrival_ = first_arrival;
      saw_query_ = true;
    }
    last_arrival_ = last_arrival;
    queries_ += window_queries;
  }
  // The controller runs only on full check intervals — exactly the
  // cadence at which the serial path's `queries_ % interval == 0` fires
  // (the driver's window IS the check interval; a short final window
  // never lands on the boundary there either).
  if (options_.elastic &&
      window_queries == options_.elasticity.check_interval_queries) {
    return MaybeScale(window_close);
  }
  return WindowEnd{};
}

ClusterScheme::WindowEnd ClusterScheme::MaybeScale(SimTime now) {
  ElasticityWindow window;
  window.standing_regret = StandingRegret();
  window.routed.reserve(nodes_.size());
  for (Node& node : nodes_) {
    window.routed.push_back(node.window_queries);
    window.window_queries += node.window_queries;
    node.window_queries = 0;
  }

  // Project one node's rent over the amortization horizon: rent/second at
  // decision prices, times the horizon expressed in seconds through the
  // observed mean interarrival of the stream so far.
  const double rent_per_second = decision_prices_->cpu_second_dollars *
                                 decision_prices_->cpu_reserve_fraction *
                                 options_.node_rent_multiplier;
  const double mean_interarrival =
      queries_ > 1 ? (last_arrival_ - first_arrival_) /
                         static_cast<double>(queries_ - 1)
                   : 0.0;
  window.projected_rent_dollars =
      rent_per_second *
      static_cast<double>(options_.elasticity.amortization_horizon) *
      mean_interarrival;

  const ElasticAction action = controller_.Step(window);
  WindowEnd end;
  end.decision = action.decision;
  switch (action.decision) {
    case ElasticDecision::kHold:
      break;
    case ElasticDecision::kRent:
      RentNode(now);
      break;
    case ElasticDecision::kRelease:
      end.released_index = action.release_index;
      end.heir_index = ReleaseNode(action.release_index, now);
      break;
  }
  return end;
}

void ClusterScheme::SetEventTracer(obs::EventTracer* tracer,
                                   uint32_t node_ordinal) {
  (void)node_ordinal;
  tracer_ = tracer;
  for (Node& node : nodes_) {
    node.scheme->SetEventTracer(tracer, node.ordinal);
  }
}

void ClusterScheme::RentNode(SimTime now) {
  Node node;
  node.ordinal = next_ordinal_++;
  node.scheme = factory_(node.ordinal);
  CLOUDCACHE_CHECK(node.scheme != nullptr);
  node.rented_at = now;
  node.scheme->SetEventTracer(tracer_, node.ordinal);
  nodes_.push_back(std::move(node));
  ++scale_out_events_;
  if (nodes_.size() > peak_nodes_) {
    peak_nodes_ = static_cast<uint32_t>(nodes_.size());
  }
  if (tracer_ != nullptr) {
    tracer_
        ->Event("node_rent", trace_query_, now, trace_tenant_,
                next_ordinal_ - 1)
        .U64("fleet_size", nodes_.size());
  }
}

size_t ClusterScheme::WarmestSurvivor(size_t releasing) const {
  size_t warmest = releasing == 0 ? 1 : 0;
  for (size_t n = 0; n < nodes_.size(); ++n) {
    if (n == releasing) continue;
    if (nodes_[n].queries > nodes_[warmest].queries) warmest = n;
  }
  return warmest;
}

size_t ClusterScheme::ReleaseNode(size_t index, SimTime now) {
  CLOUDCACHE_CHECK_GT(index, 0u);  // The coordinator is never released.
  CLOUDCACHE_CHECK_LT(index, nodes_.size());
  const size_t destination = WarmestSurvivor(index);
  Scheme& victim = *nodes_[index].scheme;
  Scheme& heir = *nodes_[destination].scheme;
  const uint32_t victim_ordinal = nodes_[index].ordinal;
  const uint32_t heir_ordinal = nodes_[destination].ordinal;
  const uint64_t migrations_before = migrations_;
  const uint64_t failures_before = migration_failures_;

  // Migrate survivors: structures a recent plan actually used. Cold
  // inventory — exactly what made the node releasable — is dropped with
  // the node. CPU-node structures are node-local compute and never move.
  // AdoptStructure pays from the heir's account through the engine's
  // normal build path (residency Add bumps the heir's epoch, so its
  // plan-skeleton cache invalidates like for any other build); a refusal
  // (already resident, not enough credit) just means that structure dies
  // with the node.
  if (options_.migration_recency_seconds > 0) {
    const CacheState& cache = victim.cache();
    const StructureRegistry& registry = cache.registry();
    cache.ForEachResident([&](StructureId id) {
      const StructureKey& key = registry.key(id);
      if (key.type == StructureType::kCpuNode) return;
      if (cache.LastUsed(id) + options_.migration_recency_seconds < now) {
        return;
      }
      const bool adopted = heir.AdoptStructure(key, now).ok();
      if (adopted) {
        ++migrations_;
      } else {
        ++migration_failures_;
      }
      if (tracer_ != nullptr) {
        tracer_
            ->Event("migrate", trace_query_, now, trace_tenant_,
                    victim_ordinal)
            .Str("key", key.ToString(*catalog_))
            .U64("to_node", heir_ordinal)
            .U64("adopted", adopted ? 1 : 0);
      }
    });
  }

  // The released node's till returns to the cluster through its heir, so
  // scale-in never destroys credit (a negative balance — a node released
  // while in deficit — is absorbed too).
  const Money remaining = victim.credit();
  if (!remaining.IsZero()) heir.AbsorbCredit(remaining, now);

  if (tracer_ != nullptr) {
    tracer_
        ->Event("node_release", trace_query_, now, trace_tenant_,
                victim_ordinal)
        .U64("heir_node", heir_ordinal)
        .U64("migrations", migrations_ - migrations_before)
        .U64("migration_failures", migration_failures_ - failures_before)
        .F64("credit_absorbed_dollars", remaining.ToDollars());
  }

  nodes_.erase(nodes_.begin() + static_cast<std::ptrdiff_t>(index));
  ++scale_in_events_;
  // Keep last_served_ pointing at the node that served the most recent
  // query (the ChargeExpenditure contract): re-index it past the erased
  // slot, and only when the served node itself died does its billing —
  // like its books — pass to the heir.
  if (last_served_ == index) {
    last_served_ = destination > index ? destination - 1 : destination;
  } else if (last_served_ > index) {
    --last_served_;
  }
  return destination > index ? destination - 1 : destination;
}

Money ClusterScheme::credit() const {
  Money total;
  for (const Node& node : nodes_) total += node.scheme->credit();
  return total;
}

Money ClusterScheme::TenantRegret(uint32_t tenant) const {
  Money total;
  for (const Node& node : nodes_) {
    total += node.scheme->TenantRegret(tenant);
  }
  return total;
}

Money ClusterScheme::StandingRegret() const {
  Money total;
  for (const Node& node : nodes_) total += node.scheme->StandingRegret();
  return total;
}

void ClusterScheme::ChargeExpenditure(Money amount, SimTime now) {
  nodes_[last_served_].scheme->ChargeExpenditure(amount, now);
}

uint64_t ClusterScheme::TotalResidentBytes() const {
  uint64_t total = 0;
  for (const Node& node : nodes_) {
    total += node.scheme->TotalResidentBytes();
  }
  return total;
}

uint32_t ClusterScheme::TotalExtraCpuNodes() const {
  uint32_t total = 0;
  for (const Node& node : nodes_) {
    total += node.scheme->TotalExtraCpuNodes();
  }
  return total;
}

void ClusterScheme::DescribeCluster(ClusterMetrics* out) const {
  out->active = true;
  out->final_nodes = static_cast<uint32_t>(nodes_.size());
  out->peak_nodes = peak_nodes_;
  out->scale_out_events = scale_out_events_;
  out->scale_in_events = scale_in_events_;
  out->migrations = migrations_;
  out->migration_failures = migration_failures_;
  // node_rent_dollars is the simulator's (metered while integrating rent).
  out->nodes.clear();
  out->nodes.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    NodeMetrics slice;
    slice.ordinal = node.ordinal;
    slice.queries = node.queries;
    slice.served = node.served;
    slice.served_in_cache = node.served_in_cache;
    slice.revenue = node.revenue;
    slice.profit = node.profit;
    slice.final_credit = node.scheme->credit();
    slice.final_resident_bytes = node.scheme->TotalResidentBytes();
    slice.rented_at_seconds = node.rented_at;
    out->nodes.push_back(slice);
  }
}

void ClusterScheme::SaveState(persist::Encoder* enc) const {
  enc->PutU64(nodes_.size());
  for (const Node& node : nodes_) {
    enc->PutU32(node.ordinal);
    enc->PutDouble(node.rented_at);
    enc->PutU64(node.queries);
    enc->PutU64(node.served);
    enc->PutU64(node.served_in_cache);
    enc->PutU64(node.window_queries);
    enc->PutMoney(node.revenue);
    enc->PutMoney(node.profit);
    node.scheme->SaveState(enc);
  }
  enc->PutU32(next_ordinal_);
  enc->PutU64(last_served_);
  enc->PutU64(queries_);
  enc->PutDouble(first_arrival_);
  enc->PutDouble(last_arrival_);
  enc->PutBool(saw_query_);
  enc->PutU32(peak_nodes_);
  enc->PutU64(scale_out_events_);
  enc->PutU64(scale_in_events_);
  enc->PutU64(migrations_);
  enc->PutU64(migration_failures_);
  controller_.SaveState(enc);
}

Status ClusterScheme::RestoreState(persist::Decoder* dec) {
  uint64_t node_count = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&node_count));
  if (node_count == 0) {
    return Status::InvalidArgument("snapshot cluster has zero nodes");
  }
  if (node_count > options_.elasticity.max_nodes && options_.elastic) {
    return Status::InvalidArgument(
        "snapshot cluster has " + std::to_string(node_count) +
        " nodes, above this configuration's max of " +
        std::to_string(options_.elasticity.max_nodes));
  }
  // The saved fleet replaces the constructor-built one wholesale: each
  // node is rebuilt from its ordinal (which determines its seeds and
  // configuration) and then overwritten with its saved state.
  std::vector<Node> restored;
  restored.reserve(node_count);
  for (uint64_t i = 0; i < node_count; ++i) {
    Node node;
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&node.ordinal));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&node.rented_at));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&node.queries));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&node.served));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&node.served_in_cache));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&node.window_queries));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&node.revenue));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&node.profit));
    if (i == 0 && node.ordinal != 0) {
      return Status::InvalidArgument(
          "snapshot cluster coordinator has ordinal " +
          std::to_string(node.ordinal) + "; expected 0");
    }
    node.scheme = factory_(node.ordinal);
    CLOUDCACHE_RETURN_IF_ERROR(node.scheme->RestoreState(dec));
    restored.push_back(std::move(node));
  }
  nodes_ = std::move(restored);
  // Factory-rebuilt nodes start without the tracer; re-attach it so a
  // restored run traces exactly like an uninterrupted one.
  for (Node& node : nodes_) {
    node.scheme->SetEventTracer(tracer_, node.ordinal);
  }
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&next_ordinal_));
  for (const Node& node : nodes_) {
    if (node.ordinal >= next_ordinal_) {
      return Status::InvalidArgument(
          "snapshot cluster node ordinal " + std::to_string(node.ordinal) +
          " is not below the next-ordinal counter " +
          std::to_string(next_ordinal_));
    }
  }
  uint64_t last_served = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&last_served));
  if (last_served >= nodes_.size()) {
    return Status::InvalidArgument(
        "snapshot cluster last-served index is out of range");
  }
  last_served_ = static_cast<size_t>(last_served);
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&queries_));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&first_arrival_));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&last_arrival_));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadBool(&saw_query_));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&peak_nodes_));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&scale_out_events_));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&scale_in_events_));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&migrations_));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&migration_failures_));
  return controller_.RestoreState(dec);
}

}  // namespace cloudcache
