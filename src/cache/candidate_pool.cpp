#include "src/cache/candidate_pool.h"

#include <algorithm>
#include <iterator>

#include "src/util/logging.h"

namespace cloudcache {

CandidatePool::CandidatePool(size_t capacity) : capacity_(capacity) {
  CLOUDCACHE_CHECK_GE(capacity, 1u);
}

void CandidatePool::SetVictimScorer(
    std::function<double(StructureId)> scorer, size_t window) {
  victim_scorer_ = std::move(scorer);
  victim_window_ = window == 0 ? 1 : window;
}

StructureId CandidatePool::PopVictim() {
  // Classic LRU: the coldest entry. With a scorer, search the cold tail
  // for the lowest score; a tie keeps the colder entry so that equal
  // scores reproduce LRU exactly. The front entry — the candidate whose
  // Touch caused this overflow — is never a victim.
  auto victim = std::prev(entries_.end());
  if (victim_scorer_ && victim != entries_.begin()) {
    double best = victim_scorer_(victim->id);
    auto it = victim;
    for (size_t seen = 1; seen < victim_window_; ++seen) {
      --it;
      if (it == entries_.begin()) break;
      const double score = victim_scorer_(it->id);
      if (score < best) {
        best = score;
        victim = it;
      }
    }
  }
  const StructureId id = victim->id;
  present_[id] = 0;
  entries_.erase(victim);
  return id;
}

const std::vector<StructureId>& CandidatePool::Touch(StructureId id,
                                                    SimTime now) {
  evicted_.clear();
  if (Contains(id)) {
    const auto it = index_[id];
    it->last_touch = now;
    entries_.splice(entries_.begin(), entries_, it);
    return evicted_;
  }
  entries_.push_front(Entry{id, now});
  if (id >= present_.size()) {
    present_.resize(id + 1, 0);
    index_.resize(id + 1);
  }
  present_[id] = 1;
  index_[id] = entries_.begin();
  while (entries_.size() > capacity_) {
    if (!victim_scorer_) {
      // Classic strict LRU stays on the original tight path.
      const StructureId victim = entries_.back().id;
      evicted_.push_back(victim);
      present_[victim] = 0;
      entries_.pop_back();
    } else {
      evicted_.push_back(PopVictim());
    }
  }
  return evicted_;
}

void CandidatePool::Erase(StructureId id) {
  if (!Contains(id)) return;
  entries_.erase(index_[id]);
  present_[id] = 0;
}

void CandidatePool::SaveState(persist::Encoder* enc) const {
  enc->PutU64(entries_.size());
  for (const Entry& entry : entries_) {
    enc->PutU32(entry.id);
    enc->PutDouble(entry.last_touch);
  }
}

Status CandidatePool::RestoreState(persist::Decoder* dec) {
  entries_.clear();
  std::fill(present_.begin(), present_.end(), 0);
  uint64_t count = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&count));
  if (count > capacity_) {
    return Status::InvalidArgument(
        "snapshot candidate pool exceeds this run's pool capacity");
  }
  for (uint64_t i = 0; i < count; ++i) {
    StructureId id = 0;
    double last_touch = 0;
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&id));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&last_touch));
    if (id >= present_.size()) {
      present_.resize(id + 1, 0);
      index_.resize(id + 1);
    }
    if (present_[id]) {
      return Status::InvalidArgument(
          "snapshot candidate pool repeats structure id " +
          std::to_string(id));
    }
    // Entries arrive in MRU-first order; appending keeps that order.
    entries_.push_back(Entry{id, last_touch});
    present_[id] = 1;
    index_[id] = std::prev(entries_.end());
  }
  return Status::OK();
}

std::vector<StructureId> CandidatePool::MruOrder() const {
  std::vector<StructureId> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.id);
  return out;
}

}  // namespace cloudcache
