#include "src/cost/price_list.h"

#include <gtest/gtest.h>

namespace cloudcache {
namespace {

TEST(PriceListTest, Ec2DefaultsMatchPaperParameters) {
  const PriceList p = PriceList::AmazonEc2_2009();
  EXPECT_DOUBLE_EQ(p.lcpu, 1.0);    // "nodes are never overloaded"
  EXPECT_DOUBLE_EQ(p.fn, 1.0);      // "CPU fully utilized during transfer"
  EXPECT_DOUBLE_EQ(p.latency_seconds, 0.0);  // "no latency"
  EXPECT_DOUBLE_EQ(p.wan_mbps, 25.0);        // SDSS max throughput [24]
  EXPECT_DOUBLE_EQ(p.fcpu, 0.014);           // SDSS response calibration
}

TEST(PriceListTest, WanBytesPerSecond) {
  PriceList p;
  p.wan_mbps = 25.0;
  EXPECT_DOUBLE_EQ(p.WanBytesPerSecond(), 25e6 / 8.0);
}

TEST(PriceListTest, WanSecondsIncludesLatency) {
  PriceList p;
  p.wan_mbps = 8.0;  // 1 MB/s.
  p.latency_seconds = 0.5;
  EXPECT_DOUBLE_EQ(p.WanSeconds(2'000'000), 0.5 + 2.0);
}

TEST(PriceListTest, CpuCostConversion) {
  PriceList p;
  p.cpu_second_dollars = 0.10 / 3600.0;
  EXPECT_EQ(p.CpuCost(3600.0), Money::FromDollars(0.10));
}

TEST(PriceListTest, NetworkCostConversion) {
  PriceList p;
  p.network_byte_dollars = 0.17 / 1e9;
  EXPECT_EQ(p.NetworkCost(1'000'000'000), Money::FromDollars(0.17));
}

TEST(PriceListTest, DiskCostConversion) {
  PriceList p;
  p.disk_byte_second_dollars = 0.15 / (1e9 * kMonth);
  EXPECT_EQ(p.DiskCost(1'000'000'000, kMonth), Money::FromDollars(0.15));
}

TEST(PriceListTest, IoCostConversion) {
  PriceList p;
  p.io_op_dollars = 0.10 / 1e6;
  EXPECT_EQ(p.IoCost(1'000'000), Money::FromDollars(0.10));
}

TEST(PriceListTest, NetworkOnlyZeroesEverythingButNetwork) {
  const PriceList p = PriceList::NetworkOnly();
  EXPECT_EQ(p.cpu_second_dollars, 0.0);
  EXPECT_EQ(p.disk_byte_second_dollars, 0.0);
  EXPECT_EQ(p.io_op_dollars, 0.0);
  EXPECT_GT(p.network_byte_dollars, 0.0);
}

TEST(PriceListTest, GoGridGivesFreeBandwidth) {
  const PriceList p = PriceList::GoGrid2009();
  EXPECT_EQ(p.network_byte_dollars, 0.0);
  EXPECT_GT(p.cpu_second_dollars, 0.0);
}

TEST(PriceListTest, ToStringMentionsRates) {
  const std::string s = ToString(PriceList::AmazonEc2_2009());
  EXPECT_NE(s.find("cpu="), std::string::npos);
  EXPECT_NE(s.find("25.0Mbps"), std::string::npos);
}

}  // namespace
}  // namespace cloudcache
