// cloudcached is the simulator served over sockets, and the tests pin
// exactly that claim:
//
//  1. Per-query equivalence: the outcome of every query served over a
//     real TCP connection equals what an externally-driven Simulator on
//     a duplicate object graph produces for the same query.
//  2. Concurrency is fan-in, not reordering: N racing connections
//     produce metrics bit-identical to serially merge-driving the same
//     streams — the merge gate serializes service into simulator order.
//  3. Persistence interop: the snapshot a draining server writes resumes
//     the classic driver bit-identically to an uninterrupted run.
//  4. Protocol discipline: the Hello gate rejects version, config-hash,
//     duplicate-claim, and out-of-range errors; a diverged stream taints
//     the run and shutdown refuses to write its snapshot.

#include "src/server/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/catalog/tpch.h"
#include "src/server/protocol.h"
#include "src/server/socket_io.h"
#include "src/sim/experiment.h"
#include "src/structure/index_advisor.h"
#include "tests/testing/metrics_equal.h"

namespace cloudcache::server {
namespace {

using cloudcache::testing::ExpectBitIdenticalMetrics;
using cloudcache::testing::ExpectBitIdenticalTenants;

class ServerIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog(MakeTpchCatalog(100.0));
    templates_ = new std::vector<QueryTemplate>(MakeTpchTemplates());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
    delete templates_;
    templates_ = nullptr;
  }

  /// An economically active short run (investments and evictions happen)
  /// so the served outcomes actually exercise the economy.
  static ExperimentConfig ActiveConfig(uint64_t num_queries,
                                       uint32_t tenants) {
    ExperimentConfig config;
    config.scheme = SchemeKind::kEconCheap;
    config.workload.interarrival_seconds = 5.0;
    config.workload.seed = 29;
    config.seed = 30;
    config.sim.num_queries = num_queries;
    config.tenancy.tenants = tenants;
    config.tenancy.traffic_skew = tenants > 1 ? 1.0 : 0.0;
    config.customize_econ = [](EconScheme::Config& econ) {
      econ.economy.regret_fraction_a = 0.001;
      econ.economy.conservative_provider = false;
      econ.economy.initial_credit = Money::FromDollars(20);
      econ.economy.model_build_latency = false;
    };
    return config;
  }

  /// The duplicate object graph the server builds internally, wired for
  /// external drive — the reference the socket path must match.
  struct Reference {
    std::vector<ResolvedTemplate> resolved;
    std::vector<StructureKey> indexes;
    std::unique_ptr<Scheme> scheme;
    std::vector<std::unique_ptr<WorkloadGenerator>> generators;
    std::unique_ptr<Simulator> sim;
  };

  static Reference MakeReference(const ExperimentConfig& config) {
    Reference ref;
    ref.resolved = ResolveTemplates(*catalog_, *templates_).value();
    ref.indexes =
        RecommendIndexes(*catalog_, ref.resolved, config.index_candidates);
    ref.scheme = MakeExperimentScheme(*catalog_, ref.indexes, config);
    SimulatorOptions options = config.sim;
    options.node_rent_multiplier = config.cluster.node_rent_multiplier;
    const uint32_t tenants = config.tenancy.tenants;
    for (uint32_t t = 0; t < tenants; ++t) {
      ref.generators.push_back(std::make_unique<WorkloadGenerator>(
          catalog_, ref.resolved,
          TenantWorkloadOptions(config.workload, config.tenancy, t)));
    }
    const bool multi =
        tenants > 1 || config.tenancy.force_event_path;
    if (multi) {
      std::vector<WorkloadGenerator*> ptrs;
      for (auto& g : ref.generators) ptrs.push_back(g.get());
      ref.sim = std::make_unique<Simulator>(catalog_, ref.scheme.get(),
                                            std::move(ptrs), options);
    } else {
      ref.sim = std::make_unique<Simulator>(
          catalog_, ref.scheme.get(), ref.generators[0].get(), options);
    }
    ref.sim->ExternalBegin();
    return ref;
  }

  /// Pre-draws each stream's share of the next `count` merged queries
  /// (earliest arrival, ties to the lowest stream — the simulator rule).
  static std::vector<std::vector<Query>> DrawPlans(
      const ExperimentConfig& config, uint64_t count) {
    const std::vector<ResolvedTemplate> resolved =
        ResolveTemplates(*catalog_, *templates_).value();
    std::vector<std::unique_ptr<WorkloadGenerator>> generators;
    for (uint32_t t = 0; t < config.tenancy.tenants; ++t) {
      generators.push_back(std::make_unique<WorkloadGenerator>(
          catalog_, resolved,
          TenantWorkloadOptions(config.workload, config.tenancy, t)));
    }
    std::vector<std::vector<Query>> plans(generators.size());
    for (uint64_t i = 0; i < count; ++i) {
      size_t head = 0;
      for (size_t u = 1; u < generators.size(); ++u) {
        if (generators[u]->PeekNextArrival() <
            generators[head]->PeekNextArrival()) {
          head = u;
        }
      }
      plans[head].push_back(generators[head]->Next());
    }
    return plans;
  }

  static Catalog* catalog_;
  static std::vector<QueryTemplate>* templates_;
};

Catalog* ServerIntegrationTest::catalog_ = nullptr;
std::vector<QueryTemplate>* ServerIntegrationTest::templates_ = nullptr;

/// A Hello exchange's reply: exactly one of ack/error is meaningful.
struct HelloReply {
  bool acked = false;
  HelloAckMsg ack;
  ErrorMsg error;
};

Status DoHello(Socket* conn, uint16_t port, uint32_t stream, uint64_t hash,
               HelloReply* reply, uint32_t version = kProtocolVersion) {
  Result<Socket> connected = ConnectTcp("127.0.0.1", port);
  CLOUDCACHE_RETURN_IF_ERROR(connected.status());
  *conn = std::move(connected).value();
  HelloMsg hello;
  hello.protocol_version = version;
  hello.stream_id = stream;
  hello.config_hash = hash;
  persist::Encoder enc;
  EncodeHello(hello, &enc);
  CLOUDCACHE_RETURN_IF_ERROR(WriteFrame(*conn, enc));
  std::vector<uint8_t> payload;
  bool clean_eof = false;
  CLOUDCACHE_RETURN_IF_ERROR(ReadFrame(*conn, &payload, &clean_eof));
  if (clean_eof) return Status::IoError("closed during Hello");
  persist::Decoder dec(payload.data(), payload.size());
  MessageType type = MessageType::kHelloAck;
  CLOUDCACHE_RETURN_IF_ERROR(PeekType(&dec, &type));
  if (type == MessageType::kError) {
    reply->acked = false;
    return DecodeError(&dec, &reply->error);
  }
  if (type != MessageType::kHelloAck) {
    return Status::Internal("unexpected Hello reply");
  }
  reply->acked = true;
  return DecodeHelloAck(&dec, &reply->ack);
}

/// A Query exchange's reply: an outcome or a protocol error.
struct QueryReply {
  bool has_outcome = false;
  OutcomeMsg outcome;
  ErrorMsg error;
};

Status ExchangeQuery(const Socket& conn, const Query& query,
                     QueryReply* reply) {
  persist::Encoder enc;
  EncodeQuery(query, &enc);
  CLOUDCACHE_RETURN_IF_ERROR(WriteFrame(conn, enc));
  std::vector<uint8_t> payload;
  bool clean_eof = false;
  CLOUDCACHE_RETURN_IF_ERROR(ReadFrame(conn, &payload, &clean_eof));
  if (clean_eof) return Status::IoError("closed mid-stream");
  persist::Decoder dec(payload.data(), payload.size());
  MessageType type = MessageType::kOutcome;
  CLOUDCACHE_RETURN_IF_ERROR(PeekType(&dec, &type));
  if (type == MessageType::kError) {
    reply->has_outcome = false;
    return DecodeError(&dec, &reply->error);
  }
  if (type != MessageType::kOutcome) {
    return Status::Internal("unexpected Query reply");
  }
  reply->has_outcome = true;
  return DecodeOutcome(&dec, &reply->outcome);
}

TEST_F(ServerIntegrationTest, SocketOutcomesMatchExternalDriveReference) {
  const uint64_t kQueries = 400;
  const ExperimentConfig config = ActiveConfig(kQueries, /*tenants=*/1);
  ServerOptions options;
  options.port = 0;
  CloudCachedServer server(catalog_, templates_, &config, options);
  ASSERT_TRUE(server.Start().ok());

  Reference ref = MakeReference(config);
  WorkloadGenerator client_stream(
      catalog_, ref.resolved,
      TenantWorkloadOptions(config.workload, config.tenancy, 0));

  Socket conn;
  HelloReply hello;
  ASSERT_TRUE(
      DoHello(&conn, server.port(), 0, server.config_hash(), &hello).ok());
  ASSERT_TRUE(hello.acked);
  EXPECT_EQ(hello.ack.num_queries, kQueries);
  EXPECT_EQ(hello.ack.next_query_id, 0u);

  for (uint64_t i = 0; i < kQueries; ++i) {
    const Query query = client_stream.Next();
    QueryReply reply;
    ASSERT_TRUE(ExchangeQuery(conn, query, &reply).ok()) << "query " << i;
    ASSERT_TRUE(reply.has_outcome) << "query " << i << ": "
                                   << reply.error.message;
    const ServedQuery expected = ref.sim->ExternalServe(query);
    EXPECT_EQ(reply.outcome.query_id, query.id);
    EXPECT_EQ(reply.outcome.global_index, i);
    EXPECT_EQ(reply.outcome.served, expected.served);
    EXPECT_EQ(reply.outcome.access,
              static_cast<uint8_t>(expected.spec.access));
    EXPECT_EQ(reply.outcome.throttled, expected.throttled);
    EXPECT_EQ(reply.outcome.response_seconds,
              expected.execution.time_seconds);
    EXPECT_EQ(reply.outcome.payment_micros, expected.payment.micros());
    EXPECT_EQ(reply.outcome.profit_micros, expected.profit.micros());
    EXPECT_EQ(reply.outcome.has_budget_case, expected.has_budget_case);
    EXPECT_EQ(reply.outcome.investments, expected.investments);
    EXPECT_EQ(reply.outcome.evictions, expected.evictions);
  }

  // The configured run is now complete: one more query is refused.
  QueryReply over;
  ASSERT_TRUE(ExchangeQuery(conn, client_stream.Next(), &over).ok());
  ASSERT_FALSE(over.has_outcome);
  EXPECT_EQ(over.error.code, ErrorCode::kRunComplete);

  conn.Close();
  server.RequestShutdown();
  ASSERT_TRUE(server.Wait().ok());
  EXPECT_EQ(server.processed(), kQueries);
  ExpectBitIdenticalMetrics(ref.sim->external_metrics(), server.metrics());
}

TEST_F(ServerIntegrationTest, ConcurrentStreamsMatchSerialMergeReference) {
  const uint64_t kQueries = 600;
  const uint32_t kStreams = 3;
  const ExperimentConfig config = ActiveConfig(kQueries, kStreams);
  ServerOptions options;
  options.port = 0;
  CloudCachedServer server(catalog_, templates_, &config, options);
  ASSERT_TRUE(server.Start().ok());

  const std::vector<std::vector<Query>> plans = DrawPlans(config, kQueries);

  // Claim every stream, then race the three replays; the server's merge
  // gate must serialize service into simulator order.
  std::vector<Socket> conns(kStreams);
  for (uint32_t t = 0; t < kStreams; ++t) {
    HelloReply hello;
    ASSERT_TRUE(DoHello(&conns[t], server.port(), t, server.config_hash(),
                        &hello)
                    .ok());
    ASSERT_TRUE(hello.acked) << "stream " << t;
  }
  std::vector<std::string> failures(kStreams);
  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kStreams; ++t) {
    threads.emplace_back([&conns, &plans, &failures, t] {
      for (const Query& query : plans[t]) {
        QueryReply reply;
        const Status status = ExchangeQuery(conns[t], query, &reply);
        if (!status.ok() || !reply.has_outcome) {
          failures[t] = !status.ok() ? status.ToString()
                                     : reply.error.message;
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (uint32_t t = 0; t < kStreams; ++t) {
    EXPECT_EQ(failures[t], "") << "stream " << t;
  }
  for (Socket& conn : conns) conn.Close();
  server.RequestShutdown();
  ASSERT_TRUE(server.Wait().ok());
  EXPECT_EQ(server.processed(), kQueries);

  // Serial reference: merge-drive the identical streams one by one.
  Reference ref = MakeReference(config);
  {
    std::vector<size_t> cursor(kStreams, 0);
    for (uint64_t i = 0; i < kQueries; ++i) {
      size_t head = kStreams;
      for (size_t u = 0; u < kStreams; ++u) {
        if (cursor[u] >= plans[u].size()) continue;
        if (head == kStreams ||
            plans[u][cursor[u]].arrival_time <
                plans[head][cursor[head]].arrival_time) {
          head = u;
        }
      }
      ASSERT_LT(head, kStreams);
      ref.sim->ExternalServe(plans[head][cursor[head]]);
      ++cursor[head];
    }
  }
  ExpectBitIdenticalMetrics(ref.sim->external_metrics(), server.metrics());
  ExpectBitIdenticalTenants(ref.sim->external_metrics(), server.metrics());
}

TEST_F(ServerIntegrationTest, ShutdownSnapshotResumesClassicDriver) {
  const uint64_t kQueries = 1'000;
  const uint64_t kServe = 500;
  const uint32_t kStreams = 2;
  ExperimentConfig config = ActiveConfig(kQueries, kStreams);
  const std::string snapshot =
      ::testing::TempDir() + "/cloudcached_shutdown.snap";

  {
    ServerOptions options;
    options.port = 0;
    options.snapshot_path = snapshot;
    CloudCachedServer server(catalog_, templates_, &config, options);
    ASSERT_TRUE(server.Start().ok());
    const std::vector<std::vector<Query>> plans =
        DrawPlans(config, kServe);
    std::vector<Socket> conns(kStreams);
    for (uint32_t t = 0; t < kStreams; ++t) {
      HelloReply hello;
      ASSERT_TRUE(DoHello(&conns[t], server.port(), t,
                          server.config_hash(), &hello)
                      .ok());
      ASSERT_TRUE(hello.acked);
    }
    std::vector<std::thread> threads;
    for (uint32_t t = 0; t < kStreams; ++t) {
      threads.emplace_back([&conns, &plans, t] {
        for (const Query& query : plans[t]) {
          QueryReply reply;
          if (!ExchangeQuery(conns[t], query, &reply).ok() ||
              !reply.has_outcome) {
            return;
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    EXPECT_EQ(server.processed(), kServe);
    server.RequestShutdown();
    ASSERT_TRUE(server.Wait().ok());
  }

  // The drained snapshot resumes the classic driver, and the completed
  // run is bit-identical to never having been interrupted.
  const SimMetrics uninterrupted =
      RunExperiment(*catalog_, *templates_, config);
  config.sim.checkpoint.path = snapshot;
  config.sim.checkpoint.restore = CheckpointOptions::Restore::kHard;
  Result<SimMetrics> resumed =
      RunExperimentChecked(*catalog_, *templates_, config);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectBitIdenticalMetrics(uninterrupted, *resumed);
  ExpectBitIdenticalTenants(uninterrupted, *resumed);
  std::remove(snapshot.c_str());
}

TEST_F(ServerIntegrationTest, HelloGateRejectsProtocolViolations) {
  const ExperimentConfig config = ActiveConfig(100, /*tenants=*/1);
  ServerOptions options;
  options.port = 0;
  CloudCachedServer server(catalog_, templates_, &config, options);
  ASSERT_TRUE(server.Start().ok());
  const uint64_t hash = server.config_hash();

  {
    Socket conn;
    HelloReply reply;
    ASSERT_TRUE(DoHello(&conn, server.port(), 0, hash, &reply,
                        /*version=*/kProtocolVersion + 7)
                    .ok());
    ASSERT_FALSE(reply.acked);
    EXPECT_EQ(reply.error.code, ErrorCode::kVersionMismatch);
  }
  {
    Socket conn;
    HelloReply reply;
    ASSERT_TRUE(DoHello(&conn, server.port(), 0, hash ^ 1, &reply).ok());
    ASSERT_FALSE(reply.acked);
    EXPECT_EQ(reply.error.code, ErrorCode::kConfigMismatch);
  }
  {
    Socket conn;
    HelloReply reply;
    ASSERT_TRUE(DoHello(&conn, server.port(), 5, hash, &reply).ok());
    ASSERT_FALSE(reply.acked);
    EXPECT_EQ(reply.error.code, ErrorCode::kStreamOutOfRange);
  }
  {
    // First claim holds; a second claim of the same stream is refused,
    // and after the first connection closes the stream is retired — not
    // reclaimable (the merge moved on without it).
    Socket first;
    HelloReply reply;
    ASSERT_TRUE(DoHello(&first, server.port(), 0, hash, &reply).ok());
    ASSERT_TRUE(reply.acked);
    Socket second;
    HelloReply dup;
    ASSERT_TRUE(DoHello(&second, server.port(), 0, hash, &dup).ok());
    ASSERT_FALSE(dup.acked);
    EXPECT_EQ(dup.error.code, ErrorCode::kStreamClaimed);
    first.Close();
    // Wait for the server to observe the close and retire the stream;
    // until its handler finishes cleanup the reply is kStreamClaimed.
    bool retired = false;
    for (int i = 0; i < 100 && !retired; ++i) {
      Socket retry;
      HelloReply again;
      ASSERT_TRUE(DoHello(&retry, server.port(), 0, hash, &again).ok());
      ASSERT_FALSE(again.acked) << "a closed stream was reclaimed";
      if (again.error.code == ErrorCode::kNotAllowed) {
        retired = true;
      } else {
        ASSERT_EQ(again.error.code, ErrorCode::kStreamClaimed);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    EXPECT_TRUE(retired) << "stream 0 never retired after close";
  }
  server.RequestShutdown();
  EXPECT_TRUE(server.Wait().ok());
}

TEST_F(ServerIntegrationTest, DivergedStreamTaintsRunAndRefusesSnapshot) {
  const ExperimentConfig config = ActiveConfig(100, /*tenants=*/1);
  ServerOptions options;
  options.port = 0;
  options.snapshot_path =
      ::testing::TempDir() + "/cloudcached_tainted.snap";
  CloudCachedServer server(catalog_, templates_, &config, options);
  ASSERT_TRUE(server.Start().ok());

  Reference ref = MakeReference(config);
  WorkloadGenerator client_stream(
      catalog_, ref.resolved,
      TenantWorkloadOptions(config.workload, config.tenancy, 0));

  Socket conn;
  HelloReply hello;
  ASSERT_TRUE(
      DoHello(&conn, server.port(), 0, server.config_hash(), &hello).ok());
  ASSERT_TRUE(hello.acked);

  Query tampered = client_stream.Next();
  tampered.id += 1'000'000;  // Not the twin's next query.
  QueryReply reply;
  ASSERT_TRUE(ExchangeQuery(conn, tampered, &reply).ok());
  ASSERT_FALSE(reply.has_outcome);
  EXPECT_EQ(reply.error.code, ErrorCode::kStreamDiverged);

  server.RequestShutdown();
  const Status drained = server.Wait();
  EXPECT_FALSE(drained.ok());
  EXPECT_EQ(drained.code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServerIntegrationTest, ControlConnectionServesStatsAndShutdown) {
  const ExperimentConfig config = ActiveConfig(100, /*tenants=*/1);
  ServerOptions options;
  options.port = 0;
  CloudCachedServer server(catalog_, templates_, &config, options);
  ASSERT_TRUE(server.Start().ok());

  Socket conn;
  HelloReply hello;
  ASSERT_TRUE(DoHello(&conn, server.port(), kControlStream,
                      server.config_hash(), &hello)
                  .ok());
  ASSERT_TRUE(hello.acked);
  EXPECT_EQ(hello.ack.stream_id, kControlStream);

  persist::Encoder enc;
  EncodeStats(&enc);
  ASSERT_TRUE(WriteFrame(conn, enc).ok());
  std::vector<uint8_t> payload;
  bool clean_eof = false;
  ASSERT_TRUE(ReadFrame(conn, &payload, &clean_eof).ok());
  ASSERT_FALSE(clean_eof);
  {
    persist::Decoder dec(payload.data(), payload.size());
    MessageType type = MessageType::kStatsAck;
    ASSERT_TRUE(PeekType(&dec, &type).ok());
    ASSERT_EQ(type, MessageType::kStatsAck);
    StatsAckMsg stats;
    ASSERT_TRUE(DecodeStatsAck(&dec, &stats).ok());
    EXPECT_EQ(stats.processed, 0u);
    EXPECT_EQ(stats.num_queries, 100u);
    EXPECT_EQ(stats.active_streams, 0u);
  }

  enc.Clear();
  EncodeShutdown(&enc);
  ASSERT_TRUE(WriteFrame(conn, enc).ok());
  ASSERT_TRUE(ReadFrame(conn, &payload, &clean_eof).ok());
  ASSERT_FALSE(clean_eof);
  {
    persist::Decoder dec(payload.data(), payload.size());
    MessageType type = MessageType::kShutdownAck;
    ASSERT_TRUE(PeekType(&dec, &type).ok());
    EXPECT_EQ(type, MessageType::kShutdownAck);
    ASSERT_TRUE(DecodeShutdownAck(&dec).ok());
  }
  EXPECT_TRUE(server.ShutdownRequested());
  EXPECT_TRUE(server.Wait().ok());
}

}  // namespace
}  // namespace cloudcache::server
