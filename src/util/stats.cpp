#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

namespace cloudcache {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const int64_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          static_cast<double>(total);
  count_ = total;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void TimeSeries::Add(double time, double value) {
  times_.push_back(time);
  values_.push_back(value);
}

TimeSeries TimeSeries::Downsample(size_t max_points) const {
  TimeSeries out;
  const size_t n = times_.size();
  if (n <= max_points || max_points < 2) {
    out.times_ = times_;
    out.values_ = values_;
    return out;
  }
  for (size_t k = 0; k < max_points; ++k) {
    const size_t i = k * (n - 1) / (max_points - 1);
    out.Add(times_[i], values_[i]);
  }
  return out;
}

}  // namespace cloudcache
