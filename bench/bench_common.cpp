#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "src/catalog/tpch.h"
#include "src/util/units.h"

namespace cloudcache::bench {

namespace {

bool ConsumeFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

}  // namespace

BenchOptions ParseArgs(int argc, char** argv, uint64_t default_queries) {
  BenchOptions options;
  options.queries = default_queries;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ConsumeFlag(argv[i], "--queries", &value)) {
      options.queries = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ConsumeFlag(argv[i], "--scale-tb", &value)) {
      options.scale_tb = std::strtod(value.c_str(), nullptr);
    } else if (ConsumeFlag(argv[i], "--seed", &value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ConsumeFlag(argv[i], "--threads", &value)) {
      options.threads =
          static_cast<unsigned>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (ConsumeFlag(argv[i], "--csv", &value)) {
      options.csv_path = value;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      options.quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--queries=N] [--scale-tb=X] [--seed=N] "
                   "[--threads=N] [--csv=PATH] [--quick]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (options.quick) options.queries = std::max<uint64_t>(1, options.queries / 10);
  return options;
}

PaperSetup MakePaperSetup(const BenchOptions& options) {
  PaperSetup setup;
  setup.catalog = MakeTpchCatalog(TpchScaleForBytes(
      static_cast<uint64_t>(options.scale_tb * static_cast<double>(kTB))));
  setup.templates = MakeTpchTemplates();
  return setup;
}

ExperimentConfig PaperConfig(const BenchOptions& options,
                             double interarrival_seconds) {
  ExperimentConfig config;
  config.workload.interarrival_seconds = interarrival_seconds;
  config.workload.seed = options.seed;
  config.sim.num_queries = options.queries;
  config.seed = options.seed + 1;
  config.customize_econ = [](EconScheme::Config& econ) {
    // Working capital so the conservative provider can act within runs
    // shorter than the paper's million queries, and a regret fraction
    // calibrated so Eq. 3 trips within the default 40k-query cells (the
    // A1 ablation sweeps this knob); everything else is the library
    // default documented in DESIGN.md.
    econ.economy.initial_credit = Money::FromDollars(200);
    econ.economy.regret_fraction_a = 0.02;
    // The paper's evaluation does not model structure build latency (a
    // 120 GB column needs ~11 simulated hours on the 25 Mbps WAN, longer
    // than a bench run), and the bypass baseline loads instantly; keep
    // the comparison symmetric. The library models latency by default.
    econ.economy.model_build_latency = false;
  };
  return config;
}

std::vector<std::vector<SimMetrics>> RunInterarrivalSweep(
    const PaperSetup& setup, const BenchOptions& options,
    const std::vector<double>& intervals) {
  SweepSpec spec;
  spec.schemes = PaperSchemes();
  spec.interarrivals = intervals;
  spec.base = PaperConfig(options, /*interarrival_seconds=*/0);
  // Every cell keeps the --seed workload stream, exactly as the historical
  // serial loop did: scheme columns stay paired per row and rows differ
  // only in arrival spacing.
  spec.seed_policy = SweepSpec::SeedPolicy::kFixed;
  spec.base_seed = options.seed;

  return GroupRowsByInterarrival(
      RunSweep(setup.catalog, setup.templates, spec, options.threads,
               LogCellDone),
      intervals.size());
}

std::vector<SweepResult> RunVariantSweep(const PaperSetup& setup,
                                         const BenchOptions& options,
                                         const ExperimentConfig& base,
                                         std::vector<SchemeKind> schemes,
                                         std::vector<SweepVariant> variants) {
  SweepSpec spec;
  spec.schemes = std::move(schemes);
  spec.interarrivals = {base.workload.interarrival_seconds};
  spec.variants = std::move(variants);
  spec.base = base;
  spec.seed_policy = SweepSpec::SeedPolicy::kFixed;
  spec.base_seed = options.seed;
  return RunSweep(setup.catalog, setup.templates, spec, options.threads,
                  LogCellDone);
}

void EmitTable(const cloudcache::TableWriter& table,
               const BenchOptions& options) {
  std::fputs(table.ToAscii().c_str(), stdout);
  if (!options.csv_path.empty()) {
    const Status status = table.WriteCsvFile(options.csv_path);
    if (!status.ok()) {
      std::fprintf(stderr, "csv write failed: %s\n",
                   status.ToString().c_str());
    }
  }
}

}  // namespace cloudcache::bench
