#include "src/workload/generator.h"

#include <gtest/gtest.h>

#include <map>

#include "src/catalog/tpch.h"

namespace cloudcache {
namespace {

class GeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = MakeTpchCatalog(1.0);
    Result<std::vector<ResolvedTemplate>> resolved =
        ResolveTemplates(catalog_, MakeTpchTemplates());
    ASSERT_TRUE(resolved.ok());
    templates_ = *resolved;
  }

  Catalog catalog_;
  std::vector<ResolvedTemplate> templates_;
};

TEST_F(GeneratorTest, IdsIncrementFromZero) {
  WorkloadGenerator gen(&catalog_, templates_, {});
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(gen.Next().id, i);
  }
  EXPECT_EQ(gen.queries_generated(), 10u);
}

TEST_F(GeneratorTest, FixedArrivalsAreEvenlySpaced) {
  WorkloadOptions options;
  options.interarrival_seconds = 10.0;
  options.arrival = WorkloadOptions::Arrival::kFixed;
  WorkloadGenerator gen(&catalog_, templates_, options);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(gen.Next().arrival_time, 10.0 * i);
  }
}

TEST_F(GeneratorTest, PoissonArrivalsHaveRequestedMean) {
  WorkloadOptions options;
  options.interarrival_seconds = 5.0;
  options.arrival = WorkloadOptions::Arrival::kPoisson;
  WorkloadGenerator gen(&catalog_, templates_, options);
  Query last;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) last = gen.Next();
  EXPECT_NEAR(last.arrival_time / n, 5.0, 0.2);
}

TEST_F(GeneratorTest, ArrivalsNonDecreasing) {
  WorkloadOptions options;
  options.arrival = WorkloadOptions::Arrival::kPoisson;
  WorkloadGenerator gen(&catalog_, templates_, options);
  double last = -1;
  for (int i = 0; i < 1000; ++i) {
    const double t = gen.Next().arrival_time;
    EXPECT_GE(t, last);
    last = t;
  }
}

TEST_F(GeneratorTest, EveryQueryValidates) {
  WorkloadGenerator gen(&catalog_, templates_, {});
  for (int i = 0; i < 500; ++i) {
    const Query q = gen.Next();
    EXPECT_TRUE(q.Validate(catalog_).ok());
    EXPECT_GE(q.template_id, 0);
    EXPECT_LT(q.template_id, static_cast<int>(templates_.size()));
  }
}

TEST_F(GeneratorTest, DeterministicForSeed) {
  WorkloadOptions options;
  options.seed = 99;
  WorkloadGenerator a(&catalog_, templates_, options);
  WorkloadGenerator b(&catalog_, templates_, options);
  for (int i = 0; i < 200; ++i) {
    const Query qa = a.Next();
    const Query qb = b.Next();
    EXPECT_EQ(qa.template_id, qb.template_id);
    EXPECT_EQ(qa.result_bytes, qb.result_bytes);
  }
}

TEST_F(GeneratorTest, SkewMakesPopularityUnequal) {
  WorkloadOptions options;
  options.popularity_skew = 1.5;
  options.repeat_probability = 0.0;
  options.drift_period = 0;  // Freeze the ranking.
  WorkloadGenerator gen(&catalog_, templates_, options);
  std::map<int, int> counts;
  for (int i = 0; i < 20'000; ++i) ++counts[gen.Next().template_id];
  int max_count = 0, min_count = 1 << 30;
  for (const auto& [tmpl, count] : counts) {
    max_count = std::max(max_count, count);
    min_count = std::min(min_count, count);
  }
  EXPECT_GT(max_count, 4 * std::max(1, min_count));
}

TEST_F(GeneratorTest, ZeroSkewIsRoughlyUniformWithoutRepeats) {
  WorkloadOptions options;
  options.popularity_skew = 0.0;
  options.repeat_probability = 0.0;
  WorkloadGenerator gen(&catalog_, templates_, options);
  std::map<int, int> counts;
  const int n = 70'000;
  for (int i = 0; i < n; ++i) ++counts[gen.Next().template_id];
  for (const auto& [tmpl, count] : counts) {
    EXPECT_NEAR(count, n / 7, n / 70) << "template " << tmpl;
  }
}

TEST_F(GeneratorTest, RepeatProbabilityCreatesBursts) {
  WorkloadOptions options;
  options.repeat_probability = 0.9;
  WorkloadGenerator gen(&catalog_, templates_, options);
  int repeats = 0;
  int prev = gen.Next().template_id;
  const int n = 10'000;
  for (int i = 0; i < n; ++i) {
    const int tmpl = gen.Next().template_id;
    repeats += (tmpl == prev);
    prev = tmpl;
  }
  EXPECT_GT(repeats, n * 0.8);
}

TEST_F(GeneratorTest, DriftRotatesTheHotTemplate) {
  WorkloadOptions options;
  options.popularity_skew = 2.0;
  options.repeat_probability = 0.0;
  options.drift_period = 5'000;
  WorkloadGenerator gen(&catalog_, templates_, options);
  auto hottest_of_phase = [&]() {
    std::map<int, int> counts;
    for (int i = 0; i < 5'000; ++i) ++counts[gen.Next().template_id];
    int best = 0, best_count = -1;
    for (const auto& [tmpl, count] : counts) {
      if (count > best_count) {
        best = tmpl;
        best_count = count;
      }
    }
    return best;
  };
  const int first = hottest_of_phase();
  const int second = hottest_of_phase();
  EXPECT_NE(first, second);
}

TEST_F(GeneratorTest, SelectivityScaleNarrowsQueries) {
  WorkloadOptions narrow_opts;
  narrow_opts.selectivity_scale = 0.1;
  WorkloadOptions wide_opts;
  wide_opts.selectivity_scale = 1.0;
  WorkloadGenerator narrow(&catalog_, templates_, narrow_opts);
  WorkloadGenerator wide(&catalog_, templates_, wide_opts);
  double narrow_sum = 0, wide_sum = 0;
  for (int i = 0; i < 2000; ++i) {
    narrow_sum += narrow.Next().CombinedSelectivity();
    wide_sum += wide.Next().CombinedSelectivity();
  }
  EXPECT_LT(narrow_sum, wide_sum * 0.3);
}

TEST_F(GeneratorTest, PeekMatchesNextArrival) {
  WorkloadOptions options;
  options.interarrival_seconds = 7.0;
  WorkloadGenerator gen(&catalog_, templates_, options);
  EXPECT_DOUBLE_EQ(gen.PeekNextArrival(), 0.0);
  gen.Next();
  EXPECT_DOUBLE_EQ(gen.PeekNextArrival(), 7.0);
}

TEST_F(GeneratorTest, TenantIdStampedOnEveryQuery) {
  WorkloadOptions options;
  options.tenant_id = 3;
  WorkloadGenerator gen(&catalog_, templates_, options);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(gen.Next().tenant_id, 3u);
  }
  EXPECT_EQ(WorkloadGenerator(&catalog_, templates_, {}).Next().tenant_id,
            0u);
}

TEST_F(GeneratorTest, PopularityOffsetRotatesTheHotTemplate) {
  // Two tenants with the same seed but offsets 0 and 1 must disagree on
  // the hottest template (the mix rotated by one) while drawing the same
  // arrival schedule.
  auto hottest_with_offset = [&](size_t offset) {
    WorkloadOptions options;
    options.popularity_skew = 2.0;
    options.repeat_probability = 0.0;
    options.drift_period = 0;
    options.popularity_offset = offset;
    WorkloadGenerator gen(&catalog_, templates_, options);
    std::map<int, int> counts;
    for (int i = 0; i < 5'000; ++i) ++counts[gen.Next().template_id];
    int best = 0, best_count = -1;
    for (const auto& [tmpl, count] : counts) {
      if (count > best_count) {
        best = tmpl;
        best_count = count;
      }
    }
    return best;
  };
  EXPECT_NE(hottest_with_offset(0), hottest_with_offset(1));
}

}  // namespace
}  // namespace cloudcache
