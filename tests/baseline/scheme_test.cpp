#include "src/baseline/scheme.h"

#include <gtest/gtest.h>

#include "src/baseline/bypass_yield.h"
#include "tests/testing/fixtures.h"

namespace cloudcache {
namespace {

class SchemeTest : public ::testing::Test {
 protected:
  SchemeTest()
      : catalog_(testing::MakeTinyCatalog()),
        prices_(testing::MakeRoundPrices()) {
    const ColumnId date = *catalog_.FindColumn("fact.f_date");
    const ColumnId value = *catalog_.FindColumn("fact.f_value");
    indexes_ = {IndexKey(catalog_, {date}),
                IndexKey(catalog_, {date, value})};
  }

  Catalog catalog_;
  PriceList prices_;
  std::vector<StructureKey> indexes_;
};

TEST_F(SchemeTest, FactoryProducesAllFourSchemes) {
  for (SchemeKind kind :
       {SchemeKind::kBypassYield, SchemeKind::kEconCol,
        SchemeKind::kEconCheap, SchemeKind::kEconFast}) {
    std::unique_ptr<Scheme> scheme =
        MakeScheme(kind, &catalog_, &prices_, indexes_, 1);
    ASSERT_NE(scheme, nullptr);
    EXPECT_EQ(scheme->name(), SchemeKindToString(kind));
  }
}

TEST_F(SchemeTest, EconColConfigDisablesIndexesAndParallelism) {
  const EconScheme::Config config = EconScheme::EconColConfig();
  EXPECT_FALSE(config.enumerator.allow_indexes);
  EXPECT_FALSE(config.enumerator.allow_parallel);
  EXPECT_EQ(config.economy.selection, PlanSelection::kCheapest);
}

TEST_F(SchemeTest, EconFastSelectsFastest) {
  EXPECT_EQ(EconScheme::EconFastConfig().economy.selection,
            PlanSelection::kFastest);
  EXPECT_EQ(EconScheme::EconCheapConfig().economy.selection,
            PlanSelection::kCheapest);
}

TEST_F(SchemeTest, EconSchemeServesQueries) {
  EconScheme scheme(&catalog_, &prices_, indexes_,
                    EconScheme::EconCheapConfig());
  const Query q = testing::MakeTinyQuery(catalog_);
  const ServedQuery served = scheme.OnQuery(q, 0.0);
  EXPECT_TRUE(served.served);
  EXPECT_TRUE(served.has_budget_case);
  EXPECT_GT(served.execution.time_seconds, 0.0);
  EXPECT_GT(served.payment.micros(), 0);
}

TEST_F(SchemeTest, EconSchemeCreditMovesWithPayments) {
  EconScheme scheme(&catalog_, &prices_, indexes_,
                    EconScheme::EconCheapConfig());
  const Money before = scheme.credit();
  scheme.OnQuery(testing::MakeTinyQuery(catalog_), 0.0);
  EXPECT_GT(scheme.credit(), before);
}

TEST_F(SchemeTest, ChargeExpenditureDebitsAccount) {
  EconScheme scheme(&catalog_, &prices_, indexes_,
                    EconScheme::EconCheapConfig());
  const Money before = scheme.credit();
  scheme.ChargeExpenditure(Money::FromDollars(1), 1.0);
  EXPECT_EQ(scheme.credit(), before - Money::FromDollars(1));
}

TEST_F(SchemeTest, BypassSchemeIgnoresExpenditure) {
  BypassYieldScheme scheme(&catalog_, {});
  scheme.ChargeExpenditure(Money::FromDollars(1), 1.0);  // No-op.
  EXPECT_TRUE(scheme.credit().IsZero());
}

TEST_F(SchemeTest, DeterministicForFixedSeed) {
  auto run = [&](uint64_t seed) {
    EconScheme::Config config = EconScheme::EconCheapConfig();
    config.seed = seed;
    EconScheme scheme(&catalog_, &prices_, indexes_, std::move(config));
    Money total;
    for (int i = 0; i < 20; ++i) {
      total +=
          scheme.OnQuery(testing::MakeTinyQuery(catalog_, 0.05, i), i)
              .payment;
    }
    return total;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // Budget jitter differs.
}

TEST_F(SchemeTest, BudgetModelShapes) {
  Rng rng(1);
  for (auto shape :
       {BudgetModelOptions::Shape::kStep, BudgetModelOptions::Shape::kLinear,
        BudgetModelOptions::Shape::kConvex,
        BudgetModelOptions::Shape::kConcave}) {
    BudgetModelOptions options;
    options.shape = shape;
    options.jitter = 0.0;
    options.price_multiplier = 2.0;
    options.tmax_multiplier = 3.0;
    BudgetModel model(options);
    const std::unique_ptr<BudgetFunction> budget =
        model.Make(Money::FromDollars(10), 4.0, rng);
    EXPECT_DOUBLE_EQ(budget->t_max(), 12.0);
    // Non-increasing by construction.
    EXPECT_TRUE(budget->ValidateMonotone().ok());
    // Early values reflect the doubled reference price.
    EXPECT_GT(budget->At(0.01), Money::FromDollars(19.9));
  }
}

TEST_F(SchemeTest, BudgetJitterStraddlesReference) {
  BudgetModelOptions options;
  options.price_multiplier = 1.0;
  options.jitter = 0.3;
  BudgetModel model(options);
  Rng rng(5);
  int below = 0, above = 0;
  for (int i = 0; i < 200; ++i) {
    const std::unique_ptr<BudgetFunction> budget =
        model.Make(Money::FromDollars(10), 1.0, rng);
    (budget->At(0.5) < Money::FromDollars(10) ? below : above)++;
  }
  EXPECT_GT(below, 50);
  EXPECT_GT(above, 50);
}

TEST_F(SchemeTest, SchemeKindNames) {
  EXPECT_STREQ(SchemeKindToString(SchemeKind::kBypassYield), "bypass");
  EXPECT_STREQ(SchemeKindToString(SchemeKind::kEconCol), "econ-col");
  EXPECT_STREQ(SchemeKindToString(SchemeKind::kEconCheap), "econ-cheap");
  EXPECT_STREQ(SchemeKindToString(SchemeKind::kEconFast), "econ-fast");
}

TEST_F(SchemeTest, EconColNeverUsesIndexesOrExtraNodes) {
  EconScheme scheme(&catalog_, &prices_, indexes_,
                    EconScheme::EconColConfig());
  for (int i = 0; i < 50; ++i) {
    const ServedQuery served =
        scheme.OnQuery(testing::MakeTinyQuery(catalog_, 0.2, i), i);
    if (served.served) {
      EXPECT_NE(served.spec.access, PlanSpec::Access::kCacheIndex);
      EXPECT_EQ(served.spec.cpu_nodes, 1u);
    }
  }
  EXPECT_EQ(scheme.cache().extra_cpu_nodes(), 0u);
  EXPECT_TRUE(
      scheme.cache().ResidentsOfType(StructureType::kIndex).empty());
}

}  // namespace
}  // namespace cloudcache
