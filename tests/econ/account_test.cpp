#include "src/econ/account.h"

#include <gtest/gtest.h>

namespace cloudcache {
namespace {

TEST(CloudAccountTest, StartsAtInitialCredit) {
  CloudAccount account(Money::FromDollars(10));
  EXPECT_EQ(account.credit(), Money::FromDollars(10));
  EXPECT_EQ(account.initial_credit(), Money::FromDollars(10));
  EXPECT_TRUE(account.total_revenue().IsZero());
}

TEST(CloudAccountTest, RevenueIncreasesCredit) {
  CloudAccount account{Money{}};
  account.DepositRevenue(Money::FromDollars(3), 1.0);
  account.DepositRevenue(Money::FromDollars(2), 2.0);
  EXPECT_EQ(account.credit(), Money::FromDollars(5));
  EXPECT_EQ(account.total_revenue(), Money::FromDollars(5));
}

TEST(CloudAccountTest, ExpenditureCanOverdraw) {
  CloudAccount account(Money::FromDollars(1));
  account.ChargeExpenditure(Money::FromDollars(4), 1.0);
  EXPECT_EQ(account.credit(), Money::FromDollars(-3));
  EXPECT_EQ(account.total_expenditure(), Money::FromDollars(4));
}

TEST(CloudAccountTest, InvestmentRefusesOverdraft) {
  CloudAccount account(Money::FromDollars(5));
  EXPECT_EQ(account.WithdrawInvestment(Money::FromDollars(6), 1.0).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(account.credit(), Money::FromDollars(5));
  EXPECT_TRUE(account.WithdrawInvestment(Money::FromDollars(5), 2.0).ok());
  EXPECT_TRUE(account.credit().IsZero());
  EXPECT_EQ(account.total_investment(), Money::FromDollars(5));
}

TEST(CloudAccountTest, BooksBalance) {
  CloudAccount account(Money::FromDollars(100));
  account.DepositRevenue(Money::FromDollars(37), 1.0);
  account.ChargeExpenditure(Money::FromDollars(12), 2.0);
  ASSERT_TRUE(account.WithdrawInvestment(Money::FromDollars(25), 3.0).ok());
  // credit == initial + revenue - expenditure - investment.
  EXPECT_EQ(account.credit(), account.initial_credit() +
                                  account.total_revenue() -
                                  account.total_expenditure() -
                                  account.total_investment());
  EXPECT_EQ(account.credit(), Money::FromDollars(100 + 37 - 12 - 25));
}

TEST(CloudAccountTest, HistoryRecordsEveryMutation) {
  CloudAccount account{Money{}};
  account.DepositRevenue(Money::FromDollars(1), 1.0);
  account.ChargeExpenditure(Money::FromDollars(1), 2.0);
  ASSERT_TRUE(account.WithdrawInvestment(Money(), 3.0).ok());
  EXPECT_EQ(account.history().size(), 3u);
  EXPECT_EQ(account.history().times()[2], 3.0);
  EXPECT_EQ(account.history().Last(), 0.0);
}

}  // namespace
}  // namespace cloudcache
