# Empty dependencies file for cloudcache_util_tests.
# This may be replaced when dependencies are built.
