# Empty dependencies file for cloudcache_integration_tests.
# This may be replaced when dependencies are built.
