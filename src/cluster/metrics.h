#pragma once

#include <cstdint>
#include <vector>

#include "src/util/money.h"

namespace cloudcache {

/// Per-node slice of a cluster run: what one cache node served and earned.
/// Node `ordinal` is the rent ordinal the node was created with — ordinals
/// are never reused, so a slice identifies a node across scale events.
struct NodeMetrics {
  uint32_t ordinal = 0;

  // --- Traffic routed to this node.
  uint64_t queries = 0;
  uint64_t served = 0;
  uint64_t served_in_cache = 0;

  // --- Economic identity of the node's own economy.
  Money revenue;
  Money profit;
  Money final_credit;

  // --- Final cache shape.
  uint64_t final_resident_bytes = 0;

  /// Simulation second the node was rented (0 for initial nodes).
  double rented_at_seconds = 0;
};

/// Cluster shape of a run (SimMetrics::cluster). `active` stays false on
/// the single-node path, where every other field keeps its zero default —
/// so classic runs remain bit-identical without ever consulting the
/// cluster layer. Defined here, in the cluster layer, so the sim layer
/// depends on cluster and never the other way around.
struct ClusterMetrics {
  bool active = false;
  uint32_t final_nodes = 0;
  uint32_t peak_nodes = 0;

  // --- Elasticity events.
  uint64_t scale_out_events = 0;
  uint64_t scale_in_events = 0;
  /// Structures moved to a surviving node during scale-in, and survivors
  /// the destination could not afford (or already held).
  uint64_t migrations = 0;
  uint64_t migration_failures = 0;

  /// Metered dollars spent renting cluster nodes beyond the always-on
  /// coordinator (filled by the simulator, also included in
  /// operating_cost.cpu_dollars).
  double node_rent_dollars = 0;

  /// Live nodes at run end (released nodes' traffic stays in the
  /// aggregates; their slices are gone with the node).
  std::vector<NodeMetrics> nodes;
};

}  // namespace cloudcache
