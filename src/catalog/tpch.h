#pragma once

#include <cstdint>

#include "src/catalog/schema.h"

namespace cloudcache {

/// Builds the eight-table TPC-H schema at the given scale factor.
///
/// The paper's evaluation drives the cache "under a TPCH-based workload …
/// against a 2.5 TB back-end database" (Section VII-A). Scale factor 1 of
/// this schema is close to 1 GB of raw column data, so SF ~= 2500 yields the
/// paper's 2.5 TB. Row counts follow the TPC-H specification; widths are
/// the natural storage widths of the specified types with spec-average
/// varchar lengths.
Catalog MakeTpchCatalog(double scale_factor);

/// Scale factor whose MakeTpchCatalog() is closest to `target_bytes` of raw
/// data (used to hit "2.5 TB" exactly regardless of width rounding).
double TpchScaleForBytes(uint64_t target_bytes);

/// Convenience: the paper's 2.5 TB backend.
Catalog MakePaperTpchCatalog();

}  // namespace cloudcache
