// cloudcache_sim — command-line front end to the simulator.
//
// Runs one scheme against one workload configuration and prints the full
// metric report, or — with --sweep — the whole paper grid (four schemes x
// four inter-arrival times) fanned out over a thread pool; the building
// block for scripted parameter studies beyond the canned bench binaries.
//
// Exit codes: 0 = success; 1 = run or restore error; 2 = flag errors;
// 3 = deliberate crash injection (--crash-after fired; snapshot on disk).
//
// Examples:
//   cloudcache_sim --scheme=econ-cheap --queries=100000 --interarrival=10
//   cloudcache_sim --scheme=bypass --scale-tb=1.0 --arrival=poisson
//   cloudcache_sim --scheme=econ-fast --catalog=sdss --csv=credit.csv
//   cloudcache_sim --sweep --queries=40000 --threads=8   (Fig. 4/5 grid)
//   cloudcache_sim --tenants=4 --tenant-skew=1.0   (multi-tenant economy)
//   cloudcache_sim --nodes=2 --elastic=on          (elastic cache cluster)
//   cloudcache_sim --trace-out=stream.csv --queries=50000   (record only)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/registry.h"
#include "src/obs/stage_profile.h"
#include "src/obs/trace.h"
#include "src/sim/experiment.h"
#include "src/sim/report.h"
#include "src/sim/sweep.h"
#include "src/util/logging.h"
#include "src/util/status.h"
#include "src/workload/trace.h"
#include "tools/experiment_flags.h"

namespace {

using namespace cloudcache;
using tools::ExperimentFlags;
using tools::FlagParse;
using tools::FlagValue;

struct Args {
  ExperimentFlags exp;    // The shared experiment surface.
  bool sweep = false;     // Run the full scheme x interarrival grid.
  unsigned threads = 0;   // Sweep workers; 0 = hardware concurrency.
  std::string csv;        // Credit/cost timeline CSV.
  std::string trace_out;  // Record the workload instead of simulating.
  uint64_t checkpoint_every = 0;  // Snapshot cadence in queries (0 = off).
  std::string checkpoint_path;    // Snapshot file.
  std::string restore;            // "", "auto", or "hard".
  uint64_t crash_after = 0;       // Crash-injection point (0 = off).
  std::string metrics_json;       // Machine-readable SimMetrics export.
  std::string trace;              // Economic event trace (JSONL).
  bool profile_stages = false;    // Decision-loop stage timing table.
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [flags]\n"
      "%s"
      "  --sweep               run all 4 schemes x 4 paper intervals\n"
      "  --threads=N           sweep worker threads (0 = all cores); with\n"
      "                        --checkpoint-path, intra-run workers for\n"
      "                        clustered runs (windowed driver)\n"
      "  --csv=PATH            write credit/cost timeline CSV\n"
      "  --trace-out=PATH      write the workload trace and exit\n"
      "  --checkpoint-every=N  snapshot the full economy every N queries\n"
      "  --checkpoint-path=P   snapshot file (required by the flags below)\n"
      "  --restore[=auto]      resume from the snapshot; bare --restore\n"
      "                        fails loudly on a missing/corrupt/mismatched\n"
      "                        snapshot, =auto falls back to a fresh run\n"
      "  --crash-after=K       crash injection: abort without finalizing\n"
      "                        after K queries (exit 3; restore resumes)\n"
      "  --metrics-json=PATH   write the final metrics as JSON (same names\n"
      "                        as the Prometheus exposition)\n"
      "  --trace=PATH          write the economic event trace (JSONL);\n"
      "                        single run, serial driver only\n"
      "  --profile-stages      time the decision-loop stages and print a\n"
      "                        per-stage table to stderr at the end\n",
      argv0, tools::ExperimentFlagsUsage());
}

std::optional<Args> Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const FlagParse shared = tools::ParseExperimentFlag(argv[i], &args.exp);
    if (shared == FlagParse::kConsumed) continue;
    if (shared == FlagParse::kError) return std::nullopt;
    std::string v;
    if (std::strcmp(argv[i], "--sweep") == 0) args.sweep = true;
    else if (FlagValue(argv[i], "--threads", &v))
      args.threads =
          static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    else if (FlagValue(argv[i], "--csv", &v)) args.csv = v;
    else if (FlagValue(argv[i], "--trace-out", &v)) args.trace_out = v;
    else if (FlagValue(argv[i], "--checkpoint-every", &v))
      args.checkpoint_every = std::stoull(v);
    else if (FlagValue(argv[i], "--checkpoint-path", &v))
      args.checkpoint_path = v;
    else if (std::strcmp(argv[i], "--restore") == 0) args.restore = "hard";
    else if (FlagValue(argv[i], "--restore", &v)) args.restore = v;
    else if (FlagValue(argv[i], "--crash-after", &v))
      args.crash_after = std::stoull(v);
    else if (FlagValue(argv[i], "--metrics-json", &v))
      args.metrics_json = v;
    else if (FlagValue(argv[i], "--trace", &v)) args.trace = v;
    else if (std::strcmp(argv[i], "--profile-stages") == 0)
      args.profile_stages = true;
    else {
      Usage(argv[0]);
      return std::nullopt;
    }
  }
  return args;
}

/// Cross-flag validation, as Status so every rejection carries an
/// actionable message and a non-zero exit (kInvalidArgument throughout;
/// config-mismatch at restore time surfaces later as kFailedPrecondition
/// from the snapshot's config hash).
Status ValidateArgs(const Args& args) {
  CLOUDCACHE_RETURN_IF_ERROR(tools::ValidateExperimentFlags(args.exp));
  if (!args.restore.empty() && args.restore != "auto" &&
      args.restore != "hard") {
    return Status::InvalidArgument(
        "--restore wants no value (hard), =auto, or =hard; got '" +
        args.restore + "'");
  }
  const bool checkpointing = args.checkpoint_every > 0 ||
                             !args.restore.empty() || args.crash_after > 0;
  if (checkpointing && args.checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "--checkpoint-every/--restore/--crash-after need a snapshot file; "
        "add --checkpoint-path=PATH");
  }
  if (!args.checkpoint_path.empty() && args.sweep) {
    return Status::InvalidArgument(
        "--sweep runs a grid of cells that would clobber one snapshot "
        "file; checkpoint/restore applies to single runs only");
  }
  if (!args.checkpoint_path.empty() && !args.trace_out.empty()) {
    return Status::InvalidArgument(
        "--trace-out records the workload without simulating, so there is "
        "no economy state to checkpoint or restore");
  }
  if (!args.metrics_json.empty() && args.sweep) {
    return Status::InvalidArgument(
        "--metrics-json exports one run's metrics; --sweep produces a "
        "grid — run the cells individually");
  }
  if (!args.metrics_json.empty() && !args.trace_out.empty()) {
    return Status::InvalidArgument(
        "--trace-out records the workload without simulating, so there "
        "are no metrics to export");
  }
  if (!args.trace.empty()) {
    if (args.sweep) {
      return Status::InvalidArgument(
          "--trace records one run's events; --sweep runs a grid");
    }
    if (!args.trace_out.empty()) {
      return Status::InvalidArgument(
          "--trace records economic events during simulation; --trace-out "
          "records the workload without simulating — pick one");
    }
    if (args.threads > 0) {
      return Status::InvalidArgument(
          "--trace needs the serial driver for deterministic record "
          "order; drop --threads");
    }
  }
  if (args.crash_after > 0 && args.crash_after >= args.exp.queries) {
    return Status::InvalidArgument(
        "--crash-after=" + std::to_string(args.crash_after) +
        " never fires: the run finalizes at --queries=" +
        std::to_string(args.exp.queries) +
        " (crash injection stops strictly before the final query)");
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Args> parsed = Parse(argc, argv);
  if (!parsed) return 2;
  const Args& args = *parsed;
  const Status valid = ValidateArgs(args);
  if (!valid.ok()) {
    std::fprintf(stderr, "%s\n", valid.ToString().c_str());
    return 2;
  }

  Catalog catalog;
  std::vector<QueryTemplate> templates;
  const Status made =
      tools::MakeExperimentCatalog(args.exp, &catalog, &templates);
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.ToString().c_str());
    return 2;
  }

  Result<ExperimentConfig> built =
      tools::MakeExperimentFlagsConfig(args.exp);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 2;
  }
  ExperimentConfig config = std::move(built).value();

  if (args.profile_stages) {
    obs::StageProfiler::Instance().Enable(true);
  }
  std::unique_ptr<obs::EventTracer> tracer;
  if (!args.trace.empty()) {
    Result<std::unique_ptr<obs::EventTracer>> opened =
        obs::EventTracer::Open(args.trace);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    tracer = std::move(opened).value();
    config.tracer = tracer.get();
  }

  if (!args.trace_out.empty()) {
    Result<std::vector<ResolvedTemplate>> resolved =
        ResolveTemplates(catalog, templates);
    if (!resolved.ok()) {
      std::fprintf(stderr, "%s\n", resolved.status().ToString().c_str());
      return 1;
    }
    WorkloadGenerator generator(&catalog, *resolved, config.workload);
    std::vector<Query> trace;
    trace.reserve(args.exp.queries);
    for (uint64_t i = 0; i < args.exp.queries; ++i) {
      trace.push_back(generator.Next());
    }
    const Status status = TraceWriter::Write(args.trace_out, trace);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu queries to %s\n", trace.size(),
                args.trace_out.c_str());
    return 0;
  }

  if (args.sweep) {
    // The whole paper grid (Figs. 4-5) through the parallel sweep engine.
    if (args.exp.scheme_set || args.exp.interarrival_set) {
      std::fprintf(stderr,
                   "note: --sweep runs all 4 schemes x 4 paper intervals; "
                   "--scheme/--interarrival are ignored\n");
    }
    if (!args.csv.empty()) {
      std::fprintf(stderr,
                   "note: --csv writes the single-run timeline only; "
                   "ignored under --sweep\n");
    }
    SweepSpec spec;  // Defaults: paper schemes x paper interarrivals.
    spec.seed_policy = SweepSpec::SeedPolicy::kFixed;
    spec.base_seed = args.exp.seed;
    spec.base = config;
    const std::vector<std::vector<SimMetrics>> rows =
        GroupRowsByInterarrival(
            RunSweep(catalog, templates, spec, args.threads, LogCellDone),
            spec.interarrivals.size());
    std::puts("Operating cost (dollars) by inter-arrival time");
    std::fputs(
        MakeOperatingCostTable(spec.interarrivals, rows).ToAscii().c_str(),
        stdout);
    std::puts("");
    std::puts("Average response time (seconds) by inter-arrival time");
    std::fputs(
        MakeResponseTimeTable(spec.interarrivals, rows).ToAscii().c_str(),
        stdout);
    if (args.profile_stages) {
      std::fputs(obs::StageProfiler::Instance().FormatTable().c_str(),
                 stderr);
    }
    return 0;
  }

  SimMetrics metrics;
  if (!args.checkpoint_path.empty()) {
    // Checkpoint/restore run. A kFixed one-cell sweep leaves the config
    // untouched, so driving RunExperimentChecked directly is the sweep
    // path bit for bit — plus snapshots, crash injection, and restore.
    config.sim.checkpoint.every = args.checkpoint_every;
    config.sim.checkpoint.path = args.checkpoint_path;
    config.sim.checkpoint.crash_after = args.crash_after;
    config.sim.parallel_threads = args.threads;
    if (args.restore == "auto") {
      config.sim.checkpoint.restore = CheckpointOptions::Restore::kAuto;
    } else if (args.restore == "hard") {
      config.sim.checkpoint.restore = CheckpointOptions::Restore::kHard;
    }
    Result<SimMetrics> run = RunExperimentChecked(catalog, templates, config);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      // Crash injection is a deliberate stop (snapshot on disk, no final
      // report), distinct from a genuine failure.
      return run.status().code() == StatusCode::kResourceExhausted ? 3 : 1;
    }
    metrics = std::move(run).value();
  } else {
    // One cell of the sweep engine: same code path as the grid runs.
    SweepSpec spec;
    spec.schemes = {config.scheme};
    spec.interarrivals = {args.exp.interarrival};
    spec.seed_policy = SweepSpec::SeedPolicy::kFixed;
    spec.base_seed = args.exp.seed;
    spec.base = config;
    std::vector<SweepResult> results =
        RunSweep(catalog, templates, spec, /*n_threads=*/1);
    metrics = std::move(results[0].metrics);
  }
  std::fputs(FormatRunDetail(metrics).c_str(), stdout);
  if (metrics.tenants.size() > 1) {
    std::printf("\nPer-tenant breakdown (%zu tenants, traffic skew %g%s%s)\n",
                metrics.tenants.size(), args.exp.tenant_skew,
                args.exp.fair_eviction ? ", fair-eviction" : "",
                args.exp.admission ? ", admission" : "");
    std::fputs(MakeTenantTable(metrics).ToAscii().c_str(), stdout);
    std::fputs(FormatFairness(metrics).c_str(), stdout);
  }
  if (metrics.cluster.active) {
    std::printf("\nPer-node breakdown (%s)\n",
                args.exp.elastic ? "elastic" : "fixed fleet");
    std::fputs(MakeNodeTable(metrics).ToAscii().c_str(), stdout);
    std::fputs(FormatCluster(metrics).c_str(), stdout);
  }

  if (!args.csv.empty()) {
    TableWriter timeline({"time_s", "cumulative_cost_$", "credit_$"});
    const TimeSeries cost = metrics.cost_over_time.Downsample(2000);
    const TimeSeries credit = metrics.credit_over_time.Downsample(2000);
    for (size_t i = 0; i < cost.size() && i < credit.size(); ++i) {
      CLOUDCACHE_CHECK(
          timeline
              .AddNumericRow({cost.times()[i], cost.values()[i],
                              credit.values()[i]},
                             4)
              .ok());
    }
    const Status status = timeline.WriteCsvFile(args.csv);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("timeline written to %s\n", args.csv.c_str());
  }

  if (tracer != nullptr) {
    tracer->Flush();
    std::printf("event trace written to %s\n", args.trace.c_str());
  }
  if (!args.metrics_json.empty()) {
    obs::Registry registry;
    obs::FillFromSimMetrics(metrics, &registry);
    std::ofstream out(args.metrics_json,
                      std::ios::binary | std::ios::trunc);
    out << registry.RenderJson();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", args.metrics_json.c_str());
      return 1;
    }
    out.close();
    std::printf("metrics written to %s\n", args.metrics_json.c_str());
  }
  if (args.profile_stages) {
    std::fputs(obs::StageProfiler::Instance().FormatTable().c_str(),
               stderr);
  }
  return 0;
}
