#include "src/util/logging.h"

#include <gtest/gtest.h>

namespace cloudcache {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, DefaultSuppressesInfo) {
  SetLogLevel(LogLevel::kWarning);
  testing::internal::CaptureStderr();
  CLOUDCACHE_LOG(kInfo) << "should not appear";
  CLOUDCACHE_LOG(kWarning) << "should appear";
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("should not appear"), std::string::npos);
  EXPECT_NE(err.find("should appear"), std::string::npos);
}

TEST_F(LoggingTest, MessageCarriesLevelAndLocation) {
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  CLOUDCACHE_LOG(kError) << "boom " << 42;
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[ERROR"), std::string::npos);
  EXPECT_NE(err.find("logging_test.cpp"), std::string::npos);
  EXPECT_NE(err.find("boom 42"), std::string::npos);
}

TEST_F(LoggingTest, ChecksPassSilently) {
  testing::internal::CaptureStderr();
  CLOUDCACHE_CHECK(1 + 1 == 2) << "never shown";
  CLOUDCACHE_CHECK_GE(2, 1);
  CLOUDCACHE_CHECK_LT(1, 2);
  CLOUDCACHE_CHECK_EQ(3, 3);
  CLOUDCACHE_CHECK_NE(3, 4);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, FailedCheckAborts) {
  EXPECT_DEATH({ CLOUDCACHE_CHECK(false) << "fatal detail"; },
               "Check failed: false");
}

TEST_F(LoggingTest, FailedComparisonCheckAborts) {
  EXPECT_DEATH({ CLOUDCACHE_CHECK_EQ(1, 2); }, "Check failed");
}

}  // namespace
}  // namespace cloudcache
