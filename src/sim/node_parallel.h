#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cost/cost_model.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/util/money.h"
#include "src/util/thread_pool.h"
#include "src/workload/generator.h"

namespace cloudcache {

/// Windowed parallel driver for cluster schemes: the intra-run analogue of
/// RunSweep's across-run parallelism.
///
/// Between scale events a cluster's nodes are fully independent economies
/// — PR 5 made every ledger, cache, and RNG node-local — so the only
/// serial couplings in the classic driver are (a) routing, which reads
/// every node's residency, and (b) the shared rent meter. This driver
/// removes both with a windowed discipline:
///
///   1. Draw one window of queries (the elasticity check interval) and
///      route ALL of them against the window-start residencies — nothing
///      has served yet, so every route sees the same frozen snapshot no
///      matter how the work is later scheduled.
///   2. Run each node's slice as one ThreadPool task. A task touches only
///      its own node: its scheme, its traffic counters, its rent books
///      (rent is metered per node on the node's own resident bytes over
///      the node's own arrival gaps, charged to the node's account — the
///      same pending-fraction arithmetic as Simulator::MeterRent).
///   3. Merge per-query records back in global arrival order — metrics,
///      quantile sketches, and timelines accumulate in that one fixed
///      order — then close the window serially: sync every node's rent to
///      the window-close instant and run the elasticity controller
///      exactly where the serial path would have (full check intervals).
///
/// Determinism: the window partition is a pure function of (stream,
/// window-start residencies); each slice runs in arrival order within its
/// task; the merge and window close are serial in fixed order. No step
/// depends on thread scheduling, so results are bit-identical for ANY
/// worker count — the same discipline that makes RunSweep safe.
///
/// Equivalence pins (tests/integration/parallel_driver_test.cpp):
///   - any two worker counts produce bit-identical SimMetrics;
///   - a one-node cluster is bit-identical to the classic serial
///     Simulator driving the plain scheme: routing is trivial, the one
///     node's rent books ARE the global books, and every merge step
///     replays the classic per-query sequence in the same order.
/// Multi-node runs follow the windowed discipline by definition (routing
/// against window-start snapshots, per-node rent), which the serial
/// classic path — routing every query against live mid-window residencies
/// — intentionally does not; the two are documented as different
/// schedules of the same economy, not bit-equal.
class ParallelNodeSimulator {
 public:
  /// Drives `workload` (single stream) through `cluster` with
  /// `options.parallel_threads` workers (clamped to at least one).
  ParallelNodeSimulator(const Catalog* catalog, ClusterScheme* cluster,
                        WorkloadGenerator* workload,
                        SimulatorOptions options);

  /// Runs the configured number of queries and returns the metrics.
  /// Asserts on checkpoint I/O failures and crash injection.
  SimMetrics Run();

  /// Checkpoint-aware run (see Simulator::RunChecked). This driver's only
  /// deterministic boundaries are window closes, so snapshots land at the
  /// first window close at or past each multiple of
  /// CheckpointOptions::every — full windows only, so a resumed run's
  /// window partition is identical to the uninterrupted run's.
  Result<SimMetrics> RunChecked();

  /// Restores mid-run state from a snapshot written by a prior windowed
  /// checkpointed run; must be called before RunChecked on a freshly
  /// constructed driver + cluster built from the identical configuration.
  Status RestoreFrom(const persist::SnapshotReader& reader);

 private:
  /// One query's full outcome, filled by the owning node's slice task and
  /// merged serially in global arrival order.
  struct QueryRecord {
    Query query;
    uint64_t index = 0;  // Global arrival index.
    size_t node = 0;     // Routed node (window-start snapshot).
    ServedQuery served;
    // Rent accrued at this arrival on the serving node (already charged
    // to its account by the task; merged into the metered breakdown in
    // arrival order).
    double rent_disk_dollars = 0;
    double rent_reservation_dollars = 0;
    double rent_node_dollars = 0;  // Rented-node surcharge portion.
    // Metered execution + build bill (Simulator::MeterQuery arithmetic).
    ResourceBreakdown bill;
    uint64_t wan_bytes = 0;
    // Node credit after this query settled — lets the merge reconstruct
    // the fleet-wide credit timeline at any global index.
    Money credit_after;
  };

  /// Driver-side per-node rent meter and credit mirror.
  struct NodeBooks {
    /// Sub-micro-dollar rent awaiting a chargeable rounding (per node;
    /// the classic driver keeps one global accumulator).
    double pending_rent_dollars = 0;
    /// The node's rent is integrated up to here.
    SimTime metered_until = 0;
    /// The node's credit after its last merged effect.
    Money credit;
  };

  /// Components of one rent accrual, for the metered breakdown.
  struct RentSlice {
    double disk_dollars = 0;
    double reservation_dollars = 0;
    double surcharge_dollars = 0;  // Included in reservation_dollars.
  };

  /// Serves node `index`'s slice of the current window, in arrival order.
  /// Runs on a pool worker; touches only node-`index` state.
  void ServeSlice(size_t index, QueryRecord* const* records, size_t count);

  /// Prices node `index`'s rent over [books.metered_until, now], advances
  /// the meter, and charges the node's account (pending-fraction
  /// discipline). Called from slice tasks (distinct nodes only) and the
  /// serial window-close sync.
  RentSlice AccrueNodeRent(size_t index, SimTime now);

  /// Books one record into the run metrics. Serial, global arrival order.
  void MergeRecord(const QueryRecord& rec, SimMetrics* metrics);

  /// Meters every node's rent up to the window-close instant (idle nodes
  /// pay for the whole window here) and refreshes the credit mirrors.
  void SyncRentTo(SimTime close, SimMetrics* metrics);

  /// Re-aligns the per-node books and metered models after a scale event.
  void ApplyFleetChange(const ClusterScheme::WindowEnd& end, SimTime close);

  /// End-of-run residual rent, per node (Simulator::FlushResidualRent).
  void FlushResidualRent();

  /// Checkpoint hooks (Simulator's counterparts, with window-granular
  /// boundaries). `processed`/`previous` bracket the window just merged.
  Status MaybeCheckpointAndCrash(uint64_t processed, uint64_t previous,
                                 const SimMetrics& metrics);
  Status WriteSnapshot(uint64_t processed, const SimMetrics& metrics) const;

  const Catalog* catalog_;
  ClusterScheme* cluster_;
  WorkloadGenerator* workload_;
  SimulatorOptions options_;
  ThreadPool pool_;
  std::vector<NodeBooks> books_;
  /// One metered CostModel per node, so concurrent slice tasks never
  /// share estimator scratch.
  std::vector<std::unique_ptr<CostModel>> metered_models_;
  SimTime last_close_ = 0;
  /// Restore bookkeeping (see Simulator).
  uint64_t start_processed_ = 0;
  bool restored_ = false;
  SimMetrics restored_metrics_;
};

}  // namespace cloudcache
