#include "src/catalog/tpch.h"

#include <cmath>

#include "src/util/logging.h"
#include "src/util/units.h"

namespace cloudcache {

namespace {

Column Col(const char* name, DataType type, double distinct_fraction = 1.0,
           uint32_t width = 0) {
  Column col;
  col.name = name;
  col.type = type;
  col.width_bytes = width ? width : DefaultWidth(type);
  col.distinct_fraction = distinct_fraction;
  return col;
}

uint64_t Rows(double base, double scale_factor) {
  const double rows = base * scale_factor;
  return rows < 1.0 ? 1 : static_cast<uint64_t>(std::llround(rows));
}

}  // namespace

Catalog MakeTpchCatalog(double scale_factor) {
  CLOUDCACHE_CHECK_GT(scale_factor, 0.0);
  Catalog catalog;

  // Fixed-size dimension tables (independent of SF, per the spec).
  {
    Table region;
    region.name = "region";
    region.row_count = 5;
    region.columns = {
        Col("r_regionkey", DataType::kInt32, 1.0),
        Col("r_name", DataType::kChar, 1.0, 25),
        Col("r_comment", DataType::kVarchar, 1.0, 80),
    };
    CLOUDCACHE_CHECK(catalog.AddTable(std::move(region)).ok());
  }
  {
    Table nation;
    nation.name = "nation";
    nation.row_count = 25;
    nation.columns = {
        Col("n_nationkey", DataType::kInt32, 1.0),
        Col("n_name", DataType::kChar, 1.0, 25),
        Col("n_regionkey", DataType::kInt32, 0.2),
        Col("n_comment", DataType::kVarchar, 1.0, 80),
    };
    CLOUDCACHE_CHECK(catalog.AddTable(std::move(nation)).ok());
  }
  {
    Table supplier;
    supplier.name = "supplier";
    supplier.row_count = Rows(10'000, scale_factor);
    supplier.columns = {
        Col("s_suppkey", DataType::kInt64, 1.0),
        Col("s_name", DataType::kChar, 1.0, 25),
        Col("s_address", DataType::kVarchar, 1.0, 25),
        Col("s_nationkey", DataType::kInt32, 25.0 / 10'000),
        Col("s_phone", DataType::kChar, 1.0, 15),
        Col("s_acctbal", DataType::kDecimal, 0.9),
        Col("s_comment", DataType::kVarchar, 1.0, 63),
    };
    CLOUDCACHE_CHECK(catalog.AddTable(std::move(supplier)).ok());
  }
  {
    Table customer;
    customer.name = "customer";
    customer.row_count = Rows(150'000, scale_factor);
    customer.columns = {
        Col("c_custkey", DataType::kInt64, 1.0),
        Col("c_name", DataType::kVarchar, 1.0, 18),
        Col("c_address", DataType::kVarchar, 1.0, 25),
        Col("c_nationkey", DataType::kInt32, 25.0 / 150'000),
        Col("c_phone", DataType::kChar, 1.0, 15),
        Col("c_acctbal", DataType::kDecimal, 0.9),
        Col("c_mktsegment", DataType::kChar, 5.0 / 150'000, 10),
        Col("c_comment", DataType::kVarchar, 1.0, 73),
    };
    CLOUDCACHE_CHECK(catalog.AddTable(std::move(customer)).ok());
  }
  {
    Table part;
    part.name = "part";
    part.row_count = Rows(200'000, scale_factor);
    part.columns = {
        Col("p_partkey", DataType::kInt64, 1.0),
        Col("p_name", DataType::kVarchar, 1.0, 33),
        Col("p_mfgr", DataType::kChar, 5.0 / 200'000, 25),
        Col("p_brand", DataType::kChar, 25.0 / 200'000, 10),
        Col("p_type", DataType::kVarchar, 150.0 / 200'000, 21),
        Col("p_size", DataType::kInt32, 50.0 / 200'000),
        Col("p_container", DataType::kChar, 40.0 / 200'000, 10),
        Col("p_retailprice", DataType::kDecimal, 0.1),
        Col("p_comment", DataType::kVarchar, 1.0, 14),
    };
    CLOUDCACHE_CHECK(catalog.AddTable(std::move(part)).ok());
  }
  {
    Table partsupp;
    partsupp.name = "partsupp";
    partsupp.row_count = Rows(800'000, scale_factor);
    partsupp.columns = {
        Col("ps_partkey", DataType::kInt64, 0.25),
        Col("ps_suppkey", DataType::kInt64, 0.0125),
        Col("ps_availqty", DataType::kInt32, 10'000.0 / 800'000),
        Col("ps_supplycost", DataType::kDecimal, 0.1),
        Col("ps_comment", DataType::kVarchar, 1.0, 124),
    };
    CLOUDCACHE_CHECK(catalog.AddTable(std::move(partsupp)).ok());
  }
  {
    Table orders;
    orders.name = "orders";
    orders.row_count = Rows(1'500'000, scale_factor);
    orders.columns = {
        Col("o_orderkey", DataType::kInt64, 1.0),
        Col("o_custkey", DataType::kInt64, 0.1),
        Col("o_orderstatus", DataType::kChar, 3.0 / 1'500'000, 1),
        Col("o_totalprice", DataType::kDecimal, 0.9),
        Col("o_orderdate", DataType::kDate, 2'406.0 / 1'500'000),
        Col("o_orderpriority", DataType::kChar, 5.0 / 1'500'000, 15),
        Col("o_clerk", DataType::kChar, 0.00067, 15),
        Col("o_shippriority", DataType::kInt32, 1.0 / 1'500'000),
        Col("o_comment", DataType::kVarchar, 1.0, 49),
    };
    CLOUDCACHE_CHECK(catalog.AddTable(std::move(orders)).ok());
  }
  {
    Table lineitem;
    lineitem.name = "lineitem";
    lineitem.row_count = Rows(6'000'000, scale_factor);
    lineitem.columns = {
        Col("l_orderkey", DataType::kInt64, 0.25),
        Col("l_partkey", DataType::kInt64, 200'000.0 / 6'000'000),
        Col("l_suppkey", DataType::kInt64, 10'000.0 / 6'000'000),
        Col("l_linenumber", DataType::kInt32, 7.0 / 6'000'000),
        Col("l_quantity", DataType::kDecimal, 50.0 / 6'000'000),
        Col("l_extendedprice", DataType::kDecimal, 0.5),
        Col("l_discount", DataType::kDecimal, 11.0 / 6'000'000),
        Col("l_tax", DataType::kDecimal, 9.0 / 6'000'000),
        Col("l_returnflag", DataType::kChar, 3.0 / 6'000'000, 1),
        Col("l_linestatus", DataType::kChar, 2.0 / 6'000'000, 1),
        Col("l_shipdate", DataType::kDate, 2'526.0 / 6'000'000),
        Col("l_commitdate", DataType::kDate, 2'466.0 / 6'000'000),
        Col("l_receiptdate", DataType::kDate, 2'554.0 / 6'000'000),
        Col("l_shipinstruct", DataType::kChar, 4.0 / 6'000'000, 25),
        Col("l_shipmode", DataType::kChar, 7.0 / 6'000'000, 10),
        Col("l_comment", DataType::kVarchar, 1.0, 27),
    };
    CLOUDCACHE_CHECK(catalog.AddTable(std::move(lineitem)).ok());
  }
  return catalog;
}

double TpchScaleForBytes(uint64_t target_bytes) {
  // The schema is linear in SF apart from the two fixed dimension tables,
  // which are negligible; one probe at SF=1 gives the slope.
  const uint64_t bytes_at_sf1 = MakeTpchCatalog(1.0).TotalBytes();
  return static_cast<double>(target_bytes) /
         static_cast<double>(bytes_at_sf1);
}

Catalog MakePaperTpchCatalog() {
  return MakeTpchCatalog(TpchScaleForBytes(uint64_t{25} * kTB / 10));
}

}  // namespace cloudcache
