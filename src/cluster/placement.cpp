#include "src/cluster/placement.h"

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace cloudcache {

namespace {

// Distinct salts keep template-affinity streams apart from every other
// MixSeed discipline in the tree (sweep cells, tenant seeds, node seeds).
constexpr uint64_t kTemplateSalt = 0x706c6163656d6e74ull;  // "placemnt"
constexpr uint64_t kAdHocSalt = 0x61642d686f637175ull;     // "ad-hocqu"

}  // namespace

uint64_t PlacementRouter::MissingBytes(const Query& query,
                                       const CacheState& node) const {
  uint64_t missing = 0;
  for (ColumnId column : query.AccessedColumns()) {
    if (!node.ColumnResident(column)) {
      missing += catalog_->ColumnBytes(column);
    }
  }
  return missing;
}

uint64_t PlacementRouter::AffinityHash(const Query& query) {
  if (query.template_id >= 0) {
    return MixSeed(kTemplateSalt, static_cast<uint64_t>(query.template_id));
  }
  const std::vector<ColumnId>& accessed = query.AccessedColumns();
  const uint64_t anchor =
      accessed.empty() ? static_cast<uint64_t>(query.table)
                       : static_cast<uint64_t>(accessed.front());
  return MixSeed(kAdHocSalt, MixSeed(query.table, anchor));
}

size_t PlacementRouter::Route(const Query& query,
                              const std::vector<const CacheState*>& nodes) {
  CLOUDCACHE_CHECK(!nodes.empty());
  if (nodes.size() == 1) return 0;

  // Score every node once (into the reused buffer), tracking the minimum
  // and how many nodes share it.
  scores_.clear();
  uint64_t best = MissingBytes(query, *nodes[0]);
  scores_.push_back(best);
  size_t best_index = 0;
  size_t tied = 1;
  for (size_t n = 1; n < nodes.size(); ++n) {
    const uint64_t score = MissingBytes(query, *nodes[n]);
    scores_.push_back(score);
    if (score < best) {
      best = score;
      best_index = n;
      tied = 1;
    } else if (score == best) {
      ++tied;
    }
  }
  if (tied == 1) return best_index;

  // The hash picks among the tied nodes in index order, so the choice
  // depends only on the query and the tied set, never on which node
  // happened to be scanned first.
  size_t pick = AffinityHash(query) % tied;
  for (size_t n = best_index; n < nodes.size(); ++n) {
    if (scores_[n] == best) {
      if (pick == 0) return n;
      --pick;
    }
  }
  return best_index;  // Unreachable; the tied count counted these nodes.
}

}  // namespace cloudcache
