#pragma once

#include <string>
#include <vector>

#include "src/catalog/schema.h"
#include "src/query/query.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace cloudcache {

/// A parameterized predicate of a query template. Each instantiation draws
/// a selectivity uniformly from [min_selectivity, max_selectivity]; the
/// workload generator further modulates the draw to create hotspots.
struct PredicateSpec {
  std::string column;  // Unqualified name within the template's table.
  double min_selectivity = 0.01;
  double max_selectivity = 0.1;
  bool equality = false;
  /// True if the backend data is physically clustered on this column
  /// (dates, keys): a scan can then skip to the matching region, so the
  /// predicate prunes scan volume, not just result volume. Scientific
  /// archives are clustered on time/sky position, which is what gives
  /// their workloads data-access locality (Section VI).
  bool clustered = false;
};

/// A query template by name, before resolution against a catalog.
///
/// The paper's workload "consists of 7 TPCH query templates" [13]; ours are
/// derived from TPC-H Q1/Q3/Q6/Q10/Q14/Q19 plus a customer-segment scan,
/// each folded onto its driving table (joins show up as cpu_multiplier and
/// in which columns are touched, per Section V-B's plan-total cost model).
/// Selectivity ranges and result limits are calibrated so that simulated
/// response times land in the paper's observed 1-10 s band (Fig. 5) under
/// the paper's parameters (2.5 TB backend, 25 Mbps WAN, fcpu = 0.014).
struct QueryTemplate {
  std::string name;
  std::string table;
  std::vector<std::string> output_columns;
  std::vector<PredicateSpec> predicates;
  /// Fraction of the selected rows that survive aggregation or TOP-N
  /// truncation (1.0 returns every selected row; tiny for group-by-collapse
  /// templates like Q1).
  double row_limit_fraction = 1.0;
  double cpu_multiplier = 1.0;
  double parallel_fraction = 0.9;
};

/// A template with all names resolved to dense catalog ids.
struct ResolvedTemplate {
  struct ResolvedPredicate {
    ColumnId column = 0;
    double min_selectivity = 0.01;
    double max_selectivity = 0.1;
    bool equality = false;
    bool clustered = false;
  };

  std::string name;
  TableId table = 0;
  std::vector<ColumnId> output_columns;
  std::vector<ResolvedPredicate> predicates;
  double row_limit_fraction = 1.0;
  double cpu_multiplier = 1.0;
  double parallel_fraction = 0.9;
};

/// The seven TPC-H-derived templates of the paper's evaluation workload.
std::vector<QueryTemplate> MakeTpchTemplates();

/// Five SDSS-flavoured templates (cone search, color cut, spectro match,
/// quality scan, flux histogram) for MakeSdssCatalog() schemas.
std::vector<QueryTemplate> MakeSdssTemplates();

/// Resolves template column/table names against `catalog`. Fails with
/// NotFound/InvalidArgument if any name is missing or a selectivity range
/// is malformed.
Result<std::vector<ResolvedTemplate>> ResolveTemplates(
    const Catalog& catalog, const std::vector<QueryTemplate>& templates);

/// Instantiates a query from `tmpl`, drawing each predicate's selectivity
/// uniformly from its range scaled by `selectivity_scale` (clamped to the
/// legal (0, 1]); the scale is how the workload generator narrows or widens
/// the hot region. `template_id` and `query_id` are recorded on the query.
Query InstantiateQuery(const ResolvedTemplate& tmpl, const Catalog& catalog,
                       Rng& rng, int template_id, uint64_t query_id,
                       double selectivity_scale = 1.0);

}  // namespace cloudcache
