// Serialize → deserialize == identity, pinned per component: each test
// mutates a component into a mid-run state, snapshots it, restores into a
// freshly constructed twin, and checks the twin is indistinguishable —
// including the forward behavior (next decisions, next draws), which is
// the property crash recovery actually needs.

#include <gtest/gtest.h>

#include <vector>

#include "src/cache/maintenance.h"
#include "src/catalog/tpch.h"
#include "src/cluster/elasticity.h"
#include "src/cost/cost_model.h"
#include "src/econ/account.h"
#include "src/econ/regret.h"
#include "src/persist/codec.h"
#include "src/persist/util_io.h"
#include "src/query/templates.h"
#include "src/sim/experiment.h"
#include "src/structure/structure.h"
#include "src/util/rng.h"
#include "src/workload/generator.h"

namespace cloudcache {
namespace {

using persist::Decoder;
using persist::Encoder;

TEST(RegretLedgerPersistTest, RoundTripPreservesEveryEntry) {
  RegretLedger ledger;
  ledger.Add(3, Money::FromDollars(1.5));
  ledger.Distribute({1, 2, 5}, Money::FromMicros(1'000'001));
  ledger.Add(7, Money::FromMicros(42));
  ledger.Clear(2);

  Encoder enc;
  ledger.SaveState(&enc);
  RegretLedger twin;
  Decoder dec(enc.buffer().data(), enc.size());
  ASSERT_TRUE(twin.RestoreState(&dec).ok());
  EXPECT_TRUE(dec.AtEnd());

  EXPECT_EQ(twin.Total().micros(), ledger.Total().micros());
  EXPECT_EQ(twin.size(), ledger.size());
  for (StructureId id = 0; id < 10; ++id) {
    EXPECT_EQ(twin.Get(id).micros(), ledger.Get(id).micros()) << id;
  }
  EXPECT_EQ(twin.NonZeroDescending(), ledger.NonZeroDescending());
}

TEST(RegretLedgerPersistTest, TenantLedgersStillPartitionTheGlobalOne) {
  // The invariant crash recovery must not break: summing the restored
  // tenant ledgers reproduces the restored global ledger, entry by entry.
  RegretLedger global;
  std::vector<RegretLedger> tenants(3);
  const StructureId ids[] = {0, 2, 4, 9};
  Money amounts[] = {Money::FromMicros(101), Money::FromMicros(3'000'000),
                     Money::FromMicros(77), Money::FromMicros(12'345)};
  for (size_t i = 0; i < 4; ++i) {
    global.Add(ids[i], amounts[i]);
    // Split over tenants, exact to the micro-dollar.
    for (size_t t = 0; t < 3; ++t) {
      tenants[t].Add(ids[i],
                     EvenShare(amounts[i], 3, static_cast<int64_t>(t)));
    }
  }

  Encoder enc;
  global.SaveState(&enc);
  for (const RegretLedger& ledger : tenants) ledger.SaveState(&enc);

  RegretLedger global_twin;
  std::vector<RegretLedger> tenant_twins(3);
  Decoder dec(enc.buffer().data(), enc.size());
  ASSERT_TRUE(global_twin.RestoreState(&dec).ok());
  for (RegretLedger& ledger : tenant_twins) {
    ASSERT_TRUE(ledger.RestoreState(&dec).ok());
  }
  EXPECT_TRUE(dec.AtEnd());

  Money tenant_total;
  for (const RegretLedger& ledger : tenant_twins) {
    tenant_total += ledger.Total();
  }
  EXPECT_EQ(tenant_total.micros(), global_twin.Total().micros());
  for (StructureId id : ids) {
    Money per_entry;
    for (const RegretLedger& ledger : tenant_twins) {
      per_entry += ledger.Get(id);
    }
    EXPECT_EQ(per_entry.micros(), global_twin.Get(id).micros()) << id;
  }
}

TEST(MaintenanceLedgerPersistTest, RoundTripKeepsClocksAndFailureScales) {
  const Catalog catalog = MakeTpchCatalog(1.0);
  const PriceList prices = PriceList::AmazonEc2_2009();
  const CostModel model(&catalog, &prices);
  StructureRegistry registry(&catalog);
  const StructureId a = registry.Intern(ColumnKey(catalog, 0));
  const StructureId b = registry.Intern(ColumnKey(catalog, 1));
  const StructureId c = registry.Intern(CpuNodeKey(0));

  MaintenanceLedger ledger(&model);
  ledger.Register(a, registry.key(a), 10.0, Money::FromDollars(2.0), 1.0);
  ledger.Register(b, registry.key(b), 20.0, Money::FromDollars(5.0), 1.75);
  ledger.Register(c, registry.key(c), 30.0, Money::FromDollars(0.5), 1.0);
  ledger.Pay(a, 500.0, /*cap_seconds=*/100.0);  // Partially repaid clock.

  Encoder enc;
  ledger.SaveState(&enc);
  MaintenanceLedger twin(&model);
  Decoder dec(enc.buffer().data(), enc.size());
  ASSERT_TRUE(twin.RestoreState(&dec, registry).ok());
  EXPECT_TRUE(dec.AtEnd());

  for (StructureId id : {a, b, c}) {
    EXPECT_TRUE(twin.IsTracked(id));
    EXPECT_EQ(twin.FailureScale(id), ledger.FailureScale(id)) << id;
    EXPECT_EQ(twin.BuildCostOf(id).micros(), ledger.BuildCostOf(id).micros());
    EXPECT_EQ(twin.Owed(id, 1000.0).micros(), ledger.Owed(id, 1000.0).micros())
        << id;
  }
  // Forward behavior: the next payment collects the same amount.
  EXPECT_EQ(twin.Pay(b, 1000.0).micros(), ledger.Pay(b, 1000.0).micros());
}

TEST(MaintenanceLedgerPersistTest, UnknownStructureIdIsRejected) {
  const Catalog catalog = MakeTpchCatalog(1.0);
  const PriceList prices = PriceList::AmazonEc2_2009();
  const CostModel model(&catalog, &prices);
  StructureRegistry full(&catalog);
  const StructureId id = full.Intern(ColumnKey(catalog, 3));
  MaintenanceLedger ledger(&model);
  ledger.Register(id, full.key(id), 1.0, Money::FromDollars(1.0));

  Encoder enc;
  ledger.SaveState(&enc);
  // Restoring against a registry that never interned the structure must
  // fail with a Status: a clock for an unknown id has no footprint.
  StructureRegistry empty(&catalog);
  MaintenanceLedger twin(&model);
  Decoder dec(enc.buffer().data(), enc.size());
  EXPECT_FALSE(twin.RestoreState(&dec, empty).ok());
}

TEST(ElasticityControllerPersistTest, StreaksAndCooldownSurviveRestore) {
  ElasticityOptions options;
  options.sustain_windows = 3;
  options.cooldown_windows = 2;
  options.max_nodes = 4;
  ElasticityController controller(options);

  // Two hot windows: regret far above one node's projected rent. The
  // streak is at 2 of 3 — the next hot window rents.
  ElasticityWindow hot;
  hot.standing_regret = Money::FromDollars(100.0);
  hot.projected_rent_dollars = 1.0;
  hot.routed = {50, 50};
  hot.window_queries = 100;
  EXPECT_EQ(controller.Step(hot).decision, ElasticDecision::kHold);
  EXPECT_EQ(controller.Step(hot).decision, ElasticDecision::kHold);

  Encoder enc;
  controller.SaveState(&enc);
  ElasticityController twin(options);
  Decoder dec(enc.buffer().data(), enc.size());
  ASSERT_TRUE(twin.RestoreState(&dec).ok());
  EXPECT_TRUE(dec.AtEnd());

  // Both controllers must act identically from here: the third hot window
  // completes the streak and rents...
  EXPECT_EQ(controller.Step(hot).decision, ElasticDecision::kRent);
  EXPECT_EQ(twin.Step(hot).decision, ElasticDecision::kRent);
  // ...and both sit out the same cooldown afterwards.
  for (int window = 0; window < 4; ++window) {
    const ElasticAction a = controller.Step(hot);
    const ElasticAction b = twin.Step(hot);
    EXPECT_EQ(a.decision, b.decision) << "window " << window;
  }
}

TEST(AccountPersistTest, BooksBalanceAfterRestore) {
  CloudAccount account(Money::FromDollars(100.0));
  account.DepositRevenue(Money::FromDollars(3.5), 1.0);
  account.ChargeExpenditure(Money::FromMicros(123'456), 2.0);
  ASSERT_TRUE(
      account.WithdrawInvestment(Money::FromDollars(10.0), 3.0).ok());

  Encoder enc;
  account.SaveState(&enc);
  CloudAccount twin(Money::FromDollars(100.0));
  Decoder dec(enc.buffer().data(), enc.size());
  ASSERT_TRUE(twin.RestoreState(&dec).ok());
  EXPECT_TRUE(dec.AtEnd());

  EXPECT_EQ(twin.credit().micros(), account.credit().micros());
  EXPECT_EQ(twin.total_revenue().micros(), account.total_revenue().micros());
  EXPECT_EQ(twin.total_expenditure().micros(),
            account.total_expenditure().micros());
  EXPECT_EQ(twin.total_investment().micros(),
            account.total_investment().micros());
  // The audit identity holds on the restored books.
  EXPECT_EQ(twin.credit().micros(),
            (twin.initial_credit() + twin.total_revenue() -
             twin.total_expenditure() - twin.total_investment())
                .micros());
  EXPECT_EQ(twin.history().size(), account.history().size());
}

TEST(RngPersistTest, RestoredStreamContinuesExactly) {
  Rng rng(1234);
  for (int i = 0; i < 100; ++i) rng.Next();

  Encoder enc;
  persist::SaveRng(rng, &enc);
  Rng twin(999);  // Different seed: the restore must overwrite it fully.
  Decoder dec(enc.buffer().data(), enc.size());
  ASSERT_TRUE(persist::RestoreRng(&dec, &twin).ok());
  EXPECT_TRUE(dec.AtEnd());

  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(twin.Next(), rng.Next()) << "draw " << i;
  }
  // Fork lineage survives too (the retained seed is part of the state).
  EXPECT_EQ(twin.Fork(7).Next(), rng.Fork(7).Next());
}

TEST(WorkloadGeneratorPersistTest, PerTenantStreamsResumeMidFlight) {
  const Catalog catalog = MakeTpchCatalog(10.0);
  const std::vector<QueryTemplate> templates = MakeTpchTemplates();
  Result<std::vector<ResolvedTemplate>> resolved =
      ResolveTemplates(catalog, templates);
  ASSERT_TRUE(resolved.ok());

  // Three tenant streams with distinct seeds/mixes, as the multi-tenant
  // simulator derives them; each is advanced a different distance so the
  // snapshot captures three distinct RNG positions.
  WorkloadOptions base;
  base.seed = 11;
  base.arrival = WorkloadOptions::Arrival::kPoisson;
  TenancyOptions tenancy;
  tenancy.tenants = 3;
  tenancy.traffic_skew = 1.0;
  std::vector<WorkloadGenerator> streams;
  for (uint32_t t = 0; t < 3; ++t) {
    streams.emplace_back(&catalog, *resolved,
                         TenantWorkloadOptions(base, tenancy, t));
    for (uint32_t i = 0; i < 17 * (t + 1); ++i) streams[t].Next();
  }

  Encoder enc;
  for (const WorkloadGenerator& gen : streams) gen.SaveState(&enc);

  std::vector<WorkloadGenerator> twins;
  for (uint32_t t = 0; t < 3; ++t) {
    twins.emplace_back(&catalog, *resolved,
                       TenantWorkloadOptions(base, tenancy, t));
  }
  Decoder dec(enc.buffer().data(), enc.size());
  for (WorkloadGenerator& twin : twins) {
    ASSERT_TRUE(twin.RestoreState(&dec).ok());
  }
  EXPECT_TRUE(dec.AtEnd());

  for (uint32_t t = 0; t < 3; ++t) {
    EXPECT_EQ(twins[t].queries_generated(), streams[t].queries_generated());
    EXPECT_EQ(twins[t].PeekNextArrival(), streams[t].PeekNextArrival());
    for (int i = 0; i < 50; ++i) {
      const Query want = streams[t].Next();
      const Query got = twins[t].Next();
      EXPECT_EQ(got.id, want.id);
      EXPECT_EQ(got.template_id, want.template_id);
      EXPECT_EQ(got.arrival_time, want.arrival_time);
      EXPECT_EQ(got.tenant_id, want.tenant_id);
      EXPECT_EQ(got.result_bytes, want.result_bytes);
      ASSERT_EQ(got.predicates.size(), want.predicates.size());
      for (size_t p = 0; p < want.predicates.size(); ++p) {
        EXPECT_EQ(got.predicates[p].selectivity,
                  want.predicates[p].selectivity);
      }
    }
  }
}

}  // namespace
}  // namespace cloudcache
