#include "src/econ/fairness.h"

#include <algorithm>

#include "src/sim/metrics.h"

namespace cloudcache {

namespace {

/// Shared degenerate-input handling: true (and *sum filled) when the
/// values carry any mass at all.
bool SumIfAnyMass(const std::vector<double>& values, double* sum) {
  *sum = 0;
  for (double v : values) *sum += v;
  return !values.empty() && *sum != 0.0;
}

}  // namespace

double JainsIndex(const std::vector<double>& values) {
  double sum = 0;
  if (!SumIfAnyMass(values, &sum)) return 1.0;
  double sum_sq = 0;
  for (double v : values) sum_sq += v * v;
  return (sum * sum) /
         (static_cast<double>(values.size()) * sum_sq);
}

double MaxMinShare(const std::vector<double>& values) {
  double sum = 0;
  if (!SumIfAnyMass(values, &sum)) return 1.0;
  const double minimum = *std::min_element(values.begin(), values.end());
  const double mean = sum / static_cast<double>(values.size());
  return minimum / mean;
}

double MaxMinShareLowerBetter(const std::vector<double>& values) {
  double sum = 0;
  if (!SumIfAnyMass(values, &sum)) return 1.0;
  const double maximum = *std::max_element(values.begin(), values.end());
  const double mean = sum / static_cast<double>(values.size());
  return mean / maximum;
}

double NormalizedBreadth(const std::vector<double>& values) {
  const double n = static_cast<double>(values.size());
  if (values.size() < 2) return 0.0;
  double sum = 0;
  if (!SumIfAnyMass(values, &sum)) return 0.0;
  return (n * JainsIndex(values) - 1.0) / (n - 1.0);
}

FairnessReport ComputeFairness(const std::vector<TenantMetrics>& tenants) {
  FairnessReport report;
  if (tenants.empty()) return report;
  std::vector<double> responses;
  std::vector<double> billed;
  responses.reserve(tenants.size());
  billed.reserve(tenants.size());
  for (const TenantMetrics& tenant : tenants) {
    responses.push_back(tenant.MeanResponse());
    billed.push_back(tenant.operating_cost.Total());
  }
  report.response_jain = JainsIndex(responses);
  report.response_max_min = MaxMinShareLowerBetter(responses);
  report.billed_jain = JainsIndex(billed);
  report.billed_max_min = MaxMinShare(billed);
  return report;
}

}  // namespace cloudcache
