// Trace record & replay: capture a workload once, replay it against any
// scheme — the mechanism that guarantees every contender in the figures
// sees byte-identical input, and the hook for feeding real query logs in.
//
//   ./trace_replay [queries] [trace.csv]

#include <cstdio>
#include <cstdlib>

#include "src/util/logging.h"
#include "src/baseline/bypass_yield.h"
#include "src/baseline/scheme.h"
#include "src/catalog/tpch.h"
#include "src/query/templates.h"
#include "src/structure/index_advisor.h"
#include "src/workload/generator.h"
#include "src/workload/trace.h"

int main(int argc, char** argv) {
  using namespace cloudcache;
  const uint64_t num_queries =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5'000;
  const std::string path = argc > 2 ? argv[2] : "/tmp/cloudcache_trace.csv";

  const Catalog catalog = MakePaperTpchCatalog();
  Result<std::vector<ResolvedTemplate>> resolved =
      ResolveTemplates(catalog, MakeTpchTemplates());
  CLOUDCACHE_CHECK(resolved.ok());

  // Record.
  WorkloadOptions options;
  options.interarrival_seconds = 10.0;
  WorkloadGenerator generator(&catalog, *resolved, options);
  std::vector<Query> trace;
  trace.reserve(num_queries);
  for (uint64_t i = 0; i < num_queries; ++i) trace.push_back(generator.Next());
  const Status write_status = TraceWriter::Write(path, trace);
  if (!write_status.ok()) {
    std::fprintf(stderr, "trace write failed: %s\n",
                 write_status.ToString().c_str());
    return 1;
  }
  std::printf("recorded %zu queries to %s\n", trace.size(), path.c_str());

  // Replay against two schemes.
  Result<std::vector<Query>> replay = TraceReader::Read(path, catalog);
  CLOUDCACHE_CHECK(replay.ok());
  std::printf("replaying %zu queries...\n\n", replay->size());

  const PriceList prices = PriceList::AmazonEc2_2009();
  const std::vector<StructureKey> indexes =
      RecommendIndexes(catalog, *resolved, 65);

  BypassYieldScheme bypass(&catalog, {});
  EconScheme::Config config = EconScheme::EconCheapConfig();
  config.economy.initial_credit = Money::FromDollars(200);
  config.economy.regret_fraction_a = 0.02;
  config.economy.model_build_latency = false;
  EconScheme econ(&catalog, &prices, indexes, std::move(config));

  for (Scheme* scheme :
       std::initializer_list<Scheme*>{&bypass, &econ}) {
    double total_response = 0;
    uint64_t hits = 0;
    for (const Query& query : *replay) {
      const ServedQuery served = scheme->OnQuery(query, query.arrival_time);
      total_response += served.execution.time_seconds;
      hits += served.spec.access != PlanSpec::Access::kBackend;
    }
    std::printf("%-10s mean response %.3fs, cache hits %llu/%zu\n",
                scheme->name().c_str(),
                total_response / static_cast<double>(replay->size()),
                static_cast<unsigned long long>(hits), replay->size());
  }
  return 0;
}
