#pragma once

#include <string>
#include <vector>

#include "src/sim/metrics.h"
#include "src/util/table_writer.h"

namespace cloudcache {

/// Formatting of simulation results into the shapes the paper reports.

/// One detail block per run: scheme, responses, cost breakdown, economy
/// health, cache shape.
std::string FormatRunDetail(const SimMetrics& metrics);

/// Fig. 4-shaped table: rows = inter-arrival seconds, one column of
/// operating dollars per scheme. `rows[i][j]` is the metrics of scheme j
/// at interval `intervals[i]`.
TableWriter MakeOperatingCostTable(
    const std::vector<double>& intervals,
    const std::vector<std::vector<SimMetrics>>& rows);

/// Fig. 5-shaped table: rows = inter-arrival seconds, one column of mean
/// response seconds per scheme.
TableWriter MakeResponseTimeTable(
    const std::vector<double>& intervals,
    const std::vector<std::vector<SimMetrics>>& rows);

/// Comparison summary over schemes at a single configuration.
TableWriter MakeSchemeSummaryTable(const std::vector<SimMetrics>& runs);

/// Per-tenant slice of one multi-tenant run: traffic, response, billed
/// dollars, economy health, throttled-query count, and the regret the
/// shared economy holds per tenant. One row per entry of
/// `metrics.tenants`.
TableWriter MakeTenantTable(const SimMetrics& metrics);

/// One-line fairness summary of a multi-tenant run (Jain's index and
/// max-min share over per-tenant response times and billed dollars).
std::string FormatFairness(const SimMetrics& metrics);

/// Per-node slice of a cluster run: routed traffic, hit rate, revenue,
/// profit, credit, and resident bytes. One row per live node at run end.
TableWriter MakeNodeTable(const SimMetrics& metrics);

/// One-line cluster summary (final/peak node count, scale events,
/// migrations, metered node rent).
std::string FormatCluster(const SimMetrics& metrics);

}  // namespace cloudcache
