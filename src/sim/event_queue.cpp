#include "src/sim/event_queue.h"

#include "src/util/logging.h"

namespace cloudcache {

void EventQueue::Push(SimEvent event) {
  heap_.push(Entry{event, next_seq_++});
}

const SimEvent& EventQueue::Top() const {
  CLOUDCACHE_CHECK(!heap_.empty());
  return heap_.top().event;
}

SimEvent EventQueue::Pop() {
  CLOUDCACHE_CHECK(!heap_.empty());
  SimEvent event = heap_.top().event;
  heap_.pop();
  return event;
}

}  // namespace cloudcache
