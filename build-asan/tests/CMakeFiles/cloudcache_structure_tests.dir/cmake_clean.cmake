file(REMOVE_RECURSE
  "CMakeFiles/cloudcache_structure_tests.dir/structure/index_advisor_test.cpp.o"
  "CMakeFiles/cloudcache_structure_tests.dir/structure/index_advisor_test.cpp.o.d"
  "CMakeFiles/cloudcache_structure_tests.dir/structure/structure_test.cpp.o"
  "CMakeFiles/cloudcache_structure_tests.dir/structure/structure_test.cpp.o.d"
  "cloudcache_structure_tests"
  "cloudcache_structure_tests.pdb"
  "cloudcache_structure_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudcache_structure_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
