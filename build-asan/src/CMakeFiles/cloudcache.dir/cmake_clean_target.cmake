file(REMOVE_RECURSE
  "libcloudcache.a"
)
