#include "src/baseline/bypass_yield.h"

#include <algorithm>

#include "src/util/logging.h"

namespace cloudcache {

BypassYieldScheme::BypassYieldScheme(const Catalog* catalog, Options options)
    : catalog_(catalog),
      options_(options),
      decision_prices_(PriceList::NetworkOnly()),
      registry_(catalog),
      model_(catalog, &decision_prices_),
      cache_(&registry_),
      accrued_(catalog->num_columns(), 0) {
  budget_bytes_ = static_cast<uint64_t>(
      static_cast<double>(catalog->TotalBytes()) * options_.cache_fraction);
}

double BypassYieldScheme::YieldOf(ColumnId column) const {
  const uint64_t size = catalog_->ColumnBytes(column);
  if (size == 0) return 0;
  return static_cast<double>(accrued_[column]) / static_cast<double>(size);
}

uint64_t BypassYieldScheme::AccruedBytes(ColumnId column) const {
  CLOUDCACHE_CHECK_LT(column, accrued_.size());
  return accrued_[column];
}

bool BypassYieldScheme::TryLoad(ColumnId column, SimTime now,
                                BuildUsage* usage, uint32_t* evictions) {
  const uint64_t size = catalog_->ColumnBytes(column);
  if (size > budget_bytes_) return false;
  const double my_yield = YieldOf(column);

  // Displace the lowest-yield residents while that frees enough space and
  // every displaced column yields less than the newcomer.
  std::vector<StructureId> residents =
      cache_.ResidentsOfType(StructureType::kColumn);
  std::sort(residents.begin(), residents.end(),
            [&](StructureId a, StructureId b) {
              return YieldOf(registry_.key(a).columns.front()) <
                     YieldOf(registry_.key(b).columns.front());
            });
  std::vector<StructureId> to_evict;
  uint64_t free_bytes = budget_bytes_ - cache_.resident_bytes();
  size_t next = 0;
  while (free_bytes < size && next < residents.size()) {
    const StructureId victim = residents[next++];
    if (YieldOf(registry_.key(victim).columns.front()) >= my_yield) {
      return false;  // Everything still resident is at least as valuable.
    }
    to_evict.push_back(victim);
    free_bytes += registry_.bytes(victim);
  }
  if (free_bytes < size) return false;

  for (StructureId victim : to_evict) {
    CLOUDCACHE_CHECK(cache_.Remove(victim).ok());
    ++*evictions;
  }
  const StructureId id = registry_.Intern(ColumnKey(*catalog_, column));
  CLOUDCACHE_CHECK(cache_.Add(id, now).ok());
  *usage += model_.EstimateBuildUsage(registry_.key(id),
                                      cache_.column_residency());
  accrued_[column] = 0;  // Paid off; start earning again.
  return true;
}

ServedQuery BypassYieldScheme::OnQuery(const Query& query, SimTime now) {
  ++queries_seen_;
  if (queries_seen_ % options_.aging_interval == 0) {
    for (uint64_t& accrued : accrued_) accrued /= 2;
  }

  const std::vector<ColumnId>& accessed = query.AccessedColumns();
  const bool hit = std::all_of(accessed.begin(), accessed.end(),
                               [&](ColumnId col) {
                                 return cache_.ColumnResident(col);
                               });

  ServedQuery out;
  out.served = true;
  out.spec.access =
      hit ? PlanSpec::Access::kCacheScan : PlanSpec::Access::kBackend;
  out.spec.cpu_nodes = 1;
  out.execution = model_.EstimateExecution(query, out.spec);

  if (hit) {
    for (ColumnId col : accessed) {
      cache_.Touch(registry_.Intern(ColumnKey(*catalog_, col)), now);
    }
    return out;
  }

  // Served over the network: each accessed column accrues the WAN bytes a
  // hit would have saved, then columns past break-even get loaded
  // (greedily, highest yield first).
  for (ColumnId col : accessed) accrued_[col] += query.result_bytes;

  std::vector<ColumnId> loadable;
  for (ColumnId col : accessed) {
    if (cache_.ColumnResident(col)) continue;
    const uint64_t size = catalog_->ColumnBytes(col);
    if (static_cast<double>(accrued_[col]) >=
        options_.yield_threshold * static_cast<double>(size)) {
      loadable.push_back(col);
    }
  }
  std::sort(loadable.begin(), loadable.end(), [&](ColumnId a, ColumnId b) {
    if (YieldOf(a) != YieldOf(b)) return YieldOf(a) > YieldOf(b);
    return a < b;
  });
  for (ColumnId col : loadable) {
    if (TryLoad(col, now, &out.build_usage, &out.evictions)) {
      ++out.investments;
    }
  }
  return out;
}

void BypassYieldScheme::SaveState(persist::Encoder* enc) const {
  registry_.SaveState(enc);
  cache_.SaveState(enc);
  enc->PutU64(accrued_.size());
  for (uint64_t accrued : accrued_) enc->PutU64(accrued);
  enc->PutU64(queries_seen_);
}

Status BypassYieldScheme::RestoreState(persist::Decoder* dec) {
  CLOUDCACHE_RETURN_IF_ERROR(registry_.RestoreState(dec));
  CLOUDCACHE_RETURN_IF_ERROR(cache_.RestoreState(dec));
  uint64_t column_count = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&column_count));
  if (column_count != accrued_.size()) {
    return Status::FailedPrecondition(
        "snapshot tracks " + std::to_string(column_count) +
        " columns but this catalog has " + std::to_string(accrued_.size()));
  }
  for (uint64_t& accrued : accrued_) {
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&accrued));
  }
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&queries_seen_));
  return Status::OK();
}

}  // namespace cloudcache
