#include "src/baseline/scheme.h"

#include <gtest/gtest.h>

#include "src/baseline/bypass_yield.h"
#include "tests/testing/fixtures.h"

namespace cloudcache {
namespace {

class SchemeTest : public ::testing::Test {
 protected:
  SchemeTest()
      : catalog_(testing::MakeTinyCatalog()),
        prices_(testing::MakeRoundPrices()) {
    const ColumnId date = *catalog_.FindColumn("fact.f_date");
    const ColumnId value = *catalog_.FindColumn("fact.f_value");
    indexes_ = {IndexKey(catalog_, {date}),
                IndexKey(catalog_, {date, value})};
  }

  Catalog catalog_;
  PriceList prices_;
  std::vector<StructureKey> indexes_;
};

TEST_F(SchemeTest, FactoryProducesAllFourSchemes) {
  for (SchemeKind kind :
       {SchemeKind::kBypassYield, SchemeKind::kEconCol,
        SchemeKind::kEconCheap, SchemeKind::kEconFast}) {
    std::unique_ptr<Scheme> scheme =
        MakeScheme(kind, &catalog_, &prices_, indexes_, 1);
    ASSERT_NE(scheme, nullptr);
    EXPECT_EQ(scheme->name(), SchemeKindToString(kind));
  }
}

TEST_F(SchemeTest, EconColConfigDisablesIndexesAndParallelism) {
  const EconScheme::Config config = EconScheme::EconColConfig();
  EXPECT_FALSE(config.enumerator.allow_indexes);
  EXPECT_FALSE(config.enumerator.allow_parallel);
  EXPECT_EQ(config.economy.selection, PlanSelection::kCheapest);
}

TEST_F(SchemeTest, EconFastSelectsFastest) {
  EXPECT_EQ(EconScheme::EconFastConfig().economy.selection,
            PlanSelection::kFastest);
  EXPECT_EQ(EconScheme::EconCheapConfig().economy.selection,
            PlanSelection::kCheapest);
}

TEST_F(SchemeTest, EconSchemeServesQueries) {
  EconScheme scheme(&catalog_, &prices_, indexes_,
                    EconScheme::EconCheapConfig());
  const Query q = testing::MakeTinyQuery(catalog_);
  const ServedQuery served = scheme.OnQuery(q, 0.0);
  EXPECT_TRUE(served.served);
  EXPECT_TRUE(served.has_budget_case);
  EXPECT_GT(served.execution.time_seconds, 0.0);
  EXPECT_GT(served.payment.micros(), 0);
}

TEST_F(SchemeTest, EconSchemeCreditMovesWithPayments) {
  EconScheme scheme(&catalog_, &prices_, indexes_,
                    EconScheme::EconCheapConfig());
  const Money before = scheme.credit();
  scheme.OnQuery(testing::MakeTinyQuery(catalog_), 0.0);
  EXPECT_GT(scheme.credit(), before);
}

TEST_F(SchemeTest, ChargeExpenditureDebitsAccount) {
  EconScheme scheme(&catalog_, &prices_, indexes_,
                    EconScheme::EconCheapConfig());
  const Money before = scheme.credit();
  scheme.ChargeExpenditure(Money::FromDollars(1), 1.0);
  EXPECT_EQ(scheme.credit(), before - Money::FromDollars(1));
}

TEST_F(SchemeTest, BypassSchemeIgnoresExpenditure) {
  BypassYieldScheme scheme(&catalog_, {});
  scheme.ChargeExpenditure(Money::FromDollars(1), 1.0);  // No-op.
  EXPECT_TRUE(scheme.credit().IsZero());
}

TEST_F(SchemeTest, DeterministicForFixedSeed) {
  auto run = [&](uint64_t seed) {
    EconScheme::Config config = EconScheme::EconCheapConfig();
    config.seed = seed;
    EconScheme scheme(&catalog_, &prices_, indexes_, std::move(config));
    Money total;
    for (int i = 0; i < 20; ++i) {
      total +=
          scheme.OnQuery(testing::MakeTinyQuery(catalog_, 0.05, i), i)
              .payment;
    }
    return total;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // Budget jitter differs.
}

TEST_F(SchemeTest, BudgetModelShapes) {
  Rng rng(1);
  for (auto shape :
       {BudgetModelOptions::Shape::kStep, BudgetModelOptions::Shape::kLinear,
        BudgetModelOptions::Shape::kConvex,
        BudgetModelOptions::Shape::kConcave}) {
    BudgetModelOptions options;
    options.shape = shape;
    options.jitter = 0.0;
    options.price_multiplier = 2.0;
    options.tmax_multiplier = 3.0;
    BudgetModel model(options);
    const std::unique_ptr<BudgetFunction> budget =
        model.Make(Money::FromDollars(10), 4.0, rng);
    EXPECT_DOUBLE_EQ(budget->t_max(), 12.0);
    // Non-increasing by construction.
    EXPECT_TRUE(budget->ValidateMonotone().ok());
    // Early values reflect the doubled reference price.
    EXPECT_GT(budget->At(0.01), Money::FromDollars(19.9));
  }
}

TEST_F(SchemeTest, BudgetJitterStraddlesReference) {
  BudgetModelOptions options;
  options.price_multiplier = 1.0;
  options.jitter = 0.3;
  BudgetModel model(options);
  Rng rng(5);
  int below = 0, above = 0;
  for (int i = 0; i < 200; ++i) {
    const std::unique_ptr<BudgetFunction> budget =
        model.Make(Money::FromDollars(10), 1.0, rng);
    (budget->At(0.5) < Money::FromDollars(10) ? below : above)++;
  }
  EXPECT_GT(below, 50);
  EXPECT_GT(above, 50);
}

TEST_F(SchemeTest, SchemeKindNames) {
  EXPECT_STREQ(SchemeKindToString(SchemeKind::kBypassYield), "bypass");
  EXPECT_STREQ(SchemeKindToString(SchemeKind::kEconCol), "econ-col");
  EXPECT_STREQ(SchemeKindToString(SchemeKind::kEconCheap), "econ-cheap");
  EXPECT_STREQ(SchemeKindToString(SchemeKind::kEconFast), "econ-fast");
}

TEST_F(SchemeTest, EconColNeverUsesIndexesOrExtraNodes) {
  EconScheme scheme(&catalog_, &prices_, indexes_,
                    EconScheme::EconColConfig());
  for (int i = 0; i < 50; ++i) {
    const ServedQuery served =
        scheme.OnQuery(testing::MakeTinyQuery(catalog_, 0.2, i), i);
    if (served.served) {
      EXPECT_NE(served.spec.access, PlanSpec::Access::kCacheIndex);
      EXPECT_EQ(served.spec.cpu_nodes, 1u);
    }
  }
  EXPECT_EQ(scheme.cache().extra_cpu_nodes(), 0u);
  EXPECT_TRUE(
      scheme.cache().ResidentsOfType(StructureType::kIndex).empty());
}

TEST_F(SchemeTest, TenantBudgetStreamsAreIndependentOfInterleaving) {
  // With per-tenant budget streams, a tenant's k-th query draws the same
  // budget jitter regardless of how the other tenants' queries interleave
  // — serve tenant 1's queries with and without tenant 0 traffic mixed in
  // and the payments for tenant 1 must match query for query.
  EconScheme::Config config = EconScheme::EconCheapConfig();
  config.tenants = 2;
  config.seed = 11;
  // Generous step budgets keep every query in case B, where the payment
  // IS the drawn budget amount (backend quote x jittered multiplier) —
  // a direct readout of the tenant's jitter stream that cache-state
  // drift between the two runs cannot perturb.
  config.budget.price_multiplier = 2.0;

  auto payments_for_tenant1 = [&](bool interleave) {
    EconScheme scheme(&catalog_, &prices_, indexes_, config);
    std::vector<int64_t> payments;
    double now = 0;
    for (uint64_t i = 0; i < 20; ++i) {
      if (interleave) {
        Query noise = testing::MakeTinyQuery(catalog_, 0.01, 100 + i);
        noise.tenant_id = 0;
        scheme.OnQuery(noise, now);
        now += 1.0;
      }
      Query q = testing::MakeTinyQuery(catalog_, 0.01, i);
      q.tenant_id = 1;
      payments.push_back(scheme.OnQuery(q, now).payment.micros());
      now += 1.0;
    }
    return payments;
  };
  EXPECT_EQ(payments_for_tenant1(false), payments_for_tenant1(true));
}

TEST_F(SchemeTest, TenantZeroBudgetStreamMatchesClassicUser) {
  // Tenant 0 of a multi-tenant scheme reuses the config seed, so a pure
  // tenant-0 query sequence replays the classic single-user scheme
  // exactly — budgets, plans, and payments.
  EconScheme::Config classic = EconScheme::EconCheapConfig();
  classic.seed = 11;
  EconScheme::Config tenancy = classic;
  tenancy.tenants = 2;

  EconScheme a(&catalog_, &prices_, indexes_, classic);
  EconScheme b(&catalog_, &prices_, indexes_, tenancy);
  for (uint64_t i = 0; i < 20; ++i) {
    const Query q = testing::MakeTinyQuery(catalog_, 0.01, i);
    const ServedQuery sa = a.OnQuery(q, static_cast<double>(i));
    const ServedQuery sb = b.OnQuery(q, static_cast<double>(i));
    EXPECT_EQ(sa.payment.micros(), sb.payment.micros());
    EXPECT_EQ(sa.profit.micros(), sb.profit.micros());
  }
}

TEST_F(SchemeTest, ProvisionedSingleTenantMatchesClassicScheme) {
  // tenants = 1 provisions identity machinery (tenant rng, attribution
  // ledger) but must not change a single decision or payment vs the
  // classic unprovisioned scheme: tenant 0's jitter stream is seeded with
  // the config seed either way.
  EconScheme::Config classic = EconScheme::EconCheapConfig();
  classic.seed = 11;
  EconScheme::Config provisioned = classic;
  provisioned.tenants = 1;

  EconScheme a(&catalog_, &prices_, indexes_, classic);
  EconScheme b(&catalog_, &prices_, indexes_, provisioned);
  for (uint64_t i = 0; i < 20; ++i) {
    const Query q = testing::MakeTinyQuery(catalog_, 0.01, i);
    const ServedQuery sa = a.OnQuery(q, static_cast<double>(i));
    const ServedQuery sb = b.OnQuery(q, static_cast<double>(i));
    EXPECT_EQ(sa.payment.micros(), sb.payment.micros());
    EXPECT_EQ(sa.profit.micros(), sb.profit.micros());
  }
  // Attribution only exists on the provisioned scheme, and its sole
  // tenant owns the whole ledger.
  EXPECT_EQ(a.TenantRegret(0).micros(), 0);
  EXPECT_EQ(b.TenantRegret(0).micros(),
            b.engine().regret().Total().micros());
}

TEST_F(SchemeTest, TenantRegretExposedThroughSchemeInterface) {
  EconScheme::Config config = EconScheme::EconCheapConfig();
  config.tenants = 2;
  config.economy.conservative_provider = false;
  config.economy.initial_credit = Money::FromDollars(2);
  config.economy.amortization_horizon = 100;
  config.economy.regret_fraction_a = 0.001;
  config.economy.model_build_latency = false;
  EconScheme scheme(&catalog_, &prices_, indexes_, config);

  for (uint64_t i = 0; i < 30; ++i) {
    Query q = testing::MakeTinyQuery(catalog_, 0.2, i);
    q.tenant_id = static_cast<uint32_t>(i % 2);
    scheme.OnQuery(q, static_cast<double>(i) * 10.0);
  }
  const Money total = scheme.engine().regret().Total();
  EXPECT_EQ((scheme.TenantRegret(0) + scheme.TenantRegret(1)).micros(),
            total.micros());

  // The base interface keeps non-economy schemes at zero.
  BypassYieldScheme bypass(&catalog_, {});
  EXPECT_EQ(bypass.TenantRegret(0).micros(), 0);
}

}  // namespace
}  // namespace cloudcache
