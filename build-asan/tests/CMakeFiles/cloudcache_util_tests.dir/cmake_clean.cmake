file(REMOVE_RECURSE
  "CMakeFiles/cloudcache_util_tests.dir/util/logging_test.cpp.o"
  "CMakeFiles/cloudcache_util_tests.dir/util/logging_test.cpp.o.d"
  "CMakeFiles/cloudcache_util_tests.dir/util/money_test.cpp.o"
  "CMakeFiles/cloudcache_util_tests.dir/util/money_test.cpp.o.d"
  "CMakeFiles/cloudcache_util_tests.dir/util/rng_test.cpp.o"
  "CMakeFiles/cloudcache_util_tests.dir/util/rng_test.cpp.o.d"
  "CMakeFiles/cloudcache_util_tests.dir/util/stats_test.cpp.o"
  "CMakeFiles/cloudcache_util_tests.dir/util/stats_test.cpp.o.d"
  "CMakeFiles/cloudcache_util_tests.dir/util/status_test.cpp.o"
  "CMakeFiles/cloudcache_util_tests.dir/util/status_test.cpp.o.d"
  "CMakeFiles/cloudcache_util_tests.dir/util/table_writer_test.cpp.o"
  "CMakeFiles/cloudcache_util_tests.dir/util/table_writer_test.cpp.o.d"
  "CMakeFiles/cloudcache_util_tests.dir/util/thread_pool_test.cpp.o"
  "CMakeFiles/cloudcache_util_tests.dir/util/thread_pool_test.cpp.o.d"
  "CMakeFiles/cloudcache_util_tests.dir/util/units_test.cpp.o"
  "CMakeFiles/cloudcache_util_tests.dir/util/units_test.cpp.o.d"
  "cloudcache_util_tests"
  "cloudcache_util_tests.pdb"
  "cloudcache_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudcache_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
