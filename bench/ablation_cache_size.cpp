// Ablation A4: the bypass-yield cache budget.
//
// The paper adopts "the ideal cache size for net-only, which is 30% of
// the total database size [14]". This sweep validates that adoption in our
// reproduction: below the hot set the cache thrashes (loads that displace
// each other before paying off); above it, extra space only adds disk rent
// without further hits.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/sim/report.h"
#include "src/util/logging.h"

int main(int argc, char** argv) {
  using namespace cloudcache;
  using namespace cloudcache::bench;

  const BenchOptions options = ParseArgs(argc, argv, /*default=*/60'000);
  const PaperSetup setup = MakePaperSetup(options);

  const std::vector<double> fractions = {0.05, 0.10, 0.20, 0.30,
                                         0.40, 0.50};
  TableWriter table({"cache_fraction", "mean_resp_s", "op_cost_$",
                     "net_$", "disk_$", "hit_rate", "loads", "evictions"});
  for (double fraction : fractions) {
    ExperimentConfig config = PaperConfig(options, 10.0);
    config.scheme = SchemeKind::kBypassYield;
    config.customize_bypass =
        [fraction](BypassYieldScheme::Options& bypass) {
          bypass.cache_fraction = fraction;
          // Eagerized loader (break-even at 1/4 accrual): the capacity
          // effect the sweep studies binds within the run length instead
          // of after the paper's million queries. The *relative* shape
          // across fractions is what validates the 30% claim.
          bypass.yield_threshold = 0.25;
        };
    const SimMetrics m =
        RunExperiment(setup.catalog, setup.templates, config);
    CLOUDCACHE_CHECK(
        table
            .AddRow({FormatDouble(fraction, 2),
                     FormatDouble(m.MeanResponse(), 3),
                     FormatDouble(m.operating_cost.Total(), 2),
                     FormatDouble(m.operating_cost.network_dollars, 2),
                     FormatDouble(m.operating_cost.disk_dollars, 2),
                     FormatDouble(m.CacheHitRate(), 3),
                     std::to_string(m.investments),
                     std::to_string(m.evictions)})
            .ok());
    std::fprintf(stderr, "  fraction=%.2f done\n", fraction);
  }
  std::puts(
      "Ablation A4 — bypass-yield cache budget (fraction of database) "
      "@ 10s interval");
  EmitTable(table, options);
  return 0;
}
