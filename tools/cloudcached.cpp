// cloudcached — the cache economy served over TCP (docs/server.md).
//
// Hosts the exact object graph cloudcache_sim drives — same flags, same
// config hash — behind the length-prefixed wire protocol, with graceful
// shutdown into a snapshot that `cloudcache_sim --restore` accepts.
//
// Exit codes: 0 = clean shutdown (snapshot written when configured);
// 1 = runtime error (bind failure, hard-restore failure, snapshot
// failure, tainted run); 2 = flag errors.
//
// Examples:
//   cloudcached --port=4909 --queries=100000 --snapshot-path=econ.snap
//   cloudcached --port=0 --port-file=port.txt --tenants=4
//   cloudcached --snapshot-path=econ.snap --restore   (resume a drain)

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/server/server.h"
#include "src/util/status.h"
#include "tools/experiment_flags.h"

namespace {

using namespace cloudcache;
using tools::ExperimentFlags;
using tools::FlagParse;
using tools::FlagValue;

std::sig_atomic_t g_signal = 0;

void OnSignal(int) { g_signal = 1; }

struct Args {
  ExperimentFlags exp;  // Shared experiment surface (config-hash parity).
  std::string host = "127.0.0.1";
  uint16_t port = server::kDefaultPort;  // 0 = ephemeral.
  std::string port_file;  // Write the bound port here after startup.
  uint32_t workers = 0;   // 0 = streams + headroom.
  std::string snapshot_path;
  uint64_t checkpoint_every = 0;
  std::string restore;  // "", "auto", or "hard".
  uint64_t log_every = 0;
  int32_t metrics_port = -1;  // -1 = off, 0 = ephemeral.
  std::string metrics_port_file;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [flags]\n"
      "%s"
      "  --host=ADDR           numeric IPv4 listen address (127.0.0.1)\n"
      "  --port=N              TCP port; 0 binds an ephemeral port (4909)\n"
      "  --port-file=PATH      write the bound port here once listening\n"
      "  --workers=N           handler threads (0 = streams + headroom)\n"
      "  --snapshot-path=P     snapshot file for shutdown + checkpoints\n"
      "  --checkpoint-every=N  also snapshot every N served queries\n"
      "  --restore[=auto]      resume from the snapshot; bare --restore\n"
      "                        fails loudly on a missing/corrupt/mismatched\n"
      "                        snapshot, =auto falls back to a fresh economy\n"
      "  --log-every=N         progress line to stderr every N queries\n"
      "  --metrics-port=N      serve Prometheus text on GET /metrics; 0\n"
      "                        binds an ephemeral port (default: off)\n"
      "  --metrics-port-file=P write the bound metrics port here\n",
      argv0, tools::ExperimentFlagsUsage());
}

std::optional<Args> Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const FlagParse shared = tools::ParseExperimentFlag(argv[i], &args.exp);
    if (shared == FlagParse::kConsumed) continue;
    if (shared == FlagParse::kError) return std::nullopt;
    std::string v;
    if (FlagValue(argv[i], "--host", &v)) args.host = v;
    else if (FlagValue(argv[i], "--port", &v))
      args.port = static_cast<uint16_t>(std::strtoul(v.c_str(), nullptr, 10));
    else if (FlagValue(argv[i], "--port-file", &v)) args.port_file = v;
    else if (FlagValue(argv[i], "--workers", &v))
      args.workers =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    else if (FlagValue(argv[i], "--snapshot-path", &v))
      args.snapshot_path = v;
    else if (FlagValue(argv[i], "--checkpoint-every", &v))
      args.checkpoint_every = std::stoull(v);
    else if (std::strcmp(argv[i], "--restore") == 0) args.restore = "hard";
    else if (FlagValue(argv[i], "--restore", &v)) args.restore = v;
    else if (FlagValue(argv[i], "--log-every", &v))
      args.log_every = std::stoull(v);
    else if (FlagValue(argv[i], "--metrics-port", &v))
      args.metrics_port =
          static_cast<int32_t>(std::strtol(v.c_str(), nullptr, 10));
    else if (FlagValue(argv[i], "--metrics-port-file", &v))
      args.metrics_port_file = v;
    else {
      Usage(argv[0]);
      return std::nullopt;
    }
  }
  return args;
}

Status ValidateArgs(const Args& args) {
  CLOUDCACHE_RETURN_IF_ERROR(tools::ValidateExperimentFlags(args.exp));
  if (!args.restore.empty() && args.restore != "auto" &&
      args.restore != "hard") {
    return Status::InvalidArgument(
        "--restore wants no value (hard), =auto, or =hard; got '" +
        args.restore + "'");
  }
  if ((args.checkpoint_every > 0 || !args.restore.empty()) &&
      args.snapshot_path.empty()) {
    return Status::InvalidArgument(
        "--checkpoint-every/--restore need a snapshot file; add "
        "--snapshot-path=PATH");
  }
  if (args.metrics_port > 65535) {
    return Status::InvalidArgument("--metrics-port wants 0..65535");
  }
  if (!args.metrics_port_file.empty() && args.metrics_port < 0) {
    return Status::InvalidArgument(
        "--metrics-port-file needs --metrics-port");
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Args> parsed = Parse(argc, argv);
  if (!parsed) return 2;
  const Args& args = *parsed;
  const Status valid = ValidateArgs(args);
  if (!valid.ok()) {
    std::fprintf(stderr, "%s\n", valid.ToString().c_str());
    return 2;
  }

  Catalog catalog;
  std::vector<QueryTemplate> templates;
  const Status made =
      tools::MakeExperimentCatalog(args.exp, &catalog, &templates);
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.ToString().c_str());
    return 2;
  }
  Result<ExperimentConfig> built =
      tools::MakeExperimentFlagsConfig(args.exp);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 2;
  }
  const ExperimentConfig config = std::move(built).value();

  server::ServerOptions options;
  options.host = args.host;
  options.port = args.port;
  options.workers = args.workers;
  options.snapshot_path = args.snapshot_path;
  options.checkpoint_every = args.checkpoint_every;
  options.log_every = args.log_every;
  options.metrics_port = args.metrics_port;
  if (args.restore == "auto") {
    options.restore = CheckpointOptions::Restore::kAuto;
  } else if (args.restore == "hard") {
    options.restore = CheckpointOptions::Restore::kHard;
  }

  server::CloudCachedServer server(&catalog, &templates, &config, options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cloudcached: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "cloudcached: serving %s:%u, %u stream(s), config hash "
               "%016llx\n",
               args.host.c_str(), server.port(), args.exp.tenants,
               static_cast<unsigned long long>(server.config_hash()));
  if (args.metrics_port >= 0) {
    std::fprintf(stderr, "cloudcached: metrics on http://%s:%u/metrics\n",
                 args.host.c_str(), server.metrics_port());
  }
  if (!args.metrics_port_file.empty()) {
    std::FILE* f = std::fopen(args.metrics_port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cloudcached: cannot write %s\n",
                   args.metrics_port_file.c_str());
      server.RequestShutdown();
      const Status ignored = server.Wait();
      (void)ignored;
      return 1;
    }
    std::fprintf(f, "%u\n", server.metrics_port());
    std::fclose(f);
  }
  if (!args.port_file.empty()) {
    std::FILE* f = std::fopen(args.port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cloudcached: cannot write %s\n",
                   args.port_file.c_str());
      server.RequestShutdown();
      const Status ignored = server.Wait();
      (void)ignored;
      return 1;
    }
    std::fprintf(f, "%u\n", server.port());
    std::fclose(f);
  }

  // SIGINT/SIGTERM begin the graceful drain; a client Shutdown message
  // does the same through RequestShutdown.
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = OnSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  while (!server.ShutdownRequested() && g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.RequestShutdown();
  const Status finished = server.Wait();
  if (!finished.ok()) {
    std::fprintf(stderr, "cloudcached: %s\n", finished.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "cloudcached: drained after %llu served; shutdown clean\n",
               static_cast<unsigned long long>(server.processed()));
  return 0;
}
