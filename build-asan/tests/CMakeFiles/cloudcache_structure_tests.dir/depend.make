# Empty dependencies file for cloudcache_structure_tests.
# This may be replaced when dependencies are built.
