// Ablation A1: the regret fraction `a` of Eq. 3,
// InvestIn(S) = round(regret_S / (a * CR)).
//
// Small `a` makes the cloud invest on a hair trigger (many builds, fast
// adaptation, more sunk cost when the workload drifts); large `a` makes it
// inert. The paper fixes a single a; this sweep shows the cost/latency
// trade-off around the calibrated default at the moderate 10 s interval.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/sim/report.h"
#include "src/util/logging.h"

int main(int argc, char** argv) {
  using namespace cloudcache;
  using namespace cloudcache::bench;

  const BenchOptions options = ParseArgs(argc, argv, /*default=*/60'000);
  const PaperSetup setup = MakePaperSetup(options);

  const std::vector<double> fractions = {0.005, 0.01, 0.02, 0.05,
                                         0.1,   0.3,  0.6};
  std::vector<SweepVariant> variants;
  for (double a : fractions) {
    variants.push_back(
        {"a=" + FormatDouble(a, 3), [a](ExperimentConfig& config) {
           config.customize_econ = [a](EconScheme::Config& econ) {
             econ.economy.initial_credit = Money::FromDollars(200);
             econ.economy.model_build_latency = false;
             econ.economy.regret_fraction_a = a;
           };
         }});
  }
  ExperimentConfig base = PaperConfig(options, 10.0);
  base.scheme = SchemeKind::kEconCheap;
  const std::vector<SweepResult> results = RunVariantSweep(
      setup, options, base, {SchemeKind::kEconCheap}, std::move(variants));

  TableWriter table({"a", "mean_resp_s", "op_cost_$", "investments",
                     "evictions", "hit_rate", "credit_$"});
  for (size_t v = 0; v < fractions.size(); ++v) {
    const SimMetrics& m = results[v].metrics;
    CLOUDCACHE_CHECK(table
                         .AddRow({FormatDouble(fractions[v], 3),
                                  FormatDouble(m.MeanResponse(), 3),
                                  FormatDouble(m.operating_cost.Total(), 2),
                                  std::to_string(m.investments),
                                  std::to_string(m.evictions),
                                  FormatDouble(m.CacheHitRate(), 3),
                                  FormatDouble(m.final_credit.ToDollars(),
                                               2)})
                         .ok());
  }
  std::puts("Ablation A1 — regret fraction a (Eq. 3), econ-cheap @ 10s");
  EmitTable(table, options);
  return 0;
}
