#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/util/logging.h"

namespace cloudcache {

/// Fixed-size worker pool over a FIFO task queue.
///
/// Built for the experiment sweeps in src/sim/sweep.h: tasks are
/// coarse-grained (whole simulations), so a mutex-guarded queue is plenty —
/// contention is one lock per ~seconds of work. Results and exceptions
/// travel through the std::future returned by Submit().
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least one).
  explicit ThreadPool(size_t num_threads);

  /// Runs every task already queued, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn(args...)`. The future carries the return value, or the
  /// exception the task threw. Must not be called after the destructor has
  /// begun (there is no other shutdown path).
  template <typename Fn, typename... Args>
  auto Submit(Fn&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<std::decay_t<Fn>,
                                          std::decay_t<Args>...>> {
    using R = std::invoke_result_t<std::decay_t<Fn>, std::decay_t<Args>...>;
    // shared_ptr because std::function requires copyable callables and
    // packaged_task is move-only.
    auto task = std::make_shared<std::packaged_task<R()>>(
        std::bind(std::forward<Fn>(fn), std::forward<Args>(args)...));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      CLOUDCACHE_CHECK(!stopping_) << "Submit() on a stopping ThreadPool";
      tasks_.push([task] { (*task)(); });
    }
    wake_workers_.notify_one();
    return result;
  }

  size_t num_threads() const { return workers_.size(); }

  /// Tasks queued but not yet picked up by a worker.
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::queue<std::function<void()>> tasks_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cloudcache
