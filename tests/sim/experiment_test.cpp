#include "src/sim/experiment.h"

#include <gtest/gtest.h>

#include "src/catalog/tpch.h"
#include "src/util/rng.h"

namespace cloudcache {
namespace {

class ExperimentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog(MakeTpchCatalog(20.0));
    templates_ = new std::vector<QueryTemplate>(MakeTpchTemplates());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    delete templates_;
  }

  ExperimentConfig SmallConfig(SchemeKind scheme) {
    ExperimentConfig config;
    config.scheme = scheme;
    config.sim.num_queries = 300;
    config.workload.seed = 3;
    return config;
  }

  static Catalog* catalog_;
  static std::vector<QueryTemplate>* templates_;
};

Catalog* ExperimentTest::catalog_ = nullptr;
std::vector<QueryTemplate>* ExperimentTest::templates_ = nullptr;

TEST_F(ExperimentTest, SchemeNamePropagates) {
  for (SchemeKind kind : PaperSchemes()) {
    const SimMetrics m =
        RunExperiment(*catalog_, *templates_, SmallConfig(kind));
    EXPECT_EQ(m.scheme_name, SchemeKindToString(kind));
  }
}

TEST_F(ExperimentTest, IndexCandidateCountIsRespected) {
  // With an empty advisor pool, econ-cheap degenerates to column scans
  // plus parallelism: no index is ever resident.
  ExperimentConfig config = SmallConfig(SchemeKind::kEconCheap);
  config.index_candidates = 0;
  config.sim.num_queries = 1500;
  config.customize_econ = [](EconScheme::Config& econ) {
    econ.economy.regret_fraction_a = 0.001;
    econ.economy.conservative_provider = false;
    econ.economy.initial_credit = Money::FromDollars(50);
    econ.economy.model_build_latency = false;
  };
  const SimMetrics m = RunExperiment(*catalog_, *templates_, config);
  EXPECT_EQ(m.queries, 1500u);
  // The run completes; any investments are columns or CPU nodes. (The
  // absence of indexes is observable through the scheme's cache in the
  // scheme tests; here we pin the plumbing: no crash, full service.)
  EXPECT_EQ(m.served, 1500u);
}

TEST_F(ExperimentTest, WorkloadKnobsReachTheGenerator) {
  ExperimentConfig slow = SmallConfig(SchemeKind::kBypassYield);
  slow.workload.interarrival_seconds = 100.0;
  ExperimentConfig fast = SmallConfig(SchemeKind::kBypassYield);
  fast.workload.interarrival_seconds = 1.0;
  const SimMetrics slow_m = RunExperiment(*catalog_, *templates_, slow);
  const SimMetrics fast_m = RunExperiment(*catalog_, *templates_, fast);
  // Same queries, 100x the wall clock: strictly more disk-rent exposure
  // (both runs cache nothing at this length, so rent is zero-zero; the
  // observable difference is the timeline span).
  ASSERT_GE(slow_m.cost_over_time.size(), 2u);
  ASSERT_GE(fast_m.cost_over_time.size(), 2u);
  EXPECT_GT(slow_m.cost_over_time.times().back(),
            fast_m.cost_over_time.times().back() * 50);
}

TEST_F(ExperimentTest, MeteredPricesControlOperatingCost) {
  ExperimentConfig cheap_net = SmallConfig(SchemeKind::kBypassYield);
  cheap_net.sim.metered_prices.network_byte_dollars = 0.0;
  const SimMetrics free_net =
      RunExperiment(*catalog_, *templates_, cheap_net);
  const SimMetrics paid_net = RunExperiment(
      *catalog_, *templates_, SmallConfig(SchemeKind::kBypassYield));
  EXPECT_EQ(free_net.operating_cost.network_dollars, 0.0);
  EXPECT_GT(paid_net.operating_cost.network_dollars, 0.0);
  // Physical behaviour (what executed where) is identical: metering does
  // not feed back into bypass decisions.
  EXPECT_EQ(free_net.served_in_cache, paid_net.served_in_cache);
  EXPECT_DOUBLE_EQ(free_net.MeanResponse(), paid_net.MeanResponse());
}

TEST_F(ExperimentTest, ExperimentSeedSeparatesFromWorkloadSeed) {
  // config.seed feeds the scheme's budget jitter; workload.seed feeds the
  // query stream. Changing only the scheme seed must leave the stream
  // identical (same backend traffic for bypass, which has no jitter).
  ExperimentConfig a = SmallConfig(SchemeKind::kEconCheap);
  ExperimentConfig b = a;
  b.seed = a.seed + 1;
  const SimMetrics ma = RunExperiment(*catalog_, *templates_, a);
  const SimMetrics mb = RunExperiment(*catalog_, *templates_, b);
  // Same queries, different users: revenue differs, query count equal.
  EXPECT_EQ(ma.queries, mb.queries);
  EXPECT_NE(ma.revenue, mb.revenue);
}

TEST_F(ExperimentTest, TenantWorkloadOptionsFollowTheSeedDiscipline) {
  WorkloadOptions base;
  base.seed = 123;
  base.interarrival_seconds = 10.0;
  TenancyOptions tenancy;
  tenancy.tenants = 4;

  // Tenant 0 is the classic stream; tenants 1+ fork via MixSeed.
  EXPECT_EQ(TenantWorkloadOptions(base, tenancy, 0).seed, base.seed);
  for (uint32_t t = 1; t < 4; ++t) {
    const WorkloadOptions options = TenantWorkloadOptions(base, tenancy, t);
    EXPECT_EQ(options.seed, MixSeed(base.seed, t));
    EXPECT_EQ(options.tenant_id, t);
    EXPECT_EQ(options.popularity_offset, t);
  }
}

TEST_F(ExperimentTest, TenantTrafficSharesPreserveAggregateLoad) {
  WorkloadOptions base;
  base.interarrival_seconds = 10.0;
  for (double skew : {0.0, 1.0, 2.0}) {
    TenancyOptions tenancy;
    tenancy.tenants = 5;
    tenancy.traffic_skew = skew;
    double aggregate_rate = 0;
    double previous_rate = 1e9;
    for (uint32_t t = 0; t < 5; ++t) {
      const double interarrival =
          TenantWorkloadOptions(base, tenancy, t).interarrival_seconds;
      ASSERT_GT(interarrival, 0.0);
      const double rate = 1.0 / interarrival;
      aggregate_rate += rate;
      EXPECT_LE(rate, previous_rate);  // Tenant 0 is hottest.
      previous_rate = rate;
    }
    EXPECT_NEAR(aggregate_rate, 1.0 / base.interarrival_seconds, 1e-12);
  }
  // Zero skew splits evenly; one tenant degenerates to the base stream.
  TenancyOptions even;
  even.tenants = 4;
  EXPECT_DOUBLE_EQ(
      TenantWorkloadOptions(base, even, 2).interarrival_seconds, 40.0);
  TenancyOptions solo;
  EXPECT_DOUBLE_EQ(
      TenantWorkloadOptions(base, solo, 0).interarrival_seconds, 10.0);
}

TEST_F(ExperimentTest, NeutralTenantBudgetOverridesAreBitIdentical) {
  // Overrides at scale 1.0 build per-tenant synthesizers whose options
  // equal the shared one; every budget draw computes the same doubles, so
  // the runs must agree to the bit — the guard against the override path
  // perturbing tenants it does not change.
  ExperimentConfig config = SmallConfig(SchemeKind::kEconCheap);
  config.tenancy.tenants = 2;
  const SimMetrics baseline = RunExperiment(*catalog_, *templates_, config);

  ExperimentConfig neutral = config;
  neutral.tenancy.tenant_budgets = {{0, 1.0, 1.0}, {1, 1.0, 1.0}};
  const SimMetrics overridden =
      RunExperiment(*catalog_, *templates_, neutral);
  EXPECT_EQ(baseline.revenue.micros(), overridden.revenue.micros());
  EXPECT_EQ(baseline.profit.micros(), overridden.profit.micros());
  ASSERT_EQ(baseline.tenants.size(), overridden.tenants.size());
  for (size_t t = 0; t < baseline.tenants.size(); ++t) {
    EXPECT_EQ(baseline.tenants[t].revenue.micros(),
              overridden.tenants[t].revenue.micros());
    EXPECT_EQ(baseline.tenants[t].case_a, overridden.tenants[t].case_a);
  }
}

TEST_F(ExperimentTest, TenantBudgetOverridesShapeThatTenantOnly) {
  // Squeezing tenant 1's willingness to pay moves its budget mass below
  // the back-end quote: its case-A share grows and its revenue drops,
  // while tenant 0 — identical stream, untouched shape — keeps drawing
  // the same budgets from its own jitter stream.
  ExperimentConfig config = SmallConfig(SchemeKind::kEconCheap);
  config.sim.num_queries = 600;
  config.tenancy.tenants = 2;
  const SimMetrics base = RunExperiment(*catalog_, *templates_, config);

  ExperimentConfig squeezed = config;
  squeezed.tenancy.tenant_budgets = {{1, 0.3, 1.0}};
  const SimMetrics shaped = RunExperiment(*catalog_, *templates_, squeezed);

  ASSERT_EQ(base.tenants.size(), 2u);
  ASSERT_EQ(shaped.tenants.size(), 2u);
  // The workload derivation is untouched: tenant 0 sees the same stream
  // (its *outcomes* may shift — the tenants share one cache, and tenant
  // 1's collapsed demand changes what gets built).
  EXPECT_EQ(base.tenants[0].queries, shaped.tenants[0].queries);
  // Tenant 1's budgets collapsed below the quote: more case A, less
  // revenue.
  EXPECT_GT(shaped.tenants[1].case_a, base.tenants[1].case_a);
  EXPECT_LT(shaped.tenants[1].revenue.micros(),
            base.tenants[1].revenue.micros());
}

TEST_F(ExperimentTest, MultiTenantExperimentEndToEnd) {
  ExperimentConfig config = SmallConfig(SchemeKind::kEconCheap);
  config.tenancy.tenants = 3;
  config.tenancy.traffic_skew = 1.0;
  const SimMetrics metrics = RunExperiment(*catalog_, *templates_, config);
  EXPECT_EQ(metrics.queries, 300u);
  ASSERT_EQ(metrics.tenants.size(), 3u);
  uint64_t sum = 0;
  for (const TenantMetrics& tenant : metrics.tenants) {
    EXPECT_GT(tenant.queries, 0u);
    sum += tenant.queries;
  }
  EXPECT_EQ(sum, metrics.queries);
  // Zipf shares with skew 1: tenant 0 gets the largest slice.
  EXPECT_GT(metrics.tenants[0].queries, metrics.tenants[1].queries);
  EXPECT_GT(metrics.tenants[1].queries, metrics.tenants[2].queries);
}

}  // namespace
}  // namespace cloudcache
