#pragma once

#include "src/catalog/schema.h"

namespace cloudcache {

/// Builds an SDSS SkyServer-like astronomy schema.
///
/// The paper motivates the system with massive scientific archives such as
/// SDSS [9]; its evaluation approximates SDSS with TPC-H templates. This
/// catalog gives the examples a genuinely scientific-looking schema: a wide
/// `photoobj` photometric-object fact table, a `specobj` spectroscopic
/// table, and small `field`/`run` dimension tables.
///
/// `object_count` is the number of photometric objects (SDSS DR7 carried
/// ~3.5e8); all other tables scale from it. The default yields ~73 GB of
/// raw column data (the real PhotoObjAll is wider; this subset keeps the
/// hot columns the example workloads touch). Raise object_count for
/// TB-scale experiments.
Catalog MakeSdssCatalog(uint64_t object_count = 350'000'000ull);

}  // namespace cloudcache
