// Ablation A3: WAN throughput between cache and back-end.
//
// The paper fixes t = 25 Mbps (the maximum SDSS inter-node throughput
// [24]). Faster links shrink both the latency and the dollar advantage of
// caching: transfers cost the same per byte but finish sooner and tie up
// less fn-CPU, so back-end execution keeps up with the cache and the
// economy rationally builds less. The sweep locates that crossover.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/sim/report.h"
#include "src/util/logging.h"

int main(int argc, char** argv) {
  using namespace cloudcache;
  using namespace cloudcache::bench;

  const BenchOptions options = ParseArgs(argc, argv, /*default=*/40'000);
  const PaperSetup setup = MakePaperSetup(options);

  const std::vector<double> mbps = {5, 25, 100, 400, 1000};
  const std::vector<SchemeKind> schemes = {SchemeKind::kBypassYield,
                                           SchemeKind::kEconCheap};
  std::vector<SweepVariant> variants;
  for (double rate : mbps) {
    variants.push_back(
        {FormatDouble(rate, 0) + " Mbps", [rate](ExperimentConfig& config) {
           config.decision_prices.wan_mbps = rate;
           config.sim.metered_prices.wan_mbps = rate;
         }});
  }
  const std::vector<SweepResult> results = RunVariantSweep(
      setup, options, PaperConfig(options, 10.0), schemes,
      std::move(variants));

  TableWriter table({"wan_mbps", "scheme", "mean_resp_s", "op_cost_$",
                     "net_$", "hit_rate", "investments"});
  for (size_t v = 0; v < mbps.size(); ++v) {
    for (size_t s = 0; s < schemes.size(); ++s) {
      const SimMetrics& m = results[v * schemes.size() + s].metrics;
      CLOUDCACHE_CHECK(
          table
              .AddRow({FormatDouble(mbps[v], 0), m.scheme_name,
                       FormatDouble(m.MeanResponse(), 3),
                       FormatDouble(m.operating_cost.Total(), 2),
                       FormatDouble(m.operating_cost.network_dollars, 2),
                       FormatDouble(m.CacheHitRate(), 3),
                       std::to_string(m.investments)})
              .ok());
    }
  }
  std::puts("Ablation A3 — WAN throughput sweep @ 10s interval");
  EmitTable(table, options);
  return 0;
}
