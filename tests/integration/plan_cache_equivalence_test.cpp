// The plan-skeleton cache is a pure memoization: with
// EnumeratorOptions::enable_plan_cache off, every simulation must replay
// to the last micro-dollar and the last timeline byte. This is the
// end-to-end gate for the per-query hot-path overhaul — any invalidation
// bug (stale missing-sets, skipped re-pricing, wrong candidate
// generation) shows up here as a diverging metric.

#include <gtest/gtest.h>

#include "src/catalog/tpch.h"
#include "src/sim/experiment.h"
#include "tests/testing/metrics_equal.h"

namespace cloudcache {
namespace {

using cloudcache::testing::ExpectBitIdenticalMetrics;

/// Runs `config` twice — plan cache on, then off — and compares.
void RunPair(const Catalog& catalog,
             const std::vector<QueryTemplate>& templates,
             ExperimentConfig config) {
  const auto base_customize = config.customize_econ;
  auto with_cache = [base_customize](bool enable) {
    return [base_customize, enable](EconScheme::Config& econ) {
      if (base_customize) base_customize(econ);
      econ.enumerator.enable_plan_cache = enable;
    };
  };

  config.customize_econ = with_cache(true);
  const SimMetrics on = RunExperiment(catalog, templates, config);
  config.customize_econ = with_cache(false);
  const SimMetrics off = RunExperiment(catalog, templates, config);
  ExpectBitIdenticalMetrics(on, off);
}

class PlanCacheEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog(MakeTpchCatalog(100.0));
    templates_ = new std::vector<QueryTemplate>(MakeTpchTemplates());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
    delete templates_;
    templates_ = nullptr;
  }

  /// Active economy configuration (investments within the short run, as in
  /// paper_properties_test) so the cache actually goes through epoch
  /// invalidations, build latencies aside.
  static ExperimentConfig ActiveConfig(SchemeKind scheme, double interval) {
    ExperimentConfig config;
    config.scheme = scheme;
    config.workload.interarrival_seconds = interval;
    config.workload.seed = 29;
    config.seed = 30;
    config.sim.num_queries = 1'500;
    config.customize_econ = [](EconScheme::Config& econ) {
      econ.economy.regret_fraction_a = 0.001;
      econ.economy.conservative_provider = false;
      econ.economy.initial_credit = Money::FromDollars(20);
      econ.economy.model_build_latency = false;
    };
    return config;
  }

  static Catalog* catalog_;
  static std::vector<QueryTemplate>* templates_;
};

Catalog* PlanCacheEquivalenceTest::catalog_ = nullptr;
std::vector<QueryTemplate>* PlanCacheEquivalenceTest::templates_ = nullptr;

TEST_F(PlanCacheEquivalenceTest, Fig4GridBitIdentical) {
  for (double interval : PaperInterarrivals()) {
    for (SchemeKind scheme : PaperSchemes()) {
      if (scheme == SchemeKind::kBypassYield) continue;  // No enumerator.
      SCOPED_TRACE(std::string(SchemeKindToString(scheme)) + " @ " +
                   std::to_string(interval) + "s");
      RunPair(*catalog_, *templates_, ActiveConfig(scheme, interval));
    }
  }
}

TEST_F(PlanCacheEquivalenceTest, AblationVariantBitIdentical) {
  // One A2-style ablation point: short amortization horizon and a linear
  // budget shape stress different plan-pricing paths than the defaults.
  ExperimentConfig config = ActiveConfig(SchemeKind::kEconCheap, 10.0);
  const auto base_customize = config.customize_econ;
  config.customize_econ = [base_customize](EconScheme::Config& econ) {
    base_customize(econ);
    econ.economy.amortization_horizon = 2'000;
    econ.budget.shape = BudgetModelOptions::Shape::kLinear;
  };
  RunPair(*catalog_, *templates_, config);
}

TEST_F(PlanCacheEquivalenceTest, BuildLatencyVariantBitIdentical) {
  // With build latency modeled, structures activate between queries
  // (epoch moves inside ActivatePending rather than at investment time) —
  // a distinct invalidation schedule worth pinning.
  ExperimentConfig config = ActiveConfig(SchemeKind::kEconFast, 1.0);
  const auto base_customize = config.customize_econ;
  config.customize_econ = [base_customize](EconScheme::Config& econ) {
    base_customize(econ);
    econ.economy.model_build_latency = true;
  };
  RunPair(*catalog_, *templates_, config);
}

}  // namespace
}  // namespace cloudcache
