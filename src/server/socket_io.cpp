#include "src/server/socket_io.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cloudcache {
namespace server {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

Status FillAddress(const std::string& host, uint16_t port,
                   sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  CLOUDCACHE_RETURN_IF_ERROR(FillAddress(host, port, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket socket(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    return Errno("connect to " + host + ":" + std::to_string(port));
  }
  SetNoDelay(fd);
  return socket;
}

Result<Socket> ListenTcp(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  CLOUDCACHE_RETURN_IF_ERROR(FillAddress(host, port, &addr));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket socket(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, 64) != 0) return Errno("listen");
  return socket;
}

Result<uint16_t> LocalPort(const Socket& socket) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr),
                    &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

void EnableNoDelay(const Socket& socket) { SetNoDelay(socket.fd()); }

Status WriteAll(const Socket& socket, const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(socket.fd(), data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteFrame(const Socket& socket, const persist::Encoder& payload) {
  const std::vector<uint8_t>& body = payload.buffer();
  if (body.size() > kMaxFramePayloadBytes) {
    return Status::InvalidArgument("frame payload exceeds the 1 MiB cap");
  }
  persist::Encoder framed;
  framed.PutU32(static_cast<uint32_t>(body.size()));
  framed.PutBytes(body.data(), body.size());
  return WriteAll(socket, framed.buffer().data(), framed.size());
}

namespace {

/// Reads exactly `size` bytes. `*clean_eof` is set (and OK returned) only
/// when the peer closed before the FIRST byte — i.e. at a frame boundary
/// when called for a length prefix; mid-buffer EOF is an error.
Status ReadExact(const Socket& socket, uint8_t* data, size_t size,
                 bool* clean_eof) {
  *clean_eof = false;
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(socket.fd(), data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {
      if (got == 0) {
        *clean_eof = true;
        return Status::OK();
      }
      return Status::IoError("connection closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status ReadFrame(const Socket& socket, std::vector<uint8_t>* payload,
                 bool* clean_eof) {
  payload->clear();
  uint8_t prefix[4];
  CLOUDCACHE_RETURN_IF_ERROR(
      ReadExact(socket, prefix, sizeof(prefix), clean_eof));
  if (*clean_eof) return Status::OK();
  persist::Decoder dec(prefix, sizeof(prefix));
  uint32_t length = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec.ReadU32(&length));
  if (length == 0) {
    return Status::InvalidArgument("empty frame (no message type byte)");
  }
  if (length > kMaxFramePayloadBytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(length) +
        " bytes exceeds the 1 MiB cap");
  }
  payload->resize(length);
  bool mid_eof = false;
  const Status read =
      ReadExact(socket, payload->data(), payload->size(), &mid_eof);
  CLOUDCACHE_RETURN_IF_ERROR(read);
  if (mid_eof) {
    return Status::IoError("connection closed between length and payload");
  }
  return Status::OK();
}

}  // namespace server
}  // namespace cloudcache
