#pragma once

#include <cstdint>

namespace cloudcache {

/// Byte-size literals used throughout the catalog and cost model.
inline constexpr uint64_t kKiB = 1024ull;
inline constexpr uint64_t kMiB = 1024ull * kKiB;
inline constexpr uint64_t kGiB = 1024ull * kMiB;
inline constexpr uint64_t kTiB = 1024ull * kGiB;

/// Decimal units (networks and cloud price sheets are decimal).
inline constexpr uint64_t kKB = 1000ull;
inline constexpr uint64_t kMB = 1000ull * kKB;
inline constexpr uint64_t kGB = 1000ull * kMB;
inline constexpr uint64_t kTB = 1000ull * kGB;

/// Simulation time is a double count of seconds since simulation start.
using SimTime = double;

/// Durations share the representation of SimTime.
using Duration = double;

inline constexpr Duration kSecond = 1.0;
inline constexpr Duration kMinute = 60.0;
inline constexpr Duration kHour = 3600.0;
inline constexpr Duration kDay = 86400.0;
inline constexpr Duration kMonth = 30.0 * kDay;  // Cloud billing month.

/// Converts a link rate in megabits per second to bytes per second.
constexpr double MbpsToBytesPerSec(double mbps) { return mbps * 1e6 / 8.0; }

/// Converts bytes to (decimal) gigabytes, for $/GB price sheets.
constexpr double BytesToGB(uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kGB);
}

}  // namespace cloudcache
