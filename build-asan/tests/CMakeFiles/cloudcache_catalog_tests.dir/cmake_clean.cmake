file(REMOVE_RECURSE
  "CMakeFiles/cloudcache_catalog_tests.dir/catalog/schema_test.cpp.o"
  "CMakeFiles/cloudcache_catalog_tests.dir/catalog/schema_test.cpp.o.d"
  "CMakeFiles/cloudcache_catalog_tests.dir/catalog/tpch_test.cpp.o"
  "CMakeFiles/cloudcache_catalog_tests.dir/catalog/tpch_test.cpp.o.d"
  "cloudcache_catalog_tests"
  "cloudcache_catalog_tests.pdb"
  "cloudcache_catalog_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudcache_catalog_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
