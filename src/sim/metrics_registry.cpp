// FillFromSimMetrics lives in the sim layer (it reads SimMetrics), while
// its declaration stays in obs/registry.h behind a forward declaration —
// obs never includes upward.

#include <string>
#include <vector>

#include "src/obs/registry.h"
#include "src/sim/metrics.h"

namespace cloudcache {
namespace obs {

void FillFromSimMetrics(const SimMetrics& m, Registry* r) {
  const std::vector<double> kQuantiles = {0.5, 0.95, 0.99};

  r->Counter("cloudcache_queries_total", "Queries offered to the scheme",
             static_cast<double>(m.queries));
  r->Counter("cloudcache_served_total", "Queries served",
             static_cast<double>(m.served));
  r->Counter("cloudcache_served_cache_total",
             "Queries served from the cache",
             static_cast<double>(m.served_in_cache));
  r->Counter("cloudcache_served_backend_total",
             "Queries served from the back-end",
             static_cast<double>(m.served_in_backend));
  r->Counter("cloudcache_wan_bytes_total",
             "Bytes shipped across the wide-area network",
             static_cast<double>(m.wan_bytes));

  r->Summary("cloudcache_response_seconds",
             "Response time over served queries", m.response_hist,
             kQuantiles);

  r->Counter("cloudcache_investments_total",
             "Structures the economy built",
             static_cast<double>(m.investments));
  r->Counter("cloudcache_evictions_total",
             "Structures evicted after maintenance failure",
             static_cast<double>(m.evictions));
  r->Counter("cloudcache_throttled_total",
             "Queries served under admission throttling",
             static_cast<double>(m.throttled));
  r->Counter("cloudcache_budget_case_total",
             "Budget case mix of served queries",
             static_cast<double>(m.case_a), {{"case", "a"}});
  r->Counter("cloudcache_budget_case_total", "",
             static_cast<double>(m.case_b), {{"case", "b"}});
  r->Counter("cloudcache_budget_case_total", "",
             static_cast<double>(m.case_c), {{"case", "c"}});

  r->Counter("cloudcache_operating_cost_dollars",
             "Metered operating cost by resource",
             m.operating_cost.cpu_dollars, {{"resource", "cpu"}});
  r->Counter("cloudcache_operating_cost_dollars", "",
             m.operating_cost.network_dollars, {{"resource", "network"}});
  r->Counter("cloudcache_operating_cost_dollars", "",
             m.operating_cost.disk_dollars, {{"resource", "disk"}});
  r->Counter("cloudcache_operating_cost_dollars", "",
             m.operating_cost.io_dollars, {{"resource", "io"}});
  r->Counter("cloudcache_revenue_dollars", "User payments collected",
             m.revenue.ToDollars());
  r->Counter("cloudcache_profit_dollars", "Margin over metered cost",
             m.profit.ToDollars());
  r->Gauge("cloudcache_credit_dollars", "Cloud credit CR at run end",
           m.final_credit.ToDollars());

  r->Gauge("cloudcache_resident_bytes", "Cache-resident bytes",
           static_cast<double>(m.final_resident_bytes));
  r->Gauge("cloudcache_extra_cpu_nodes", "Extra CPU nodes booted",
           static_cast<double>(m.final_extra_nodes));

  for (const TenantMetrics& t : m.tenants) {
    const std::vector<Label> who = {
        {"tenant", std::to_string(t.tenant_id)}};
    r->Counter("cloudcache_tenant_queries_total", "Per-tenant queries",
               static_cast<double>(t.queries), who);
    r->Counter("cloudcache_tenant_served_total", "Per-tenant served",
               static_cast<double>(t.served), who);
    r->Counter("cloudcache_tenant_throttled_total",
               "Per-tenant queries under admission throttling",
               static_cast<double>(t.throttled), who);
    r->Counter("cloudcache_tenant_revenue_dollars",
               "Per-tenant payments collected", t.revenue.ToDollars(), who);
    r->Summary("cloudcache_tenant_response_seconds",
               "Per-tenant response time", t.response_hist, kQuantiles,
               who);
  }

  if (m.cluster.active) {
    r->Gauge("cloudcache_cluster_nodes", "Cache nodes at run end",
             static_cast<double>(m.cluster.final_nodes));
    r->Gauge("cloudcache_cluster_peak_nodes", "Peak cache nodes",
             static_cast<double>(m.cluster.peak_nodes));
    r->Counter("cloudcache_cluster_scale_out_total",
               "Elastic scale-out events",
               static_cast<double>(m.cluster.scale_out_events));
    r->Counter("cloudcache_cluster_scale_in_total",
               "Elastic scale-in events",
               static_cast<double>(m.cluster.scale_in_events));
    r->Counter("cloudcache_cluster_migrations_total",
               "Structures migrated at scale-in",
               static_cast<double>(m.cluster.migrations));
    r->Counter("cloudcache_cluster_migration_failures_total",
               "Migration attempts the heir could not afford",
               static_cast<double>(m.cluster.migration_failures));
    r->Counter("cloudcache_cluster_node_rent_dollars",
               "Metered rent of cluster nodes",
               m.cluster.node_rent_dollars);
  }
}

}  // namespace obs
}  // namespace cloudcache
