#include "src/econ/amortizer.h"

#include <algorithm>
#include <vector>

#include "src/util/logging.h"

namespace cloudcache {

Amortizer::Amortizer(int64_t horizon) : horizon_(horizon) {
  CLOUDCACHE_CHECK_GE(horizon, 1);
}

void Amortizer::RegisterBuild(StructureId id, Money build_cost) {
  CLOUDCACHE_CHECK_GE(build_cost.micros(), 0);
  schedules_[id] = Schedule{build_cost, 0};
}

Money Amortizer::PendingShare(StructureId id) const {
  auto it = schedules_.find(id);
  if (it == schedules_.end()) return Money();
  const Schedule& s = it->second;
  if (s.shares_charged >= horizon_) return Money();
  return EvenShare(s.build_cost, horizon_, s.shares_charged);
}

Money Amortizer::ChargeShare(StructureId id) {
  auto it = schedules_.find(id);
  if (it == schedules_.end()) return Money();
  Schedule& s = it->second;
  if (s.shares_charged >= horizon_) return Money();
  const Money share = EvenShare(s.build_cost, horizon_, s.shares_charged);
  ++s.shares_charged;
  if (s.shares_charged >= horizon_) schedules_.erase(it);
  return share;
}

Money Amortizer::Unamortized(StructureId id) const {
  auto it = schedules_.find(id);
  if (it == schedules_.end()) return Money();
  const Schedule& s = it->second;
  Money remaining;
  for (int64_t i = s.shares_charged; i < horizon_; ++i) {
    remaining += EvenShare(s.build_cost, horizon_, i);
  }
  return remaining;
}

Money Amortizer::Cancel(StructureId id) {
  const Money remaining = Unamortized(id);
  schedules_.erase(id);
  return remaining;
}

void Amortizer::SaveState(persist::Encoder* enc) const {
  std::vector<StructureId> ids;
  ids.reserve(schedules_.size());
  for (const auto& [id, schedule] : schedules_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  enc->PutU64(ids.size());
  for (StructureId id : ids) {
    const Schedule& schedule = schedules_.at(id);
    enc->PutU32(id);
    enc->PutMoney(schedule.build_cost);
    enc->PutI64(schedule.shares_charged);
  }
}

Status Amortizer::RestoreState(persist::Decoder* dec) {
  schedules_.clear();
  uint64_t count = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&count));
  for (uint64_t i = 0; i < count; ++i) {
    StructureId id = 0;
    Schedule schedule;
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&id));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&schedule.build_cost));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadI64(&schedule.shares_charged));
    if (schedule.build_cost.micros() < 0 || schedule.shares_charged < 0 ||
        schedule.shares_charged >= horizon_) {
      return Status::InvalidArgument(
          "snapshot amortization schedule is out of range");
    }
    if (!schedules_.emplace(id, schedule).second) {
      return Status::InvalidArgument(
          "snapshot amortizer repeats structure id " + std::to_string(id));
    }
  }
  return Status::OK();
}

}  // namespace cloudcache
