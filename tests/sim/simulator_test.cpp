#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include "src/baseline/bypass_yield.h"
#include "tests/testing/fixtures.h"

namespace cloudcache {
namespace {

/// One template over the tiny catalog's fact table: result-heavy clustered
/// scan, so caching pays off quickly.
std::vector<QueryTemplate> TinyTemplates() {
  return {{
      .name = "fact_scan",
      .table = "fact",
      .output_columns = {"f_key", "f_value"},
      .predicates = {{"f_date", 0.1, 0.3, false, true},
                     {"f_value", 0.4, 0.6, false, false}},
      .row_limit_fraction = 1.0,
      .cpu_multiplier = 1.0,
      .parallel_fraction = 0.9,
  }};
}

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest()
      : catalog_(testing::MakeTinyCatalog()),
        prices_(testing::MakeRoundPrices()) {
    Result<std::vector<ResolvedTemplate>> resolved =
        ResolveTemplates(catalog_, TinyTemplates());
    CLOUDCACHE_CHECK(resolved.ok());
    templates_ = *resolved;
  }

  WorkloadOptions DefaultWorkload() {
    WorkloadOptions options;
    options.interarrival_seconds = 10.0;
    return options;
  }

  SimulatorOptions DefaultSim(uint64_t queries = 500) {
    SimulatorOptions options;
    options.num_queries = queries;
    options.metered_prices = prices_;
    return options;
  }

  Catalog catalog_;
  PriceList prices_;
  std::vector<ResolvedTemplate> templates_;
};

TEST_F(SimulatorTest, RunsRequestedQueryCount) {
  BypassYieldScheme::Options bypass_options;
    bypass_options.cache_fraction = 0.9;  // Fit all three hot columns.
    BypassYieldScheme scheme(&catalog_, bypass_options);
  WorkloadGenerator workload(&catalog_, templates_, DefaultWorkload());
  Simulator sim(&catalog_, &scheme, &workload, DefaultSim(123));
  const SimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.queries, 123u);
  EXPECT_EQ(metrics.served, 123u);  // Bypass serves everything.
  EXPECT_EQ(metrics.scheme_name, "bypass");
}

TEST_F(SimulatorTest, BackendPlusCacheEqualsServed) {
  BypassYieldScheme::Options bypass_options;
    bypass_options.cache_fraction = 0.9;  // Fit all three hot columns.
    BypassYieldScheme scheme(&catalog_, bypass_options);
  WorkloadGenerator workload(&catalog_, templates_, DefaultWorkload());
  Simulator sim(&catalog_, &scheme, &workload, DefaultSim());
  const SimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.served_in_backend + metrics.served_in_cache,
            metrics.served);
  EXPECT_GT(metrics.served_in_cache, 0u);  // The column loads eventually.
}

TEST_F(SimulatorTest, OperatingCostAccumulates) {
  BypassYieldScheme::Options bypass_options;
    bypass_options.cache_fraction = 0.9;  // Fit all three hot columns.
    BypassYieldScheme scheme(&catalog_, bypass_options);
  WorkloadGenerator workload(&catalog_, templates_, DefaultWorkload());
  Simulator sim(&catalog_, &scheme, &workload, DefaultSim());
  const SimMetrics metrics = sim.Run();
  EXPECT_GT(metrics.operating_cost.Total(), 0.0);
  EXPECT_GT(metrics.operating_cost.network_dollars, 0.0);
  // Bypass caches columns -> disk rent is metered even though the scheme's
  // own cost model prices disk at zero.
  EXPECT_GT(metrics.operating_cost.disk_dollars, 0.0);
}

TEST_F(SimulatorTest, ResponseTimeStatsPopulated) {
  BypassYieldScheme::Options bypass_options;
    bypass_options.cache_fraction = 0.9;  // Fit all three hot columns.
    BypassYieldScheme scheme(&catalog_, bypass_options);
  WorkloadGenerator workload(&catalog_, templates_, DefaultWorkload());
  Simulator sim(&catalog_, &scheme, &workload, DefaultSim());
  const SimMetrics metrics = sim.Run();
  EXPECT_GT(metrics.MeanResponse(), 0.0);
  EXPECT_GE(metrics.response_sketch.Quantile(0.95),
            metrics.response_sketch.Quantile(0.5));
  EXPECT_EQ(metrics.response_seconds.count(),
            static_cast<int64_t>(metrics.served));
}

TEST_F(SimulatorTest, TimelinesRecorded) {
  BypassYieldScheme::Options bypass_options;
    bypass_options.cache_fraction = 0.9;  // Fit all three hot columns.
    BypassYieldScheme scheme(&catalog_, bypass_options);
  WorkloadGenerator workload(&catalog_, templates_, DefaultWorkload());
  SimulatorOptions options = DefaultSim();
  options.timeline_stride = 100;
  Simulator sim(&catalog_, &scheme, &workload, options);
  const SimMetrics metrics = sim.Run();
  EXPECT_GE(metrics.cost_over_time.size(), 5u);
  // Cumulative cost is non-decreasing.
  double last = -1;
  for (double v : metrics.cost_over_time.values()) {
    EXPECT_GE(v, last);
    last = v;
  }
}

TEST_F(SimulatorTest, EconSchemeMetricsComplete) {
  EconScheme::Config config = EconScheme::EconCheapConfig();
  config.economy.initial_credit = Money::FromDollars(5);
  config.economy.conservative_provider = false;
  config.economy.model_build_latency = false;
  config.economy.amortization_horizon = 100;
  config.economy.regret_fraction_a = 0.01;
  EconScheme scheme(&catalog_, &prices_, {}, std::move(config));
  WorkloadGenerator workload(&catalog_, templates_, DefaultWorkload());
  Simulator sim(&catalog_, &scheme, &workload, DefaultSim(1000));
  const SimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.queries, 1000u);
  EXPECT_GT(metrics.revenue.micros(), 0);
  EXPECT_EQ(metrics.case_a + metrics.case_b + metrics.case_c, 1000u);
  EXPECT_EQ(metrics.final_credit, scheme.credit());
}

TEST_F(SimulatorTest, DeterministicEndToEnd) {
  auto run = [&]() {
    BypassYieldScheme::Options bypass_options;
    bypass_options.cache_fraction = 0.9;  // Fit all three hot columns.
    BypassYieldScheme scheme(&catalog_, bypass_options);
    WorkloadGenerator workload(&catalog_, templates_, DefaultWorkload());
    Simulator sim(&catalog_, &scheme, &workload, DefaultSim());
    const SimMetrics metrics = sim.Run();
    return std::make_pair(metrics.operating_cost.Total(),
                          metrics.MeanResponse());
  };
  EXPECT_EQ(run(), run());
}

TEST_F(SimulatorTest, LongerIntervalsCostMoreDiskRent) {
  auto disk_cost = [&](double interval) {
    BypassYieldScheme::Options bypass_options;
    bypass_options.cache_fraction = 0.9;  // Fit all three hot columns.
    BypassYieldScheme scheme(&catalog_, bypass_options);
    WorkloadOptions wl = DefaultWorkload();
    wl.interarrival_seconds = interval;
    WorkloadGenerator workload(&catalog_, templates_, wl);
    Simulator sim(&catalog_, &scheme, &workload, DefaultSim());
    return sim.Run().operating_cost.disk_dollars;
  };
  // Same query stream stretched over more wall-clock: strictly more rent.
  EXPECT_GT(disk_cost(60.0), disk_cost(1.0));
}

}  // namespace
}  // namespace cloudcache
