#include "src/query/templates.h"

#include <gtest/gtest.h>

#include "src/catalog/sdss.h"
#include "src/catalog/tpch.h"

namespace cloudcache {
namespace {

class TpchTemplatesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = MakeTpchCatalog(1.0);
    Result<std::vector<ResolvedTemplate>> resolved =
        ResolveTemplates(catalog_, MakeTpchTemplates());
    ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
    resolved_ = *resolved;
  }

  Catalog catalog_;
  std::vector<ResolvedTemplate> resolved_;
};

TEST_F(TpchTemplatesTest, PaperHasSevenTemplates) {
  EXPECT_EQ(MakeTpchTemplates().size(), 7u);
  EXPECT_EQ(resolved_.size(), 7u);
}

TEST_F(TpchTemplatesTest, EveryTemplateResolves) {
  for (const ResolvedTemplate& tmpl : resolved_) {
    EXPECT_FALSE(tmpl.output_columns.empty()) << tmpl.name;
    EXPECT_FALSE(tmpl.predicates.empty()) << tmpl.name;
  }
}

TEST_F(TpchTemplatesTest, EachTemplateHasClusteredLocalityPredicate) {
  for (const ResolvedTemplate& tmpl : resolved_) {
    bool clustered = false;
    for (const auto& pred : tmpl.predicates) clustered |= pred.clustered;
    EXPECT_TRUE(clustered) << tmpl.name;
  }
}

TEST_F(TpchTemplatesTest, InstantiationIsValidQuery) {
  Rng rng(1);
  for (size_t i = 0; i < resolved_.size(); ++i) {
    const Query q = InstantiateQuery(resolved_[i], catalog_, rng,
                                     static_cast<int>(i), 100 + i);
    EXPECT_TRUE(q.Validate(catalog_).ok()) << resolved_[i].name;
    EXPECT_EQ(q.template_id, static_cast<int>(i));
    EXPECT_EQ(q.id, 100 + i);
  }
}

TEST_F(TpchTemplatesTest, SelectivityStaysInRange) {
  Rng rng(2);
  for (int round = 0; round < 200; ++round) {
    for (const ResolvedTemplate& tmpl : resolved_) {
      const Query q = InstantiateQuery(tmpl, catalog_, rng, 0, round);
      for (size_t p = 0; p < q.predicates.size(); ++p) {
        EXPECT_GE(q.predicates[p].selectivity,
                  tmpl.predicates[p].min_selectivity - 1e-12);
        EXPECT_LE(q.predicates[p].selectivity,
                  tmpl.predicates[p].max_selectivity + 1e-12);
      }
    }
  }
}

TEST_F(TpchTemplatesTest, SelectivityScaleShrinksResults) {
  Rng rng1(3), rng2(3);
  const Query wide = InstantiateQuery(resolved_[1], catalog_, rng1, 1, 0,
                                      /*selectivity_scale=*/1.0);
  const Query narrow = InstantiateQuery(resolved_[1], catalog_, rng2, 1, 0,
                                        /*selectivity_scale=*/0.1);
  EXPECT_LT(narrow.CombinedSelectivity(), wide.CombinedSelectivity());
}

TEST_F(TpchTemplatesTest, ScaleClampsToLegalRange) {
  Rng rng(4);
  const Query q =
      InstantiateQuery(resolved_[0], catalog_, rng, 0, 0, 1e12);
  for (const Predicate& p : q.predicates) {
    EXPECT_LE(p.selectivity, 1.0);
    EXPECT_GT(p.selectivity, 0.0);
  }
}

TEST_F(TpchTemplatesTest, DeterministicGivenSeed) {
  Rng a(5), b(5);
  const Query qa = InstantiateQuery(resolved_[2], catalog_, a, 2, 7);
  const Query qb = InstantiateQuery(resolved_[2], catalog_, b, 2, 7);
  EXPECT_EQ(qa.result_bytes, qb.result_bytes);
  ASSERT_EQ(qa.predicates.size(), qb.predicates.size());
  for (size_t i = 0; i < qa.predicates.size(); ++i) {
    EXPECT_EQ(qa.predicates[i].selectivity, qb.predicates[i].selectivity);
  }
}

TEST_F(TpchTemplatesTest, TemplatesCoverMultipleTables) {
  std::set<TableId> tables;
  for (const ResolvedTemplate& tmpl : resolved_) tables.insert(tmpl.table);
  EXPECT_GE(tables.size(), 4u);  // lineitem, orders, customer, part.
}

TEST_F(TpchTemplatesTest, AggregationTemplatesHaveTinyResults) {
  Rng rng(6);
  const Query q = InstantiateQuery(resolved_[0], catalog_, rng, 0, 0);
  // pricing_summary collapses to a handful of groups.
  EXPECT_LT(q.result_rows, 1000u);
}

TEST_F(TpchTemplatesTest, ScanTemplatesAreResultHeavy) {
  Rng rng(7);
  const Query q = InstantiateQuery(resolved_[1], catalog_, rng, 1, 0);
  EXPECT_GT(q.result_bytes, 10'000u);  // At SF1; scales with the catalog.
}

TEST(TemplatesResolveTest, MissingColumnFails) {
  const Catalog catalog = MakeTpchCatalog(1.0);
  std::vector<QueryTemplate> templates = MakeTpchTemplates();
  templates[0].output_columns.push_back("no_such_column");
  EXPECT_EQ(ResolveTemplates(catalog, templates).status().code(),
            StatusCode::kNotFound);
}

TEST(TemplatesResolveTest, MissingTableFails) {
  const Catalog catalog = MakeTpchCatalog(1.0);
  std::vector<QueryTemplate> templates = MakeTpchTemplates();
  templates[0].table = "no_such_table";
  EXPECT_FALSE(ResolveTemplates(catalog, templates).ok());
}

TEST(TemplatesResolveTest, MalformedSelectivityRangeFails) {
  const Catalog catalog = MakeTpchCatalog(1.0);
  std::vector<QueryTemplate> templates = MakeTpchTemplates();
  templates[0].predicates[0].min_selectivity = 0.5;
  templates[0].predicates[0].max_selectivity = 0.1;
  EXPECT_EQ(ResolveTemplates(catalog, templates).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SdssTemplatesTest, ResolveAgainstSdssCatalog) {
  const Catalog catalog = MakeSdssCatalog(1'000'000);
  Result<std::vector<ResolvedTemplate>> resolved =
      ResolveTemplates(catalog, MakeSdssTemplates());
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  EXPECT_EQ(resolved->size(), 5u);
  Rng rng(8);
  for (size_t i = 0; i < resolved->size(); ++i) {
    const Query q = InstantiateQuery((*resolved)[i], catalog, rng,
                                     static_cast<int>(i), i);
    EXPECT_TRUE(q.Validate(catalog).ok()) << (*resolved)[i].name;
  }
}

TEST(SdssTemplatesTest, DoesNotResolveAgainstTpch) {
  const Catalog catalog = MakeTpchCatalog(1.0);
  EXPECT_FALSE(ResolveTemplates(catalog, MakeSdssTemplates()).ok());
}

}  // namespace
}  // namespace cloudcache
