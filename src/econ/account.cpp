#include "src/econ/account.h"

#include "src/util/logging.h"

namespace cloudcache {

void CloudAccount::DepositRevenue(Money amount, SimTime now) {
  CLOUDCACHE_CHECK_GE(amount.micros(), 0);
  credit_ += amount;
  revenue_ += amount;
  Record(now);
}

void CloudAccount::ChargeExpenditure(Money amount, SimTime now) {
  CLOUDCACHE_CHECK_GE(amount.micros(), 0);
  credit_ -= amount;
  expenditure_ += amount;
  Record(now);
}

Status CloudAccount::WithdrawInvestment(Money amount, SimTime now) {
  CLOUDCACHE_CHECK_GE(amount.micros(), 0);
  if (amount > credit_) {
    return Status::ResourceExhausted(
        "investment " + amount.ToString() + " exceeds credit " +
        credit_.ToString());
  }
  credit_ -= amount;
  investment_ += amount;
  Record(now);
  return Status::OK();
}

}  // namespace cloudcache
