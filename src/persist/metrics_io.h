#pragma once

#include "src/persist/codec.h"
#include "src/persist/util_io.h"
#include "src/sim/metrics.h"

namespace cloudcache {
namespace persist {

/// Serializers for the full SimMetrics tree. A checkpoint must carry the
/// in-flight metrics of the interrupted run — counters, Welford
/// accumulators, quantile bins, timelines, tenant and cluster slices —
/// because the crash-recovery invariant is that the resumed run's final
/// SimMetrics is bit-identical to the uninterrupted run's, and metrics
/// accumulate from query zero.

void SaveResourceBreakdown(const ResourceBreakdown& breakdown, Encoder* enc);
Status RestoreResourceBreakdown(Decoder* dec, ResourceBreakdown* breakdown);

void SaveTenantMetrics(const TenantMetrics& tenant, Encoder* enc);
Status RestoreTenantMetrics(Decoder* dec, TenantMetrics* tenant);

void SaveClusterMetrics(const ClusterMetrics& cluster, Encoder* enc);
Status RestoreClusterMetrics(Decoder* dec, ClusterMetrics* cluster);

void SaveSimMetrics(const SimMetrics& metrics, Encoder* enc);
Status RestoreSimMetrics(Decoder* dec, SimMetrics* metrics);

}  // namespace persist
}  // namespace cloudcache
