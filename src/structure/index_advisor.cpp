#include "src/structure/index_advisor.h"

#include <algorithm>
#include <unordered_set>

namespace cloudcache {

namespace {

/// Appends `key` to `out` unless an identical candidate was seen already.
void Emit(const StructureKey& key,
          std::unordered_set<StructureKey, StructureKeyHash>* seen,
          std::vector<StructureKey>* out) {
  if (seen->insert(key).second) out->push_back(key);
}

}  // namespace

std::vector<StructureKey> RecommendIndexes(
    const Catalog& catalog, const std::vector<ResolvedTemplate>& templates,
    size_t target_count, size_t max_index_width) {
  std::vector<StructureKey> out;
  std::unordered_set<StructureKey, StructureKeyHash> seen;

  // Pass 1: single-column indexes on every predicate column, in template
  // order. These are the cheapest useful candidates, listed first like an
  // advisor's top recommendations.
  for (const ResolvedTemplate& tmpl : templates) {
    for (const auto& pred : tmpl.predicates) {
      Emit(IndexKey(catalog, {pred.column}), &seen, &out);
    }
  }

  // Pass 2: per-template composite over all predicate columns.
  for (const ResolvedTemplate& tmpl : templates) {
    if (tmpl.predicates.size() < 2) continue;
    std::vector<ColumnId> cols;
    for (const auto& pred : tmpl.predicates) cols.push_back(pred.column);
    if (cols.size() > max_index_width) cols.resize(max_index_width);
    Emit(IndexKey(catalog, std::move(cols)), &seen, &out);
  }

  // Pass 3: covering index per template: predicates then outputs.
  for (const ResolvedTemplate& tmpl : templates) {
    std::vector<ColumnId> cols;
    for (const auto& pred : tmpl.predicates) cols.push_back(pred.column);
    for (ColumnId col : tmpl.output_columns) {
      if (std::find(cols.begin(), cols.end(), col) == cols.end()) {
        cols.push_back(col);
      }
    }
    if (cols.size() > max_index_width) cols.resize(max_index_width);
    if (cols.size() < 2) continue;
    Emit(IndexKey(catalog, std::move(cols)), &seen, &out);
  }

  // Pass 4: (predicate, output) pairs, round-robin over templates, until
  // the pool reaches target_count or pairs are exhausted.
  bool emitted = true;
  for (size_t pred_i = 0; emitted && out.size() < target_count; ++pred_i) {
    emitted = false;
    for (const ResolvedTemplate& tmpl : templates) {
      if (pred_i >= tmpl.predicates.size()) continue;
      const ColumnId pred_col = tmpl.predicates[pred_i].column;
      for (ColumnId out_col : tmpl.output_columns) {
        if (out_col == pred_col) continue;
        if (out.size() >= target_count) break;
        Emit(IndexKey(catalog, {pred_col, out_col}), &seen, &out);
        emitted = true;
      }
      if (out.size() >= target_count) break;
    }
  }

  if (out.size() > target_count) out.resize(target_count);
  return out;
}

}  // namespace cloudcache
