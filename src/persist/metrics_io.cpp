#include "src/persist/metrics_io.h"

#include <utility>
#include <vector>

namespace cloudcache {
namespace persist {

void SaveResourceBreakdown(const ResourceBreakdown& breakdown, Encoder* enc) {
  enc->PutDouble(breakdown.cpu_dollars);
  enc->PutDouble(breakdown.network_dollars);
  enc->PutDouble(breakdown.disk_dollars);
  enc->PutDouble(breakdown.io_dollars);
}

Status RestoreResourceBreakdown(Decoder* dec, ResourceBreakdown* breakdown) {
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&breakdown->cpu_dollars));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&breakdown->network_dollars));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&breakdown->disk_dollars));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&breakdown->io_dollars));
  return Status::OK();
}

void SaveTenantMetrics(const TenantMetrics& tenant, Encoder* enc) {
  enc->PutU32(tenant.tenant_id);
  enc->PutU64(tenant.queries);
  enc->PutU64(tenant.served);
  enc->PutU64(tenant.served_in_cache);
  enc->PutU64(tenant.served_in_backend);
  enc->PutU64(tenant.wan_bytes);
  SaveRunningStats(tenant.response_seconds, enc);
  tenant.response_hist.SaveState(enc);
  SaveResourceBreakdown(tenant.operating_cost, enc);
  enc->PutMoney(tenant.revenue);
  enc->PutMoney(tenant.profit);
  enc->PutMoney(tenant.final_regret);
  enc->PutU64(tenant.case_a);
  enc->PutU64(tenant.case_b);
  enc->PutU64(tenant.case_c);
  enc->PutU64(tenant.investments);
  enc->PutU64(tenant.evictions);
  enc->PutU64(tenant.throttled);
}

Status RestoreTenantMetrics(Decoder* dec, TenantMetrics* tenant) {
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&tenant->tenant_id));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&tenant->queries));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&tenant->served));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&tenant->served_in_cache));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&tenant->served_in_backend));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&tenant->wan_bytes));
  CLOUDCACHE_RETURN_IF_ERROR(
      RestoreRunningStats(dec, &tenant->response_seconds));
  CLOUDCACHE_RETURN_IF_ERROR(tenant->response_hist.RestoreState(dec));
  CLOUDCACHE_RETURN_IF_ERROR(
      RestoreResourceBreakdown(dec, &tenant->operating_cost));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&tenant->revenue));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&tenant->profit));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&tenant->final_regret));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&tenant->case_a));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&tenant->case_b));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&tenant->case_c));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&tenant->investments));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&tenant->evictions));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&tenant->throttled));
  return Status::OK();
}

void SaveClusterMetrics(const ClusterMetrics& cluster, Encoder* enc) {
  enc->PutBool(cluster.active);
  enc->PutU32(cluster.final_nodes);
  enc->PutU32(cluster.peak_nodes);
  enc->PutU64(cluster.scale_out_events);
  enc->PutU64(cluster.scale_in_events);
  enc->PutU64(cluster.migrations);
  enc->PutU64(cluster.migration_failures);
  enc->PutDouble(cluster.node_rent_dollars);
  enc->PutU64(cluster.nodes.size());
  for (const NodeMetrics& node : cluster.nodes) {
    enc->PutU32(node.ordinal);
    enc->PutU64(node.queries);
    enc->PutU64(node.served);
    enc->PutU64(node.served_in_cache);
    enc->PutMoney(node.revenue);
    enc->PutMoney(node.profit);
    enc->PutMoney(node.final_credit);
    enc->PutU64(node.final_resident_bytes);
    enc->PutDouble(node.rented_at_seconds);
  }
}

Status RestoreClusterMetrics(Decoder* dec, ClusterMetrics* cluster) {
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadBool(&cluster->active));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&cluster->final_nodes));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&cluster->peak_nodes));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&cluster->scale_out_events));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&cluster->scale_in_events));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&cluster->migrations));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&cluster->migration_failures));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&cluster->node_rent_dollars));
  uint64_t node_count = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&node_count));
  cluster->nodes.clear();
  cluster->nodes.resize(node_count);
  for (NodeMetrics& node : cluster->nodes) {
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&node.ordinal));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&node.queries));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&node.served));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&node.served_in_cache));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&node.revenue));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&node.profit));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&node.final_credit));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&node.final_resident_bytes));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&node.rented_at_seconds));
  }
  return Status::OK();
}

void SaveSimMetrics(const SimMetrics& metrics, Encoder* enc) {
  enc->PutString(metrics.scheme_name);
  SaveRunningStats(metrics.response_seconds, enc);
  metrics.response_hist.SaveState(enc);
  SaveResourceBreakdown(metrics.operating_cost, enc);
  enc->PutMoney(metrics.revenue);
  enc->PutMoney(metrics.profit);
  enc->PutMoney(metrics.final_credit);
  enc->PutU64(metrics.queries);
  enc->PutU64(metrics.served);
  enc->PutU64(metrics.served_in_cache);
  enc->PutU64(metrics.served_in_backend);
  enc->PutU64(metrics.wan_bytes);
  enc->PutU64(metrics.investments);
  enc->PutU64(metrics.evictions);
  enc->PutU64(metrics.throttled);
  enc->PutU64(metrics.case_a);
  enc->PutU64(metrics.case_b);
  enc->PutU64(metrics.case_c);
  enc->PutU64(metrics.final_resident_bytes);
  enc->PutU32(metrics.final_extra_nodes);
  SaveTimeSeries(metrics.cost_over_time, enc);
  SaveTimeSeries(metrics.credit_over_time, enc);
  enc->PutU64(metrics.tenants.size());
  for (const TenantMetrics& tenant : metrics.tenants) {
    SaveTenantMetrics(tenant, enc);
  }
  enc->PutDouble(metrics.fairness.response_jain);
  enc->PutDouble(metrics.fairness.response_max_min);
  enc->PutDouble(metrics.fairness.billed_jain);
  enc->PutDouble(metrics.fairness.billed_max_min);
  SaveClusterMetrics(metrics.cluster, enc);
}

Status RestoreSimMetrics(Decoder* dec, SimMetrics* metrics) {
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadString(&metrics->scheme_name));
  CLOUDCACHE_RETURN_IF_ERROR(
      RestoreRunningStats(dec, &metrics->response_seconds));
  CLOUDCACHE_RETURN_IF_ERROR(metrics->response_hist.RestoreState(dec));
  CLOUDCACHE_RETURN_IF_ERROR(
      RestoreResourceBreakdown(dec, &metrics->operating_cost));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&metrics->revenue));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&metrics->profit));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&metrics->final_credit));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&metrics->queries));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&metrics->served));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&metrics->served_in_cache));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&metrics->served_in_backend));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&metrics->wan_bytes));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&metrics->investments));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&metrics->evictions));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&metrics->throttled));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&metrics->case_a));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&metrics->case_b));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&metrics->case_c));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&metrics->final_resident_bytes));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&metrics->final_extra_nodes));
  CLOUDCACHE_RETURN_IF_ERROR(RestoreTimeSeries(dec, &metrics->cost_over_time));
  CLOUDCACHE_RETURN_IF_ERROR(
      RestoreTimeSeries(dec, &metrics->credit_over_time));
  uint64_t tenant_count = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&tenant_count));
  metrics->tenants.clear();
  metrics->tenants.resize(tenant_count);
  for (TenantMetrics& tenant : metrics->tenants) {
    CLOUDCACHE_RETURN_IF_ERROR(RestoreTenantMetrics(dec, &tenant));
  }
  CLOUDCACHE_RETURN_IF_ERROR(
      dec->ReadDouble(&metrics->fairness.response_jain));
  CLOUDCACHE_RETURN_IF_ERROR(
      dec->ReadDouble(&metrics->fairness.response_max_min));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&metrics->fairness.billed_jain));
  CLOUDCACHE_RETURN_IF_ERROR(
      dec->ReadDouble(&metrics->fairness.billed_max_min));
  CLOUDCACHE_RETURN_IF_ERROR(RestoreClusterMetrics(dec, &metrics->cluster));
  return Status::OK();
}

}  // namespace persist
}  // namespace cloudcache
