// cloudcache_sim — command-line front end to the simulator.
//
// Runs one scheme against one workload configuration and prints the full
// metric report, or — with --sweep — the whole paper grid (four schemes x
// four inter-arrival times) fanned out over a thread pool; the building
// block for scripted parameter studies beyond the canned bench binaries.
//
// Examples:
//   cloudcache_sim --scheme=econ-cheap --queries=100000 --interarrival=10
//   cloudcache_sim --scheme=bypass --scale-tb=1.0 --arrival=poisson
//   cloudcache_sim --scheme=econ-fast --catalog=sdss --csv=credit.csv
//   cloudcache_sim --sweep --queries=40000 --threads=8   (Fig. 4/5 grid)
//   cloudcache_sim --tenants=4 --tenant-skew=1.0   (multi-tenant economy)
//   cloudcache_sim --nodes=2 --elastic=on          (elastic cache cluster)
//   cloudcache_sim --trace-out=stream.csv --queries=50000   (record only)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/catalog/sdss.h"
#include "src/catalog/tpch.h"
#include "src/sim/experiment.h"
#include "src/sim/report.h"
#include "src/sim/sweep.h"
#include "src/util/logging.h"
#include "src/util/status.h"
#include "src/util/units.h"
#include "src/workload/trace.h"

namespace {

using namespace cloudcache;

struct Args {
  std::string scheme = "econ-cheap";
  std::string catalog = "tpch";
  double scale_tb = 2.5;
  uint64_t queries = 50'000;
  double interarrival = 10.0;
  std::string arrival = "fixed";
  double skew = 1.0;
  double repeat = 0.3;
  uint64_t seed = 17;
  double regret_a = 0.02;
  int64_t horizon = 50'000;
  double initial_credit = 200.0;
  bool build_latency = false;
  bool plan_cache = true;
  uint32_t tenants = 1;      // Concurrent query streams.
  double tenant_skew = 0.0;  // Zipf skew of per-tenant traffic shares.
  bool fair_eviction = false;  // Tenant-aware eviction weighting.
  bool admission = false;      // Per-tenant admission control.
  double admission_ratio = 2.0;  // Unmonetized-regret / revenue throttle.
  std::vector<TenantBudgetShape> tenant_budgets;  // --tenant-budget=t:p[:t].
  uint32_t nodes = 1;            // Cluster cache nodes.
  bool elastic = false;          // Economic scale-out/in.
  double node_rent_multiplier = 1.0;  // Rented-node rent scale.
  uint32_t max_nodes = 4;        // Elasticity ceiling.
  bool sweep = false;     // Run the full scheme x interarrival grid.
  unsigned threads = 0;   // Sweep workers; 0 = hardware concurrency.
  std::string csv;        // Credit/cost timeline CSV.
  std::string trace_out;  // Record the workload instead of simulating.
  uint64_t checkpoint_every = 0;  // Snapshot cadence in queries (0 = off).
  std::string checkpoint_path;    // Snapshot file.
  std::string restore;            // "", "auto", or "hard".
  uint64_t crash_after = 0;       // Crash-injection point (0 = off).
  // Whether single-run-only flags were given (to warn under --sweep).
  bool scheme_set = false;
  bool interarrival_set = false;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [flags]\n"
      "  --scheme=bypass|econ-col|econ-cheap|econ-fast   (econ-cheap)\n"
      "  --catalog=tpch|sdss                             (tpch)\n"
      "  --scale-tb=X          TPC-H backend size        (2.5)\n"
      "  --queries=N                                     (50000)\n"
      "  --interarrival=SECS                             (10)\n"
      "  --arrival=fixed|poisson                         (fixed)\n"
      "  --skew=X              template popularity skew  (1.0)\n"
      "  --repeat=P            burst probability         (0.3)\n"
      "  --seed=N                                        (17)\n"
      "  --regret-a=X          a of Eq. 3                (0.02)\n"
      "  --horizon=N           n of Eq. 7                (50000)\n"
      "  --credit=DOLLARS      seed credit               (200)\n"
      "  --build-latency       model structure build latency\n"
      "  --no-plan-cache       disable the plan-skeleton cache (A/B perf)\n"
      "  --tenants=N           concurrent query streams sharing the cache\n"
      "                        (1; >1 merges streams event-driven)\n"
      "  --tenant-skew=X       Zipf skew of per-tenant traffic shares (0)\n"
      "  --fair-eviction       weigh eviction by tenant regret attribution\n"
      "  --admission           throttle tenants with unmonetizable regret\n"
      "  --admission-ratio=X   unmonetized-regret/revenue throttle point (2)\n"
      "  --tenant-budget=T:P[:M]  scale tenant T's budget price multiplier\n"
      "                        by P (and t_max by M); repeatable\n"
      "  --nodes=N             cluster cache nodes (1 = classic single node)\n"
      "  --elastic=on|off      economic node scale-out/in (off)\n"
      "  --node-rent-multiplier=X  rented-node rent vs reservation rate (1)\n"
      "  --max-nodes=N         elasticity ceiling (4)\n"
      "  --sweep               run all 4 schemes x 4 paper intervals\n"
      "  --threads=N           sweep worker threads (0 = all cores); with\n"
      "                        --checkpoint-path, intra-run workers for\n"
      "                        clustered runs (windowed driver)\n"
      "  --csv=PATH            write credit/cost timeline CSV\n"
      "  --trace-out=PATH      write the workload trace and exit\n"
      "  --checkpoint-every=N  snapshot the full economy every N queries\n"
      "  --checkpoint-path=P   snapshot file (required by the flags below)\n"
      "  --restore[=auto]      resume from the snapshot; bare --restore\n"
      "                        fails loudly on a missing/corrupt/mismatched\n"
      "                        snapshot, =auto falls back to a fresh run\n"
      "  --crash-after=K       crash injection: abort without finalizing\n"
      "                        after K queries (exit 3; restore resumes)\n",
      argv0);
}

bool Flag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

std::optional<Args> Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (Flag(argv[i], "--scheme", &v)) { args.scheme = v; args.scheme_set = true; }
    else if (Flag(argv[i], "--catalog", &v)) args.catalog = v;
    else if (Flag(argv[i], "--scale-tb", &v)) args.scale_tb = std::stod(v);
    else if (Flag(argv[i], "--queries", &v)) args.queries = std::stoull(v);
    else if (Flag(argv[i], "--interarrival", &v)) { args.interarrival = std::stod(v); args.interarrival_set = true; }
    else if (Flag(argv[i], "--arrival", &v)) args.arrival = v;
    else if (Flag(argv[i], "--skew", &v)) args.skew = std::stod(v);
    else if (Flag(argv[i], "--repeat", &v)) args.repeat = std::stod(v);
    else if (Flag(argv[i], "--seed", &v)) args.seed = std::stoull(v);
    else if (Flag(argv[i], "--regret-a", &v)) args.regret_a = std::stod(v);
    else if (Flag(argv[i], "--horizon", &v)) args.horizon = std::stoll(v);
    else if (Flag(argv[i], "--credit", &v)) args.initial_credit = std::stod(v);
    else if (std::strcmp(argv[i], "--build-latency") == 0) args.build_latency = true;
    else if (std::strcmp(argv[i], "--no-plan-cache") == 0) args.plan_cache = false;
    else if (Flag(argv[i], "--tenants", &v))
      args.tenants =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    else if (Flag(argv[i], "--tenant-skew", &v)) args.tenant_skew = std::stod(v);
    else if (std::strcmp(argv[i], "--fair-eviction") == 0)
      args.fair_eviction = true;
    else if (std::strcmp(argv[i], "--admission") == 0) args.admission = true;
    else if (Flag(argv[i], "--admission-ratio", &v))
      args.admission_ratio = std::stod(v);
    else if (Flag(argv[i], "--tenant-budget", &v)) {
      // T:P[:M] — tenant index, price-multiplier scale, optional tmax
      // scale. Every field is validated: a stray non-numeric tenant must
      // not silently squeeze tenant 0.
      const auto reject = [] {
        std::fprintf(stderr,
                     "--tenant-budget wants <tenant>:<price>[:<tmax>] "
                     "(numeric fields)\n");
        return std::nullopt;
      };
      TenantBudgetShape shape;
      const size_t first = v.find(':');
      if (first == std::string::npos || first == 0) return reject();
      const std::string tenant_field = v.substr(0, first);
      char* end = nullptr;
      const unsigned long tenant =
          std::strtoul(tenant_field.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') return reject();
      shape.tenant = static_cast<uint32_t>(tenant);
      const size_t second = v.find(':', first + 1);
      const std::string price_field =
          v.substr(first + 1, second == std::string::npos
                                  ? std::string::npos
                                  : second - first - 1);
      if (price_field.empty()) return reject();
      shape.price_scale = std::strtod(price_field.c_str(), &end);
      if (end == nullptr || *end != '\0') return reject();
      if (second != std::string::npos) {
        const std::string tmax_field = v.substr(second + 1);
        if (tmax_field.empty()) return reject();
        shape.tmax_scale = std::strtod(tmax_field.c_str(), &end);
        if (end == nullptr || *end != '\0') return reject();
      }
      args.tenant_budgets.push_back(shape);
    }
    else if (Flag(argv[i], "--nodes", &v))
      args.nodes =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    else if (Flag(argv[i], "--elastic", &v)) {
      if (v == "on") args.elastic = true;
      else if (v == "off") args.elastic = false;
      else {
        std::fprintf(stderr, "--elastic wants on|off\n");
        return std::nullopt;
      }
    }
    else if (Flag(argv[i], "--node-rent-multiplier", &v))
      args.node_rent_multiplier = std::stod(v);
    else if (Flag(argv[i], "--max-nodes", &v))
      args.max_nodes =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    else if (std::strcmp(argv[i], "--sweep") == 0) args.sweep = true;
    else if (Flag(argv[i], "--threads", &v))
      args.threads =
          static_cast<unsigned>(std::strtoul(v.c_str(), nullptr, 10));
    else if (Flag(argv[i], "--csv", &v)) args.csv = v;
    else if (Flag(argv[i], "--trace-out", &v)) args.trace_out = v;
    else if (Flag(argv[i], "--checkpoint-every", &v))
      args.checkpoint_every = std::stoull(v);
    else if (Flag(argv[i], "--checkpoint-path", &v)) args.checkpoint_path = v;
    else if (std::strcmp(argv[i], "--restore") == 0) args.restore = "hard";
    else if (Flag(argv[i], "--restore", &v)) args.restore = v;
    else if (Flag(argv[i], "--crash-after", &v))
      args.crash_after = std::stoull(v);
    else {
      Usage(argv[0]);
      return std::nullopt;
    }
  }
  return args;
}

/// Cross-flag validation, as Status so every rejection carries an
/// actionable message and a non-zero exit (kInvalidArgument throughout;
/// config-mismatch at restore time surfaces later as kFailedPrecondition
/// from the snapshot's config hash).
Status ValidateArgs(const Args& args) {
  if (args.tenants == 0) {
    return Status::InvalidArgument("--tenants must be >= 1");
  }
  if (args.admission_ratio <= 0) {
    return Status::InvalidArgument("--admission-ratio must be > 0");
  }
  for (const TenantBudgetShape& shape : args.tenant_budgets) {
    if (shape.tenant >= args.tenants) {
      return Status::InvalidArgument(
          "--tenant-budget tenant " + std::to_string(shape.tenant) +
          " out of range (tenants=" + std::to_string(args.tenants) + ")");
    }
    // The negated comparison rejects NaN too (NaN > 0 is false).
    if (!(shape.price_scale > 0) || !std::isfinite(shape.price_scale) ||
        !(shape.tmax_scale > 0) || !std::isfinite(shape.tmax_scale)) {
      return Status::InvalidArgument(
          "--tenant-budget scales must be finite and > 0");
    }
  }
  if (args.nodes == 0) {
    return Status::InvalidArgument("--nodes must be >= 1");
  }
  if (args.node_rent_multiplier <= 0) {
    return Status::InvalidArgument("--node-rent-multiplier must be > 0");
  }
  if (!args.restore.empty() && args.restore != "auto" &&
      args.restore != "hard") {
    return Status::InvalidArgument(
        "--restore wants no value (hard), =auto, or =hard; got '" +
        args.restore + "'");
  }
  const bool checkpointing = args.checkpoint_every > 0 ||
                             !args.restore.empty() || args.crash_after > 0;
  if (checkpointing && args.checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "--checkpoint-every/--restore/--crash-after need a snapshot file; "
        "add --checkpoint-path=PATH");
  }
  if (!args.checkpoint_path.empty() && args.sweep) {
    return Status::InvalidArgument(
        "--sweep runs a grid of cells that would clobber one snapshot "
        "file; checkpoint/restore applies to single runs only");
  }
  if (!args.checkpoint_path.empty() && !args.trace_out.empty()) {
    return Status::InvalidArgument(
        "--trace-out records the workload without simulating, so there is "
        "no economy state to checkpoint or restore");
  }
  if (args.crash_after > 0 && args.crash_after >= args.queries) {
    return Status::InvalidArgument(
        "--crash-after=" + std::to_string(args.crash_after) +
        " never fires: the run finalizes at --queries=" +
        std::to_string(args.queries) +
        " (crash injection stops strictly before the final query)");
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Args> parsed = Parse(argc, argv);
  if (!parsed) return 2;
  const Args& args = *parsed;
  const Status valid = ValidateArgs(args);
  if (!valid.ok()) {
    std::fprintf(stderr, "%s\n", valid.ToString().c_str());
    return 2;
  }

  Catalog catalog;
  std::vector<QueryTemplate> templates;
  if (args.catalog == "tpch") {
    catalog = MakeTpchCatalog(TpchScaleForBytes(
        static_cast<uint64_t>(args.scale_tb * static_cast<double>(kTB))));
    templates = MakeTpchTemplates();
  } else if (args.catalog == "sdss") {
    catalog = MakeSdssCatalog();
    templates = MakeSdssTemplates();
  } else {
    std::fprintf(stderr, "unknown catalog '%s'\n", args.catalog.c_str());
    return 2;
  }

  ExperimentConfig config;
  config.workload.interarrival_seconds = args.interarrival;
  config.workload.popularity_skew = args.skew;
  config.workload.repeat_probability = args.repeat;
  config.workload.seed = args.seed;
  config.workload.arrival = args.arrival == "poisson"
                                ? WorkloadOptions::Arrival::kPoisson
                                : WorkloadOptions::Arrival::kFixed;
  config.sim.num_queries = args.queries;
  config.tenancy.tenants = args.tenants;
  config.tenancy.traffic_skew = args.tenant_skew;
  config.tenancy.fair_eviction = args.fair_eviction;
  config.tenancy.admission = args.admission;
  if ((args.fair_eviction || args.admission) && args.tenants < 2) {
    std::fprintf(stderr,
                 "note: --fair-eviction/--admission read tenant regret "
                 "attribution; with --tenants=1 they have no effect\n");
  }
  if (!args.tenant_budgets.empty() && args.tenants < 2) {
    std::fprintf(stderr,
                 "note: --tenant-budget applies on the multi-tenant path; "
                 "with --tenants=1 it has no effect\n");
  }
  config.tenancy.tenant_budgets = args.tenant_budgets;
  config.cluster.nodes = args.nodes;
  config.cluster.elastic = args.elastic;
  config.cluster.node_rent_multiplier = args.node_rent_multiplier;
  config.cluster.elasticity.max_nodes =
      std::max(args.max_nodes, args.nodes);
  // One amortization horizon prices structure builds and node rent alike.
  config.cluster.elasticity.amortization_horizon = args.horizon;

  if (!args.trace_out.empty()) {
    Result<std::vector<ResolvedTemplate>> resolved =
        ResolveTemplates(catalog, templates);
    if (!resolved.ok()) {
      std::fprintf(stderr, "%s\n", resolved.status().ToString().c_str());
      return 1;
    }
    WorkloadGenerator generator(&catalog, *resolved, config.workload);
    std::vector<Query> trace;
    trace.reserve(args.queries);
    for (uint64_t i = 0; i < args.queries; ++i) {
      trace.push_back(generator.Next());
    }
    const Status status = TraceWriter::Write(args.trace_out, trace);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu queries to %s\n", trace.size(),
                args.trace_out.c_str());
    return 0;
  }

  config.customize_econ = [&args](EconScheme::Config& econ) {
    econ.economy.regret_fraction_a = args.regret_a;
    econ.economy.amortization_horizon = args.horizon;
    econ.economy.initial_credit = Money::FromDollars(args.initial_credit);
    econ.economy.model_build_latency = args.build_latency;
    econ.economy.admission.throttle_ratio = args.admission_ratio;
    econ.economy.admission.readmit_ratio = args.admission_ratio / 2;
    econ.enumerator.enable_plan_cache = args.plan_cache;
  };

  if (args.sweep) {
    // The whole paper grid (Figs. 4-5) through the parallel sweep engine.
    if (args.scheme_set || args.interarrival_set) {
      std::fprintf(stderr,
                   "note: --sweep runs all 4 schemes x 4 paper intervals; "
                   "--scheme/--interarrival are ignored\n");
    }
    if (!args.csv.empty()) {
      std::fprintf(stderr,
                   "note: --csv writes the single-run timeline only; "
                   "ignored under --sweep\n");
    }
    SweepSpec spec;  // Defaults: paper schemes x paper interarrivals.
    spec.seed_policy = SweepSpec::SeedPolicy::kFixed;
    spec.base_seed = args.seed;
    spec.base = config;
    const std::vector<std::vector<SimMetrics>> rows =
        GroupRowsByInterarrival(
            RunSweep(catalog, templates, spec, args.threads, LogCellDone),
            spec.interarrivals.size());
    std::puts("Operating cost (dollars) by inter-arrival time");
    std::fputs(
        MakeOperatingCostTable(spec.interarrivals, rows).ToAscii().c_str(),
        stdout);
    std::puts("");
    std::puts("Average response time (seconds) by inter-arrival time");
    std::fputs(
        MakeResponseTimeTable(spec.interarrivals, rows).ToAscii().c_str(),
        stdout);
    return 0;
  }

  if (args.scheme == "bypass") {
    config.scheme = SchemeKind::kBypassYield;
  } else if (args.scheme == "econ-col") {
    config.scheme = SchemeKind::kEconCol;
  } else if (args.scheme == "econ-cheap") {
    config.scheme = SchemeKind::kEconCheap;
  } else if (args.scheme == "econ-fast") {
    config.scheme = SchemeKind::kEconFast;
  } else {
    std::fprintf(stderr, "unknown scheme '%s'\n", args.scheme.c_str());
    return 2;
  }

  SimMetrics metrics;
  if (!args.checkpoint_path.empty()) {
    // Checkpoint/restore run. A kFixed one-cell sweep leaves the config
    // untouched, so driving RunExperimentChecked directly is the sweep
    // path bit for bit — plus snapshots, crash injection, and restore.
    config.sim.checkpoint.every = args.checkpoint_every;
    config.sim.checkpoint.path = args.checkpoint_path;
    config.sim.checkpoint.crash_after = args.crash_after;
    config.sim.parallel_threads = args.threads;
    if (args.restore == "auto") {
      config.sim.checkpoint.restore = CheckpointOptions::Restore::kAuto;
    } else if (args.restore == "hard") {
      config.sim.checkpoint.restore = CheckpointOptions::Restore::kHard;
    }
    Result<SimMetrics> run = RunExperimentChecked(catalog, templates, config);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      // Crash injection is a deliberate stop (snapshot on disk, no final
      // report), distinct from a genuine failure.
      return run.status().code() == StatusCode::kResourceExhausted ? 3 : 1;
    }
    metrics = std::move(run).value();
  } else {
    // One cell of the sweep engine: same code path as the grid runs.
    SweepSpec spec;
    spec.schemes = {config.scheme};
    spec.interarrivals = {args.interarrival};
    spec.seed_policy = SweepSpec::SeedPolicy::kFixed;
    spec.base_seed = args.seed;
    spec.base = config;
    std::vector<SweepResult> results =
        RunSweep(catalog, templates, spec, /*n_threads=*/1);
    metrics = std::move(results[0].metrics);
  }
  std::fputs(FormatRunDetail(metrics).c_str(), stdout);
  if (metrics.tenants.size() > 1) {
    std::printf("\nPer-tenant breakdown (%zu tenants, traffic skew %g%s%s)\n",
                metrics.tenants.size(), args.tenant_skew,
                args.fair_eviction ? ", fair-eviction" : "",
                args.admission ? ", admission" : "");
    std::fputs(MakeTenantTable(metrics).ToAscii().c_str(), stdout);
    std::fputs(FormatFairness(metrics).c_str(), stdout);
  }
  if (metrics.cluster.active) {
    std::printf("\nPer-node breakdown (%s)\n",
                args.elastic ? "elastic" : "fixed fleet");
    std::fputs(MakeNodeTable(metrics).ToAscii().c_str(), stdout);
    std::fputs(FormatCluster(metrics).c_str(), stdout);
  }

  if (!args.csv.empty()) {
    TableWriter timeline({"time_s", "cumulative_cost_$", "credit_$"});
    const TimeSeries cost = metrics.cost_over_time.Downsample(2000);
    const TimeSeries credit = metrics.credit_over_time.Downsample(2000);
    for (size_t i = 0; i < cost.size() && i < credit.size(); ++i) {
      CLOUDCACHE_CHECK(
          timeline
              .AddNumericRow({cost.times()[i], cost.values()[i],
                              credit.values()[i]},
                             4)
              .ok());
    }
    const Status status = timeline.WriteCsvFile(args.csv);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("timeline written to %s\n", args.csv.c_str());
  }
  return 0;
}
