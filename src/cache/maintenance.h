#pragma once

#include <unordered_map>

#include "src/cost/cost_model.h"
#include "src/persist/codec.h"
#include "src/structure/structure.h"
#include "src/util/money.h"
#include "src/util/units.h"

namespace cloudcache {

/// Per-structure maintenance accrual and repayment clock (footnote 3 of
/// the paper):
///
///   "As soon as a structure is built in the cache, the query plans that
///    are selected for execution and employ this structure, pay also for
///    its maintenance cost. Each newly selected query plan pays for the
///    accumulated maintenance cost from the time point of the previous
///    query plan that payed off the previously accumulated maintenance
///    cost. Excessive maintenance cost of a structure due to non-usage …
///    can be the reason of structure failure."
///
/// The ledger tracks, for every built structure, the time up to which its
/// maintenance has been repaid by user charges. `Owed()` prices the gap at
/// the decision cost model's rates; `Pay()` advances the clock. The
/// economy evicts structures whose owed rent exceeds a failure threshold.
///
/// Invariant notes: clocks exist exactly for structures between Register
/// and Unregister (the economy keeps this aligned with pending + resident
/// structures); `failure_scale` is policy metadata the economy stamps at
/// build time (tenant-aware eviction widens the failure threshold of
/// broadly-backed structures) and defaults to 1.0, in which case the
/// failure test is byte-for-byte the pre-tenancy one.
class MaintenanceLedger {
 public:
  explicit MaintenanceLedger(const CostModel* model) : model_(model) {}

  /// Starts the clock for a freshly built structure. `build_cost` is
  /// retained as the reference for the failure threshold (a structure
  /// fails when unpaid rent reaches a fraction of what it cost to build);
  /// `failure_scale` multiplies that threshold (>= 1 grants slack, 1.0 is
  /// the classic letter of footnote 3).
  void Register(StructureId id, const StructureKey& key, SimTime now,
                Money build_cost, double failure_scale = 1.0);

  /// The failure-threshold scale recorded at Register time (1.0 if the
  /// structure is untracked).
  double FailureScale(StructureId id) const;

  /// The build cost recorded at Register time.
  Money BuildCostOf(StructureId id) const;

  /// Stops tracking an evicted structure. Returns the rent that was never
  /// repaid (the cloud's write-off).
  Money Unregister(StructureId id, SimTime now);

  /// Rent accrued since the last payment, priced by the decision model.
  Money Owed(StructureId id, SimTime now) const;

  /// Rent owed, capped at `cap_seconds` worth of rent. This is what one
  /// selected plan is surcharged: recovering an arbitrarily long idle
  /// backlog from a single query would price the structure out of the
  /// market forever (and the cloud would still owe the rent) — the
  /// backlog is instead recovered a capped slice per use, and a structure
  /// whose backlog keeps growing anyway fails per footnote 3.
  Money OwedCapped(StructureId id, SimTime now, double cap_seconds) const;

  /// Collects up to `cap_seconds` worth of owed rent and advances the
  /// paid-until clock by the covered duration. Returns the collection.
  Money Pay(StructureId id, SimTime now,
            double cap_seconds = kNoCapSeconds);

  static constexpr double kNoCapSeconds = 1e300;

  bool IsTracked(StructureId id) const { return clocks_.count(id) > 0; }

  /// True if `id` is untracked or its clock is paid up to `now` — an O(1)
  /// pre-check the per-query failure scan runs before pricing any rent.
  bool PaidThrough(StructureId id, SimTime now) const {
    auto it = clocks_.find(id);
    return it == clocks_.end() || it->second.paid_until >= now;
  }

  /// True if no tracked structure owes anything at `now`: one cheap pass
  /// over the clocks, no Money math. Lets the economy skip the
  /// structure-failure scan entirely on quiet queries.
  bool NothingOwedBy(SimTime now) const {
    for (const auto& entry : clocks_) {
      if (entry.second.paid_until < now) return false;
    }
    return true;
  }

  /// Checkpoint support: clocks are saved sorted by id (the map itself has
  /// no deterministic order); restore rederives each clock's key and byte
  /// footprint from the registry, so a snapshot can never resurrect a
  /// clock for a structure this run does not know.
  void SaveState(persist::Encoder* enc) const;
  Status RestoreState(persist::Decoder* dec,
                      const StructureRegistry& registry);

 private:
  struct Clock {
    StructureKey key;
    SimTime paid_until = 0;
    Money build_cost;
    double failure_scale = 1.0;
    /// StructureBytes(catalog, key), computed once at Register so the
    /// per-query rent pricers skip the catalog walk (the footprint of a
    /// registered structure never changes).
    uint64_t bytes = 0;
  };

  /// Rent accrued over `gap` seconds, priced through the cached footprint.
  Money PriceGap(const Clock& clock, double gap) const {
    return model_->MaintenanceCostSized(clock.key, clock.bytes, gap);
  }

  const CostModel* model_;
  std::unordered_map<StructureId, Clock> clocks_;
};

}  // namespace cloudcache
