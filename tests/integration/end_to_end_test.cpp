#include <gtest/gtest.h>

#include "src/catalog/tpch.h"
#include "src/sim/experiment.h"
#include "src/sim/report.h"

namespace cloudcache {
namespace {

/// Integration tests drive the real experiment pipeline on a 100 GB TPC-H
/// backend (paper shape, reduced scale so CI stays fast).
class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog(MakeTpchCatalog(100.0));
    templates_ = new std::vector<QueryTemplate>(MakeTpchTemplates());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    delete templates_;
    catalog_ = nullptr;
    templates_ = nullptr;
  }

  ExperimentConfig BaseConfig(SchemeKind scheme,
                              uint64_t queries = 2000) {
    ExperimentConfig config;
    config.scheme = scheme;
    config.workload.interarrival_seconds = 1.0;
    config.workload.seed = 11;
    config.sim.num_queries = queries;
    return config;
  }

  /// Adaptation-friendly knobs: with only a few thousand CI queries (the
  /// paper runs a million) thresholds must be proportionally easier for
  /// either scheme to act at all within the run.
  static void EagerEcon(EconScheme::Config& econ) {
    econ.economy.regret_fraction_a = 0.001;
    econ.economy.conservative_provider = false;
    econ.economy.initial_credit = Money::FromDollars(20);
    econ.economy.model_build_latency = false;
  }
  static void EagerBypass(BypassYieldScheme::Options& options) {
    options.yield_threshold = 0.2;
    options.aging_interval = 1'000'000;
  }

  static Catalog* catalog_;
  static std::vector<QueryTemplate>* templates_;
};

Catalog* EndToEndTest::catalog_ = nullptr;
std::vector<QueryTemplate>* EndToEndTest::templates_ = nullptr;

TEST_F(EndToEndTest, AllFourSchemesComplete) {
  for (SchemeKind kind : PaperSchemes()) {
    const SimMetrics metrics =
        RunExperiment(*catalog_, *templates_, BaseConfig(kind, 500));
    EXPECT_EQ(metrics.queries, 500u) << SchemeKindToString(kind);
    EXPECT_EQ(metrics.served, 500u) << SchemeKindToString(kind);
    EXPECT_GT(metrics.MeanResponse(), 0.0) << SchemeKindToString(kind);
    EXPECT_GT(metrics.operating_cost.Total(), 0.0)
        << SchemeKindToString(kind);
  }
}

TEST_F(EndToEndTest, EconSchemesInvestAndHitCache) {
  ExperimentConfig config = BaseConfig(SchemeKind::kEconCheap, 4000);
  config.customize_econ = EagerEcon;
  const SimMetrics metrics = RunExperiment(*catalog_, *templates_, config);
  EXPECT_GT(metrics.investments, 0u);
  EXPECT_GT(metrics.served_in_cache, 0u);
  EXPECT_GT(metrics.revenue.micros(), 0);
}

TEST_F(EndToEndTest, BypassEventuallyCaches) {
  ExperimentConfig config = BaseConfig(SchemeKind::kBypassYield, 4000);
  config.customize_bypass = EagerBypass;
  const SimMetrics metrics = RunExperiment(*catalog_, *templates_, config);
  EXPECT_GT(metrics.investments, 0u);
  EXPECT_GT(metrics.served_in_cache, 0u);
}

TEST_F(EndToEndTest, BudgetCasesPartitionQueries) {
  const SimMetrics metrics = RunExperiment(
      *catalog_, *templates_, BaseConfig(SchemeKind::kEconCheap, 1000));
  EXPECT_EQ(metrics.case_a + metrics.case_b + metrics.case_c, 1000u);
  // The jittered budget model produces both under- and over-budget users.
  EXPECT_GT(metrics.case_a, 0u);
  EXPECT_GT(metrics.case_b + metrics.case_c, 0u);
}

TEST_F(EndToEndTest, DeterministicAcrossRuns) {
  const SimMetrics a = RunExperiment(*catalog_, *templates_,
                                     BaseConfig(SchemeKind::kEconFast, 800));
  const SimMetrics b = RunExperiment(*catalog_, *templates_,
                                     BaseConfig(SchemeKind::kEconFast, 800));
  EXPECT_DOUBLE_EQ(a.operating_cost.Total(), b.operating_cost.Total());
  EXPECT_DOUBLE_EQ(a.MeanResponse(), b.MeanResponse());
  EXPECT_EQ(a.investments, b.investments);
  EXPECT_EQ(a.final_credit, b.final_credit);
}

TEST_F(EndToEndTest, SeedChangesOutcome) {
  ExperimentConfig config = BaseConfig(SchemeKind::kEconCheap, 800);
  const SimMetrics a = RunExperiment(*catalog_, *templates_, config);
  config.workload.seed = 12;
  const SimMetrics b = RunExperiment(*catalog_, *templates_, config);
  EXPECT_NE(a.operating_cost.Total(), b.operating_cost.Total());
}

TEST_F(EndToEndTest, CustomizeEconHookApplies) {
  ExperimentConfig config = BaseConfig(SchemeKind::kEconCheap, 500);
  config.customize_econ = [](EconScheme::Config& econ) {
    // Users walk away from offers above their budget: observable as
    // unserved queries, which the default config never produces.
    econ.economy.user_accepts_above_budget = false;
  };
  const SimMetrics metrics = RunExperiment(*catalog_, *templates_, config);
  EXPECT_LT(metrics.served, metrics.queries);
}

TEST_F(EndToEndTest, CustomizeBypassHookApplies) {
  ExperimentConfig config = BaseConfig(SchemeKind::kBypassYield, 500);
  config.customize_bypass = [](BypassYieldScheme::Options& options) {
    options.cache_fraction = 0.0;  // No cache at all.
  };
  const SimMetrics metrics = RunExperiment(*catalog_, *templates_, config);
  EXPECT_EQ(metrics.served_in_cache, 0u);
  EXPECT_EQ(metrics.investments, 0u);
}

TEST_F(EndToEndTest, GoGridPricesChangeEconBehaviour) {
  ExperimentConfig ec2 = BaseConfig(SchemeKind::kEconCheap, 3000);
  ec2.customize_econ = EagerEcon;
  ExperimentConfig gogrid = ec2;
  gogrid.decision_prices = PriceList::GoGrid2009();
  const SimMetrics a = RunExperiment(*catalog_, *templates_, ec2);
  const SimMetrics b = RunExperiment(*catalog_, *templates_, gogrid);
  // With free bandwidth the WAN-avoidance incentive collapses, so the
  // decisions (and therefore the metered costs) must differ.
  EXPECT_NE(a.operating_cost.Total(), b.operating_cost.Total());
}

TEST_F(EndToEndTest, PaperConstantsExposed) {
  EXPECT_EQ(PaperInterarrivals(), (std::vector<double>{1, 10, 30, 60}));
  EXPECT_EQ(PaperSchemes().size(), 4u);
}

TEST_F(EndToEndTest, RunAllSchemesReturnsFour) {
  ExperimentConfig config = BaseConfig(SchemeKind::kEconCheap, 300);
  const std::vector<SimMetrics> results =
      RunAllSchemes(*catalog_, *templates_, config);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].scheme_name, "bypass");
  EXPECT_EQ(results[1].scheme_name, "econ-col");
  EXPECT_EQ(results[2].scheme_name, "econ-cheap");
  EXPECT_EQ(results[3].scheme_name, "econ-fast");
  // The summary table renders without error.
  EXPECT_EQ(MakeSchemeSummaryTable(results).num_rows(), 4u);
}

}  // namespace
}  // namespace cloudcache
