#include "src/econ/amortizer.h"

#include "src/util/logging.h"

namespace cloudcache {

Amortizer::Amortizer(int64_t horizon) : horizon_(horizon) {
  CLOUDCACHE_CHECK_GE(horizon, 1);
}

void Amortizer::RegisterBuild(StructureId id, Money build_cost) {
  CLOUDCACHE_CHECK_GE(build_cost.micros(), 0);
  schedules_[id] = Schedule{build_cost, 0};
}

Money Amortizer::PendingShare(StructureId id) const {
  auto it = schedules_.find(id);
  if (it == schedules_.end()) return Money();
  const Schedule& s = it->second;
  if (s.shares_charged >= horizon_) return Money();
  return EvenShare(s.build_cost, horizon_, s.shares_charged);
}

Money Amortizer::ChargeShare(StructureId id) {
  auto it = schedules_.find(id);
  if (it == schedules_.end()) return Money();
  Schedule& s = it->second;
  if (s.shares_charged >= horizon_) return Money();
  const Money share = EvenShare(s.build_cost, horizon_, s.shares_charged);
  ++s.shares_charged;
  if (s.shares_charged >= horizon_) schedules_.erase(it);
  return share;
}

Money Amortizer::Unamortized(StructureId id) const {
  auto it = schedules_.find(id);
  if (it == schedules_.end()) return Money();
  const Schedule& s = it->second;
  Money remaining;
  for (int64_t i = s.shares_charged; i < horizon_; ++i) {
    remaining += EvenShare(s.build_cost, horizon_, i);
  }
  return remaining;
}

Money Amortizer::Cancel(StructureId id) {
  const Money remaining = Unamortized(id);
  schedules_.erase(id);
  return remaining;
}

}  // namespace cloudcache
