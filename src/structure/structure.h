#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/catalog/schema.h"
#include "src/persist/codec.h"
#include "src/util/status.h"

namespace cloudcache {

/// The three kinds of cache structures the cloud can invest in
/// (Section V-C): extra CPU nodes, cached table columns, and indexes built
/// in the cache.
enum class StructureType { kCpuNode, kColumn, kIndex };

const char* StructureTypeToString(StructureType type);

/// Dense identifier of an interned structure; key of the regret ledger and
/// of every per-structure array in the cache.
using StructureId = uint32_t;

/// Value-identity of a structure.
///
/// * kCpuNode: `ordinal` = which extra node (0 = first node beyond the
///   always-on coordinator); columns/table unused.
/// * kColumn:  `columns` = {the cached column}; `table` = its table.
/// * kIndex:   `columns` = ordered key columns; `table` = indexed table.
struct StructureKey {
  StructureType type = StructureType::kColumn;
  TableId table = 0;
  std::vector<ColumnId> columns;
  uint32_t ordinal = 0;

  bool operator==(const StructureKey& other) const {
    return type == other.type && table == other.table &&
           columns == other.columns && ordinal == other.ordinal;
  }
  bool operator!=(const StructureKey& other) const {
    return !(*this == other);
  }

  /// Stable human-readable form, e.g. "column(lineitem.l_shipdate)",
  /// "index(lineitem: l_shipdate,l_discount)", "cpu(2)".
  std::string ToString(const Catalog& catalog) const;
};

/// Convenience constructors.
StructureKey CpuNodeKey(uint32_t ordinal);
StructureKey ColumnKey(const Catalog& catalog, ColumnId column);
StructureKey IndexKey(const Catalog& catalog, std::vector<ColumnId> columns);

struct StructureKeyHash {
  size_t operator()(const StructureKey& key) const;
};

/// Disk footprint of a structure in bytes (0 for CPU nodes).
///
/// An index stores its key columns plus an 8-byte row locator per row,
/// which is why indexes are bulkier than the columns they cover — the
/// paper's 60-second runs evict them first for exactly this reason.
uint64_t StructureBytes(const Catalog& catalog, const StructureKey& key);

/// Interning table from StructureKey to dense StructureId.
///
/// The economy, cache, and regret ledger all address structures by dense id
/// so their per-structure state is flat arrays. Registration is
/// append-only: ids are never reused, matching the paper's monotone
/// `regretS` array.
class StructureRegistry {
 public:
  explicit StructureRegistry(const Catalog* catalog) : catalog_(catalog) {}

  /// Returns the id of `key`, interning it on first sight.
  StructureId Intern(const StructureKey& key);

  /// Returns the id of `key` if already interned.
  Result<StructureId> Find(const StructureKey& key) const;

  const StructureKey& key(StructureId id) const { return keys_[id]; }
  /// Cached disk footprint of the structure.
  uint64_t bytes(StructureId id) const { return bytes_[id]; }

  size_t size() const { return keys_.size(); }
  const Catalog& catalog() const { return *catalog_; }

  /// All interned ids of the given type, ascending.
  std::vector<StructureId> IdsOfType(StructureType type) const;

  /// Serializes the interning table in id order. Interning order is
  /// query-history-dependent (first-sight registration), so the id→key map
  /// is run state, not configuration — a restored run must agree on every
  /// dense id or all per-structure arrays would silently mismatch.
  void SaveState(persist::Encoder* enc) const;
  /// Restores into a freshly constructed registry: verifies that keys
  /// interned at construction time (index candidates) form a prefix of the
  /// snapshot and re-interns the tail.
  Status RestoreState(persist::Decoder* dec);

 private:
  const Catalog* catalog_;
  std::vector<StructureKey> keys_;
  std::vector<uint64_t> bytes_;
  std::unordered_map<StructureKey, StructureId, StructureKeyHash> index_;
};

}  // namespace cloudcache
