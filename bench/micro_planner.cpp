// M2: plan enumeration and skyline filtering throughput — called once per
// query with the full 65-candidate advisor pool.

#include <benchmark/benchmark.h>

#include "src/cache/cache_state.h"
#include "src/catalog/tpch.h"
#include "src/plan/enumerator.h"
#include "src/plan/skyline.h"
#include "src/query/templates.h"
#include "src/structure/index_advisor.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace cloudcache {
namespace {

struct Env {
  Env()
      : catalog(MakeTpchCatalog(2500.0)),
        prices(PriceList::AmazonEc2_2009()),
        model(&catalog, &prices),
        registry(&catalog),
        cache(&registry),
        enumerator(&model, &registry, {}) {
    auto resolved = ResolveTemplates(catalog, MakeTpchTemplates());
    templates = *resolved;
    enumerator.SetIndexCandidates(
        RecommendIndexes(catalog, templates, 65));
    Rng rng(2);
    for (int i = 0; i < 64; ++i) {
      queries.push_back(InstantiateQuery(
          templates[i % templates.size()], catalog, rng,
          static_cast<int>(i % templates.size()), i));
    }
    // Warm half the hot columns so both existing and hypothetical plans
    // appear, as in mid-simulation steady state.
    const ColumnId date = *catalog.FindColumn("lineitem.l_shipdate");
    const ColumnId disc = *catalog.FindColumn("lineitem.l_discount");
    CLOUDCACHE_CHECK(
        cache.Add(registry.Intern(ColumnKey(catalog, date)), 0).ok());
    CLOUDCACHE_CHECK(
        cache.Add(registry.Intern(ColumnKey(catalog, disc)), 0).ok());
  }
  Catalog catalog;
  PriceList prices;
  CostModel model;
  StructureRegistry registry;
  CacheState cache;
  PlanEnumerator enumerator;
  std::vector<ResolvedTemplate> templates;
  std::vector<Query> queries;
};

Env& GetEnv() {
  static Env env;
  return env;
}

void BM_Enumerate(benchmark::State& state) {
  Env& env = GetEnv();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.enumerator.Enumerate(
        env.queries[i++ % env.queries.size()], env.cache));
  }
}
BENCHMARK(BM_Enumerate);

void BM_EnumerateAndSkyline(benchmark::State& state) {
  Env& env = GetEnv();
  size_t i = 0;
  for (auto _ : state) {
    PlanSet set = env.enumerator.Enumerate(
        env.queries[i++ % env.queries.size()], env.cache);
    benchmark::DoNotOptimize(SkylineFilter(std::move(set)));
  }
}
BENCHMARK(BM_EnumerateAndSkyline);

void BM_RecommendIndexes(benchmark::State& state) {
  Env& env = GetEnv();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RecommendIndexes(env.catalog, env.templates, 65));
  }
}
BENCHMARK(BM_RecommendIndexes);

}  // namespace
}  // namespace cloudcache
