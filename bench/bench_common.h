#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/catalog/schema.h"
#include "src/query/templates.h"
#include "src/sim/experiment.h"
#include "src/sim/metrics.h"
#include "src/sim/sweep.h"
#include "src/util/table_writer.h"

namespace cloudcache::bench {

/// Command-line knobs shared by every figure/ablation bench binary.
///
///   --queries=N       queries per (scheme, configuration) cell
///   --scale-tb=X      back-end database size in TB (default 2.5, paper)
///   --seed=N          workload seed
///   --threads=N       sweep worker threads (default: hardware concurrency)
///   --csv=PATH        also write the result table as CSV
///   --quick           1/10th of the default queries (smoke runs)
struct BenchOptions {
  uint64_t queries = 40'000;
  double scale_tb = 2.5;
  uint64_t seed = 17;
  unsigned threads = 0;  // 0 = std::thread::hardware_concurrency().
  std::string csv_path;
  bool quick = false;
};

/// Parses argv; unknown flags abort with a usage message.
BenchOptions ParseArgs(int argc, char** argv, uint64_t default_queries);

/// The paper's evaluation environment: TPC-H catalog at `scale_tb`,
/// the seven templates, EC2 prices.
struct PaperSetup {
  Catalog catalog;
  std::vector<QueryTemplate> templates;
};
PaperSetup MakePaperSetup(const BenchOptions& options);

/// Baseline experiment configuration matching Section VII-A: conservative
/// provider, step budgets, 65 advisor indexes, EC2 metering. The economy's
/// free parameters that the paper does not pin (seed credit, regret
/// fraction, amortization horizon) carry the calibration documented in
/// DESIGN.md item 6.
ExperimentConfig PaperConfig(const BenchOptions& options,
                             double interarrival_seconds);

/// Runs all four schemes at each inter-arrival time on the sweep engine,
/// fanned out over `options.threads` workers (0 = all cores); rows[i][j] =
/// scheme j at intervals[i]. Prints one progress line per cell to stderr.
std::vector<std::vector<SimMetrics>> RunInterarrivalSweep(
    const PaperSetup& setup, const BenchOptions& options,
    const std::vector<double>& intervals);

/// Runs `schemes` x {one 10 s interval} x `variants` on the sweep engine —
/// the shape every ablation driver sweeps. Results arrive in grid order:
/// variant-major, scheme-minor (variants.size() * schemes.size() cells).
/// Seeds are whatever `base` carries (SeedPolicy::kFixed), so every
/// variant faces the identical query stream and cells differ only in the
/// ablated knob.
std::vector<SweepResult> RunVariantSweep(const PaperSetup& setup,
                                         const BenchOptions& options,
                                         const ExperimentConfig& base,
                                         std::vector<SchemeKind> schemes,
                                         std::vector<SweepVariant> variants);

/// Prints the table to stdout and optionally writes the CSV.
void EmitTable(const cloudcache::TableWriter& table,
               const BenchOptions& options);

}  // namespace cloudcache::bench
