#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/experiment.h"
#include "src/sim/metrics.h"

namespace cloudcache {

/// One point on a sweep's ablation axis: a label for reports plus a
/// mutation applied to the cell's ExperimentConfig after the scheme,
/// inter-arrival, and seeds are set — so a variant can override anything,
/// including the seeds a SeedPolicy chose.
struct SweepVariant {
  std::string label;
  std::function<void(ExperimentConfig&)> customize;  // May be null.
};

/// Cross-product experiment grid: schemes x inter-arrival times x ablation
/// variants, all stamped from one base configuration. The grid order is
/// variant-major, scheme-minor:
///
///   index = (variant * |interarrivals| + interarrival) * |schemes| + scheme
///
/// so `RunSweep(...)[v*I*S + i*S + j]` is scheme j at interval i of variant
/// v — the rows[i][j] layout the figure benches print.
struct SweepSpec {
  std::vector<SchemeKind> schemes = PaperSchemes();
  std::vector<double> interarrivals = PaperInterarrivals();
  /// Ablation axis; the default single unlabeled variant makes plain
  /// scheme-x-interval grids (Figs. 4-5) need no setup.
  std::vector<SweepVariant> variants = {SweepVariant{}};

  /// Stamped into every cell before the per-cell fields are overwritten.
  ExperimentConfig base;

  /// How each cell's workload/scheme seeds are derived. Every policy is a
  /// pure function of the spec, so sweep results are bit-identical
  /// regardless of thread count or completion order.
  enum class SeedPolicy {
    /// seed = hash(base_seed, cell index): every cell is an independent
    /// stream — the right default for parameter studies.
    kPerCell,
    /// seed = hash(base_seed, variant & interarrival index): all schemes in
    /// one row see the same query stream, keeping scheme comparisons
    /// paired as in the paper's figures.
    kPerRow,
    /// Keep whatever seeds `base` (and the variant customizer) carry.
    kFixed,
  };
  SeedPolicy seed_policy = SeedPolicy::kPerCell;
  uint64_t base_seed = 17;

  size_t CellCount() const {
    return schemes.size() * interarrivals.size() * variants.size();
  }
};

/// Fully-resolved coordinates of one sweep cell.
struct SweepCell {
  size_t index = 0;  // Position in grid order.
  size_t scheme_index = 0;
  size_t interarrival_index = 0;
  size_t variant_index = 0;
  SchemeKind scheme = SchemeKind::kEconCheap;
  double interarrival_seconds = 0;
  /// "econ-cheap @ 10s" (+ " [variant]" when the variant is labeled).
  std::string label;
  /// Workload seed this cell ran with (scheme seed is this + 1 unless the
  /// policy is kFixed or a variant overrode it).
  uint64_t seed = 0;
};

struct SweepResult {
  SweepCell cell;
  SimMetrics metrics;
};

/// splitmix64 mix of (base_seed, cell_index): deterministic, and far
/// apart for adjacent indices so per-cell streams do not correlate.
uint64_t SweepCellSeed(uint64_t base_seed, uint64_t cell_index);

/// The grid a spec describes, in grid order, with labels and seeds
/// resolved (no simulation). Exposed for tests and progress displays.
std::vector<SweepCell> EnumerateSweepCells(const SweepSpec& spec);

/// Builds the ExperimentConfig a given cell runs: base, then scheme /
/// interarrival / seeds, then the variant customizer.
ExperimentConfig MakeCellConfig(const SweepSpec& spec, const SweepCell& cell);

/// Runs every cell of the grid, fanning RunExperiment out over a
/// fixed-size thread pool. `n_threads` = 0 means hardware concurrency;
/// any value is clamped to [1, cells]. Results come back labeled, in grid
/// order, bit-identical for any `n_threads`. `progress`, when non-null,
/// is invoked from worker threads as cells finish (it must be
/// thread-safe).
std::vector<SweepResult> RunSweep(
    const Catalog& catalog, const std::vector<QueryTemplate>& templates,
    const SweepSpec& spec, unsigned n_threads,
    const std::function<void(const SweepCell&, const SimMetrics&)>& progress =
        nullptr);

/// Progress callback printing "  [done] <label>" to stderr; safe to call
/// from sweep workers (one fprintf call stays atomic).
void LogCellDone(const SweepCell& cell, const SimMetrics& metrics);

/// Regroups grid-order results of a single-variant sweep into
/// rows[i][j] = metrics of scheme j at interarrival i — the layout the
/// figure tables consume.
std::vector<std::vector<SimMetrics>> GroupRowsByInterarrival(
    std::vector<SweepResult> results, size_t num_interarrivals);

}  // namespace cloudcache
