
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/bypass_yield.cpp" "src/CMakeFiles/cloudcache.dir/baseline/bypass_yield.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/baseline/bypass_yield.cpp.o.d"
  "/root/repo/src/baseline/scheme.cpp" "src/CMakeFiles/cloudcache.dir/baseline/scheme.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/baseline/scheme.cpp.o.d"
  "/root/repo/src/cache/cache_state.cpp" "src/CMakeFiles/cloudcache.dir/cache/cache_state.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/cache/cache_state.cpp.o.d"
  "/root/repo/src/cache/candidate_pool.cpp" "src/CMakeFiles/cloudcache.dir/cache/candidate_pool.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/cache/candidate_pool.cpp.o.d"
  "/root/repo/src/cache/maintenance.cpp" "src/CMakeFiles/cloudcache.dir/cache/maintenance.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/cache/maintenance.cpp.o.d"
  "/root/repo/src/catalog/schema.cpp" "src/CMakeFiles/cloudcache.dir/catalog/schema.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/catalog/schema.cpp.o.d"
  "/root/repo/src/catalog/sdss.cpp" "src/CMakeFiles/cloudcache.dir/catalog/sdss.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/catalog/sdss.cpp.o.d"
  "/root/repo/src/catalog/tpch.cpp" "src/CMakeFiles/cloudcache.dir/catalog/tpch.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/catalog/tpch.cpp.o.d"
  "/root/repo/src/cost/cost_model.cpp" "src/CMakeFiles/cloudcache.dir/cost/cost_model.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/cost/cost_model.cpp.o.d"
  "/root/repo/src/cost/price_list.cpp" "src/CMakeFiles/cloudcache.dir/cost/price_list.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/cost/price_list.cpp.o.d"
  "/root/repo/src/econ/account.cpp" "src/CMakeFiles/cloudcache.dir/econ/account.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/econ/account.cpp.o.d"
  "/root/repo/src/econ/amortizer.cpp" "src/CMakeFiles/cloudcache.dir/econ/amortizer.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/econ/amortizer.cpp.o.d"
  "/root/repo/src/econ/budget.cpp" "src/CMakeFiles/cloudcache.dir/econ/budget.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/econ/budget.cpp.o.d"
  "/root/repo/src/econ/economy.cpp" "src/CMakeFiles/cloudcache.dir/econ/economy.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/econ/economy.cpp.o.d"
  "/root/repo/src/econ/regret.cpp" "src/CMakeFiles/cloudcache.dir/econ/regret.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/econ/regret.cpp.o.d"
  "/root/repo/src/plan/enumerator.cpp" "src/CMakeFiles/cloudcache.dir/plan/enumerator.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/plan/enumerator.cpp.o.d"
  "/root/repo/src/plan/plan.cpp" "src/CMakeFiles/cloudcache.dir/plan/plan.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/plan/plan.cpp.o.d"
  "/root/repo/src/plan/skyline.cpp" "src/CMakeFiles/cloudcache.dir/plan/skyline.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/plan/skyline.cpp.o.d"
  "/root/repo/src/query/query.cpp" "src/CMakeFiles/cloudcache.dir/query/query.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/query/query.cpp.o.d"
  "/root/repo/src/query/templates.cpp" "src/CMakeFiles/cloudcache.dir/query/templates.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/query/templates.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/cloudcache.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/cloudcache.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "src/CMakeFiles/cloudcache.dir/sim/report.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/sim/report.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/cloudcache.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/sweep.cpp" "src/CMakeFiles/cloudcache.dir/sim/sweep.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/sim/sweep.cpp.o.d"
  "/root/repo/src/structure/index_advisor.cpp" "src/CMakeFiles/cloudcache.dir/structure/index_advisor.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/structure/index_advisor.cpp.o.d"
  "/root/repo/src/structure/structure.cpp" "src/CMakeFiles/cloudcache.dir/structure/structure.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/structure/structure.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/cloudcache.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/money.cpp" "src/CMakeFiles/cloudcache.dir/util/money.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/util/money.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/cloudcache.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/cloudcache.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/status.cpp" "src/CMakeFiles/cloudcache.dir/util/status.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/util/status.cpp.o.d"
  "/root/repo/src/util/table_writer.cpp" "src/CMakeFiles/cloudcache.dir/util/table_writer.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/util/table_writer.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/cloudcache.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/util/thread_pool.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/CMakeFiles/cloudcache.dir/workload/generator.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/workload/generator.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/CMakeFiles/cloudcache.dir/workload/trace.cpp.o" "gcc" "src/CMakeFiles/cloudcache.dir/workload/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
