#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace cloudcache {

/// Log severity, ordered. The simulator defaults to kWarning so that large
/// parameter sweeps stay quiet; examples raise it to kInfo.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum severity that will be emitted.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log line; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction (CHECK failures).
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define CLOUDCACHE_LOG(level)                                        \
  ::cloudcache::internal::LogMessage(::cloudcache::LogLevel::level,  \
                                     __FILE__, __LINE__)

/// Invariant check, active in all build types. The economy's accounting
/// invariants (credit conservation, non-negative regret) are cheap relative
/// to simulation work, so they stay on in release builds.
#define CLOUDCACHE_CHECK(condition)                                     \
  if (condition) {                                                      \
  } else /* NOLINT */                                                   \
    ::cloudcache::internal::FatalMessage(__FILE__, __LINE__, #condition)

#define CLOUDCACHE_CHECK_GE(a, b) CLOUDCACHE_CHECK((a) >= (b))
#define CLOUDCACHE_CHECK_GT(a, b) CLOUDCACHE_CHECK((a) > (b))
#define CLOUDCACHE_CHECK_LE(a, b) CLOUDCACHE_CHECK((a) <= (b))
#define CLOUDCACHE_CHECK_LT(a, b) CLOUDCACHE_CHECK((a) < (b))
#define CLOUDCACHE_CHECK_EQ(a, b) CLOUDCACHE_CHECK((a) == (b))
#define CLOUDCACHE_CHECK_NE(a, b) CLOUDCACHE_CHECK((a) != (b))

}  // namespace cloudcache
