#include "src/catalog/schema.h"

#include <gtest/gtest.h>

#include "tests/testing/fixtures.h"

namespace cloudcache {
namespace {

TEST(SchemaTest, TinyCatalogShape) {
  const Catalog catalog = testing::MakeTinyCatalog();
  EXPECT_EQ(catalog.num_tables(), 2u);
  EXPECT_EQ(catalog.num_columns(), 6u);
}

TEST(SchemaTest, DenseIdsAssignedInOrder) {
  const Catalog catalog = testing::MakeTinyCatalog();
  EXPECT_EQ(catalog.column(0).name, "f_key");
  EXPECT_EQ(catalog.column(3).name, "f_flag");
  EXPECT_EQ(catalog.column(4).name, "d_key");
  EXPECT_EQ(catalog.column(4).table_id, 1u);
  EXPECT_EQ(catalog.column(0).table_id, 0u);
  for (ColumnId id = 0; id < catalog.num_columns(); ++id) {
    EXPECT_EQ(catalog.column(id).column_id, id);
  }
}

TEST(SchemaTest, FindTable) {
  const Catalog catalog = testing::MakeTinyCatalog();
  ASSERT_TRUE(catalog.FindTable("fact").ok());
  EXPECT_EQ(*catalog.FindTable("fact"), 0u);
  EXPECT_EQ(*catalog.FindTable("dim"), 1u);
  EXPECT_EQ(catalog.FindTable("nope").status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaTest, FindColumnQualified) {
  const Catalog catalog = testing::MakeTinyCatalog();
  ASSERT_TRUE(catalog.FindColumn("dim.d_attr").ok());
  EXPECT_EQ(catalog.column(*catalog.FindColumn("dim.d_attr")).name,
            "d_attr");
  EXPECT_EQ(catalog.FindColumn("dim.nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(catalog.FindColumn("nope.d_attr").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(catalog.FindColumn("unqualified").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ColumnBytes) {
  const Catalog catalog = testing::MakeTinyCatalog();
  EXPECT_EQ(catalog.ColumnBytes(*catalog.FindColumn("fact.f_key")),
            8u * 1'000'000);
  EXPECT_EQ(catalog.ColumnBytes(*catalog.FindColumn("dim.d_attr")),
            4u * 1'000);
}

TEST(SchemaTest, TotalBytesIsSumOfTables) {
  const Catalog catalog = testing::MakeTinyCatalog();
  const uint64_t expected = 4u * 8 * 1'000'000 + (8 + 4) * 1'000;
  EXPECT_EQ(catalog.TotalBytes(), expected);
  EXPECT_EQ(catalog.table(0).TotalBytes() + catalog.table(1).TotalBytes(),
            expected);
}

TEST(SchemaTest, RowWidth) {
  const Catalog catalog = testing::MakeTinyCatalog();
  EXPECT_EQ(catalog.table(0).RowWidth(), 32u);
  EXPECT_EQ(catalog.table(1).RowWidth(), 12u);
}

TEST(SchemaTest, DuplicateTableRejected) {
  Catalog catalog = testing::MakeTinyCatalog();
  Table dup;
  dup.name = "fact";
  Column c;
  c.name = "x";
  c.width_bytes = 8;
  dup.columns.push_back(c);
  EXPECT_EQ(catalog.AddTable(std::move(dup)).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, EmptyTableRejected) {
  Catalog catalog;
  Table empty;
  empty.name = "empty";
  EXPECT_EQ(catalog.AddTable(std::move(empty)).code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ZeroWidthColumnRejected) {
  Catalog catalog;
  Table bad;
  bad.name = "bad";
  Column c;
  c.name = "x";
  c.width_bytes = 0;
  bad.columns.push_back(c);
  EXPECT_EQ(catalog.AddTable(std::move(bad)).code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, BadDistinctFractionRejected) {
  Catalog catalog;
  Table bad;
  bad.name = "bad";
  Column c;
  c.name = "x";
  c.width_bytes = 8;
  c.distinct_fraction = 1.5;
  bad.columns.push_back(c);
  EXPECT_EQ(catalog.AddTable(std::move(bad)).code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaTest, IdsStableAfterAddingTables) {
  Catalog catalog = testing::MakeTinyCatalog();
  const ColumnId before = *catalog.FindColumn("fact.f_value");
  Table extra;
  extra.name = "extra";
  extra.row_count = 10;
  Column c;
  c.name = "e";
  c.width_bytes = 8;
  extra.columns.push_back(c);
  ASSERT_TRUE(catalog.AddTable(std::move(extra)).ok());
  EXPECT_EQ(*catalog.FindColumn("fact.f_value"), before);
  EXPECT_EQ(catalog.column(*catalog.FindColumn("extra.e")).column_id, 6u);
}

TEST(DataTypeTest, NamesAndWidths) {
  EXPECT_STREQ(DataTypeToString(DataType::kInt32), "int32");
  EXPECT_STREQ(DataTypeToString(DataType::kVarchar), "varchar");
  EXPECT_EQ(DefaultWidth(DataType::kInt32), 4u);
  EXPECT_EQ(DefaultWidth(DataType::kDate), 4u);
  EXPECT_EQ(DefaultWidth(DataType::kInt64), 8u);
  EXPECT_EQ(DefaultWidth(DataType::kChar), 0u);
}

}  // namespace
}  // namespace cloudcache
