#include "src/workload/trace.h"

#include <charconv>
#include <fstream>
#include <sstream>

namespace cloudcache {

namespace {

constexpr char kHeader[] =
    "id,template_id,table,arrival,cpu_multiplier,parallel_fraction,"
    "result_rows,result_bytes,outputs,predicates";

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char ch : text) {
    if (ch == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += ch;
    }
  }
  parts.push_back(current);
  return parts;
}

Status ParseU64(const std::string& text, uint64_t* out) {
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::IoError("bad integer '" + text + "'");
  }
  return Status::OK();
}

Status ParseDouble(const std::string& text, double* out) {
  try {
    size_t consumed = 0;
    *out = std::stod(text, &consumed);
    if (consumed != text.size()) {
      return Status::IoError("bad double '" + text + "'");
    }
  } catch (...) {
    return Status::IoError("bad double '" + text + "'");
  }
  return Status::OK();
}

}  // namespace

std::string TraceWriter::ToCsv(const std::vector<Query>& queries) {
  std::ostringstream out;
  out << kHeader << '\n';
  for (const Query& q : queries) {
    out << q.id << ',' << q.template_id << ',' << q.table << ','
        << q.arrival_time << ',' << q.cpu_multiplier << ','
        << q.parallel_fraction << ',' << q.result_rows << ','
        << q.result_bytes << ',';
    for (size_t i = 0; i < q.output_columns.size(); ++i) {
      if (i) out << ';';
      out << q.output_columns[i];
    }
    out << ',';
    for (size_t i = 0; i < q.predicates.size(); ++i) {
      if (i) out << ';';
      const Predicate& p = q.predicates[i];
      out << p.column << ':' << p.selectivity << ':' << (p.equality ? 1 : 0)
          << ':' << (p.clustered ? 1 : 0);
    }
    out << '\n';
  }
  return out.str();
}

Status TraceWriter::Write(const std::string& path,
                          const std::vector<Query>& queries) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::IoError("cannot open " + path);
  file << ToCsv(queries);
  if (!file.good()) return Status::IoError("short write to " + path);
  return Status::OK();
}

Result<std::vector<Query>> TraceReader::FromCsv(const std::string& csv,
                                                const Catalog& catalog) {
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::IoError("missing or wrong trace header");
  }
  std::vector<Query> queries;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitOn(line, ',');
    if (fields.size() != 10) {
      return Status::IoError("line " + std::to_string(line_no) + ": want 10 fields, got " +
                             std::to_string(fields.size()));
    }
    Query q;
    uint64_t tmp = 0;
    CLOUDCACHE_RETURN_IF_ERROR(ParseU64(fields[0], &q.id));
    double template_id = 0;
    CLOUDCACHE_RETURN_IF_ERROR(ParseDouble(fields[1], &template_id));
    q.template_id = static_cast<int>(template_id);
    CLOUDCACHE_RETURN_IF_ERROR(ParseU64(fields[2], &tmp));
    q.table = static_cast<TableId>(tmp);
    CLOUDCACHE_RETURN_IF_ERROR(ParseDouble(fields[3], &q.arrival_time));
    CLOUDCACHE_RETURN_IF_ERROR(ParseDouble(fields[4], &q.cpu_multiplier));
    CLOUDCACHE_RETURN_IF_ERROR(
        ParseDouble(fields[5], &q.parallel_fraction));
    CLOUDCACHE_RETURN_IF_ERROR(ParseU64(fields[6], &q.result_rows));
    CLOUDCACHE_RETURN_IF_ERROR(ParseU64(fields[7], &q.result_bytes));
    if (!fields[8].empty()) {
      for (const std::string& part : SplitOn(fields[8], ';')) {
        CLOUDCACHE_RETURN_IF_ERROR(ParseU64(part, &tmp));
        q.output_columns.push_back(static_cast<ColumnId>(tmp));
      }
    }
    if (!fields[9].empty()) {
      for (const std::string& part : SplitOn(fields[9], ';')) {
        const std::vector<std::string> tuple = SplitOn(part, ':');
        if (tuple.size() != 4) {
          return Status::IoError("line " + std::to_string(line_no) +
                                 ": bad predicate '" + part + "'");
        }
        Predicate p;
        CLOUDCACHE_RETURN_IF_ERROR(ParseU64(tuple[0], &tmp));
        p.column = static_cast<ColumnId>(tmp);
        CLOUDCACHE_RETURN_IF_ERROR(ParseDouble(tuple[1], &p.selectivity));
        p.equality = tuple[2] == "1";
        p.clustered = tuple[3] == "1";
        q.predicates.push_back(p);
      }
    }
    const Status valid = q.Validate(catalog);
    if (!valid.ok()) {
      return Status::IoError("line " + std::to_string(line_no) + ": " +
                             valid.ToString());
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

Result<std::vector<Query>> TraceReader::Read(const std::string& path,
                                             const Catalog& catalog) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return FromCsv(buffer.str(), catalog);
}

}  // namespace cloudcache
