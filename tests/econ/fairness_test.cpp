#include "src/econ/fairness.h"

#include <gtest/gtest.h>

#include "src/sim/metrics.h"

namespace cloudcache {
namespace {

TEST(JainsIndexTest, UniformAllocationIsPerfectlyFair) {
  EXPECT_DOUBLE_EQ(JainsIndex({5.0, 5.0, 5.0, 5.0}), 1.0);
  EXPECT_DOUBLE_EQ(JainsIndex({0.25}), 1.0);
}

TEST(JainsIndexTest, MonopolyIsOneOverN) {
  // One tenant holds everything: J = x^2 / (4 * x^2) = 1/4.
  EXPECT_DOUBLE_EQ(JainsIndex({8.0, 0.0, 0.0, 0.0}), 0.25);
  EXPECT_DOUBLE_EQ(JainsIndex({0.0, 3.0}), 0.5);
}

TEST(JainsIndexTest, HandComputedMixedAllocation) {
  // (1+2+3)^2 / (3 * (1+4+9)) = 36/42 = 6/7.
  EXPECT_DOUBLE_EQ(JainsIndex({1.0, 2.0, 3.0}), 6.0 / 7.0);
  // (4+2)^2 / (2 * (16+4)) = 36/40 = 0.9.
  EXPECT_DOUBLE_EQ(JainsIndex({4.0, 2.0}), 0.9);
}

TEST(JainsIndexTest, DegenerateInputsAreTriviallyFair) {
  EXPECT_DOUBLE_EQ(JainsIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(JainsIndex({0.0, 0.0, 0.0}), 1.0);
}

TEST(MaxMinShareTest, UniformIsOne) {
  EXPECT_DOUBLE_EQ(MaxMinShare({2.0, 2.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(MaxMinShare({7.5}), 1.0);
}

TEST(MaxMinShareTest, StarvedTenantIsZero) {
  EXPECT_DOUBLE_EQ(MaxMinShare({6.0, 0.0, 3.0}), 0.0);
}

TEST(MaxMinShareTest, HandComputedWorstOffShare) {
  // min 1, mean 2 -> the worst-off tenant gets half the fair share.
  EXPECT_DOUBLE_EQ(MaxMinShare({1.0, 2.0, 3.0}), 0.5);
}

TEST(MaxMinShareTest, DegenerateInputsAreTriviallyFair) {
  EXPECT_DOUBLE_EQ(MaxMinShare({}), 1.0);
  EXPECT_DOUBLE_EQ(MaxMinShare({0.0, 0.0}), 1.0);
}

TEST(MaxMinShareLowerBetterTest, TracksTheWorstOffLatency) {
  // Uniform latencies are fair; a single dominated tenant drags the
  // share toward 1/n, in the same direction as Jain's index (the plain
  // min/mean form would move the other way for lower-is-better values).
  EXPECT_DOUBLE_EQ(MaxMinShareLowerBetter({2.0, 2.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(MaxMinShareLowerBetter({7.5}), 1.0);
  // mean 32.5, max 100: the starved-tenant run scores low...
  EXPECT_DOUBLE_EQ(MaxMinShareLowerBetter({10.0, 10.0, 10.0, 100.0}),
                   32.5 / 100.0);
  // ...and lower than the favored-tenant run (mean 7.75, max 10).
  EXPECT_LT(MaxMinShareLowerBetter({10.0, 10.0, 10.0, 100.0}),
            MaxMinShareLowerBetter({1.0, 10.0, 10.0, 10.0}));
}

TEST(MaxMinShareLowerBetterTest, DegenerateInputsAreTriviallyFair) {
  EXPECT_DOUBLE_EQ(MaxMinShareLowerBetter({}), 1.0);
  EXPECT_DOUBLE_EQ(MaxMinShareLowerBetter({0.0, 0.0}), 1.0);
}

TEST(NormalizedBreadthTest, SpansZeroToOne) {
  // Monopoly: J = 1/n -> breadth 0; uniform: J = 1 -> breadth 1.
  EXPECT_DOUBLE_EQ(NormalizedBreadth({9.0, 0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedBreadth({3.0, 3.0, 3.0}), 1.0);
  // {1,2,3}: J = 6/7 -> (3 * 6/7 - 1) / 2 = 11/14.
  EXPECT_DOUBLE_EQ(NormalizedBreadth({1.0, 2.0, 3.0}), 11.0 / 14.0);
}

TEST(NormalizedBreadthTest, SingleBackerAndNoMassAreConcentrated) {
  EXPECT_DOUBLE_EQ(NormalizedBreadth({}), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedBreadth({4.0}), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedBreadth({0.0, 0.0}), 0.0);
}

TEST(ComputeFairnessTest, SingleTenantMatchesDefaultReport) {
  // A one-tenant run must compute exactly the defaults a classic run
  // carries, or the --tenants=1 bit-for-bit equivalence would break.
  std::vector<TenantMetrics> tenants(1);
  tenants[0].response_seconds.Add(0.5);
  tenants[0].operating_cost.cpu_dollars = 3.25;
  const FairnessReport report = ComputeFairness(tenants);
  const FairnessReport defaults;
  EXPECT_EQ(report.response_jain, defaults.response_jain);
  EXPECT_EQ(report.response_max_min, defaults.response_max_min);
  EXPECT_EQ(report.billed_jain, defaults.billed_jain);
  EXPECT_EQ(report.billed_max_min, defaults.billed_max_min);
}

TEST(ComputeFairnessTest, HandBuiltSlices) {
  std::vector<TenantMetrics> tenants(2);
  // Mean responses 1.0 and 3.0; billed dollars 4.0 and 2.0.
  tenants[0].response_seconds.Add(1.0);
  tenants[1].response_seconds.Add(3.0);
  tenants[0].operating_cost.network_dollars = 4.0;
  tenants[1].operating_cost.io_dollars = 2.0;
  const FairnessReport report = ComputeFairness(tenants);
  // (1+3)^2 / (2*(1+9)) = 16/20.
  EXPECT_DOUBLE_EQ(report.response_jain, 0.8);
  // Lower-is-better share: mean 2 / max 3.
  EXPECT_DOUBLE_EQ(report.response_max_min, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(report.billed_jain, 0.9);
  // min 2, mean 3.
  EXPECT_DOUBLE_EQ(report.billed_max_min, 2.0 / 3.0);
}

}  // namespace
}  // namespace cloudcache
