#include "src/cache/cache_state.h"

#include <gtest/gtest.h>

#include "tests/testing/fixtures.h"

namespace cloudcache {
namespace {

class CacheStateTest : public ::testing::Test {
 protected:
  CacheStateTest()
      : catalog_(testing::MakeTinyCatalog()),
        registry_(&catalog_),
        cache_(&registry_) {}

  StructureId InternColumn(const char* name) {
    return registry_.Intern(
        ColumnKey(catalog_, *catalog_.FindColumn(name)));
  }

  Catalog catalog_;
  StructureRegistry registry_;
  CacheState cache_;
};

TEST_F(CacheStateTest, StartsEmpty) {
  EXPECT_EQ(cache_.resident_bytes(), 0u);
  EXPECT_EQ(cache_.extra_cpu_nodes(), 0u);
  EXPECT_TRUE(cache_.Residents().empty());
  EXPECT_FALSE(cache_.IsResident(0));
}

TEST_F(CacheStateTest, AddTracksBytesAndResidency) {
  const StructureId id = InternColumn("fact.f_key");
  ASSERT_TRUE(cache_.Add(id, 1.0).ok());
  EXPECT_TRUE(cache_.IsResident(id));
  EXPECT_EQ(cache_.resident_bytes(), 8u * 1'000'000);
  EXPECT_TRUE(cache_.ColumnResident(*catalog_.FindColumn("fact.f_key")));
  EXPECT_FALSE(cache_.ColumnResident(*catalog_.FindColumn("fact.f_date")));
}

TEST_F(CacheStateTest, DoubleAddFails) {
  const StructureId id = InternColumn("fact.f_key");
  ASSERT_TRUE(cache_.Add(id, 0).ok());
  EXPECT_EQ(cache_.Add(id, 1).code(), StatusCode::kAlreadyExists);
}

TEST_F(CacheStateTest, RemoveRestoresState) {
  const StructureId id = InternColumn("fact.f_key");
  ASSERT_TRUE(cache_.Add(id, 0).ok());
  ASSERT_TRUE(cache_.Remove(id).ok());
  EXPECT_FALSE(cache_.IsResident(id));
  EXPECT_EQ(cache_.resident_bytes(), 0u);
  EXPECT_FALSE(cache_.ColumnResident(*catalog_.FindColumn("fact.f_key")));
}

TEST_F(CacheStateTest, RemoveMissingFails) {
  EXPECT_EQ(cache_.Remove(InternColumn("fact.f_key")).code(),
            StatusCode::kNotFound);
}

TEST_F(CacheStateTest, CpuNodesCounted) {
  ASSERT_TRUE(cache_.Add(registry_.Intern(CpuNodeKey(0)), 0).ok());
  ASSERT_TRUE(cache_.Add(registry_.Intern(CpuNodeKey(1)), 0).ok());
  EXPECT_EQ(cache_.extra_cpu_nodes(), 2u);
  EXPECT_EQ(cache_.resident_bytes(), 0u);  // Nodes occupy no disk.
  ASSERT_TRUE(cache_.Remove(registry_.Intern(CpuNodeKey(0))).ok());
  EXPECT_EQ(cache_.extra_cpu_nodes(), 1u);
}

TEST_F(CacheStateTest, TouchUpdatesLastUsed) {
  const StructureId id = InternColumn("fact.f_value");
  ASSERT_TRUE(cache_.Add(id, 5.0).ok());
  EXPECT_EQ(cache_.LastUsed(id), 5.0);
  cache_.Touch(id, 9.0);
  EXPECT_EQ(cache_.LastUsed(id), 9.0);
}

TEST_F(CacheStateTest, ResidentsSortedAscending) {
  const StructureId a = InternColumn("fact.f_key");
  const StructureId b = InternColumn("fact.f_date");
  ASSERT_TRUE(cache_.Add(b, 0).ok());
  ASSERT_TRUE(cache_.Add(a, 0).ok());
  const std::vector<StructureId> residents = cache_.Residents();
  ASSERT_EQ(residents.size(), 2u);
  EXPECT_LT(residents[0], residents[1]);
}

TEST_F(CacheStateTest, ResidentsOfTypeFilters) {
  ASSERT_TRUE(cache_.Add(InternColumn("fact.f_key"), 0).ok());
  ASSERT_TRUE(cache_.Add(registry_.Intern(CpuNodeKey(0)), 0).ok());
  const ColumnId date = *catalog_.FindColumn("fact.f_date");
  ASSERT_TRUE(
      cache_.Add(registry_.Intern(IndexKey(catalog_, {date})), 0).ok());
  EXPECT_EQ(cache_.ResidentsOfType(StructureType::kColumn).size(), 1u);
  EXPECT_EQ(cache_.ResidentsOfType(StructureType::kCpuNode).size(), 1u);
  EXPECT_EQ(cache_.ResidentsOfType(StructureType::kIndex).size(), 1u);
}

TEST_F(CacheStateTest, IndexResidencyDoesNotMarkColumns) {
  const ColumnId date = *catalog_.FindColumn("fact.f_date");
  ASSERT_TRUE(
      cache_.Add(registry_.Intern(IndexKey(catalog_, {date})), 0).ok());
  // An index over f_date does not make the base column readable.
  EXPECT_FALSE(cache_.ColumnResident(date));
}

TEST_F(CacheStateTest, BytesAccumulateAcrossKinds) {
  ASSERT_TRUE(cache_.Add(InternColumn("fact.f_key"), 0).ok());
  const ColumnId date = *catalog_.FindColumn("fact.f_date");
  ASSERT_TRUE(
      cache_.Add(registry_.Intern(IndexKey(catalog_, {date})), 0).ok());
  EXPECT_EQ(cache_.resident_bytes(), 8u * 1'000'000 + 16u * 1'000'000);
}

TEST_F(CacheStateTest, EpochAdvancesOnResidencyChangesOnly) {
  EXPECT_EQ(cache_.epoch(), 0u);
  const StructureId key = InternColumn("fact.f_key");
  ASSERT_TRUE(cache_.Add(key, 0).ok());
  EXPECT_EQ(cache_.epoch(), 1u);
  // Touch moves the LRU clock, not residency: derived plan skeletons stay
  // valid, so the epoch must not move.
  cache_.Touch(key, 5.0);
  EXPECT_EQ(cache_.epoch(), 1u);
  ASSERT_TRUE(cache_.Remove(key).ok());
  EXPECT_EQ(cache_.epoch(), 2u);
  // Failed operations leave the epoch alone.
  EXPECT_FALSE(cache_.Remove(key).ok());
  EXPECT_EQ(cache_.epoch(), 2u);
}

TEST_F(CacheStateTest, ForEachResidentMatchesResidents) {
  ASSERT_TRUE(cache_.Add(InternColumn("fact.f_key"), 0).ok());
  ASSERT_TRUE(cache_.Add(InternColumn("fact.f_value"), 0).ok());
  std::vector<StructureId> visited;
  cache_.ForEachResident([&](StructureId id) { visited.push_back(id); });
  EXPECT_EQ(visited, cache_.Residents());
}

}  // namespace
}  // namespace cloudcache
