#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/server/protocol.h"
#include "src/server/socket_io.h"
#include "src/sim/experiment.h"
#include "src/sim/simulator.h"
#include "src/util/thread_pool.h"

namespace cloudcache {
namespace server {

struct ServerOptions {
  /// Numeric IPv4 listen address.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port (read it back with port()).
  uint16_t port = kDefaultPort;
  /// Connection-handler pool size; 0 sizes it to the stream count plus
  /// headroom for control connections. Every live connection occupies a
  /// worker for its lifetime, so this must exceed the number of
  /// concurrent connections or late arrivals queue until one closes.
  uint32_t workers = 0;
  /// Snapshot file written on graceful shutdown (and by the periodic
  /// cadence below). Empty disables persistence.
  std::string snapshot_path;
  /// Also snapshot every N served queries (0 = shutdown-only).
  uint64_t checkpoint_every = 0;
  /// Restore from snapshot_path at startup (same semantics as the
  /// simulator's --restore: kAuto degrades to a fresh economy on a
  /// missing/corrupt/mismatched snapshot, kHard fails Start()).
  CheckpointOptions::Restore restore = CheckpointOptions::Restore::kNone;
  /// Log a progress line to stderr every N served queries (0 = quiet).
  uint64_t log_every = 0;
  /// Serve Prometheus text exposition over HTTP on this port: GET
  /// /metrics (or /) answers with the live registry snapshot. -1
  /// disables; 0 binds an ephemeral port (read it back with
  /// metrics_port()). Observability-only — scraping never touches the
  /// economy beyond taking the stats mutex.
  int32_t metrics_port = -1;
};

/// The economy served over TCP (docs/server.md). One process hosts the
/// exact object graph the simulator drives — MakeExperimentScheme's
/// scheme, one twin WorkloadGenerator per stream, a Simulator in
/// external-drive mode — and an accept loop hands each connection to a
/// worker-pool handler.
///
/// Determinism discipline: client connection #t claims workload stream t
/// (= tenant t). The server re-derives every stream from the shared
/// config, verifies each received query against its twin generator, and
/// serves queries strictly in the merged arrival order the simulator
/// would use (earliest arrival first, ties by stream id) — a handler
/// whose stream is not at the merge head blocks until it is. The economy
/// the clients observe is therefore bit-identical to `Simulator::Run()`
/// on the same configuration, and snapshots written here restore into
/// `cloudcache_sim --restore` (and vice versa).
///
/// The scheme is driven under one mutex, not sharded: ClusterScheme's
/// cross-node router, the shared account, and the rent meter are all
/// global state, and the paper's economy is defined over a serial order
/// of decisions. Concurrency buys connection fan-in, not decision
/// fan-out (ROADMAP: the parallel decision loop is the windowed driver's
/// job, offline).
class CloudCachedServer {
 public:
  /// `catalog`, `templates`, and `config` must outlive the server (the
  /// scheme keeps pointers into `config`). Call Start() next.
  CloudCachedServer(const Catalog* catalog,
                    const std::vector<QueryTemplate>* templates,
                    const ExperimentConfig* config, ServerOptions options);
  ~CloudCachedServer();

  CloudCachedServer(const CloudCachedServer&) = delete;
  CloudCachedServer& operator=(const CloudCachedServer&) = delete;

  /// Builds the economy (restoring from the snapshot when configured),
  /// binds the listen socket, and spawns the accept loop + worker pool.
  Status Start();

  /// The bound port (after Start()).
  uint16_t port() const { return port_; }

  /// The bound metrics port (after Start(); 0 when the endpoint is off).
  uint16_t metrics_port() const { return metrics_port_; }

  /// The Prometheus text exposition the metrics endpoint serves (also
  /// handy for tests that want the body without HTTP).
  std::string RenderMetricsText() const;

  /// Begins a graceful drain: stop accepting, fail in-flight and new
  /// requests with kShuttingDown, kick blocked reads. Idempotent and
  /// callable from any thread (a signal-watching main loop, a kShutdown
  /// handler, a test).
  void RequestShutdown();

  /// True once RequestShutdown has been called (by anyone).
  bool ShutdownRequested() const { return stop_.load(); }

  /// Joins the accept loop and every handler, then writes the shutdown
  /// snapshot. Returns an error if the snapshot cannot be written, if a
  /// periodic checkpoint had failed, or if the run was tainted by a
  /// diverged stream (the snapshot is refused — it would not match any
  /// simulator-reachable state). Blocks until RequestShutdown happens.
  Status Wait();

  /// Served so far, in merged order (thread-safe).
  uint64_t processed() const;

  /// The live metrics block. Only meaningful once Wait() returned —
  /// while handlers run it is being mutated under the internal mutex.
  const SimMetrics& metrics() const { return sim_->external_metrics(); }

  uint64_t config_hash() const { return config_hash_; }

 private:
  struct StreamState {
    bool claimed = false;    // A Hello ever claimed this stream.
    bool connected = false;  // A connection currently feeds it.
    bool retired = false;    // Left the merge for good (close/divergence).
  };

  /// Builds (or rebuilds, for kAuto restore fallback) the scheme, the
  /// twin generators, and the external-drive simulator.
  Status BuildEconomy();
  void AcceptLoop();
  void HandleConnection(std::shared_ptr<Socket> conn);
  /// Serves the stream-t data loop after a successful Hello.
  void StreamLoop(const Socket& conn, uint32_t stream);
  /// Stats/Shutdown loop for control connections.
  void ControlLoop(const Socket& conn);
  /// Push loop after a StatsSubscribe: writes a StatsAck immediately,
  /// then every `every` served queries, then a final one at run
  /// completion or drain before returning.
  void SubscriptionLoop(const Socket& conn, uint64_t every);
  /// Accept loop + one-shot HTTP responder for the metrics endpoint.
  void MetricsLoop();
  /// True when stream t holds the merge head (earliest peeked arrival,
  /// ties to the lowest stream id) — or when the run is complete or
  /// draining, so the caller can observe that and reply. Requires mu_.
  bool MergeTurnLocked(uint32_t stream) const;
  StatsAckMsg StatsLocked() const;
  void RegisterConnection(const std::shared_ptr<Socket>& conn);
  void UnregisterConnection(const Socket* conn);

  const Catalog* catalog_;
  const std::vector<QueryTemplate>* templates_;
  const ExperimentConfig* config_;
  ServerOptions options_;
  uint64_t config_hash_ = 0;
  bool multi_tenant_ = false;
  uint32_t stream_count_ = 1;

  std::vector<ResolvedTemplate> resolved_;
  std::vector<StructureKey> indexes_;
  std::unique_ptr<Scheme> scheme_;
  std::vector<std::unique_ptr<WorkloadGenerator>> twins_;
  std::unique_ptr<Simulator> sim_;

  Socket listener_;
  uint16_t port_ = 0;
  Socket metrics_listener_;
  uint16_t metrics_port_ = 0;
  std::thread metrics_thread_;
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> stop_{false};

  /// Guards the economy (scheme_, twins_, sim_), the stream table, and
  /// the connection registry. merge_cv_ wakes handlers when the merge
  /// head may have moved or a drain began.
  mutable std::mutex mu_;
  std::condition_variable merge_cv_;
  std::vector<StreamState> streams_;
  bool draining_ = false;
  bool tainted_ = false;
  std::string taint_reason_;
  Status checkpoint_status_ = Status::OK();
  std::vector<std::shared_ptr<Socket>> live_connections_;
};

}  // namespace server
}  // namespace cloudcache
