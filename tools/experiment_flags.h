#pragma once

// Shared experiment flag surface for the command-line binaries
// (cloudcache_sim, cloudcached, loadgen). The server verifies the
// client's HashExperimentConfig at Hello time, so all three must build
// bit-identical ExperimentConfigs from the same flags — the names, the
// defaults, and the config wiring live here exactly once.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/catalog/sdss.h"
#include "src/catalog/tpch.h"
#include "src/sim/experiment.h"
#include "src/util/money.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace cloudcache {
namespace tools {

/// The experiment-defining flags (everything that feeds the config hash,
/// plus the econ-hook knobs that tune the scheme identically everywhere).
struct ExperimentFlags {
  std::string scheme = "econ-cheap";
  std::string catalog = "tpch";
  double scale_tb = 2.5;
  uint64_t queries = 50'000;
  double interarrival = 10.0;
  std::string arrival = "fixed";
  double skew = 1.0;
  double repeat = 0.3;
  uint64_t seed = 17;
  double regret_a = 0.02;
  int64_t horizon = 50'000;
  double initial_credit = 200.0;
  bool build_latency = false;
  bool plan_cache = true;
  uint32_t tenants = 1;      // Concurrent query streams.
  double tenant_skew = 0.0;  // Zipf skew of per-tenant traffic shares.
  bool fair_eviction = false;  // Tenant-aware eviction weighting.
  bool admission = false;      // Per-tenant admission control.
  double admission_ratio = 2.0;  // Unmonetized-regret / revenue throttle.
  std::vector<TenantBudgetShape> tenant_budgets;  // --tenant-budget=t:p[:t].
  uint32_t nodes = 1;            // Cluster cache nodes.
  bool elastic = false;          // Economic scale-out/in.
  double node_rent_multiplier = 1.0;  // Rented-node rent scale.
  uint32_t max_nodes = 4;        // Elasticity ceiling.
  // Whether single-run-only flags were given (cloudcache_sim warns under
  // --sweep).
  bool scheme_set = false;
  bool interarrival_set = false;
};

/// --name=value match helper shared by every binary's parse loop.
inline bool FlagValue(const char* arg, const char* name,
                      std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

enum class FlagParse {
  kConsumed,  // The argument was an experiment flag and was applied.
  kNotMine,   // Not an experiment flag; the caller handles it.
  kError,     // An experiment flag with a malformed value (already
              // reported to stderr).
};

/// Tries one argv entry against the shared experiment flags.
inline FlagParse ParseExperimentFlag(const char* arg,
                                     ExperimentFlags* flags) {
  std::string v;
  if (FlagValue(arg, "--scheme", &v)) {
    flags->scheme = v;
    flags->scheme_set = true;
  } else if (FlagValue(arg, "--catalog", &v)) {
    flags->catalog = v;
  } else if (FlagValue(arg, "--scale-tb", &v)) {
    flags->scale_tb = std::stod(v);
  } else if (FlagValue(arg, "--queries", &v)) {
    flags->queries = std::stoull(v);
  } else if (FlagValue(arg, "--interarrival", &v)) {
    flags->interarrival = std::stod(v);
    flags->interarrival_set = true;
  } else if (FlagValue(arg, "--arrival", &v)) {
    flags->arrival = v;
  } else if (FlagValue(arg, "--skew", &v)) {
    flags->skew = std::stod(v);
  } else if (FlagValue(arg, "--repeat", &v)) {
    flags->repeat = std::stod(v);
  } else if (FlagValue(arg, "--seed", &v)) {
    flags->seed = std::stoull(v);
  } else if (FlagValue(arg, "--regret-a", &v)) {
    flags->regret_a = std::stod(v);
  } else if (FlagValue(arg, "--horizon", &v)) {
    flags->horizon = std::stoll(v);
  } else if (FlagValue(arg, "--credit", &v)) {
    flags->initial_credit = std::stod(v);
  } else if (std::strcmp(arg, "--build-latency") == 0) {
    flags->build_latency = true;
  } else if (std::strcmp(arg, "--no-plan-cache") == 0) {
    flags->plan_cache = false;
  } else if (FlagValue(arg, "--tenants", &v)) {
    flags->tenants =
        static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
  } else if (FlagValue(arg, "--tenant-skew", &v)) {
    flags->tenant_skew = std::stod(v);
  } else if (std::strcmp(arg, "--fair-eviction") == 0) {
    flags->fair_eviction = true;
  } else if (std::strcmp(arg, "--admission") == 0) {
    flags->admission = true;
  } else if (FlagValue(arg, "--admission-ratio", &v)) {
    flags->admission_ratio = std::stod(v);
  } else if (FlagValue(arg, "--tenant-budget", &v)) {
    // T:P[:M] — tenant index, price-multiplier scale, optional tmax
    // scale. Every field is validated: a stray non-numeric tenant must
    // not silently squeeze tenant 0.
    const auto reject = [] {
      std::fprintf(stderr,
                   "--tenant-budget wants <tenant>:<price>[:<tmax>] "
                   "(numeric fields)\n");
      return FlagParse::kError;
    };
    TenantBudgetShape shape;
    const size_t first = v.find(':');
    if (first == std::string::npos || first == 0) return reject();
    const std::string tenant_field = v.substr(0, first);
    char* end = nullptr;
    const unsigned long tenant = std::strtoul(tenant_field.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return reject();
    shape.tenant = static_cast<uint32_t>(tenant);
    const size_t second = v.find(':', first + 1);
    const std::string price_field =
        v.substr(first + 1, second == std::string::npos
                                ? std::string::npos
                                : second - first - 1);
    if (price_field.empty()) return reject();
    shape.price_scale = std::strtod(price_field.c_str(), &end);
    if (end == nullptr || *end != '\0') return reject();
    if (second != std::string::npos) {
      const std::string tmax_field = v.substr(second + 1);
      if (tmax_field.empty()) return reject();
      shape.tmax_scale = std::strtod(tmax_field.c_str(), &end);
      if (end == nullptr || *end != '\0') return reject();
    }
    flags->tenant_budgets.push_back(shape);
  } else if (FlagValue(arg, "--nodes", &v)) {
    flags->nodes =
        static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
  } else if (FlagValue(arg, "--elastic", &v)) {
    if (v == "on") {
      flags->elastic = true;
    } else if (v == "off") {
      flags->elastic = false;
    } else {
      std::fprintf(stderr, "--elastic wants on|off\n");
      return FlagParse::kError;
    }
  } else if (FlagValue(arg, "--node-rent-multiplier", &v)) {
    flags->node_rent_multiplier = std::stod(v);
  } else if (FlagValue(arg, "--max-nodes", &v)) {
    flags->max_nodes =
        static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
  } else {
    return FlagParse::kNotMine;
  }
  return FlagParse::kConsumed;
}

/// Usage fragment for the shared flags (callers append their own).
inline const char* ExperimentFlagsUsage() {
  return
      "  --scheme=bypass|econ-col|econ-cheap|econ-fast   (econ-cheap)\n"
      "  --catalog=tpch|sdss                             (tpch)\n"
      "  --scale-tb=X          TPC-H backend size        (2.5)\n"
      "  --queries=N                                     (50000)\n"
      "  --interarrival=SECS                             (10)\n"
      "  --arrival=fixed|poisson                         (fixed)\n"
      "  --skew=X              template popularity skew  (1.0)\n"
      "  --repeat=P            burst probability         (0.3)\n"
      "  --seed=N                                        (17)\n"
      "  --regret-a=X          a of Eq. 3                (0.02)\n"
      "  --horizon=N           n of Eq. 7                (50000)\n"
      "  --credit=DOLLARS      seed credit               (200)\n"
      "  --build-latency       model structure build latency\n"
      "  --no-plan-cache       disable the plan-skeleton cache (A/B perf)\n"
      "  --tenants=N           concurrent query streams sharing the cache\n"
      "                        (1; >1 merges streams event-driven)\n"
      "  --tenant-skew=X       Zipf skew of per-tenant traffic shares (0)\n"
      "  --fair-eviction       weigh eviction by tenant regret attribution\n"
      "  --admission           throttle tenants with unmonetizable regret\n"
      "  --admission-ratio=X   unmonetized-regret/revenue throttle point (2)\n"
      "  --tenant-budget=T:P[:M]  scale tenant T's budget price multiplier\n"
      "                        by P (and t_max by M); repeatable\n"
      "  --nodes=N             cluster cache nodes (1 = classic single node)\n"
      "  --elastic=on|off      economic node scale-out/in (off)\n"
      "  --node-rent-multiplier=X  rented-node rent vs reservation rate (1)\n"
      "  --max-nodes=N         elasticity ceiling (4)\n";
}

/// Cross-flag validation of the shared surface, as Status so every
/// rejection carries an actionable message.
inline Status ValidateExperimentFlags(const ExperimentFlags& flags) {
  if (flags.tenants == 0) {
    return Status::InvalidArgument("--tenants must be >= 1");
  }
  if (flags.admission_ratio <= 0) {
    return Status::InvalidArgument("--admission-ratio must be > 0");
  }
  for (const TenantBudgetShape& shape : flags.tenant_budgets) {
    if (shape.tenant >= flags.tenants) {
      return Status::InvalidArgument(
          "--tenant-budget tenant " + std::to_string(shape.tenant) +
          " out of range (tenants=" + std::to_string(flags.tenants) + ")");
    }
    // The negated comparison rejects NaN too (NaN > 0 is false).
    if (!(shape.price_scale > 0) || !std::isfinite(shape.price_scale) ||
        !(shape.tmax_scale > 0) || !std::isfinite(shape.tmax_scale)) {
      return Status::InvalidArgument(
          "--tenant-budget scales must be finite and > 0");
    }
  }
  if (flags.nodes == 0) {
    return Status::InvalidArgument("--nodes must be >= 1");
  }
  if (flags.node_rent_multiplier <= 0) {
    return Status::InvalidArgument("--node-rent-multiplier must be > 0");
  }
  return Status::OK();
}

/// Builds the catalog + template set the flags name.
inline Status MakeExperimentCatalog(const ExperimentFlags& flags,
                                    Catalog* catalog,
                                    std::vector<QueryTemplate>* templates) {
  if (flags.catalog == "tpch") {
    *catalog = MakeTpchCatalog(TpchScaleForBytes(static_cast<uint64_t>(
        flags.scale_tb * static_cast<double>(kTB))));
    *templates = MakeTpchTemplates();
    return Status::OK();
  }
  if (flags.catalog == "sdss") {
    *catalog = MakeSdssCatalog();
    *templates = MakeSdssTemplates();
    return Status::OK();
  }
  return Status::InvalidArgument("unknown catalog '" + flags.catalog + "'");
}

/// Builds the one ExperimentConfig every binary shares: workload,
/// tenancy, cluster, scheme kind, and the econ-tuning hook. Checkpoint
/// fields are left at their defaults — they are excluded from the config
/// hash, and each binary wires its own persistence.
inline Result<ExperimentConfig> MakeExperimentFlagsConfig(
    const ExperimentFlags& flags) {
  ExperimentConfig config;
  config.workload.interarrival_seconds = flags.interarrival;
  config.workload.popularity_skew = flags.skew;
  config.workload.repeat_probability = flags.repeat;
  config.workload.seed = flags.seed;
  config.workload.arrival = flags.arrival == "poisson"
                                ? WorkloadOptions::Arrival::kPoisson
                                : WorkloadOptions::Arrival::kFixed;
  config.sim.num_queries = flags.queries;
  config.tenancy.tenants = flags.tenants;
  config.tenancy.traffic_skew = flags.tenant_skew;
  config.tenancy.fair_eviction = flags.fair_eviction;
  config.tenancy.admission = flags.admission;
  if ((flags.fair_eviction || flags.admission) && flags.tenants < 2) {
    std::fprintf(stderr,
                 "note: --fair-eviction/--admission read tenant regret "
                 "attribution; with --tenants=1 they have no effect\n");
  }
  if (!flags.tenant_budgets.empty() && flags.tenants < 2) {
    std::fprintf(stderr,
                 "note: --tenant-budget applies on the multi-tenant path; "
                 "with --tenants=1 it has no effect\n");
  }
  config.tenancy.tenant_budgets = flags.tenant_budgets;
  config.cluster.nodes = flags.nodes;
  config.cluster.elastic = flags.elastic;
  config.cluster.node_rent_multiplier = flags.node_rent_multiplier;
  config.cluster.elasticity.max_nodes =
      std::max(flags.max_nodes, flags.nodes);
  // One amortization horizon prices structure builds and node rent alike.
  config.cluster.elasticity.amortization_horizon = flags.horizon;

  if (flags.scheme == "bypass") {
    config.scheme = SchemeKind::kBypassYield;
  } else if (flags.scheme == "econ-col") {
    config.scheme = SchemeKind::kEconCol;
  } else if (flags.scheme == "econ-cheap") {
    config.scheme = SchemeKind::kEconCheap;
  } else if (flags.scheme == "econ-fast") {
    config.scheme = SchemeKind::kEconFast;
  } else {
    return Status::InvalidArgument("unknown scheme '" + flags.scheme + "'");
  }

  // Hooks are not hashed, so by-value captures keep the config
  // self-contained while every binary applies the identical tuning.
  const double regret_a = flags.regret_a;
  const int64_t horizon = flags.horizon;
  const double initial_credit = flags.initial_credit;
  const bool build_latency = flags.build_latency;
  const double admission_ratio = flags.admission_ratio;
  const bool plan_cache = flags.plan_cache;
  config.customize_econ = [regret_a, horizon, initial_credit, build_latency,
                           admission_ratio,
                           plan_cache](EconScheme::Config& econ) {
    econ.economy.regret_fraction_a = regret_a;
    econ.economy.amortization_horizon = horizon;
    econ.economy.initial_credit = Money::FromDollars(initial_credit);
    econ.economy.model_build_latency = build_latency;
    econ.economy.admission.throttle_ratio = admission_ratio;
    econ.economy.admission.readmit_ratio = admission_ratio / 2;
    econ.enumerator.enable_plan_cache = plan_cache;
  };
  return config;
}

}  // namespace tools
}  // namespace cloudcache
