#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/persist/codec.h"
#include "src/util/money.h"

namespace cloudcache {

/// Elasticity policy knobs. Windows are counted in queries, not seconds,
/// so decisions are a pure function of the query stream (bit-identical
/// across repeats and sweep thread counts).
struct ElasticityOptions {
  /// Queries between controller evaluations (one window).
  uint64_t check_interval_queries = 500;
  /// Consecutive windows a signal must persist before the controller acts
  /// — "sustained", so one regret spike or one quiet window never moves
  /// the cluster.
  uint32_t sustain_windows = 3;
  /// Windows after any scale event before the next is allowed; lets the
  /// router re-balance (and new structures get built) before judging the
  /// new shape.
  uint32_t cooldown_windows = 4;
  /// A node routed fewer than this share of a window's queries is cold:
  /// the router is finding no resident structure worth sending traffic to,
  /// i.e. the node's inventory no longer pays its keep.
  double cold_share = 0.02;
  /// n of Eq. 7: the horizon a new node's rent is amortized over when
  /// compared against standing regret (kept in sync with the economy's
  /// own amortization horizon by the experiment wiring).
  int64_t amortization_horizon = 50'000;
  /// Cluster size bounds. The coordinator (node index 0) is never
  /// released, so min_nodes is implicitly at least 1.
  uint32_t min_nodes = 1;
  uint32_t max_nodes = 4;
};

/// One window's observations, assembled by the cluster scheme.
struct ElasticityWindow {
  /// Standing (unmonetized) regret across every node's economy at window
  /// end: demand for structures the current fleet has not been able to
  /// monetize into builds.
  Money standing_regret;
  /// One node's rent over the amortization horizon, at decision prices:
  /// rent_per_second x horizon_queries x observed mean interarrival.
  double projected_rent_dollars = 0;
  /// Queries routed to each live node during the window (index-aligned
  /// with the cluster's node vector; index 0 is the coordinator).
  std::vector<uint64_t> routed;
  /// Total queries in the window (the sum of `routed`).
  uint64_t window_queries = 0;
};

enum class ElasticDecision { kHold, kRent, kRelease };

struct ElasticAction {
  ElasticDecision decision = ElasticDecision::kHold;
  /// Node index to release (valid when decision == kRelease; never 0).
  size_t release_index = 0;
};

/// The economic scale-out/in policy, separated from the cluster mechanics
/// so it is unit-testable with hand-built windows.
///
/// Scale-out: the cluster's standing regret is unserved willingness to
/// pay — demand the current nodes cannot monetize because their credit,
/// disk, and build budgets are committed. When that regret, sustained
/// over `sustain_windows`, exceeds what one more node would cost in rent
/// over the amortization horizon, renting the node is priced exactly like
/// any other investment the paper's economy makes — and the controller
/// rents.
///
/// Scale-in: a node whose routed share stays under `cold_share` for
/// `sustain_windows` windows holds no structure the router finds worth
/// routing to — its inventory no longer pays its rent. The controller
/// releases the coldest such node (smallest routed count, ties to the
/// higher index, never the coordinator); the cluster migrates its
/// still-warm structures before the node goes away.
class ElasticityController {
 public:
  explicit ElasticityController(ElasticityOptions options)
      : options_(options) {}

  /// Evaluates one window. Called exactly once per check interval, in
  /// query-stream order.
  ElasticAction Step(const ElasticityWindow& window);

  const ElasticityOptions& options() const { return options_; }

  /// Checkpoint support: the hot/cold streaks and the cooldown are the
  /// controller's entire run state (the options are configuration).
  void SaveState(persist::Encoder* enc) const;
  Status RestoreState(persist::Decoder* dec);

 private:
  ElasticityOptions options_;
  uint32_t hot_streak_ = 0;
  /// Per-node-index consecutive cold windows. Reset wholesale after any
  /// scale event: indices shift on release and a fresh node changes every
  /// node's routed share, so old streaks describe a fleet that no longer
  /// exists.
  std::vector<uint32_t> cold_streaks_;
  uint32_t cooldown_ = 0;
};

}  // namespace cloudcache
