file(REMOVE_RECURSE
  "CMakeFiles/cloudcache_cache_tests.dir/cache/cache_state_test.cpp.o"
  "CMakeFiles/cloudcache_cache_tests.dir/cache/cache_state_test.cpp.o.d"
  "CMakeFiles/cloudcache_cache_tests.dir/cache/candidate_pool_test.cpp.o"
  "CMakeFiles/cloudcache_cache_tests.dir/cache/candidate_pool_test.cpp.o.d"
  "CMakeFiles/cloudcache_cache_tests.dir/cache/maintenance_test.cpp.o"
  "CMakeFiles/cloudcache_cache_tests.dir/cache/maintenance_test.cpp.o.d"
  "cloudcache_cache_tests"
  "cloudcache_cache_tests.pdb"
  "cloudcache_cache_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudcache_cache_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
