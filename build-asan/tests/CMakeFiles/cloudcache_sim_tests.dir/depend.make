# Empty dependencies file for cloudcache_sim_tests.
# This may be replaced when dependencies are built.
