# Empty dependencies file for cloudcache_workload_tests.
# This may be replaced when dependencies are built.
