#include "src/cost/price_list.h"

#include <cstdio>

namespace cloudcache {

PriceList PriceList::AmazonEc2_2009() { return PriceList{}; }

PriceList PriceList::GoGrid2009() {
  PriceList prices;
  prices.network_byte_dollars = 0.0;
  prices.cpu_second_dollars = 0.19 / 3600.0;   // GoGrid RAM-hour pricing.
  prices.disk_byte_second_dollars = 0.15 / (1e9 * kMonth);
  return prices;
}

PriceList PriceList::NetworkOnly() {
  PriceList prices;
  prices.cpu_second_dollars = 0.0;
  prices.disk_byte_second_dollars = 0.0;
  prices.io_op_dollars = 0.0;
  prices.cpu_reserve_fraction = 0.0;
  return prices;
}

std::string ToString(const PriceList& prices) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "cpu=$%.4f/h net=$%.4f/GB disk=$%.4f/GB-mo io=$%.4f/Mops "
                "wan=%.1fMbps fcpu=%.4f",
                prices.cpu_second_dollars * 3600.0,
                prices.network_byte_dollars * 1e9,
                prices.disk_byte_second_dollars * 1e9 * kMonth,
                prices.io_op_dollars * 1e6, prices.wan_mbps, prices.fcpu);
  return buf;
}

}  // namespace cloudcache
