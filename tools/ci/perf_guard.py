#!/usr/bin/env python3
"""Perf-regression guard over the hot-path throughput snapshot.

Compares freshly produced BENCH_hotpath.json snapshots against the
committed baseline and fails (exit 1) when any scheme's aggregate_qps
dropped by more than --max-drop at equal settings. Settings (queries per
cell, scale, seed, plan-cache flag) must match between the files —
comparing runs of different shapes would be noise, so a mismatch is its
own error (exit 2) telling the committer to regenerate the baseline.

--fresh accepts several snapshots; each scheme is judged on its best
(maximum) qps across them. Smoke cells run in milliseconds, so a single
scheduler hiccup on a shared CI runner can dwarf the threshold — a real
regression slows every repetition, noise rarely does.

Usage:
  perf_guard.py --baseline BENCH_hotpath_smoke.json \
                --fresh BENCH_fresh_*.json [--max-drop 0.15]
"""

import argparse
import json
import sys

SETTINGS_KEYS = ("bench", "queries_per_cell", "scale_tb", "seed",
                 "plan_cache")


def load(path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as error:
        sys.exit(f"perf_guard: cannot read {path}: {error}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed snapshot to compare against")
    parser.add_argument("--fresh", required=True, nargs="+",
                        help="snapshot(s) produced by this run; schemes "
                             "are judged on their best qps across them")
    parser.add_argument("--max-drop", type=float, default=0.15,
                        help="maximum tolerated fractional qps drop "
                             "per scheme (default 0.15)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    freshes = [(path, load(path)) for path in args.fresh]

    for path, fresh in freshes:
        mismatched = [key for key in SETTINGS_KEYS
                      if baseline.get(key) != fresh.get(key)]
        if mismatched:
            for key in mismatched:
                print(f"perf_guard: setting '{key}' differs: baseline="
                      f"{baseline.get(key)!r} {path}={fresh.get(key)!r}")
            print("perf_guard: settings mismatch — regenerate the "
                  "committed baseline with the same bench flags before "
                  "comparing")
            return 2

    base_qps = baseline.get("aggregate_qps", {})
    fresh_qps = {}
    for _, fresh in freshes:
        for scheme, qps in fresh.get("aggregate_qps", {}).items():
            fresh_qps[scheme] = max(qps, fresh_qps.get(scheme, 0.0))
    if not base_qps:
        sys.exit(f"perf_guard: {args.baseline} has no aggregate_qps")

    failures = []
    for scheme, base in sorted(base_qps.items()):
        current = fresh_qps.get(scheme)
        if current is None:
            failures.append(f"{scheme}: missing from fresh run(s)")
            continue
        if base <= 0:
            continue
        drop = (base - current) / base
        status = "FAIL" if drop > args.max_drop else "ok"
        print(f"perf_guard: {scheme:12s} baseline {base:12.1f} q/s  "
              f"fresh {current:12.1f} q/s  drop {drop:+7.1%}  [{status}]")
        if drop > args.max_drop:
            failures.append(
                f"{scheme}: {base:.1f} -> {current:.1f} q/s "
                f"({drop:+.1%} exceeds -{args.max_drop:.0%})")

    if failures:
        print("perf_guard: throughput regression detected:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"perf_guard: all {len(base_qps)} schemes within "
          f"{args.max_drop:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
