#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/persist/codec.h"
#include "src/query/query.h"
#include "src/util/status.h"

namespace cloudcache {
namespace server {

/// cloudcached wire protocol (docs/server.md). Every message travels in a
/// frame: a u32 little-endian payload length (excluding itself), then the
/// payload — one MessageType byte followed by the message body in the
/// persist codec's conventions (fixed-width little-endian integers,
/// doubles bit-cast to u64, u64-length-prefixed strings). The codec here
/// is socket-free: it maps structs to payload bytes and back, so the
/// tests exercise it exactly like tests/persist/ exercises snapshots.

/// Bumped on any incompatible change to framing, message layout, or
/// message semantics. HelloAck echoes the server's version; a client must
/// refuse to proceed on a mismatch, and the server refuses first.
/// v2: StatsAck grew cache/throttle/investment counters and per-stream
/// slices, and StatsSubscribe streams StatsAck frames on a control
/// connection (loadgen --watch).
inline constexpr uint32_t kProtocolVersion = 2;

/// Frames above this payload size are refused as corrupt before any
/// allocation — no legitimate message comes close (a Query is a few
/// hundred bytes).
inline constexpr uint32_t kMaxFramePayloadBytes = 1u << 20;

/// Hello.stream_id for control connections: no workload stream is
/// claimed; only Stats and Shutdown are served.
inline constexpr uint32_t kControlStream = 0xFFFFFFFFu;

/// Default cloudcached TCP port.
inline constexpr uint16_t kDefaultPort = 4909;

enum class MessageType : uint8_t {
  kHello = 1,        // client -> server, first message on a connection
  kHelloAck = 2,     // server -> client
  kQuery = 3,        // client -> server
  kOutcome = 4,      // server -> client
  kError = 5,        // server -> client (usually followed by close)
  kStats = 6,        // client -> server
  kStatsAck = 7,     // server -> client
  kShutdown = 8,     // client -> server
  kShutdownAck = 9,  // server -> client
  /// Control connections only: the server pushes a StatsAck now and then
  /// again every `every` served queries, until the run completes or the
  /// server drains (a final StatsAck precedes the close).
  kStatsSubscribe = 10,  // client -> server
};

enum class ErrorCode : uint8_t {
  /// Malformed frame or message body; the connection is closed.
  kBadFrame = 1,
  /// Hello.protocol_version != kProtocolVersion.
  kVersionMismatch = 2,
  /// Hello.config_hash does not match the server's experiment config.
  kConfigMismatch = 3,
  /// The requested stream already has a live connection.
  kStreamClaimed = 4,
  /// Hello.stream_id is neither a configured stream nor kControlStream.
  kStreamOutOfRange = 5,
  /// A received query does not match what the server's twin generator
  /// produced for this stream; the stream is retired and snapshots are
  /// refused from here on.
  kStreamDiverged = 6,
  /// The configured run length has been served in full.
  kRunComplete = 7,
  /// The server is draining for shutdown.
  kShuttingDown = 8,
  /// Message type not allowed in this connection state.
  kNotAllowed = 9,
  kInternal = 10,
};

const char* MessageTypeName(MessageType type);
const char* ErrorCodeName(ErrorCode code);

struct HelloMsg {
  uint32_t protocol_version = kProtocolVersion;
  /// Workload stream (= tenant id) this connection feeds, or
  /// kControlStream for a stats/shutdown connection.
  uint32_t stream_id = 0;
  /// HashExperimentConfig of the client's config; 0 skips the check (for
  /// probes that cannot reconstruct the config).
  uint64_t config_hash = 0;
};

struct HelloAckMsg {
  uint32_t protocol_version = kProtocolVersion;
  uint32_t stream_id = 0;
  /// The server's config hash, for the client's own cross-check.
  uint64_t config_hash = 0;
  /// Configured merged run length.
  uint64_t num_queries = 0;
  /// Queries this stream's server-side generator has already produced
  /// (non-zero after a restore): the client fast-forwards its generator
  /// by this many draws before sending.
  uint64_t next_query_id = 0;
};

/// The served outcome of one query, flattened from ServedQuery to its
/// client-visible facts.
struct OutcomeMsg {
  uint64_t query_id = 0;
  /// Index of this query in the server's merged order (0-based).
  uint64_t global_index = 0;
  bool served = false;
  /// PlanSpec::Access of the executed plan (kBackend when unserved).
  uint8_t access = 0;
  bool throttled = false;
  double response_seconds = 0;
  int64_t payment_micros = 0;
  int64_t profit_micros = 0;
  bool has_budget_case = false;
  /// BudgetCase when has_budget_case (0 = A, 1 = B, 2 = C).
  uint8_t budget_case = 0;
  uint32_t investments = 0;
  uint32_t evictions = 0;
};

struct ErrorMsg {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

/// Per-stream slice of a StatsAck (one entry per workload stream).
struct StreamStatsMsg {
  uint32_t stream = 0;
  uint64_t queries = 0;
  uint64_t served = 0;
  uint64_t throttled = 0;
};

struct StatsAckMsg {
  uint64_t processed = 0;
  uint64_t num_queries = 0;
  uint64_t served = 0;
  uint32_t active_streams = 0;
  int64_t credit_micros = 0;
  // v2: the registry-backed snapshot — aggregate economy counters plus
  // one slice per stream, so a watcher renders per-stream progress
  // without scraping the HTTP endpoint.
  uint64_t served_in_cache = 0;
  uint64_t throttled = 0;
  uint64_t investments = 0;
  uint64_t evictions = 0;
  std::vector<StreamStatsMsg> streams;
};

struct StatsSubscribeMsg {
  /// Push cadence in served queries; must be >= 1.
  uint64_t every = 0;
};

// --- Payload codecs. Encode* appends `type byte + body` to `enc` (the
// frame length prefix is the transport's job, src/server/socket_io.h).
// To decode, first consume and validate the type byte with PeekType,
// then call the matching Decode*, which consumes the body and refuses
// trailing bytes, unknown enum values, and truncation with a descriptive
// Status, persist-style.

void EncodeHello(const HelloMsg& msg, persist::Encoder* enc);
Status DecodeHello(persist::Decoder* dec, HelloMsg* msg);

void EncodeHelloAck(const HelloAckMsg& msg, persist::Encoder* enc);
Status DecodeHelloAck(persist::Decoder* dec, HelloAckMsg* msg);

/// The full Query struct: deterministic fields the server verifies
/// against its twin generator (id, template, arrival, tenant) plus the
/// resource profile (columns, predicates, result shape).
void EncodeQuery(const Query& query, persist::Encoder* enc);
Status DecodeQuery(persist::Decoder* dec, Query* query);

void EncodeOutcome(const OutcomeMsg& msg, persist::Encoder* enc);
Status DecodeOutcome(persist::Decoder* dec, OutcomeMsg* msg);

void EncodeError(const ErrorMsg& msg, persist::Encoder* enc);
Status DecodeError(persist::Decoder* dec, ErrorMsg* msg);

void EncodeStats(persist::Encoder* enc);
Status DecodeStats(persist::Decoder* dec);

void EncodeStatsAck(const StatsAckMsg& msg, persist::Encoder* enc);
Status DecodeStatsAck(persist::Decoder* dec, StatsAckMsg* msg);

void EncodeStatsSubscribe(const StatsSubscribeMsg& msg,
                          persist::Encoder* enc);
Status DecodeStatsSubscribe(persist::Decoder* dec, StatsSubscribeMsg* msg);

void EncodeShutdown(persist::Encoder* enc);
Status DecodeShutdown(persist::Decoder* dec);

void EncodeShutdownAck(persist::Encoder* enc);
Status DecodeShutdownAck(persist::Decoder* dec);

/// Reads and validates the leading type byte of a payload.
Status PeekType(persist::Decoder* dec, MessageType* type);

}  // namespace server
}  // namespace cloudcache
