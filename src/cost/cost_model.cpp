#include "src/cost/cost_model.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace cloudcache {

namespace {

/// Sum of the storage widths of `columns`.
uint64_t WidthOf(const Catalog& catalog,
                 const std::vector<ColumnId>& columns) {
  uint64_t width = 0;
  for (ColumnId col : columns) width += catalog.column(col).width_bytes;
  return width;
}

}  // namespace

double CostModel::ParallelTimeFactor(double parallel_fraction,
                                     uint32_t nodes) const {
  CLOUDCACHE_CHECK_GE(nodes, 1u);
  if (nodes == 1) return 1.0;
  const double f = std::clamp(parallel_fraction, 0.0, 1.0);
  const double k = static_cast<double>(nodes);
  const double overhead = 1.0 + prices_->parallel_overhead * (k - 1.0);
  return (1.0 - f) + f * overhead / k;
}

double CostModel::ParallelCpuFactor(double parallel_fraction,
                                    uint32_t nodes) const {
  CLOUDCACHE_CHECK_GE(nodes, 1u);
  if (nodes == 1) return 1.0;
  const double f = std::clamp(parallel_fraction, 0.0, 1.0);
  const double k = static_cast<double>(nodes);
  const double overhead = 1.0 + prices_->parallel_overhead * (k - 1.0);
  return (1.0 - f) + f * overhead;
}

CostModel::ExecutionBase CostModel::EstimateExecutionBase(
    const Query& query, const PlanSpec& spec, uint64_t accessed_width,
    double clustered_fraction) const {
  const Table& table = catalog_->table(query.table);
  const auto total_rows = static_cast<double>(table.row_count);
  const PriceList& p = *prices_;

  // Rows the executor actually touches and bytes it reads, by access path.
  double touched_rows = 0;
  double bytes_read = 0;
  double io_multiplier = 1.0;
  switch (spec.access) {
    case PlanSpec::Access::kBackend: {
      // Fully indexed back-end, which also has the clustered base tables:
      // its optimizer takes whichever access path touches less I/O —
      // random index fetches for selective queries, a clustered region
      // scan for broad ones (the standard index-vs-scan crossover).
      const double width = static_cast<double>(accessed_width);
      const double probe_rows = total_rows * query.CombinedSelectivity();
      const double probe_bytes =
          probe_rows * width * p.random_io_multiplier;
      const double scan_rows = total_rows * clustered_fraction;
      const double scan_bytes = scan_rows * width;
      if (probe_bytes <= scan_bytes) {
        touched_rows = probe_rows;
        bytes_read = probe_rows * width;
        io_multiplier = p.random_io_multiplier;
      } else {
        touched_rows = scan_rows;
        bytes_read = scan_bytes;
        io_multiplier = 1.0;
      }
      break;
    }
    case PlanSpec::Access::kCacheScan: {
      // Clustered predicates prune the scanned region; the remaining
      // predicates are evaluated on the fly.
      touched_rows = total_rows * clustered_fraction;
      bytes_read = touched_rows * static_cast<double>(accessed_width);
      io_multiplier = 1.0;
      break;
    }
    case PlanSpec::Access::kCacheIndex: {
      double probe_sel = 1.0;
      for (size_t pos : spec.covered_predicates) {
        CLOUDCACHE_CHECK_LT(pos, query.predicates.size());
        probe_sel *= query.predicates[pos].selectivity;
      }
      touched_rows = total_rows * probe_sel;
      if (spec.covering) {
        // Entries read straight out of the index leaves: key + locator.
        const uint64_t entry = accessed_width + 8;  // 8-byte row locator.
        bytes_read = touched_rows * static_cast<double>(entry);
        io_multiplier = 1.0;
      } else {
        bytes_read = touched_rows * static_cast<double>(accessed_width);
        io_multiplier = p.random_io_multiplier;
      }
      break;
    }
  }

  // CPU work: qtot in millions of row-operations (Section V-B's
  // plan-reported total), converted to seconds by fcpu.
  const double qtot_m =
      (touched_rows * query.cpu_multiplier +
       static_cast<double>(query.result_rows)) /
      1e6;

  ExecutionBase base;
  base.cpu_serial = p.lcpu * p.fcpu * qtot_m;

  // I/O: logical operations after the fio calibration.
  const double ops_raw = bytes_read / p.io_bytes_per_op * p.fio;
  base.io_ops = static_cast<uint64_t>(std::ceil(ops_raw * io_multiplier));
  base.io_seconds = static_cast<double>(base.io_ops) * p.io_seconds_per_op;
  return base;
}

ExecutionEstimate CostModel::FinalizeExecution(
    const Query& query, const PlanSpec& spec,
    const ExecutionBase& base) const {
  const bool in_cache = spec.access != PlanSpec::Access::kBackend;
  const uint32_t nodes = in_cache ? std::max(1u, spec.cpu_nodes) : 1;
  return FinalizeExecutionWithFactors(
      query, spec, base, ParallelTimeFactor(query.parallel_fraction, nodes),
      ParallelCpuFactor(query.parallel_fraction, nodes));
}

ExecutionEstimate CostModel::FinalizeExecutionWithFactors(
    const Query& query, const PlanSpec& spec, const ExecutionBase& base,
    double time_factor, double cpu_factor) const {
  const PriceList& p = *prices_;
  ExecutionEstimate est;
  const bool in_cache = spec.access != PlanSpec::Access::kBackend;
  est.time_seconds = (base.cpu_serial + base.io_seconds) * time_factor;
  est.cpu_seconds = base.cpu_serial * cpu_factor;
  est.io_ops = base.io_ops;
  est.wan_bytes = 0;

  // Eq. 8: CeC = lcpu * fcpu * qtot * c + fio * io * iotot.
  est.cost = p.CpuCost(est.cpu_seconds) + p.IoCost(est.io_ops);

  if (!in_cache) {
    // Eq. 9: CeN = CeC + fn * (l + S(Q)/t) * c + S(Q) * cb.
    const double transfer_seconds = p.WanSeconds(query.result_bytes);
    const double transfer_cpu = p.fn * transfer_seconds;
    est.time_seconds += transfer_seconds;
    est.cpu_seconds += transfer_cpu;
    est.wan_bytes = query.result_bytes;
    est.cost += p.CpuCost(transfer_cpu) + p.NetworkCost(query.result_bytes);
  }
  return est;
}

ExecutionEstimate CostModel::EstimateExecution(const Query& query,
                                               const PlanSpec& spec) const {
  const std::vector<ColumnId>& accessed = query.AccessedColumns();
  double clustered_fraction = 1.0;
  for (const Predicate& pred : query.predicates) {
    if (pred.clustered) clustered_fraction *= pred.selectivity;
  }
  return FinalizeExecution(
      query, spec,
      EstimateExecutionBase(query, spec, WidthOf(*catalog_, accessed),
                            clustered_fraction));
}

void CostModel::BatchEstimator::Reset(const Query& query) {
  query_ = &query;
  accessed_width_ = WidthOf(*model_->catalog_, query.AccessedColumns());
  clustered_fraction_ = 1.0;
  for (const Predicate& pred : query.predicates) {
    if (pred.clustered) clustered_fraction_ *= pred.selectivity;
  }
  has_family_ = false;
  // Factors depend on query.parallel_fraction: forget the previous
  // query's memo (capacity is kept).
  time_factors_.clear();
  cpu_factors_.clear();
}

ExecutionEstimate CostModel::BatchEstimator::Estimate(const PlanSpec& spec) {
  CLOUDCACHE_CHECK(query_ != nullptr);
  if (!has_family_ || spec.access != family_access_ ||
      spec.covering != family_covering_ ||
      spec.covered_predicates != family_covered_) {
    base_ = model_->EstimateExecutionBase(*query_, spec, accessed_width_,
                                          clustered_fraction_);
    family_access_ = spec.access;
    family_covering_ = spec.covering;
    family_covered_ = spec.covered_predicates;
    has_family_ = true;
  }
  const bool in_cache = spec.access != PlanSpec::Access::kBackend;
  const uint32_t nodes = in_cache ? std::max(1u, spec.cpu_nodes) : 1;
  if (nodes >= time_factors_.size()) {
    time_factors_.resize(nodes + 1, -1.0);
    cpu_factors_.resize(nodes + 1, -1.0);
  }
  if (time_factors_[nodes] < 0.0) {
    time_factors_[nodes] =
        model_->ParallelTimeFactor(query_->parallel_fraction, nodes);
    cpu_factors_[nodes] =
        model_->ParallelCpuFactor(query_->parallel_fraction, nodes);
  }
  return model_->FinalizeExecutionWithFactors(*query_, spec, base_,
                                              time_factors_[nodes],
                                              cpu_factors_[nodes]);
}

Money CostModel::CpuNodeBuildCost() const {
  // Eq. 10: BuildN = b * u.
  return prices_->CpuCost(prices_->boot_seconds);
}

Money CostModel::ColumnBuildCost(ColumnId column) const {
  // Eq. 12: BuildT = fn * (l + size(T)/t) + size(T) * cb, with the CPU
  // term priced at the usage rate.
  const uint64_t bytes = catalog_->ColumnBytes(column);
  const double transfer_cpu = prices_->fn * prices_->WanSeconds(bytes);
  return prices_->CpuCost(transfer_cpu) + prices_->NetworkCost(bytes);
}

double CostModel::ColumnBuildSeconds(ColumnId column) const {
  return prices_->WanSeconds(catalog_->ColumnBytes(column));
}

Query CostModel::MakeIndexBuildQuery(const StructureKey& index) const {
  CLOUDCACHE_CHECK(index.type == StructureType::kIndex);
  // "select A, B from T order by A, B": a full scan of the key columns
  // with sort work folded into the CPU multiplier (n log n per row).
  Query query;
  query.table = index.table;
  query.output_columns = index.columns;
  const double rows =
      static_cast<double>(catalog_->table(index.table).row_count);
  query.cpu_multiplier = std::max(1.0, std::log2(std::max(2.0, rows)) / 8.0);
  query.parallel_fraction = 0.9;
  query.result_rows = catalog_->table(index.table).row_count;
  query.result_bytes = 0;  // Sorted output stays inside the cache.
  return query;
}

Money CostModel::IndexBuildCost(
    const StructureKey& index,
    const std::vector<bool>& column_cached) const {
  CLOUDCACHE_CHECK(index.type == StructureType::kIndex);
  // Eq. 14: BuildI = Ce(P_sort) + sum of BuildT over key columns absent
  // from the cache.
  Query sort_query = MakeIndexBuildQuery(index);
  PlanSpec spec;
  spec.access = PlanSpec::Access::kCacheScan;
  Money total = EstimateExecution(sort_query, spec).cost;
  for (ColumnId col : index.columns) {
    CLOUDCACHE_CHECK_LT(col, column_cached.size());
    if (!column_cached[col]) total += ColumnBuildCost(col);
  }
  return total;
}

double CostModel::IndexBuildSeconds(
    const StructureKey& index,
    const std::vector<bool>& column_cached) const {
  Query sort_query = MakeIndexBuildQuery(index);
  PlanSpec spec;
  spec.access = PlanSpec::Access::kCacheScan;
  double seconds = EstimateExecution(sort_query, spec).time_seconds;
  for (ColumnId col : index.columns) {
    if (!column_cached[col]) seconds += ColumnBuildSeconds(col);
  }
  return seconds;
}

Money CostModel::BuildCost(const StructureKey& key,
                           const std::vector<bool>& column_cached) const {
  switch (key.type) {
    case StructureType::kCpuNode:
      return CpuNodeBuildCost();
    case StructureType::kColumn:
      return ColumnBuildCost(key.columns.front());
    case StructureType::kIndex:
      return IndexBuildCost(key, column_cached);
  }
  return Money();
}

double CostModel::BuildSeconds(const StructureKey& key,
                               const std::vector<bool>& column_cached) const {
  switch (key.type) {
    case StructureType::kCpuNode:
      return prices_->boot_seconds;
    case StructureType::kColumn:
      return ColumnBuildSeconds(key.columns.front());
    case StructureType::kIndex:
      return IndexBuildSeconds(key, column_cached);
  }
  return 0;
}

BuildUsage CostModel::EstimateBuildUsage(
    const StructureKey& key, const std::vector<bool>& column_cached) const {
  BuildUsage usage;
  switch (key.type) {
    case StructureType::kCpuNode:
      usage.cpu_seconds = prices_->boot_seconds;
      break;
    case StructureType::kColumn: {
      const uint64_t bytes = catalog_->ColumnBytes(key.columns.front());
      usage.wan_bytes = bytes;
      usage.cpu_seconds = prices_->fn * prices_->WanSeconds(bytes);
      break;
    }
    case StructureType::kIndex: {
      Query sort_query = MakeIndexBuildQuery(key);
      PlanSpec spec;
      spec.access = PlanSpec::Access::kCacheScan;
      const ExecutionEstimate est = EstimateExecution(sort_query, spec);
      usage.cpu_seconds = est.cpu_seconds;
      usage.io_ops = est.io_ops;
      for (ColumnId col : key.columns) {
        CLOUDCACHE_CHECK_LT(col, column_cached.size());
        if (!column_cached[col]) {
          const uint64_t bytes = catalog_->ColumnBytes(col);
          usage.wan_bytes += bytes;
          usage.cpu_seconds += prices_->fn * prices_->WanSeconds(bytes);
        }
      }
      break;
    }
  }
  return usage;
}

Money CostModel::MaintenanceCost(const StructureKey& key,
                                 double seconds) const {
  return MaintenanceCostSized(key, StructureBytes(*catalog_, key), seconds);
}

Money CostModel::MaintenanceCostSized(const StructureKey& key,
                                      uint64_t bytes, double seconds) const {
  CLOUDCACHE_CHECK_GE(seconds, 0.0);
  switch (key.type) {
    case StructureType::kCpuNode:
      // Eq. 11: MaintN = c per unit time (reservation rate).
      return Money::FromDollars(seconds * prices_->cpu_second_dollars *
                                prices_->cpu_reserve_fraction);
    case StructureType::kColumn:
    case StructureType::kIndex:
      // Eq. 13 / Eq. 15: size * cd per unit time.
      return prices_->DiskCost(bytes, seconds);
  }
  return Money();
}

}  // namespace cloudcache
