#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

#include "src/util/units.h"

namespace cloudcache {

/// A timestamped simulation event. Kind is interpreted by the simulator;
/// `payload` is an opaque 64-bit tag (query index, structure id, ...).
/// `tie` is the first-level tie-break among events at the same timestamp —
/// the multi-tenant simulator sets it to the tenant id, so concurrent
/// arrivals are served in tenant order no matter when each tenant's event
/// was pushed.
struct SimEvent {
  SimTime time = 0;
  enum class Kind { kArrival, kMeterTick, kCustom } kind = Kind::kArrival;
  uint64_t payload = 0;
  uint32_t tie = 0;
};

/// Deterministic min-heap event queue: ties on time break by `tie`, then
/// by insertion sequence, so two runs with the same schedule pop
/// identically regardless of push order.
class EventQueue {
 public:
  void Push(SimEvent event);

  bool Empty() const { return heap_.empty(); }
  size_t Size() const { return heap_.size(); }

  /// Earliest event without removing it; queue must be non-empty.
  const SimEvent& Top() const;

  /// Removes and returns the earliest event; queue must be non-empty.
  SimEvent Pop();

 private:
  struct Entry {
    SimEvent event;
    uint64_t seq;
    bool operator>(const Entry& other) const {
      if (event.time != other.event.time) {
        return event.time > other.event.time;
      }
      if (event.tie != other.event.tie) return event.tie > other.event.tie;
      return seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace cloudcache
