#pragma once

#include <string>
#include <vector>

#include "src/catalog/schema.h"
#include "src/query/query.h"
#include "src/util/status.h"

namespace cloudcache {

/// Serialization of a query stream to a CSV trace and back.
///
/// Traces decouple workload generation from simulation: a generated (or
/// externally captured) stream can be written once and replayed against
/// every scheme, guaranteeing all contenders see byte-identical input.
/// Format (one query per line, header included):
///
///   id,template_id,table,arrival,cpu_multiplier,parallel_fraction,
///   result_rows,result_bytes,outputs,predicates
///
/// where `outputs` is a ';'-separated list of column ids and `predicates`
/// is a ';'-separated list of column:selectivity:eq:clustered tuples.
class TraceWriter {
 public:
  /// Serializes `queries` to `path`, overwriting.
  static Status Write(const std::string& path,
                      const std::vector<Query>& queries);

  /// Serializes to a string (for tests).
  static std::string ToCsv(const std::vector<Query>& queries);
};

class TraceReader {
 public:
  /// Parses a trace file; validates every query against `catalog`.
  static Result<std::vector<Query>> Read(const std::string& path,
                                         const Catalog& catalog);

  /// Parses from a string (for tests).
  static Result<std::vector<Query>> FromCsv(const std::string& csv,
                                            const Catalog& catalog);
};

}  // namespace cloudcache
