#include "src/sim/experiment.h"

#include <gtest/gtest.h>

#include "src/catalog/tpch.h"

namespace cloudcache {
namespace {

class ExperimentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog(MakeTpchCatalog(20.0));
    templates_ = new std::vector<QueryTemplate>(MakeTpchTemplates());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    delete templates_;
  }

  ExperimentConfig SmallConfig(SchemeKind scheme) {
    ExperimentConfig config;
    config.scheme = scheme;
    config.sim.num_queries = 300;
    config.workload.seed = 3;
    return config;
  }

  static Catalog* catalog_;
  static std::vector<QueryTemplate>* templates_;
};

Catalog* ExperimentTest::catalog_ = nullptr;
std::vector<QueryTemplate>* ExperimentTest::templates_ = nullptr;

TEST_F(ExperimentTest, SchemeNamePropagates) {
  for (SchemeKind kind : PaperSchemes()) {
    const SimMetrics m =
        RunExperiment(*catalog_, *templates_, SmallConfig(kind));
    EXPECT_EQ(m.scheme_name, SchemeKindToString(kind));
  }
}

TEST_F(ExperimentTest, IndexCandidateCountIsRespected) {
  // With an empty advisor pool, econ-cheap degenerates to column scans
  // plus parallelism: no index is ever resident.
  ExperimentConfig config = SmallConfig(SchemeKind::kEconCheap);
  config.index_candidates = 0;
  config.sim.num_queries = 1500;
  config.customize_econ = [](EconScheme::Config& econ) {
    econ.economy.regret_fraction_a = 0.001;
    econ.economy.conservative_provider = false;
    econ.economy.initial_credit = Money::FromDollars(50);
    econ.economy.model_build_latency = false;
  };
  const SimMetrics m = RunExperiment(*catalog_, *templates_, config);
  EXPECT_EQ(m.queries, 1500u);
  // The run completes; any investments are columns or CPU nodes. (The
  // absence of indexes is observable through the scheme's cache in the
  // scheme tests; here we pin the plumbing: no crash, full service.)
  EXPECT_EQ(m.served, 1500u);
}

TEST_F(ExperimentTest, WorkloadKnobsReachTheGenerator) {
  ExperimentConfig slow = SmallConfig(SchemeKind::kBypassYield);
  slow.workload.interarrival_seconds = 100.0;
  ExperimentConfig fast = SmallConfig(SchemeKind::kBypassYield);
  fast.workload.interarrival_seconds = 1.0;
  const SimMetrics slow_m = RunExperiment(*catalog_, *templates_, slow);
  const SimMetrics fast_m = RunExperiment(*catalog_, *templates_, fast);
  // Same queries, 100x the wall clock: strictly more disk-rent exposure
  // (both runs cache nothing at this length, so rent is zero-zero; the
  // observable difference is the timeline span).
  ASSERT_GE(slow_m.cost_over_time.size(), 2u);
  ASSERT_GE(fast_m.cost_over_time.size(), 2u);
  EXPECT_GT(slow_m.cost_over_time.times().back(),
            fast_m.cost_over_time.times().back() * 50);
}

TEST_F(ExperimentTest, MeteredPricesControlOperatingCost) {
  ExperimentConfig cheap_net = SmallConfig(SchemeKind::kBypassYield);
  cheap_net.sim.metered_prices.network_byte_dollars = 0.0;
  const SimMetrics free_net =
      RunExperiment(*catalog_, *templates_, cheap_net);
  const SimMetrics paid_net = RunExperiment(
      *catalog_, *templates_, SmallConfig(SchemeKind::kBypassYield));
  EXPECT_EQ(free_net.operating_cost.network_dollars, 0.0);
  EXPECT_GT(paid_net.operating_cost.network_dollars, 0.0);
  // Physical behaviour (what executed where) is identical: metering does
  // not feed back into bypass decisions.
  EXPECT_EQ(free_net.served_in_cache, paid_net.served_in_cache);
  EXPECT_DOUBLE_EQ(free_net.MeanResponse(), paid_net.MeanResponse());
}

TEST_F(ExperimentTest, ExperimentSeedSeparatesFromWorkloadSeed) {
  // config.seed feeds the scheme's budget jitter; workload.seed feeds the
  // query stream. Changing only the scheme seed must leave the stream
  // identical (same backend traffic for bypass, which has no jitter).
  ExperimentConfig a = SmallConfig(SchemeKind::kEconCheap);
  ExperimentConfig b = a;
  b.seed = a.seed + 1;
  const SimMetrics ma = RunExperiment(*catalog_, *templates_, a);
  const SimMetrics mb = RunExperiment(*catalog_, *templates_, b);
  // Same queries, different users: revenue differs, query count equal.
  EXPECT_EQ(ma.queries, mb.queries);
  EXPECT_NE(ma.revenue, mb.revenue);
}

}  // namespace
}  // namespace cloudcache
