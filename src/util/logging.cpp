#include "src/util/logging.h"

#include <atomic>

namespace cloudcache {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= GetLogLevel()) {
  if (enabled_) {
    stream_ << '[' << LevelName(level) << ' ' << file << ':' << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << '\n';
}

FatalMessage::FatalMessage(const char* file, int line,
                           const char* condition) {
  stream_ << "[FATAL " << file << ':' << line << "] Check failed: "
          << condition << ' ';
}

FatalMessage::~FatalMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace cloudcache
