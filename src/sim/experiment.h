#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/baseline/bypass_yield.h"
#include "src/baseline/scheme.h"
#include "src/catalog/schema.h"
#include "src/query/templates.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/workload/generator.h"

namespace cloudcache {

/// A full experiment: one scheme driven by one workload configuration.
struct ExperimentConfig {
  SchemeKind scheme = SchemeKind::kEconCheap;
  WorkloadOptions workload;
  SimulatorOptions sim;
  /// Decision prices for the economy schemes (bypass-yield always decides
  /// at network-only prices regardless).
  PriceList decision_prices = PriceList::AmazonEc2_2009();
  /// Advisor pool size ("65 potentially useful indexes", Section VII-A).
  size_t index_candidates = 65;
  /// Ablation hooks: mutate the scheme configuration before construction.
  /// Applied only when the experiment's scheme is of the matching kind.
  std::function<void(EconScheme::Config&)> customize_econ;
  std::function<void(BypassYieldScheme::Options&)> customize_bypass;
  uint64_t seed = 7;
};

/// Runs one experiment end to end: resolve templates, recommend indexes,
/// build the scheme, generate the workload, simulate, return metrics.
SimMetrics RunExperiment(const Catalog& catalog,
                         const std::vector<QueryTemplate>& templates,
                         const ExperimentConfig& config);

/// Runs the same workload against all four schemes of Section VII-A.
std::vector<SimMetrics> RunAllSchemes(
    const Catalog& catalog, const std::vector<QueryTemplate>& templates,
    ExperimentConfig config);

/// The four inter-arrival intervals of Figs. 4 and 5.
std::vector<double> PaperInterarrivals();

/// The four schemes in the paper's legend order.
std::vector<SchemeKind> PaperSchemes();

}  // namespace cloudcache
