#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/util/money.h"
#include "src/util/status.h"

namespace cloudcache {
namespace persist {

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte span.
/// Software table-driven; snapshots are written once per checkpoint window,
/// so this is nowhere near a hot path.
uint32_t Crc32(const uint8_t* data, size_t size);
inline uint32_t Crc32(const std::vector<uint8_t>& data) {
  return Crc32(data.data(), data.size());
}

/// Append-only little-endian byte sink. All integers are fixed-width
/// little-endian; doubles are bit-cast to uint64_t, so a save→load round
/// trip reproduces every value bit for bit (including -0.0, infinities,
/// and NaN payloads — RunningStats min/max start at ±inf).
class Encoder {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutU32(uint32_t v) { PutLittleEndian(v, 4); }
  void PutU64(uint64_t v) { PutLittleEndian(v, 8); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }
  void PutMoney(Money v) { PutI64(v.micros()); }
  void PutString(const std::string& s) {
    PutU64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void PutBytes(const uint8_t* data, size_t size) {
    buf_.insert(buf_.end(), data, data + size);
  }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }

 private:
  void PutLittleEndian(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> buf_;
};

/// Bounds-checked reader over a byte span (not owned). Every read returns
/// a Status instead of asserting: snapshot bytes come from disk and may be
/// truncated or corrupt, and the loader must fail descriptively, never
/// crash (the corruption fuzz test runs this under ASan/UBSan).
class Decoder {
 public:
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Status ReadU8(uint8_t* out) {
    CLOUDCACHE_RETURN_IF_ERROR(Need(1));
    *out = data_[pos_++];
    return Status::OK();
  }
  Status ReadBool(bool* out) {
    uint8_t v = 0;
    CLOUDCACHE_RETURN_IF_ERROR(ReadU8(&v));
    if (v > 1) {
      return Status::InvalidArgument("corrupt bool byte in snapshot");
    }
    *out = v != 0;
    return Status::OK();
  }
  Status ReadU32(uint32_t* out) {
    uint64_t v = 0;
    CLOUDCACHE_RETURN_IF_ERROR(ReadLittleEndian(&v, 4));
    *out = static_cast<uint32_t>(v);
    return Status::OK();
  }
  Status ReadU64(uint64_t* out) { return ReadLittleEndian(out, 8); }
  Status ReadI64(int64_t* out) {
    uint64_t v = 0;
    CLOUDCACHE_RETURN_IF_ERROR(ReadU64(&v));
    *out = static_cast<int64_t>(v);
    return Status::OK();
  }
  Status ReadDouble(double* out) {
    uint64_t bits = 0;
    CLOUDCACHE_RETURN_IF_ERROR(ReadU64(&bits));
    std::memcpy(out, &bits, sizeof(*out));
    return Status::OK();
  }
  Status ReadMoney(Money* out) {
    int64_t micros = 0;
    CLOUDCACHE_RETURN_IF_ERROR(ReadI64(&micros));
    *out = Money::FromMicros(micros);
    return Status::OK();
  }
  Status ReadString(std::string* out) {
    uint64_t size = 0;
    CLOUDCACHE_RETURN_IF_ERROR(ReadU64(&size));
    CLOUDCACHE_RETURN_IF_ERROR(Need(size));
    out->assign(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<size_t>(size));
    pos_ += static_cast<size_t>(size);
    return Status::OK();
  }
  /// Reads a length prefix destined for a reserve()/resize() call. The
  /// length of any serialized sequence is bounded by the bytes that
  /// remain, so a corrupt huge count fails here instead of as an OOM
  /// inside the container.
  Status ReadLength(uint64_t* out) {
    CLOUDCACHE_RETURN_IF_ERROR(ReadU64(out));
    if (*out > remaining()) {
      return Status::OutOfRange("corrupt sequence length in snapshot");
    }
    return Status::OK();
  }

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }
  /// Remaining bytes must be exactly zero once a section is fully decoded;
  /// trailing garbage means the writer and reader disagree on the layout.
  Status ExpectEnd() const {
    if (!AtEnd()) {
      return Status::InvalidArgument("trailing bytes after snapshot section");
    }
    return Status::OK();
  }

 private:
  Status Need(uint64_t bytes) const {
    if (bytes > remaining()) {
      return Status::OutOfRange("snapshot truncated: read past end of section");
    }
    return Status::OK();
  }
  Status ReadLittleEndian(uint64_t* out, int bytes) {
    CLOUDCACHE_RETURN_IF_ERROR(Need(static_cast<uint64_t>(bytes)));
    uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += static_cast<size_t>(bytes);
    *out = v;
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace persist
}  // namespace cloudcache
