// Reproduces Figure 5: "Comparison of average response time for caching
// schemes" — mean seconds per query for bypass / econ-col / econ-cheap /
// econ-fast at inter-query intervals of 1, 10, 30 and 60 seconds.
//
// Expected shape (Section VII-B): bypass ~ econ-col (both serve from
// cached columns only); econ-cheap roughly halves econ-col by probing
// indexes; econ-fast shaves ~10% more via parallel CPU nodes; the index
// schemes degrade as the interval grows and structures are evicted before
// they repay their rent.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/sim/report.h"

int main(int argc, char** argv) {
  using namespace cloudcache;
  using namespace cloudcache::bench;

  const BenchOptions options = ParseArgs(argc, argv, /*default=*/150'000);
  const PaperSetup setup = MakePaperSetup(options);
  std::fprintf(stderr, "fig5: %llu queries/cell, %.1f TB backend\n",
               static_cast<unsigned long long>(options.queries),
               options.scale_tb);

  const std::vector<double> intervals = PaperInterarrivals();
  const auto rows = RunInterarrivalSweep(setup, options, intervals);

  std::puts(
      "Figure 5 — average response time (seconds) by inter-arrival time");
  EmitTable(MakeResponseTimeTable(intervals, rows), options);

  std::puts("");
  std::puts("Latency detail (p50 / p95 / p99) at each interval:");
  for (size_t i = 0; i < intervals.size(); ++i) {
    std::printf("-- interarrival %.0fs --\n", intervals[i]);
    for (const SimMetrics& m : rows[i]) {
      std::printf(
          "  %-10s mean %7.3fs  p50 %7.3fs  p95 %7.3fs  p99 %7.3fs  "
          "cache-hits %llu invest %llu evict %llu\n",
          m.scheme_name.c_str(), m.MeanResponse(),
          m.response_hist.Quantile(0.5), m.response_hist.Quantile(0.95),
          m.response_hist.Quantile(0.99),
          static_cast<unsigned long long>(m.served_in_cache),
          static_cast<unsigned long long>(m.investments),
          static_cast<unsigned long long>(m.evictions));
    }
  }
  return 0;
}
