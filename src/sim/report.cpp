#include "src/sim/report.h"

#include <sstream>

#include "src/util/logging.h"

namespace cloudcache {

std::string FormatRunDetail(const SimMetrics& m) {
  std::ostringstream out;
  out << "scheme " << m.scheme_name << ": " << m.queries << " queries, "
      << m.served << " served (" << m.served_in_cache << " cache / "
      << m.served_in_backend << " backend)\n";
  out << "  response: mean " << FormatDouble(m.MeanResponse(), 3)
      << "s  p50 " << FormatDouble(m.response_hist.Quantile(0.5), 3)
      << "s  p95 " << FormatDouble(m.response_hist.Quantile(0.95), 3)
      << "s  p99 " << FormatDouble(m.response_hist.Quantile(0.99), 3)
      << "s  max " << FormatDouble(m.response_hist.Quantile(1.0), 3)
      << "s\n";
  out << "  operating cost: $" << FormatDouble(m.operating_cost.Total(), 2)
      << "  (cpu $" << FormatDouble(m.operating_cost.cpu_dollars, 2)
      << ", net $" << FormatDouble(m.operating_cost.network_dollars, 2)
      << ", disk $" << FormatDouble(m.operating_cost.disk_dollars, 2)
      << ", io $" << FormatDouble(m.operating_cost.io_dollars, 2) << ")\n";
  out << "  economy: revenue " << m.revenue.ToString() << ", profit "
      << m.profit.ToString() << ", final credit "
      << m.final_credit.ToString() << "\n";
  out << "  adaptation: " << m.investments << " investments, "
      << m.evictions << " evictions; cases A/B/C = " << m.case_a << "/"
      << m.case_b << "/" << m.case_c << "\n";
  out << "  cache: " << FormatDouble(
             static_cast<double>(m.final_resident_bytes) / 1e9, 1)
      << " GB resident, " << m.final_extra_nodes << " extra nodes\n";
  return out.str();
}

namespace {

TableWriter MakeSweepTable(
    const std::vector<double>& intervals,
    const std::vector<std::vector<SimMetrics>>& rows,
    const char* value_header, double (*extract)(const SimMetrics&),
    int precision) {
  CLOUDCACHE_CHECK_EQ(intervals.size(), rows.size());
  std::vector<std::string> headers = {
      std::string("interarrival_s [") + value_header + "]"};
  if (!rows.empty()) {
    for (const SimMetrics& m : rows.front()) {
      headers.push_back(m.scheme_name);
    }
  }
  TableWriter table(std::move(headers));
  for (size_t i = 0; i < intervals.size(); ++i) {
    std::vector<std::string> cells = {FormatDouble(intervals[i], 0)};
    for (const SimMetrics& m : rows[i]) {
      cells.push_back(FormatDouble(extract(m), precision));
    }
    CLOUDCACHE_CHECK(table.AddRow(std::move(cells)).ok());
  }
  return table;
}

}  // namespace

TableWriter MakeOperatingCostTable(
    const std::vector<double>& intervals,
    const std::vector<std::vector<SimMetrics>>& rows) {
  return MakeSweepTable(
      intervals, rows, "operating cost $",
      [](const SimMetrics& m) { return m.operating_cost.Total(); }, 2);
}

TableWriter MakeResponseTimeTable(
    const std::vector<double>& intervals,
    const std::vector<std::vector<SimMetrics>>& rows) {
  return MakeSweepTable(
      intervals, rows, "mean response s",
      [](const SimMetrics& m) { return m.MeanResponse(); }, 3);
}

TableWriter MakeTenantTable(const SimMetrics& metrics) {
  TableWriter table({"tenant", "queries", "served", "hit_rate",
                     "mean_resp_s", "billed_$", "revenue_$", "profit_$",
                     "regret_$", "throttled"});
  for (const TenantMetrics& t : metrics.tenants) {
    CLOUDCACHE_CHECK(
        table
            .AddRow({std::to_string(t.tenant_id),
                     std::to_string(t.queries), std::to_string(t.served),
                     FormatDouble(t.CacheHitRate(), 3),
                     FormatDouble(t.MeanResponse(), 3),
                     FormatDouble(t.operating_cost.Total(), 2),
                     FormatDouble(t.revenue.ToDollars(), 2),
                     FormatDouble(t.profit.ToDollars(), 2),
                     FormatDouble(t.final_regret.ToDollars(), 2),
                     std::to_string(t.throttled)})
            .ok());
  }
  return table;
}

TableWriter MakeNodeTable(const SimMetrics& metrics) {
  TableWriter table({"node", "queries", "served", "hit_rate", "revenue_$",
                     "profit_$", "credit_$", "resident_gb", "rented_at_s"});
  for (const NodeMetrics& n : metrics.cluster.nodes) {
    const double hit_rate =
        n.served == 0 ? 0.0
                      : static_cast<double>(n.served_in_cache) /
                            static_cast<double>(n.served);
    CLOUDCACHE_CHECK(
        table
            .AddRow({std::to_string(n.ordinal), std::to_string(n.queries),
                     std::to_string(n.served), FormatDouble(hit_rate, 3),
                     FormatDouble(n.revenue.ToDollars(), 2),
                     FormatDouble(n.profit.ToDollars(), 2),
                     FormatDouble(n.final_credit.ToDollars(), 2),
                     FormatDouble(
                         static_cast<double>(n.final_resident_bytes) / 1e9,
                         1),
                     FormatDouble(n.rented_at_seconds, 0)})
            .ok());
  }
  return table;
}

std::string FormatCluster(const SimMetrics& m) {
  std::ostringstream out;
  out << "cluster: " << m.cluster.final_nodes << " nodes (peak "
      << m.cluster.peak_nodes << "), " << m.cluster.scale_out_events
      << " rented / " << m.cluster.scale_in_events << " released, "
      << m.cluster.migrations << " migrations ("
      << m.cluster.migration_failures << " failed), node rent $"
      << FormatDouble(m.cluster.node_rent_dollars, 2) << "\n";
  return out.str();
}

std::string FormatFairness(const SimMetrics& m) {
  std::ostringstream out;
  out << "fairness: response jain "
      << FormatDouble(m.fairness.response_jain, 3) << " (max-min "
      << FormatDouble(m.fairness.response_max_min, 3) << "), billed jain "
      << FormatDouble(m.fairness.billed_jain, 3) << " (max-min "
      << FormatDouble(m.fairness.billed_max_min, 3) << ")\n";
  return out.str();
}

TableWriter MakeSchemeSummaryTable(const std::vector<SimMetrics>& runs) {
  TableWriter table({"scheme", "mean_resp_s", "p95_resp_s", "op_cost_$",
                     "cpu_$", "net_$", "disk_$", "io_$", "hit_rate",
                     "invest", "evict", "credit_$"});
  for (const SimMetrics& m : runs) {
    CLOUDCACHE_CHECK(
        table
            .AddRow({m.scheme_name, FormatDouble(m.MeanResponse(), 3),
                     FormatDouble(m.response_hist.Quantile(0.95), 3),
                     FormatDouble(m.operating_cost.Total(), 2),
                     FormatDouble(m.operating_cost.cpu_dollars, 2),
                     FormatDouble(m.operating_cost.network_dollars, 2),
                     FormatDouble(m.operating_cost.disk_dollars, 2),
                     FormatDouble(m.operating_cost.io_dollars, 2),
                     FormatDouble(m.CacheHitRate(), 3),
                     std::to_string(m.investments),
                     std::to_string(m.evictions),
                     FormatDouble(m.final_credit.ToDollars(), 2)})
            .ok());
  }
  return table;
}

}  // namespace cloudcache
