#include "src/plan/enumerator.h"

#include <algorithm>

#include "src/util/logging.h"

namespace cloudcache {

PlanEnumerator::PlanEnumerator(const CostModel* model,
                               StructureRegistry* registry,
                               EnumeratorOptions options)
    : model_(model), registry_(registry), options_(std::move(options)) {
  CLOUDCACHE_CHECK(std::find(options_.node_options.begin(),
                             options_.node_options.end(),
                             1u) != options_.node_options.end());
  std::sort(options_.node_options.begin(), options_.node_options.end());
  options_.node_options.erase(std::unique(options_.node_options.begin(),
                                          options_.node_options.end()),
                              options_.node_options.end());
}

void PlanEnumerator::SetIndexCandidates(
    const std::vector<StructureKey>& candidates) {
  index_candidates_.clear();
  index_candidates_.reserve(candidates.size());
  for (const StructureKey& key : candidates) {
    CLOUDCACHE_CHECK(key.type == StructureType::kIndex);
    index_candidates_.push_back(registry_->Intern(key));
  }
}

void PlanEnumerator::EmitNodeVariants(const Query& query,
                                      const CacheState& cache, PlanSpec spec,
                                      std::vector<StructureId> structures,
                                      PlanSet* set) const {
  std::sort(structures.begin(), structures.end());
  structures.erase(std::unique(structures.begin(), structures.end()),
                   structures.end());
  for (uint32_t nodes : options_.node_options) {
    if (nodes > 1 && !options_.allow_parallel) break;
    QueryPlan plan;
    plan.spec = spec;
    plan.spec.cpu_nodes = nodes;
    plan.structures = structures;
    // Extra nodes beyond the always-on one are structures in their own
    // right (BuildN/MaintN apply to them).
    for (uint32_t extra = 0; extra + 1 < nodes; ++extra) {
      plan.structures.push_back(registry_->Intern(CpuNodeKey(extra)));
    }
    for (StructureId id : plan.structures) {
      if (!cache.IsResident(id)) plan.missing.push_back(id);
    }
    if (!plan.missing.empty() && !options_.include_hypothetical) continue;
    plan.execution = model_->EstimateExecution(query, plan.spec);
    set->plans.push_back(std::move(plan));
  }
}

PlanSet PlanEnumerator::Enumerate(const Query& query,
                                  const CacheState& cache) const {
  PlanSet set;

  // 1. The back-end plan: always available, employs no cache structures.
  {
    QueryPlan plan;
    plan.spec.access = PlanSpec::Access::kBackend;
    plan.spec.cpu_nodes = 1;
    plan.execution = model_->EstimateExecution(query, plan.spec);
    set.plans.push_back(std::move(plan));
  }

  const std::vector<ColumnId> accessed = query.AccessedColumns();
  const Catalog& catalog = registry_->catalog();

  // 2. Column-scan plan over the accessed columns.
  {
    PlanSpec spec;
    spec.access = PlanSpec::Access::kCacheScan;
    std::vector<StructureId> structures;
    structures.reserve(accessed.size());
    for (ColumnId col : accessed) {
      structures.push_back(registry_->Intern(ColumnKey(catalog, col)));
    }
    EmitNodeVariants(query, cache, spec, std::move(structures), &set);
  }

  // 3. Index plans from the candidate pool.
  if (options_.allow_indexes) {
    for (StructureId index_id : index_candidates_) {
      const StructureKey& key = registry_->key(index_id);
      if (key.table != query.table) continue;

      // The probe covers the maximal prefix of key columns that carry
      // predicates of this query; an index whose leading column has no
      // predicate cannot be probed.
      PlanSpec spec;
      spec.access = PlanSpec::Access::kCacheIndex;
      for (ColumnId key_col : key.columns) {
        bool found = false;
        for (size_t pos = 0; pos < query.predicates.size(); ++pos) {
          if (query.predicates[pos].column == key_col) {
            spec.covered_predicates.push_back(pos);
            found = true;
            break;
          }
        }
        if (!found) break;
      }
      if (spec.covered_predicates.empty()) continue;

      spec.covering = std::all_of(
          accessed.begin(), accessed.end(), [&](ColumnId col) {
            return std::find(key.columns.begin(), key.columns.end(), col) !=
                   key.columns.end();
          });

      std::vector<StructureId> structures = {index_id};
      if (!spec.covering) {
        // Row fetches read every accessed column absent from the index
        // key from the cached base columns.
        for (ColumnId col : accessed) {
          if (std::find(key.columns.begin(), key.columns.end(), col) ==
              key.columns.end()) {
            structures.push_back(
                registry_->Intern(ColumnKey(catalog, col)));
          }
        }
      }
      EmitNodeVariants(query, cache, spec, std::move(structures), &set);
    }
  }
  return set;
}

}  // namespace cloudcache
