#include <gtest/gtest.h>

#include <cstring>

#include "src/catalog/tpch.h"
#include "src/sim/experiment.h"

namespace cloudcache {
namespace {

/// Scaled-down versions of the qualitative claims of Section VII-B. The
/// full-scale reproductions live in bench/ (Fig. 4, Fig. 5); these tests
/// pin the *directions* the paper reports so a regression that flips a
/// comparison fails fast in CI.
class PaperPropertiesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog(MakeTpchCatalog(100.0));
    templates_ = new std::vector<QueryTemplate>(MakeTpchTemplates());
    // One shared sweep: all four schemes at 1 s and 60 s inter-arrivals.
    // Thresholds are eased proportionally to the shortened run (the paper
    // simulates ~1e6 queries; CI runs 8e3).
    for (double interval : {1.0, 60.0}) {
      ExperimentConfig config;
      config.workload.interarrival_seconds = interval;
      config.workload.seed = 23;
      config.sim.num_queries = 8000;
      config.customize_econ = [](EconScheme::Config& econ) {
        econ.economy.regret_fraction_a = 0.001;
        econ.economy.conservative_provider = false;
        econ.economy.initial_credit = Money::FromDollars(20);
        econ.economy.model_build_latency = false;
      };
      config.customize_bypass = [](BypassYieldScheme::Options& options) {
        options.yield_threshold = 0.2;
        options.aging_interval = 1'000'000;
      };
      results_->push_back(RunAllSchemes(*catalog_, *templates_, config));
    }
  }
  static void TearDownTestSuite() {
    delete catalog_;
    delete templates_;
    results_->clear();
  }

  static const SimMetrics& At(size_t interval_idx, size_t scheme_idx) {
    return (*results_)[interval_idx][scheme_idx];
  }
  // Scheme order: 0 bypass, 1 econ-col, 2 econ-cheap, 3 econ-fast.

  static Catalog* catalog_;
  static std::vector<QueryTemplate>* templates_;
  static std::vector<std::vector<SimMetrics>>* results_;
};

Catalog* PaperPropertiesTest::catalog_ = nullptr;
std::vector<QueryTemplate>* PaperPropertiesTest::templates_ = nullptr;
std::vector<std::vector<SimMetrics>>* PaperPropertiesTest::results_ =
    new std::vector<std::vector<SimMetrics>>();

TEST_F(PaperPropertiesTest, EconCheapFasterThanColumnOnlySchemes) {
  // "Since econ-cheap uses indexes on top of the cached data, the response
  // time is about 50% of econ-col" — direction: strictly faster.
  EXPECT_LT(At(0, 2).MeanResponse(), At(0, 1).MeanResponse());
}

TEST_F(PaperPropertiesTest, EconFastAtLeastAsFastAsEconCheap) {
  // "econ-fast further reduces the response time."
  EXPECT_LE(At(0, 3).MeanResponse(), At(0, 2).MeanResponse() * 1.02);
}

TEST_F(PaperPropertiesTest, ColumnSchemesHaveSimilarResponseTimes) {
  // "the response time of net-only and econ-col are similar. This is not
  // surprising since they both use only table data."
  const double bypass = At(0, 0).MeanResponse();
  const double econ_col = At(0, 1).MeanResponse();
  EXPECT_LT(econ_col, bypass * 1.5);
  EXPECT_GT(econ_col, bypass * 0.3);
}

TEST_F(PaperPropertiesTest, EconColCheaperThanBypassAtShortIntervals) {
  // "the cost for using these structures, however, is lower for econ-col"
  // (1 s interval: disk is negligible, CPU/network savings dominate).
  EXPECT_LT(At(0, 1).operating_cost.Total(),
            At(0, 0).operating_cost.Total());
}

TEST_F(PaperPropertiesTest, CostsGrowWithInterarrivalTime) {
  // "As the time interval increases, the cost increases, too, because of
  // the extra cost of disk storage for cached data." Holds per scheme.
  for (size_t scheme = 0; scheme < 4; ++scheme) {
    EXPECT_GT(At(1, scheme).operating_cost.Total(),
              At(0, scheme).operating_cost.Total())
        << At(0, scheme).scheme_name;
  }
}

TEST_F(PaperPropertiesTest, DiskShareGrowsWithInterarrivalTime) {
  for (size_t scheme = 0; scheme < 4; ++scheme) {
    const SimMetrics& fast = At(0, scheme);
    const SimMetrics& slow = At(1, scheme);
    const double fast_share =
        fast.operating_cost.disk_dollars / fast.operating_cost.Total();
    const double slow_share =
        slow.operating_cost.disk_dollars / slow.operating_cost.Total();
    EXPECT_GT(slow_share, fast_share) << fast.scheme_name;
  }
}

TEST_F(PaperPropertiesTest, EconCheapOutcachesBypassOnSameStream) {
  // "net-only is conservative … and answers many queries over the network
  // before loading the data" while the economy's full structure arsenal
  // (indexes cover queries the columns alone cannot) lifts its hit rate
  // above the bandwidth-only baseline on the identical stream.
  EXPECT_GT(At(0, 2).CacheHitRate(), At(0, 0).CacheHitRate());
}

TEST_F(PaperPropertiesTest, EconFastCostsAtLeastAsMuchAsEconCheap) {
  // "the coordinator pays the overhead for the initialization of the
  // extra CPU nodes."
  EXPECT_GE(At(0, 3).operating_cost.Total(),
            At(0, 2).operating_cost.Total() * 0.98);
}

TEST_F(PaperPropertiesTest, EveryQueryServed) {
  // The paper's user accepts back-end execution, so nothing is dropped.
  for (size_t interval = 0; interval < 2; ++interval) {
    for (size_t scheme = 0; scheme < 4; ++scheme) {
      EXPECT_EQ(At(interval, scheme).served,
                At(interval, scheme).queries);
    }
  }
}

TEST_F(PaperPropertiesTest, SameSeedReplaysByteIdenticalCostTimeline) {
  // A run is a pure function of its configuration: two RunExperiment calls
  // with the same seed must replay the cumulative-cost (and credit)
  // timelines byte for byte. This is the property the parallel sweep
  // engine's thread-count invariance rests on.
  ExperimentConfig config;
  config.scheme = SchemeKind::kEconCheap;
  config.workload.interarrival_seconds = 10.0;
  config.workload.seed = 61;
  config.seed = 62;
  config.sim.num_queries = 2000;
  config.customize_econ = [](EconScheme::Config& econ) {
    econ.economy.regret_fraction_a = 0.001;
    econ.economy.conservative_provider = false;
    econ.economy.initial_credit = Money::FromDollars(20);
    econ.economy.model_build_latency = false;
  };

  const SimMetrics first = RunExperiment(*catalog_, *templates_, config);
  const SimMetrics second = RunExperiment(*catalog_, *templates_, config);

  ASSERT_GT(first.cost_over_time.size(), 0u);
  ASSERT_EQ(first.cost_over_time.size(), second.cost_over_time.size());
  const auto byte_identical = [](const std::vector<double>& a,
                                 const std::vector<double>& b) {
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
  };
  EXPECT_TRUE(byte_identical(first.cost_over_time.times(),
                             second.cost_over_time.times()));
  EXPECT_TRUE(byte_identical(first.cost_over_time.values(),
                             second.cost_over_time.values()));
  EXPECT_TRUE(byte_identical(first.credit_over_time.times(),
                             second.credit_over_time.times()));
  EXPECT_TRUE(byte_identical(first.credit_over_time.values(),
                             second.credit_over_time.values()));
  EXPECT_EQ(first.operating_cost.Total(), second.operating_cost.Total());
  EXPECT_EQ(first.final_credit.micros(), second.final_credit.micros());
}

TEST_F(PaperPropertiesTest, EconomiesStaySolvent) {
  // Policy (iii): the cloud remains profitable — revenue covers the
  // metered spend plus investments over the run (CR does not collapse).
  for (size_t scheme = 1; scheme < 4; ++scheme) {
    const SimMetrics& m = At(0, scheme);
    EXPECT_GT(m.final_credit.micros(), 0) << m.scheme_name;
  }
}

}  // namespace
}  // namespace cloudcache
