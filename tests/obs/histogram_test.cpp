#include "src/obs/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/persist/codec.h"
#include "src/util/rng.h"

namespace cloudcache::obs {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.Quantile(0.0), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(1.0), 0.0);
}

TEST(HistogramTest, BucketBoundariesAreHalfOpenPowersOfTwo) {
  // Each octave [2^e, 2^(e+1)) splits into kSubBuckets linear pieces.
  // Pin the geometry at a handful of hand-computable points.
  const size_t first = Histogram::BucketIndex(1.0);  // 2^0 exactly.
  EXPECT_EQ(Histogram::BucketLower(first), 1.0);
  EXPECT_EQ(Histogram::BucketUpper(first),
            1.0 + 1.0 / Histogram::kSubBuckets);

  // A value just below an octave edge lands in the previous octave's
  // last sub-bucket; the edge itself opens the next octave.
  const double below = std::nextafter(2.0, 0.0);
  EXPECT_EQ(Histogram::BucketIndex(below) + 1, Histogram::BucketIndex(2.0));
  EXPECT_EQ(Histogram::BucketUpper(Histogram::BucketIndex(below)), 2.0);
  EXPECT_EQ(Histogram::BucketLower(Histogram::BucketIndex(2.0)), 2.0);

  // Every bucket's [lower, upper) actually contains the values that
  // index into it: lower maps to the bucket, upper maps to the next.
  for (size_t i = 0; i < Histogram::kNumBuckets; i += 97) {
    const double lower = Histogram::BucketLower(i);
    EXPECT_EQ(Histogram::BucketIndex(lower), i) << "bucket " << i;
    if (i + 1 < Histogram::kNumBuckets) {
      EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpper(i)), i + 1)
          << "bucket " << i;
    }
  }
}

TEST(HistogramTest, BucketRelativeErrorIsBounded) {
  // The worst-case relative width of any bucket is 1/kSubBuckets: a
  // reported quantile can never be further than that from the recorded
  // value.
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const double x = std::exp(rng.NextGaussian() * 3);  // Spans octaves.
    const size_t index = Histogram::BucketIndex(x);
    const double lower = Histogram::BucketLower(index);
    const double upper = Histogram::BucketUpper(index);
    ASSERT_LE(lower, x);
    ASSERT_LT(x, upper);
    EXPECT_LE((upper - lower) / lower, 1.0 / Histogram::kSubBuckets + 1e-12);
  }
}

TEST(HistogramTest, ExactExtremesAndMoments) {
  Histogram h;
  for (double x : {0.5, 2.0, 8.0, 0.25}) h.Add(x);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 0.25);
  EXPECT_EQ(h.max(), 8.0);
  EXPECT_DOUBLE_EQ(h.sum(), 10.75);
  EXPECT_DOUBLE_EQ(h.mean(), 10.75 / 4);
  EXPECT_EQ(h.Quantile(0.0), 0.25);
  EXPECT_EQ(h.Quantile(1.0), 8.0);
}

TEST(HistogramTest, QuantileInterpolatesWithinTheCoveringBucket) {
  // 100 identical values in one bucket: every interior quantile must
  // stay inside that bucket (clamped into [min, max]).
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Add(3.0);
  EXPECT_EQ(h.Quantile(0.5), 3.0);
  EXPECT_EQ(h.Quantile(0.99), 3.0);

  // Two well-separated spikes: the median interpolates inside the lower
  // spike's bucket, p99 inside the upper one's — never in between.
  Histogram two;
  for (int i = 0; i < 90; ++i) two.Add(1.0);
  for (int i = 0; i < 10; ++i) two.Add(1024.0);
  const double p50 = two.Quantile(0.5);
  EXPECT_GE(p50, 1.0);
  EXPECT_LT(p50, 1.0 + 1.0 / Histogram::kSubBuckets);
  EXPECT_EQ(two.Quantile(0.99), 1024.0);  // Clamped to the exact max.
  // Monotone in q.
  double prev = two.Quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = two.Quantile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(HistogramTest, QuantileTracksExactOrderStatistics) {
  // Against a sorted sample: the histogram quantile must agree with the
  // true order statistic to within one bucket's relative width.
  Rng rng(7);
  Histogram h;
  std::vector<double> values;
  for (int i = 0; i < 20'000; ++i) {
    const double x = std::exp(rng.NextGaussian());
    values.push_back(x);
    h.Add(x);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99}) {
    const double exact =
        values[static_cast<size_t>(q * (values.size() - 1))];
    EXPECT_NEAR(h.Quantile(q), exact,
                exact * 2.5 / Histogram::kSubBuckets)
        << "q=" << q;
  }
}

TEST(HistogramTest, UnderflowAndOverflowAreCounted) {
  Histogram h;
  h.Add(0.0);     // Non-positive -> underflow.
  h.Add(-1.0);    // Clamped to 0 -> underflow.
  h.Add(1e-300);  // Below 2^kMinExponent -> underflow.
  h.Add(1e300);   // Above 2^kMaxExponent -> overflow.
  h.Add(4.0);
  EXPECT_EQ(h.underflow(), 3u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 5u);
  // Underflow contributes at min, overflow at max; quantiles stay inside
  // the observed range.
  EXPECT_EQ(h.Quantile(0.0), 0.0);
  EXPECT_EQ(h.Quantile(1.0), 1e300);
}

TEST(HistogramTest, MergeIsAssociativeAndMatchesSerial) {
  Rng rng(3);
  Histogram whole, a, b, c;
  for (int i = 0; i < 30'000; ++i) {
    const double x = std::exp(rng.NextGaussian() * 2 - 3);
    whole.Add(x);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).Add(x);
  }
  // (a + b) + c and a + (b + c) both equal the serial histogram, bucket
  // for bucket — integer counts make merge order irrelevant.
  Histogram left = a;
  left.Merge(b);
  left.Merge(c);
  Histogram bc = b;
  bc.Merge(c);
  Histogram right = a;
  right.Merge(bc);
  EXPECT_TRUE(BitIdentical(left, right));
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_EQ(left.buckets(), whole.buckets());
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(left.Quantile(q), whole.Quantile(q)) << "q=" << q;
  }
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram h, empty;
  h.Add(1.5);
  h.Add(2.5);
  Histogram merged = h;
  merged.Merge(empty);
  EXPECT_TRUE(BitIdentical(merged, h));
  Histogram other = empty;
  other.Merge(h);
  EXPECT_TRUE(BitIdentical(other, h));
}

void ExpectRoundTrips(const Histogram& h) {
  persist::Encoder enc;
  h.SaveState(&enc);
  persist::Decoder dec(enc.buffer().data(), enc.size());
  Histogram restored;
  restored.Add(99.0);  // Restore must overwrite pre-existing state.
  ASSERT_TRUE(restored.RestoreState(&dec).ok());
  EXPECT_TRUE(BitIdentical(restored, h));
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(restored.Quantile(q), h.Quantile(q)) << "q=" << q;
  }
}

TEST(HistogramTest, PersistRoundTripsEveryShape) {
  // Empty (±inf extremes must survive the codec bit for bit).
  ExpectRoundTrips(Histogram());

  // Dense-ish populated histogram.
  Rng rng(5);
  Histogram h;
  for (int i = 0; i < 5'000; ++i) h.Add(std::exp(rng.NextGaussian()));
  ExpectRoundTrips(h);

  // Underflow/overflow counters without any bucketed values.
  Histogram edges;
  edges.Add(0.0);
  edges.Add(1e300);
  ExpectRoundTrips(edges);
}

TEST(HistogramTest, PersistIsSparse) {
  // One observation must not serialize all ~2k buckets: the sparse
  // encoding keeps snapshot growth proportional to occupied buckets.
  Histogram h;
  h.Add(1.0);
  persist::Encoder enc;
  h.SaveState(&enc);
  EXPECT_LT(enc.size(), 200u);
}

TEST(HistogramTest, TruncatedRestoreIsRefused) {
  Histogram h;
  h.Add(1.0);
  h.Add(7.5);
  persist::Encoder enc;
  h.SaveState(&enc);
  for (size_t cut = 0; cut < enc.size(); ++cut) {
    persist::Decoder dec(enc.buffer().data(), cut);
    Histogram out;
    EXPECT_FALSE(out.RestoreState(&dec).ok()) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace cloudcache::obs
