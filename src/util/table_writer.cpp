#include "src/util/table_writer.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace cloudcache {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Status TableWriter::AddRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    return Status::InvalidArgument("row has " + std::to_string(cells.size()) +
                                   " cells, table has " +
                                   std::to_string(headers_.size()) +
                                   " columns");
  }
  rows_.push_back(std::move(cells));
  return Status::OK();
}

Status TableWriter::AddNumericRow(const std::vector<double>& cells,
                                  int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double c : cells) formatted.push_back(FormatDouble(c, precision));
  return AddRow(std::move(formatted));
}

std::string TableWriter::ToAscii() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(headers_);
  out << '|';
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

namespace {
std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TableWriter::ToCsv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << CsvEscape(row[c]);
    }
    out << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

Status TableWriter::WriteCsvFile(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status::IoError("cannot open " + path + " for writing");
  file << ToCsv();
  if (!file.good()) return Status::IoError("short write to " + path);
  return Status::OK();
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace cloudcache
