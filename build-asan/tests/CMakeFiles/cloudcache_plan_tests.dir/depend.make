# Empty dependencies file for cloudcache_plan_tests.
# This may be replaced when dependencies are built.
